#include "gossip/rumor.hpp"

#include <algorithm>
#include <bit>

namespace jenga::gossip {

std::uint64_t group_key_of(std::span<const NodeId> members) {
  std::uint64_t key = 0x8C5A6D82F3E1B947ULL;
  for (const NodeId n : members) key = sim::rumor_id_mix(key, n.value + 1);
  return key;
}

RumorMesh::GroupState& RumorMesh::group_for(std::uint64_t key, std::span<const NodeId> members,
                                            sim::TrafficClass cls) {
  auto [it, inserted] = groups_.try_emplace(key);
  GroupState& g = it->second;
  if (inserted) {
    g.members.assign(members.begin(), members.end());
    for (std::size_t i = 0; i < g.members.size(); ++i) g.index_of[g.members[i].value] = i;
    g.cls = cls;
    const auto n = std::max<std::size_t>(2, g.members.size());
    g.push_limit = static_cast<std::uint32_t>(std::bit_width(n - 1)) + config_.extra_push_rounds;
  }
  return g;
}

void RumorMesh::broadcast(NodeId origin, std::span<const NodeId> group, std::uint64_t rumor_id,
                          const sim::Message& msg, sim::TrafficClass cls) {
  if (group.empty()) return;
  const std::uint64_t key = group_key_of(group);
  GroupState& g = group_for(key, group, cls);

  const auto origin_slot = g.index_of.find(origin.value);
  if (origin_slot != g.index_of.end()) {
    NodeState& ns = node_state(key, origin_slot->second);
    if (ns.rumors.contains(rumor_id) || ns.retired.contains(rumor_id))
      return;  // relay dedup: already spreading (or already spread and retired)
    ++stats_.rumors_started;
    // The origin holds its own rumor without delivering it to itself (every
    // caller ingests its own copy locally, mirroring Network::gossip).
    accept(key, g, origin_slot->second, rumor_id, 0, msg, /*deliver=*/false);
    return;
  }

  // Origin outside the group (e.g. a late-abort answer into a foreign shard):
  // seed `fanout` random members directly with a one-shot push.
  ++stats_.rumors_started;
  auto payload = std::make_shared<RumorPushPayload>();
  payload->group_key = key;
  RumorPushPayload::Entry e;
  e.id = rumor_id;
  e.age = 0;
  e.inner = msg;
  payload->entries.push_back(std::move(e));
  sim::Message push;
  push.type = sim::MsgType::kRumorPush;
  push.from = origin;
  push.payload = payload;
  push.size_bytes = payload->wire_size();
  const std::size_t n = g.members.size();
  const std::size_t want = std::min(config_.fanout, n);
  std::vector<std::size_t> picks(n);
  for (std::size_t i = 0; i < n; ++i) picks[i] = i;
  for (std::size_t i = 0; i < want; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(rng_.uniform(n - i));
    std::swap(picks[i], picks[j]);
    ++stats_.pushes_sent;
    net_.send(origin, g.members[picks[i]], push, cls);
  }
}

void RumorMesh::accept(std::uint64_t group_key, GroupState& g, std::size_t slot,
                       std::uint64_t id, std::uint16_t age, const sim::Message& inner,
                       bool deliver) {
  NodeState& ns = node_state(group_key, slot);
  RumorState rs;
  rs.age = age;
  rs.phase = age >= g.push_limit ? Phase::kKnown : Phase::kNew;
  rs.heard_at = net_.simulator().now();
  rs.msg = inner;
  ns.rumors.emplace(id, std::move(rs));
  ns.pulls_inflight.erase(id);

  auto& meta = g.meta[id];
  if (meta.holders == 0) meta.first_at = net_.simulator().now();
  ++meta.holders;
  if (!meta.covered && meta.holders == g.members.size()) {
    meta.covered = true;
    ++stats_.covered_rumors;
    const SimTime elapsed = net_.simulator().now() - meta.first_at;
    stats_.coverage_rounds.push_back(
        static_cast<std::uint32_t>(elapsed / std::max<SimTime>(1, config_.round_interval)) + 1);
  }

  if (deliver) {
    ++stats_.delivered;
    net_.deliver_local(g.members[slot], inner);
  }
  arm_timer(group_key, slot);
}

void RumorMesh::arm_timer(std::uint64_t group_key, std::size_t slot) {
  NodeState& ns = node_state(group_key, slot);
  if (ns.timer_armed) return;
  ns.timer_armed = true;
  net_.simulator().schedule_after(config_.round_interval,
                                  [this, group_key, slot] { tick(group_key, slot); });
}

std::vector<std::uint64_t> RumorMesh::build_digest(const NodeState& ns) const {
  std::vector<std::uint64_t> ids;
  ids.reserve(ns.rumors.size());
  for (const auto& [id, rs] : ns.rumors) ids.push_back(id);
  std::sort(ids.begin(), ids.end());  // canonical content, hash-order free
  if (ids.size() > config_.digest_window) {
    // Keep the most recently heard ids (the ones peers plausibly miss).
    std::vector<std::pair<SimTime, std::uint64_t>> by_age;
    by_age.reserve(ids.size());
    for (const std::uint64_t id : ids) by_age.emplace_back(ns.rumors.at(id).heard_at, id);
    std::sort(by_age.begin(), by_age.end(),
              [](const auto& a, const auto& b) {
                return a.first != b.first ? a.first > b.first : a.second < b.second;
              });
    ids.clear();
    for (std::size_t i = 0; i < config_.digest_window; ++i) ids.push_back(by_age[i].second);
    std::sort(ids.begin(), ids.end());
  }
  return ids;
}

void RumorMesh::tick(std::uint64_t group_key, std::size_t slot) {
  const auto git = groups_.find(group_key);
  if (git == groups_.end()) return;
  GroupState& g = git->second;
  NodeState& ns = node_state(group_key, slot);
  ns.timer_armed = false;
  ++ns.ticks;
  const NodeId self = g.members[slot];
  const SimTime now = net_.simulator().now();

  // Retire rumors past retention: drop the payload, keep the id as a
  // tombstone so late pushes/pings cannot restart the spread.
  for (auto it = ns.rumors.begin(); it != ns.rumors.end();) {
    if (now - it->second.heard_at > config_.retention) {
      ns.retired.insert(it->first);
      it = ns.rumors.erase(it);
    } else {
      ++it;
    }
  }
  // Prune outstanding pulls by age rather than wholesale: pulls_inflight is
  // also the solicitation record the forged-response guard checks, so a
  // legitimately-late response to a recent request must still find its entry.
  // Anything older than twice the re-pull gap is dead weight either way.
  const SimTime pull_ttl = 4 * config_.round_interval;
  for (auto it = ns.pulls_inflight.begin(); it != ns.pulls_inflight.end();) {
    if (now - it->second > pull_ttl) {
      it = ns.pulls_inflight.erase(it);
    } else {
      ++it;
    }
  }
  if (ns.rumors.empty()) {
    return;  // quiet node: timer stays down until the next accept
  }

  if (!net_.node_down(self)) {
    // Collect NEW rumors (canonical id order) and advance their state machine.
    std::vector<std::uint64_t> fresh;
    for (auto& [id, rs] : ns.rumors) {
      if (rs.phase == Phase::kNew) fresh.push_back(id);
    }
    std::sort(fresh.begin(), fresh.end());

    // Anti-entropy cadence, optionally tightened by the failure detector
    // while the network is degraded (hook returns the base divisor when not).
    std::uint32_t every = std::max<std::uint32_t>(1, config_.anti_entropy_every);
    if (cadence_hook_) every = std::max<std::uint32_t>(1, cadence_hook_(every));
    const bool ping_round = ns.ticks % every == 0;
    if (!fresh.empty() || ping_round) {
      auto payload = std::make_shared<RumorPushPayload>();
      payload->group_key = group_key;
      for (const std::uint64_t id : fresh) {
        RumorState& rs = ns.rumors.at(id);
        RumorPushPayload::Entry e;
        e.id = id;
        e.age = rs.age;
        e.inner = rs.msg;
        payload->entries.push_back(std::move(e));
      }
      payload->digest = build_digest(ns);
      sim::Message push;
      push.type = sim::MsgType::kRumorPush;
      push.from = self;
      push.payload = payload;
      push.size_bytes = payload->wire_size();

      // Fanout random distinct peers for pushes; one peer for a digest ping.
      const std::size_t n = g.members.size();
      const std::size_t want =
          std::min(fresh.empty() ? std::size_t{1} : config_.fanout, n - 1);
      std::vector<std::size_t> picks;
      picks.reserve(n - 1);
      for (std::size_t i = 0; i < n; ++i)
        if (i != slot) picks.push_back(i);
      for (std::size_t i = 0; i < want; ++i) {
        const std::size_t j = i + static_cast<std::size_t>(rng_.uniform(picks.size() - i));
        std::swap(picks[i], picks[j]);
        ++stats_.pushes_sent;
        net_.send(self, g.members[picks[i]], push, g.cls);
      }
    }

    // Age NEW rumors; the push budget and the dup-kill signal both end the
    // push phase (median-counter flavour of Karp et al.).
    for (auto& [id, rs] : ns.rumors) {
      if (rs.phase != Phase::kNew) continue;
      ++rs.age;
      if (rs.age >= g.push_limit || rs.dups >= config_.dup_kill) rs.phase = Phase::kKnown;
    }
  }

  arm_timer(group_key, slot);
}

void RumorMesh::send_pulls(std::uint64_t group_key, GroupState& g, std::size_t slot,
                           NodeId from_peer, std::span<const std::uint64_t> advertised) {
  NodeState& ns = node_state(group_key, slot);
  const SimTime now = net_.simulator().now();
  std::vector<std::uint64_t> missing;
  for (const std::uint64_t id : advertised) {
    if (ns.rumors.contains(id) || ns.retired.contains(id)) continue;
    const auto pit = ns.pulls_inflight.find(id);
    if (pit != ns.pulls_inflight.end() && now - pit->second < 2 * config_.round_interval)
      continue;  // a pull for this id is already in flight
    ns.pulls_inflight[id] = now;
    missing.push_back(id);
  }
  if (missing.empty()) return;
  auto payload = std::make_shared<RumorPullPayload>();
  payload->group_key = group_key;
  payload->ids = std::move(missing);
  sim::Message req;
  req.type = sim::MsgType::kRumorPullReq;
  req.from = g.members[slot];
  req.payload = payload;
  req.size_bytes = payload->wire_size();
  ++stats_.pull_requests;
  net_.send(g.members[slot], from_peer, req, g.cls);
}

void RumorMesh::handle_push(NodeId to, const sim::Message& msg) {
  const auto& p = sim::payload_as<RumorPushPayload>(msg);
  const auto git = groups_.find(p.group_key);
  if (git == groups_.end()) return;
  GroupState& g = git->second;
  const auto sit = g.index_of.find(to.value);
  if (sit == g.index_of.end()) return;
  const std::size_t slot = sit->second;
  NodeState& ns = node_state(p.group_key, slot);

  for (const auto& e : p.entries) {
    const auto rit = ns.rumors.find(e.id);
    if (rit != ns.rumors.end()) {
      ++stats_.dups_dropped;
      if (rit->second.dups < UINT8_MAX) ++rit->second.dups;
      continue;
    }
    if (ns.retired.contains(e.id)) {  // straggler copy of a retired rumor
      ++stats_.dups_dropped;
      continue;
    }
    sim::Message inner = e.inner;
    inner.span = msg.span;  // causality: the carrying push hop delivered it
    accept(p.group_key, g, slot, e.id, static_cast<std::uint16_t>(e.age + 1), inner,
           /*deliver=*/true);
  }
  if (!p.digest.empty()) send_pulls(p.group_key, g, slot, msg.from, p.digest);
}

void RumorMesh::handle_pull_req(NodeId to, const sim::Message& msg) {
  const auto& p = sim::payload_as<RumorPullPayload>(msg);
  const auto git = groups_.find(p.group_key);
  if (git == groups_.end()) return;
  GroupState& g = git->second;
  const auto sit = g.index_of.find(to.value);
  if (sit == g.index_of.end()) return;
  NodeState& ns = node_state(p.group_key, sit->second);

  // Per-(server, requester) rate limit: a suspect/byzantine peer hammering
  // pull requests is throttled instead of amplified into pull responses.
  const SimTime now = net_.simulator().now();
  auto& window = ns.pull_req_log[msg.from.value];
  if (now - window.first >= config_.pull_req_window) {
    window.first = now;
    window.second = 0;
  }
  if (++window.second > config_.pull_req_max) {
    ++stats_.pulls_throttled;
    return;
  }

  auto payload = std::make_shared<RumorPushPayload>();
  payload->group_key = p.group_key;
  for (const std::uint64_t id : p.ids) {
    const auto rit = ns.rumors.find(id);
    if (rit == ns.rumors.end()) continue;
    RumorPushPayload::Entry e;
    e.id = id;
    e.age = rit->second.age;
    e.inner = rit->second.msg;
    payload->entries.push_back(std::move(e));
  }
  if (payload->entries.empty()) return;
  sim::Message resp;
  resp.type = sim::MsgType::kRumorPullResp;
  resp.from = to;
  resp.size_bytes = payload->wire_size();
  resp.payload = std::move(payload);
  ++stats_.pull_responses;
  net_.send(to, msg.from, resp, g.cls);
}

void RumorMesh::handle_pull_resp(NodeId to, const sim::Message& msg) {
  const auto& p = sim::payload_as<RumorPushPayload>(msg);
  const auto git = groups_.find(p.group_key);
  if (git == groups_.end()) return;
  GroupState& g = git->second;
  const auto sit = g.index_of.find(to.value);
  if (sit == g.index_of.end()) return;
  const std::size_t slot = sit->second;
  NodeState& ns = node_state(p.group_key, slot);

  for (const auto& e : p.entries) {
    if (ns.rumors.contains(e.id) || ns.retired.contains(e.id)) {
      ++stats_.dups_dropped;
      continue;
    }
    // Solicited-response guard: only entries this node actually pulled are
    // accepted.  A tampered or forged response (an id nobody asked for, or an
    // id rewritten to smuggle a different payload) is dropped here — honest
    // peers only ever answer with the exact ids from the request.
    if (!ns.pulls_inflight.contains(e.id)) {
      ++stats_.resp_rejected;
      continue;
    }
    sim::Message inner = e.inner;
    inner.span = msg.span;
    accept(p.group_key, g, slot, e.id, static_cast<std::uint16_t>(e.age + 1), inner,
           /*deliver=*/true);
  }
}

void RumorMesh::on_message(NodeId to, const sim::Message& msg) {
  switch (msg.type) {
    case sim::MsgType::kRumorPush: handle_push(to, msg); return;
    case sim::MsgType::kRumorPullReq: handle_pull_req(to, msg); return;
    case sim::MsgType::kRumorPullResp: handle_pull_resp(to, msg); return;
    default: return;
  }
}

}  // namespace jenga::gossip
