#include "gossip/batch.hpp"

#include <algorithm>

#include "gossip/rumor.hpp"

namespace jenga::gossip {

std::uint64_t fold_frame_id(const BatchFramePayload& frame) {
  std::uint64_t id = 0xA0761D6478BD642FULL;
  for (const auto& item : frame.items) id = sim::rumor_id_mix(id, item.rumor_id);
  return id;
}

bool frame_id_matches(const BatchFramePayload& frame) {
  for (std::size_t i = 1; i < frame.items.size(); ++i)
    if (frame.items[i - 1].rumor_id > frame.items[i].rumor_id) return false;
  return fold_frame_id(frame) == frame.frame_id;
}

void Batcher::enqueue(NodeId from, std::span<const NodeId> group, std::uint64_t rumor_id,
                      sim::Message msg, sim::TrafficClass cls) {
  if (group.empty()) return;
  const std::uint64_t key = sim::rumor_id_mix(from.value + 1, group_key_of(group));
  auto [it, inserted] = pending_.try_emplace(key);
  Pending& p = it->second;
  if (inserted) {
    p.from = from;
    p.group.assign(group.begin(), group.end());
    p.cls = cls;
  }
  BatchFramePayload::Item item;
  item.rumor_id = rumor_id;
  item.inner = std::move(msg);
  p.items.push_back(std::move(item));
  ++stats_.items_enqueued;

  if (!p.flush_scheduled) {
    p.flush_scheduled = true;
    // Aligned boundary: co-deciding relays flush at the same instant and
    // therefore frame the same item set -> identical frame rumor ids.
    const SimTime now = net_.simulator().now();
    const SimTime w = std::max<SimTime>(1, window_);
    const SimTime at = (now / w + 1) * w;
    net_.simulator().schedule_at(at, [this, key] { flush(key); });
  }
}

void Batcher::flush(std::uint64_t key) {
  const auto it = pending_.find(key);
  if (it == pending_.end()) return;
  Pending& p = it->second;
  p.flush_scheduled = false;
  if (p.items.empty()) return;

  auto payload = std::make_shared<BatchFramePayload>();
  payload->items = std::move(p.items);
  p.items.clear();
  std::sort(payload->items.begin(), payload->items.end(),
            [](const auto& a, const auto& b) { return a.rumor_id < b.rumor_id; });

  // The frame's identity is the fold of its (sorted) item ids: relays that
  // framed the same certified items start the same rumor.  Embedded in the
  // payload so receivers can validate it against the items (forged-frame
  // guard).
  const std::uint64_t frame_id = fold_frame_id(*payload);
  payload->frame_id = frame_id;

  sim::Message frame;
  frame.type = sim::MsgType::kBatchFrame;
  frame.from = p.from;
  frame.size_bytes = payload->wire_size();
  const std::size_t count = payload->items.size();
  frame.payload = std::move(payload);

  ++stats_.frames_sent;
  stats_.max_frame_items = std::max<std::uint64_t>(stats_.max_frame_items, count);
  net_.broadcast(sim::BroadcastKind::kRelay, p.from, p.group, frame_id, frame, p.cls);
  // The relayer ingests its own copy through the frame too, so the first
  // sight of every contained cert is a pooled pass, never an individual
  // verification (dissemination skips the origin).
  net_.deliver_local(p.from, frame);
}

}  // namespace jenga::gossip
