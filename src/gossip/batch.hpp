// Per-(shard,channel) message batching for the relay layer (DESIGN.md §12).
//
// In rumor mode every certified grant/result relay used to start its own
// spread.  The Batcher instead coalesces all messages a relay node wants to
// send into one destination group within a proposal-cadence window into a
// single framed kBatchFrame rumor.  Flush instants are aligned to wall-clock
// multiples of the window, so the co-deciding relays of one subgroup — which
// enqueue the same certified items at the same decide time — emit
// byte-identical frames whose fold-of-item-ids rumor id dedups to ONE spread
// across the whole group.  Receivers unpack the frame and feed each inner
// message through the normal handler path; item-level dedup in the core
// engine remains the backstop for frames that differ across relays.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "simnet/network.hpp"

namespace jenga::gossip {

/// Wire payload of kBatchFrame: the coalesced inner messages plus their
/// individual rumor ids (receivers may dedup per item).
struct BatchFramePayload : sim::Payload {
  struct Item {
    std::uint64_t rumor_id = 0;
    sim::Message inner;
  };
  std::vector<Item> items;
  /// The frame's own identity: the fold of its sorted item rumor ids (also
  /// the rumor id the frame spreads under).  Receivers recompute the fold
  /// and reject any frame whose embedded id disagrees — a forged or tampered
  /// frame cannot smuggle items under another frame's identity.
  std::uint64_t frame_id = 0;

  [[nodiscard]] std::uint32_t wire_size() const {
    std::uint32_t n = 24;
    for (const auto& it : items) n += 8 + it.inner.size_bytes;
    return n;
  }
};

/// Folds the frame's item ids into its identity.  The items must already be
/// sorted by rumor_id (flush order); callers validating a received frame
/// should check sortedness too — see frame_id_matches.
[[nodiscard]] std::uint64_t fold_frame_id(const BatchFramePayload& frame);

/// Forged-frame guard: true iff the items are sorted by rumor_id and their
/// fold equals the embedded frame id.
[[nodiscard]] bool frame_id_matches(const BatchFramePayload& frame);

struct BatchStats {
  std::uint64_t items_enqueued = 0;
  std::uint64_t frames_sent = 0;
  std::uint64_t max_frame_items = 0;
  std::uint64_t frames_rejected = 0;  // received frames failing the id guard
};

class Batcher {
 public:
  Batcher(sim::Network& net, SimTime window) : net_(net), window_(window) {}

  /// Queues `msg` for dissemination from `from` into `group`; flushed as part
  /// of one kBatchFrame at the next aligned window boundary.  `rumor_id` is
  /// the item's own dedup identity (also folded into the frame id).
  void enqueue(NodeId from, std::span<const NodeId> group, std::uint64_t rumor_id,
               sim::Message msg, sim::TrafficClass cls);

  [[nodiscard]] const BatchStats& stats() const { return stats_; }
  [[nodiscard]] SimTime window() const { return window_; }

  /// Counts a received frame dropped by the id guard (the receive path lives
  /// in the core engine, which owns no BatchStats of its own).
  void count_rejected_frame() { ++stats_.frames_rejected; }

 private:
  struct Pending {
    NodeId from{};
    std::vector<NodeId> group;
    sim::TrafficClass cls = sim::TrafficClass::kCrossShard;
    std::vector<BatchFramePayload::Item> items;
    bool flush_scheduled = false;
  };

  void flush(std::uint64_t key);

  sim::Network& net_;
  SimTime window_;
  BatchStats stats_;
  /// Keyed (sender, destination-group) — each relay batches per target group.
  std::unordered_map<std::uint64_t, Pending> pending_;
};

}  // namespace jenga::gossip
