// Push-pull rumor mongering with dup-drop (DESIGN.md §12), modeled on
// Zilliqa's libRumorSpreading / RumorManager.
//
// Each (group, rumor) pair on each member runs a small state machine:
//
//   NEW   — actively pushed: every round the holder forwards the rumor (plus
//           a digest of every id it knows) to `fanout` random peers.  A rumor
//           copy carries its age in rounds; once the age exceeds the group's
//           push budget B = ceil(log2 n) + extra_push_rounds — or the holder
//           has heard `dup_kill` duplicates, the classic "most peers already
//           know it" signal — the rumor goes KNOWN.
//   KNOWN — held but no longer pushed.  The holder keeps advertising the id
//           in digest pings at a low anti-entropy cadence, so lossy or
//           partitioned receivers discover the gap and pull the payload
//           (kRumorPullReq -> kRumorPullResp) without any sender rebroadcast.
//   OLD   — retired after `retention`; the id is finally forgotten.
//
// Dup-drop: every rumor is keyed by a caller-supplied content-derived id
// (sim::rumor_id_mix), so several subgroup relays starting the same certified
// batch merge into one spread and relays never amplify.
//
// The mesh is one simulator-wide object (state for every node lives here,
// like sim::Network itself).  All transmission goes back through
// Network::send, paying the full timing + fault model; accepted rumors are
// handed to the destination's registered handler synchronously inside the
// carrying push's delivery, so causal spans parent on the inbound copy and
// trace_lint stays clean.  Peer selection draws from the mesh's own rng
// stream — fault-free runs of the naive/tree transports consume the exact
// same network rng stream as before this subsystem existed.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "simnet/network.hpp"

namespace jenga::gossip {

struct RumorConfig {
  /// Peers pushed per round while a rumor is NEW.
  std::size_t fanout = 3;
  /// Push-round cadence per holder.
  SimTime round_interval = 150 * kMillisecond;
  /// Push budget B = ceil(log2 n) + extra_push_rounds rounds of age.
  std::uint32_t extra_push_rounds = 2;
  /// Heard duplicates before an early NEW -> KNOWN transition.
  std::uint32_t dup_kill = 4;
  /// Digest-ping cadence while KNOWN rumors are retained: one ping to one
  /// random peer every `anti_entropy_every` ticks (pull-based loss repair).
  std::uint32_t anti_entropy_every = 4;
  /// Ids advertised per push/ping (most recent first).
  std::size_t digest_window = 128;
  /// How long a rumor id is remembered (dup-drop + pull-serving window).
  /// Partitions must heal within this window to be repaired.
  SimTime retention = 30 * kSecond;
  /// Pull-request rate limit per (serving member, requester): at most
  /// `pull_req_max` kRumorPullReq served per window.  An unthrottled suspect
  /// peer could otherwise amplify pull traffic unboundedly; the ceiling is
  /// far above anything an honest peer emits (one request per missing-digest
  /// discovery, already deduped by pulls_inflight).
  SimTime pull_req_window = 300 * kMillisecond;
  std::uint32_t pull_req_max = 64;
};

struct RumorStats {
  std::uint64_t rumors_started = 0;
  std::uint64_t pushes_sent = 0;        // kRumorPush messages (incl. digest pings)
  std::uint64_t pull_requests = 0;      // kRumorPullReq messages
  std::uint64_t pull_responses = 0;     // kRumorPullResp messages
  std::uint64_t dups_dropped = 0;       // received copies of an already-known rumor
  std::uint64_t pulls_throttled = 0;    // pull requests dropped by the rate limit
  std::uint64_t resp_rejected = 0;      // unsolicited pull-response entries dropped
  std::uint64_t delivered = 0;          // inner messages handed to node handlers
  std::uint64_t covered_rumors = 0;     // rumors that reached every group member
  /// Rounds from a rumor's start to full group coverage (one entry per
  /// covered rumor); the histogram behind net.rumor.rounds_to_coverage.
  std::vector<std::uint32_t> coverage_rounds;
};

/// Wire payload of kRumorPush (entries + digest) and kRumorPullResp (entries
/// only).
struct RumorPushPayload : sim::Payload {
  std::uint64_t group_key = 0;
  struct Entry {
    std::uint64_t id = 0;
    std::uint16_t age = 0;
    sim::Message inner;
  };
  std::vector<Entry> entries;
  std::vector<std::uint64_t> digest;

  [[nodiscard]] std::uint32_t wire_size() const {
    std::uint32_t n = 24;
    for (const auto& e : entries) n += 12 + e.inner.size_bytes;
    n += static_cast<std::uint32_t>(8 * digest.size());
    return n;
  }
};

/// Wire payload of kRumorPullReq.
struct RumorPullPayload : sim::Payload {
  std::uint64_t group_key = 0;
  std::vector<std::uint64_t> ids;

  [[nodiscard]] std::uint32_t wire_size() const {
    return 24 + static_cast<std::uint32_t>(8 * ids.size());
  }
};

class RumorMesh final : public sim::RumorTransport {
 public:
  RumorMesh(sim::Network& net, RumorConfig config, Rng rng)
      : net_(net), config_(config), rng_(std::move(rng)) {}

  void broadcast(NodeId origin, std::span<const NodeId> group, std::uint64_t rumor_id,
                 const sim::Message& msg, sim::TrafficClass cls) override;
  void on_message(NodeId to, const sim::Message& msg) override;

  [[nodiscard]] const RumorStats& stats() const { return stats_; }
  [[nodiscard]] const RumorConfig& config() const { return config_; }

  /// Advisory hook for the anti-entropy cadence: base tick divisor -> the
  /// divisor to use this round.  The failure detector plugs in here to run
  /// pull repair hotter while the network is degraded; must return `base`
  /// in healthy runs so clean schedules stay bit-identical.
  using CadenceHook = std::function<std::uint32_t(std::uint32_t base)>;
  void set_cadence_hook(CadenceHook hook) { cadence_hook_ = std::move(hook); }

 private:
  enum class Phase : std::uint8_t { kNew = 0, kKnown = 1 };

  struct RumorState {
    Phase phase = Phase::kNew;
    std::uint16_t age = 0;        // rounds since origin (carried on the wire)
    std::uint8_t dups = 0;
    SimTime heard_at = 0;
    sim::Message msg;
  };

  struct NodeState {
    bool timer_armed = false;
    std::uint64_t ticks = 0;
    std::unordered_map<std::uint64_t, RumorState> rumors;
    /// Outstanding pulls: id -> when requested (re-pull allowed after a gap).
    /// Doubles as the solicitation record: a pull-response entry whose id was
    /// never requested is rejected as forged/unsolicited.
    std::unordered_map<std::uint64_t, SimTime> pulls_inflight;
    /// Pull-request rate-limit windows, keyed by requester node id.
    std::unordered_map<std::uint32_t, std::pair<SimTime, std::uint32_t>> pull_req_log;
    /// OLD rumors: ids retired after `retention`.  The payload is dropped but
    /// the id stays a tombstone, so a straggler push or a peer's digest ping
    /// can never resurrect an already-delivered rumor (without this, an
    /// expire/re-pull cycle between out-of-phase holders would keep a rumor
    /// alive forever).
    std::unordered_set<std::uint64_t> retired;
  };

  /// Global coverage tracking for telemetry (passive).
  struct RumorMeta {
    SimTime first_at = 0;
    std::uint32_t holders = 0;
    bool covered = false;
  };

  struct GroupState {
    std::vector<NodeId> members;
    std::unordered_map<std::uint32_t, std::size_t> index_of;  // node id -> slot
    sim::TrafficClass cls = sim::TrafficClass::kIntraShard;
    std::uint32_t push_limit = 0;  // B = ceil(log2 n) + extra
    std::unordered_map<std::uint64_t, RumorMeta> meta;
  };

  GroupState& group_for(std::uint64_t key, std::span<const NodeId> members,
                        sim::TrafficClass cls);
  void accept(std::uint64_t group_key, GroupState& g, std::size_t slot, std::uint64_t id,
              std::uint16_t age, const sim::Message& inner, bool deliver);
  void arm_timer(std::uint64_t group_key, std::size_t slot);
  void tick(std::uint64_t group_key, std::size_t slot);
  void handle_push(NodeId to, const sim::Message& msg);
  void handle_pull_req(NodeId to, const sim::Message& msg);
  void handle_pull_resp(NodeId to, const sim::Message& msg);
  [[nodiscard]] std::vector<std::uint64_t> build_digest(const NodeState& ns) const;
  void send_pulls(std::uint64_t group_key, GroupState& g, std::size_t slot, NodeId from_peer,
                  std::span<const std::uint64_t> advertised);

  sim::Network& net_;
  RumorConfig config_;
  Rng rng_;
  RumorStats stats_;
  CadenceHook cadence_hook_;
  std::unordered_map<std::uint64_t, GroupState> groups_;
  /// Per-group per-member state, keyed (group_key ^ mixed slot).
  std::unordered_map<std::uint64_t, NodeState> node_state_;

  [[nodiscard]] static std::uint64_t node_key(std::uint64_t group_key, std::size_t slot) {
    return group_key ^ (0x9E3779B97F4A7C15ULL * (slot + 1));
  }
  NodeState& node_state(std::uint64_t group_key, std::size_t slot) {
    return node_state_[node_key(group_key, slot)];
  }
};

/// Canonical key for a member list (one rumor-spreading domain).  Epoch
/// reshuffles produce different member lists and therefore fresh groups.
[[nodiscard]] std::uint64_t group_key_of(std::span<const NodeId> members);

}  // namespace jenga::gossip
