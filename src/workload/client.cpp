#include "workload/client.hpp"

#include <utility>

namespace jenga::workload {

OpenLoopClient::OpenLoopClient(sim::Simulator& sim, mempool::IngressSet& ingress,
                               ClientConfig config, Rng rng, MakeTx make_tx, Submit submit,
                               InflightFn inflight)
    : sim_(sim),
      ingress_(ingress),
      config_(config),
      arrival_rng_(rng.fork("arrival")),
      tier_rng_(rng.fork("tier")),
      retry_rng_(rng.fork("retry")),
      arrival_(config.arrival, rng.fork("interarrival")),
      make_tx_(std::move(make_tx)),
      submit_(std::move(submit)),
      inflight_(std::move(inflight)) {}

void OpenLoopClient::start() {
  ingress_.set_expiry_observer([this](const core::TxPtr& tx) {
    resident_meta_.erase(tx->hash);
    ++stats_.expired_pool;
  });
  schedule_next_arrival();
  arm_pump();
}

void OpenLoopClient::schedule_next_arrival() {
  if (arrivals_done()) return;
  double mult = rate_multiplier_;
  switch (ingress_.worst_backpressure()) {
    case mempool::Backpressure::kNone: break;
    case mempool::Backpressure::kSoft: mult *= 0.5; break;
    case mempool::Backpressure::kShed: mult *= 0.25; break;
  }
  const SimTime delay = arrival_.next_delay(sim_.now(), mult);
  sim_.schedule_after(delay, [this] { on_arrival(); });
}

void OpenLoopClient::on_arrival() {
  ++generated_;
  ++stats_.generated;
  ledger::Transaction tx = make_tx_();
  const std::uint8_t tier = config_.fee_tiers.draw(tier_rng_);
  tx.fee *= config_.fee_tiers.multipliers[tier];
  tx.finalize();  // fee is hashed: re-derive identity (and thus channel)
  offer_now(std::make_shared<const ledger::Transaction>(std::move(tx)), tier, 0);
  schedule_next_arrival();
}

void OpenLoopClient::offer_now(core::TxPtr tx, std::uint8_t tier, std::uint32_t attempt) {
  // Hard backpressure gate: low tiers do not even knock.  Top-tier offers
  // proceed — a high enough fee should displace a resident, not be shed.
  const ShardId shard = ingress_.shard_for(tx);
  if (ingress_.backpressure(shard) == mempool::Backpressure::kShed &&
      tier + 1 < mempool::kFeeTiers) {
    ++stats_.shed;
    if (registry_ != nullptr) registry_->counter("mempool.backpressure_shed").inc();
    schedule_retry(std::move(tx), tier, attempt + 1);
    return;
  }

  ++stats_.offers;
  mempool::OfferOutcome out = ingress_.offer(tx, sim_.now(), tier);
  switch (out.result) {
    case mempool::AdmitResult::kAdmitted: {
      resident_meta_[tx->hash] = TxMeta{tier, attempt};
      if (out.evicted) {
        ++stats_.evicted_requeued;
        TxMeta meta;
        if (const auto it = resident_meta_.find(out.evicted->hash);
            it != resident_meta_.end()) {
          meta = it->second;
          resident_meta_.erase(it);
        }
        schedule_retry(std::move(out.evicted), meta.tier, meta.attempt + 1);
      }
      arm_pump();
      break;
    }
    case mempool::AdmitResult::kRejectedFull:
      schedule_retry(std::move(tx), tier, attempt + 1);
      break;
    case mempool::AdmitResult::kRejectedDuplicate:
      // Identity collision with a resident: retrying the same bytes can only
      // collide again — terminal.
      ++stats_.rejected_terminal;
      break;
    case mempool::AdmitResult::kRejectedExpired:
      ++stats_.expired_doa;
      break;
  }
}

void OpenLoopClient::schedule_retry(core::TxPtr tx, std::uint8_t tier,
                                    std::uint32_t next_attempt) {
  if (next_attempt >= config_.retry.max_attempts) {
    ++stats_.rejected_terminal;
    if (registry_ != nullptr) registry_->counter("mempool.retry_exhausted").inc();
    return;
  }
  ++stats_.retries;
  ++pending_retries_;
  if (registry_ != nullptr) registry_->counter("mempool.retry").inc();
  const SimTime wait = config_.retry.backoff(next_attempt, retry_rng_);
  sim_.schedule_after(wait, [this, tx = std::move(tx), tier, next_attempt]() mutable {
    --pending_retries_;
    offer_now(std::move(tx), tier, next_attempt);
  });
}

void OpenLoopClient::arm_pump() {
  if (pump_armed_ || !work_remaining()) return;
  pump_armed_ = true;
  sim_.schedule_after(config_.pump_interval, [this] { pump(); });
}

void OpenLoopClient::pump() {
  pump_armed_ = false;
  const std::size_t inflight = inflight_();
  const std::size_t credits =
      config_.max_inflight > inflight ? config_.max_inflight - inflight : 0;
  if (credits > 0) {
    ingress_.dispatch(sim_.now(), credits, [this](core::TxPtr tx) {
      resident_meta_.erase(tx->hash);
      submit_(std::move(tx));
    });
  } else {
    // Window full: still shed anything whose deadline passed while waiting.
    ingress_.expire(sim_.now());
  }
  arm_pump();
}

}  // namespace jenga::workload
