#include "workload/trace.hpp"

#include <algorithm>
#include <cmath>
#include <cassert>

namespace jenga::workload {

using ledger::Transaction;
using ledger::TxKind;
using vm::Instruction;
using vm::Op;

TraceGenerator::TraceGenerator(TraceConfig config, Rng rng)
    : config_(config), rng_(std::move(rng)) {
  contracts_.reserve(config_.num_contracts);
  for (std::uint64_t i = 0; i < config_.num_contracts; ++i)
    contracts_.push_back(generate_contract(ContractId{i}));
  if (config_.zipf_skew > 0.0) {
    zipf_cdf_.reserve(config_.num_contracts);
    double sum = 0.0;
    for (std::uint64_t r = 0; r < config_.num_contracts; ++r) {
      sum += 1.0 / std::pow(static_cast<double>(r + 1), config_.zipf_skew);
      zipf_cdf_.push_back(sum);
    }
  }
}

ContractId TraceGenerator::sample_contract() {
  if (zipf_cdf_.empty()) return ContractId{rng_.uniform(contracts_.size())};
  // Inverse-CDF draw over the precomputed harmonic weights: rank r (0 = the
  // hottest contract) with probability ∝ 1/(r+1)^s.
  const double u = rng_.uniform01() * zipf_cdf_.back();
  const auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  return ContractId{static_cast<std::uint64_t>(it - zipf_cdf_.begin())};
}

double TraceGenerator::ramp(double start, double end, std::uint64_t height) const {
  const double t = std::min(1.0, static_cast<double>(height) /
                                     static_cast<double>(std::max<std::uint64_t>(
                                         config_.trend_blocks, 1)));
  return start + (end - start) * t;
}

double TraceGenerator::expected_contract_ratio(std::uint64_t h) const {
  return ramp(config_.contract_ratio_start, config_.contract_ratio_end, h);
}
double TraceGenerator::expected_steps(std::uint64_t h) const {
  return ramp(config_.steps_start, config_.steps_end, h);
}
double TraceGenerator::expected_contracts(std::uint64_t h) const {
  return ramp(config_.contracts_start, config_.contracts_end, h);
}

std::shared_ptr<const vm::ContractLogic> TraceGenerator::generate_contract(ContractId id) {
  auto logic = std::make_shared<vm::ContractLogic>();
  logic->id = id;
  const auto num_fns = static_cast<std::uint32_t>(
      rng_.uniform_int(config_.functions_min, config_.functions_max));
  for (std::uint32_t f = 0; f < num_fns; ++f) {
    vm::Function fn;
    fn.name = "fn" + std::to_string(f);
    const auto len = static_cast<std::uint32_t>(
        rng_.uniform_int(config_.function_length_min, config_.function_length_max));
    // Emit repeated read-modify-write stanzas over this contract's own keys;
    // each stanza is 6 instructions, so the body really exercises storage.
    std::uint32_t emitted = 0;
    while (emitted + 6 < len) {
      const std::uint64_t key = rng_.uniform(16);
      fn.code.push_back({Op::kPush, key});                    // store key
      fn.code.push_back({Op::kPush, key});                    // load key
      fn.code.push_back({Op::kSload, 0});
      fn.code.push_back({Op::kPush, rng_.uniform(1000) + 1});
      fn.code.push_back({Op::kAdd, 0});
      fn.code.push_back({Op::kSstore, 0});
      emitted += 6;
    }
    fn.code.push_back({Op::kReturn, 0});
    logic->functions.push_back(std::move(fn));
  }
  return logic;
}

ledger::ContractState TraceGenerator::initial_state(std::size_t contract_index) const {
  // Deterministic per contract, independent of generation order.
  Rng local(0x57A7E5ULL ^ (contract_index * 0x9E3779B97F4A7C15ULL));
  const auto entries = static_cast<std::uint64_t>(local.uniform_int(
      config_.initial_state_entries_min, config_.initial_state_entries_max));
  ledger::ContractState st;
  for (std::uint64_t k = 0; k < entries; ++k) st[k] = local.uniform(1 << 20);
  return st;
}

Transaction TraceGenerator::deploy_tx(std::size_t contract_index, SimTime now) {
  assert(contract_index < contracts_.size());
  const AccountId deployer{rng_.uniform(config_.num_accounts)};
  auto tx = ledger::make_deploy(deployer, contracts_[contract_index],
                                initial_state(contract_index).size(), config_.base_fee, now);
  return tx;
}

bool TraceGenerator::next_is_contract(std::uint64_t block_height) {
  return rng_.chance(expected_contract_ratio(block_height));
}

Transaction TraceGenerator::contract_tx(std::uint64_t block_height, SimTime now) {
  Transaction tx;
  tx.kind = TxKind::kContractCall;
  tx.sender = AccountId{rng_.uniform(config_.num_accounts)};
  tx.fee = config_.base_fee;
  tx.created_at = now;

  // Distinct contracts: truncated normal around the height's trend (a
  // geometric's clamped tail would drag the realized mean off-target).
  const double want_contracts = expected_contracts(block_height);
  auto m = static_cast<std::uint32_t>(
      std::max(1.0, std::round(rng_.normal(want_contracts, want_contracts / 3.0))));
  m = std::clamp<std::uint32_t>(m, 1,
                                std::min<std::uint32_t>(config_.max_contracts_per_tx,
                                                        static_cast<std::uint32_t>(
                                                            contracts_.size())));
  // Sample m distinct contract ids.
  std::vector<ContractId> chosen;
  while (chosen.size() < m) {
    const ContractId c = sample_contract();
    if (std::find(chosen.begin(), chosen.end(), c) == chosen.end()) chosen.push_back(c);
  }
  tx.contracts = chosen;
  tx.accounts = {tx.sender};

  // Steps: at least one per touched contract so every declared contract is
  // really used; extra steps spread randomly (Fig. 3c trend).
  const double want_steps = expected_steps(block_height);
  auto k = static_cast<std::uint32_t>(
      std::max(1.0, std::round(rng_.normal(want_steps, want_steps / 4.0))));
  k = std::clamp<std::uint32_t>(k, m, config_.max_steps);
  for (std::uint32_t s = 0; s < k; ++s) {
    const std::uint16_t slot =
        s < m ? static_cast<std::uint16_t>(s)
              : static_cast<std::uint16_t>(rng_.uniform(m));
    const auto& logic = *contracts_[tx.contracts[slot].value];
    vm::CallStep step;
    step.contract_slot = slot;
    step.function = static_cast<std::uint16_t>(rng_.uniform(logic.functions.size()));
    step.args = {rng_.uniform(1 << 16)};
    tx.steps.push_back(std::move(step));
  }
  tx.finalize();
  return tx;
}

Transaction TraceGenerator::transfer_tx(SimTime now) {
  const AccountId from{rng_.uniform(config_.num_accounts)};
  AccountId to{rng_.uniform(config_.num_accounts)};
  if (to == from) to = AccountId{(to.value + 1) % config_.num_accounts};
  return ledger::make_transfer(from, to, rng_.uniform(100) + 1, config_.base_fee, now);
}

WindowStats sample_window(TraceGenerator& gen, std::uint64_t block_height, std::size_t num_txs) {
  WindowStats stats;
  std::size_t contract_txs = 0;
  std::uint64_t steps = 0, contracts = 0;
  for (std::size_t i = 0; i < num_txs; ++i) {
    if (gen.next_is_contract(block_height)) {
      ++contract_txs;
      const auto tx = gen.contract_tx(block_height, 0);
      steps += tx.step_count();
      contracts += tx.distinct_contracts();
    }
  }
  stats.contract_tx_ratio = static_cast<double>(contract_txs) / static_cast<double>(num_txs);
  if (contract_txs > 0) {
    stats.avg_steps = static_cast<double>(steps) / static_cast<double>(contract_txs);
    stats.avg_contracts = static_cast<double>(contracts) / static_cast<double>(contract_txs);
  }
  return stats;
}

}  // namespace jenga::workload
