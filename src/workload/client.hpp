// Open-loop client population (DESIGN.md §10).
//
// One OpenLoopClient models the aggregate of all external users: it draws
// arrival instants from an ArrivalProcess, stamps each generated transaction
// with a fee tier, and pushes it at the ingress mempools.  The loop is open —
// generation never waits for completion — so offered load above the service
// rate is possible, and the admission machinery (not an implicit pacing
// assumption) is what keeps the system bounded.
//
// The client also owns the two feedback paths:
//
//   Backpressure — before each inter-arrival draw the worst pool level
//                  throttles the offered rate (soft → ×0.5, shed → ×0.25);
//                  at offer time a hard-full target pool sheds low-tier
//                  traffic outright (top-tier offers still go through so a
//                  high fee can displace a resident).  Both are counted.
//   Retry        — rejected, shed and evicted transactions re-offer after an
//                  exponential-backoff-with-jitter wait, up to
//                  RetryPolicy::max_attempts total offers; after that the tx
//                  is terminally rejected (reason-coded, counted).
//
// A dispatch pump drains the pools into the system under an inflight window
// (credits = max_inflight − in_flight).  The pump re-arms itself only while
// work remains — arrivals pending, retries in backoff, or residents queued —
// so `run_until_idle` terminates once the run drains.
//
// Determinism: tier draws, backoff jitter and arrival gaps all come from
// forks of one seeded Rng; pool behaviour is a pure function of the offer
// sequence.  Same seed + config → same admit/reject/expire/dispatch order.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "common/rng.hpp"
#include "mempool/ingress.hpp"
#include "simnet/simulator.hpp"
#include "workload/arrival.hpp"

namespace jenga::workload {

struct ClientConfig {
  ArrivalConfig arrival;
  RetryPolicy retry;
  FeeTierSpec fee_tiers;
  /// Total transactions to generate (arrivals stop after this many).
  std::size_t total_txs = 0;
  /// Dispatch window: credits per pump tick = max_inflight − in_flight().
  std::size_t max_inflight = 512;
  SimTime pump_interval = 50 * kMillisecond;
};

struct ClientStats {
  std::uint64_t generated = 0;
  std::uint64_t offers = 0;             // admission attempts, incl. retries
  std::uint64_t retries = 0;            // backoff waits scheduled
  std::uint64_t shed = 0;               // offers avoided under hard backpressure
  std::uint64_t evicted_requeued = 0;   // displaced residents sent to backoff
  std::uint64_t rejected_terminal = 0;  // gave up after max_attempts (or dup)
  std::uint64_t expired_doa = 0;        // dead on arrival (TTL ≤ 0)
  std::uint64_t expired_pool = 0;       // TTL-shed out of a pool

  /// Transactions that ended at the client instead of inside the system.
  [[nodiscard]] std::uint64_t terminal_local() const {
    return rejected_terminal + expired_doa + expired_pool;
  }
};

class OpenLoopClient {
 public:
  using MakeTx = std::function<ledger::Transaction()>;
  using Submit = std::function<void(core::TxPtr)>;
  using InflightFn = std::function<std::size_t()>;

  OpenLoopClient(sim::Simulator& sim, mempool::IngressSet& ingress, ClientConfig config,
                 Rng rng, MakeTx make_tx, Submit submit, InflightFn inflight);

  /// Schedules the first arrival and arms the dispatch pump.
  void start();

  /// External rate scaling (FaultPlan overload bursts hook in here); composes
  /// with the backpressure throttle.
  void set_rate_multiplier(double m) { rate_multiplier_ = m; }
  [[nodiscard]] double rate_multiplier() const { return rate_multiplier_; }

  [[nodiscard]] const ClientStats& stats() const { return stats_; }
  [[nodiscard]] bool arrivals_done() const { return generated_ >= config_.total_txs; }
  [[nodiscard]] std::size_t pending_retries() const { return pending_retries_; }
  /// Every generated tx has left the client: dispatched into the system or
  /// terminal (rejected/expired).  System-side completion is the caller's
  /// remaining check.
  [[nodiscard]] bool drained() const {
    return arrivals_done() && pending_retries_ == 0 && ingress_.resident() == 0;
  }

  void set_telemetry(telemetry::MetricsRegistry* registry) { registry_ = registry; }

 private:
  struct TxMeta {
    std::uint8_t tier = 0;
    std::uint32_t attempt = 0;  // offers made so far
  };

  void schedule_next_arrival();
  void on_arrival();
  void offer_now(core::TxPtr tx, std::uint8_t tier, std::uint32_t attempt);
  void schedule_retry(core::TxPtr tx, std::uint8_t tier, std::uint32_t next_attempt);
  void arm_pump();
  void pump();
  [[nodiscard]] bool work_remaining() const {
    return !arrivals_done() || pending_retries_ > 0 || ingress_.resident() > 0;
  }

  sim::Simulator& sim_;
  mempool::IngressSet& ingress_;
  ClientConfig config_;
  Rng arrival_rng_;
  Rng tier_rng_;
  Rng retry_rng_;
  ArrivalProcess arrival_;
  MakeTx make_tx_;
  Submit submit_;
  InflightFn inflight_;

  ClientStats stats_;
  std::size_t generated_ = 0;
  std::size_t pending_retries_ = 0;
  double rate_multiplier_ = 1.0;
  bool pump_armed_ = false;
  /// Retry metadata for resident txs (consulted when one is evicted or
  /// expires); erased on dispatch.
  std::unordered_map<Hash256, TxMeta> resident_meta_;
  telemetry::MetricsRegistry* registry_ = nullptr;
};

}  // namespace jenga::workload
