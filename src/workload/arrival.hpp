// Open-loop arrival processes (DESIGN.md §10).
//
// Closed-loop pacing (a fixed window of outstanding transactions) can never
// overload the system — completion gates generation, so the measured
// throughput is just the service rate.  Real clients do not wait: arrivals
// follow an external clock.  This module models that clock as a
// non-homogeneous Poisson process whose instantaneous rate λ(t) is shaped by
// the chosen mode:
//
//   kPoisson — constant λ = rate_tps.
//   kBursty  — λ is rate_tps except inside periodic burst windows, where it
//              is multiplied by burst_multiplier (flash crowds / NFT mints).
//   kDiurnal — λ = rate_tps × (1 + amplitude × sin(2πt/period)): the slow
//              day/night swing, compressed to simulation scale.
//
// On top of the mode shape sits an external multiplier (the FaultInjector's
// scripted overload bursts and the client's backpressure throttle both feed
// it).  Inter-arrival draws use the exponential inverse-CDF against the rate
// at the draw instant — deterministic given the Rng stream.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace jenga::workload {

enum class ArrivalMode : std::uint8_t {
  kNone = 0,  // legacy injection paths (closed loop / uniform window)
  kPoisson,
  kBursty,
  kDiurnal,
};

[[nodiscard]] const char* arrival_mode_name(ArrivalMode m);

struct ArrivalConfig {
  ArrivalMode mode = ArrivalMode::kNone;
  /// Base offered rate in transactions per second of simulated time.
  double rate_tps = 100.0;

  // kBursty: every `burst_period`, a window of `burst_duration` runs at
  // rate_tps × burst_multiplier.
  SimTime burst_period = 20 * kSecond;
  SimTime burst_duration = 4 * kSecond;
  double burst_multiplier = 5.0;

  // kDiurnal: sinusoidal modulation, amplitude in [0, 1).
  SimTime diurnal_period = 120 * kSecond;
  double diurnal_amplitude = 0.6;
};

/// Client-side retry schedule: exponential backoff with multiplicative
/// jitter.  Attempt k (0-based) waits base × 2^k, capped at `max_backoff`,
/// then scaled by a uniform factor in [1-jitter, 1+jitter] so synchronized
/// rejections do not re-arrive as a synchronized thundering herd.
struct RetryPolicy {
  std::uint32_t max_attempts = 5;  // offers per tx; beyond this → terminal reject
  SimTime base_backoff = 200 * kMillisecond;
  SimTime max_backoff = 5 * kSecond;
  double jitter = 0.5;

  [[nodiscard]] SimTime backoff(std::uint32_t attempt, Rng& rng) const;
};

/// Fee tiers: each generated tx draws a tier, which multiplies the trace's
/// base fee.  The mempool orders by the resulting fee; the tier label rides
/// along so fairness (per-tier wait, per-tier goodput) is measurable.
struct FeeTierSpec {
  // Index 0 = lowest tier.  Weights need not sum to anything particular.
  std::uint64_t multipliers[3] = {1, 3, 10};
  std::uint32_t weights[3] = {60, 30, 10};

  [[nodiscard]] std::uint8_t draw(Rng& rng) const;
};

class ArrivalProcess {
 public:
  explicit ArrivalProcess(ArrivalConfig config, Rng rng)
      : config_(config), rng_(rng) {}

  /// Instantaneous offered rate at `t` (before the external multiplier).
  [[nodiscard]] double rate_at(SimTime t) const;

  /// Draws the delay until the next arrival given the rate at `now` scaled by
  /// `multiplier`.  Always returns ≥ 1 µs (the simulator's tick).
  [[nodiscard]] SimTime next_delay(SimTime now, double multiplier);

  [[nodiscard]] const ArrivalConfig& config() const { return config_; }

 private:
  ArrivalConfig config_;
  Rng rng_;
};

}  // namespace jenga::workload
