#include "workload/arrival.hpp"

#include <algorithm>
#include <cmath>

namespace jenga::workload {

const char* arrival_mode_name(ArrivalMode m) {
  switch (m) {
    case ArrivalMode::kNone: return "none";
    case ArrivalMode::kPoisson: return "poisson";
    case ArrivalMode::kBursty: return "bursty";
    case ArrivalMode::kDiurnal: return "diurnal";
  }
  return "?";
}

SimTime RetryPolicy::backoff(std::uint32_t attempt, Rng& rng) const {
  // Saturating shift: attempts beyond ~30 would overflow, clamp first.
  const std::uint32_t shift = std::min<std::uint32_t>(attempt, 30);
  SimTime wait = base_backoff << shift;
  if (wait > max_backoff || wait <= 0) wait = max_backoff;
  const double factor = 1.0 + jitter * (2.0 * rng.uniform01() - 1.0);
  wait = static_cast<SimTime>(static_cast<double>(wait) * factor);
  return std::max<SimTime>(wait, kMillisecond);
}

std::uint8_t FeeTierSpec::draw(Rng& rng) const {
  const std::uint64_t total =
      static_cast<std::uint64_t>(weights[0]) + weights[1] + weights[2];
  std::uint64_t r = rng.uniform(total);
  for (std::uint8_t t = 0; t < 2; ++t) {
    if (r < weights[t]) return t;
    r -= weights[t];
  }
  return 2;
}

double ArrivalProcess::rate_at(SimTime t) const {
  switch (config_.mode) {
    case ArrivalMode::kNone:
    case ArrivalMode::kPoisson:
      return config_.rate_tps;
    case ArrivalMode::kBursty: {
      const SimTime phase = config_.burst_period > 0 ? t % config_.burst_period : 0;
      return phase < config_.burst_duration ? config_.rate_tps * config_.burst_multiplier
                                            : config_.rate_tps;
    }
    case ArrivalMode::kDiurnal: {
      const double period = static_cast<double>(std::max<SimTime>(config_.diurnal_period, 1));
      const double phase = 2.0 * 3.14159265358979323846 * static_cast<double>(t) / period;
      return config_.rate_tps * (1.0 + config_.diurnal_amplitude * std::sin(phase));
    }
  }
  return config_.rate_tps;
}

SimTime ArrivalProcess::next_delay(SimTime now, double multiplier) {
  const double rate = rate_at(now) * multiplier;
  if (rate <= 0.0) return kSecond;  // throttled to zero: poll again in 1 s
  // Exponential inverse CDF; 1-u keeps the argument of log strictly positive.
  const double u = rng_.uniform01();
  const double seconds = -std::log(1.0 - u) / rate;
  const auto us = static_cast<SimTime>(seconds * static_cast<double>(kSecond));
  return std::max<SimTime>(us, 1);
}

}  // namespace jenga::workload
