#include "consensus/bft.hpp"

#include <algorithm>
#include <cassert>

#include "consensus/messages.hpp"
#include "crypto/sha256.hpp"

namespace jenga::consensus {

Hash256 vote_digest(const Hash256& value_digest, std::uint64_t height, std::uint32_t view,
                    bool commit_phase) {
  crypto::Sha256 h;
  h.update(commit_phase ? "jenga/bft-commit" : "jenga/bft-prepare");
  h.update(value_digest);
  h.update_u64(height);
  h.update_u64(view);
  return h.finish();
}

std::vector<std::uint64_t> group_public_ids(std::uint64_t crypto_seed, std::size_t n) {
  std::vector<std::uint64_t> ids;
  ids.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    ids.push_back(crypto::fast_keypair(crypto_seed * 0x9E3779B9ULL + i).public_id);
  return ids;
}

namespace {

/// Rumor identity of a proposal broadcast: the same (group, height, view,
/// value) proposed by any sender dedups to one spread.
std::uint64_t proposal_rumor_id(std::uint64_t group_tag, std::uint64_t height,
                                std::uint32_t view, const Hash256& digest) {
  std::uint64_t w = 0;
  for (int i = 0; i < 8; ++i) w = (w << 8) | digest.bytes[static_cast<std::size_t>(i)];
  return sim::rumor_id_mix(group_tag, height, view, w);
}

}  // namespace

Replica::Replica(sim::Network& net, NodeId self, std::shared_ptr<const BftConfig> config,
                 BftApp& app)
    : net_(net), self_(self), config_(std::move(config)), app_(app) {
  keys_.reserve(config_->members.size());
  for (std::size_t i = 0; i < config_->members.size(); ++i) {
    keys_.push_back(crypto::fast_keypair(config_->crypto_seed * 0x9E3779B9ULL + i));
    public_ids_.push_back(keys_.back().public_id);
  }
}

void Replica::start() {
  started_ = true;
  enter_height(next_height_);
}

void Replica::stop() {
  stopped_ = true;
  started_ = false;
  // Invalidate every armed view timer; the guards in on_message / broadcast /
  // send_to neutralize the other captured-`this` lambdas (propose retries,
  // exec-delay broadcasts, delayed votes).
  ++timer_generation_;
}

NodeId Replica::leader_for(std::uint32_t view) const {
  const std::size_t n = config_->members.size();
  return config_->members[(next_height_ + view) % n];
}

std::optional<std::size_t> Replica::member_index(NodeId id) const {
  for (std::size_t i = 0; i < config_->members.size(); ++i)
    if (config_->members[i] == id) return i;
  return std::nullopt;
}

bool Replica::verify_cert(const QuorumCert& cert) const {
  if (cert.sig.signer_count() < quorum()) return false;
  const Hash256 digest =
      vote_digest(cert.value_digest, cert.height, cert.view, /*commit inferred upstream*/ false);
  // Certificates for prepare and commit phases are distinguished by the
  // message type they ride in; verify against the prepare digest first and
  // fall back to the commit digest.
  if (crypto::fast_verify_multisig(public_ids_, digest, cert.sig)) return true;
  const Hash256 commit_digest = vote_digest(cert.value_digest, cert.height, cert.view, true);
  return crypto::fast_verify_multisig(public_ids_, commit_digest, cert.sig);
}

void Replica::broadcast(const sim::Message& msg, bool gossip, std::uint64_t rumor_id) {
  if (stopped_) return;
  if (gossip && config_->use_gossip_for_proposal) {
    net_.broadcast(sim::BroadcastKind::kProposal, self_, config_->members, rumor_id, msg,
                   config_->traffic);
  } else {
    net_.multicast(self_, config_->members, msg, config_->traffic);
  }
}

void Replica::send_to(NodeId to, const sim::Message& msg) {
  if (stopped_) return;
  if (to == self_) {
    // Local hand-off: no network traversal.
    net_.simulator().schedule_after(0, [this, msg] { on_message(msg); });
    return;
  }
  net_.send(self_, to, msg, config_->traffic);
}

void Replica::set_telemetry(telemetry::Telemetry* t) {
  telemetry_ = t;
  if (t == nullptr) {
    round_hist_ = nullptr;
    view_change_hist_ = nullptr;
    return;
  }
  round_hist_ = &t->registry.histogram("bft.round_us");
  view_change_hist_ = &t->registry.histogram("bft.view_change_us");
}

void Replica::enter_height(std::uint64_t height) {
  round_begin_ = net_.simulator().now();
  next_height_ = height;
  view_ = 0;
  proposal_.reset();
  prepare_votes_.assign(config_->members.size(), false);
  commit_votes_.assign(config_->members.size(), false);
  prepared_cert_sent_ = false;
  commit_cert_sent_ = false;
  current_value_.reset();
  seen_proposal_digest_.reset();
  sent_prepare_ = false;
  sent_commit_ = false;
  prepared_cert_.reset();
  view_votes_.clear();
  next_view_vote_ = 0;
  equivocation_view_change_sent_ = false;
  arm_view_timer();
  if (is_leader()) {
    net_.simulator().schedule_after(0, [this, height] {
      if (next_height_ == height) try_propose();
    });
  }
  if (!future_.empty()) {
    std::vector<sim::Message> replay;
    replay.swap(future_);
    for (auto& msg : replay) on_message(msg);
  }
}

void Replica::arm_view_timer() {
  const std::uint64_t gen = ++timer_generation_;
  const std::uint64_t h = next_height_;
  const std::uint32_t v = view_;
  // The failure detector (when attached) adapts the timeout: a suspected-dead
  // leader is cut loose faster, a merely-degraded network gets more slack
  // before replicas start voting the leader out.
  SimTime timeout = config_->view_timeout;
  if (view_timeout_hook_) timeout = view_timeout_hook_(self_, leader_for(v), timeout);
  net_.simulator().schedule_after(timeout, [this, gen, h, v] {
    if (timer_generation_ == gen) on_view_timeout(h, v);
  });
}

void Replica::on_view_timeout(std::uint64_t height, std::uint32_t view) {
  if (next_height_ != height || view_ != view) return;
  if (byz_ == ByzantineMode::kSilent) return;
  if (view_change_begin_ < 0) view_change_begin_ = net_.simulator().now();
  // Escalate one view further on each consecutive timeout, so a run of dead
  // leaders is eventually skipped.
  const std::uint32_t new_view = std::max(view + 1, next_view_vote_ + 1);
  next_view_vote_ = new_view;
  auto payload = std::make_shared<ViewChangePayload>();
  payload->group = config_->group_tag;
  payload->height = height;
  payload->new_view = new_view;
  payload->member_index = member_index(self_).value_or(0);
  if (prepared_cert_ && current_value_) {
    payload->prepared = *prepared_cert_;
    payload->prepared_value = *current_value_;
  }
  sim::Message msg;
  msg.type = sim::MsgType::kBftViewChange;
  msg.from = self_;
  msg.size_bytes = kViewChangeWireBytes;
  msg.payload = std::move(payload);

  // The prospective new leader for (height, new_view).
  const std::size_t n = config_->members.size();
  send_to(config_->members[(height + new_view) % n], msg);
  arm_view_timer();  // keep escalating if this view also stalls
}

void Replica::try_propose() {
  if (!started_ || stopped_ || !is_leader() || proposal_.has_value()) return;
  if (byz_ == ByzantineMode::kSilent || byz_ == ByzantineMode::kMuteProposer) return;

  auto value = app_.propose(next_height_);
  if (!value) {
    const std::uint64_t h = next_height_;
    net_.simulator().schedule_after(config_->propose_retry, [this, h] {
      if (next_height_ == h && is_leader()) try_propose();
    });
    return;
  }

  if (byz_ == ByzantineMode::kEquivocator) {
    propose_equivocating(*value);
    return;
  }

  proposal_ = *value;
  current_value_ = *value;
  auto payload = std::make_shared<ProposalPayload>();
  payload->group = config_->group_tag;
  payload->height = next_height_;
  payload->view = view_;
  payload->value = *value;
  sim::Message msg;
  msg.type = sim::MsgType::kBftPrePrepare;
  msg.from = self_;
  msg.size_bytes = kProposalOverheadBytes + value->size_bytes;
  msg.payload = std::move(payload);

  // The leader spends the block-assembly/execution time before the proposal
  // leaves its machine.
  const std::uint64_t h = next_height_;
  const std::uint32_t v = view_;
  const std::uint64_t rid = proposal_rumor_id(config_->group_tag, h, v, value->digest);
  net_.simulator().schedule_after(value->exec_delay, [this, h, v, msg, rid] {
    if (next_height_ != h || view_ != v) return;
    broadcast(msg, /*gossip=*/true, rid);
    const auto idx = member_index(self_);
    if (idx) {
      prepare_votes_[*idx] = true;
      sent_prepare_ = true;
      leader_try_assemble(/*prepared_phase=*/true);
    }
  });
}

void Replica::propose_equivocating(const ConsensusValue& value) {
  // A Byzantine leader splits the group: value A goes to one half, a
  // conflicting twin B to the other, and one victim gets both (so detection
  // has something to detect).  Neither half can reach quorum, the height
  // stalls, and honest replicas recover via view change.
  ConsensusValue twin = value;
  {
    crypto::Sha256 h;
    h.update("jenga/equivocation");
    h.update(value.digest);
    twin.digest = h.finish();
  }
  const std::uint64_t height = next_height_;
  const std::uint32_t v = view_;
  auto make = [&](const ConsensusValue& val) {
    auto payload = std::make_shared<ProposalPayload>();
    payload->group = config_->group_tag;
    payload->height = height;
    payload->view = v;
    payload->value = val;
    sim::Message m;
    m.type = sim::MsgType::kBftPrePrepare;
    m.from = self_;
    m.size_bytes = kProposalOverheadBytes + val.size_bytes;
    m.payload = std::move(payload);
    return m;
  };
  const sim::Message msg_a = make(value);
  const sim::Message msg_b = make(twin);
  NodeId victim{};  // first non-self member receives both conflicting halves
  bool victim_set = false;
  bool victim_got_a = false;
  for (std::size_t i = 0; i < config_->members.size(); ++i) {
    const NodeId to = config_->members[i];
    if (to == self_) continue;
    const bool give_a = i % 2 == 0;
    if (!victim_set) {
      victim = to;
      victim_set = true;
      victim_got_a = give_a;
    }
    net_.send(self_, to, give_a ? msg_a : msg_b, config_->traffic);
  }
  if (victim_set) net_.send(self_, victim, victim_got_a ? msg_b : msg_a, config_->traffic);
  // Deliberately do NOT set proposal_: the equivocator never assembles a
  // certificate; it only tries to wedge the height.
}

void Replica::spam_votes(std::uint64_t height, std::uint32_t view, const Hash256& digest) {
  const NodeId leader = leader_for(view_);
  if (leader == self_) return;
  const std::size_t n = config_->members.size();
  const std::size_t idx = member_index(self_).value_or(0);
  auto send_junk = [&](std::uint64_t h, std::size_t claimed_index, std::uint64_t sig) {
    auto vote = std::make_shared<VotePayload>();
    vote->group = config_->group_tag;
    vote->height = h;
    vote->view = view;
    vote->digest = digest;
    vote->member_index = claimed_index;
    vote->signature = sig;  // junk: never verifies against any member key
    sim::Message out;
    out.type = sim::MsgType::kBftPrepareVote;
    out.from = self_;
    out.size_bytes = kVoteWireBytes;
    out.payload = std::move(vote);
    send_to(leader, out);
  };
  // Invalid-signature votes, including ones impersonating other members.
  for (std::uint64_t i = 0; i < 3; ++i)
    send_junk(height, (idx + i) % n, 0xDEADBEEFULL + i);
  // Future-height votes: exercise peers' bounded future_ buffer.
  for (std::uint64_t i = 0; i < 2; ++i)
    send_junk(height + 3 + i, idx, 0xBADC0DEULL + i);
}

namespace {

/// Height carried by any BFT payload (for future-height buffering).
std::uint64_t message_height(const sim::Message& msg) {
  switch (msg.type) {
    case sim::MsgType::kBftPrePrepare:
      return sim::payload_as<ProposalPayload>(msg).height;
    case sim::MsgType::kBftPrepareVote:
    case sim::MsgType::kBftCommitVote:
      return sim::payload_as<VotePayload>(msg).height;
    case sim::MsgType::kBftPreparedCert:
    case sim::MsgType::kBftCommitCert:
      return sim::payload_as<CertPayload>(msg).cert.height;
    case sim::MsgType::kBftViewChange:
      return sim::payload_as<ViewChangePayload>(msg).height;
    case sim::MsgType::kBftNewView:
      return sim::payload_as<NewViewPayload>(msg).height;
    default:
      return 0;
  }
}

}  // namespace

void Replica::on_message(const sim::Message& msg) {
  if (stopped_) return;
  if (byz_ == ByzantineMode::kSilent) return;
  // Drop messages belonging to a different consensus group on this node.
  const auto* tagged = dynamic_cast<const GroupPayload*>(msg.payload.get());
  if (tagged == nullptr || tagged->group != config_->group_tag) return;
  const std::uint64_t mh = message_height(msg);
  if (mh > next_height_) {
    // Delivered ahead of this replica's progress; replay after we catch up.
    if (future_.size() < kFutureBufferCap) {
      future_.push_back(msg);
    } else {
      ++stats_.future_dropped;
    }
    // A gap of two or more heights means this replica is genuinely behind
    // (crash recovery / healed partition), not just seeing one reordered
    // delivery — trigger the catch-up path.
    if (mh > next_height_ + 1) request_sync();
    return;
  }
  // A view change or proposal for a height this replica already decided
  // means the sender is stuck there: the commit certificate it missed is no
  // longer being rebroadcast (certs are sent once), and if the group has
  // drained its workload no higher-height traffic will ever trip the
  // sender's own request_sync gap detector — so push history reactively.
  // Late votes/certs for the previous height are NOT served: their senders
  // already advanced.  Rate-limited: a wave of view-change messages from one
  // stuck peer costs one response.
  if (mh > 0 && mh < next_height_ &&
      (msg.type == sim::MsgType::kBftViewChange ||
       msg.type == sim::MsgType::kBftPrePrepare)) {
    const SimTime now = net_.simulator().now();
    if (last_catch_up_served_ < 0 || now - last_catch_up_served_ >= kSyncCooldown) {
      last_catch_up_served_ = now;
      serve_history(msg.from, mh);
    }
  }
  switch (msg.type) {
    case sim::MsgType::kBftPrePrepare: handle_pre_prepare(msg); break;
    case sim::MsgType::kBftPrepareVote: handle_prepare_vote(msg); break;
    case sim::MsgType::kBftPreparedCert: handle_prepared_cert(msg); break;
    case sim::MsgType::kBftCommitVote: handle_commit_vote(msg); break;
    case sim::MsgType::kBftCommitCert: handle_commit_cert(msg); break;
    case sim::MsgType::kBftViewChange: handle_view_change(msg); break;
    case sim::MsgType::kBftNewView: handle_new_view(msg); break;
    case sim::MsgType::kBftSyncRequest: handle_sync_request(msg); break;
    case sim::MsgType::kBftSyncResponse: handle_sync_response(msg); break;
    default: break;
  }
}

void Replica::handle_pre_prepare(const sim::Message& msg) {
  const auto& p = sim::payload_as<ProposalPayload>(msg);
  if (p.height != next_height_ || p.view != view_) return;
  if (msg.from != leader_for(view_)) return;  // only the leader proposes

  // Equivocation detection: a second proposal from the same leader for the
  // same (height, view) with a different digest is proof of Byzantine
  // behaviour.  Vote for a view change immediately (once per view) instead of
  // waiting out the timer.  Checked before validation so an invalid twin
  // still counts as evidence.
  if (seen_proposal_digest_ && !(*seen_proposal_digest_ == p.value.digest)) {
    ++stats_.equivocations_detected;
    if (!equivocation_view_change_sent_) {
      equivocation_view_change_sent_ = true;
      on_view_timeout(next_height_, view_);
    }
    return;
  }
  seen_proposal_digest_ = p.value.digest;

  if (sent_prepare_) return;
  if (byz_ == ByzantineMode::kVoteSpammer) {
    spam_votes(p.height, p.view, p.value.digest);
    return;  // the spammer's only votes are the junk ones above
  }
  if (!app_.validate(p.height, p.value)) return;

  current_value_ = p.value;
  sent_prepare_ = true;

  const auto idx = member_index(self_);
  if (!idx) return;
  auto vote = std::make_shared<VotePayload>();
  vote->group = config_->group_tag;
  vote->height = p.height;
  vote->view = p.view;
  vote->digest = p.value.digest;
  vote->member_index = *idx;
  vote->signature =
      crypto::fast_sign(keys_[*idx], vote_digest(p.value.digest, p.height, p.view, false));
  sim::Message out;
  out.type = sim::MsgType::kBftPrepareVote;
  out.from = self_;
  out.size_bytes = kVoteWireBytes;
  out.payload = std::move(vote);
  // Verification (re-execution) time before the vote leaves this replica.
  // A laggard delays every vote by a third of the view timeout on top —
  // honest-but-slow, probing the protocol's timeout margins.
  const SimTime lag = byz_ == ByzantineMode::kLaggard ? config_->view_timeout / 3 : 0;
  const std::uint64_t h = p.height;
  const std::uint32_t v = p.view;
  const NodeId leader = leader_for(view_);
  net_.simulator().schedule_after(p.value.exec_delay + lag, [this, h, v, leader, out] {
    if (next_height_ != h || view_ != v) return;
    send_to(leader, out);
  });
}

void Replica::handle_prepare_vote(const sim::Message& msg) {
  const auto& v = sim::payload_as<VotePayload>(msg);
  if (v.height != next_height_ || v.view != view_ || !is_leader() || !proposal_) return;
  if (!(v.digest == proposal_->digest)) {
    ++stats_.invalid_votes_rejected;
    return;
  }
  if (v.member_index >= keys_.size()) return;
  const Hash256 digest = vote_digest(v.digest, v.height, v.view, false);
  if (!crypto::fast_verify(public_ids_[v.member_index], digest, v.signature)) {
    ++stats_.invalid_votes_rejected;
    return;
  }
  prepare_votes_[v.member_index] = true;
  leader_try_assemble(/*prepared_phase=*/true);
}

void Replica::leader_try_assemble(bool prepared_phase) {
  if (!proposal_) return;
  auto& votes = prepared_phase ? prepare_votes_ : commit_votes_;
  auto& sent = prepared_phase ? prepared_cert_sent_ : commit_cert_sent_;
  if (sent) return;
  const std::size_t count = static_cast<std::size_t>(
      std::count(votes.begin(), votes.end(), true));
  if (count < quorum()) return;
  sent = true;

  QuorumCert cert;
  cert.value_digest = proposal_->digest;
  cert.height = next_height_;
  cert.view = view_;
  const Hash256 digest = vote_digest(cert.value_digest, cert.height, cert.view, !prepared_phase);
  cert.sig = crypto::fast_aggregate(keys_, votes, digest);

  auto payload = std::make_shared<CertPayload>();
  payload->group = config_->group_tag;
  payload->cert = cert;
  payload->value = *proposal_;
  sim::Message out;
  out.type = prepared_phase ? sim::MsgType::kBftPreparedCert : sim::MsgType::kBftCommitCert;
  out.from = self_;
  out.size_bytes = cert.wire_size();
  out.payload = std::move(payload);
  broadcast(out, /*gossip=*/false);
  // Deliver to self directly (broadcast skips the sender).
  on_message(out);
}

void Replica::handle_prepared_cert(const sim::Message& msg) {
  const auto& p = sim::payload_as<CertPayload>(msg);
  if (p.cert.height != next_height_ || p.cert.view != view_) return;
  if (sent_commit_) return;
  if (p.cert.sig.signer_count() < quorum()) {
    ++stats_.invalid_certs_rejected;
    return;
  }
  const Hash256 digest = vote_digest(p.cert.value_digest, p.cert.height, p.cert.view, false);
  if (!crypto::fast_verify_multisig(public_ids_, digest, p.cert.sig)) {
    ++stats_.invalid_certs_rejected;
    return;
  }

  if (!current_value_) {
    // The proposal dissemination missed this replica; the certificate's
    // embedded copy fills the gap, so no pull is needed — just count the
    // recovery so lossy-transport runs can see how often the backup path
    // carried the round.
    current_value_ = p.value;
    ++stats_.value_recovered;
    if (telemetry_ != nullptr) telemetry_->registry.counter("bft.value_recovered").inc();
  }
  prepared_cert_ = p.cert;
  sent_commit_ = true;

  const auto idx = member_index(self_);
  if (!idx) return;
  auto vote = std::make_shared<VotePayload>();
  vote->group = config_->group_tag;
  vote->height = p.cert.height;
  vote->view = p.cert.view;
  vote->digest = p.cert.value_digest;
  vote->member_index = *idx;
  vote->signature = crypto::fast_sign(
      keys_[*idx], vote_digest(p.cert.value_digest, p.cert.height, p.cert.view, true));
  sim::Message out;
  out.type = sim::MsgType::kBftCommitVote;
  out.from = self_;
  out.size_bytes = kVoteWireBytes;
  out.payload = std::move(vote);
  if (byz_ == ByzantineMode::kLaggard) {
    const std::uint64_t h = p.cert.height;
    const std::uint32_t v = p.cert.view;
    const NodeId leader = leader_for(view_);
    net_.simulator().schedule_after(config_->view_timeout / 3, [this, h, v, leader, out] {
      if (next_height_ != h || view_ != v) return;
      send_to(leader, out);
    });
  } else {
    send_to(leader_for(view_), out);
  }
}

void Replica::handle_commit_vote(const sim::Message& msg) {
  const auto& v = sim::payload_as<VotePayload>(msg);
  if (v.height != next_height_ || v.view != view_ || !is_leader() || !proposal_) return;
  if (!(v.digest == proposal_->digest)) {
    ++stats_.invalid_votes_rejected;
    return;
  }
  if (v.member_index >= keys_.size()) return;
  const Hash256 digest = vote_digest(v.digest, v.height, v.view, true);
  if (!crypto::fast_verify(public_ids_[v.member_index], digest, v.signature)) {
    ++stats_.invalid_votes_rejected;
    return;
  }
  commit_votes_[v.member_index] = true;
  leader_try_assemble(/*prepared_phase=*/false);
}

void Replica::handle_commit_cert(const sim::Message& msg) {
  const auto& p = sim::payload_as<CertPayload>(msg);
  if (p.cert.height != next_height_) return;
  if (p.cert.sig.signer_count() < quorum()) {
    ++stats_.invalid_certs_rejected;
    return;
  }
  const Hash256 digest = vote_digest(p.cert.value_digest, p.cert.height, p.cert.view, true);
  if (!crypto::fast_verify_multisig(public_ids_, digest, p.cert.sig)) {
    ++stats_.invalid_certs_rejected;
    return;
  }

  const bool have_local = current_value_ && current_value_->digest == p.cert.value_digest;
  ConsensusValue value = have_local ? *current_value_ : p.value;
  if (!(value.digest == p.cert.value_digest)) {
    // A valid commit certificate for a value this replica does not hold:
    // the height decided without us.  Pull it explicitly instead of silently
    // dropping the certificate and stalling until the view timer fires.
    ++stats_.value_pulls;
    request_sync();
    return;
  }
  if (!have_local) {
    ++stats_.value_recovered;
    if (telemetry_ != nullptr) telemetry_->registry.counter("bft.value_recovered").inc();
  }
  decide(value, p.cert);
}

void Replica::decide(const ConsensusValue& value, const QuorumCert& cert) {
  const std::uint64_t decided = next_height_;
  if (telemetry_ != nullptr) {
    const SimTime now = net_.simulator().now();
    if (round_begin_ >= 0) {
      telemetry_->tracer.span("bft.round", config_->group_tag, decided, round_begin_, now);
      round_hist_->record(now - round_begin_);
      telemetry_->registry.counter("bft.rounds").inc();
    }
    if (view_change_begin_ >= 0) {
      // Height resolved while a view change was still pending (e.g. a commit
      // certificate landed anyway) — close the span at the decide instant.
      telemetry_->tracer.span("bft.view_change", config_->group_tag, decided,
                              view_change_begin_, now);
      view_change_hist_->record(now - view_change_begin_);
      telemetry_->registry.counter("bft.view_changes").inc();
    }
    if (telemetry_->flight.enabled()) {
      telemetry::FlightEvent e;
      e.at = now;
      e.node = self_.value;
      e.kind = telemetry::FlightEvent::Kind::kDecide;
      e.span = telemetry_->causal.current_context();
      e.a = config_->group_tag;
      e.b = decided;
      e.tx = value.digest;
      telemetry_->flight.record(self_.value, e);
    }
  }
  view_change_begin_ = -1;
  decided_log_[decided] = DecidedEntry{value, cert};
  if (decided >= kDecidedLogWindow) decided_log_.erase(decided - kDecidedLogWindow);
  app_.on_decide(decided, value, cert);
  enter_height(decided + 1);
}

void Replica::handle_view_change(const sim::Message& msg) {
  const auto& p = sim::payload_as<ViewChangePayload>(msg);
  if (p.height != next_height_ || p.new_view <= view_) return;
  // Cap how far ahead a single vote can point: without this a Byzantine node
  // could inflate view_votes_ with unbounded view numbers.
  if (p.new_view > view_ + kMaxViewSkip) return;
  if (p.member_index >= config_->members.size()) return;
  auto& votes = view_votes_[p.new_view];
  if (votes.empty()) votes.assign(config_->members.size(), false);
  votes[p.member_index] = true;

  // Adopt the strongest prepared certificate seen so far, so a potentially
  // decided value survives the view change.  The certificate is re-verified
  // here: a forged one is dropped (the view-change vote itself still counts).
  if (p.prepared && p.prepared->height == next_height_ &&
      p.prepared->value_digest == p.prepared_value.digest &&
      (!prepared_cert_ || prepared_cert_->view < p.prepared->view)) {
    if (verify_cert(*p.prepared)) {
      prepared_cert_ = p.prepared;
      current_value_ = p.prepared_value;
    } else {
      ++stats_.invalid_certs_rejected;
    }
  }

  const std::size_t count =
      static_cast<std::size_t>(std::count(votes.begin(), votes.end(), true));
  if (count < quorum()) return;
  // Only the designated leader of new_view may assemble NEW_VIEW.
  if (config_->members[(p.height + p.new_view) % config_->members.size()] != self_) return;

  // Quorum reached: this node becomes the leader of new_view.
  auto payload = std::make_shared<NewViewPayload>();
  payload->group = config_->group_tag;
  payload->height = p.height;
  payload->new_view = p.new_view;
  if (prepared_cert_ && current_value_) {
    payload->prepared = *prepared_cert_;
    payload->prepared_value = *current_value_;
  }
  sim::Message out;
  out.type = sim::MsgType::kBftNewView;
  out.from = self_;
  out.size_bytes = kViewChangeWireBytes;
  out.payload = std::move(payload);
  broadcast(out, /*gossip=*/false);
  on_message(out);
}

void Replica::handle_new_view(const sim::Message& msg) {
  const auto& p = sim::payload_as<NewViewPayload>(msg);
  if (p.height != next_height_ || p.new_view <= view_) return;
  if (p.new_view > view_ + kMaxViewSkip) return;
  const std::size_t n = config_->members.size();
  const NodeId expected_leader = config_->members[(p.height + p.new_view) % n];
  if (msg.from != expected_leader) return;
  // A NEW_VIEW carrying a forged or mismatched prepared certificate is
  // rejected wholesale: accepting it would let a Byzantine leader inject an
  // arbitrary "locked" value.
  if (p.prepared &&
      (p.prepared->height != next_height_ ||
       !(p.prepared->value_digest == p.prepared_value.digest) || !verify_cert(*p.prepared))) {
    ++stats_.invalid_certs_rejected;
    return;
  }

  view_ = p.new_view;
  if (view_change_begin_ >= 0) {
    const SimTime now = net_.simulator().now();
    if (telemetry_ != nullptr) {
      telemetry_->tracer.span("bft.view_change", config_->group_tag, next_height_,
                              view_change_begin_, now);
      view_change_hist_->record(now - view_change_begin_);
      telemetry_->registry.counter("bft.view_changes").inc();
      if (telemetry_->flight.enabled()) {
        telemetry::FlightEvent e;
        e.at = now;
        e.node = self_.value;
        e.kind = telemetry::FlightEvent::Kind::kViewChange;
        e.span = telemetry_->causal.current_context();
        e.a = config_->group_tag;
        e.b = next_height_;
        telemetry_->flight.record(self_.value, e);
      }
    }
    view_change_begin_ = -1;
  }
  proposal_.reset();
  prepare_votes_.assign(n, false);
  commit_votes_.assign(n, false);
  prepared_cert_sent_ = false;
  commit_cert_sent_ = false;
  sent_prepare_ = false;
  sent_commit_ = false;
  seen_proposal_digest_.reset();
  equivocation_view_change_sent_ = false;
  if (p.prepared) {
    prepared_cert_ = p.prepared;
    current_value_ = p.prepared_value;
  }
  arm_view_timer();

  if (is_leader()) {
    if (current_value_ && prepared_cert_) {
      // Must re-propose the locked value.
      proposal_ = current_value_;
      auto payload = std::make_shared<ProposalPayload>();
      payload->group = config_->group_tag;
      payload->height = next_height_;
      payload->view = view_;
      payload->value = *current_value_;
      sim::Message out;
      out.type = sim::MsgType::kBftPrePrepare;
      out.from = self_;
      out.size_bytes = kProposalOverheadBytes + current_value_->size_bytes;
      out.payload = std::move(payload);
      broadcast(out, /*gossip=*/true,
                proposal_rumor_id(config_->group_tag, next_height_, view_,
                                  current_value_->digest));
      const auto idx = member_index(self_);
      if (idx) {
        prepare_votes_[*idx] = true;
        sent_prepare_ = true;
        leader_try_assemble(true);
      }
    } else {
      try_propose();
    }
  }
}

void Replica::request_sync() {
  if (!started_ || stopped_) return;
  const SimTime now = net_.simulator().now();
  if (last_sync_request_ >= 0 && now - last_sync_request_ < kSyncCooldown) return;
  last_sync_request_ = now;
  ++stats_.sync_requests_sent;

  auto payload = std::make_shared<SyncRequestPayload>();
  payload->group = config_->group_tag;
  payload->from_height = next_height_;
  sim::Message msg;
  msg.type = sim::MsgType::kBftSyncRequest;
  msg.from = self_;
  msg.size_bytes = kSyncRequestWireBytes;
  msg.payload = std::move(payload);

  // Ask two distinct peers; rotate the choice with the height so a single
  // crashed or Byzantine peer cannot permanently wedge recovery.
  const auto& m = config_->members;
  const std::size_t n = m.size();
  const std::size_t idx = member_index(self_).value_or(0);
  std::size_t asked = 0;
  for (std::size_t off = 1; off < n && asked < 2; ++off) {
    const NodeId peer = m[(idx + off + next_height_) % n];
    if (peer == self_) continue;
    send_to(peer, msg);
    ++asked;
  }
}

void Replica::handle_sync_request(const sim::Message& msg) {
  const auto& p = sim::payload_as<SyncRequestPayload>(msg);
  serve_history(msg.from, p.from_height);
}

void Replica::serve_history(NodeId to, std::uint64_t from_height) {
  if (from_height >= next_height_) return;  // requester is not behind us
  auto payload = std::make_shared<SyncResponsePayload>();
  payload->group = config_->group_tag;
  payload->start_height = from_height;
  std::uint32_t bytes = 0;
  for (std::uint64_t h = from_height;
       h < next_height_ && payload->entries.size() < kSyncBatchMax; ++h) {
    const auto it = decided_log_.find(h);
    if (it == decided_log_.end()) break;  // aged out of the window
    payload->entries.emplace_back(it->second.value, it->second.cert);
    bytes += it->second.value.size_bytes + it->second.cert.wire_size();
  }
  if (payload->entries.empty()) return;
  ++stats_.sync_responses_served;
  sim::Message out;
  out.type = sim::MsgType::kBftSyncResponse;
  out.from = self_;
  out.size_bytes = kSyncRequestWireBytes + bytes;
  out.payload = std::move(payload);
  send_to(to, out);
}

void Replica::handle_sync_response(const sim::Message& msg) {
  const auto& p = sim::payload_as<SyncResponsePayload>(msg);
  bool advanced = false;
  std::uint64_t h = p.start_height;
  for (const auto& [value, cert] : p.entries) {
    if (h < next_height_) {
      ++h;  // already have it (e.g. two peers answered)
      continue;
    }
    if (h > next_height_) break;  // non-consecutive; cannot verify a gap
    // Every entry is applied only under a valid commit certificate: a
    // Byzantine responder can withhold history but cannot rewrite it.
    if (cert.height != h || !(cert.value_digest == value.digest) || !verify_cert(cert)) {
      ++stats_.invalid_certs_rejected;
      return;
    }
    ++stats_.sync_heights_applied;
    decide(value, cert);  // advances next_height_ and replays future_
    advanced = true;
    ++h;
  }
  // A full batch means there may be more history; follow up immediately.
  if (advanced && p.entries.size() >= kSyncBatchMax) {
    last_sync_request_ = -1;
    request_sync();
  }
}

}  // namespace jenga::consensus
