// Intra-shard BFT consensus: leader-based linear PBFT with aggregated vote
// certificates (the paper's BLS-aggregation design, §V-C "Intra-Shard
// Consensus").
//
// Message flow per height (all within one group — a state shard or an
// execution channel):
//
//   leader   --PRE_PREPARE(value)-->  replicas        (gossip; value can be MBs)
//   replicas --PREPARE_VOTE-------->  leader          (unicast, tiny)
//   leader   --PREPARED_CERT------->  replicas        (aggregated sig + bitmap)
//   replicas --COMMIT_VOTE--------->  leader
//   leader   --COMMIT_CERT--------->  replicas        -> decide
//
// With certificate aggregation every phase is O(n) messages, which is what
// lets shards of hundreds of nodes run at practical speed — in the real
// system and in this simulator alike.
//
// A stalled height triggers a view change: replicas time out, vote for view
// v+1 to the next leader, and the new leader re-proposes (carrying forward
// the highest prepared certificate it saw, so a value that may have been
// decided anywhere is never replaced).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "crypto/fastcrypto.hpp"
#include "simnet/network.hpp"

namespace jenga::consensus {

/// An opaque value a group agrees on (a block, a grant batch, ...).
struct ConsensusValue {
  Hash256 digest;
  std::uint32_t size_bytes = 0;
  /// CPU time to assemble/verify this value (block execution): the leader
  /// pays it before broadcasting, every replica pays it before voting.  This
  /// is how "each node can verify up to 4096 transactions in a consensus
  /// round" (paper §VII-B) enters the timing model.
  SimTime exec_delay = 0;
  std::shared_ptr<const sim::Payload> data;
};

/// Digest a replica signs when voting for (value, height, view) in the
/// prepare or commit phase.  Exposed so other layers (the relay batch
/// verifier in src/core) can check a commit certificate's aggregate signature
/// without instantiating a Replica.
[[nodiscard]] Hash256 vote_digest(const Hash256& value_digest, std::uint64_t height,
                                  std::uint32_t view, bool commit_phase);

/// The public vote-key ids of a group of `n` members derived from
/// `crypto_seed` — exactly the key schedule every Replica of that group uses.
[[nodiscard]] std::vector<std::uint64_t> group_public_ids(std::uint64_t crypto_seed,
                                                          std::size_t n);

/// Aggregated quorum certificate.
struct QuorumCert {
  Hash256 value_digest;
  std::uint64_t height = 0;
  std::uint32_t view = 0;
  crypto::FastMultiSig sig;

  [[nodiscard]] std::uint32_t wire_size() const {
    return 48 + crypto::kSignatureWireBytes +
           static_cast<std::uint32_t>((sig.signers.size() + 7) / 8);
  }
};

/// Application hooks: the protocol layer (Jenga / baselines) plugs in here.
class BftApp {
 public:
  virtual ~BftApp() = default;
  /// Leader asks for the next value; nullopt = nothing to propose right now.
  virtual std::optional<ConsensusValue> propose(std::uint64_t height) = 0;
  /// Replicas validate a proposed value before voting.
  virtual bool validate(std::uint64_t height, const ConsensusValue& value) = 0;
  /// Called exactly once per height on every honest replica.
  virtual void on_decide(std::uint64_t height, const ConsensusValue& value,
                         const QuorumCert& commit_cert) = 0;
};

struct BftConfig {
  std::vector<NodeId> members;       // ordered group membership
  std::uint64_t group_tag = 0;       // distinguishes co-resident groups
  std::uint64_t crypto_seed = 1;     // derives per-member vote keys
  SimTime propose_retry = 50 * kMillisecond;
  SimTime view_timeout = 20 * kSecond;
  sim::TrafficClass traffic = sim::TrafficClass::kIntraShard;
  bool use_gossip_for_proposal = true;
};

enum class ByzantineMode : std::uint8_t {
  kHonest = 0,
  kSilent,        // never votes / never proposes (crash-equivalent)
  kMuteProposer,  // votes, but withholds proposals when leader
  kEquivocator,   // as leader, sends conflicting PRE_PREPAREs to disjoint halves
  kVoteSpammer,   // floods the leader with invalid + future-height votes
  kLaggard,       // votes honestly but delays every vote (tests timeout margins)
};

/// Per-replica defence counters: how much adversarial input this replica has
/// detected and rejected, plus state-sync activity.  Exposed so chaos tests
/// can assert the hardening paths actually fired.
struct ReplicaStats {
  std::uint64_t equivocations_detected = 0;   // conflicting proposals, same (h,v)
  std::uint64_t invalid_votes_rejected = 0;   // bad signature or bad digest
  std::uint64_t invalid_certs_rejected = 0;   // quorum/signature check failed
  std::uint64_t future_dropped = 0;           // future_ buffer overflowed
  std::uint64_t sync_requests_sent = 0;
  std::uint64_t sync_responses_served = 0;
  std::uint64_t sync_heights_applied = 0;     // decided via catch-up, not votes
  std::uint64_t value_recovered = 0;          // value adopted from a cert, not the proposal
  std::uint64_t value_pulls = 0;              // explicit syncs triggered by a value gap
};

/// One replica's state machine for one group.  All replicas of a group share
/// a BftConfig (and derive member vote keys from its seed).
class Replica {
 public:
  Replica(sim::Network& net, NodeId self, std::shared_ptr<const BftConfig> config,
          BftApp& app);

  /// Wires up and schedules the first proposal poll.  Call once.
  void start();

  /// Permanently deactivates this replica: it stops consuming messages,
  /// proposing, voting, and serving sync, and every already-scheduled timer
  /// or delayed broadcast becomes a no-op.  Used at epoch reconfiguration:
  /// the old lattice's replicas are stopped and parked (scheduled lambdas
  /// capture `this`, so a stopped replica must stay allocated until the
  /// simulation ends) while fresh replicas take over the group.  Irreversible.
  void stop();
  [[nodiscard]] bool stopped() const { return stopped_; }

  /// Feeds a network message of a kBft* type addressed to this replica.
  void on_message(const sim::Message& msg);

  /// The leader checks for new work (also called internally on a timer).
  void try_propose();

  [[nodiscard]] std::uint64_t decided_height() const { return next_height_; }
  [[nodiscard]] NodeId self() const { return self_; }
  [[nodiscard]] bool is_leader() const { return leader_for(view_) == self_; }
  [[nodiscard]] std::uint32_t view() const { return view_; }
  [[nodiscard]] NodeId current_leader() const { return leader_for(view_); }

  void set_byzantine(ByzantineMode mode) { byz_ = mode; }
  [[nodiscard]] ByzantineMode byzantine_mode() const { return byz_; }

  [[nodiscard]] const ReplicaStats& stats() const { return stats_; }

  /// Asks peers for decided heights this replica missed (crash recovery or a
  /// healed partition).  Safe to call repeatedly: rate-limited internally.
  void request_sync();

  /// f = ⌊(n-1)/3⌋; quorum = 2f+1.
  [[nodiscard]] std::size_t quorum() const { return 2 * ((config_->members.size() - 1) / 3) + 1; }

  /// Verifies a certificate against this group's membership and quorum rule.
  [[nodiscard]] bool verify_cert(const QuorumCert& cert) const;

  /// Attaches a telemetry context (nullptr detaches).  Every deciding replica
  /// records a "bft.round" span per height (and a "bft.view_change" span when
  /// one happened), plus round/view-change duration histograms.  Passive: no
  /// rng draws, no scheduling.
  void set_telemetry(telemetry::Telemetry* t);

  /// Advisory hook consulted each time the view timer is armed:
  /// (self, current leader, configured timeout) -> effective timeout.  The
  /// failure detector plugs in here (shorter timer for a suspected-dead
  /// leader, longer for a merely degraded network); must return `base`
  /// unchanged in healthy runs so clean schedules stay bit-identical.
  using ViewTimeoutHook = std::function<SimTime(NodeId self, NodeId leader, SimTime base)>;
  void set_view_timeout_hook(ViewTimeoutHook hook) { view_timeout_hook_ = std::move(hook); }

 private:
  [[nodiscard]] NodeId leader_for(std::uint32_t view) const;
  [[nodiscard]] std::optional<std::size_t> member_index(NodeId id) const;
  void broadcast(const sim::Message& msg, bool gossip, std::uint64_t rumor_id = 0);
  void send_to(NodeId to, const sim::Message& msg);
  void enter_height(std::uint64_t height);
  void arm_view_timer();
  void on_view_timeout(std::uint64_t height, std::uint32_t view);
  void handle_pre_prepare(const sim::Message& msg);
  void handle_prepare_vote(const sim::Message& msg);
  void handle_prepared_cert(const sim::Message& msg);
  void handle_commit_vote(const sim::Message& msg);
  void handle_commit_cert(const sim::Message& msg);
  void handle_view_change(const sim::Message& msg);
  void handle_new_view(const sim::Message& msg);
  void handle_sync_request(const sim::Message& msg);
  void handle_sync_response(const sim::Message& msg);
  /// Pushes decided (value, cert) entries starting at `from_height` to `to`.
  void serve_history(NodeId to, std::uint64_t from_height);
  void leader_try_assemble(bool prepared_phase);
  void decide(const ConsensusValue& value, const QuorumCert& cert);
  void propose_equivocating(const ConsensusValue& value);
  void spam_votes(std::uint64_t height, std::uint32_t view, const Hash256& digest);

  sim::Network& net_;
  NodeId self_;
  std::shared_ptr<const BftConfig> config_;
  BftApp& app_;
  ByzantineMode byz_ = ByzantineMode::kHonest;

  // Per-member vote keys (FastCrypto); index-aligned with config_->members.
  std::vector<crypto::FastKey> keys_;
  std::vector<std::uint64_t> public_ids_;

  std::uint64_t next_height_ = 0;   // height currently being agreed
  std::uint32_t view_ = 0;
  std::uint64_t timer_generation_ = 0;

  // Leader-side collection state for the current (height, view).
  std::optional<ConsensusValue> proposal_;           // what this leader proposed
  std::vector<bool> prepare_votes_;
  std::vector<bool> commit_votes_;
  bool prepared_cert_sent_ = false;
  bool commit_cert_sent_ = false;

  // Replica-side state.
  std::optional<ConsensusValue> current_value_;      // validated pre-prepare
  std::optional<Hash256> seen_proposal_digest_;      // equivocation detection
  bool sent_prepare_ = false;
  bool sent_commit_ = false;
  std::optional<QuorumCert> prepared_cert_;          // carried into view changes

  // View change collection (on the prospective new leader).
  std::unordered_map<std::uint32_t, std::vector<bool>> view_votes_;
  std::uint32_t next_view_vote_ = 0;  // escalates past consecutively dead leaders
  bool equivocation_view_change_sent_ = false;  // one immediate vote per view

  // Messages for heights this replica has not reached yet (reordered
  // deliveries); replayed on entering each new height.
  std::vector<sim::Message> future_;

  // Recently decided heights with their commit certificates, kept for serving
  // state-sync requests from recovering peers (FIFO window of
  // kDecidedLogWindow heights).
  struct DecidedEntry {
    ConsensusValue value;
    QuorumCert cert;
  };
  std::unordered_map<std::uint64_t, DecidedEntry> decided_log_;
  SimTime last_sync_request_ = -1;  // rate limit: one request per cooldown
  SimTime last_catch_up_served_ = -1;  // rate limit for reactive history pushes

  ReplicaStats stats_;
  ViewTimeoutHook view_timeout_hook_;

  telemetry::Telemetry* telemetry_ = nullptr;
  telemetry::Histogram* round_hist_ = nullptr;        // "bft.round_us"
  telemetry::Histogram* view_change_hist_ = nullptr;  // "bft.view_change_us"
  SimTime round_begin_ = -1;        // when this replica entered the height
  SimTime view_change_begin_ = -1;  // first timeout of the stalled height

  bool started_ = false;
  bool stopped_ = false;

  static constexpr std::size_t kFutureBufferCap = 1024;
  static constexpr std::uint64_t kDecidedLogWindow = 256;
  static constexpr std::size_t kSyncBatchMax = 32;
  static constexpr std::uint32_t kMaxViewSkip = 64;
  static constexpr SimTime kSyncCooldown = kSecond;
};

}  // namespace jenga::consensus
