// Wire payloads for the BFT engine.
#pragma once

#include <optional>

#include "consensus/bft.hpp"
#include "simnet/message.hpp"

namespace jenga::consensus {

/// Every BFT payload carries the group tag of the consensus instance it
/// belongs to: one node may sit in several groups (a state shard AND an
/// execution channel), and replicas drop messages tagged for other groups.
struct GroupPayload : sim::Payload {
  std::uint64_t group = 0;
};

struct ProposalPayload : GroupPayload {
  std::uint64_t height = 0;
  std::uint32_t view = 0;
  ConsensusValue value;
};

struct VotePayload : GroupPayload {
  std::uint64_t height = 0;
  std::uint32_t view = 0;
  Hash256 digest;
  std::size_t member_index = 0;
  std::uint64_t signature = 0;
};

struct CertPayload : GroupPayload {
  QuorumCert cert;
  ConsensusValue value;  // same shared data as the proposal; not re-charged
};

struct ViewChangePayload : GroupPayload {
  std::uint64_t height = 0;
  std::uint32_t new_view = 0;
  std::size_t member_index = 0;
  std::optional<QuorumCert> prepared;
  ConsensusValue prepared_value;  // meaningful only when `prepared` is set
};

struct NewViewPayload : GroupPayload {
  std::uint64_t height = 0;
  std::uint32_t new_view = 0;
  std::optional<QuorumCert> prepared;
  ConsensusValue prepared_value;
};

/// Catch-up request from a replica that fell behind (crash recovery, long
/// partition, or message loss): "send me everything you decided from
/// `from_height` on".
struct SyncRequestPayload : GroupPayload {
  std::uint64_t from_height = 0;
};

/// A batch of decided heights with their commit certificates; the requester
/// verifies each certificate before applying, so a Byzantine responder can
/// only withhold, never forge.
struct SyncResponsePayload : GroupPayload {
  std::uint64_t start_height = 0;
  std::vector<std::pair<ConsensusValue, QuorumCert>> entries;  // consecutive
};

/// Wire sizes (bytes) for the small control messages.
inline constexpr std::uint32_t kVoteWireBytes = 96;
inline constexpr std::uint32_t kProposalOverheadBytes = 128;
inline constexpr std::uint32_t kViewChangeWireBytes = 192;
inline constexpr std::uint32_t kSyncRequestWireBytes = 64;

}  // namespace jenga::consensus
