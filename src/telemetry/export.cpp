#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <map>
#include <ostream>
#include <vector>

#include "common/hex.hpp"

namespace jenga::telemetry {

// ---------------------------------------------------------------------------
// Export
// ---------------------------------------------------------------------------

namespace {

void write_line(std::ostream& out, const char* fmt, auto... args) {
  char buf[512];
  std::snprintf(buf, sizeof(buf), fmt, args...);
  out << buf << "\n";
}

/// Sorted tx entries (submit time, then hash) — the deterministic export
/// order shared by the tx lines and the DAG union.
std::vector<const std::pair<const Hash256, TxTrace>*> sorted_traces(const PhaseTracer& tracer) {
  std::vector<const std::pair<const Hash256, TxTrace>*> order;
  order.reserve(tracer.traces().size());
  for (const auto& entry : tracer.traces()) order.push_back(&entry);
  std::sort(order.begin(), order.end(), [](const auto* a, const auto* b2) {
    if (a->second.submit != b2->second.submit) return a->second.submit < b2->second.submit;
    return a->first < b2->first;
  });
  return order;
}

/// Union of every finished tx's causal DAG, ascending span ids (so parents
/// always precede children in the export).
std::vector<std::uint64_t> dag_union(const CausalTracer& causal, const PhaseTracer& tracer) {
  std::vector<std::uint64_t> ids;
  if (!causal.enabled()) return ids;
  for (const auto& [hash, t] : tracer.traces()) {
    if (!t.done || t.submit < 0) continue;
    const auto lineage = causal.lineage(hash, t.submit);
    ids.insert(ids.end(), lineage.begin(), lineage.end());
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

}  // namespace

void Telemetry::export_jsonl(std::ostream& out) const {
  const PhaseBreakdown b = tracer.breakdown();
  const std::vector<std::uint64_t> dag = dag_union(causal, tracer);
  write_line(out,
             "{\"kind\":\"meta\",\"version\":1,\"traced_txs\":%zu,\"spans\":%zu,"
             "\"spans_dropped\":%llu,\"committed\":%llu,\"aborted\":%llu,"
             "\"incomplete\":%llu,\"cspans\":%zu,\"cspans_total\":%zu,"
             "\"cspans_dropped\":%llu}",
             tracer.traced(), tracer.spans().size(),
             static_cast<unsigned long long>(tracer.spans_dropped()),
             static_cast<unsigned long long>(b.committed),
             static_cast<unsigned long long>(b.aborted),
             static_cast<unsigned long long>(b.incomplete), dag.size(), causal.span_count(),
             static_cast<unsigned long long>(causal.spans_dropped()));

  for (const auto& [name, c] : registry.counters())
    write_line(out, "{\"kind\":\"metric\",\"type\":\"counter\",\"name\":\"%s\",\"value\":%llu}",
               name.c_str(), static_cast<unsigned long long>(c.value()));
  for (const auto& [name, g] : registry.gauges())
    write_line(out, "{\"kind\":\"metric\",\"type\":\"gauge\",\"name\":\"%s\",\"value\":%lld}",
               name.c_str(), static_cast<long long>(g.value()));
  auto write_hist = [&out](const std::string& name, const Histogram& h) {
    write_line(out,
               "{\"kind\":\"metric\",\"type\":\"histogram\",\"name\":\"%s\",\"count\":%llu,"
               "\"sum\":%lld,\"min\":%lld,\"max\":%lld,\"mean\":%.6g,\"p50\":%.6g,"
               "\"p99\":%.6g}",
               name.c_str(), static_cast<unsigned long long>(h.count()),
               static_cast<long long>(h.sum()), static_cast<long long>(h.min()),
               static_cast<long long>(h.max()), h.mean(), h.quantile(0.5), h.quantile(0.99));
  };
  for (const auto& [name, h] : registry.histograms()) write_hist(name, h);
  write_hist("net.hop_delay_us", net.hop_delay_us);

  for (std::size_t t = 0; t < MessageTelemetry::kMaxTypes; ++t) {
    if (net.per_type[t].count == 0) continue;
    write_line(out,
               "{\"kind\":\"msgtype\",\"id\":%zu,\"name\":\"%s\",\"count\":%llu,"
               "\"bytes\":%llu}",
               t, net.type_name[t] != nullptr ? net.type_name[t] : "unknown",
               static_cast<unsigned long long>(net.per_type[t].count),
               static_cast<unsigned long long>(net.per_type[t].bytes));
  }

  for (std::size_t i = 0; i < kIntervalCount; ++i) {
    const Histogram& h = b.interval_hist[i];
    write_line(out,
               "{\"kind\":\"phase_hist\",\"phase\":\"%s\",\"count\":%llu,\"sum_us\":%lld,"
               "\"mean_s\":%.6f,\"p50_s\":%.6f,\"p99_s\":%.6f,\"critical\":%llu}",
               interval_name(i), static_cast<unsigned long long>(h.count()),
               static_cast<long long>(b.interval_sum[i]), b.mean_interval_seconds(i),
               b.quantile_interval_seconds(i, 0.5), b.quantile_interval_seconds(i, 0.99),
               static_cast<unsigned long long>(b.critical[i]));
  }

  // Tx lines, sorted for deterministic output across platforms.
  for (const auto* entry : sorted_traces(tracer)) {
    const TxTrace& t = entry->second;
    const std::string hash = to_hex(entry->first);
    if (!t.done) {
      write_line(out,
                 "{\"kind\":\"tx\",\"hash\":\"%s\",\"outcome\":\"incomplete\","
                 "\"submit_us\":%lld}",
                 hash.c_str(), static_cast<long long>(t.submit));
      continue;
    }
    const auto iv = t.intervals();
    char dag_fields[192] = "";
    if (causal.enabled()) {
      const auto cp = causal.critical_path(entry->first, t.submit, t.finish);
      if (cp.valid)
        std::snprintf(dag_fields, sizeof(dag_fields),
                      ",\"dag_hops\":%zu,\"dag_total_us\":%lld,\"dag_queue_us\":%lld,"
                      "\"dag_link_us\":%lld,\"dag_service_us\":%lld",
                      cp.hops.size(), static_cast<long long>(cp.total),
                      static_cast<long long>(cp.queue), static_cast<long long>(cp.link),
                      static_cast<long long>(cp.service));
    }
    write_line(out,
               "{\"kind\":\"tx\",\"hash\":\"%s\",\"outcome\":\"%s\",\"submit_us\":%lld,"
               "\"finish_us\":%lld,\"state_lock_us\":%lld,\"grant_relay_us\":%lld,"
               "\"execute_us\":%lld,\"commit_us\":%lld,\"critical\":\"%s\"%s}",
               hash.c_str(), t.committed ? "commit" : "abort",
               static_cast<long long>(t.submit), static_cast<long long>(t.finish),
               static_cast<long long>(iv[0]), static_cast<long long>(iv[1]),
               static_cast<long long>(iv[2]), static_cast<long long>(iv[3]),
               interval_name(t.critical_interval()), dag_fields);
  }

  for (const SpanRecord& s : tracer.spans()) {
    write_line(out,
               "{\"kind\":\"span\",\"name\":\"%s\",\"group\":%llu,\"seq\":%llu,"
               "\"begin_us\":%lld,\"end_us\":%lld}",
               s.name, static_cast<unsigned long long>(s.group),
               static_cast<unsigned long long>(s.seq), static_cast<long long>(s.begin),
               static_cast<long long>(s.end));
  }

  // Causal DAG spans (union over every finished tx's lineage).  Ids are
  // strictly ascending and parent < id, so a streaming consumer always sees
  // a parent before any of its children and the graph is acyclic.
  for (std::uint64_t id : dag) {
    const CausalSpan* s = causal.span(id);
    if (s == nullptr) continue;
    const char* tname =
        s->msg_type < MessageTelemetry::kMaxTypes && net.type_name[s->msg_type] != nullptr
            ? net.type_name[s->msg_type]
            : "unknown";
    write_line(out,
               "{\"kind\":\"cspan\",\"id\":%llu,\"parent\":%llu,\"type\":%u,"
               "\"name\":\"%s\",\"from\":%llu,\"to\":%llu,\"send_us\":%lld,"
               "\"depart_us\":%lld,\"arrive_us\":%lld}",
               static_cast<unsigned long long>(s->id),
               static_cast<unsigned long long>(s->parent), static_cast<unsigned>(s->msg_type),
               tname, static_cast<unsigned long long>(s->from),
               static_cast<unsigned long long>(s->to), static_cast<long long>(s->send),
               static_cast<long long>(s->depart), static_cast<long long>(s->arrive));
  }
}

void Telemetry::export_chrome(std::ostream& out) const {
  // chrome://tracing JSON object format.  One "X" slice per DAG hop on the
  // sending node's lane ([send, arrive] covers queue-wait + link latency),
  // plus an "s"→"f" flow arrow from each parent's arrival to the child's
  // send, which renders the causal chains as connected arcs.
  const std::vector<std::uint64_t> dag = dag_union(causal, tracer);
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto emit = [&](const char* fmt, auto... args) {
    char buf[512];
    std::snprintf(buf, sizeof(buf), fmt, args...);
    out << (first ? "\n" : ",\n") << buf;
    first = false;
  };
  for (std::uint64_t id : dag) {
    const CausalSpan* s = causal.span(id);
    if (s == nullptr) continue;
    const char* tname =
        s->msg_type < MessageTelemetry::kMaxTypes && net.type_name[s->msg_type] != nullptr
            ? net.type_name[s->msg_type]
            : "hop";
    const unsigned long long pid = s->from == kClientNode ? 999999ull : s->from;
    const SimTime end = s->delivered ? s->arrive : s->depart;
    emit("{\"name\":\"%s\",\"cat\":\"hop\",\"ph\":\"X\",\"ts\":%lld,\"dur\":%lld,"
         "\"pid\":%llu,\"tid\":%u,\"args\":{\"span\":%llu,\"parent\":%llu,\"to\":%llu,"
         "\"queue_us\":%lld,\"link_us\":%lld}}",
         tname, static_cast<long long>(s->send), static_cast<long long>(end - s->send), pid,
         static_cast<unsigned>(s->msg_type), static_cast<unsigned long long>(s->id),
         static_cast<unsigned long long>(s->parent), static_cast<unsigned long long>(s->to),
         static_cast<long long>(s->queue_us()), static_cast<long long>(s->link_us()));
    const CausalSpan* p = causal.span(s->parent);
    if (p != nullptr && p->delivered) {
      const unsigned long long ppid = p->from == kClientNode ? 999999ull : p->from;
      emit("{\"name\":\"cause\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":%llu,\"ts\":%lld,"
           "\"pid\":%llu,\"tid\":%u}",
           static_cast<unsigned long long>(s->id), static_cast<long long>(p->arrive), ppid,
           static_cast<unsigned>(p->msg_type));
      emit("{\"name\":\"cause\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\",\"id\":%llu,"
           "\"ts\":%lld,\"pid\":%llu,\"tid\":%u}",
           static_cast<unsigned long long>(s->id), static_cast<long long>(s->send), pid,
           static_cast<unsigned>(s->msg_type));
    }
  }
  out << "\n]}\n";
}

// ---------------------------------------------------------------------------
// Validation (shared by tools/trace_lint and the telemetry tests)
// ---------------------------------------------------------------------------

namespace {

struct JsonValue {
  enum class Kind { kString, kNumber, kBool };
  Kind kind = Kind::kNumber;
  std::string text;  // string contents (unescaped not needed: exporter never escapes)
  double num = 0.0;
};

using FlatObject = std::map<std::string, JsonValue>;

void skip_ws(const std::string& s, std::size_t& i) {
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
}

bool parse_string(const std::string& s, std::size_t& i, std::string* out) {
  if (i >= s.size() || s[i] != '"') return false;
  ++i;
  out->clear();
  while (i < s.size() && s[i] != '"') {
    if (s[i] == '\\') return false;  // exporter never emits escapes
    out->push_back(s[i++]);
  }
  if (i >= s.size()) return false;
  ++i;  // closing quote
  return true;
}

bool parse_flat_object(const std::string& line, FlatObject* out, std::string* err) {
  std::size_t i = 0;
  skip_ws(line, i);
  if (i >= line.size() || line[i] != '{') {
    if (err) *err = "line does not start with '{'";
    return false;
  }
  ++i;
  skip_ws(line, i);
  if (i < line.size() && line[i] == '}') {
    ++i;
  } else {
    while (true) {
      std::string key;
      skip_ws(line, i);
      if (!parse_string(line, i, &key)) {
        if (err) *err = "expected string key";
        return false;
      }
      skip_ws(line, i);
      if (i >= line.size() || line[i] != ':') {
        if (err) *err = "expected ':' after key \"" + key + "\"";
        return false;
      }
      ++i;
      skip_ws(line, i);
      JsonValue v;
      if (i < line.size() && line[i] == '"') {
        v.kind = JsonValue::Kind::kString;
        if (!parse_string(line, i, &v.text)) {
          if (err) *err = "bad string value for \"" + key + "\"";
          return false;
        }
      } else if (line.compare(i, 4, "true") == 0) {
        v.kind = JsonValue::Kind::kBool;
        v.num = 1;
        i += 4;
      } else if (line.compare(i, 5, "false") == 0) {
        v.kind = JsonValue::Kind::kBool;
        v.num = 0;
        i += 5;
      } else {
        const std::size_t start = i;
        while (i < line.size() &&
               (std::isdigit(static_cast<unsigned char>(line[i])) || line[i] == '-' ||
                line[i] == '+' || line[i] == '.' || line[i] == 'e' || line[i] == 'E'))
          ++i;
        if (i == start) {
          if (err) *err = "bad value for \"" + key + "\" (nested objects unsupported)";
          return false;
        }
        v.kind = JsonValue::Kind::kNumber;
        v.text = line.substr(start, i - start);
        char* endp = nullptr;
        v.num = std::strtod(v.text.c_str(), &endp);
        if (endp == nullptr || *endp != '\0') {
          if (err) *err = "unparsable number for \"" + key + "\"";
          return false;
        }
      }
      (*out)[key] = std::move(v);
      skip_ws(line, i);
      if (i < line.size() && line[i] == ',') {
        ++i;
        continue;
      }
      break;
    }
    if (i >= line.size() || line[i] != '}') {
      if (err) *err = "expected '}' at end of object";
      return false;
    }
    ++i;
  }
  skip_ws(line, i);
  if (i != line.size()) {
    if (err) *err = "trailing characters after object";
    return false;
  }
  return true;
}

bool require(const FlatObject& obj, const char* key, JsonValue::Kind kind,
             std::string* err, double* num = nullptr, std::string* text = nullptr) {
  const auto it = obj.find(key);
  if (it == obj.end()) {
    if (err) *err = std::string("missing field \"") + key + "\"";
    return false;
  }
  if (it->second.kind != kind) {
    if (err) *err = std::string("field \"") + key + "\" has wrong type";
    return false;
  }
  if (num != nullptr) *num = it->second.num;
  if (text != nullptr) *text = it->second.text;
  return true;
}

bool is_interval_name(const std::string& s) {
  for (std::size_t i = 0; i < kIntervalCount; ++i)
    if (s == interval_name(i)) return true;
  return false;
}

}  // namespace

bool validate_trace_line(const std::string& line, std::string* error) {
  FlatObject obj;
  if (!parse_flat_object(line, &obj, error)) return false;

  std::string kind;
  if (!require(obj, "kind", JsonValue::Kind::kString, error, nullptr, &kind)) return false;

  const auto num_field = [&](const char* key, double* out) {
    return require(obj, key, JsonValue::Kind::kNumber, error, out);
  };
  const auto str_field = [&](const char* key, std::string* out) {
    return require(obj, key, JsonValue::Kind::kString, error, nullptr, out);
  };

  if (kind == "meta") {
    double version = 0;
    if (!num_field("version", &version)) return false;
    if (version < 1) {
      if (error) *error = "meta version must be >= 1";
      return false;
    }
    return true;
  }
  if (kind == "metric") {
    std::string type, name;
    if (!str_field("type", &type) || !str_field("name", &name)) return false;
    if (type == "counter" || type == "gauge") {
      double v = 0;
      return num_field("value", &v);
    }
    if (type == "histogram") {
      double v = 0;
      for (const char* k : {"count", "sum", "min", "max", "mean", "p50", "p99"})
        if (!num_field(k, &v)) return false;
      return true;
    }
    if (error) *error = "unknown metric type \"" + type + "\"";
    return false;
  }
  if (kind == "msgtype") {
    std::string name;
    double v = 0;
    return str_field("name", &name) && num_field("id", &v) && num_field("count", &v) &&
           num_field("bytes", &v);
  }
  if (kind == "phase_hist") {
    std::string phase;
    if (!str_field("phase", &phase)) return false;
    if (!is_interval_name(phase)) {
      if (error) *error = "unknown phase \"" + phase + "\"";
      return false;
    }
    double v = 0;
    for (const char* k : {"count", "sum_us", "mean_s", "p50_s", "p99_s", "critical"})
      if (!num_field(k, &v)) return false;
    return true;
  }
  if (kind == "tx") {
    std::string hash, outcome;
    if (!str_field("hash", &hash) || !str_field("outcome", &outcome)) return false;
    if (hash.size() != 64) {
      if (error) *error = "tx hash must be 64 hex chars";
      return false;
    }
    double submit = 0;
    if (!num_field("submit_us", &submit)) return false;
    if (outcome == "incomplete") return true;
    if (outcome != "commit" && outcome != "abort") {
      if (error) *error = "unknown tx outcome \"" + outcome + "\"";
      return false;
    }
    double finish = 0, phases_sum = 0;
    if (!num_field("finish_us", &finish)) return false;
    for (const char* k : {"state_lock_us", "grant_relay_us", "execute_us", "commit_us"}) {
      double v = 0;
      if (!num_field(k, &v)) return false;
      if (v < 0) {
        if (error) *error = std::string("negative phase interval \"") + k + "\"";
        return false;
      }
      phases_sum += v;
    }
    std::string critical;
    if (!str_field("critical", &critical) || !is_interval_name(critical)) {
      if (error) *error = "tx line missing/bad \"critical\" phase";
      return false;
    }
    // The partition invariant: intervals must reconcile with end-to-end
    // latency (exact in the exporter; allow 1% / 2µs slop for re-encoders).
    const double total = finish - submit;
    const double slop = std::max(2.0, 0.01 * total);
    if (total < 0 || std::abs(phases_sum - total) > slop) {
      if (error)
        *error = "tx phase intervals do not sum to finish_us - submit_us (" +
                 std::to_string(phases_sum) + " vs " + std::to_string(total) + ")";
      return false;
    }
    // Causal-DAG reconciliation: when the exporter attached dag_* fields,
    // the critical-path decomposition must (a) partition dag_total_us
    // exactly and (b) agree with the four-interval total within 1%.
    if (obj.count("dag_total_us") != 0) {
      double hops = 0, dag_total = 0, dag_queue = 0, dag_link = 0, dag_service = 0;
      if (!num_field("dag_hops", &hops) || !num_field("dag_total_us", &dag_total) ||
          !num_field("dag_queue_us", &dag_queue) || !num_field("dag_link_us", &dag_link) ||
          !num_field("dag_service_us", &dag_service))
        return false;
      if (std::abs(dag_queue + dag_link + dag_service - dag_total) > 2.0) {
        if (error) *error = "dag queue+link+service does not partition dag_total_us";
        return false;
      }
      if (std::abs(dag_total - total) > slop) {
        if (error)
          *error = "dag_total_us does not reconcile with phase intervals (" +
                   std::to_string(dag_total) + " vs " + std::to_string(total) + ")";
        return false;
      }
    }
    return true;
  }
  if (kind == "cspan") {
    double id = 0, parent = 0, send = 0, depart = 0, arrive = 0, v = 0;
    std::string name;
    if (!num_field("id", &id) || !num_field("parent", &parent) || !num_field("type", &v) ||
        !str_field("name", &name) || !num_field("from", &v) || !num_field("to", &v) ||
        !num_field("send_us", &send) || !num_field("depart_us", &depart) ||
        !num_field("arrive_us", &arrive))
      return false;
    if (id < 1) {
      if (error) *error = "cspan id must be >= 1";
      return false;
    }
    if (parent >= id) {
      if (error) *error = "cspan parent must precede the span (parent < id)";
      return false;
    }
    if (send > depart || depart > arrive) {
      if (error) *error = "cspan times must satisfy send <= depart <= arrive";
      return false;
    }
    return true;
  }
  if (kind == "flight_meta") {
    std::string reason;
    double v = 0;
    return num_field("version", &v) && str_field("reason", &reason) &&
           num_field("events", &v);
  }
  if (kind == "flight") {
    std::string event;
    double v = 0;
    return num_field("at_us", &v) && num_field("seq", &v) && num_field("node", &v) &&
           str_field("event", &event) && num_field("span", &v) && num_field("parent", &v);
  }
  if (kind == "lineage") {
    std::string what;
    double v = 0;
    if (!str_field("what", &what)) return false;
    if (what == "span") {
      double id = 0, parent = 0, send = 0, depart = 0, arrive = 0;
      if (!num_field("id", &id) || !num_field("parent", &parent) ||
          !num_field("send_us", &send) || !num_field("depart_us", &depart) ||
          !num_field("arrive_us", &arrive))
        return false;
      if (parent >= id) {
        if (error) *error = "lineage span parent must precede the span";
        return false;
      }
      return true;
    }
    if (what == "anchor") {
      std::string anchor;
      return str_field("anchor", &anchor) && num_field("at_us", &v) && num_field("span", &v);
    }
    if (error) *error = "unknown lineage \"what\" value \"" + what + "\"";
    return false;
  }
  if (kind == "span") {
    std::string name;
    double group = 0, seq = 0, begin = 0, end = 0;
    if (!str_field("name", &name) || !num_field("group", &group) ||
        !num_field("seq", &seq) || !num_field("begin_us", &begin) ||
        !num_field("end_us", &end))
      return false;
    if (end < begin) {
      if (error) *error = "span ends before it begins";
      return false;
    }
    return true;
  }
  if (error) *error = "unknown line kind \"" + kind + "\"";
  return false;
}

bool validate_trace_stream(std::istream& in, std::string* error, TraceLintSummary* summary) {
  TraceLintSummary local;
  std::string line;
  bool saw_meta = false;
  std::size_t line_no = 0;
  double last_cspan_id = 0;       // parent-before-child: ids strictly ascend
  double last_flight_at = -1e18;  // dumps must be causally (time-)ordered
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::string err;
    if (!validate_trace_line(line, &err)) {
      if (error) *error = "line " + std::to_string(line_no) + ": " + err;
      return false;
    }
    ++local.lines;
    // Cheap kind extraction (the line just validated, so the field exists).
    if (line.find("\"kind\":\"tx\"") != std::string::npos) {
      ++local.tx_lines;
      if (line.find("\"dag_total_us\":") != std::string::npos) ++local.dag_tx_lines;
    } else if (line.find("\"kind\":\"metric\"") != std::string::npos) {
      ++local.metric_lines;
    } else if (line.find("\"kind\":\"cspan\"") != std::string::npos) {
      ++local.cspan_lines;
      FlatObject obj;
      if (parse_flat_object(line, &obj, nullptr)) {
        const double id = obj["id"].num;
        if (id <= last_cspan_id) {
          if (error)
            *error = "line " + std::to_string(line_no) +
                     ": cspan ids must be strictly ascending (DAG order)";
          return false;
        }
        last_cspan_id = id;
      }
    } else if (line.find("\"kind\":\"span\"") != std::string::npos) {
      ++local.span_lines;
    } else if (line.find("\"kind\":\"phase_hist\"") != std::string::npos) {
      ++local.phase_hist_lines;
    } else if (line.find("\"kind\":\"flight\"") != std::string::npos &&
               line.find("\"kind\":\"flight_meta\"") == std::string::npos) {
      ++local.flight_lines;
      FlatObject obj;
      if (parse_flat_object(line, &obj, nullptr)) {
        const double at = obj["at_us"].num;
        if (at < last_flight_at) {
          if (error)
            *error = "line " + std::to_string(line_no) +
                     ": flight events must be in causal (time) order";
          return false;
        }
        last_flight_at = at;
      }
    } else if (line.find("\"kind\":\"lineage\"") != std::string::npos) {
      ++local.lineage_lines;
    } else if (line.find("\"kind\":\"flight_meta\"") != std::string::npos) {
      saw_meta = true;  // a flight dump is a self-contained stream
    } else if (line.find("\"kind\":\"meta\"") != std::string::npos) {
      saw_meta = true;
    }
  }
  if (!saw_meta) {
    if (error) *error = "no meta line found";
    return false;
  }
  if (summary != nullptr) *summary = local;
  return true;
}

}  // namespace jenga::telemetry
