#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <map>
#include <ostream>
#include <vector>

#include "common/hex.hpp"

namespace jenga::telemetry {

// ---------------------------------------------------------------------------
// Export
// ---------------------------------------------------------------------------

namespace {

void write_line(std::ostream& out, const char* fmt, auto... args) {
  char buf[512];
  std::snprintf(buf, sizeof(buf), fmt, args...);
  out << buf << "\n";
}

}  // namespace

void Telemetry::export_jsonl(std::ostream& out) const {
  const PhaseBreakdown b = tracer.breakdown();
  write_line(out,
             "{\"kind\":\"meta\",\"version\":1,\"traced_txs\":%zu,\"spans\":%zu,"
             "\"spans_dropped\":%llu,\"committed\":%llu,\"aborted\":%llu,"
             "\"incomplete\":%llu}",
             tracer.traced(), tracer.spans().size(),
             static_cast<unsigned long long>(tracer.spans_dropped()),
             static_cast<unsigned long long>(b.committed),
             static_cast<unsigned long long>(b.aborted),
             static_cast<unsigned long long>(b.incomplete));

  for (const auto& [name, c] : registry.counters())
    write_line(out, "{\"kind\":\"metric\",\"type\":\"counter\",\"name\":\"%s\",\"value\":%llu}",
               name.c_str(), static_cast<unsigned long long>(c.value()));
  for (const auto& [name, g] : registry.gauges())
    write_line(out, "{\"kind\":\"metric\",\"type\":\"gauge\",\"name\":\"%s\",\"value\":%lld}",
               name.c_str(), static_cast<long long>(g.value()));
  auto write_hist = [&out](const std::string& name, const Histogram& h) {
    write_line(out,
               "{\"kind\":\"metric\",\"type\":\"histogram\",\"name\":\"%s\",\"count\":%llu,"
               "\"sum\":%lld,\"min\":%lld,\"max\":%lld,\"mean\":%.6g,\"p50\":%.6g,"
               "\"p99\":%.6g}",
               name.c_str(), static_cast<unsigned long long>(h.count()),
               static_cast<long long>(h.sum()), static_cast<long long>(h.min()),
               static_cast<long long>(h.max()), h.mean(), h.quantile(0.5), h.quantile(0.99));
  };
  for (const auto& [name, h] : registry.histograms()) write_hist(name, h);
  write_hist("net.hop_delay_us", net.hop_delay_us);

  for (std::size_t t = 0; t < MessageTelemetry::kMaxTypes; ++t) {
    if (net.per_type[t].count == 0) continue;
    write_line(out,
               "{\"kind\":\"msgtype\",\"id\":%zu,\"name\":\"%s\",\"count\":%llu,"
               "\"bytes\":%llu}",
               t, net.type_name[t] != nullptr ? net.type_name[t] : "unknown",
               static_cast<unsigned long long>(net.per_type[t].count),
               static_cast<unsigned long long>(net.per_type[t].bytes));
  }

  for (std::size_t i = 0; i < kIntervalCount; ++i) {
    const Histogram& h = b.interval_hist[i];
    write_line(out,
               "{\"kind\":\"phase_hist\",\"phase\":\"%s\",\"count\":%llu,\"sum_us\":%lld,"
               "\"mean_s\":%.6f,\"p50_s\":%.6f,\"p99_s\":%.6f,\"critical\":%llu}",
               interval_name(i), static_cast<unsigned long long>(h.count()),
               static_cast<long long>(b.interval_sum[i]), b.mean_interval_seconds(i),
               b.quantile_interval_seconds(i, 0.5), b.quantile_interval_seconds(i, 0.99),
               static_cast<unsigned long long>(b.critical[i]));
  }

  // Tx lines, sorted for deterministic output across platforms.
  std::vector<const std::pair<const Hash256, TxTrace>*> order;
  order.reserve(tracer.traces().size());
  for (const auto& entry : tracer.traces()) order.push_back(&entry);
  std::sort(order.begin(), order.end(), [](const auto* a, const auto* b2) {
    if (a->second.submit != b2->second.submit) return a->second.submit < b2->second.submit;
    return a->first < b2->first;
  });
  for (const auto* entry : order) {
    const TxTrace& t = entry->second;
    const std::string hash = to_hex(entry->first);
    if (!t.done) {
      write_line(out,
                 "{\"kind\":\"tx\",\"hash\":\"%s\",\"outcome\":\"incomplete\","
                 "\"submit_us\":%lld}",
                 hash.c_str(), static_cast<long long>(t.submit));
      continue;
    }
    const auto iv = t.intervals();
    write_line(out,
               "{\"kind\":\"tx\",\"hash\":\"%s\",\"outcome\":\"%s\",\"submit_us\":%lld,"
               "\"finish_us\":%lld,\"state_lock_us\":%lld,\"grant_relay_us\":%lld,"
               "\"execute_us\":%lld,\"commit_us\":%lld,\"critical\":\"%s\"}",
               hash.c_str(), t.committed ? "commit" : "abort",
               static_cast<long long>(t.submit), static_cast<long long>(t.finish),
               static_cast<long long>(iv[0]), static_cast<long long>(iv[1]),
               static_cast<long long>(iv[2]), static_cast<long long>(iv[3]),
               interval_name(t.critical_interval()));
  }

  for (const SpanRecord& s : tracer.spans()) {
    write_line(out,
               "{\"kind\":\"span\",\"name\":\"%s\",\"group\":%llu,\"seq\":%llu,"
               "\"begin_us\":%lld,\"end_us\":%lld}",
               s.name, static_cast<unsigned long long>(s.group),
               static_cast<unsigned long long>(s.seq), static_cast<long long>(s.begin),
               static_cast<long long>(s.end));
  }
}

// ---------------------------------------------------------------------------
// Validation (shared by tools/trace_lint and the telemetry tests)
// ---------------------------------------------------------------------------

namespace {

struct JsonValue {
  enum class Kind { kString, kNumber, kBool };
  Kind kind = Kind::kNumber;
  std::string text;  // string contents (unescaped not needed: exporter never escapes)
  double num = 0.0;
};

using FlatObject = std::map<std::string, JsonValue>;

void skip_ws(const std::string& s, std::size_t& i) {
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
}

bool parse_string(const std::string& s, std::size_t& i, std::string* out) {
  if (i >= s.size() || s[i] != '"') return false;
  ++i;
  out->clear();
  while (i < s.size() && s[i] != '"') {
    if (s[i] == '\\') return false;  // exporter never emits escapes
    out->push_back(s[i++]);
  }
  if (i >= s.size()) return false;
  ++i;  // closing quote
  return true;
}

bool parse_flat_object(const std::string& line, FlatObject* out, std::string* err) {
  std::size_t i = 0;
  skip_ws(line, i);
  if (i >= line.size() || line[i] != '{') {
    if (err) *err = "line does not start with '{'";
    return false;
  }
  ++i;
  skip_ws(line, i);
  if (i < line.size() && line[i] == '}') {
    ++i;
  } else {
    while (true) {
      std::string key;
      skip_ws(line, i);
      if (!parse_string(line, i, &key)) {
        if (err) *err = "expected string key";
        return false;
      }
      skip_ws(line, i);
      if (i >= line.size() || line[i] != ':') {
        if (err) *err = "expected ':' after key \"" + key + "\"";
        return false;
      }
      ++i;
      skip_ws(line, i);
      JsonValue v;
      if (i < line.size() && line[i] == '"') {
        v.kind = JsonValue::Kind::kString;
        if (!parse_string(line, i, &v.text)) {
          if (err) *err = "bad string value for \"" + key + "\"";
          return false;
        }
      } else if (line.compare(i, 4, "true") == 0) {
        v.kind = JsonValue::Kind::kBool;
        v.num = 1;
        i += 4;
      } else if (line.compare(i, 5, "false") == 0) {
        v.kind = JsonValue::Kind::kBool;
        v.num = 0;
        i += 5;
      } else {
        const std::size_t start = i;
        while (i < line.size() &&
               (std::isdigit(static_cast<unsigned char>(line[i])) || line[i] == '-' ||
                line[i] == '+' || line[i] == '.' || line[i] == 'e' || line[i] == 'E'))
          ++i;
        if (i == start) {
          if (err) *err = "bad value for \"" + key + "\" (nested objects unsupported)";
          return false;
        }
        v.kind = JsonValue::Kind::kNumber;
        v.text = line.substr(start, i - start);
        char* endp = nullptr;
        v.num = std::strtod(v.text.c_str(), &endp);
        if (endp == nullptr || *endp != '\0') {
          if (err) *err = "unparsable number for \"" + key + "\"";
          return false;
        }
      }
      (*out)[key] = std::move(v);
      skip_ws(line, i);
      if (i < line.size() && line[i] == ',') {
        ++i;
        continue;
      }
      break;
    }
    if (i >= line.size() || line[i] != '}') {
      if (err) *err = "expected '}' at end of object";
      return false;
    }
    ++i;
  }
  skip_ws(line, i);
  if (i != line.size()) {
    if (err) *err = "trailing characters after object";
    return false;
  }
  return true;
}

bool require(const FlatObject& obj, const char* key, JsonValue::Kind kind,
             std::string* err, double* num = nullptr, std::string* text = nullptr) {
  const auto it = obj.find(key);
  if (it == obj.end()) {
    if (err) *err = std::string("missing field \"") + key + "\"";
    return false;
  }
  if (it->second.kind != kind) {
    if (err) *err = std::string("field \"") + key + "\" has wrong type";
    return false;
  }
  if (num != nullptr) *num = it->second.num;
  if (text != nullptr) *text = it->second.text;
  return true;
}

bool is_interval_name(const std::string& s) {
  for (std::size_t i = 0; i < kIntervalCount; ++i)
    if (s == interval_name(i)) return true;
  return false;
}

}  // namespace

bool validate_trace_line(const std::string& line, std::string* error) {
  FlatObject obj;
  if (!parse_flat_object(line, &obj, error)) return false;

  std::string kind;
  if (!require(obj, "kind", JsonValue::Kind::kString, error, nullptr, &kind)) return false;

  const auto num_field = [&](const char* key, double* out) {
    return require(obj, key, JsonValue::Kind::kNumber, error, out);
  };
  const auto str_field = [&](const char* key, std::string* out) {
    return require(obj, key, JsonValue::Kind::kString, error, nullptr, out);
  };

  if (kind == "meta") {
    double version = 0;
    if (!num_field("version", &version)) return false;
    if (version < 1) {
      if (error) *error = "meta version must be >= 1";
      return false;
    }
    return true;
  }
  if (kind == "metric") {
    std::string type, name;
    if (!str_field("type", &type) || !str_field("name", &name)) return false;
    if (type == "counter" || type == "gauge") {
      double v = 0;
      return num_field("value", &v);
    }
    if (type == "histogram") {
      double v = 0;
      for (const char* k : {"count", "sum", "min", "max", "mean", "p50", "p99"})
        if (!num_field(k, &v)) return false;
      return true;
    }
    if (error) *error = "unknown metric type \"" + type + "\"";
    return false;
  }
  if (kind == "msgtype") {
    std::string name;
    double v = 0;
    return str_field("name", &name) && num_field("id", &v) && num_field("count", &v) &&
           num_field("bytes", &v);
  }
  if (kind == "phase_hist") {
    std::string phase;
    if (!str_field("phase", &phase)) return false;
    if (!is_interval_name(phase)) {
      if (error) *error = "unknown phase \"" + phase + "\"";
      return false;
    }
    double v = 0;
    for (const char* k : {"count", "sum_us", "mean_s", "p50_s", "p99_s", "critical"})
      if (!num_field(k, &v)) return false;
    return true;
  }
  if (kind == "tx") {
    std::string hash, outcome;
    if (!str_field("hash", &hash) || !str_field("outcome", &outcome)) return false;
    if (hash.size() != 64) {
      if (error) *error = "tx hash must be 64 hex chars";
      return false;
    }
    double submit = 0;
    if (!num_field("submit_us", &submit)) return false;
    if (outcome == "incomplete") return true;
    if (outcome != "commit" && outcome != "abort") {
      if (error) *error = "unknown tx outcome \"" + outcome + "\"";
      return false;
    }
    double finish = 0, phases_sum = 0;
    if (!num_field("finish_us", &finish)) return false;
    for (const char* k : {"state_lock_us", "grant_relay_us", "execute_us", "commit_us"}) {
      double v = 0;
      if (!num_field(k, &v)) return false;
      if (v < 0) {
        if (error) *error = std::string("negative phase interval \"") + k + "\"";
        return false;
      }
      phases_sum += v;
    }
    std::string critical;
    if (!str_field("critical", &critical) || !is_interval_name(critical)) {
      if (error) *error = "tx line missing/bad \"critical\" phase";
      return false;
    }
    // The partition invariant: intervals must reconcile with end-to-end
    // latency (exact in the exporter; allow 1% / 2µs slop for re-encoders).
    const double total = finish - submit;
    const double slop = std::max(2.0, 0.01 * total);
    if (total < 0 || std::abs(phases_sum - total) > slop) {
      if (error)
        *error = "tx phase intervals do not sum to finish_us - submit_us (" +
                 std::to_string(phases_sum) + " vs " + std::to_string(total) + ")";
      return false;
    }
    return true;
  }
  if (kind == "span") {
    std::string name;
    double group = 0, seq = 0, begin = 0, end = 0;
    if (!str_field("name", &name) || !num_field("group", &group) ||
        !num_field("seq", &seq) || !num_field("begin_us", &begin) ||
        !num_field("end_us", &end))
      return false;
    if (end < begin) {
      if (error) *error = "span ends before it begins";
      return false;
    }
    return true;
  }
  if (error) *error = "unknown line kind \"" + kind + "\"";
  return false;
}

bool validate_trace_stream(std::istream& in, std::string* error, TraceLintSummary* summary) {
  TraceLintSummary local;
  std::string line;
  bool saw_meta = false;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::string err;
    if (!validate_trace_line(line, &err)) {
      if (error) *error = "line " + std::to_string(line_no) + ": " + err;
      return false;
    }
    ++local.lines;
    // Cheap kind extraction (the line just validated, so the field exists).
    if (line.find("\"kind\":\"tx\"") != std::string::npos) ++local.tx_lines;
    else if (line.find("\"kind\":\"metric\"") != std::string::npos) ++local.metric_lines;
    else if (line.find("\"kind\":\"span\"") != std::string::npos) ++local.span_lines;
    else if (line.find("\"kind\":\"phase_hist\"") != std::string::npos)
      ++local.phase_hist_lines;
    else if (line.find("\"kind\":\"meta\"") != std::string::npos) saw_meta = true;
  }
  if (!saw_meta) {
    if (error) *error = "no meta line found";
    return false;
  }
  if (summary != nullptr) *summary = local;
  return true;
}

}  // namespace jenga::telemetry
