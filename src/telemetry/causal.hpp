// Causal trace DAG over the simulated message fabric (DESIGN.md §11).
//
// Every sim::Network transmission gets a span: who sent what to whom, when
// the send was initiated, when the sender's egress finished serializing it
// (depart) and when the first copy arrived.  Each span records the span in
// whose handler context the send happened as its parent, so a transaction's
// full lineage — client submit, mempool admission, gather, grant relay, BFT
// rounds, 2PC prepare/decide, commit — forms a per-transaction causal DAG.
//
// Span ids are 1-based indices into a flat vector and are assigned in send
// order, so `parent < id` always holds and the DAG is acyclic by
// construction.  The tracer is strictly passive: it draws no randomness,
// schedules no events and touches no MetricsRegistry counter, so enabling it
// leaves ledger digests, admission digests and metrics snapshots
// bit-identical (tests/test_causal.cpp pins this for all four systems at
// exec worker counts 1 and 4).
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace jenga::telemetry {

/// Sentinel "node id" for the client side of a span (client_send has no
/// in-lattice sender).
inline constexpr std::uint32_t kClientNode = 0xFFFFFFFFu;

/// One network transmission.  Times partition the hop's latency:
///   queue-wait   = depart - send    (egress serialization backlog)
///   link-latency = arrive - depart  (propagation + scripted fault delay)
struct CausalSpan {
  std::uint64_t id = 0;      ///< 1-based; 0 means "no span".
  std::uint64_t parent = 0;  ///< 0 = root (no recorded causal predecessor).
  std::uint16_t msg_type = 0;
  std::uint32_t from = kClientNode;
  std::uint32_t to = 0;
  SimTime send = 0;    ///< transmission initiated
  SimTime depart = 0;  ///< sender egress finished serializing
  SimTime arrive = 0;  ///< earliest delivery (0 until delivered)
  bool delivered = false;

  [[nodiscard]] SimTime queue_us() const { return depart - send; }
  [[nodiscard]] SimTime link_us() const { return delivered ? arrive - depart : 0; }
};

/// Where a per-tx anchor came from.
enum class AnchorKind : std::uint8_t {
  kSubmit = 0,  ///< PhaseTracer::on_submit
  kPhase = 1,   ///< PhaseTracer::phase_event (aux = Phase index)
  kFinish = 2,  ///< PhaseTracer::on_finish (aux = committed)
  kNote = 3,    ///< free-form annotation (mempool admission etc.)
};

/// A point on a transaction's lifecycle tied to the span in whose delivery
/// context it was observed.  The union of all anchors' ancestor chains is
/// the transaction's causal DAG; the finish anchor's chain is its critical
/// path (each hop is, by construction, the last-arriving dependency of the
/// work that followed it).
struct TxAnchor {
  AnchorKind kind = AnchorKind::kNote;
  std::uint32_t aux = 0;  ///< phase index / committed flag / note id
  SimTime at = 0;
  std::uint64_t span = 0;  ///< simulator context when the anchor fired
};

class CausalTracer {
 public:
  /// Spans kept before new sends stop being assigned ids (dropped spans are
  /// counted; chains simply truncate, decomposition stays exact).
  void set_capacity(std::size_t cap) { capacity_ = cap; }

  void enable(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Binds the simulator's current-context cell (Simulator::context_handle).
  /// Telemetry must not depend on simnet, so the binding is a raw pointer.
  void bind_context(const std::uint64_t* current) { ctx_ = current; }
  [[nodiscard]] std::uint64_t current_context() const { return ctx_ != nullptr ? *ctx_ : 0; }

  /// Records a send whose parent is the current delivery context.
  /// Returns the new span id, or 0 when disabled or at capacity.
  std::uint64_t begin_span(std::uint16_t msg_type, std::uint32_t from, std::uint32_t to,
                           SimTime send, SimTime depart) {
    return begin_span_with_parent(msg_type, from, to, send, depart, current_context());
  }

  /// Same, with an explicit parent (gossip relay hops are caused by the
  /// relay's own inbound copy, not by the handler that started the gossip).
  std::uint64_t begin_span_with_parent(std::uint16_t msg_type, std::uint32_t from,
                                       std::uint32_t to, SimTime send, SimTime depart,
                                       std::uint64_t parent);

  /// Records the earliest delivery time for `span` (duplicates keep the min).
  void note_arrival(std::uint64_t span, SimTime when);

  /// Lifecycle anchors, called by PhaseTracer / IngressSet.
  void tx_anchor(const Hash256& tx, AnchorKind kind, std::uint32_t aux, SimTime at);

  [[nodiscard]] const CausalSpan* span(std::uint64_t id) const {
    if (id == 0 || id > spans_.size()) return nullptr;
    return &spans_[id - 1];
  }
  [[nodiscard]] std::size_t span_count() const { return spans_.size(); }
  [[nodiscard]] std::uint64_t spans_dropped() const { return dropped_; }

  [[nodiscard]] const std::vector<TxAnchor>* anchors(const Hash256& tx) const {
    auto it = anchors_.find(tx);
    return it == anchors_.end() ? nullptr : &it->second;
  }

  /// One hop on a critical path plus the service gap that preceded it
  /// (time between the previous hop's arrival — or submit — and this send).
  struct Hop {
    const CausalSpan* span = nullptr;
    SimTime service_before = 0;
  };

  /// Exact decomposition of [submit, finish]:
  ///   total == queue + link + service  and  total == finish - submit,
  /// where `service` folds the pre-first-hop gap, all inter-hop gaps and the
  /// post-last-arrival tail.  `valid` is false when the tx has no finish
  /// anchor (still in flight) or tracing was disabled.
  struct CriticalPath {
    std::vector<Hop> hops;  ///< chronological (earliest first)
    SimTime total = 0;
    SimTime queue = 0;
    SimTime link = 0;
    SimTime service = 0;
    SimTime ingress_wait = 0;  ///< submit → first hop send (subset of service)
    SimTime tail = 0;          ///< last arrival → finish (subset of service)
    bool valid = false;
  };

  /// Longest weighted path: walk the finish anchor's parent chain back until
  /// a span that started before `submit` (shared infrastructure traffic) or
  /// a root.  Because each span's parent is the message whose delivery
  /// caused the send, this chain IS the chain of last-arriving dependencies.
  [[nodiscard]] CriticalPath critical_path(const Hash256& tx, SimTime submit,
                                           SimTime finish) const;

  /// The tx's full causal DAG: union of ancestor chains of every anchor,
  /// truncated at `submit`.  Sorted ascending, so parents precede children.
  [[nodiscard]] std::vector<std::uint64_t> lineage(const Hash256& tx, SimTime submit) const;

 private:
  bool enabled_ = false;
  const std::uint64_t* ctx_ = nullptr;
  std::size_t capacity_ = std::size_t{1} << 20;
  std::uint64_t dropped_ = 0;
  std::vector<CausalSpan> spans_;
  std::unordered_map<Hash256, std::vector<TxAnchor>> anchors_;
};

}  // namespace jenga::telemetry
