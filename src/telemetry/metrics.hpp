// Metrics registry: named counters, gauges and log-linear (HDR-style)
// histograms, cheap enough to stay on in every run.
//
// Recording is a couple of integer ops (no allocation, no locking — the
// simulator is single-threaded); snapshots are deterministic for a given
// event sequence, so chaos tests can assert bit-identical metric output for
// the same seed.  Call sites that record on a hot path should resolve the
// metric once (`registry.histogram("x")` returns a stable reference) and
// keep the pointer.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace jenga::telemetry {

class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  /// Folding an externally-maintained total (e.g. network FaultStats) into
  /// the registry at snapshot time.
  void set(std::uint64_t v) { value_ = v; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

  [[nodiscard]] bool operator==(const Counter&) const = default;

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(std::int64_t v) { value_ = v; }
  void add(std::int64_t d) { value_ += d; }
  [[nodiscard]] std::int64_t value() const { return value_; }

  [[nodiscard]] bool operator==(const Gauge&) const = default;

 private:
  std::int64_t value_ = 0;
};

/// Log-linear histogram over non-negative integers (negative values clamp to
/// 0).  Values below 2^kSubBucketBits are exact; above that each power-of-two
/// range splits into 2^kSubBucketBits linear sub-buckets, bounding the
/// relative quantile error at ~2^-kSubBucketBits (≈6%).  The sum is tracked
/// exactly, so means are not subject to bucket rounding.
class Histogram {
 public:
  static constexpr std::uint32_t kSubBucketBits = 4;
  static constexpr std::uint32_t kSubBuckets = 1u << kSubBucketBits;
  // 16 exact buckets + (63 - 4) decades of 16 sub-buckets each.
  static constexpr std::size_t kNumBuckets = kSubBuckets + (63 - kSubBucketBits) * kSubBuckets;

  void record(std::int64_t v);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::int64_t sum() const { return sum_; }
  [[nodiscard]] std::int64_t min() const { return count_ == 0 ? 0 : min_; }
  [[nodiscard]] std::int64_t max() const { return count_ == 0 ? 0 : max_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  /// q in [0,1].  Interpolates within the target bucket; exact min/max at the
  /// extremes.
  [[nodiscard]] double quantile(double q) const;

  void merge(const Histogram& other);

  [[nodiscard]] bool operator==(const Histogram&) const = default;

  /// Bucket geometry, exposed for exporters.
  [[nodiscard]] static std::size_t bucket_index(std::uint64_t v);
  [[nodiscard]] static std::uint64_t bucket_lower(std::size_t index);
  [[nodiscard]] static std::uint64_t bucket_width(std::size_t index);
  [[nodiscard]] const std::array<std::uint64_t, kNumBuckets>& buckets() const {
    return buckets_;
  }

 private:
  std::array<std::uint64_t, kNumBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
};

/// Named metrics, created on first use.  Iteration (and therefore the JSON
/// snapshot) is in name order — deterministic regardless of creation order.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  [[nodiscard]] const Counter* find_counter(std::string_view name) const;
  [[nodiscard]] const Gauge* find_gauge(std::string_view name) const;
  [[nodiscard]] const Histogram* find_histogram(std::string_view name) const;

  [[nodiscard]] const std::map<std::string, Counter, std::less<>>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Gauge, std::less<>>& gauges() const {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, Histogram, std::less<>>& histograms() const {
    return histograms_;
  }

  /// One JSON object covering every metric (counters/gauges by value,
  /// histograms as {count,sum,min,max,mean,p50,p99}), keys sorted.
  [[nodiscard]] std::string to_json() const;

  [[nodiscard]] bool operator==(const MetricsRegistry&) const = default;

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace jenga::telemetry
