// Telemetry context: one per run, wired (by pointer) into the network, the
// consensus replicas and the system under test.  Everything here is passive —
// recording never draws randomness, never schedules events, and therefore
// never perturbs a simulation: a run with telemetry attached is bit-identical
// to one without.
//
// Export format (`--trace-out <file>.jsonl`): one flat JSON object per line,
// discriminated by "kind":
//   meta       {"kind":"meta","version":1,"traced_txs":N,"spans":N,...}
//   metric     {"kind":"metric","type":"counter|gauge","name":..,"value":..}
//              {"kind":"metric","type":"histogram","name":..,"count":..,
//               "sum":..,"min":..,"max":..,"mean":..,"p50":..,"p99":..}
//   msgtype    {"kind":"msgtype","id":..,"name":..,"count":..,"bytes":..}
//   phase_hist {"kind":"phase_hist","phase":..,"count":..,"sum_us":..,
//               "mean_s":..,"p50_s":..,"p99_s":..,"critical":..}
//   tx         {"kind":"tx","hash":..,"outcome":"commit|abort|incomplete",
//               "submit_us":..,"finish_us":..,"state_lock_us":..,
//               "grant_relay_us":..,"execute_us":..,"commit_us":..,
//               "critical":..}
//   span       {"kind":"span","name":..,"group":..,"seq":..,"begin_us":..,
//               "end_us":..}
//   cspan      {"kind":"cspan","id":..,"parent":..,"type":..,"from":..,
//               "to":..,"send_us":..,"depart_us":..,"arrive_us":..}
//               (causal tracing only; ids strictly ascending, parent < id)
// Tx lines additionally carry "dag_hops"/"dag_total_us"/"dag_queue_us"/
// "dag_link_us"/"dag_service_us" when causal tracing was enabled.
// validate_trace_stream() is the schema checker shared by the CI lint tool
// and the telemetry tests; it re-checks the per-tx invariant that the four
// phase intervals sum to finish_us - submit_us, the per-tx DAG/interval
// reconciliation, and the cspan ordering invariants.  It also accepts
// flight-recorder dumps (flight_meta/flight/lineage lines, see flight.hpp).
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "telemetry/causal.hpp"
#include "telemetry/flight.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace jenga::telemetry {

/// Per-message-type accounting plus hop-delay distribution, recorded by the
/// simulated network.  Indexed by the raw MsgType value; names are filled in
/// by the network layer (this module must not depend on simnet).
struct MessageTelemetry {
  static constexpr std::size_t kMaxTypes = 64;

  struct PerType {
    std::uint64_t count = 0;
    std::uint64_t bytes = 0;
  };

  std::array<PerType, kMaxTypes> per_type{};
  std::array<const char*, kMaxTypes> type_name{};
  /// Send-to-delivery delay of every scheduled hop, in microseconds.
  Histogram hop_delay_us;

  void record(std::uint16_t type, std::uint32_t bytes) {
    if (type >= kMaxTypes) return;
    per_type[type].count += 1;
    per_type[type].bytes += bytes;
  }
};

struct Telemetry {
  MetricsRegistry registry;
  PhaseTracer tracer;
  MessageTelemetry net;
  CausalTracer causal;
  FlightRecorder flight;

  Telemetry() {
    tracer.set_causal(&causal);
    tracer.set_flight(&flight);
    flight.set_lineage_source(&causal, &tracer);
  }
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  /// Writes the full JSONL trace (metrics snapshot, message telemetry,
  /// per-phase histograms, one line per traced tx, one line per sub-span;
  /// with causal tracing on, also one cspan line per DAG span and dag_*
  /// fields on tx lines).  Tx lines are sorted by (submit time, hash) so
  /// output is deterministic.
  void export_jsonl(std::ostream& out) const;

  /// chrome://tracing / Perfetto-compatible JSON: one "X" complete event per
  /// causal DAG hop (pid = destination node, tid = message type) plus "s"/"f"
  /// flow events binding each hop to its parent.  Empty array when causal
  /// tracing was off.
  void export_chrome(std::ostream& out) const;
};

/// Schema sanity for one exported line.  Returns false and fills `error`
/// (when non-null) on malformed JSON, unknown "kind", missing required
/// fields, or a tx line whose phase intervals do not reconcile with its
/// end-to-end latency.
[[nodiscard]] bool validate_trace_line(const std::string& line, std::string* error);

struct TraceLintSummary {
  std::size_t lines = 0;
  std::size_t tx_lines = 0;
  std::size_t metric_lines = 0;
  std::size_t span_lines = 0;
  std::size_t phase_hist_lines = 0;
  std::size_t cspan_lines = 0;
  std::size_t dag_tx_lines = 0;  ///< tx lines carrying dag_* fields
  std::size_t flight_lines = 0;
  std::size_t lineage_lines = 0;
};

/// Validates a whole JSONL stream; requires at least a meta line.
[[nodiscard]] bool validate_trace_stream(std::istream& in, std::string* error,
                                         TraceLintSummary* summary = nullptr);

}  // namespace jenga::telemetry
