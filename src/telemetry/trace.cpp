#include "telemetry/trace.hpp"

#include <algorithm>

#include "telemetry/causal.hpp"
#include "telemetry/flight.hpp"

namespace jenga::telemetry {

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kStateLock: return "state_lock";
    case Phase::kGather: return "gather";
    case Phase::kExecute: return "execute";
    case Phase::kCommitApply: return "commit_apply";
    case Phase::kCount: break;
  }
  return "?";
}

const char* interval_name(std::size_t i) {
  switch (i) {
    case 0: return "state_lock";
    case 1: return "grant_relay";
    case 2: return "execute";
    case 3: return "commit";
    default: return "?";
  }
}

std::array<SimTime, 4> TxTrace::intervals() const {
  std::array<SimTime, 4> out{};
  if (submit < 0 || finish < 0) return out;
  // Boundary i is checkpoint i clamped into [previous boundary, finish];
  // the last boundary is the finish time itself, so the intervals always
  // partition [submit, finish] exactly.
  SimTime prev = submit;
  const Phase boundary_phase[3] = {Phase::kStateLock, Phase::kGather, Phase::kExecute};
  for (std::size_t i = 0; i < 3; ++i) {
    const SimTime cp = checkpoint[static_cast<std::size_t>(boundary_phase[i])];
    const SimTime t = cp < 0 ? prev : std::clamp(cp, prev, finish);
    out[i] = t - prev;
    prev = t;
  }
  out[3] = finish - prev;
  return out;
}

std::size_t TxTrace::critical_interval() const {
  const auto iv = intervals();
  std::size_t best = 0;
  for (std::size_t i = 1; i < iv.size(); ++i)
    if (iv[i] > iv[best]) best = i;
  return best;
}

double PhaseBreakdown::mean_interval_seconds(std::size_t i) const {
  if (committed == 0) return 0.0;
  return static_cast<double>(interval_sum[i]) /
         (static_cast<double>(committed) * static_cast<double>(kSecond));
}

double PhaseBreakdown::mean_total_seconds() const {
  if (committed == 0) return 0.0;
  return static_cast<double>(total_sum) /
         (static_cast<double>(committed) * static_cast<double>(kSecond));
}

double PhaseBreakdown::quantile_interval_seconds(std::size_t i, double q) const {
  return interval_hist[i].quantile(q) / static_cast<double>(kSecond);
}

std::size_t PhaseBreakdown::dominant_interval() const {
  std::size_t best = 0;
  for (std::size_t i = 1; i < kIntervalCount; ++i)
    if (interval_sum[i] > interval_sum[best]) best = i;
  return best;
}

void PhaseTracer::on_submit(const Hash256& tx, SimTime now) {
  TxTrace& t = traces_[tx];
  if (t.submit < 0) {
    t.submit = now;
    if (causal_ != nullptr) causal_->tx_anchor(tx, AnchorKind::kSubmit, 0, now);
  }
}

void PhaseTracer::phase_event(const Hash256& tx, Phase phase, std::uint32_t key,
                              SimTime now) {
  const auto it = traces_.find(tx);
  if (it == traces_.end()) return;  // never submitted through this tracer
  TxTrace& t = it->second;
  if (t.done) return;
  t.events.push_back(TraceEvent{phase, key, now});
  SimTime& cp = t.checkpoint[static_cast<std::size_t>(phase)];
  cp = std::max(cp, now);
  if (causal_ != nullptr)
    causal_->tx_anchor(tx, AnchorKind::kPhase, static_cast<std::uint32_t>(phase), now);
  if (flight_ != nullptr && flight_->enabled()) {
    FlightEvent e;
    e.at = now;
    e.node = key;
    e.kind = FlightEvent::Kind::kPhase;
    e.a = static_cast<std::uint64_t>(phase);
    e.span = causal_ != nullptr ? causal_->current_context() : 0;
    e.tx = tx;
    flight_->record(key, e);
  }
}

void PhaseTracer::on_finish(const Hash256& tx, bool committed, SimTime now) {
  const auto it = traces_.find(tx);
  if (it == traces_.end()) return;
  TxTrace& t = it->second;
  if (t.done) return;
  t.done = true;
  t.committed = committed;
  t.finish = now;
  if (causal_ != nullptr)
    causal_->tx_anchor(tx, AnchorKind::kFinish, committed ? 1u : 0u, now);
}

void PhaseTracer::span(const char* name, std::uint64_t group, std::uint64_t seq,
                       SimTime begin, SimTime end) {
  if (spans_.size() >= span_capacity_) {
    ++spans_dropped_;
    return;
  }
  spans_.push_back(SpanRecord{name, group, seq, begin, end});
}

const TxTrace* PhaseTracer::find(const Hash256& tx) const {
  const auto it = traces_.find(tx);
  return it == traces_.end() ? nullptr : &it->second;
}

PhaseBreakdown PhaseTracer::breakdown() const {
  PhaseBreakdown b;
  for (const auto& [hash, t] : traces_) {
    if (!t.done) {
      ++b.incomplete;
      continue;
    }
    if (!t.committed) {
      ++b.aborted;
      continue;
    }
    ++b.committed;
    const auto iv = t.intervals();
    SimTime total = 0;
    for (std::size_t i = 0; i < iv.size(); ++i) {
      b.interval_hist[i].record(iv[i]);
      b.interval_sum[i] += iv[i];
      total += iv[i];
    }
    b.total_hist.record(total);
    b.total_sum += total;
    ++b.critical[t.critical_interval()];
  }
  return b;
}

}  // namespace jenga::telemetry
