// Crash-dump flight recorder (DESIGN.md §11).
//
// A bounded ring buffer of the last N events per node (sends, deliveries,
// tx phase transitions, BFT decides/view-changes, mempool admissions).  When
// something goes wrong — `security::check_invariants` reports a violation,
// the 2PC watchdog flags a stuck transfer, or replicas diverge on a decide —
// `trigger()` merges all rings into one causally-ordered window (sorted by
// virtual time, record-order tie-break) and dumps it as JSONL, together with
// the offending transaction's full causal lineage from the CausalTracer.
// Chaos-run failures become post-mortem-debuggable instead of
// seed-bisectable.
//
// Passive by the same discipline as the rest of src/telemetry: recording
// never draws randomness, schedules events, or touches a metrics counter.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace jenga::telemetry {

class CausalTracer;
class PhaseTracer;

struct FlightEvent {
  enum class Kind : std::uint8_t {
    kSend = 0,
    kDeliver = 1,
    kPhase = 2,
    kDecide = 3,
    kViewChange = 4,
    kAdmission = 5,
    kTrigger = 6,
  };

  SimTime at = 0;
  std::uint64_t seq = 0;  ///< global record order; causal tie-break at equal times
  std::uint32_t node = 0;  ///< node id; tracer key for kPhase; shard for kAdmission
  Kind kind = Kind::kSend;
  std::uint16_t msg_type = 0;     ///< kSend/kDeliver
  std::uint64_t span = 0;         ///< causal span id when tracing is enabled
  std::uint64_t parent = 0;
  std::uint64_t a = 0;            ///< kind-specific: peer node / phase / group
  std::uint64_t b = 0;            ///< kind-specific: bytes / height / reason code
  Hash256 tx{};                   ///< zero when the event is not tx-scoped
};

struct FlightDump {
  std::string reason;
  std::string contents;  ///< JSONL (flight_meta, flight, lineage lines)
};

class FlightRecorder {
 public:
  /// Ring capacity per node.  0 (default) disables the recorder entirely.
  /// One extra ring (index = nodes) holds client-side events.
  void configure(std::size_t nodes, std::size_t events_per_node);
  [[nodiscard]] bool enabled() const { return per_node_ > 0; }

  void record(std::uint32_t node, FlightEvent e);

  /// Lineage source for dumps; both optional (lineage lines are skipped
  /// when causal tracing is off).
  void set_lineage_source(const CausalTracer* causal, const PhaseTracer* tracer) {
    causal_ = causal;
    tracer_ = tracer;
  }

  /// When set, each dump is also written to `<prefix>-<n>.jsonl`.
  void set_dump_path(std::string prefix) { dump_prefix_ = std::move(prefix); }
  void set_max_dumps(std::size_t n) { max_dumps_ = n; }

  /// Fires the recorder: merges the rings into a causally-ordered window and
  /// captures a dump.  At most one dump per distinct reason and at most
  /// `max_dumps_` overall; always counts the trigger.  Returns true when a
  /// dump was captured.
  bool trigger(const std::string& reason, const Hash256* tx = nullptr);

  /// Writes the merged window (and the tx lineage, when available) to `out`.
  void write_dump(std::ostream& out, const std::string& reason, const Hash256* tx) const;

  [[nodiscard]] std::uint64_t triggers() const { return triggers_; }
  [[nodiscard]] const std::vector<FlightDump>& dumps() const { return dumps_; }
  [[nodiscard]] std::uint64_t events_recorded() const { return next_seq_; }

 private:
  std::size_t per_node_ = 0;
  std::vector<std::vector<FlightEvent>> rings_;  ///< fixed-capacity, overwrite oldest
  std::vector<std::size_t> next_slot_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t triggers_ = 0;
  std::size_t max_dumps_ = 4;
  std::vector<std::string> fired_reasons_;
  std::vector<FlightDump> dumps_;
  std::string dump_prefix_;
  const CausalTracer* causal_ = nullptr;
  const PhaseTracer* tracer_ = nullptr;
};

}  // namespace jenga::telemetry
