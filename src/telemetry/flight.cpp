#include "telemetry/flight.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/hex.hpp"
#include "telemetry/causal.hpp"
#include "telemetry/trace.hpp"

namespace jenga::telemetry {

namespace {

void write_line(std::ostream& out, const char* fmt, auto... args) {
  char buf[512];
  std::snprintf(buf, sizeof(buf), fmt, args...);
  out << buf << "\n";
}

const char* kind_name(FlightEvent::Kind k) {
  switch (k) {
    case FlightEvent::Kind::kSend: return "send";
    case FlightEvent::Kind::kDeliver: return "deliver";
    case FlightEvent::Kind::kPhase: return "phase";
    case FlightEvent::Kind::kDecide: return "decide";
    case FlightEvent::Kind::kViewChange: return "view_change";
    case FlightEvent::Kind::kAdmission: return "admission";
    case FlightEvent::Kind::kTrigger: return "trigger";
  }
  return "unknown";
}

const char* anchor_name(AnchorKind k) {
  switch (k) {
    case AnchorKind::kSubmit: return "submit";
    case AnchorKind::kPhase: return "phase";
    case AnchorKind::kFinish: return "finish";
    case AnchorKind::kNote: return "note";
  }
  return "unknown";
}

}  // namespace

void FlightRecorder::configure(std::size_t nodes, std::size_t events_per_node) {
  per_node_ = events_per_node;
  rings_.assign(nodes + 1, {});  // +1: client-side ring
  next_slot_.assign(nodes + 1, 0);
  if (per_node_ > 0)
    for (auto& r : rings_) r.reserve(per_node_);
}

void FlightRecorder::record(std::uint32_t node, FlightEvent e) {
  if (per_node_ == 0 || rings_.empty()) return;
  const std::size_t ring =
      node == kClientNode ? rings_.size() - 1 : std::min<std::size_t>(node, rings_.size() - 1);
  e.seq = next_seq_++;
  auto& r = rings_[ring];
  if (r.size() < per_node_) {
    r.push_back(e);
  } else {
    r[next_slot_[ring]] = e;
    next_slot_[ring] = (next_slot_[ring] + 1) % per_node_;
  }
}

bool FlightRecorder::trigger(const std::string& reason, const Hash256* tx) {
  if (per_node_ == 0) return false;
  ++triggers_;
  for (const std::string& r : fired_reasons_)
    if (r == reason) return false;  // one dump per distinct failure mode
  if (dumps_.size() >= max_dumps_) return false;
  fired_reasons_.push_back(reason);

  std::ostringstream out;
  write_dump(out, reason, tx);
  dumps_.push_back(FlightDump{reason, out.str()});
  if (!dump_prefix_.empty()) {
    std::ofstream f(dump_prefix_ + "-" + std::to_string(dumps_.size() - 1) + ".jsonl");
    if (f) f << dumps_.back().contents;
  }
  return true;
}

void FlightRecorder::write_dump(std::ostream& out, const std::string& reason,
                                const Hash256* tx) const {
  // Merge every ring into one causally-ordered window: virtual time first,
  // global record order as the tie-break (a cause is always recorded before
  // its same-instant effect, so sorting is a valid causal order).
  std::vector<const FlightEvent*> window;
  for (const auto& r : rings_)
    for (const FlightEvent& e : r) window.push_back(&e);
  std::sort(window.begin(), window.end(), [](const FlightEvent* a, const FlightEvent* b) {
    if (a->at != b->at) return a->at < b->at;
    return a->seq < b->seq;
  });

  const std::string tx_hex = tx != nullptr ? to_hex(*tx) : std::string();
  write_line(out,
             "{\"kind\":\"flight_meta\",\"version\":1,\"reason\":\"%s\",\"tx\":\"%s\","
             "\"events\":%zu,\"recorded\":%llu}",
             reason.c_str(), tx_hex.c_str(), window.size(),
             static_cast<unsigned long long>(next_seq_));

  for (const FlightEvent* e : window) {
    char txbuf[80] = "";
    if (!e->tx.is_zero())
      std::snprintf(txbuf, sizeof(txbuf), ",\"tx\":\"%s\"", to_hex(e->tx).c_str());
    write_line(out,
               "{\"kind\":\"flight\",\"at_us\":%lld,\"seq\":%llu,\"node\":%llu,"
               "\"event\":\"%s\",\"type\":%u,\"span\":%llu,\"parent\":%llu,"
               "\"a\":%llu,\"b\":%llu%s}",
               static_cast<long long>(e->at), static_cast<unsigned long long>(e->seq),
               static_cast<unsigned long long>(e->node), kind_name(e->kind),
               static_cast<unsigned>(e->msg_type), static_cast<unsigned long long>(e->span),
               static_cast<unsigned long long>(e->parent), static_cast<unsigned long long>(e->a),
               static_cast<unsigned long long>(e->b), txbuf);
  }

  // The offending transaction's full causal lineage: every span on any of
  // its anchor chains, parents before children, plus the anchors themselves.
  if (tx == nullptr || causal_ == nullptr || !causal_->enabled()) return;
  SimTime submit = 0;
  if (tracer_ != nullptr) {
    const TxTrace* t = tracer_->find(*tx);
    if (t != nullptr && t->submit >= 0) submit = t->submit;
  }
  for (std::uint64_t id : causal_->lineage(*tx, submit)) {
    const CausalSpan* s = causal_->span(id);
    if (s == nullptr) continue;
    write_line(out,
               "{\"kind\":\"lineage\",\"what\":\"span\",\"id\":%llu,\"parent\":%llu,"
               "\"type\":%u,\"from\":%llu,\"to\":%llu,\"send_us\":%lld,"
               "\"depart_us\":%lld,\"arrive_us\":%lld}",
               static_cast<unsigned long long>(s->id),
               static_cast<unsigned long long>(s->parent), static_cast<unsigned>(s->msg_type),
               static_cast<unsigned long long>(s->from), static_cast<unsigned long long>(s->to),
               static_cast<long long>(s->send), static_cast<long long>(s->depart),
               static_cast<long long>(s->arrive));
  }
  const std::vector<TxAnchor>* anchors = causal_->anchors(*tx);
  if (anchors != nullptr) {
    for (const TxAnchor& a : *anchors)
      write_line(out,
                 "{\"kind\":\"lineage\",\"what\":\"anchor\",\"anchor\":\"%s\",\"aux\":%u,"
                 "\"at_us\":%lld,\"span\":%llu}",
                 anchor_name(a.kind), a.aux, static_cast<long long>(a.at),
                 static_cast<unsigned long long>(a.span));
  }
}

}  // namespace jenga::telemetry
