#include "telemetry/causal.hpp"

#include <algorithm>
#include <unordered_set>

namespace jenga::telemetry {

std::uint64_t CausalTracer::begin_span_with_parent(std::uint16_t msg_type, std::uint32_t from,
                                                   std::uint32_t to, SimTime send, SimTime depart,
                                                   std::uint64_t parent) {
  if (!enabled_) return 0;
  if (spans_.size() >= capacity_) {
    ++dropped_;
    return 0;
  }
  CausalSpan s;
  s.id = spans_.size() + 1;
  s.parent = parent;
  s.msg_type = msg_type;
  s.from = from;
  s.to = to;
  s.send = send;
  s.depart = depart < send ? send : depart;
  spans_.push_back(s);
  return s.id;
}

void CausalTracer::note_arrival(std::uint64_t span, SimTime when) {
  if (span == 0 || span > spans_.size()) return;
  CausalSpan& s = spans_[span - 1];
  if (!s.delivered || when < s.arrive) {
    s.delivered = true;
    s.arrive = when < s.depart ? s.depart : when;
  }
}

void CausalTracer::tx_anchor(const Hash256& tx, AnchorKind kind, std::uint32_t aux, SimTime at) {
  if (!enabled_) return;
  anchors_[tx].push_back(TxAnchor{kind, aux, at, current_context()});
}

CausalTracer::CriticalPath CausalTracer::critical_path(const Hash256& tx, SimTime submit,
                                                       SimTime finish) const {
  CriticalPath cp;
  const std::vector<TxAnchor>* a = anchors(tx);
  if (a == nullptr) return cp;
  const TxAnchor* fin = nullptr;
  for (const TxAnchor& an : *a)
    if (an.kind == AnchorKind::kFinish) fin = &an;
  if (fin == nullptr) return cp;

  // Collect the ancestor chain of the finish anchor, newest first.
  std::vector<const CausalSpan*> chain;
  std::uint64_t id = fin->span;
  while (id != 0) {
    const CausalSpan* s = span(id);
    if (s == nullptr || !s->delivered) break;
    if (s->send < submit) break;  // shared pre-submit traffic: not this tx's work
    chain.push_back(s);
    id = s->parent;
  }
  std::reverse(chain.begin(), chain.end());

  cp.total = finish - submit;
  SimTime prev = submit;
  for (const CausalSpan* s : chain) {
    Hop h;
    h.span = s;
    h.service_before = s->send > prev ? s->send - prev : 0;
    cp.hops.push_back(h);
    cp.queue += s->queue_us();
    cp.link += s->link_us();
    prev = s->arrive;
  }
  cp.tail = finish > prev ? finish - prev : 0;
  cp.ingress_wait = cp.hops.empty() ? cp.total : cp.hops.front().service_before;
  cp.service = cp.total - cp.queue - cp.link;
  cp.valid = true;
  return cp;
}

std::vector<std::uint64_t> CausalTracer::lineage(const Hash256& tx, SimTime submit) const {
  std::vector<std::uint64_t> out;
  const std::vector<TxAnchor>* a = anchors(tx);
  if (a == nullptr) return out;
  std::unordered_set<std::uint64_t> seen;
  for (const TxAnchor& an : *a) {
    std::uint64_t id = an.span;
    while (id != 0 && !seen.count(id)) {
      const CausalSpan* s = span(id);
      if (s == nullptr) break;
      if (s->send < submit) break;
      seen.insert(id);
      id = s->parent;
    }
  }
  out.assign(seen.begin(), seen.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace jenga::telemetry
