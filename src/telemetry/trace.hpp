// Per-transaction phase tracer.
//
// Every transaction leaves a TxTrace: the submit instant, monotone phase
// checkpoints recorded as the protocol crosses them, and the finish instant.
// The four latency intervals derived from the checkpoints partition the
// end-to-end commit latency *exactly* (each boundary is clamped to be
// monotone), which is what lets the breakdown benches reconcile per-phase
// sums against total latency instead of re-deriving components:
//
//   submit ──► state_lock ──► grant_relay ──► execute ──► commit
//          │              │               │           │
//          │              │               │           └ result relay +
//          │              │               │             commit consensus
//          │              │               └ execution-site consensus + VM
//          │              └ subgroup relay + gather of the last grant
//          └ per-shard Phase-1 consensus (pre-prepare → lock grant)
//
// Checkpoints keep the *latest* event per phase (a 3-shard tx's state_lock
// boundary is the last shard's grant), so phases measure the critical path.
// BFT rounds and view changes are recorded as generic sub-spans keyed by
// (group, height); they annotate the trace but do not enter the partition.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "telemetry/metrics.hpp"

namespace jenga::telemetry {

class CausalTracer;
class FlightRecorder;

enum class Phase : std::uint8_t {
  kStateLock = 0,  // shard decided the block granting (or refusing) its state
  kGather,         // execution site holds every involved shard's grant
  kExecute,        // execution consensus decided the result
  kCommitApply,    // a shard applied the certified outcome
  kCount
};
inline constexpr std::size_t kPhaseCount = static_cast<std::size_t>(Phase::kCount);

[[nodiscard]] const char* phase_name(Phase p);

struct TraceEvent {
  Phase phase{};
  std::uint32_t key = 0;  // shard / channel id the event happened on
  SimTime at = 0;
};

struct TxTrace {
  SimTime submit = -1;
  SimTime finish = -1;
  std::array<SimTime, kPhaseCount> checkpoint{-1, -1, -1, -1};
  bool committed = false;
  bool done = false;
  std::vector<TraceEvent> events;

  /// The four monotone intervals summing exactly to finish - submit:
  /// [state_lock, grant_relay, execute, commit].  Unset checkpoints (a flow
  /// that skips a phase) contribute a zero-length interval.
  [[nodiscard]] std::array<SimTime, 4> intervals() const;
  /// Index (into intervals()) of the longest interval — the phase to blame
  /// for this transaction's latency.
  [[nodiscard]] std::size_t critical_interval() const;
};

inline constexpr std::size_t kIntervalCount = 4;
[[nodiscard]] const char* interval_name(std::size_t i);

/// Aggregate over every finished trace: per-interval histograms (µs), exact
/// per-interval sums for reconciliation, and critical-path attribution.
struct PhaseBreakdown {
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
  std::uint64_t incomplete = 0;  // submitted but never finished
  std::array<Histogram, kIntervalCount> interval_hist;  // committed txs only
  Histogram total_hist;                                 // committed txs only
  std::array<std::int64_t, kIntervalCount> interval_sum{};
  std::int64_t total_sum = 0;
  std::array<std::uint64_t, kIntervalCount> critical{};

  [[nodiscard]] double mean_interval_seconds(std::size_t i) const;
  [[nodiscard]] double mean_total_seconds() const;
  [[nodiscard]] double quantile_interval_seconds(std::size_t i, double q) const;
  /// Largest mean interval — "where did the time go".
  [[nodiscard]] std::size_t dominant_interval() const;
};

struct SpanRecord {
  const char* name = "";  // static strings only ("bft.round", ...)
  std::uint64_t group = 0;
  std::uint64_t seq = 0;
  SimTime begin = 0;
  SimTime end = 0;
};

class PhaseTracer {
 public:
  void on_submit(const Hash256& tx, SimTime now);
  /// Records a span event and advances the phase checkpoint (keeps the max).
  /// Events after the transaction finished are dropped — a late duplicate
  /// outcome must not smear a settled trace.
  void phase_event(const Hash256& tx, Phase phase, std::uint32_t key, SimTime now);
  void on_finish(const Hash256& tx, bool committed, SimTime now);

  /// Generic sub-span (BFT round, view change).  Beyond the capacity the
  /// record is dropped (counted in spans_dropped) — histograms fed by the
  /// callers stay exact.
  void span(const char* name, std::uint64_t group, std::uint64_t seq, SimTime begin,
            SimTime end);

  [[nodiscard]] const TxTrace* find(const Hash256& tx) const;
  [[nodiscard]] const std::unordered_map<Hash256, TxTrace>& traces() const {
    return traces_;
  }
  [[nodiscard]] const std::vector<SpanRecord>& spans() const { return spans_; }
  [[nodiscard]] std::uint64_t spans_dropped() const { return spans_dropped_; }
  [[nodiscard]] std::size_t traced() const { return traces_.size(); }
  void set_span_capacity(std::size_t cap) { span_capacity_ = cap; }

  [[nodiscard]] PhaseBreakdown breakdown() const;

  /// Optional sinks: when a CausalTracer is attached (and enabled), every
  /// accepted submit/phase/finish is mirrored as a per-tx anchor tied to the
  /// current causal context; a FlightRecorder receives phase events for its
  /// ring buffers.  Both passive.
  void set_causal(CausalTracer* causal) { causal_ = causal; }
  void set_flight(FlightRecorder* flight) { flight_ = flight; }

 private:
  std::unordered_map<Hash256, TxTrace> traces_;
  std::vector<SpanRecord> spans_;
  std::size_t span_capacity_ = 1u << 20;
  std::uint64_t spans_dropped_ = 0;
  CausalTracer* causal_ = nullptr;
  FlightRecorder* flight_ = nullptr;
};

}  // namespace jenga::telemetry
