#include "telemetry/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace jenga::telemetry {

std::size_t Histogram::bucket_index(std::uint64_t v) {
  if (v < kSubBuckets) return static_cast<std::size_t>(v);
  const std::uint32_t msb = 63u - static_cast<std::uint32_t>(std::countl_zero(v));
  const std::uint32_t shift = msb - kSubBucketBits;
  // (v >> shift) is in [kSubBuckets, 2*kSubBuckets); strip the leading one.
  const std::uint64_t sub = (v >> shift) - kSubBuckets;
  return kSubBuckets + static_cast<std::size_t>(msb - kSubBucketBits) * kSubBuckets +
         static_cast<std::size_t>(sub);
}

std::uint64_t Histogram::bucket_lower(std::size_t index) {
  if (index < kSubBuckets) return index;
  const std::size_t decade = (index - kSubBuckets) / kSubBuckets;
  const std::size_t sub = (index - kSubBuckets) % kSubBuckets;
  const std::uint32_t shift = static_cast<std::uint32_t>(decade);
  return (static_cast<std::uint64_t>(kSubBuckets + sub)) << shift;
}

std::uint64_t Histogram::bucket_width(std::size_t index) {
  if (index < kSubBuckets) return 1;
  const std::size_t decade = (index - kSubBuckets) / kSubBuckets;
  return 1ull << static_cast<std::uint32_t>(decade);
}

void Histogram::record(std::int64_t v) {
  const std::uint64_t clamped = v < 0 ? 0 : static_cast<std::uint64_t>(v);
  buckets_[bucket_index(clamped)] += 1;
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  if (q <= 0.0) return static_cast<double>(min());
  if (q >= 1.0) return static_cast<double>(max());
  // Rank of the target sample (1-based), then walk the buckets.
  const double rank = q * static_cast<double>(count_ - 1) + 1.0;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    const std::uint64_t next = seen + buckets_[i];
    if (static_cast<double>(next) >= rank) {
      // Linear interpolation inside the bucket's value range.
      const double within = (rank - static_cast<double>(seen)) /
                            static_cast<double>(buckets_[i]);
      const double lo = static_cast<double>(bucket_lower(i));
      // The bucket holds integer values in [lower, lower + width - 1]; the
      // interpolation span must use that inclusive top, not the next
      // bucket's lower edge.  Otherwise a rank landing exactly on a bucket
      // boundary (within == 1.0) overshoots into the next bucket and, when a
      // larger outlier exists elsewhere, the global min/max clamp cannot
      // catch it — e.g. 100 samples of 16 plus one of 1000 reported p99 = 17
      // even though no recorded sample lies in (16, 1000).
      const double hi = lo + static_cast<double>(bucket_width(i) - 1);
      const double est = lo + within * (hi - lo);
      // Bucket bounds can still overshoot the true extremes; clamp to them.
      return std::clamp(est, static_cast<double>(min()), static_cast<double>(max()));
    }
    seen = next;
  }
  return static_cast<double>(max());
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.emplace(std::string(name), Counter{}).first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  return gauges_.emplace(std::string(name), Gauge{}).first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(std::string(name), Histogram{}).first->second;
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::find_histogram(std::string_view name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

std::string MetricsRegistry::to_json() const {
  std::string out = "{";
  char buf[256];
  bool first = true;
  auto sep = [&] {
    if (!first) out += ",";
    first = false;
  };
  for (const auto& [name, c] : counters_) {
    sep();
    std::snprintf(buf, sizeof(buf), "\"%s\":%llu", name.c_str(),
                  static_cast<unsigned long long>(c.value()));
    out += buf;
  }
  for (const auto& [name, g] : gauges_) {
    sep();
    std::snprintf(buf, sizeof(buf), "\"%s\":%lld", name.c_str(),
                  static_cast<long long>(g.value()));
    out += buf;
  }
  for (const auto& [name, h] : histograms_) {
    sep();
    std::snprintf(buf, sizeof(buf),
                  "\"%s\":{\"count\":%llu,\"sum\":%lld,\"min\":%lld,\"max\":%lld,"
                  "\"mean\":%.6g,\"p50\":%.6g,\"p99\":%.6g}",
                  name.c_str(), static_cast<unsigned long long>(h.count()),
                  static_cast<long long>(h.sum()), static_cast<long long>(h.min()),
                  static_cast<long long>(h.max()), h.mean(), h.quantile(0.5),
                  h.quantile(0.99));
    out += buf;
  }
  out += "}";
  return out;
}

}  // namespace jenga::telemetry
