// Discrete-event simulation core.
//
// A single-threaded event loop with virtual time.  All protocol behaviour in
// Jenga and the baselines is driven by events scheduled here; nothing ever
// consults a wall clock, so every run is deterministic and as fast as the
// host CPU allows.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.hpp"

namespace jenga::sim {

class Simulator {
 public:
  using Task = std::function<void()>;

  /// Current virtual time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `task` at absolute time `when` (clamped to now()).
  void schedule_at(SimTime when, Task task);

  /// Schedules `task` after `delay` microseconds.
  void schedule_after(SimTime delay, Task task) { schedule_at(now_ + delay, std::move(task)); }

  /// Runs the next event.  Returns false if the queue is empty.
  bool step();

  /// Runs events until virtual time exceeds `deadline` or the queue drains.
  /// Time is left at min(deadline, time of last event).
  void run_until(SimTime deadline);

  /// Runs until the queue drains (or `max_events` is hit, guarding against
  /// livelock in buggy protocols).  Returns the number of events processed.
  std::uint64_t run_until_idle(std::uint64_t max_events = UINT64_MAX);

  [[nodiscard]] std::uint64_t events_processed() const { return events_processed_; }
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;  // FIFO tie-break keeps same-instant ordering deterministic
    Task task;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace jenga::sim
