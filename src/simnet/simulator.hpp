// Discrete-event simulation core.
//
// A single-threaded event loop with virtual time.  All protocol behaviour in
// Jenga and the baselines is driven by events scheduled here; nothing ever
// consults a wall clock, so every run is deterministic and as fast as the
// host CPU allows.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.hpp"

namespace jenga::sim {

class Simulator {
 public:
  using Task = std::function<void()>;

  /// Current virtual time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `task` at absolute time `when` (clamped to now()).
  void schedule_at(SimTime when, Task task);

  /// Schedules `task` after `delay` microseconds.
  void schedule_after(SimTime delay, Task task) { schedule_at(now_ + delay, std::move(task)); }

  /// Runs the next event.  Returns false if the queue is empty.
  bool step();

  /// Runs events until virtual time exceeds `deadline` or the queue drains.
  /// Time is left at min(deadline, time of last event).
  void run_until(SimTime deadline);

  /// Runs until the queue drains (or `max_events` is hit, guarding against
  /// livelock in buggy protocols).  Returns the number of events processed.
  std::uint64_t run_until_idle(std::uint64_t max_events = UINT64_MAX);

  [[nodiscard]] std::uint64_t events_processed() const { return events_processed_; }
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

  /// Causal context: an opaque span id carried alongside the event loop.
  /// `schedule_at` snapshots the current context into the new event and
  /// `step` restores it before running the task, so timer chains and
  /// self-scheduled work inherit the causal ancestor that armed them.  The
  /// network overrides the context to the delivered message's span at
  /// delivery time.  Purely observational: the context never influences
  /// ordering, timing, or any RNG, so runs are bit-identical whether or not
  /// anyone reads it.
  [[nodiscard]] std::uint64_t context() const { return ctx_; }
  void set_context(std::uint64_t ctx) { ctx_ = ctx; }
  /// Stable pointer to the current context, for passive observers
  /// (telemetry) that must not depend on this header.
  [[nodiscard]] const std::uint64_t* context_handle() const { return &ctx_; }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;  // FIFO tie-break keeps same-instant ordering deterministic
    std::uint64_t ctx;  // causal context captured at schedule time
    Task task;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::uint64_t ctx_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace jenga::sim
