// Message taxonomy for the simulated P2P network.
//
// Payloads are shared immutable objects: a broadcast to 200 peers shares one
// allocation.  The wire size is charged explicitly (`size_bytes`) so the
// bandwidth model stays faithful even though payloads are never serialized
// inside the simulator.
#pragma once

#include <cstdint>
#include <memory>

#include "common/types.hpp"

namespace jenga::sim {

enum class MsgType : std::uint16_t {
  // Client traffic
  kClientTx = 1,

  // Intra-group BFT consensus (linear PBFT with aggregated certificates)
  kBftPrePrepare = 10,
  kBftPrepareVote = 11,
  kBftPreparedCert = 12,
  kBftCommitVote = 13,
  kBftCommitCert = 14,
  kBftViewChange = 15,
  kBftNewView = 16,
  kBftSyncRequest = 17,   // recovering replica asks a peer for decided heights
  kBftSyncResponse = 18,  // (value, commit cert) entries for missed heights

  // Jenga cross-shard protocol (travels via subgroup members, §V-C)
  kStateGrant = 30,      // state shard -> execution channel (state + lock proof)
  kAbortRequest = 31,    // state shard -> execution channel (state unavailable)
  kExecResult = 32,      // execution channel -> state shards (state updates)
  kExecAbort = 33,       // execution channel -> state shards (abort)

  // Baseline cross-shard traffic
  kSubTxResult = 40,     // CX Func: intermediate result hand-off between shards
  kStateMove = 41,       // Single Shard: account state in/out of the contract shard
  kMergedCommit = 42,    // Pyramid: cross-shard commit round after merged execution
  kTwoPcPrepare = 43,    // transfer txs: classic 2PC prepare
  kTwoPcCommit = 44,     // transfer txs: classic 2PC commit

  // Epoch reconfiguration (paper §V-D)
  kEpochVrf = 50,        // a member's VRF contribution to the next epoch's beacon

  // Rumor-spreading transport (src/gossip/, DESIGN.md §12).  Values must stay
  // below telemetry::MessageTelemetry::kMaxTypes (64).
  kRumorPush = 60,       // round-driven push: live rumors + known-id digest
  kRumorPullReq = 61,    // ids the receiver saw in a digest but doesn't hold
  kRumorPullResp = 62,   // payloads answering a pull request
  kBatchFrame = 63,      // coalesced (shard,channel) protocol messages + certs
};

/// Human-readable name for a message type (telemetry export); nullptr for
/// values outside the taxonomy.
[[nodiscard]] constexpr const char* msg_type_name(MsgType t) {
  switch (t) {
    case MsgType::kClientTx: return "client_tx";
    case MsgType::kBftPrePrepare: return "bft_pre_prepare";
    case MsgType::kBftPrepareVote: return "bft_prepare_vote";
    case MsgType::kBftPreparedCert: return "bft_prepared_cert";
    case MsgType::kBftCommitVote: return "bft_commit_vote";
    case MsgType::kBftCommitCert: return "bft_commit_cert";
    case MsgType::kBftViewChange: return "bft_view_change";
    case MsgType::kBftNewView: return "bft_new_view";
    case MsgType::kBftSyncRequest: return "bft_sync_request";
    case MsgType::kBftSyncResponse: return "bft_sync_response";
    case MsgType::kStateGrant: return "state_grant";
    case MsgType::kAbortRequest: return "abort_request";
    case MsgType::kExecResult: return "exec_result";
    case MsgType::kExecAbort: return "exec_abort";
    case MsgType::kSubTxResult: return "subtx_result";
    case MsgType::kStateMove: return "state_move";
    case MsgType::kMergedCommit: return "merged_commit";
    case MsgType::kTwoPcPrepare: return "twopc_prepare";
    case MsgType::kTwoPcCommit: return "twopc_commit";
    case MsgType::kEpochVrf: return "epoch_vrf";
    case MsgType::kRumorPush: return "rumor_push";
    case MsgType::kRumorPullReq: return "rumor_pull_req";
    case MsgType::kRumorPullResp: return "rumor_pull_resp";
    case MsgType::kBatchFrame: return "batch_frame";
  }
  return nullptr;
}

[[nodiscard]] constexpr bool is_rumor_transport_type(MsgType t) {
  return t == MsgType::kRumorPush || t == MsgType::kRumorPullReq ||
         t == MsgType::kRumorPullResp;
}

/// Base class for all payloads; concrete types live with their protocols.
struct Payload {
  virtual ~Payload() = default;
};

struct Message {
  MsgType type{};
  NodeId from{};
  std::uint32_t size_bytes = 0;
  /// Causal span id assigned by the network at send time (0 when causal
  /// tracing is disabled).  Purely observational — no protocol reads it.
  std::uint64_t span = 0;
  std::shared_ptr<const Payload> payload;
};

/// Typed payload access.  The caller must know the concrete type from
/// `Message::type`; mismatches abort loudly (protocol bug, not runtime input).
template <typename T>
const T& payload_as(const Message& m) {
  const T* p = dynamic_cast<const T*>(m.payload.get());
  if (p == nullptr) __builtin_trap();
  return *p;
}

template <typename T, typename... Args>
Message make_message(MsgType type, NodeId from, std::uint32_t size_bytes, Args&&... args) {
  Message m;
  m.type = type;
  m.from = from;
  m.size_bytes = size_bytes;
  m.payload = std::make_shared<const T>(std::forward<Args>(args)...);
  return m;
}

}  // namespace jenga::sim
