#include "simnet/simulator.hpp"

#include <utility>

namespace jenga::sim {

void Simulator::schedule_at(SimTime when, Task task) {
  if (when < now_) when = now_;
  queue_.push(Event{when, next_seq_++, ctx_, std::move(task)});
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // priority_queue::top() returns const&; the task must be moved out, so pop
  // into a local copy of the handle first.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.when;
  ++events_processed_;
  ctx_ = ev.ctx;
  ev.task();
  ctx_ = 0;
  return true;
}

void Simulator::run_until(SimTime deadline) {
  while (!queue_.empty() && queue_.top().when <= deadline) step();
  if (now_ < deadline) now_ = deadline;
}

std::uint64_t Simulator::run_until_idle(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

}  // namespace jenga::sim
