// Simulated partially-synchronous P2P network.
//
// Timing model (DESIGN.md §5): each transmission pays
//   serialization (size / per-node egress bandwidth, FIFO per sender)
//   + base propagation latency (default 100 ms, paper's setting)
//   + optional uniform jitter.
// Broadcast to a group can go unicast (leader collecting votes — tiny
// messages) or via a gossip tree (block dissemination — large messages fan
// out through relays, paying log-depth rather than linear serialization).
//
// Every delivery is tagged intra-shard / cross-shard / client; those
// counters are the measurement behind Fig. 3e and the communication
// breakdowns discussed throughout the paper.
//
// Adversarial link model (DESIGN.md "Fault model"): on top of the timing
// model the network can probabilistically drop or duplicate messages, add
// per-link extra delay, enforce bidirectional partitions between node sets,
// and take nodes down/up (crash churn).  All fault draws come from the same
// deterministic rng stream as jitter, so a faulted run replays bit-identically
// for a given seed.  Fault knobs apply to node-to-node traffic only; client
// injection (`client_send`) is assumed reliable — clients retry out of band.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "simnet/message.hpp"
#include "simnet/simulator.hpp"
#include "telemetry/telemetry.hpp"

namespace jenga::sim {

enum class TrafficClass : std::uint8_t { kIntraShard = 0, kCrossShard = 1, kClient = 2 };

/// How a group broadcast physically spreads (DESIGN.md §12).
///   kNaive: sender unicasts to every member (O(n) copies through one uplink).
///   kTree:  one-shot fanout tree (log-depth, fragile under loss).
///   kRumor: push-pull rumor mongering via the attached RumorTransport
///           (constant per-node fanout, pull-digest loss repair, dup-drop).
enum class Transport : std::uint8_t { kNaive = 0, kTree = 1, kRumor = 2 };

/// Message classes that a Transport can be chosen for independently.
enum class BroadcastKind : std::uint8_t {
  kProposal = 0,  // BFT pre-prepare value dissemination inside a group
  kRelay = 1,     // certified grant/result batches relayed into a group
  kBeacon = 2,    // epoch VRF contributions to the whole network
};

[[nodiscard]] constexpr const char* transport_name(Transport t) {
  switch (t) {
    case Transport::kNaive: return "naive";
    case Transport::kTree: return "tree";
    case Transport::kRumor: return "rumor";
  }
  return "?";
}

struct NetConfig {
  SimTime base_latency = 100 * kMillisecond;  // paper: 100 ms per message
  double bandwidth_bps = 20e6;                // paper: 20 Mbps per node
  SimTime jitter_max = 0;                     // uniform [0, jitter_max)
  std::size_t gossip_fanout = 8;
  /// If false, serialization delay is skipped (pure-latency model for tests).
  bool model_bandwidth = true;
  /// Per-message-class dissemination transport, indexed by BroadcastKind.
  /// Defaults reproduce the pre-rumor behaviour (fanout trees) bit-exactly.
  Transport transports[3] = {Transport::kTree, Transport::kTree, Transport::kTree};
  /// Batching window for certified relay traffic in rumor mode: messages to
  /// the same destination group flushed as one framed rumor per window.
  SimTime batch_window = 100 * kMillisecond;

  [[nodiscard]] Transport transport_for(BroadcastKind k) const {
    return transports[static_cast<std::size_t>(k)];
  }
  void set_all_transports(Transport t) { transports[0] = transports[1] = transports[2] = t; }
  [[nodiscard]] bool any_rumor() const {
    return transports[0] == Transport::kRumor || transports[1] == Transport::kRumor ||
           transports[2] == Transport::kRumor;
  }
};

/// Deterministic content-derived rumor id: mixes the logical identity of a
/// broadcast (group tag, height, digest, ...) so that the same logical rumor
/// started by different relays dedups to one spread.
[[nodiscard]] constexpr std::uint64_t rumor_id_mix(std::uint64_t a, std::uint64_t b = 0,
                                                   std::uint64_t c = 0,
                                                   std::uint64_t d = 0) {
  std::uint64_t x = a * 0x9E3779B97F4A7C15ULL;
  x ^= (b + 0xC2B2AE3D27D4EB4FULL) + (x << 6) + (x >> 2);
  x *= 0xD1B54A32D192ED03ULL;
  x ^= (c + 0x165667B19E3779F9ULL) + (x << 6) + (x >> 2);
  x *= 0x9E3779B97F4A7C15ULL;
  x ^= (d + 0xD6E8FEB86659FD93ULL) + (x << 6) + (x >> 2);
  x ^= x >> 29;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 32;
  return x;
}

/// Interface the rumor-spreading subsystem (src/gossip/RumorMesh) implements;
/// kept abstract here so simnet does not depend on gossip.  The mesh sends
/// its push/pull messages back through Network::send (so they pay the full
/// timing/fault model) and hands accepted rumor payloads to the registered
/// node handlers via Network::deliver_local.
class RumorTransport {
 public:
  virtual ~RumorTransport() = default;
  /// Starts spreading `msg` (identified by `rumor_id`) from `origin` inside
  /// `group`.  Duplicate ids (e.g. several subgroup relays starting the same
  /// certified batch) merge into one spread.
  virtual void broadcast(NodeId origin, std::span<const NodeId> group,
                         std::uint64_t rumor_id, const Message& msg, TrafficClass cls) = 0;
  /// Consumes a kRumorPush / kRumorPullReq / kRumorPullResp delivery.
  virtual void on_message(NodeId to, const Message& msg) = 0;
};

/// Passive observer of message arrivals, implemented by the phi-accrual
/// failure detector (src/security/detector.*).  Kept abstract here so simnet
/// does not depend on the detector.  Called inside the delivery event, after
/// the down-recheck, for node-to-node traffic only; implementations must be
/// pure bookkeeping (no scheduling, no rng) so an attached observer leaves
/// the event stream bit-identical.
class ArrivalObserver {
 public:
  virtual ~ArrivalObserver() = default;
  virtual void on_arrival(NodeId from, NodeId to, SimTime now) = 0;
};

/// Per-node gray-failure profile (DESIGN.md §14): the node is alive and
/// participating, just degraded.  Unlike LinkFaults these are scoped to one
/// node, so a gray window perturbs only traffic touching that node.
struct NodeGray {
  double ingress_drop_rate = 0.0;  // lossy NIC: inbound deliveries silently lost
  double serialize_factor = 1.0;   // slow node: egress serialization multiplier
  SimTime proc_delay = 0;          // slow node: fixed extra inbound processing delay

  [[nodiscard]] bool any() const {
    return ingress_drop_rate > 0 || serialize_factor != 1.0 || proc_delay > 0;
  }
};

/// Probabilistic link-fault profile.  Each delivery attempt is an independent
/// Bernoulli draw; duplication schedules a second attempt (itself subject to
/// the drop draw) shortly after the first.
struct LinkFaults {
  double drop_rate = 0.0;       // P(a delivery attempt is silently lost)
  double duplicate_rate = 0.0;  // P(an extra copy of the message is delivered)
  SimTime extra_delay_max = 0;  // uniform [0, max) added per delivery

  [[nodiscard]] bool any() const {
    return drop_rate > 0 || duplicate_rate > 0 || extra_delay_max > 0;
  }
};

/// Counters for injected faults (reported next to TrafficStats so chaos runs
/// can assert determinism over the whole fault schedule).
struct FaultStats {
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t partition_blocked = 0;
  std::uint64_t down_blocked = 0;
  std::uint64_t gray_dropped = 0;  // inbound losses charged to a lossy NIC

  /// Per-directed-link drop/duplicate attribution, keyed (from << 32 | to).
  /// Lets a chaos report say *which* links the fault injector actually hit.
  struct LinkFaultCounts {
    std::uint64_t dropped = 0;
    std::uint64_t duplicated = 0;
  };
  std::unordered_map<std::uint64_t, LinkFaultCounts> per_link;

  [[nodiscard]] std::uint64_t total() const {
    return dropped + duplicated + partition_blocked + down_blocked + gray_dropped;
  }
};

struct TrafficStats {
  std::uint64_t messages[3]{};
  std::uint64_t bytes[3]{};

  [[nodiscard]] std::uint64_t total_messages() const {
    return messages[0] + messages[1] + messages[2];
  }
  [[nodiscard]] std::uint64_t total_bytes() const { return bytes[0] + bytes[1] + bytes[2]; }
  [[nodiscard]] double cross_shard_message_ratio() const {
    const auto proto = messages[0] + messages[1];
    return proto == 0 ? 0.0 : static_cast<double>(messages[1]) / static_cast<double>(proto);
  }
};

class Network {
 public:
  using Handler = std::function<void(const Message&)>;

  Network(Simulator& sim, NetConfig config, Rng rng)
      : sim_(sim), config_(config), rng_(std::move(rng)) {}

  /// Registers node `id`'s receive handler.  Ids must be dense from 0.
  void register_node(NodeId id, Handler handler);
  [[nodiscard]] std::size_t node_count() const { return handlers_.size(); }

  /// Unicast with full timing + accounting.
  void send(NodeId from, NodeId to, Message msg, TrafficClass cls);

  /// Unicast each member (skipping `from` itself).  Used for small messages
  /// (votes, certificates to a handful of shards).
  void multicast(NodeId from, std::span<const NodeId> group, const Message& msg,
                 TrafficClass cls);

  /// Gossip-tree dissemination inside a group: `from` sends to `fanout`
  /// relays, each relay forwards to its own children, etc.  Every member
  /// receives exactly one copy; each hop pays that relay's serialization +
  /// latency.  Matches how real sharded chains propagate 2 MB blocks without
  /// the leader serializing 200 copies.
  void gossip(NodeId from, std::span<const NodeId> group, const Message& msg,
              TrafficClass cls);

  /// Group dissemination via the transport configured for `kind`
  /// (naive unicast / fanout tree / rumor mongering).  `rumor_id` is the
  /// content-derived dedup key (rumor mode only; see rumor_id_mix).
  void broadcast(BroadcastKind kind, NodeId from, std::span<const NodeId> group,
                 std::uint64_t rumor_id, const Message& msg, TrafficClass cls);

  /// Attaches the rumor-spreading subsystem (nullptr detaches).  Required
  /// before any BroadcastKind is configured to Transport::kRumor; without a
  /// mesh, rumor-mode broadcasts fall back to the fanout tree.
  void set_rumor_mesh(RumorTransport* mesh) { rumor_ = mesh; }
  [[nodiscard]] RumorTransport* rumor_mesh() const { return rumor_; }

  /// Invokes `to`'s handler synchronously in the current causal context (the
  /// rumor mesh unpacks accepted rumors inside the carrying push's delivery).
  void deliver_local(NodeId to, const Message& msg);

  /// Message from a client (not one of the N nodes) into the system; pays
  /// latency but no node egress serialization.
  void client_send(NodeId to, Message msg);

  /// Cross-shard transmission relayed through a client (the baseline
  /// implementation the paper describes in §VII-E): two legs of latency and
  /// serialization, accounted as two cross-shard messages.
  void send_via_relay(NodeId from, NodeId to, Message msg, TrafficClass cls);

  [[nodiscard]] const TrafficStats& stats() const { return stats_; }
  void reset_stats() { stats_ = TrafficStats{}; }

  /// Per-node egress accounting (messages/bytes each node has sent), the
  /// measurement behind the dissemination bench's flatness criterion and the
  /// net.node_* gauges the harness folds into the registry snapshot.
  [[nodiscard]] std::span<const std::uint64_t> node_sent_msgs() const {
    return node_sent_msgs_;
  }
  [[nodiscard]] std::span<const std::uint64_t> node_sent_bytes() const {
    return node_sent_bytes_;
  }

  [[nodiscard]] const NetConfig& config() const { return config_; }
  [[nodiscard]] Simulator& simulator() { return sim_; }

  /// Drops all traffic from/to a node (crash-fault injection).
  void set_node_down(NodeId id, bool down);
  [[nodiscard]] bool node_down(NodeId id) const;

  // --- Adversarial link model ---------------------------------------------

  /// Installs the global probabilistic fault profile (drop/duplicate/delay).
  void set_fault_profile(const LinkFaults& faults) { faults_ = faults; }
  [[nodiscard]] const LinkFaults& fault_profile() const { return faults_; }

  /// Extra fixed delay on the directed link from -> to (0 clears it).
  void set_link_delay(NodeId from, NodeId to, SimTime extra);

  /// Installs (or clears, when `g.any()` is false) a per-node gray-failure
  /// profile.  A lossy NIC draws its drops from the shared rng stream, but
  /// only while at least one gray profile is installed — clean runs consume
  /// an untouched stream.
  void set_node_gray(NodeId id, const NodeGray& g);
  [[nodiscard]] NodeGray node_gray(NodeId id) const;

  /// Attaches a passive arrival observer (nullptr detaches); see
  /// ArrivalObserver for the determinism contract.
  void set_arrival_observer(ArrivalObserver* obs) { arrival_observer_ = obs; }
  [[nodiscard]] ArrivalObserver* arrival_observer() const { return arrival_observer_; }

  /// Assigns `nodes` to partition `group`; traffic between nodes in
  /// different groups is blocked in both directions (checked when the send
  /// is initiated — messages already in flight still arrive).  Group 0 is
  /// the default connected component.
  void partition(std::span<const NodeId> nodes, std::uint8_t group);
  void set_partition_group(NodeId id, std::uint8_t group);
  /// Reconnects everything (all nodes back to group 0).
  void heal_partitions();
  [[nodiscard]] bool partitioned(NodeId a, NodeId b) const;

  [[nodiscard]] const FaultStats& fault_stats() const { return fault_stats_; }

  /// Attaches a telemetry context (nullptr detaches).  Recording is passive:
  /// an instrumented run consumes the same rng stream and schedules the same
  /// events as a bare one.  Also binds the causal tracer to the simulator's
  /// context cell so span parentage can be read at send time.
  void set_telemetry(telemetry::Telemetry* t);
  [[nodiscard]] telemetry::Telemetry* telemetry() const { return telemetry_; }

  /// The network's deterministic rng (the rumor mesh derives its own stream
  /// from a fixed permutation of a draw so fault schedules stay untouched).
  [[nodiscard]] Rng& rng() { return rng_; }

 private:
  [[nodiscard]] SimTime serialization_delay(std::uint32_t bytes) const;
  /// Scales `ser` by the node's gray serialize_factor (1.0 when clean).
  [[nodiscard]] SimTime egress_ser(NodeId from, SimTime ser) const;
  [[nodiscard]] SimTime jitter();
  /// Assigns `msg` a causal span (when tracing is enabled) whose parent is
  /// the message being handled right now, and mirrors the send into the
  /// flight recorder.  Pure observation — no-ops into msg.span = 0 otherwise.
  void stamp_span(Message& msg, std::uint32_t from, std::uint32_t to, SimTime send,
                  SimTime depart);
  /// Same with an explicit parent span (gossip relay hops are caused by the
  /// relay's inbound copy, not by the context that started the gossip).
  void stamp_span_with_parent(Message& msg, std::uint32_t from, std::uint32_t to, SimTime send,
                              SimTime depart, std::uint64_t parent);
  /// Reserves the sender's egress link and returns the departure time.
  SimTime reserve_egress(NodeId from, std::uint32_t bytes);
  void account_sender(NodeId from, std::uint32_t bytes);
  void deliver_at(SimTime when, NodeId to, Message msg);
  /// Applies partition / drop / duplicate / extra-delay faults, then
  /// delivers.  Returns true if at least one copy was scheduled (gossip uses
  /// this to cut off the subtree of a relay that never received the message).
  bool deliver_faulty(NodeId from, SimTime when, NodeId to, Message msg);
  void account(TrafficClass cls, MsgType type, std::uint32_t bytes);

  Simulator& sim_;
  NetConfig config_;
  Rng rng_;
  std::vector<Handler> handlers_;
  std::vector<SimTime> egress_busy_until_;
  std::vector<bool> down_;
  std::vector<std::uint8_t> partition_group_;
  std::unordered_map<std::uint64_t, SimTime> link_delay_;  // (from<<32|to)
  std::unordered_map<std::uint32_t, NodeGray> gray_;       // empty when no gray fault armed
  LinkFaults faults_;
  TrafficStats stats_;
  FaultStats fault_stats_;
  std::vector<std::uint64_t> node_sent_msgs_;
  std::vector<std::uint64_t> node_sent_bytes_;
  telemetry::Telemetry* telemetry_ = nullptr;
  RumorTransport* rumor_ = nullptr;
  ArrivalObserver* arrival_observer_ = nullptr;
};

}  // namespace jenga::sim
