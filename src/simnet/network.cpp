#include "simnet/network.hpp"

#include <algorithm>
#include <cassert>

namespace jenga::sim {

void Network::register_node(NodeId id, Handler handler) {
  if (handlers_.size() <= id.value) {
    handlers_.resize(id.value + 1);
    egress_busy_until_.resize(id.value + 1, 0);
    down_.resize(id.value + 1, false);
    partition_group_.resize(id.value + 1, 0);
    node_sent_msgs_.resize(id.value + 1, 0);
    node_sent_bytes_.resize(id.value + 1, 0);
  }
  handlers_[id.value] = std::move(handler);
}

void Network::set_link_delay(NodeId from, NodeId to, SimTime extra) {
  const std::uint64_t key = (static_cast<std::uint64_t>(from.value) << 32) | to.value;
  if (extra <= 0) {
    link_delay_.erase(key);
  } else {
    link_delay_[key] = extra;
  }
}

void Network::set_node_gray(NodeId id, const NodeGray& g) {
  if (g.any()) {
    gray_[id.value] = g;
  } else {
    gray_.erase(id.value);  // keep gray_ empty so clean paths stay untouched
  }
}

NodeGray Network::node_gray(NodeId id) const {
  const auto it = gray_.find(id.value);
  return it == gray_.end() ? NodeGray{} : it->second;
}

void Network::set_partition_group(NodeId id, std::uint8_t group) {
  if (partition_group_.size() <= id.value) partition_group_.resize(id.value + 1, 0);
  partition_group_[id.value] = group;
}

void Network::partition(std::span<const NodeId> nodes, std::uint8_t group) {
  for (NodeId n : nodes) set_partition_group(n, group);
}

void Network::heal_partitions() {
  std::fill(partition_group_.begin(), partition_group_.end(), 0);
}

bool Network::partitioned(NodeId a, NodeId b) const {
  const std::uint8_t ga = a.value < partition_group_.size() ? partition_group_[a.value] : 0;
  const std::uint8_t gb = b.value < partition_group_.size() ? partition_group_[b.value] : 0;
  return ga != gb;
}

bool Network::deliver_faulty(NodeId from, SimTime when, NodeId to, Message msg) {
  const std::uint64_t link_key =
      (static_cast<std::uint64_t>(from.value) << 32) | to.value;
  if (partitioned(from, to)) {
    ++fault_stats_.partition_blocked;
    return false;
  }
  if (to.value < down_.size() && down_[to.value]) {
    ++fault_stats_.down_blocked;
    return false;
  }
  if (!link_delay_.empty()) {
    const auto it = link_delay_.find(link_key);
    if (it != link_delay_.end()) when += it->second;
  }
  if (!gray_.empty()) {
    if (const auto it = gray_.find(to.value); it != gray_.end()) {
      const NodeGray& g = it->second;
      when += g.proc_delay;  // degraded receive path: deterministic stall
      // Lossy NIC: inbound loss at the receiver, charged separately from the
      // link-level drop profile so chaos reports can attribute it.
      if (g.ingress_drop_rate > 0 && rng_.chance(g.ingress_drop_rate)) {
        ++fault_stats_.gray_dropped;
        ++fault_stats_.per_link[link_key].dropped;
        return false;
      }
    }
  }
  // Guard every rng draw behind its knob so fault-free runs consume the
  // exact same random stream as before the fault layer existed.
  if (faults_.extra_delay_max > 0)
    when += static_cast<SimTime>(rng_.uniform(static_cast<std::uint64_t>(faults_.extra_delay_max)));
  bool scheduled = false;
  if (faults_.duplicate_rate > 0 && rng_.chance(faults_.duplicate_rate)) {
    ++fault_stats_.duplicated;
    ++fault_stats_.per_link[link_key].duplicated;
    // The extra copy trails the original by one latency quantum and is
    // itself subject to the drop draw below.
    if (!(faults_.drop_rate > 0 && rng_.chance(faults_.drop_rate))) {
      deliver_at(when + config_.base_latency / 4, to, msg);
      scheduled = true;
    } else {
      ++fault_stats_.dropped;
      ++fault_stats_.per_link[link_key].dropped;
    }
  }
  if (faults_.drop_rate > 0 && rng_.chance(faults_.drop_rate)) {
    ++fault_stats_.dropped;
    ++fault_stats_.per_link[link_key].dropped;
    return scheduled;
  }
  deliver_at(when, to, std::move(msg));
  return true;
}

SimTime Network::serialization_delay(std::uint32_t bytes) const {
  if (!config_.model_bandwidth || config_.bandwidth_bps <= 0) return 0;
  const double seconds = static_cast<double>(bytes) * 8.0 / config_.bandwidth_bps;
  return static_cast<SimTime>(seconds * static_cast<double>(kSecond));
}

SimTime Network::jitter() {
  if (config_.jitter_max <= 0) return 0;
  return static_cast<SimTime>(rng_.uniform(static_cast<std::uint64_t>(config_.jitter_max)));
}

SimTime Network::egress_ser(NodeId from, SimTime ser) const {
  if (gray_.empty()) return ser;
  const auto it = gray_.find(from.value);
  if (it == gray_.end() || it->second.serialize_factor == 1.0) return ser;
  return static_cast<SimTime>(static_cast<double>(ser) * it->second.serialize_factor);
}

SimTime Network::reserve_egress(NodeId from, std::uint32_t bytes) {
  assert(from.value < egress_busy_until_.size());
  const SimTime start = std::max(sim_.now(), egress_busy_until_[from.value]);
  const SimTime departure = start + egress_ser(from, serialization_delay(bytes));
  egress_busy_until_[from.value] = departure;
  return departure;
}

void Network::deliver_at(SimTime when, NodeId to, Message msg) {
  if (to.value >= handlers_.size() || !handlers_[to.value]) return;
  if (down_[to.value]) {
    ++fault_stats_.down_blocked;
    return;
  }
  if (telemetry_ != nullptr) {
    telemetry_->net.hop_delay_us.record(when - sim_.now());
    telemetry_->causal.note_arrival(msg.span, when);
  }
  sim_.schedule_at(when, [this, to, msg = std::move(msg)] {
    // Re-checked at delivery time: a message in flight to a node that
    // crashes before it lands is lost with the crash.
    if (down_[to.value]) return;
    // The handler (and everything it schedules or sends) runs in the causal
    // context of this delivery; step() resets the context afterwards.
    sim_.set_context(msg.span);
    // Inter-arrival sampling for the failure detector: node-to-node traffic
    // only (clients are reliable out-of-band), pure bookkeeping.
    if (arrival_observer_ != nullptr && msg.from.value < handlers_.size() &&
        msg.from.value != to.value)
      arrival_observer_->on_arrival(msg.from, to, sim_.now());
    if (telemetry_ != nullptr && telemetry_->flight.enabled()) {
      telemetry::FlightEvent e;
      e.at = sim_.now();
      e.node = to.value;
      e.kind = telemetry::FlightEvent::Kind::kDeliver;
      e.msg_type = static_cast<std::uint16_t>(msg.type);
      e.span = msg.span;
      const telemetry::CausalSpan* s = telemetry_->causal.span(msg.span);
      e.parent = s != nullptr ? s->parent : 0;
      e.a = msg.from.value;
      e.b = msg.size_bytes;
      telemetry_->flight.record(to.value, e);
    }
    // Rumor transport traffic is consumed by the mesh, which unpacks and
    // hands accepted rumors to the node handler via deliver_local (keeping
    // the carrying hop's causal context).
    if (rumor_ != nullptr && is_rumor_transport_type(msg.type)) {
      rumor_->on_message(to, msg);
      return;
    }
    handlers_[to.value](msg);
  });
}

void Network::stamp_span(Message& msg, std::uint32_t from, std::uint32_t to, SimTime send,
                         SimTime depart) {
  const std::uint64_t parent =
      telemetry_ != nullptr ? telemetry_->causal.current_context() : 0;
  stamp_span_with_parent(msg, from, to, send, depart, parent);
}

void Network::stamp_span_with_parent(Message& msg, std::uint32_t from, std::uint32_t to,
                                     SimTime send, SimTime depart, std::uint64_t parent) {
  msg.span = 0;
  if (telemetry_ == nullptr) return;
  if (telemetry_->causal.enabled())
    msg.span = telemetry_->causal.begin_span_with_parent(
        static_cast<std::uint16_t>(msg.type), from, to, send, depart, parent);
  if (telemetry_->flight.enabled()) {
    telemetry::FlightEvent e;
    e.at = send;
    e.node = from;
    e.kind = telemetry::FlightEvent::Kind::kSend;
    e.msg_type = static_cast<std::uint16_t>(msg.type);
    e.span = msg.span;
    e.parent = parent;
    e.a = to;
    e.b = msg.size_bytes;
    telemetry_->flight.record(from, e);
  }
}

void Network::account(TrafficClass cls, MsgType type, std::uint32_t bytes) {
  stats_.messages[static_cast<std::size_t>(cls)] += 1;
  stats_.bytes[static_cast<std::size_t>(cls)] += bytes;
  if (telemetry_ != nullptr)
    telemetry_->net.record(static_cast<std::uint16_t>(type), bytes);
}

void Network::account_sender(NodeId from, std::uint32_t bytes) {
  if (from.value >= node_sent_msgs_.size()) return;  // clients are not nodes
  node_sent_msgs_[from.value] += 1;
  node_sent_bytes_[from.value] += bytes;
}

void Network::set_telemetry(telemetry::Telemetry* t) {
  telemetry_ = t;
  if (t == nullptr) return;
  for (std::size_t i = 0; i < telemetry::MessageTelemetry::kMaxTypes; ++i)
    t->net.type_name[i] = msg_type_name(static_cast<MsgType>(i));
  t->causal.bind_context(sim_.context_handle());
}

void Network::send(NodeId from, NodeId to, Message msg, TrafficClass cls) {
  if (from.value < down_.size() && down_[from.value]) return;
  account(cls, msg.type, msg.size_bytes);
  account_sender(from, msg.size_bytes);
  const SimTime departure = reserve_egress(from, msg.size_bytes);
  stamp_span(msg, from.value, to.value, sim_.now(), departure);
  deliver_faulty(from, departure + config_.base_latency + jitter(), to, std::move(msg));
}

void Network::multicast(NodeId from, std::span<const NodeId> group, const Message& msg,
                        TrafficClass cls) {
  for (NodeId to : group) {
    if (to == from) continue;
    send(from, to, msg, cls);
  }
}

void Network::gossip(NodeId from, std::span<const NodeId> group, const Message& msg,
                     TrafficClass cls) {
  if (from.value < down_.size() && down_[from.value]) return;
  // Build a deterministic random relay order, then connect members as a
  // `fanout`-ary tree rooted at `from`.  Hop h's delivery time is the
  // parent's departure + latency; each parent pays serialization once per
  // child, modelling pipelined block dissemination.
  std::vector<NodeId> order;
  order.reserve(group.size());
  for (NodeId n : group)
    if (n != from) order.push_back(n);
  // Fisher–Yates with the network's own rng: deterministic per run.
  for (std::size_t i = order.size(); i > 1; --i)
    std::swap(order[i - 1], order[static_cast<std::size_t>(rng_.uniform(i))]);

  const std::size_t fanout = std::max<std::size_t>(1, config_.gossip_fanout);

  // arrival[i]: when order[i] has fully received the message.
  std::vector<SimTime> arrival(order.size(), 0);
  // received[i]: whether order[i] actually got a copy.  A relay whose own
  // delivery was dropped (or partitioned away) cannot forward, so its whole
  // subtree goes dark — that is what makes gossip genuinely fragile under
  // message loss, and what the subgroup-redundancy property defends against.
  std::vector<bool> received(order.size(), false);
  // Track per-relay egress reservations locally: relays forward *after* they
  // receive, so the global egress ledger (keyed at current sim time) cannot
  // be used directly for future sends.
  std::vector<SimTime> relay_busy(order.size(), 0);

  const SimTime ser = serialization_delay(msg.size_bytes);
  const SimTime root_ser = egress_ser(from, ser);

  // Spans per hop: the root's children are caused by the current handler
  // context; a relay hop is caused by the relay's own inbound copy.
  std::vector<std::uint64_t> hop_span(order.size(), 0);

  // Root sends to the first `fanout` members, using the real egress ledger.
  const SimTime root_send = sim_.now();
  SimTime root_departure = std::max(sim_.now(), egress_busy_until_[from.value]);
  for (std::size_t i = 0; i < order.size() && i < fanout; ++i) {
    root_departure += root_ser;
    arrival[i] = root_departure + config_.base_latency + jitter();
    account(cls, msg.type, msg.size_bytes);
    account_sender(from, msg.size_bytes);
    Message copy = msg;
    stamp_span(copy, from.value, order[i].value, root_send, root_departure);
    hop_span[i] = copy.span;
    received[i] = deliver_faulty(from, arrival[i], order[i], std::move(copy));
  }
  if (!order.empty()) egress_busy_until_[from.value] = root_departure;

  // Interior relays: entries past the root's direct children form a k-ary
  // forest — order[child]'s parent is order[(child - fanout) / fanout].
  for (std::size_t child = fanout; child < order.size(); ++child) {
    const std::size_t parent = (child - fanout) / fanout;
    if (!received[parent]) continue;  // relay never got the message
    const SimTime departure =
        std::max(arrival[parent], relay_busy[parent]) + egress_ser(order[parent], ser);
    relay_busy[parent] = departure;
    arrival[child] = departure + config_.base_latency + jitter();
    account(cls, msg.type, msg.size_bytes);
    account_sender(order[parent], msg.size_bytes);
    Message copy = msg;
    stamp_span_with_parent(copy, order[parent].value, order[child].value, arrival[parent],
                           departure, hop_span[parent]);
    hop_span[child] = copy.span;
    received[child] = deliver_faulty(order[parent], arrival[child], order[child],
                                     std::move(copy));
  }
}

void Network::send_via_relay(NodeId from, NodeId to, Message msg, TrafficClass cls) {
  if (from.value < down_.size() && down_[from.value]) return;
  account(cls, msg.type, msg.size_bytes);
  account(cls, msg.type, msg.size_bytes);  // second leg: relay -> destination
  account_sender(from, msg.size_bytes);
  const SimTime departure = reserve_egress(from, msg.size_bytes);
  stamp_span(msg, from.value, to.value, sim_.now(), departure);
  // The relay's own serialization is charged as one extra payload time.
  const SimTime arrival = departure + serialization_delay(msg.size_bytes) +
                          2 * config_.base_latency + jitter() + jitter();
  // Two physical legs -> two independent drop opportunities; modelled as one
  // faulty delivery per leg by drawing the drop twice.
  if (faults_.drop_rate > 0 && rng_.chance(faults_.drop_rate)) {
    ++fault_stats_.dropped;
    ++fault_stats_.per_link[(static_cast<std::uint64_t>(from.value) << 32) | to.value]
          .dropped;
    return;
  }
  deliver_faulty(from, arrival, to, std::move(msg));
}

void Network::broadcast(BroadcastKind kind, NodeId from, std::span<const NodeId> group,
                        std::uint64_t rumor_id, const Message& msg, TrafficClass cls) {
  switch (config_.transport_for(kind)) {
    case Transport::kNaive:
      multicast(from, group, msg, cls);
      return;
    case Transport::kTree:
      gossip(from, group, msg, cls);
      return;
    case Transport::kRumor:
      if (rumor_ != nullptr) {
        if (from.value < down_.size() && down_[from.value]) return;
        rumor_->broadcast(from, group, rumor_id, msg, cls);
      } else {
        gossip(from, group, msg, cls);  // no mesh attached: degrade to tree
      }
      return;
  }
}

void Network::deliver_local(NodeId to, const Message& msg) {
  if (to.value >= handlers_.size() || !handlers_[to.value]) return;
  if (down_[to.value]) return;
  handlers_[to.value](msg);
}

void Network::client_send(NodeId to, Message msg) {
  account(TrafficClass::kClient, msg.type, msg.size_bytes);
  // Clients pay no egress serialization, so the span departs when it is sent.
  stamp_span(msg, telemetry::kClientNode, to.value, sim_.now(), sim_.now());
  deliver_at(sim_.now() + config_.base_latency + jitter(), to, std::move(msg));
}

void Network::set_node_down(NodeId id, bool down) {
  if (id.value < down_.size()) down_[id.value] = down;
}

bool Network::node_down(NodeId id) const {
  return id.value < down_.size() && down_[id.value];
}

}  // namespace jenga::sim
