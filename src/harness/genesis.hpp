// Builds a core::Genesis from a workload trace generator.
#pragma once

#include "core/jenga_system.hpp"
#include "workload/trace.hpp"

namespace jenga::harness {

[[nodiscard]] inline core::Genesis make_genesis(const workload::TraceGenerator& gen) {
  core::Genesis g;
  g.num_accounts = gen.config().num_accounts;
  g.initial_balance = gen.config().account_initial_balance;
  g.contracts = gen.contracts();
  g.initial_states.reserve(g.contracts.size());
  for (std::size_t i = 0; i < g.contracts.size(); ++i)
    g.initial_states.push_back(gen.initial_state(i));
  return g;
}

}  // namespace jenga::harness
