#include "harness/runner.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <memory>

#include "baselines/cxfunc.hpp"
#include "baselines/pyramid.hpp"
#include "baselines/single_shard.hpp"
#include "harness/genesis.hpp"

namespace jenga::harness {

const char* system_name(SystemKind kind) {
  switch (kind) {
    case SystemKind::kJenga: return "Jenga";
    case SystemKind::kJengaNoLattice: return "Jenga w/o OLS";
    case SystemKind::kJengaNoGlobalLogic: return "Jenga w/o NWLS";
    case SystemKind::kCxFunc: return "CX Func";
    case SystemKind::kSingleShard: return "Single Shard";
    case SystemKind::kPyramid: return "Pyramid";
  }
  return "?";
}

std::uint32_t paper_nodes_per_shard(std::uint32_t num_shards) {
  // Paper Table I.
  switch (num_shards) {
    case 4: return 180;
    case 6: return 200;
    case 8: return 210;
    case 10: return 230;
    case 12: return 240;
    default: break;
  }
  if (num_shards < 4) return 180;
  if (num_shards > 12) return 240;
  return 180 + (num_shards - 4) * 8;  // smooth in-between
}

double bench_scale_from_env(double fallback) {
  if (const char* s = std::getenv("JENGA_BENCH_SCALE")) {
    const double v = std::atof(s);
    if (v > 0) return v;
  }
  return fallback;
}

std::size_t bench_txs_from_env(std::size_t fallback) {
  if (const char* s = std::getenv("JENGA_BENCH_TXS")) {
    const long v = std::atol(s);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return fallback;
}

namespace {

std::uint32_t resolve_nodes_per_shard(const RunConfig& cfg) {
  if (cfg.nodes_per_shard != 0) return cfg.nodes_per_shard;
  auto k = static_cast<std::uint32_t>(paper_nodes_per_shard(cfg.num_shards) * cfg.scale);
  k = std::max(cfg.num_shards, k - k % cfg.num_shards);  // integral subgroups
  // BFT needs at least 4 members.
  return std::max<std::uint32_t>(k, 4 + (4 % cfg.num_shards == 0 ? 0 : 0));
}

}  // namespace

RunResult run_experiment(const RunConfig& config) {
  const std::uint32_t k = resolve_nodes_per_shard(config);

  workload::TraceGenerator gen(config.trace, Rng(config.seed ^ 0x7ACE));
  sim::Simulator sim;
  sim::Network net(sim, config.net, Rng(config.seed ^ 0x9E7));
  const core::Genesis genesis = make_genesis(gen);

  // Always-on telemetry: passive recording, bit-identical runs.
  auto telemetry = std::make_shared<telemetry::Telemetry>();
  if (config.causal_trace) {
    telemetry->causal.set_capacity(config.causal_span_capacity);
    telemetry->causal.enable(true);
  }
  if (config.flight_events_per_node > 0) {
    telemetry->flight.configure(k * config.num_shards, config.flight_events_per_node);
    if (!config.flight_dump_path.empty())
      telemetry->flight.set_dump_path(config.flight_dump_path);
  }
  net.set_telemetry(telemetry.get());

  // The system under test, behind a uniform submit/metric facade.
  std::unique_ptr<core::JengaSystem> jenga;
  std::unique_ptr<baselines::BaselineSystem> baseline;
  switch (config.kind) {
    case SystemKind::kJenga:
    case SystemKind::kJengaNoLattice:
    case SystemKind::kJengaNoGlobalLogic: {
      core::JengaConfig jc;
      jc.num_shards = config.num_shards;
      jc.nodes_per_shard = k;
      jc.seed = config.seed;
      jc.max_block_items = config.max_block_items;
      jc.exec_workers = config.exec_workers;
      jc.epoch_interval = config.epoch_interval;
      jc.epoch_drain_window = config.epoch_drain_window;
      jc.epoch_beacon_lead = config.epoch_beacon_lead;
      jc.epoch_min_contributions = config.epoch_min_contributions;
      jc.epoch_vdf_iterations = config.epoch_vdf_iterations;
      jc.epoch_vdf_checkpoints = config.epoch_vdf_checkpoints;
      jc.storage_backend = config.storage_backend;
      jc.storage_snapshot_interval = config.storage_snapshot_interval;
      jc.model_state_sync = config.model_state_sync;
      jc.recovery = config.recovery;
      jc.pipeline = config.kind == SystemKind::kJenga ? core::Pipeline::kFull
                    : config.kind == SystemKind::kJengaNoLattice
                        ? core::Pipeline::kNoLattice
                        : core::Pipeline::kNoGlobalLogic;
      jenga = std::make_unique<core::JengaSystem>(sim, net, jc, genesis);
      break;
    }
    default: {
      baselines::BaselineConfig bc;
      bc.num_shards = config.num_shards;
      bc.nodes_per_shard = k;
      bc.seed = config.seed;
      bc.max_block_items = config.max_block_items;
      bc.cross_mode = config.cross_mode;
      bc.exec_workers = config.exec_workers;
      bc.merge_span =
          config.merge_span != 0 ? config.merge_span : std::max(2u, config.num_shards / 4);
      if (config.kind == SystemKind::kCxFunc) {
        baseline = std::make_unique<baselines::CxFuncSystem>(sim, net, bc, genesis);
      } else if (config.kind == SystemKind::kSingleShard) {
        baseline = std::make_unique<baselines::SingleShardSystem>(sim, net, bc, genesis);
      } else {
        baseline = std::make_unique<baselines::PyramidSystem>(sim, net, bc, genesis);
      }
      break;
    }
  }
  auto submit = [&](core::TxPtr tx) {
    if (jenga) {
      jenga->submit(std::move(tx));
    } else {
      baseline->submit(std::move(tx));
    }
  };
  auto stats = [&]() -> const TxStats& { return jenga ? jenga->stats() : baseline->stats(); };
  const std::uint64_t initial_balance =
      jenga ? jenga->total_account_balance() : baseline->total_account_balance();

  // Failure detection (DESIGN.md §14): sampling on every kind is pure
  // bookkeeping; actuation arms only when a fault plan runs (clean runs are
  // bit-identical with self_healing on or off).
  std::unique_ptr<security::FailureDetector> detector;
  if (config.self_healing) {
    detector = std::make_unique<security::FailureDetector>(sim, config.detector);
    net.set_arrival_observer(detector.get());
  }

  if (jenga) {
    jenga->set_telemetry(telemetry.get());
    if (detector) {
      jenga->set_failure_detector(detector.get());
      if (config.faults_plan.event_count() > 0) detector->arm(true);
    }
    jenga->start();
  } else {
    baseline->set_telemetry(telemetry.get());
    baseline->start();
  }

  const std::size_t total = config.contract_txs + config.transfer_txs;
  auto mix = std::make_shared<Rng>(config.seed ^ 0x317);
  auto contracts_left = std::make_shared<std::size_t>(config.contract_txs);
  auto transfers_left = std::make_shared<std::size_t>(config.transfer_txs);
  auto make_one = [&, mix, contracts_left, transfers_left]() -> ledger::Transaction {
    const bool pick_transfer =
        *transfers_left > 0 && (*contracts_left == 0 ||
                                mix->uniform(*contracts_left + *transfers_left) <
                                    *transfers_left);
    if (pick_transfer) {
      --*transfers_left;
    } else {
      --*contracts_left;
    }
    return pick_transfer ? gen.transfer_tx(sim.now())
                         : gen.contract_tx(config.trace_height, sim.now());
  };
  auto submit_one = [&, make_one] {
    submit(std::make_shared<ledger::Transaction>(make_one()));
  };

  // Open-loop ingestion (admission control, backpressure, retry) when an
  // arrival mode is selected; otherwise the legacy injection paths below run
  // bit-identically to earlier revisions.
  const bool open_loop = config.arrival.mode != workload::ArrivalMode::kNone;
  std::unique_ptr<mempool::IngressSet> ingress;
  std::unique_ptr<workload::OpenLoopClient> client;
  std::unique_ptr<security::FaultInjector> injector;
  if (open_loop) {
    mempool::IngressConfig ic;
    ic.num_shards = config.num_shards;
    ic.pool = config.mempool;
    ic.soft_watermark = config.mempool_soft_watermark;
    ic.hard_watermark = config.mempool_hard_watermark;
    ingress = std::make_unique<mempool::IngressSet>(ic);
    ingress->set_telemetry(&telemetry->registry);
    ingress->set_causal(&telemetry->causal);

    workload::ClientConfig cc;
    cc.arrival = config.arrival;
    cc.retry = config.retry;
    cc.fee_tiers = config.fee_tiers;
    cc.total_txs = total;
    cc.max_inflight = config.max_inflight;
    cc.pump_interval = config.pump_interval;
    client = std::make_unique<workload::OpenLoopClient>(
        sim, *ingress, cc, Rng(config.seed ^ 0xC11E47), make_one, submit,
        [&]() -> std::size_t { return jenga ? jenga->in_flight() : baseline->in_flight(); });
    client->set_telemetry(&telemetry->registry);
    client->start();
  }
  if (config.faults_plan.event_count() > 0 && jenga) {
    // Scripted faults ride along (Jenga kinds; the injector drives the
    // system's fault hooks).  Overload bursts reach the open-loop client's
    // rate multiplier; without a client they have nothing to throttle.
    injector = std::make_unique<security::FaultInjector>(sim, net, *jenga);
    if (client) {
      injector->set_overload_hook(
          [c = client.get()](double m) { c->set_rate_multiplier(m); });
    }
    injector->arm(config.faults_plan);
  }

  if (open_loop) {
    // Arrivals already scheduled by the client.
  } else if (config.closed_loop_window > 0) {
    // Closed loop: a pacer keeps `window` transactions outstanding.
    auto pacer = std::make_shared<std::function<void()>>();
    *pacer = [&, pacer, submit_one, total] {
      const auto& s = stats();
      const std::size_t completed = s.committed + s.aborted;
      const std::size_t outstanding = s.submitted - completed;
      std::size_t can = config.closed_loop_window > outstanding
                            ? config.closed_loop_window - outstanding
                            : 0;
      while (can-- > 0 && s.submitted < total) submit_one();
      if (stats().submitted < total ||
          stats().committed + stats().aborted < total)
        sim.schedule_after(200 * kMillisecond, [pacer] { (*pacer)(); });
    };
    sim.schedule_at(0, [pacer] { (*pacer)(); });
  } else {
    // Open-loop injection, uniform over the window.
    for (std::size_t i = 0; i < total; ++i) {
      const SimTime at =
          total <= 1 ? 0
                     : static_cast<SimTime>(static_cast<double>(config.inject_window) *
                                            static_cast<double>(i) / static_cast<double>(total));
      sim.schedule_at(at, submit_one);
    }
  }

  // Run in slices; stop as soon as every submission completed.
  const SimTime slice = 10 * kSecond;
  SimTime now = 0;
  while (now < config.max_sim_time) {
    now += slice;
    sim.run_until(now);
    const auto& s = stats();
    if (open_loop) {
      // Open loop: every generated tx must reach a terminal state — committed
      // or aborted inside the system, or terminally rejected/expired at the
      // admission layer (the client tracks those).
      if (client->drained() && s.committed + s.aborted == s.submitted) break;
    } else if (s.submitted == total && s.committed + s.aborted == total) {
      break;
    }
  }

  RunResult result;
  result.stats = stats();
  if (open_loop) {
    const workload::ClientStats& cs = client->stats();
    result.stats.rejected = cs.rejected_terminal;
    result.stats.expired = cs.expired_doa + cs.expired_pool;
    result.ingress.enabled = true;
    result.ingress.pools = ingress->stats();
    result.ingress.client = cs;
    result.ingress.admission_digest = ingress->admission_digest();
    if (jenga) {
      result.ingress.invariants_audited = true;
      result.ingress.invariants =
          security::check_invariants(*jenga, initial_balance, ingress.get());
      // A failed audit fires the flight recorder: the last-N-events window
      // plus lineage becomes the post-mortem artifact for this run.
      if (!result.ingress.invariants.ok()) telemetry->flight.trigger("invariant.violation");
    }
  }
  result.traffic = net.stats();
  result.faults = net.fault_stats();
  result.storage = jenga ? jenga->storage_report() : baseline->storage_report();
  result.tps = result.stats.tps();
  result.latency_s = result.stats.avg_latency_seconds();
  result.cross_ratio = result.traffic.cross_shard_message_ratio();
  result.sim_events = sim.events_processed();
  result.sim_end = sim.now();
  result.nodes_per_shard = k;
  result.total_nodes = k * config.num_shards;
  result.ledger_digest = jenga ? jenga->ledger_digest() : baseline->ledger_digest();
  if (jenga) {
    result.state_digest = jenga->state_digest();
    result.cert_checks = jenga->cert_stats();
    if (jenga->rumor_mesh() != nullptr) result.rumor = jenga->rumor_mesh()->stats();
    if (jenga->batcher() != nullptr) result.relay_batches = jenga->batcher()->stats();
    result.epoch_transitions = jenga->epoch_stats().transitions;
    result.epoch_txs_requeued = jenga->epoch_stats().txs_requeued;
    result.state_sync = jenga->state_sync_stats();
    result.recovery = jenga->recovery_stats();
    // Fold durability traffic into the registry (per-shard backend counters).
    if (config.storage_backend != core::StorageBackendKind::kNone) {
      auto& sreg = telemetry->registry;
      for (std::uint32_t s = 0; s < config.num_shards; ++s) {
        const ledger::StorageBackend* backend = jenga->shard_store(ShardId{s}).backend();
        if (backend == nullptr) continue;
        const ledger::BackendStats& bs = backend->stats();
        sreg.counter("storage.commits").inc(bs.commits);
        sreg.counter("storage.wal_records").inc(bs.wal_records);
        sreg.counter("storage.wal_bytes").inc(bs.wal_bytes);
        sreg.counter("storage.snapshots_written").inc(bs.snapshots_written);
        sreg.counter("storage.snapshot_bytes").inc(bs.snapshot_bytes);
      }
    }
  }

  // Fold the run-level counters into the registry so one metrics snapshot
  // carries the whole picture (traffic, faults, outcome counts).
  auto& reg = telemetry->registry;
  reg.counter("net.messages.intra_shard").set(result.traffic.messages[0]);
  reg.counter("net.messages.cross_shard").set(result.traffic.messages[1]);
  reg.counter("net.messages.client").set(result.traffic.messages[2]);
  reg.counter("net.bytes.intra_shard").set(result.traffic.bytes[0]);
  reg.counter("net.bytes.cross_shard").set(result.traffic.bytes[1]);
  reg.counter("net.bytes.client").set(result.traffic.bytes[2]);
  reg.counter("net.faults.dropped").set(result.faults.dropped);
  reg.counter("net.faults.duplicated").set(result.faults.duplicated);
  reg.counter("net.faults.partition_blocked").set(result.faults.partition_blocked);
  reg.counter("net.faults.down_blocked").set(result.faults.down_blocked);
  reg.counter("tx.submitted").set(result.stats.submitted);
  reg.counter("sim.events").set(result.sim_events);
  if (result.epoch_transitions > 0) {
    reg.counter("epoch.transitions").set(result.epoch_transitions);
    reg.counter("epoch.txs_requeued").set(result.epoch_txs_requeued);
  }
  if (result.rumor.rumors_started > 0) {
    reg.counter("net.rumor.started").set(result.rumor.rumors_started);
    reg.counter("net.rumor.pushes").set(result.rumor.pushes_sent);
    reg.counter("net.rumor.pulls").set(result.rumor.pull_requests);
    reg.counter("net.rumor.pull_responses").set(result.rumor.pull_responses);
    reg.counter("net.rumor.dups_dropped").set(result.rumor.dups_dropped);
    reg.counter("net.rumor.delivered").set(result.rumor.delivered);
    reg.counter("net.rumor.covered").set(result.rumor.covered_rumors);
    if (result.rumor.pulls_throttled > 0)
      reg.counter("net.rumor.pull_throttled").set(result.rumor.pulls_throttled);
    if (result.rumor.resp_rejected > 0)
      reg.counter("net.rumor.resp_rejected").set(result.rumor.resp_rejected);
    auto& cov = reg.histogram("net.rumor.rounds_to_coverage");
    for (const std::uint32_t rounds : result.rumor.coverage_rounds) {
      cov.record(static_cast<std::int64_t>(rounds));
    }
  }
  if (result.relay_batches.items_enqueued > 0) {
    reg.counter("net.batch.items").set(result.relay_batches.items_enqueued);
    reg.counter("net.batch.frames").set(result.relay_batches.frames_sent);
    reg.gauge("net.batch.max_frame_items")
        .set(static_cast<std::int64_t>(result.relay_batches.max_frame_items));
  }
  if (result.relay_batches.frames_rejected > 0)
    reg.counter("net.batch.frame_rejected").set(result.relay_batches.frames_rejected);
  if (result.faults.gray_dropped > 0)
    reg.counter("net.faults.gray_dropped").set(result.faults.gray_dropped);
  if (detector) {
    result.detector = detector->stats();
    // Folded only when actuation armed: a clean detector-on snapshot must be
    // byte-identical to a detector-off one.
    if (detector->armed()) {
      reg.counter("detector.samples").set(result.detector.samples);
      reg.counter("detector.suspicions").set(result.detector.suspicions);
      reg.counter("detector.recoveries").set(result.detector.recoveries);
    }
  }
  {
    const core::CertVerifyStats& cc = result.cert_checks;
    if (cc.individual_checks + cc.batch_passes + cc.unsigned_batches > 0) {
      reg.counter("relay.cert_checks").set(cc.individual_checks);
      reg.counter("relay.batch_passes").set(cc.batch_passes);
      reg.counter("relay.batch_certs").set(cc.batch_certs);
      reg.counter("relay.batch_fallbacks").set(cc.batch_fallbacks);
      reg.counter("relay.unsigned_batches").set(cc.unsigned_batches);
    }
  }
  // Per-node fan-out footprint: what the dissemination ablation plots.  Mean
  // and max over every node's sent message/byte counters.
  {
    const auto& msgs = net.node_sent_msgs();
    const auto& bytes = net.node_sent_bytes();
    if (!msgs.empty()) {
      std::uint64_t msum = 0, mmax = 0, bsum = 0, bmax = 0;
      for (std::size_t i = 0; i < msgs.size(); ++i) {
        msum += msgs[i];
        mmax = std::max(mmax, msgs[i]);
        bsum += bytes[i];
        bmax = std::max(bmax, bytes[i]);
      }
      const auto n = static_cast<std::int64_t>(msgs.size());
      reg.gauge("net.node_msgs_mean").set(static_cast<std::int64_t>(msum) / n);
      reg.gauge("net.node_msgs_max").set(static_cast<std::int64_t>(mmax));
      reg.gauge("net.node_bytes_mean").set(static_cast<std::int64_t>(bsum) / n);
      reg.gauge("net.node_bytes_max").set(static_cast<std::int64_t>(bmax));
    }
  }

  result.breakdown = telemetry->tracer.breakdown();
  result.telemetry = telemetry;

  if (!config.trace_out.empty()) {
    std::ofstream out(config.trace_out);
    if (out) telemetry->export_jsonl(out);
  }
  if (!config.chrome_out.empty()) {
    std::ofstream out(config.chrome_out);
    if (out) telemetry->export_chrome(out);
  }
  // Detach before the systems/network go out of scope (telemetry outlives
  // them via the shared_ptr in the result).
  net.set_telemetry(nullptr);
  net.set_arrival_observer(nullptr);
  if (jenga) {
    jenga->set_failure_detector(nullptr);
    jenga->set_telemetry(nullptr);
  }
  if (baseline) baseline->set_telemetry(nullptr);
  return result;
}

}  // namespace jenga::harness
