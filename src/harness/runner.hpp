// Experiment runner: builds a system under test, replays a synthetic trace
// through it, and extracts the metrics the paper's evaluation reports.
#pragma once

#include <memory>
#include <string>

#include "baselines/baseline_base.hpp"
#include "core/jenga_system.hpp"
#include "gossip/batch.hpp"
#include "gossip/rumor.hpp"
#include "mempool/ingress.hpp"
#include "security/detector.hpp"
#include "security/fault_injector.hpp"
#include "telemetry/telemetry.hpp"
#include "workload/arrival.hpp"
#include "workload/client.hpp"
#include "workload/trace.hpp"

namespace jenga::harness {

enum class SystemKind : std::uint8_t {
  kJenga = 0,
  kJengaNoLattice,      // ablation: w/o Orthogonal Lattice Structure
  kJengaNoGlobalLogic,  // ablation: w/o Network-Wide Logic Storage
  kCxFunc,
  kSingleShard,
  kPyramid,
};

[[nodiscard]] const char* system_name(SystemKind kind);

/// Paper Table I nodes-per-shard for S ∈ {4,6,8,10,12}; other S interpolate.
[[nodiscard]] std::uint32_t paper_nodes_per_shard(std::uint32_t num_shards);

struct RunConfig {
  SystemKind kind = SystemKind::kJenga;
  std::uint32_t num_shards = 4;
  /// 0 = paper Table I size scaled by `scale`, rounded down to a multiple of
  /// the shard count (the lattice needs integral subgroups).
  std::uint32_t nodes_per_shard = 0;
  double scale = 0.25;
  std::uint64_t seed = 1;

  std::size_t contract_txs = 2000;
  std::size_t transfer_txs = 0;
  SimTime inject_window = 20 * kSecond;
  /// > 0: closed-loop injection — keep this many transactions outstanding
  /// (bounded backlog, as a load generator against a real testbed would),
  /// ignoring inject_window.  0: open-loop uniform over the window.
  std::size_t closed_loop_window = 0;
  SimTime max_sim_time = 1200 * kSecond;
  std::uint64_t trace_height = 1'000'000;  // workload maturity (Fig. 3 trends)

  workload::TraceConfig trace;  // num_contracts/num_accounts defaults apply
  baselines::CrossShardMode cross_mode = baselines::CrossShardMode::kClientRelay;
  std::uint32_t merge_span = 0;  // Pyramid; 0 = max(2, S/2)
  std::uint32_t max_block_items = 4096;
  /// Worker threads for batch transaction execution (src/exec/), every system
  /// kind.  Results are bit-identical for every value; 1 = serial.
  std::uint32_t exec_workers = 1;
  sim::NetConfig net;
  /// Non-empty: write the full JSONL telemetry trace here after the run.
  std::string trace_out;

  // --- Causal tracing & flight recorder (DESIGN.md §11) -------------------
  /// Assign every network message a causal span (parent = the message being
  /// handled when the send happened).  Passive: digests and metrics stay
  /// bit-identical on or off.  Adds cspan lines + per-tx dag_* fields to the
  /// JSONL export and enables critical-path extraction.
  bool causal_trace = false;
  /// Span table capacity before new sends stop being traced (chains truncate
  /// gracefully; the drop count is exported in the meta line).
  std::size_t causal_span_capacity = std::size_t{1} << 20;
  /// > 0: keep a ring of the last N events per node and dump a causally
  /// ordered window when check_invariants fails, the 2PC watchdog fires, or
  /// replicas diverge on a decide.
  std::size_t flight_events_per_node = 0;
  /// Non-empty: each flight dump is also written to `<prefix>-<n>.jsonl`
  /// (dumps are always retained in telemetry->flight.dumps()).
  std::string flight_dump_path;
  /// Non-empty: write a chrome://tracing-compatible JSON view of the causal
  /// DAG here after the run (requires causal_trace).
  std::string chrome_out;

  // --- Live epoch reconfiguration (Jenga kinds only; baselines ignore) ----
  /// > 0: reshuffle the lattice every `epoch_interval` of simulated time.
  SimTime epoch_interval = 0;
  SimTime epoch_drain_window = 10 * kSecond;
  SimTime epoch_beacon_lead = 20 * kSecond;
  std::size_t epoch_min_contributions = 0;  // 0 = 2N/3 + 1
  std::uint64_t epoch_vdf_iterations = 256;
  std::size_t epoch_vdf_checkpoints = 8;

  // --- Durable authenticated state (Jenga kinds only; baselines ignore) ---
  core::StorageBackendKind storage_backend = core::StorageBackendKind::kNone;
  std::uint32_t storage_snapshot_interval = 64;
  /// Model proof-verified state sync on crash recovery / rehoming.
  bool model_state_sync = false;

  // --- Open-loop ingestion (DESIGN.md §10) --------------------------------
  /// arrival.mode == kNone (default): the legacy injection paths above run
  /// bit-identically to earlier PRs.  Any other mode routes every generated
  /// tx through per-ingress-shard fee-priority mempools: Poisson/bursty/
  /// diurnal arrivals at arrival.rate_tps, admission control with reason
  /// codes, TTL expiry, backpressure into the arrival process, client retry
  /// with backoff, and a credit-windowed dispatch pump into the system.
  /// Works on every SystemKind; contract_txs + transfer_txs still set the
  /// total generated.
  workload::ArrivalConfig arrival;
  workload::RetryPolicy retry;
  workload::FeeTierSpec fee_tiers;
  mempool::MempoolConfig mempool;  // per-ingress-shard pool
  double mempool_soft_watermark = 0.70;
  double mempool_hard_watermark = 0.95;
  /// Dispatch credit window: pool → system submissions keep at most this many
  /// transactions in flight (open-loop modes only).
  std::size_t max_inflight = 512;
  SimTime pump_interval = 50 * kMillisecond;
  /// Scripted faults, armed before the run (Jenga kinds only; overload bursts
  /// additionally need an open-loop arrival mode to have a client to throttle).
  security::FaultPlan faults_plan;

  // --- Self-healing (DESIGN.md §14) ---------------------------------------
  /// Attach the phi-accrual failure detector (every kind; sampling is pure
  /// bookkeeping).  Its actuation — adaptive view timeouts, hotter pull
  /// repair, hedged 2PC legs — arms only when `faults_plan` is non-empty, so
  /// clean runs stay bit-identical with this on or off.
  bool self_healing = true;
  security::DetectorConfig detector;
  /// Stuck-2PC recovery ladder knobs (Jenga kinds; see core/recovery.hpp).
  core::RecoveryConfig recovery;
};

/// Admission-layer outcome of an open-loop run (zeroed for legacy modes).
struct IngressReport {
  bool enabled = false;
  mempool::IngressStats pools;
  workload::ClientStats client;
  /// Chained hash over every admit/reject/evict/expire/dispatch event — the
  /// determinism witness for the admission sequence.
  Hash256 admission_digest{};
  /// Post-drain safety audit (Jenga kinds only; see audited flag).
  bool invariants_audited = false;
  security::InvariantReport invariants;
};

struct RunResult {
  TxStats stats;
  sim::TrafficStats traffic;
  sim::FaultStats faults;
  StorageReport storage;
  double tps = 0;
  double latency_s = 0;
  double cross_ratio = 0;
  std::uint64_t sim_events = 0;
  SimTime sim_end = 0;
  std::uint32_t nodes_per_shard = 0;
  std::uint32_t total_nodes = 0;
  /// Canonical digest over every shard's chain tip and state store at run
  /// end — what the determinism tests compare across exec worker counts.
  Hash256 ledger_digest{};
  /// Order-independent digest over final state + outcome counts (Jenga kinds
  /// only; zero for baselines).  Excludes timing-dependent chain tips, so it
  /// is the witness compared ACROSS dissemination transports.
  Hash256 state_digest{};
  /// Dissemination-layer counters (all zero unless a message class ran the
  /// rumor transport on a Jenga kind; see src/gossip/).
  gossip::RumorStats rumor;
  gossip::BatchStats relay_batches;
  core::CertVerifyStats cert_checks;
  /// Reconfigurations completed during the run and transactions carried
  /// across a boundary (both 0 unless epoch_interval > 0 on a Jenga kind).
  std::uint64_t epoch_transitions = 0;
  std::uint64_t epoch_txs_requeued = 0;
  /// Recovery-time state sync counters (all 0 unless model_state_sync).
  core::StateSyncStats state_sync;
  /// Failure-detector activity (all 0 unless self_healing; suspicions stay 0
  /// unless a fault plan armed actuation).
  security::DetectorStats detector;
  /// Stuck-2PC recovery-ladder activity (Jenga kinds; all 0 in clean runs).
  core::RecoveryStats recovery;
  /// Admission-layer outcome (enabled only for open-loop arrival modes).
  IngressReport ingress;
  /// Every run is instrumented (telemetry is cheap enough to stay on): the
  /// full metric registry / tracer / message telemetry, and the per-phase
  /// latency breakdown derived from the tracer.
  std::shared_ptr<telemetry::Telemetry> telemetry;
  telemetry::PhaseBreakdown breakdown;
};

[[nodiscard]] RunResult run_experiment(const RunConfig& config);

/// Environment override: JENGA_BENCH_SCALE (e.g. "1.0" for paper-size
/// committees) and JENGA_BENCH_TXS multiply the defaults.
[[nodiscard]] double bench_scale_from_env(double fallback);
[[nodiscard]] std::size_t bench_txs_from_env(std::size_t fallback);

}  // namespace jenga::harness
