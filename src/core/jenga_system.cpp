#include "core/jenga_system.hpp"

#include <algorithm>
#include <cassert>

#include "consensus/messages.hpp"
#include "crypto/sha256.hpp"
#include "exec/engine.hpp"
#include "gossip/batch.hpp"
#include "gossip/rumor.hpp"
#include "ledger/placement.hpp"
#include "ledger/state_sync.hpp"
#include "security/detector.hpp"
#include "vm/interpreter.hpp"

namespace jenga::core {
namespace {

using ledger::PortableState;
using ledger::Transaction;
using ledger::TxKind;

constexpr std::uint64_t kShardGroupTag = 0x5AAD0000ULL;
constexpr std::uint64_t kChannelGroupTag = 0xC4A70000ULL;

/// One committed (or aborted) transaction within a shard block.
struct CommitItem {
  TxPtr tx;
  bool ok = true;
  PortableState updates;  // this shard's slice only

  [[nodiscard]] std::uint32_t wire_size() const {
    return ledger::kTxWireBytes + updates.wire_size();
  }
};

/// Transfer-processing item (stage 0: debit at source, 1: credit at dest,
/// 2: finalize at source after the 2PC ack, 3: refund a force-aborted
/// attempt's debit at the source — recovery ladder only, DESIGN.md §14).
struct TransferItem {
  TxPtr tx;
  std::uint8_t stage = 0;
  /// Recovery-retry attempt the item belongs to (0 = original round).
  std::uint32_t attempt = 0;
};

/// Multi-round execution visit (kNoGlobalLogic): run the step group starting
/// at `next_step` on this shard, then hand the bundle onward.
struct ExecVisit {
  TxPtr tx;
  PortableState gathered;
  std::uint32_t next_step = 0;
  bool aborted = false;  // Phase 1 failed; just fan the abort out
};

/// A phase-1 candidate with its lock-retry budget consumed so far.
struct DetermineItem {
  TxPtr tx;
  std::uint32_t retries = 0;
};

/// What a state shard's consensus decides on.
struct ShardBlockPayload : sim::Payload {
  ShardId shard;
  std::vector<DetermineItem> determine;  // phase-1 state determination
  std::vector<CommitItem> commits;   // phase-3 commits/aborts
  std::vector<TransferItem> transfers;
  std::vector<ExecVisit> visits;     // kNoGlobalLogic step groups
  // kNoLattice: this shard doubles as an execution site; results it computed.
  std::vector<std::pair<TxPtr, ExecResult>> exec_entries;
  // kNoGlobalLogic: gather entries that expired with the tx never seen; the
  // decision fans aborts to the recorded granting shards (sorted ids).
  std::vector<std::pair<Hash256, std::vector<std::uint32_t>>> dead_gathers;

  [[nodiscard]] std::size_t item_count() const {
    return determine.size() + commits.size() + transfers.size() + visits.size() +
           exec_entries.size() + dead_gathers.size();
  }
};

/// What an execution channel's consensus decides on (kFull pipeline).
struct ChannelBlockPayload : sim::Payload {
  ChannelId channel;
  std::vector<std::pair<TxPtr, ExecResult>> entries;
};

/// kNoGlobalLogic: intermediate bundle relayed between home shards.
struct ContinuationPayload : sim::Payload {
  TxPtr tx;
  PortableState gathered;
  std::uint32_t next_step = 0;
  ShardId target;
  std::uint8_t hops = 0;  // >0: relay through the channel subgroup
  /// Stale continuations straddling an epoch cutover must not re-enter the
  /// new lattice (the boundary already force-aborted and requeued their tx).
  std::uint64_t epoch = 0;

  [[nodiscard]] std::uint32_t wire_size() const { return 128 + gathered.wire_size(); }
};

/// Content-derived dedup identity of a relayed protocol message: every
/// subgroup relay of the same certified outcome computes the same id, so in
/// rumor mode their spreads merge into one (DESIGN.md §12).
/// Type-salted pool-dedup key for a parked grant batch (results use their
/// already-mixed result_dedup key; the salt keeps the two spaces apart).
std::uint64_t grant_park_key(std::uint64_t key) {
  std::uint64_t state = key ^ 0xA1C3ULL;
  return splitmix64(state);
}

std::uint64_t relay_rumor_id(const sim::Message& msg) {
  switch (msg.type) {
    case sim::MsgType::kStateGrant: {
      const auto& p = sim::payload_as<GrantBatchPayload>(msg);
      return sim::rumor_id_mix(0xA1, p.source.value, p.shard_height, p.relay_target.value);
    }
    case sim::MsgType::kExecResult: {
      const auto& p = sim::payload_as<ResultBatchPayload>(msg);
      return sim::rumor_id_mix(0xA2, p.source.value, p.channel_height, p.target.value);
    }
    case sim::MsgType::kSubTxResult: {
      const auto& p = sim::payload_as<ContinuationPayload>(msg);
      return sim::rumor_id_mix(0xA3, p.tx->hash.prefix_u64(), p.next_step, p.target.value);
    }
    case sim::MsgType::kEpochVrf: {
      const auto& p = sim::payload_as<EpochContributionPayload>(msg);
      return sim::rumor_id_mix(0xA4, p.contribution.node.value, p.epoch);
    }
    default:
      return sim::rumor_id_mix(static_cast<std::uint64_t>(msg.type), msg.size_bytes);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Engines
// ---------------------------------------------------------------------------

/// Shared gathering unit: collects grants per transaction until every
/// involved shard reported (used by channels in kFull, by execution shards in
/// kNoLattice, and by first home shards in kNoGlobalLogic).
struct GatherUnit {
  struct Pending {
    TxPtr tx;
    PortableState gathered;
    std::unordered_set<std::uint32_t> reported;  // shard ids
    std::size_t expected = 0;                    // 0 until the tx itself arrives
    bool abort = false;
    bool queued = false;  // already moved to ready
    SimTime first_seen = 0;
  };

  std::unordered_map<Hash256, Pending> pending;
  std::deque<Hash256> ready;
  /// Optional phase tracer: a tx becoming ready is the kGather checkpoint
  /// (the moment the execution site holds every involved shard's grant).
  telemetry::PhaseTracer* tracer = nullptr;
  std::uint32_t tracer_key = 0;  // shard / channel id for the trace event
  /// Transactions whose entry was consumed by a decision.  Late tx copies or
  /// stray re-grants must not resurrect a Pending for them: a resurrected
  /// entry eventually expires and emits a *second* abort/result for a tx the
  /// shards already settled.
  std::unordered_set<Hash256> done;
  /// Entries that expired with the tx itself never seen (grants only — a
  /// crashed or mid-reshuffle contact swallowed the client copy).  The shards
  /// that granted hold Phase-1 locks; a grant for one of these arriving after
  /// the expiry must be answered with an abort so those locks release.
  std::unordered_set<Hash256> expired_dead;
  std::unordered_set<std::uint64_t> late_abort_sent;  // (tx, source) answer dedup
  std::uint64_t late_abort_seq = 0;  // synthetic batch heights for the answers

  void finish(const Hash256& h) {
    pending.erase(h);
    done.insert(h);
  }

  /// finish() for an entry whose tx never arrived: remember it so late grants
  /// still get an abort answer instead of being swallowed by `done`.
  void finish_dead(const Hash256& h) {
    expired_dead.insert(h);
    finish(h);
  }

  void on_tx(const TxPtr& tx, std::size_t expected, SimTime now) {
    if (done.contains(tx->hash)) return;
    auto& p = pending[tx->hash];
    if (!p.tx) {
      p.tx = tx;
      p.expected = expected;
      if (p.first_seen == 0) p.first_seen = now;
    }
    maybe_ready(tx->hash, now);
  }

  void on_grant(const StateGrant& grant, SimTime now) {
    if (done.contains(grant.tx_hash)) return;
    auto& p = pending[grant.tx_hash];
    if (p.first_seen == 0) p.first_seen = now;
    if (p.reported.contains(grant.source.value)) return;
    p.reported.insert(grant.source.value);
    if (!grant.available) {
      p.abort = true;
    } else {
      p.gathered.merge(grant.states);
    }
    maybe_ready(grant.tx_hash, now);
  }

  void maybe_ready(const Hash256& h, SimTime now) {
    auto it = pending.find(h);
    if (it == pending.end()) return;
    Pending& p = it->second;
    if (p.queued || !p.tx || p.expected == 0) return;
    if (p.reported.size() >= p.expected) {
      p.queued = true;
      ready.push_back(h);
      if (tracer != nullptr)
        tracer->phase_event(h, telemetry::Phase::kGather, tracer_key, now);
    }
  }

  /// Moves timed-out entries to ready as aborts.  Entries whose tx never
  /// arrived (grants only) expire too: the granting shards hold Phase-1 locks
  /// that only an abort result fanned back to them can release, so letting a
  /// permanently half-gathered entry sit forever would leak those locks.
  void expire(SimTime now, SimTime timeout) {
    for (auto& [h, p] : pending) {
      if (p.queued || p.first_seen == 0) continue;
      if (now - p.first_seen >= timeout) {
        p.abort = true;
        p.queued = true;
        ready.push_back(h);
        if (tracer != nullptr)
          tracer->phase_event(h, telemetry::Phase::kGather, tracer_key, now);
      }
    }
  }
};

struct JengaSystem::ShardEngine {
  ShardId id;
  ledger::StateStore store;
  ledger::LockManager locks;
  ledger::Chain chain;
  ledger::LogicStore local_logic;  // kNoGlobalLogic: only home contracts

  std::deque<DetermineItem> determine;
  std::deque<CommitItem> commits;
  std::deque<TransferItem> transfers;
  std::deque<ExecVisit> visits;
  std::deque<std::pair<Hash256, std::vector<std::uint32_t>>> dead_gathers;
  GatherUnit gather;  // kNoLattice / kNoGlobalLogic

  std::unordered_set<Hash256> seen_client;  // dedup client submissions
  /// Txs whose outcome this shard already applied.  Per-shard, not global:
  /// between the first and last involved shard applying an outcome the tx is
  /// still in the global tracker, and a queued lock-retry firing in that
  /// window at an already-settled shard would re-lock state with no
  /// commit/abort left to release it.
  std::unordered_set<Hash256> finished;
  /// Abort fees waiting for the sender's account lock to clear (charging
  /// while another tx holds the account would be lost to that tx's commit).
  std::deque<std::pair<AccountId, std::uint64_t>> deferred_abort_fees;
  std::unordered_set<std::uint64_t> grant_dedup;   // (source<<32|height) keys
  std::unordered_set<std::uint64_t> result_dedup;  // (source<<32|height) keys
  /// 2PC destination-side recovery records, keyed by attempt-scoped hashes
  /// (twopc_key).  `twopc_credited`: the credit of that (tx, attempt) was
  /// applied — a probe re-sends the lost ack instead of re-crediting.
  /// `twopc_tombstones`: a force-abort settled the attempt as never-credited;
  /// its credit must never apply afterwards, even if the original prepare is
  /// still parked behind a lock or in flight.
  std::unordered_set<Hash256> twopc_credited;
  std::unordered_set<Hash256> twopc_tombstones;
  std::unordered_map<Hash256, std::uint32_t> continuation_dedup;  // tx -> max step seen

  std::uint64_t next_process_height = 0;
  struct Outcome {
    // (channel, message) pairs each subgroup member must rebroadcast.
    std::vector<std::pair<ChannelId, sim::Message>> to_channels;
  };
  std::unordered_map<std::uint64_t, Outcome> outcomes;

  explicit ShardEngine(ShardId s) : id(s), chain(s) {}
};

struct JengaSystem::ChannelEngine {
  ChannelId id;
  GatherUnit gather;
  std::unordered_set<std::uint64_t> grant_dedup;
  std::uint64_t next_process_height = 0;
  struct Outcome {
    std::vector<std::pair<ShardId, sim::Message>> to_shards;
  };
  std::unordered_map<std::uint64_t, Outcome> outcomes;

  explicit ChannelEngine(ChannelId c) : id(c) {}
};

// ---------------------------------------------------------------------------
// BFT apps
// ---------------------------------------------------------------------------

struct JengaSystem::ShardApp final : consensus::BftApp {
  JengaSystem* sys = nullptr;
  ShardEngine* engine = nullptr;
  NodeId node;

  std::optional<consensus::ConsensusValue> propose(std::uint64_t height) override;
  bool validate(std::uint64_t, const consensus::ConsensusValue&) override { return true; }
  void on_decide(std::uint64_t height, const consensus::ConsensusValue& value,
                 const consensus::QuorumCert& cert) override;
};

struct JengaSystem::ChannelApp final : consensus::BftApp {
  JengaSystem* sys = nullptr;
  ChannelEngine* engine = nullptr;
  NodeId node;

  std::optional<consensus::ConsensusValue> propose(std::uint64_t height) override;
  bool validate(std::uint64_t, const consensus::ConsensusValue&) override { return true; }
  void on_decide(std::uint64_t height, const consensus::ConsensusValue& value,
                 const consensus::QuorumCert& cert) override;
};

// ---------------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------------

JengaSystem::JengaSystem(sim::Simulator& sim, sim::Network& net, JengaConfig config,
                         Genesis genesis)
    : sim_(sim), net_(net), config_(config) {
  exec::EngineOptions eo;
  eo.workers = config_.exec_workers;
  exec_engine_ = std::make_unique<exec::Engine>(eo);

  const Hash256 epoch_randomness = crypto::sha256("jenga/epoch-0");
  lattice_ = std::make_unique<Lattice>(
      make_epoch_lattice(config_.num_shards, config_.nodes_per_shard, config_.seed,
                         epoch_randomness));

  for (const auto& logic : genesis.contracts) all_logic_.add(logic);

  // Per-shard state: accounts and contract states placed by hash.
  for (std::uint32_t s = 0; s < config_.num_shards; ++s) {
    shards_.push_back(std::make_unique<ShardEngine>(ShardId{s}));
    channels_.push_back(std::make_unique<ChannelEngine>(ChannelId{s}));
  }
  if (config_.storage_backend != StorageBackendKind::kNone) {
    for (std::uint32_t s = 0; s < config_.num_shards; ++s) {
      std::unique_ptr<ledger::StorageBackend> backend;
      if (config_.storage_backend == StorageBackendKind::kDurable) {
        storage_envs_.push_back(std::make_unique<ledger::MemStorageEnv>());
        ledger::DurableOptions opts;
        opts.snapshot_interval = config_.storage_snapshot_interval;
        backend = std::make_unique<ledger::DurableBackend>(storage_envs_.back().get(),
                                                           std::move(opts));
      } else {
        backend = std::make_unique<ledger::InMemoryBackend>();
      }
      auto opened = ledger::StateStore::open(std::move(backend));
      // A fresh backend always recovers to an empty store; only a programming
      // error could fail here.
      shards_[s]->store = std::move(opened.value());
    }
  }
  for (std::uint64_t a = 0; a < genesis.num_accounts; ++a) {
    const ShardId s = ledger::shard_of_account(AccountId{a}, config_.num_shards);
    shards_[s.value]->store.create_account(AccountId{a}, genesis.initial_balance);
  }
  for (std::size_t c = 0; c < genesis.contracts.size(); ++c) {
    const ContractId id = genesis.contracts[c]->id;
    const ShardId s = ledger::shard_of_contract(id, config_.num_shards);
    shards_[s.value]->store.create_contract_state(
        id, c < genesis.initial_states.size() ? genesis.initial_states[c]
                                              : ledger::ContractState{});
    // kNoGlobalLogic keeps logic only on the home shard.
    shards_[s.value]->local_logic.add(genesis.contracts[c]);
  }

  initial_balance_ = genesis.num_accounts * genesis.initial_balance;

  const std::uint32_t n = lattice_->total_nodes();
  shard_replicas_.resize(n);
  channel_replicas_.resize(n);
  shard_apps_.resize(n);
  channel_apps_.resize(n);
  all_nodes_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) all_nodes_.push_back(NodeId{i});

  if (config_.epoch_interval > 0) {
    // Every node is a beacon committee member; its VRF key is derived from
    // the system seed so runs are reproducible.
    std::vector<crypto::Point> committee;
    beacon_keys_.reserve(n);
    committee.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      beacon_keys_.push_back(
          crypto::keypair_from_seed(config_.seed * 0x9E3779B97F4A7C15ULL + 0xBEAC0ULL + i));
      committee.push_back(beacon_keys_.back().public_key);
    }
    epoch_mgr_ = std::make_unique<EpochManager>(std::move(committee),
                                                config_.epoch_vdf_iterations,
                                                config_.epoch_vdf_checkpoints);
  }

  // Dissemination subsystem (DESIGN.md §12).  The mesh gets its OWN rng
  // stream so naive/tree runs consume the exact network rng sequence they did
  // before this subsystem existed.
  if (net_.config().any_rumor() && net_.rumor_mesh() == nullptr) {
    mesh_ = std::make_unique<gossip::RumorMesh>(net_, gossip::RumorConfig{},
                                                Rng(config_.seed ^ 0x52554D52ULL));
    net_.set_rumor_mesh(mesh_.get());
  }
  if (net_.config().transport_for(sim::BroadcastKind::kRelay) == sim::Transport::kRumor &&
      net_.config().batch_window > 0) {
    batcher_ = std::make_unique<gossip::Batcher>(net_, net_.config().batch_window);
  }

  build_replicas();
  for (std::uint32_t i = 0; i < n; ++i) {
    const NodeId node{i};
    net_.register_node(node, [this, node](const sim::Message& m) { on_node_message(node, m); });
  }
}

std::uint64_t JengaSystem::shard_tag(ShardId s) const {
  return (epoch_ << 32) | kShardGroupTag | s.value;
}

std::uint64_t JengaSystem::channel_tag(ChannelId c) const {
  return (epoch_ << 32) | kChannelGroupTag | c.value;
}

std::size_t JengaSystem::min_contributions() const {
  if (config_.epoch_min_contributions != 0) return config_.epoch_min_contributions;
  return 2 * static_cast<std::size_t>(lattice_->total_nodes()) / 3 + 1;
}

void JengaSystem::build_replicas() {
  const bool run_channels = config_.pipeline == Pipeline::kFull;
  const std::uint32_t n = lattice_->total_nodes();

  // One BFT config per group, shared among its replicas.  Tags and vote-key
  // seeds are epoch-salted: heights restart at 0 after a reshuffle, so the
  // (tag, height) space — and the vote keys — must not collide across epochs.
  std::vector<std::shared_ptr<consensus::BftConfig>> shard_cfg(config_.num_shards);
  std::vector<std::shared_ptr<consensus::BftConfig>> channel_cfg(config_.num_shards);
  for (std::uint32_t g = 0; g < config_.num_shards; ++g) {
    auto sc = std::make_shared<consensus::BftConfig>();
    sc->members = lattice_->shard_members(ShardId{g});
    sc->group_tag = shard_tag(ShardId{g});
    sc->crypto_seed = (config_.seed ^ (0x51ED0000ULL + g)) + epoch_ * 0xD1B54A32D192ED03ULL;
    sc->view_timeout = config_.view_timeout;
    shard_cfg[g] = std::move(sc);
    auto cc = std::make_shared<consensus::BftConfig>();
    cc->members = lattice_->channel_members(ChannelId{g});
    cc->group_tag = channel_tag(ChannelId{g});
    cc->crypto_seed = (config_.seed ^ (0xC4A20000ULL + g)) + epoch_ * 0xD1B54A32D192ED03ULL;
    cc->view_timeout = config_.view_timeout;
    channel_cfg[g] = std::move(cc);
  }

  for (std::uint32_t i = 0; i < n; ++i) {
    const NodeId node{i};
    const Assignment asg = lattice_->assignment(node);
    auto sapp = std::make_unique<ShardApp>();
    sapp->sys = this;
    sapp->engine = shards_[asg.shard.value].get();
    sapp->node = node;
    shard_replicas_[i] = std::make_unique<consensus::Replica>(
        net_, node, shard_cfg[asg.shard.value], *sapp);
    shard_apps_[i] = std::move(sapp);

    if (run_channels) {
      auto capp = std::make_unique<ChannelApp>();
      capp->sys = this;
      capp->engine = channels_[asg.channel.value].get();
      capp->node = node;
      channel_replicas_[i] = std::make_unique<consensus::Replica>(
          net_, node, channel_cfg[asg.channel.value], *capp);
      channel_apps_[i] = std::move(capp);
    }

    // The adversary corrupts nodes, not seats: Byzantine roles survive the
    // reshuffle and are reapplied to the freshly built replicas.
    if (const auto it = byz_modes_.find(i); it != byz_modes_.end()) {
      shard_replicas_[i]->set_byzantine(it->second);
      if (channel_replicas_[i]) channel_replicas_[i]->set_byzantine(it->second);
    }
    if (telemetry_ != nullptr) {
      shard_replicas_[i]->set_telemetry(telemetry_);
      if (channel_replicas_[i]) channel_replicas_[i]->set_telemetry(telemetry_);
    }
    // Reshuffles rebuild replicas; the adaptive-timeout hook follows them.
    if (detector_ != nullptr) {
      consensus::Replica::ViewTimeoutHook hook =
          [d = detector_](NodeId self, NodeId leader, SimTime base) {
            return d->view_timeout(self, leader, base);
          };
      shard_replicas_[i]->set_view_timeout_hook(hook);
      if (channel_replicas_[i]) channel_replicas_[i]->set_view_timeout_hook(std::move(hook));
    }
  }
}

JengaSystem::~JengaSystem() {
  if (mesh_ && net_.rumor_mesh() == mesh_.get()) net_.set_rumor_mesh(nullptr);
}

void JengaSystem::start() {
  for (auto& r : shard_replicas_) r->start();
  for (auto& r : channel_replicas_)
    if (r) r->start();
  schedule_epoch_cycle();
}

void JengaSystem::set_node_silent(NodeId node) {
  set_node_byzantine(node, consensus::ByzantineMode::kSilent);
}

void JengaSystem::set_node_byzantine(NodeId node, consensus::ByzantineMode mode) {
  byz_modes_[node.value] = mode;  // survives reshuffles (see build_replicas)
  shard_replicas_[node.value]->set_byzantine(mode);
  if (channel_replicas_[node.value]) channel_replicas_[node.value]->set_byzantine(mode);
}

void JengaSystem::on_node_recovered(NodeId node) {
  shard_replicas_[node.value]->request_sync();
  if (channel_replicas_[node.value]) channel_replicas_[node.value]->request_sync();
  if (config_.model_state_sync) model_recovery_sync(node, /*use_durable_image=*/true);
}

void JengaSystem::storage_torn_write(ShardId s, std::uint64_t keep_bytes) {
  if (ledger::MemStorageEnv* env = storage_env(s))
    env->arm_torn_write("state.wal", keep_bytes);
}

void JengaSystem::storage_drop_fsyncs(ShardId s, bool drop) {
  if (ledger::MemStorageEnv* env = storage_env(s)) env->set_drop_fsyncs(drop);
}

void JengaSystem::storage_flip_bit(ShardId s, std::uint64_t bit_offset) {
  if (ledger::MemStorageEnv* env = storage_env(s)) env->flip_bit("state.wal", bit_offset);
}

void JengaSystem::model_recovery_sync(NodeId node, bool use_durable_image) {
  const Assignment asg = lattice_->assignment(node);
  ShardEngine& eng = *shards_[asg.shard.value];
  telemetry::MetricsRegistry* reg = telemetry_ == nullptr ? nullptr : &telemetry_->registry;
  ++sync_stats_.syncs;
  if (reg != nullptr) reg->counter("state_sync.syncs").inc();

  // 1. Reopen whatever survived on the node's disk.  The durable view is a
  //    clone of the synced images, so recovery never disturbs the live env.
  //    A corrupt image (bit flip, diverged root) is refused outright and the
  //    node syncs from scratch — never from poisoned state.
  ledger::StateStore recovered;
  std::unique_ptr<ledger::MemStorageEnv> view;
  ledger::MemStorageEnv* env = use_durable_image ? storage_env(asg.shard) : nullptr;
  if (env != nullptr) {
    view = env->durable_view();
    ledger::DurableOptions opts;
    opts.snapshot_interval = config_.storage_snapshot_interval;
    auto opened = ledger::StateStore::open(
        std::make_unique<ledger::DurableBackend>(view.get(), std::move(opts)));
    if (opened.ok()) {
      recovered = std::move(opened.value());
    } else {
      ++sync_stats_.recovery_refusals;
      if (reg != nullptr) reg->counter("storage.recovery_refusals").inc();
    }
  }

  const Hash256 group_root = eng.store.digest();
  if (recovered.digest() == group_root) {
    ++sync_stats_.already_current;
    if (reg != nullptr) reg->counter("state_sync.already_current").inc();
    return;
  }

  // 2. Proof-verified delta sync: peers serve a snapshot with a per-key
  //    Merkle proof under the advertised root.  A Byzantine peer tampers
  //    deterministically; verification rejects it and the node moves on.
  bool synced = false;
  for (NodeId peer : lattice_->shard_members(asg.shard)) {
    if (peer == node || net_.node_down(peer)) continue;
    ledger::SyncSnapshot snap = ledger::build_sync_snapshot(eng.store);
    const auto byz = byz_modes_.find(peer.value);
    if (byz != byz_modes_.end() && byz->second != consensus::ByzantineMode::kHonest)
      ledger::tamper_sync_snapshot(snap, node.value + peer.value);
    const ledger::SyncOutcome outcome = ledger::apply_sync_snapshot(snap, recovered);
    sync_stats_.keys_verified += outcome.keys_verified;
    sync_stats_.proof_rejections += outcome.proof_rejections;
    sync_stats_.bytes_synced += outcome.bytes;
    if (reg != nullptr) {
      reg->counter("state_sync.keys_verified").inc(outcome.keys_verified);
      reg->counter("state_sync.proof_rejections").inc(outcome.proof_rejections);
    }
    if (outcome.ok) {
      synced = true;
      break;
    }
  }

  // 3. Every proof-serving peer lied: unverified full copy, digest-checked.
  if (!synced) {
    ++sync_stats_.full_syncs;
    if (reg != nullptr) reg->counter("state_sync.full_syncs").inc();
    sync_stats_.bytes_synced += ledger::full_copy_sync(eng.store, recovered);
  }
  if (!(recovered.digest() == group_root)) {
    ++sync_stats_.root_mismatches;
    if (reg != nullptr) reg->counter("state_sync.root_mismatches").inc();
  }
}

void JengaSystem::set_failure_detector(security::FailureDetector* detector) {
  detector_ = detector;
  if (mesh_) {
    if (detector == nullptr) {
      mesh_->set_cadence_hook(nullptr);
    } else {
      // Hotter pull-repair while the network is degraded (base divisor when
      // healthy, so clean schedules stay bit-identical).
      mesh_->set_cadence_hook(
          [detector](std::uint32_t base) { return detector->pull_cadence(base); });
    }
  }
  for (std::size_t i = 0; i < shard_replicas_.size(); ++i) {
    consensus::Replica::ViewTimeoutHook hook;
    if (detector != nullptr)
      hook = [detector](NodeId self, NodeId leader, SimTime base) {
        return detector->view_timeout(self, leader, base);
      };
    shard_replicas_[i]->set_view_timeout_hook(hook);
    if (channel_replicas_[i]) channel_replicas_[i]->set_view_timeout_hook(hook);
  }
}

void JengaSystem::set_telemetry(telemetry::Telemetry* t) {
  telemetry_ = t;
  exec_engine_->set_metrics(t == nullptr ? nullptr : &t->registry);
  for (auto& r : shard_replicas_) r->set_telemetry(t);
  for (auto& r : channel_replicas_)
    if (r) r->set_telemetry(t);
  telemetry::PhaseTracer* tracer = t == nullptr ? nullptr : &t->tracer;
  for (auto& s : shards_) {
    s->gather.tracer = tracer;
    s->gather.tracer_key = s->id.value;
  }
  for (auto& c : channels_) {
    c->gather.tracer = tracer;
    c->gather.tracer_key = c->id.value;
  }
}

NodeId JengaSystem::shard_leader(ShardId s) const {
  const NodeId probe = lattice_->shard_members(s).front();
  return shard_replicas_[probe.value]->current_leader();
}

void JengaSystem::note_decide(std::uint64_t group_tag, std::uint64_t height,
                              const Hash256& digest) {
  const auto [it, inserted] = decide_ledger_.try_emplace({group_tag, height}, digest);
  if (!inserted && !(it->second == digest)) {
    ++divergent_decides_;
    if (telemetry_ != nullptr) telemetry_->flight.trigger("divergent.decide");
  }
}

void JengaSystem::relay_gossip(NodeId node, const std::vector<NodeId>& group,
                               const sim::Message& msg, sim::BroadcastKind kind) {
  if (net_.config().transport_for(kind) == sim::Transport::kRumor &&
      net_.rumor_mesh() != nullptr) {
    // The mesh's pull-digest repair is the retransmission path; blind
    // re-gossips would only amplify traffic (dup-drop eats them anyway).
    net_.broadcast(kind, node, group, relay_rumor_id(msg), msg,
                   sim::TrafficClass::kIntraShard);
    return;
  }
  net_.gossip(node, group, msg, sim::TrafficClass::kIntraShard);
  if (!net_.fault_profile().any()) return;
  for (const SimTime delay : {2 * kSecond, 8 * kSecond}) {
    sim_.schedule_after(delay, [this, node, group, msg] {
      if (net_.node_down(node)) return;
      net_.gossip(node, group, msg, sim::TrafficClass::kIntraShard);
    });
  }
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

std::vector<ShardId> JengaSystem::involved_shards(const Transaction& tx) const {
  std::vector<ShardId> out;
  auto add = [&out](ShardId s) {
    if (std::find(out.begin(), out.end(), s) == out.end()) out.push_back(s);
  };
  if (tx.kind == TxKind::kTransfer) {
    add(ledger::shard_of_account(tx.sender, config_.num_shards));
    add(ledger::shard_of_account(tx.to, config_.num_shards));
    return out;
  }
  for (auto c : tx.contracts) add(ledger::shard_of_contract(c, config_.num_shards));
  for (auto a : tx.accounts) add(ledger::shard_of_account(a, config_.num_shards));
  return out;
}

NodeId JengaSystem::shard_contact(ShardId s) const {
  const auto& members = lattice_->shard_members(s);
  return members[contact_rr_ % members.size()];
}

NodeId JengaSystem::channel_contact(ChannelId c) const {
  const auto& members = lattice_->channel_members(c);
  return members[contact_rr_ % members.size()];
}

// ---------------------------------------------------------------------------
// Client submission
// ---------------------------------------------------------------------------

void JengaSystem::submit(TxPtr tx) {
  const SimTime now = sim_.now();
  ++stats_.submitted;
  if (stats_.first_submit_time == 0 && stats_.submitted == 1)
    stats_.first_submit_time = now;

  const auto involved = involved_shards(*tx);
  tracker_[tx->hash] = TrackEntry{now, static_cast<std::uint32_t>(involved.size()), false};
  tx_for_result_[tx->hash] = tx;
  if (telemetry_ != nullptr) telemetry_->tracer.on_submit(tx->hash, now);

  ++contact_rr_;
  auto payload = std::make_shared<TxPayload>();
  payload->tx = tx;
  sim::Message msg;
  msg.type = sim::MsgType::kClientTx;
  msg.size_bytes = tx->wire_size();
  msg.payload = std::move(payload);

  if (tx->kind == TxKind::kTransfer) {
    // Traditional 2PC path starts at the sender's shard only.
    net_.client_send(shard_contact(ledger::shard_of_account(tx->sender, config_.num_shards)),
                     msg);
    // The tracker counts both shards; same-shard transfers count one.
    return;
  }

  for (ShardId s : involved) net_.client_send(shard_contact(s), msg);
  // The execution site also needs the transaction itself.
  if (config_.pipeline == Pipeline::kFull) {
    net_.client_send(channel_contact(ledger::channel_of_tx(tx->hash, config_.num_shards)), msg);
  } else if (config_.pipeline == Pipeline::kNoLattice) {
    const ShardId exec{static_cast<std::uint32_t>(tx->hash.prefix_u64() % config_.num_shards)};
    net_.client_send(shard_contact(exec), msg);
  } else {
    // kNoGlobalLogic: the first step's home shard gathers and starts execution.
    const ShardId first = ledger::shard_of_contract(
        tx->contracts[tx->steps.front().contract_slot], config_.num_shards);
    net_.client_send(shard_contact(first), msg);
  }
}

// ---------------------------------------------------------------------------
// Node message dispatch
// ---------------------------------------------------------------------------

void JengaSystem::on_node_message(NodeId node, const sim::Message& msg) {
  switch (msg.type) {
    case sim::MsgType::kClientTx:
      handle_client_tx(node, msg);
      return;
    case sim::MsgType::kStateGrant:
      handle_grant_batch(node, msg);
      return;
    case sim::MsgType::kExecResult:
      handle_result_batch(node, msg);
      return;
    case sim::MsgType::kTwoPcPrepare:
    case sim::MsgType::kTwoPcCommit:
      handle_two_pc(node, msg);
      return;
    case sim::MsgType::kEpochVrf:
      handle_epoch_contribution(msg);
      return;
    case sim::MsgType::kBatchFrame:
      handle_batch_frame(node, msg);
      return;
    case sim::MsgType::kSubTxResult: {
      // kNoGlobalLogic continuation relay.
      const auto& p = sim::payload_as<ContinuationPayload>(msg);
      if (p.epoch != epoch_) return;  // straddled a reshuffle; tx was requeued
      const Assignment asg = lattice_->assignment(node);
      if (asg.shard == p.target) {
        ShardEngine& eng = *shards_[p.target.value];
        auto it = eng.continuation_dedup.find(p.tx->hash);
        if (it == eng.continuation_dedup.end() || it->second < p.next_step) {
          eng.continuation_dedup[p.tx->hash] = p.next_step;
          eng.visits.push_back(ExecVisit{p.tx, p.gathered, p.next_step});
        }
        if (p.hops > 0) {
          // Member of subgroup(target, channel): rebroadcast into the shard.
          sim::Message fwd = msg;
          auto fp = std::make_shared<ContinuationPayload>(p);
          fp->hops = 0;
          fwd.payload = std::move(fp);
          net_.broadcast(sim::BroadcastKind::kRelay, node, lattice_->shard_members(p.target),
                         relay_rumor_id(fwd), fwd, sim::TrafficClass::kIntraShard);
        }
      }
      return;
    }
    default:
      break;
  }
  // BFT traffic: offer to both replicas; group tags filter.
  shard_replicas_[node.value]->on_message(msg);
  if (channel_replicas_[node.value]) channel_replicas_[node.value]->on_message(msg);
}

void JengaSystem::handle_client_tx(NodeId node, const sim::Message& msg) {
  const auto& p = sim::payload_as<TxPayload>(msg);
  const TxPtr& tx = p.tx;
  const Assignment asg = lattice_->assignment(node);
  ShardEngine& eng = *shards_[asg.shard.value];
  bool ingested = false;  // did this node have any role for the tx?

  if (tx->kind == TxKind::kTransfer) {
    if (ledger::shard_of_account(tx->sender, config_.num_shards) == asg.shard) {
      ingested = true;
      if (!eng.seen_client.contains(tx->hash)) {
        eng.seen_client.insert(tx->hash);
        eng.transfers.push_back(TransferItem{tx, 0});
      }
    }
  } else {
    const auto involved = involved_shards(*tx);
    const bool shard_involved =
        std::find(involved.begin(), involved.end(), asg.shard) != involved.end();
    if (shard_involved) {
      ingested = true;
      if (!eng.seen_client.contains(tx->hash)) {
        eng.seen_client.insert(tx->hash);
        eng.determine.push_back(DetermineItem{tx, 0});
      }
    }

    switch (config_.pipeline) {
      case Pipeline::kFull: {
        const ChannelId target = ledger::channel_of_tx(tx->hash, config_.num_shards);
        if (asg.channel == target) {
          ingested = true;
          channels_[target.value]->gather.on_tx(tx, involved.size(), sim_.now());
        }
        break;
      }
      case Pipeline::kNoLattice: {
        const ShardId exec{
            static_cast<std::uint32_t>(tx->hash.prefix_u64() % config_.num_shards)};
        if (asg.shard == exec) {
          ingested = true;
          eng.gather.on_tx(tx, involved.size(), sim_.now());
        }
        break;
      }
      case Pipeline::kNoGlobalLogic: {
        const ShardId first = ledger::shard_of_contract(
            tx->contracts[tx->steps.front().contract_slot], config_.num_shards);
        if (asg.shard == first) {
          ingested = true;
          eng.gather.on_tx(tx, involved.size(), sim_.now());
        }
        break;
      }
    }
  }

  // A client copy in flight across an epoch cutover can land on a node whose
  // new assignment gives it no role for this tx (the submit-time contact
  // moved).  Re-route it once to the current contacts so the submission is
  // not lost; every downstream ingest point dedups, so a crossed requeue is
  // harmless.  Unreachable while reconfiguration is off (assignments never
  // change), so legacy runs are untouched.
  if (!ingested && tracker_.contains(tx->hash) && rerouted_.insert(tx->hash).second) {
    if (tx->kind == TxKind::kTransfer) {
      net_.client_send(shard_contact(ledger::shard_of_account(tx->sender, config_.num_shards)),
                       msg);
      return;
    }
    for (ShardId s : involved_shards(*tx)) net_.client_send(shard_contact(s), msg);
    if (config_.pipeline == Pipeline::kFull) {
      net_.client_send(channel_contact(ledger::channel_of_tx(tx->hash, config_.num_shards)),
                       msg);
    } else if (config_.pipeline == Pipeline::kNoLattice) {
      const ShardId exec{
          static_cast<std::uint32_t>(tx->hash.prefix_u64() % config_.num_shards)};
      net_.client_send(shard_contact(exec), msg);
    } else {
      const ShardId first = ledger::shard_of_contract(
          tx->contracts[tx->steps.front().contract_slot], config_.num_shards);
      net_.client_send(shard_contact(first), msg);
    }
  }
}

void JengaSystem::handle_grant_batch(NodeId node, const sim::Message& msg) {
  const auto& p = sim::payload_as<GrantBatchPayload>(msg);
  if (p.epoch != epoch_) return;  // straddled a reshuffle; its txs were requeued
  const Assignment asg = lattice_->assignment(node);
  const std::uint64_t key =
      (static_cast<std::uint64_t>(p.source.value) << 40) ^ p.shard_height;

  // Grants for an entry that already expired tx-less get an abort answer (so
  // the granting shard's Phase-1 locks release) instead of resurrecting it.
  auto ingest_grants = [&](GatherUnit& gather, std::uint32_t responder_group) {
    const SimTime now = sim_.now();
    for (const auto& g : p.grants) {
      if (gather.expired_dead.contains(g.tx_hash)) {
        answer_dead_grant(gather, responder_group, node, g);
        continue;
      }
      gather.on_grant(g, now);
    }
  };

  switch (config_.pipeline) {
    case Pipeline::kFull: {
      // Delivered inside the execution channel; ingest once per batch.
      ChannelEngine& ch = *channels_[asg.channel.value];
      if (ch.grant_dedup.contains(key)) return;
      if (try_park_for_pooled_verify(node, msg, channel_tag(asg.channel),
                                     grant_park_key(key), p.cert))
        return;
      if (!verify_relay_cert(p.cert, /*channel_group=*/false, p.source.value)) return;
      ch.grant_dedup.insert(key);
      ingest_grants(ch.gather, ch.id.value);
      break;
    }
    case Pipeline::kNoLattice: {
      // Arrived via client relay at the execution shard's contact node.
      ShardEngine& eng = *shards_[asg.shard.value];
      if (eng.grant_dedup.contains(key)) return;
      if (try_park_for_pooled_verify(node, msg, shard_tag(asg.shard),
                                     grant_park_key(key), p.cert))
        return;
      if (!verify_relay_cert(p.cert, /*channel_group=*/false, p.source.value)) return;
      eng.grant_dedup.insert(key);
      ingest_grants(eng.gather, eng.id.value);
      break;
    }
    case Pipeline::kNoGlobalLogic: {
      // Leg 1 lands on all channel members; only nodes of the target shard
      // ingest, and subgroup(relay_target, channel) rebroadcasts (leg 2).
      if (asg.shard.value != p.relay_target.value) return;
      ShardEngine& eng = *shards_[asg.shard.value];
      if (p.hops > 0) {
        auto fp = std::make_shared<GrantBatchPayload>(p);
        fp->hops = 0;
        sim::Message fwd = msg;
        fwd.payload = std::move(fp);
        net_.broadcast(sim::BroadcastKind::kRelay, node, lattice_->shard_members(asg.shard),
                       relay_rumor_id(fwd), fwd, sim::TrafficClass::kIntraShard);
      }
      if (eng.grant_dedup.contains(key)) return;
      if (try_park_for_pooled_verify(node, msg, shard_tag(asg.shard),
                                     grant_park_key(key), p.cert))
        return;
      if (!verify_relay_cert(p.cert, /*channel_group=*/false, p.source.value)) return;
      eng.grant_dedup.insert(key);
      ingest_grants(eng.gather, eng.id.value);
      break;
    }
  }
}

void JengaSystem::answer_dead_grant(GatherUnit& gather, std::uint32_t responder_group,
                                    NodeId node, const StateGrant& grant) {
  std::uint64_t key_state =
      grant.tx_hash.prefix_u64() ^ (0x9E3779B9ULL * (grant.source.value + 1));
  const std::uint64_t key = splitmix64(key_state);
  if (!gather.late_abort_sent.insert(key).second) return;  // answered already
  auto rp = std::make_shared<ResultBatchPayload>();
  rp->source = ChannelId{responder_group};
  // Synthetic batch height outside the real consensus-height space, so the
  // shard-side result dedup never collides with a real (source, height) pair.
  rp->channel_height = (1ULL << 40) + gather.late_abort_seq++;
  rp->epoch = epoch_;
  rp->target = grant.source;
  ExecResult r;
  r.tx_hash = grant.tx_hash;
  r.ok = false;
  rp->results.push_back(std::move(r));
  sim::Message m;
  m.type = sim::MsgType::kExecResult;
  m.from = node;
  m.size_bytes = rp->wire_size();
  m.payload = std::move(rp);
  relay_gossip(node, lattice_->shard_members(grant.source), m);
  if (lattice_->assignment(node).shard == grant.source) on_node_message(node, m);
}

void JengaSystem::handle_result_batch(NodeId node, const sim::Message& msg) {
  const auto& p = sim::payload_as<ResultBatchPayload>(msg);
  if (p.epoch != epoch_) return;  // straddled a reshuffle; its txs were requeued
  const Assignment asg = lattice_->assignment(node);
  if (asg.shard != p.target) return;  // channel witnesses just observe
  ShardEngine& eng = *shards_[asg.shard.value];
  if (p.hops > 0) {
    // Member of subgroup(target, channel): rebroadcast inside the shard.
    auto fp = std::make_shared<ResultBatchPayload>(p);
    fp->hops = 0;
    sim::Message fwd = msg;
    fwd.payload = std::move(fp);
    net_.broadcast(sim::BroadcastKind::kRelay, node, lattice_->shard_members(p.target),
                   relay_rumor_id(fwd), fwd, sim::TrafficClass::kIntraShard);
  }
  std::uint64_t key = 0x9E3779B97F4A7C15ULL * (p.source.value + 1) +
                      0xC2B2AE3D27D4EB4FULL * (p.target.value + 1) + p.channel_height;
  key = splitmix64(key);
  if (eng.result_dedup.contains(key)) return;
  if (try_park_for_pooled_verify(node, msg, shard_tag(asg.shard), key, p.cert)) return;
  // Results are certified by the group that decided them: the channel in the
  // full pipeline, a state shard otherwise.
  if (!verify_relay_cert(p.cert, config_.pipeline == Pipeline::kFull, p.source.value)) return;
  eng.result_dedup.insert(key);
  for (const auto& r : p.results) {
    CommitItem item;
    item.ok = r.ok;
    for (const auto& [s, st] : r.per_shard_updates) {
      if (s == eng.id) item.updates = st;  // this shard's slice only
    }
    const auto tx_it = tx_for_result_.find(r.tx_hash);
    if (tx_it == tx_for_result_.end()) continue;  // already fully finished
    item.tx = tx_it->second;
    eng.commits.push_back(std::move(item));
  }
}

Hash256 JengaSystem::twopc_key(const char* tag, const Hash256& h, std::uint32_t attempt) {
  // Attempt 0 hashes exactly the pre-recovery key, so runs that never retry
  // keep bit-identical dedup state.
  if (attempt == 0) return crypto::sha256_tagged(tag, std::span(h.bytes));
  std::array<std::uint8_t, 36> buf;
  std::copy(h.bytes.begin(), h.bytes.end(), buf.begin());
  buf[32] = static_cast<std::uint8_t>(attempt);
  buf[33] = static_cast<std::uint8_t>(attempt >> 8);
  buf[34] = static_cast<std::uint8_t>(attempt >> 16);
  buf[35] = static_cast<std::uint8_t>(attempt >> 24);
  return crypto::sha256_tagged(tag, std::span<const std::uint8_t>(buf));
}

void JengaSystem::send_two_pc(NodeId from, ShardId dest, const sim::Message& msg) {
  const NodeId primary = shard_contact(dest);
  if (detector_ != nullptr && detector_->armed() && detector_->suspect(from, primary)) {
    const auto& members = lattice_->shard_members(dest);
    if (members.size() > 1) {
      // Hedge: duplicate the leg to the deterministically-next member of the
      // destination group (no rng draw).  Both copies land inside the right
      // shard, so whichever arrives second dies on the attempt-scoped dedup.
      std::size_t slot = 0;
      for (std::size_t i = 0; i < members.size(); ++i)
        if (members[i].value == primary.value) {
          slot = i;
          break;
        }
      const NodeId backup = members[(slot + 1) % members.size()];
      ++recovery_stats_.hedged_sends;
      if (telemetry_ != nullptr)
        telemetry_->registry.counter("recovery.hedged_sends").inc();
      net_.send(from, backup, msg, sim::TrafficClass::kCrossShard);
    }
  }
  net_.send(from, primary, msg, sim::TrafficClass::kCrossShard);
}

void JengaSystem::handle_two_pc(NodeId node, const sim::Message& msg) {
  const auto& p = sim::payload_as<TwoPcPayload>(msg);
  const Assignment asg = lattice_->assignment(node);
  // 2PC legs are deliberately not epoch-tagged (a prepared transfer already
  // debited the sender), but a reshuffle can move the contact the leg was
  // addressed to; forward it to a current member of the shard that must
  // process this stage.  Normal operation never takes this hop.
  const ShardId want = p.commit
                           ? ledger::shard_of_account(p.tx->sender, config_.num_shards)
                           : ledger::shard_of_account(p.tx->to, config_.num_shards);
  if (asg.shard != want) {
    send_two_pc(node, want, msg);
    return;
  }
  if (p.op != TwoPcPayload::Op::kLeg) {
    handle_two_pc_recovery(node, msg);
    return;
  }
  ShardEngine& eng = *shards_[asg.shard.value];
  const std::uint8_t stage = p.commit ? 2 : 1;
  // Dedup: a (tx, stage, attempt) triple enters a shard's queue once.
  const Hash256 dk = twopc_key(p.commit ? "2pc-c" : "2pc-p", p.tx->hash, p.attempt);
  if (eng.seen_client.contains(dk)) return;
  eng.seen_client.insert(dk);
  eng.transfers.push_back(TransferItem{p.tx, stage, p.attempt});
}

void JengaSystem::handle_two_pc_recovery(NodeId node, const sim::Message& msg) {
  const auto& p = sim::payload_as<TwoPcPayload>(msg);
  const Assignment asg = lattice_->assignment(node);
  ShardEngine& eng = *shards_[asg.shard.value];
  using Op = TwoPcPayload::Op;
  const Hash256& h = p.tx->hash;
  const ShardId sender_shard = ledger::shard_of_account(p.tx->sender, config_.num_shards);

  auto reply = [&](Op op) {
    auto pp = std::make_shared<TwoPcPayload>();
    pp->tx = p.tx;
    pp->commit = true;  // routes to the coordinator's (sender) shard
    pp->op = op;
    pp->attempt = p.attempt;
    sim::Message m;
    m.type = sim::MsgType::kTwoPcCommit;
    m.from = node;
    m.size_bytes = 160;
    m.payload = std::move(pp);
    send_two_pc(node, sender_shard, m);
  };

  switch (p.op) {
    case Op::kProbe: {
      // Destination side.  Credit already applied -> the ack must have been
      // lost; re-send it (the coordinator's "2pc-c" dedup absorbs a race
      // with the original).  Otherwise adopt the probe as the prepare,
      // unless the round was already queued or force-settled.
      if (eng.twopc_credited.contains(twopc_key("2pc-done", h, p.attempt))) {
        reply(Op::kLeg);  // a plain re-ack; stage-2 dedup absorbs any race
        break;
      }
      if (eng.twopc_tombstones.contains(twopc_key("2pc-tomb", h, p.attempt))) break;
      const Hash256 dk = twopc_key("2pc-p", h, p.attempt);
      if (eng.seen_client.contains(dk)) break;  // queued (parked behind a lock)
      eng.seen_client.insert(dk);
      eng.transfers.push_back(TransferItem{p.tx, 1, p.attempt});
      break;
    }
    case Op::kAbortQuery: {
      // Destination side: settle the attempt NOW, one way or the other.
      if (eng.twopc_credited.contains(twopc_key("2pc-done", h, p.attempt))) {
        reply(Op::kCredited);
        break;
      }
      // Tombstone first: after this reply the coordinator refunds the debit,
      // so the credit must be dead even if the original prepare is still in
      // flight (dedup key) or parked in the transfer queue (stage-1 check).
      eng.twopc_tombstones.insert(twopc_key("2pc-tomb", h, p.attempt));
      eng.seen_client.insert(twopc_key("2pc-p", h, p.attempt));
      reply(Op::kNeverCredited);
      break;
    }
    case Op::kCredited: {
      // Coordinator side: the destination vouches the credit applied — treat
      // this as the lost ack (unless the real one landed meanwhile).
      const auto it = twopc_inflight_.find(h);
      if (it == twopc_inflight_.end() || it->second.attempt != p.attempt) break;
      const Hash256 dk = twopc_key("2pc-c", h, p.attempt);
      if (eng.seen_client.contains(dk)) break;
      eng.seen_client.insert(dk);
      ++recovery_stats_.acks_recovered;
      if (telemetry_ != nullptr)
        telemetry_->registry.counter("recovery.acks_recovered").inc();
      eng.transfers.push_back(TransferItem{p.tx, 2, p.attempt});
      break;
    }
    case Op::kNeverCredited: {
      // Coordinator side: the attempt is dead (tombstoned at the
      // destination).  Refund the debit; the stage-3 item retries the
      // transfer as a fresh attempt or terminally aborts it.
      const auto it = twopc_inflight_.find(h);
      if (it == twopc_inflight_.end() || it->second.attempt != p.attempt) break;
      twopc_inflight_.erase(it);
      // A kCredited ack for this attempt can no longer exist (the
      // destination only answers never-credited when nothing was applied,
      // and the tombstone blocks any later credit), so erasing here cannot
      // strand a commit.
      eng.transfers.push_back(TransferItem{p.tx, 3, p.attempt});
      break;
    }
    case Op::kLeg:
      break;
  }
}

// ---------------------------------------------------------------------------
// Execution (the VM side of Phase 2)
// ---------------------------------------------------------------------------

std::vector<std::pair<TxPtr, ExecResult>> JengaSystem::run_gathered_batch(
    GatherUnit& gather, std::size_t limit) {
  const std::size_t count = std::min(limit, gather.ready.size());
  std::vector<std::pair<TxPtr, ExecResult>> out(count);

  // Per-batch logic resolution: each distinct contract id is looked up once,
  // instead of once per transaction that touches it.
  std::unordered_map<ContractId, const vm::ContractLogic*> logic_memo;
  std::vector<exec::Task> tasks;
  std::vector<std::size_t> task_slot;  // task index -> out index

  for (std::size_t i = 0; i < count; ++i) {
    const Hash256& h = gather.ready[i];
    ExecResult& result = out[i].second;
    result.tx_hash = h;
    const auto it = gather.pending.find(h);
    if (it == gather.pending.end()) {
      result.ok = false;
      continue;
    }
    auto& pending = it->second;
    out[i].first = pending.tx;
    if (pending.abort || !pending.tx) {
      result.ok = false;
      continue;
    }
    const Transaction& tx = *pending.tx;

    // Fee prologue: charge the declared sender inside the bundle.  The
    // pending entry keeps its gathered copy (re-proposals re-execute).
    PortableState input = pending.gathered;
    auto fee_it = input.balances.find(tx.sender);
    if (fee_it == input.balances.end() || fee_it->second < tx.fee) {
      result.ok = false;
      continue;
    }
    fee_it->second -= tx.fee;

    exec::Task task;
    task.id = tx.hash;
    task.sender = tx.sender;
    task.logic.reserve(tx.contracts.size());
    for (auto c : tx.contracts) {
      auto [lit, inserted] = logic_memo.try_emplace(c, nullptr);
      if (inserted) lit->second = all_logic_.get(c);
      task.logic.push_back(lit->second);
    }
    task.steps_view = tx.steps;
    task.limits.gas_limit = tx.gas_limit;
    task.input = std::move(input);
    task.access = exec::declared_access(tx);
    tasks.push_back(std::move(task));
    task_slot.push_back(i);
  }

  // Phase-1 locks make the gathered bundles disjoint, so every schedule the
  // engine finds commits to the same per-tx outputs; effects are applied in
  // canonical ready order below regardless of worker interleaving.
  std::vector<exec::TaskResult> results = exec_engine_->run_batch(std::move(tasks));
  for (std::size_t k = 0; k < results.size(); ++k) {
    ExecResult& result = out[task_slot[k]].second;
    if (!results[k].vm.ok()) {
      result.ok = false;
      continue;
    }
    result.per_shard_updates = split_per_shard(std::move(results[k].output));
  }
  return out;
}

std::vector<std::pair<ShardId, PortableState>> JengaSystem::split_per_shard(
    PortableState updated) const {
  std::map<std::uint32_t, PortableState> slices;
  for (auto& [c, st] : updated.contracts)
    slices[ledger::shard_of_contract(c, config_.num_shards).value].contracts[c] = std::move(st);
  for (auto& [a, bal] : updated.balances)
    slices[ledger::shard_of_account(a, config_.num_shards).value].balances[a] = bal;
  std::vector<std::pair<ShardId, PortableState>> out;
  out.reserve(slices.size());
  for (auto& [s, st] : slices) out.emplace_back(ShardId{s}, std::move(st));
  return out;
}

// ---------------------------------------------------------------------------
// Shard proposal assembly
// ---------------------------------------------------------------------------

namespace {

/// Proposal value wrapper: digest + wire size over the batch contents.
consensus::ConsensusValue wrap_value(std::string_view tag, std::uint64_t group,
                                     std::uint64_t height, std::vector<Hash256> item_hashes,
                                     std::uint32_t size_bytes,
                                     std::shared_ptr<const sim::Payload> data) {
  consensus::ConsensusValue v;
  crypto::Sha256 h;
  h.update(tag);
  h.update_u64(group);
  h.update_u64(height);
  for (const auto& x : item_hashes) h.update(x);
  v.digest = h.finish();
  v.size_bytes = size_bytes;
  v.data = std::move(data);
  return v;
}

}  // namespace

std::optional<consensus::ConsensusValue> JengaSystem::shard_propose(ShardEngine& eng,
                                                                    std::uint64_t height) {
  // Watchdog piggybacks on proposal cadence: no dedicated timer, so idle
  // simulations still drain (run_until_idle), yet any inflight 2PC round is
  // re-examined at least once per consensus round.
  twopc_watchdog_scan();
  if (config_.pipeline != Pipeline::kFull)
    eng.gather.expire(sim_.now(), config_.pending_timeout);

  if (config_.pipeline == Pipeline::kNoGlobalLogic) {
    // Fully gathered transactions start their multi-round execution here
    // (this shard is the first step's home).  Draining queue-to-queue is
    // idempotent across re-proposals: items stay ordered either way.
    while (!eng.gather.ready.empty()) {
      const Hash256 h = eng.gather.ready.front();
      eng.gather.ready.pop_front();
      auto it = eng.gather.pending.find(h);
      if (it == eng.gather.pending.end()) continue;
      if (!it->second.tx) {
        // Expired with the tx never seen: fan an abort to the shards that
        // granted (recorded sorted for determinism) via the decision.
        std::vector<std::uint32_t> sources(it->second.reported.begin(),
                                           it->second.reported.end());
        std::sort(sources.begin(), sources.end());
        eng.dead_gathers.emplace_back(h, std::move(sources));
        eng.gather.finish_dead(h);
        continue;
      }
      eng.visits.push_back(
          ExecVisit{it->second.tx, std::move(it->second.gathered), 0, it->second.abort});
      eng.gather.finish(h);
    }
  }

  auto payload = std::make_shared<ShardBlockPayload>();
  payload->shard = eng.id;
  std::size_t budget = config_.max_block_items;
  std::vector<Hash256> hashes;
  std::uint32_t size = 128;

  // During an epoch drain window shards stop admitting new Phase-1 work:
  // queued determinations wait (the boundary requeues their txs), while
  // everything already granted runs down through the other queues.
  if (!draining_) {
    for (std::size_t i = 0; i < eng.determine.size() && budget > 0; ++i, --budget) {
      payload->determine.push_back(eng.determine[i]);
      hashes.push_back(eng.determine[i].tx->hash);
      size += eng.determine[i].tx->wire_size();
    }
  }
  for (std::size_t i = 0; i < eng.commits.size() && budget > 0; ++i, --budget) {
    payload->commits.push_back(eng.commits[i]);
    hashes.push_back(eng.commits[i].tx->hash);
    size += eng.commits[i].wire_size();
  }
  for (std::size_t i = 0; i < eng.transfers.size() && budget > 0; ++i, --budget) {
    payload->transfers.push_back(eng.transfers[i]);
    hashes.push_back(eng.transfers[i].tx->hash);
    size += ledger::kTxWireBytes;
  }
  for (std::size_t i = 0; i < eng.visits.size() && budget > 0; ++i, --budget) {
    payload->visits.push_back(eng.visits[i]);
    hashes.push_back(eng.visits[i].tx->hash);
    size += 128 + eng.visits[i].gathered.wire_size();
  }
  for (std::size_t i = 0; i < eng.dead_gathers.size() && budget > 0; ++i, --budget) {
    payload->dead_gathers.push_back(eng.dead_gathers[i]);
    hashes.push_back(eng.dead_gathers[i].first);
    size += 96;
  }
  if (config_.pipeline == Pipeline::kNoLattice) {
    // This shard is also an execution site: execute gathered-and-ready txs as
    // one conflict-scheduled batch (src/exec/), committing in ready order.
    auto batch = run_gathered_batch(eng.gather, budget);
    budget -= batch.size();
    for (auto& [tx, result] : batch) {
      hashes.push_back(result.tx_hash);
      size += 64 + result.wire_size();
      payload->exec_entries.emplace_back(std::move(tx), std::move(result));
    }
  }

  if (payload->item_count() == 0) return std::nullopt;
  const std::uint64_t tag = shard_tag(eng.id);
  auto value = wrap_value("jenga/shard-block", tag, height, std::move(hashes), size, payload);
  value.exec_delay =
      kLightItemCpu * static_cast<SimTime>(payload->determine.size() +
                                           payload->commits.size() +
                                           payload->transfers.size() +
                                           payload->dead_gathers.size()) +
      kExecItemCpu *
          static_cast<SimTime>(payload->visits.size() + payload->exec_entries.size());
  return value;
}

// ---------------------------------------------------------------------------
// Shard decision processing
// ---------------------------------------------------------------------------

void JengaSystem::shard_decide(ShardEngine& eng, NodeId node, std::uint64_t height,
                               const consensus::ConsensusValue& value,
                               const consensus::QuorumCert& cert) {
  note_decide(shard_tag(eng.id), height, value.digest);
  const auto* payload = dynamic_cast<const ShardBlockPayload*>(value.data.get());
  if (payload == nullptr) return;

  if (height >= eng.next_process_height) {
    eng.next_process_height = height + 1;
    const SimTime now = sim_.now();
    ShardEngine::Outcome outcome;

    // --- Phase 1: state determination ----------------------------------
    // Group grants by the destination that must receive them.
    std::map<std::uint32_t, GrantBatchPayload> batches;  // key: channel or shard
    for (const DetermineItem& det : payload->determine) {
      const TxPtr& tx = det.tx;
      // The tx may have resolved while this item waited in the mempool (e.g.
      // another shard exhausted its lock retries and the channel's abort
      // already reached us).  Granting now would lock state for a dead tx —
      // with no commit/abort ever coming to release it.  `finished` covers
      // the window where this shard settled the tx but the tracker still
      // waits on other shards.
      if (!tracker_.contains(tx->hash) || eng.finished.contains(tx->hash)) continue;
      StateGrant grant;
      grant.tx_hash = tx->hash;
      grant.source = eng.id;
      std::vector<ContractId> local_contracts;
      std::vector<AccountId> local_accounts;
      for (auto c : tx->contracts)
        if (ledger::shard_of_contract(c, config_.num_shards) == eng.id)
          local_contracts.push_back(c);
      for (auto a : tx->accounts)
        if (ledger::shard_of_account(a, config_.num_shards) == eng.id)
          local_accounts.push_back(a);

      bool ok = true;
      for (auto c : local_contracts) {
        if (!eng.locks.lock_contract(c, tx->hash)) {
          ok = false;
          break;
        }
      }
      if (ok) {
        for (auto a : local_accounts) {
          if (!eng.locks.lock_account(a, tx->hash)) {
            ok = false;
            break;
          }
        }
      }
      if (!ok) {
        // Partial acquisition: drop whatever this tx managed to lock.
        eng.locks.release_all(tx->hash);
        if (det.retries < config_.max_lock_retries) {
          // Locked by another in-flight tx: retry from the mempool in a
          // later block rather than aborting outright.
          eng.determine.push_back(DetermineItem{tx, det.retries + 1});
          continue;
        }
        grant.available = false;
      } else {
        for (auto c : local_contracts) {
          const auto* st = eng.store.contract_state(c);
          grant.states.contracts[c] = st ? *st : ledger::ContractState{};
        }
        for (auto a : local_accounts)
          grant.states.balances[a] = eng.store.balance(a).value_or(0);
      }

      if (telemetry_ != nullptr)
        telemetry_->tracer.phase_event(tx->hash, telemetry::Phase::kStateLock,
                                       eng.id.value, now);

      std::uint32_t dest = 0;
      switch (config_.pipeline) {
        case Pipeline::kFull:
          dest = ledger::channel_of_tx(tx->hash, config_.num_shards).value;
          break;
        case Pipeline::kNoLattice:
          dest = static_cast<std::uint32_t>(tx->hash.prefix_u64() % config_.num_shards);
          break;
        case Pipeline::kNoGlobalLogic:
          dest = ledger::shard_of_contract(tx->contracts[tx->steps.front().contract_slot],
                                           config_.num_shards)
                     .value;
          break;
      }
      auto& batch = batches[dest];
      batch.source = eng.id;
      batch.shard_height = height;
      batch.epoch = epoch_;
      batch.cert = cert;  // receivers verify before ingesting
      batch.grants.push_back(std::move(grant));
    }

    for (auto& [dest, batch] : batches) {
      auto bp = std::make_shared<GrantBatchPayload>(std::move(batch));
      sim::Message msg;
      msg.type = sim::MsgType::kStateGrant;
      msg.from = node;
      msg.size_bytes = bp->wire_size();
      switch (config_.pipeline) {
        case Pipeline::kFull:
          msg.payload = std::move(bp);
          outcome.to_channels.emplace_back(ChannelId{dest}, std::move(msg));
          break;
        case Pipeline::kNoLattice:
          msg.payload = std::move(bp);
          if (ShardId{dest} == eng.id) {
            // The execution site is this very shard: ingest locally.
            for (const auto& g :
                 sim::payload_as<GrantBatchPayload>(msg).grants)
              eng.gather.on_grant(g, now);
          } else {
            net_.send_via_relay(node, shard_contact(ShardId{dest}), msg,
                                sim::TrafficClass::kCrossShard);
          }
          break;
        case Pipeline::kNoGlobalLogic: {
          bp->relay_target = ShardId{dest};
          bp->hops = 1;
          msg.payload = std::move(bp);
          if (ShardId{dest} == eng.id) {
            for (const auto& g : sim::payload_as<GrantBatchPayload>(msg).grants)
              eng.gather.on_grant(g, now);
          } else {
            // Travel via the subgroup into each tx's channel.  All grants in
            // one batch share the same first shard; their channels can
            // differ, so route per grant's tx channel — use the first one
            // (batches are per destination shard; channel relaying only
            // needs SOME channel that overlaps both shards, and every
            // channel does).  Pick the batch's canonical relay channel from
            // the destination shard id for determinism.
            const ChannelId via{dest % config_.num_shards};
            outcome.to_channels.emplace_back(via, std::move(msg));
          }
          break;
        }
      }
    }

    // --- Phase 3: commits ----------------------------------------------
    std::vector<Hash256> committed;
    std::uint64_t body_bytes = 0;
    for (const CommitItem& item : payload->commits) {
      const Transaction& tx = *item.tx;
      // Unlock everything this shard holds for the tx.  Release by owner, not
      // by enumerating the footprint: a footprint walk silently leaks any
      // lock the enumeration misses, and a leaked lock wedges that state key
      // forever.
      eng.locks.release_all(tx.hash);
      // One outcome per tx per shard: under heavy loss a settled tx can come
      // back (a resurrected gather entry re-expiring, say), and applying a
      // second outcome double-counts the fee or overwrites newer state with
      // a stale snapshot.
      if (!eng.finished.insert(tx.hash).second) continue;
      if (telemetry_ != nullptr)
        telemetry_->tracer.phase_event(tx.hash, telemetry::Phase::kCommitApply,
                                       eng.id.value, now);

      const bool sender_local =
          ledger::shard_of_account(tx.sender, config_.num_shards) == eng.id;
      if (item.ok) {
        for (const auto& [c, st] : item.updates.contracts)
          eng.store.set_contract_state(c, st);
        for (const auto& [a, bal] : item.updates.balances) eng.store.set_balance(a, bal);
        if (sender_local) stats_.fees_charged += tx.fee;  // deducted inside updates
        committed.push_back(tx.hash);
        body_bytes += tx.wire_size();
      } else if (sender_local) {
        // Abort: the fee is still deducted (paper §V-C, Transaction Fee).
        // If another in-flight tx holds the sender's account, its gathered
        // snapshot predates this deduction and its commit would silently
        // overwrite it — defer the charge until the lock clears.
        if (eng.locks.account_locked(tx.sender)) {
          eng.deferred_abort_fees.emplace_back(tx.sender, tx.fee);
        } else {
          const std::uint64_t bal = eng.store.balance(tx.sender).value_or(0);
          const std::uint64_t charge = std::min(bal, tx.fee);
          eng.store.set_balance(tx.sender, bal - charge);
          stats_.fees_charged += charge;
        }
      }
      tx_shard_finished(tx.hash, item.ok);
    }

    // Charge deferred abort fees whose account lock has since been released
    // (commits above are the only place locks clear, so retry per block).
    for (std::size_t n = eng.deferred_abort_fees.size(); n-- > 0;) {
      const auto [acct, fee] = eng.deferred_abort_fees.front();
      eng.deferred_abort_fees.pop_front();
      if (eng.locks.account_locked(acct)) {
        eng.deferred_abort_fees.emplace_back(acct, fee);
        continue;
      }
      const std::uint64_t bal = eng.store.balance(acct).value_or(0);
      const std::uint64_t charge = std::min(bal, fee);
      eng.store.set_balance(acct, bal - charge);
      stats_.fees_charged += charge;
    }

    // --- Transfers (traditional 2PC path, §V-D) -------------------------
    for (const TransferItem& item : payload->transfers) {
      const Transaction& tx = *item.tx;
      const ShardId dest = ledger::shard_of_account(tx.to, config_.num_shards);
      if (telemetry_ != nullptr) {
        // 2PC stages map onto the phase partition: debit = lock acquisition,
        // credit = the "execution", finalize = commit application.
        const telemetry::Phase ph = item.stage == 0   ? telemetry::Phase::kStateLock
                                    : item.stage == 1 ? telemetry::Phase::kExecute
                                                      : telemetry::Phase::kCommitApply;
        telemetry_->tracer.phase_event(tx.hash, ph, eng.id.value, now);
      }
      switch (item.stage) {
        case 0: {  // debit at the sender's shard
          if (draining_) break;  // parked: the epoch boundary requeues it
          // Transfers mutate balances directly, so they must honor the same
          // Phase-1 account locks that contract commits write gathered
          // snapshots back under — a debit/credit interleaved between gather
          // and commit would be silently undone by the absolute write-back.
          // Parked behind the lock: re-propose in a later block (the non-empty
          // queue keeps the shard proposing until the holder commits/aborts).
          if (eng.locks.account_locked(tx.sender) ||
              (dest == eng.id && eng.locks.account_locked(tx.to))) {
            eng.transfers.push_back(item);
            break;
          }
          const auto bal = eng.store.balance(tx.sender);
          if (!bal || *bal < tx.amount) {
            tx_shard_finished(tx.hash, false);
            if (dest != eng.id) tx_shard_finished(tx.hash, false);
            break;
          }
          eng.store.set_balance(tx.sender, *bal - tx.amount);
          if (dest == eng.id) {
            eng.store.set_balance(tx.to, eng.store.balance(tx.to).value_or(0) + tx.amount);
            committed.push_back(tx.hash);
            body_bytes += tx.wire_size();
            tx_shard_finished(tx.hash, true);
          } else {
            // The debit is applied; until the 2PC round finalizes the tx must
            // not be force-aborted (the cutover waits for this set to empty).
            TwoPcEntry ent;
            ent.since = sim_.now();
            ent.attempt = item.attempt;
            ent.coordinator = node;
            ent.tx = item.tx;
            twopc_inflight_.insert_or_assign(tx.hash, std::move(ent));
            auto pp = std::make_shared<TwoPcPayload>();
            pp->tx = item.tx;
            pp->commit = false;
            pp->attempt = item.attempt;
            sim::Message m;
            m.type = sim::MsgType::kTwoPcPrepare;
            m.from = node;
            m.size_bytes = ledger::kTxWireBytes + 96;
            m.payload = std::move(pp);
            send_two_pc(node, dest, m);
          }
          break;
        }
        case 1: {  // credit at the destination shard
          // A force-abort already settled this attempt as never-credited:
          // the coordinator refunded the debit, so crediting now would mint.
          if (eng.twopc_tombstones.contains(twopc_key("2pc-tomb", tx.hash, item.attempt)))
            break;
          if (eng.locks.account_locked(tx.to)) {  // same hazard as the debit
            eng.transfers.push_back(item);
            break;
          }
          eng.store.set_balance(tx.to, eng.store.balance(tx.to).value_or(0) + tx.amount);
          eng.twopc_credited.insert(twopc_key("2pc-done", tx.hash, item.attempt));
          committed.push_back(tx.hash);
          body_bytes += tx.wire_size();
          tx_shard_finished(tx.hash, true);
          auto pp = std::make_shared<TwoPcPayload>();
          pp->tx = item.tx;
          pp->commit = true;
          pp->attempt = item.attempt;
          sim::Message m;
          m.type = sim::MsgType::kTwoPcCommit;
          m.from = node;
          m.size_bytes = 160;
          m.payload = std::move(pp);
          send_two_pc(node, ledger::shard_of_account(tx.sender, config_.num_shards), m);
          break;
        }
        case 2: {  // finalize at the sender's shard after the ack
          const auto it2 = twopc_inflight_.find(tx.hash);
          // Stale ack of an attempt the ladder already settled: drop.  The
          // attempt-scoped dedup key upstream makes this unreachable in
          // practice; the guard keeps finalize idempotent regardless.
          if (it2 == twopc_inflight_.end() || it2->second.attempt != item.attempt) break;
          if (it2->second.flagged) {
            ++recovery_stats_.resolved;
            recovery_stats_.last_resolved_at = sim_.now();
            if (telemetry_ != nullptr)
              telemetry_->registry.counter("recovery.resolved").inc();
          }
          twopc_inflight_.erase(it2);
          committed.push_back(tx.hash);
          body_bytes += tx.wire_size();
          tx_shard_finished(tx.hash, true);
          break;
        }
        case 3: {  // refund a force-aborted attempt's debit (recovery ladder)
          // The refund writes the sender's balance, so it honors the same
          // Phase-1 account lock as the debit did.
          if (eng.locks.account_locked(tx.sender)) {
            eng.transfers.push_back(item);
            break;
          }
          eng.store.set_balance(tx.sender,
                                eng.store.balance(tx.sender).value_or(0) + tx.amount);
          ++recovery_stats_.refunds;
          if (telemetry_ != nullptr) telemetry_->registry.counter("recovery.refunds").inc();
          if (item.attempt + 1 < config_.recovery.max_attempts) {
            ++recovery_stats_.retries;
            if (telemetry_ != nullptr)
              telemetry_->registry.counter("recovery.retries").inc();
            eng.transfers.push_back(TransferItem{item.tx, 0, item.attempt + 1});
          } else {
            // Retry budget exhausted: terminally abort.  No shard ever
            // counted this tx finished (credited attempts resolve via
            // kCredited, never via refund), so both votes are cast here.
            ++recovery_stats_.terminal_aborts;
            if (telemetry_ != nullptr)
              telemetry_->registry.counter("recovery.terminal_aborts").inc();
            tx_shard_finished(tx.hash, false);
            tx_shard_finished(tx.hash, false);
          }
          break;
        }
        default:
          break;
      }
    }

    // Execution results produced by this decision, batched per target shard
    // so each (decision, target) pair is exactly one message.
    std::map<std::uint32_t, ResultBatchPayload> result_batches;
    auto add_result_to = [&](ShardId target, const ExecResult& result) {
      auto& batch = result_batches[target.value];
      batch.source = ChannelId{eng.id.value};
      batch.channel_height = height;
      batch.epoch = epoch_;
      batch.target = target;
      batch.cert = cert;
      batch.results.push_back(result);
    };
    auto add_result = [&](const Transaction& tx, const ExecResult& result) {
      for (ShardId target : involved_shards(tx)) add_result_to(target, result);
    };

    // --- Dead gather entries (kNoGlobalLogic) ----------------------------
    // Expired with the tx never seen here.  Abort to every involved shard
    // (the granting ones release their Phase-1 locks, the rest settle their
    // tracker share); the submit-time registry still knows the tx.  Fall back
    // to the recorded granting shards if it has already fully settled.
    for (const auto& [h, sources] : payload->dead_gathers) {
      ExecResult r;
      r.tx_hash = h;
      r.ok = false;
      if (const auto tit = tx_for_result_.find(h); tit != tx_for_result_.end()) {
        add_result(*tit->second, r);
      } else {
        for (const std::uint32_t s : sources) add_result_to(ShardId{s}, r);
      }
    }

    // --- Multi-round execution visits (kNoGlobalLogic) ------------------
    // Runs the run of consecutive steps homed on this shard, then either
    // hands the bundle to the next home shard or emits final results — all
    // relayed through the tx's channel subgroups (no cross-shard messages).
    // Logic lookups are memoized and the interpreter stack reused across the
    // whole decision's visits.
    std::unordered_map<ContractId, const vm::ContractLogic*> visit_logic_memo;
    vm::ExecScratch visit_scratch;
    auto process_visit = [&](const ExecVisit& visit) {
      const Transaction& tx = *visit.tx;
      const ChannelId via = ledger::channel_of_tx(tx.hash, config_.num_shards);
      PortableState gathered = visit.gathered;
      bool ok = !visit.aborted;

      if (ok && visit.next_step == 0) {  // fee prologue on the first visit
        auto fee_it = gathered.balances.find(tx.sender);
        if (fee_it == gathered.balances.end() || fee_it->second < tx.fee) {
          ok = false;
        } else {
          fee_it->second -= tx.fee;
        }
      }

      std::uint32_t step = visit.next_step;
      if (ok) {
        std::vector<const vm::ContractLogic*> logic;
        logic.reserve(tx.contracts.size());
        for (auto c : tx.contracts) {
          auto [lit, inserted] = visit_logic_memo.try_emplace(c, nullptr);
          if (inserted) lit->second = eng.local_logic.get(c);
          logic.push_back(lit->second);
        }
        std::uint32_t end = step;
        while (end < tx.steps.size() &&
               ledger::shard_of_contract(tx.contracts[tx.steps[end].contract_slot],
                                         config_.num_shards) == eng.id)
          ++end;
        ledger::PortableStateView view(std::move(gathered));
        vm::ExecLimits limits;
        limits.gas_limit = tx.gas_limit;
        vm::Interpreter interp(logic, view, limits, &visit_scratch);
        const auto r = interp.run(tx.sender, std::span(tx.steps.data() + step, end - step));
        ok = r.ok();
        gathered = view.take();
        step = end;
      }

      auto emit_results = [&](bool success) {
        if (telemetry_ != nullptr)
          telemetry_->tracer.phase_event(tx.hash, telemetry::Phase::kExecute,
                                         eng.id.value, now);
        ExecResult result;
        result.tx_hash = tx.hash;
        result.ok = success;
        if (success) result.per_shard_updates = split_per_shard(std::move(gathered));
        add_result(tx, result);
      };

      if (!ok) {
        emit_results(false);
        return;
      }
      if (step >= tx.steps.size()) {
        emit_results(true);
        return;
      }
      const ShardId next = ledger::shard_of_contract(
          tx.contracts[tx.steps[step].contract_slot], config_.num_shards);
      auto cp = std::make_shared<ContinuationPayload>();
      cp->tx = visit.tx;
      cp->gathered = std::move(gathered);
      cp->next_step = step;
      cp->target = next;
      cp->hops = 1;
      sim::Message m;
      m.type = sim::MsgType::kSubTxResult;
      m.from = node;
      m.size_bytes = cp->wire_size();
      m.payload = std::move(cp);
      outcome.to_channels.emplace_back(via, std::move(m));
    };
    for (const ExecVisit& visit : payload->visits) process_visit(visit);

    // --- Execution entries (kNoLattice) ---------------------------------
    for (const auto& [tx, result] : payload->exec_entries) {
      // Retire the gathered entry.  For entries whose tx never arrived, fan
      // the abort to every shard that granted (their Phase-1 locks must
      // release); record the hash so late grants still get an answer.
      if (!eng.gather.ready.empty()) eng.gather.ready.pop_front();
      std::vector<std::uint32_t> sources;
      if (!tx) {
        if (const auto pit = eng.gather.pending.find(result.tx_hash);
            pit != eng.gather.pending.end()) {
          sources.assign(pit->second.reported.begin(), pit->second.reported.end());
          std::sort(sources.begin(), sources.end());
        }
        eng.gather.finish_dead(result.tx_hash);
      } else {
        eng.gather.finish(result.tx_hash);
      }
      if (telemetry_ != nullptr)
        telemetry_->tracer.phase_event(result.tx_hash, telemetry::Phase::kExecute,
                                       eng.id.value, now);
      if (!tx) {
        ExecResult abort_r;
        abort_r.tx_hash = result.tx_hash;
        abort_r.ok = false;
        if (const auto tit = tx_for_result_.find(result.tx_hash);
            tit != tx_for_result_.end()) {
          add_result(*tit->second, abort_r);  // every involved shard settles
        } else {
          for (const std::uint32_t s : sources) add_result_to(ShardId{s}, abort_r);
        }
        continue;
      }
      add_result(*tx, result);
    }

    // --- Ship the batched execution results -----------------------------
    for (auto& [target_value, batch] : result_batches) {
      const ShardId target{target_value};
      auto rp = std::make_shared<ResultBatchPayload>(std::move(batch));
      sim::Message m;
      m.type = sim::MsgType::kExecResult;
      m.from = node;
      m.size_bytes = rp->wire_size();
      if (target == eng.id) {
        // Local commits: the updates already travelled inside this shard's
        // own consensus block; ingest directly.
        rp->hops = 0;
        m.payload = std::move(rp);
        handle_result_batch(node, m);
      } else if (config_.pipeline == Pipeline::kNoLattice) {
        rp->hops = 0;
        m.payload = std::move(rp);
        net_.send_via_relay(node, shard_contact(target), m, sim::TrafficClass::kCrossShard);
      } else {  // kNoGlobalLogic: relay through a channel's subgroups
        rp->hops = 1;
        m.payload = std::move(rp);
        outcome.to_channels.emplace_back(ChannelId{target_value % config_.num_shards},
                                         std::move(m));
      }
    }

    // --- Ledger block ----------------------------------------------------
    if (!committed.empty()) {
      eng.chain.append(ledger::build_block(eng.id, eng.chain.height(), eng.chain.tip_hash(),
                                           std::move(committed), body_bytes, now));
    }

    // --- Retire consumed mempool items ----------------------------------
    for (std::size_t i = 0; i < payload->determine.size(); ++i) eng.determine.pop_front();
    for (std::size_t i = 0; i < payload->commits.size(); ++i) eng.commits.pop_front();
    for (std::size_t i = 0; i < payload->transfers.size(); ++i) eng.transfers.pop_front();
    for (std::size_t i = 0; i < payload->visits.size(); ++i) eng.visits.pop_front();
    for (std::size_t i = 0; i < payload->dead_gathers.size(); ++i) eng.dead_gathers.pop_front();

    // Durability barrier: the decided block's state transition is complete;
    // the backend gets one commit record + fsync for the whole batch.
    eng.store.commit();

    eng.outcomes[height] = std::move(outcome);
    eng.outcomes.erase(height >= 64 ? height - 64 : UINT64_MAX);
  }

  // Per-node forwarding duty: subgroup members rebroadcast into channels.
  const auto it = eng.outcomes.find(height);
  if (it == eng.outcomes.end()) return;
  const Assignment asg = lattice_->assignment(node);
  for (const auto& [ch, msg] : it->second.to_channels) {
    if (asg.channel != ch) continue;
    sim::Message copy = msg;
    copy.from = node;
    if (batcher_ != nullptr) {
      // Rumor mode: coalesce every relay this node owes the channel within
      // one aligned window into a single framed rumor (one spread, one
      // pooled certificate verification on each receiver).
      batcher_->enqueue(node, lattice_->channel_members(ch), relay_rumor_id(copy), copy,
                        sim::TrafficClass::kIntraShard);
    } else {
      // Gossip rather than unicast-to-all: batches carry whole contract
      // states, and a fanout tree spreads the serialization load across the
      // channel instead of saturating each subgroup member's uplink.
      relay_gossip(node, lattice_->channel_members(ch), copy);
      on_node_message(node, copy);  // local ingest (dissemination skips self)
    }
  }
}

// ---------------------------------------------------------------------------
// Channel consensus (kFull)
// ---------------------------------------------------------------------------

std::optional<consensus::ConsensusValue> JengaSystem::channel_propose(ChannelEngine& eng,
                                                                      std::uint64_t height) {
  eng.gather.expire(sim_.now(), config_.pending_timeout);
  if (eng.gather.ready.empty()) return std::nullopt;

  auto payload = std::make_shared<ChannelBlockPayload>();
  payload->channel = eng.id;
  std::vector<Hash256> hashes;
  std::uint32_t size = 128;
  // Execute the gathered-and-ready txs as one conflict-scheduled batch
  // (src/exec/); entries keep canonical ready order.
  auto batch = run_gathered_batch(eng.gather, config_.max_block_items);
  for (auto& [tx, result] : batch) {
    hashes.push_back(result.tx_hash);
    size += 64 + result.wire_size();
    payload->entries.emplace_back(std::move(tx), std::move(result));
  }
  const std::uint64_t tag = channel_tag(eng.id);
  auto value = wrap_value("jenga/channel-block", tag, height, std::move(hashes), size, payload);
  value.exec_delay = kExecItemCpu * static_cast<SimTime>(payload->entries.size());
  return value;
}

void JengaSystem::channel_decide(ChannelEngine& eng, NodeId node, std::uint64_t height,
                                 const consensus::ConsensusValue& value,
                                 const consensus::QuorumCert& cert) {
  note_decide(channel_tag(eng.id), height, value.digest);
  const auto* payload = dynamic_cast<const ChannelBlockPayload*>(value.data.get());
  if (payload == nullptr) return;

  if (height >= eng.next_process_height) {
    eng.next_process_height = height + 1;
    const SimTime now = sim_.now();
    ChannelEngine::Outcome outcome;

    // Group results per target shard.
    std::map<std::uint32_t, ResultBatchPayload> batches;
    auto add_to = [&](ShardId target, const ExecResult& result) {
      auto& batch = batches[target.value];
      batch.source = eng.id;
      batch.channel_height = height;
      batch.epoch = epoch_;
      batch.target = target;
      batch.cert = cert;
      batch.results.push_back(result);
    };
    for (const auto& [tx, result] : payload->entries) {
      if (!eng.gather.ready.empty()) eng.gather.ready.pop_front();
      if (!tx) {
        // Expired with the tx never seen (a crashed contact swallowed the
        // client copy): fan the abort back to every shard that granted so
        // their Phase-1 locks release, and remember the hash so grants that
        // arrive even later still get an answer.
        std::vector<std::uint32_t> sources;
        if (const auto pit = eng.gather.pending.find(result.tx_hash);
            pit != eng.gather.pending.end()) {
          sources.assign(pit->second.reported.begin(), pit->second.reported.end());
          std::sort(sources.begin(), sources.end());
        }
        eng.gather.finish_dead(result.tx_hash);
        ExecResult abort_r;
        abort_r.tx_hash = result.tx_hash;
        abort_r.ok = false;
        if (const auto tit = tx_for_result_.find(result.tx_hash);
            tit != tx_for_result_.end()) {
          // Every involved shard settles, not just the ones that granted.
          for (ShardId target : involved_shards(*tit->second)) add_to(target, abort_r);
        } else {
          for (const std::uint32_t s : sources) add_to(ShardId{s}, abort_r);
        }
        continue;
      }
      eng.gather.finish(result.tx_hash);
      if (telemetry_ != nullptr)
        telemetry_->tracer.phase_event(result.tx_hash, telemetry::Phase::kExecute,
                                       eng.id.value, now);
      for (ShardId target : involved_shards(*tx)) add_to(target, result);
    }
    for (auto& [target, batch] : batches) {
      auto rp = std::make_shared<ResultBatchPayload>(std::move(batch));
      sim::Message m;
      m.type = sim::MsgType::kExecResult;
      m.from = node;
      m.size_bytes = rp->wire_size();
      m.payload = std::move(rp);
      outcome.to_shards.emplace_back(ShardId{target}, std::move(m));
    }
    eng.outcomes[height] = std::move(outcome);
    eng.outcomes.erase(height >= 64 ? height - 64 : UINT64_MAX);
  }

  // Forwarding duty: a channel node whose state shard is a target relays the
  // certified results into its shard.
  const auto it = eng.outcomes.find(height);
  if (it == eng.outcomes.end()) return;
  const Assignment asg = lattice_->assignment(node);
  for (const auto& [shard, msg] : it->second.to_shards) {
    if (asg.shard != shard) continue;
    sim::Message copy = msg;
    copy.from = node;
    if (batcher_ != nullptr) {
      batcher_->enqueue(node, lattice_->shard_members(shard), relay_rumor_id(copy), copy,
                        sim::TrafficClass::kIntraShard);
    } else {
      relay_gossip(node, lattice_->shard_members(shard), copy);
      on_node_message(node, copy);
    }
  }
}

// ---------------------------------------------------------------------------
// Epoch reconfiguration (paper §V-D): beacon -> drain -> cutover
// ---------------------------------------------------------------------------

void JengaSystem::schedule_epoch_cycle() {
  if (config_.epoch_interval <= 0 || epoch_mgr_ == nullptr) return;
  const std::uint64_t target = epoch_ + 1;
  const SimTime cutover_at = sim_.now() + config_.epoch_interval;
  const SimTime beacon_at = std::max(sim_.now(), cutover_at - config_.epoch_beacon_lead);
  const SimTime drain_at = std::max(sim_.now(), cutover_at - config_.epoch_drain_window);
  sim_.schedule_at(beacon_at, [this, target] { start_beacon_round(target); });
  sim_.schedule_at(drain_at, [this, target] { begin_drain(target); });
  sim_.schedule_at(cutover_at, [this, target] { try_cutover(target); });
}

void JengaSystem::start_beacon_round(std::uint64_t target_epoch) {
  if (epoch_mgr_ == nullptr || epoch_ + 1 != target_epoch) return;
  for (std::uint32_t i = 0; i < lattice_->total_nodes(); ++i) {
    const NodeId node{i};
    if (net_.node_down(node)) continue;  // crashed members cannot contribute
    const auto bit = byz_modes_.find(i);
    const auto mode =
        bit == byz_modes_.end() ? consensus::ByzantineMode::kHonest : bit->second;
    if (mode == consensus::ByzantineMode::kSilent) continue;
    auto payload = std::make_shared<EpochContributionPayload>();
    payload->contribution =
        epoch_mgr_->contribute(node, beacon_keys_[i], EpochId{target_epoch});
    // Non-silent Byzantine members submit a corrupted beta — live adversarial
    // input for the beacon's verification path (rejected, never combined).
    if (mode != consensus::ByzantineMode::kHonest)
      payload->contribution.beta.bytes[0] ^= 0xFF;
    payload->epoch = target_epoch;
    sim::Message m;
    m.type = sim::MsgType::kEpochVrf;
    m.from = node;
    m.size_bytes = EpochContributionPayload::wire_size();
    m.payload = std::move(payload);
    relay_gossip(node, all_nodes_, m, sim::BroadcastKind::kBeacon);
    handle_epoch_contribution(m);  // the contributor ingests its own copy
  }
}

void JengaSystem::handle_epoch_contribution(const sim::Message& msg) {
  if (epoch_mgr_ == nullptr) return;
  const auto& p = sim::payload_as<EpochContributionPayload>(msg);
  if (p.epoch != epoch_ + 1) return;  // stale or premature round
  // Gossip delivers each contribution to every node; drop the duplicate
  // copies without paying a VRF verification or miscounting a rejection.
  if (epoch_mgr_->has_contribution(p.contribution.node)) return;
  if (epoch_mgr_->accept(p.contribution, EpochId{p.epoch})) {
    ++epoch_stats_.contributions_accepted;
    if (telemetry_ != nullptr)
      telemetry_->registry.counter("epoch.contributions_accepted").inc();
  } else {
    ++epoch_stats_.contributions_rejected;
    if (telemetry_ != nullptr)
      telemetry_->registry.counter("epoch.contributions_rejected").inc();
  }
}

void JengaSystem::begin_drain(std::uint64_t target_epoch) {
  if (epoch_ + 1 != target_epoch || draining_) return;
  draining_ = true;
  drain_started_at_ = sim_.now();
  if (telemetry_ != nullptr) telemetry_->registry.counter("epoch.drains").inc();
}

void JengaSystem::try_cutover(std::uint64_t target_epoch) {
  if (epoch_mgr_ == nullptr || epoch_ + 1 != target_epoch) return;
  bool ready =
      epoch_mgr_->contributions() >= min_contributions() && twopc_inflight_.empty();
  if (ready) {
    // No tx may straddle the boundary with a partially-applied outcome: some
    // shards have applied its commit/abort while others still wait, and a
    // force-abort would conflict with the applied shares.  (`finished` only
    // intersects the tracker for exactly these partially-settled txs.)
    for (const auto& [h, e] : tracker_) {
      bool partial = false;
      for (const auto& s : shards_)
        if (s->finished.contains(h)) {
          partial = true;
          break;
        }
      if (partial) {
        ready = false;
        break;
      }
    }
  }
  if (!ready) {
    ++epoch_stats_.postponements;
    if (telemetry_ != nullptr) telemetry_->registry.counter("epoch.postponements").inc();
    sim_.schedule_after(500 * kMillisecond,
                        [this, target_epoch] { try_cutover(target_epoch); });
    return;
  }
  perform_cutover(target_epoch);
}

void JengaSystem::perform_cutover(std::uint64_t target_epoch) {
  const SimTime now = sim_.now();

  // 1. Deterministic force-abort: release every in-flight tx's Phase-1 locks,
  //    in canonical hash order.  The txs themselves are re-ingested below —
  //    nothing submitted is ever lost at a boundary.
  std::vector<Hash256> requeue;
  requeue.reserve(tracker_.size());
  for (const auto& [h, e] : tracker_) requeue.push_back(h);
  std::sort(requeue.begin(), requeue.end());
  for (const auto& h : requeue)
    for (auto& s : shards_) s->locks.release_all(h);

  // 2. Boundary audits (surfaced through security::check_invariants).
  epoch_stats_.boundary_lock_leaks += held_locks();
  if (total_account_balance() != initial_balance_ - stats_.fees_charged)
    ++epoch_stats_.boundary_balance_mismatches;

  // 3. Finalize the beacon: XOR-combine the quorum's betas, run + verify the
  //    VDF, advance the epoch.
  const auto randomness = epoch_mgr_->advance_epoch(min_contributions());
  if (!randomness) {  // defensive: the quorum was pre-checked in try_cutover
    ++epoch_stats_.postponements;
    sim_.schedule_after(500 * kMillisecond,
                        [this, target_epoch] { try_cutover(target_epoch); });
    return;
  }
  epoch_ = epoch_mgr_->current_epoch().value;
  draining_ = false;
  rerouted_.clear();

  // 4. Boundary churn: departures/joiners toggle while no lattice is live.
  if (boundary_hook_) boundary_hook_(epoch_);

  // 5. Rebuild the lattice from the fresh randomness.  Shards and channels
  //    are logical entities — stores, chains, and lock tables stay put; only
  //    the node-to-group assignment moves.
  std::vector<ShardId> old_shard;
  old_shard.reserve(all_nodes_.size());
  for (NodeId n : all_nodes_) old_shard.push_back(lattice_->assignment(n).shard);
  lattice_ = std::make_unique<Lattice>(make_epoch_lattice(
      config_.num_shards, config_.nodes_per_shard, config_.seed, *randomness));

  // 6. Stop and park the old replicas (their scheduled timers capture `this`,
  //    so they must outlive the reshuffle), then re-home every node.
  for (auto& r : shard_replicas_) {
    r->stop();
    retired_replicas_.push_back(std::move(r));
  }
  for (auto& r : channel_replicas_)
    if (r) {
      r->stop();
      retired_replicas_.push_back(std::move(r));
    }
  for (auto& a : shard_apps_) retired_shard_apps_.push_back(std::move(a));
  for (auto& a : channel_apps_)
    if (a) retired_channel_apps_.push_back(std::move(a));
  build_replicas();
  for (auto& r : shard_replicas_) r->start();
  for (auto& r : channel_replicas_)
    if (r) r->start();

  // Rehomed replicas — nodes whose shard assignment moved — must acquire
  // their new shard's application state.  Modeled as the same proof-verified
  // sync the crash-recovery path uses (snapshot + per-key Merkle proofs; a
  // node's durable image of its OLD shard is useless for the new one).
  if (config_.model_state_sync)
    for (NodeId n : all_nodes_)
      if (!net_.node_down(n) && lattice_->assignment(n).shard != old_shard[n.value])
        model_recovery_sync(n, /*use_durable_image=*/false);

  // 7. Reset per-epoch engine state.  Persistent: store, chain, locks (empty
  //    after the sweep), seen_client, finished, deferred fees.  Epoch-scoped:
  //    mempools, gathers, dedup keyed by restarting heights, outcome caches.
  telemetry::PhaseTracer* tracer = telemetry_ == nullptr ? nullptr : &telemetry_->tracer;
  for (auto& s : shards_) {
    s->determine.clear();
    s->commits.clear();
    s->transfers.clear();
    s->visits.clear();
    s->dead_gathers.clear();
    s->gather = GatherUnit{};
    s->gather.tracer = tracer;
    s->gather.tracer_key = s->id.value;
    s->grant_dedup.clear();
    s->result_dedup.clear();
    s->continuation_dedup.clear();
    s->outcomes.clear();
    s->next_process_height = 0;
  }
  for (auto& c : channels_) {
    c->gather = GatherUnit{};
    c->gather.tracer = tracer;
    c->gather.tracer_key = c->id.value;
    c->grant_dedup.clear();
    c->outcomes.clear();
    c->next_process_height = 0;
  }

  // 8. Carry the mempool/tracker across: re-ingest every force-aborted tx
  //    with its original submit timestamp and submission count intact.
  for (const auto& h : requeue) {
    const auto it = tx_for_result_.find(h);
    if (it != tx_for_result_.end()) reingest(it->second);
  }
  epoch_stats_.txs_requeued += requeue.size();
  ++epoch_stats_.transitions;
  if (telemetry_ != nullptr) {
    auto& reg = telemetry_->registry;
    reg.counter("epoch.transitions").inc();
    reg.counter("epoch.txs_requeued").inc(requeue.size());
    reg.histogram("epoch.drain_duration_us").record(now - drain_started_at_);
  }
  schedule_epoch_cycle();
}

void JengaSystem::reingest(const TxPtr& tx) {
  const auto involved = involved_shards(*tx);
  if (const auto it = tracker_.find(tx->hash); it != tracker_.end()) {
    it->second.shards_left = static_cast<std::uint32_t>(involved.size());
    it->second.aborted = false;  // the force-abort is procedural, not an outcome
  }
  if (tx->kind == TxKind::kTransfer) {
    const ShardId src = ledger::shard_of_account(tx->sender, config_.num_shards);
    shards_[src.value]->transfers.push_back(TransferItem{tx, 0});
    return;
  }
  const SimTime now = sim_.now();
  // `seen_client` still holds the hash (by design — late client copies must
  // stay deduped), so feed the mempools directly.
  for (ShardId s : involved) shards_[s.value]->determine.push_back(DetermineItem{tx, 0});
  switch (config_.pipeline) {
    case Pipeline::kFull: {
      const ChannelId target = ledger::channel_of_tx(tx->hash, config_.num_shards);
      channels_[target.value]->gather.on_tx(tx, involved.size(), now);
      break;
    }
    case Pipeline::kNoLattice: {
      const ShardId exec{
          static_cast<std::uint32_t>(tx->hash.prefix_u64() % config_.num_shards)};
      shards_[exec.value]->gather.on_tx(tx, involved.size(), now);
      break;
    }
    case Pipeline::kNoGlobalLogic: {
      const ShardId first = ledger::shard_of_contract(
          tx->contracts[tx->steps.front().contract_slot], config_.num_shards);
      shards_[first.value]->gather.on_tx(tx, involved.size(), now);
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// Completion tracking & reports
// ---------------------------------------------------------------------------

void JengaSystem::tx_shard_finished(const Hash256& tx_hash, bool ok) {
  const auto it = tracker_.find(tx_hash);
  if (it == tracker_.end()) return;
  TrackEntry& e = it->second;
  e.aborted = e.aborted || !ok;
  if (e.shards_left == 0 || --e.shards_left > 0) return;
  if (e.aborted) {
    ++stats_.aborted;
  } else {
    ++stats_.committed;
    stats_.total_commit_latency += sim_.now() - e.submitted;
    stats_.commit_latencies.push_back(sim_.now() - e.submitted);
    stats_.last_commit_time = std::max(stats_.last_commit_time, sim_.now());
  }
  if (telemetry_ != nullptr) {
    telemetry_->tracer.on_finish(tx_hash, !e.aborted, sim_.now());
    telemetry_->registry.counter(e.aborted ? "tx.aborted" : "tx.committed").inc();
    if (!e.aborted)
      telemetry_->registry.histogram("tx.commit_latency_us").record(sim_.now() - e.submitted);
  }
  tracker_.erase(it);
  tx_for_result_.erase(tx_hash);
}

StorageReport JengaSystem::storage_report() const {
  StorageReport r;
  std::uint64_t chain = 0, state = 0;
  for (const auto& s : shards_) {
    chain += s->chain.total_bytes();
    state += s->store.state_storage_bytes();
  }
  r.chain_bytes_per_node = chain / config_.num_shards;
  r.state_bytes_per_node = state / config_.num_shards;
  // Network-wide logic storage: every node stores all logic (kFull and
  // kNoLattice); kNoGlobalLogic stores only the home shard's share.
  if (config_.pipeline == Pipeline::kNoGlobalLogic) {
    std::uint64_t local = 0;
    for (const auto& s : shards_) local += s->local_logic.logic_storage_bytes();
    r.logic_bytes_per_node = local / config_.num_shards;
  } else {
    r.logic_bytes_per_node = all_logic_.logic_storage_bytes();
  }
  return r;
}

const ledger::Chain& JengaSystem::shard_chain(ShardId s) const { return shards_[s.value]->chain; }
const ledger::StateStore& JengaSystem::shard_store(ShardId s) const {
  return shards_[s.value]->store;
}

std::uint64_t JengaSystem::total_account_balance() const {
  std::uint64_t sum = 0;
  for (const auto& s : shards_) sum += s->store.total_balance();
  return sum;
}

std::size_t JengaSystem::held_locks() const {
  std::size_t n = 0;
  for (const auto& s : shards_) n += s->locks.held_locks();
  return n;
}

std::size_t JengaSystem::twopc_stuck_now() const {
  if (config_.twopc_stuck_timeout <= 0) return 0;
  std::size_t n = 0;
  for (const auto& [h, e] : twopc_inflight_)
    if (sim_.now() - e.since >= config_.twopc_stuck_timeout) ++n;
  return n;
}

void JengaSystem::twopc_watchdog_scan() {
  if (config_.twopc_stuck_timeout <= 0) return;
  const SimTime now = sim_.now();
  for (auto& [h, e] : twopc_inflight_) {
    if (!e.flagged) {
      if (now - e.since < config_.twopc_stuck_timeout) continue;
      e.flagged = true;
      ++twopc_stuck_total_;
      if (telemetry_ != nullptr) {
        telemetry_->registry.counter("twopc.stuck").inc();
        telemetry_->flight.trigger("twopc.stuck", &h);
      }
    }
    // Recovery ladder (DESIGN.md §14): first re-request the round, then
    // force it to settle.  Sends only — entries are erased by the reply
    // handlers, so iteration stays valid.
    if (!config_.recovery.enabled || !e.tx) continue;
    const LadderAction act = ladder_next(config_.recovery, e.ladder, now);
    if (act == LadderAction::kWait) continue;
    auto pp = std::make_shared<TwoPcPayload>();
    pp->tx = e.tx;
    pp->commit = false;  // routes to the destination (credit) shard
    pp->op = act == LadderAction::kProbe ? TwoPcPayload::Op::kProbe
                                         : TwoPcPayload::Op::kAbortQuery;
    pp->attempt = e.attempt;
    sim::Message m;
    m.type = sim::MsgType::kTwoPcPrepare;
    m.from = e.coordinator;
    // A probe can be adopted as the prepare, so it carries the tx's weight.
    m.size_bytes = act == LadderAction::kProbe ? ledger::kTxWireBytes + 96 : 160;
    m.payload = std::move(pp);
    if (act == LadderAction::kProbe) {
      ++recovery_stats_.probes_sent;
      if (telemetry_ != nullptr) telemetry_->registry.counter("recovery.probes").inc();
    } else {
      ++recovery_stats_.abort_queries;
      if (telemetry_ != nullptr) {
        telemetry_->registry.counter("recovery.abort_queries").inc();
        telemetry_->flight.trigger("twopc.force_abort", &h);
      }
    }
    send_two_pc(e.coordinator,
                ledger::shard_of_account(e.tx->to, config_.num_shards), m);
  }
}

Hash256 JengaSystem::ledger_digest() const {
  crypto::Sha256 h;
  h.update("jenga/ledger-digest");
  for (const auto& s : shards_) {
    h.update_u64(s->id.value);
    h.update_u64(s->chain.height());
    h.update(s->chain.tip_hash());
    h.update(s->store.digest());
  }
  return h.finish();
}

Hash256 JengaSystem::state_digest() const {
  crypto::Sha256 h;
  h.update("jenga/state-digest");
  for (const auto& s : shards_) {
    h.update_u64(s->id.value);
    h.update(s->store.digest());
  }
  h.update_u64(stats_.committed);
  h.update_u64(stats_.aborted);
  return h.finish();
}

// ---------------------------------------------------------------------------
// Relay certificate verification (DESIGN.md §12)
// ---------------------------------------------------------------------------

const std::vector<std::uint64_t>& JengaSystem::source_public_ids(bool channel_group,
                                                                 std::uint32_t gid) {
  const std::uint64_t tag =
      channel_group ? channel_tag(ChannelId{gid}) : shard_tag(ShardId{gid});
  if (const auto it = group_pubids_.find(tag); it != group_pubids_.end()) return it->second;
  // Exactly the key schedule build_replicas() gives the group's replicas.
  const std::uint64_t seed =
      (config_.seed ^ ((channel_group ? 0xC4A20000ULL : 0x51ED0000ULL) + gid)) +
      epoch_ * 0xD1B54A32D192ED03ULL;
  const std::size_t n = channel_group ? lattice_->channel_members(ChannelId{gid}).size()
                                      : lattice_->shard_members(ShardId{gid}).size();
  return group_pubids_.emplace(tag, consensus::group_public_ids(seed, n)).first->second;
}

bool JengaSystem::verify_relay_cert(const consensus::QuorumCert& cert, bool channel_group,
                                    std::uint32_t gid) {
  if (cert.sig.signer_count() == 0) {
    // Synthetic late-abort answers (answer_dead_grant) certify nothing; they
    // only release locks the receiver already holds, so they pass uncounted
    // as verifications but visible in telemetry.
    ++cert_stats_.unsigned_batches;
    return true;
  }
  if (certs_preverified_) return true;  // covered by the frame's pooled pass
  const auto& ids = source_public_ids(channel_group, gid);
  ++cert_stats_.individual_checks;
  const std::size_t quorum = 2 * ((ids.size() - 1) / 3) + 1;
  const Hash256 digest =
      consensus::vote_digest(cert.value_digest, cert.height, cert.view, /*commit_phase=*/true);
  const bool ok = cert.sig.signers.size() == ids.size() &&
                  cert.sig.signer_count() >= quorum &&
                  crypto::fast_verify_multisig(ids, digest, cert.sig);
  if (!ok) {
    ++cert_stats_.invalid_certs;
    if (telemetry_ != nullptr) telemetry_->registry.counter("relay.invalid_certs").inc();
  }
  return ok;
}

bool JengaSystem::frame_item_seen(NodeId node, const sim::Message& inner) const {
  const Assignment asg = lattice_->assignment(node);
  if (inner.type == sim::MsgType::kStateGrant) {
    const auto& p = sim::payload_as<GrantBatchPayload>(inner);
    if (p.epoch != epoch_) return true;  // dropped unread by the handler
    const std::uint64_t key =
        (static_cast<std::uint64_t>(p.source.value) << 40) ^ p.shard_height;
    switch (config_.pipeline) {
      case Pipeline::kFull:
        return channels_[asg.channel.value]->grant_dedup.contains(key);
      case Pipeline::kNoLattice:
        return shards_[asg.shard.value]->grant_dedup.contains(key);
      case Pipeline::kNoGlobalLogic:
        if (asg.shard.value != p.relay_target.value) return true;  // witness only
        return shards_[asg.shard.value]->grant_dedup.contains(key);
    }
    return false;
  }
  if (inner.type == sim::MsgType::kExecResult) {
    const auto& p = sim::payload_as<ResultBatchPayload>(inner);
    if (p.epoch != epoch_) return true;
    if (asg.shard != p.target) return true;  // channel witnesses just observe
    std::uint64_t key = 0x9E3779B97F4A7C15ULL * (p.source.value + 1) +
                        0xC2B2AE3D27D4EB4FULL * (p.target.value + 1) + p.channel_height;
    key = splitmix64(key);
    return shards_[asg.shard.value]->result_dedup.contains(key);
  }
  return false;
}

void JengaSystem::handle_batch_frame(NodeId node, const sim::Message& msg) {
  const auto& frame = sim::payload_as<gossip::BatchFramePayload>(msg);
  // Forged-frame guard: a frame whose embedded id disagrees with the fold of
  // its (sorted) item ids is smuggling items under another frame's dedup
  // identity — reject it whole; honest relays re-frame the same items under
  // the correct id, so nothing is lost.
  if (!gossip::frame_id_matches(frame)) {
    if (batcher_ != nullptr) batcher_->count_rejected_frame();
    if (telemetry_ != nullptr) telemetry_->flight.trigger("batch.frame_rejected");
    return;
  }
  // Just unpack: each contained batch re-enters the normal handler path,
  // where its cert parks in the receiver's pooled-verification window.  The
  // frame's span stays the causal parent so trace_lint sees one hop per copy.
  for (const auto& item : frame.items) {
    sim::Message inner = item.inner;
    inner.span = msg.span;
    on_node_message(node, inner);
  }
}

bool JengaSystem::try_park_for_pooled_verify(NodeId node, const sim::Message& msg,
                                             std::uint64_t pool_tag, std::uint64_t dedup_key,
                                             const consensus::QuorumCert& cert) {
  if (batcher_ == nullptr || certs_preverified_ || pool_bypass_) return false;
  if (cert.sig.signer_count() == 0) return false;  // synthetic, nothing to verify
  VerifyPool& pool = verify_pools_[pool_tag];
  if (!pool.keys.insert(dedup_key).second) return true;  // dup of a parked batch
  pool.parked.emplace_back(node, msg);
  if (!pool.flush_scheduled) {
    pool.flush_scheduled = true;
    // Aligned boundary: every batch the engine hears inside the window —
    // across ALL source groups — is verified by one aggregated pass.
    const SimTime w = std::max<SimTime>(1, net_.config().batch_window);
    sim_.schedule_at((sim_.now() / w + 1) * w,
                     [this, pool_tag] { flush_verify_pool(pool_tag); });
  }
  return true;
}

void JengaSystem::flush_verify_pool(std::uint64_t pool_tag) {
  const auto it = verify_pools_.find(pool_tag);
  if (it == verify_pools_.end()) return;
  VerifyPool pool = std::move(it->second);
  // Erase before dispatch: post-flush copies hit the engine dedup instead.
  verify_pools_.erase(it);
  if (pool.parked.empty()) return;

  std::vector<crypto::FastBatchEntry> entries;
  entries.reserve(pool.parked.size());
  bool pool_ok = true;
  for (const auto& [node, msg] : pool.parked) {
    if (frame_item_seen(node, msg)) continue;  // went stale (e.g. epoch turned)
    const consensus::QuorumCert* cert = nullptr;
    bool channel_group = false;
    std::uint32_t gid = 0;
    if (msg.type == sim::MsgType::kStateGrant) {
      const auto& p = sim::payload_as<GrantBatchPayload>(msg);
      cert = &p.cert;
      gid = p.source.value;
    } else if (msg.type == sim::MsgType::kExecResult) {
      const auto& p = sim::payload_as<ResultBatchPayload>(msg);
      cert = &p.cert;
      channel_group = config_.pipeline == Pipeline::kFull;
      gid = p.source.value;
    }
    if (cert == nullptr || cert->sig.signer_count() == 0) continue;
    const auto& ids = source_public_ids(channel_group, gid);
    if (cert->sig.signers.size() != ids.size() ||
        cert->sig.signer_count() < 2 * ((ids.size() - 1) / 3) + 1) {
      pool_ok = false;  // structurally broken: force the per-item fallback
      continue;
    }
    entries.push_back(crypto::FastBatchEntry{
        ids,
        consensus::vote_digest(cert->value_digest, cert->height, cert->view,
                               /*commit_phase=*/true),
        &cert->sig});
  }
  if (!entries.empty()) {
    ++cert_stats_.batch_passes;
    cert_stats_.batch_certs += entries.size();
    if (!crypto::fast_verify_multisig_batch(entries, config_.seed)) {
      ++cert_stats_.batch_fallbacks;
      pool_ok = false;
    }
  }

  if (pool_ok) {
    // One aggregated pass covered every cert: dispatch with checks elided.
    certs_preverified_ = true;
    for (const auto& [node, msg] : pool.parked) on_node_message(node, msg);
    certs_preverified_ = false;
  } else {
    // A forged or malformed cert poisoned the pool: fall back to individual
    // verification so the bad batch is isolated and the rest still land.
    pool_bypass_ = true;
    for (const auto& [node, msg] : pool.parked) on_node_message(node, msg);
    pool_bypass_ = false;
  }
}

// ---------------------------------------------------------------------------
// Shard consensus app
// ---------------------------------------------------------------------------

std::optional<consensus::ConsensusValue> JengaSystem::ShardApp::propose(std::uint64_t height) {
  return sys->shard_propose(*engine, height);
}

void JengaSystem::ShardApp::on_decide(std::uint64_t height,
                                      const consensus::ConsensusValue& value,
                                      const consensus::QuorumCert& cert) {
  sys->shard_decide(*engine, node, height, value, cert);
}

std::optional<consensus::ConsensusValue> JengaSystem::ChannelApp::propose(
    std::uint64_t height) {
  return sys->channel_propose(*engine, height);
}

void JengaSystem::ChannelApp::on_decide(std::uint64_t height,
                                        const consensus::ConsensusValue& value,
                                        const consensus::QuorumCert& cert) {
  sys->channel_decide(*engine, node, height, value, cert);
}

}  // namespace jenga::core
