#include "core/recovery.hpp"

namespace jenga::core {

LadderAction ladder_next(const RecoveryConfig& cfg, LadderState& st, SimTime now) {
  if (!cfg.enabled) return LadderAction::kWait;
  if (st.rung > 0 && now < st.next_action) return LadderAction::kWait;
  const LadderAction action =
      st.rung < cfg.max_rerequests ? LadderAction::kProbe : LadderAction::kAbortQuery;
  ++st.rung;
  st.next_action = now + cfg.backoff;
  return action;
}

}  // namespace jenga::core
