#include "core/epoch.hpp"

#include "crypto/sha256.hpp"

namespace jenga::core {

EpochManager::EpochManager(std::vector<crypto::Point> committee_keys,
                           std::uint64_t vdf_iterations, std::size_t vdf_checkpoints)
    : committee_(std::move(committee_keys)),
      vdf_iterations_(vdf_iterations),
      vdf_checkpoints_(vdf_checkpoints),
      randomness_(crypto::sha256("jenga/genesis-randomness")),
      accepted_(committee_.size()) {}

std::vector<std::uint8_t> EpochManager::beacon_input(EpochId epoch) const {
  crypto::Sha256 h;
  h.update("jenga/beacon-input");
  h.update(randomness_);
  h.update_u64(epoch.value);
  const Hash256 digest = h.finish();
  return {digest.bytes.begin(), digest.bytes.end()};
}

RandomnessContribution EpochManager::contribute(NodeId node, const crypto::KeyPair& key,
                                                EpochId epoch) const {
  const auto input = beacon_input(epoch);
  const auto out = crypto::vrf_evaluate(key, input);
  return RandomnessContribution{node, out.beta, out.proof};
}

bool EpochManager::accept(const RandomnessContribution& contribution, EpochId epoch) {
  if (epoch.value != epoch_.value + 1) return false;
  if (contribution.node.value >= committee_.size()) return false;
  if (accepted_[contribution.node.value].has_value()) return false;
  const auto input = beacon_input(epoch);
  const auto beta =
      crypto::vrf_verify(committee_[contribution.node.value], input, contribution.proof);
  if (!beta || !(*beta == contribution.beta)) return false;
  accepted_[contribution.node.value] = contribution.beta;
  return true;
}

std::optional<Hash256> EpochManager::advance_epoch(std::size_t min_contributions) {
  std::size_t have = 0;
  Hash256 combined;
  for (const auto& beta : accepted_) {
    if (!beta) continue;
    ++have;
    for (std::size_t i = 0; i < combined.bytes.size(); ++i)
      combined.bytes[i] ^= beta->bytes[i];
  }
  if (have < min_contributions || have == 0) return std::nullopt;

  // Delay function: the final randomness cannot be predicted until well
  // after the last contribution was chosen.
  const auto proof = crypto::vdf_evaluate(combined, vdf_iterations_, vdf_checkpoints_);
  if (!crypto::vdf_verify_full(proof)) return std::nullopt;  // defensive

  randomness_ = proof.output;
  epoch_ = EpochId{epoch_.value + 1};
  accepted_.assign(committee_.size(), std::nullopt);
  return randomness_;
}

Lattice EpochManager::build_lattice(std::uint32_t num_shards, std::uint32_t nodes_per_shard,
                                    std::uint64_t key_seed) const {
  return make_epoch_lattice(num_shards, nodes_per_shard, key_seed, randomness_);
}

}  // namespace jenga::core
