#include "core/lattice.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "common/rng.hpp"
#include "crypto/sha256.hpp"

namespace jenga::core {

Lattice::Lattice(std::uint32_t num_shards, std::uint32_t nodes_per_shard,
                 const std::vector<std::uint64_t>& node_draws)
    : num_shards_(num_shards), nodes_per_shard_(nodes_per_shard) {
  assert(num_shards > 0);
  assert(nodes_per_shard % num_shards == 0);
  const std::uint32_t n = total_nodes();
  assert(node_draws.size() == n);

  // Rank nodes by their randomness draw (ties by id keep it a permutation).
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    if (node_draws[a] != node_draws[b]) return node_draws[a] < node_draws[b];
    return a < b;
  });

  assignments_.resize(n);
  shard_members_.resize(num_shards_);
  channel_members_.resize(num_shards_);
  subgroups_.resize(static_cast<std::size_t>(num_shards_) * num_shards_);

  for (std::uint32_t rank = 0; rank < n; ++rank) {
    const NodeId node{order[rank]};
    const ShardId shard{rank / nodes_per_shard_};
    const ChannelId channel{rank % num_shards_};
    assignments_[node.value] = {shard, channel};
    shard_members_[shard.value].push_back(node);
    channel_members_[channel.value].push_back(node);
    subgroups_[shard.value * num_shards_ + channel.value].push_back(node);
  }
}

Assignment Lattice::literal_rule(std::uint64_t r, std::uint32_t num_shards,
                                 std::uint32_t nodes_per_shard) {
  const std::uint64_t n = static_cast<std::uint64_t>(num_shards) * nodes_per_shard;
  const std::uint64_t slot = r % n;
  return {ShardId{static_cast<std::uint32_t>(slot / nodes_per_shard)},
          ChannelId{static_cast<std::uint32_t>(slot % num_shards)}};
}

Lattice make_epoch_lattice(std::uint32_t num_shards, std::uint32_t nodes_per_shard,
                           std::uint64_t key_seed, const Hash256& epoch_randomness) {
  const std::uint32_t n = num_shards * nodes_per_shard;
  std::vector<std::uint64_t> draws(n);
  const std::uint64_t rand64 = epoch_randomness.prefix_u64();
  for (std::uint32_t i = 0; i < n; ++i) {
    // Node i's "public key" material, derived deterministically in the sim.
    std::uint64_t s = key_seed ^ (0xA11CE5ULL + i);
    const std::uint64_t pk = splitmix64(s);
    // Paper: XOR the public key with the epoch randomness.
    std::uint64_t mix = pk ^ rand64;
    draws[i] = splitmix64(mix);
  }
  return Lattice(num_shards, nodes_per_shard, draws);
}

}  // namespace jenga::core
