// Epoch management: the per-epoch distributed randomness beacon and the
// reshuffle it drives (paper §V-D).
//
// Each epoch (typically one day) the node-to-(shard, channel) assignment is
// recomputed from fresh unbiased randomness so a slowly-adaptive adversary
// cannot concentrate corrupted nodes in one group.  The beacon combines:
//   1. per-member VRF evaluations over (previous randomness, epoch number) —
//      unpredictable and individually verifiable;
//   2. an XOR-combine of the VRF outputs — any single honest contribution
//      randomizes the result;
//   3. a VDF pass over the combination — the output is unknowable until ~T
//      sequential steps after the last contribution, closing the
//      last-revealer bias window.
// The result seeds the epoch's Lattice via the paper's XOR/rank rule.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "core/lattice.hpp"
#include "crypto/vdf.hpp"
#include "crypto/vrf.hpp"
#include "simnet/message.hpp"

namespace jenga::core {

/// One member's verifiable contribution to an epoch's randomness.
struct RandomnessContribution {
  NodeId node;
  Hash256 beta;
  crypto::VrfProof proof;
};

/// Wire envelope for a contribution gossiped over the simulated network
/// (MsgType::kEpochVrf).  ~200 bytes on the wire: proof point + beta + header.
struct EpochContributionPayload : sim::Payload {
  RandomnessContribution contribution;
  std::uint64_t epoch = 0;  // the epoch this contribution targets

  [[nodiscard]] static constexpr std::uint32_t wire_size() { return 200; }
};

class EpochManager {
 public:
  /// `committee_keys[i]` is the public key of the i-th beacon member; node
  /// ids index into this list.  `vdf_iterations` trades bias-resistance for
  /// beacon latency.
  EpochManager(std::vector<crypto::Point> committee_keys, std::uint64_t vdf_iterations = 4096,
               std::size_t vdf_checkpoints = 16);

  [[nodiscard]] EpochId current_epoch() const { return epoch_; }
  [[nodiscard]] const Hash256& current_randomness() const { return randomness_; }

  /// The message a member's VRF must sign for `epoch`:
  /// H(prev_randomness || epoch).
  [[nodiscard]] std::vector<std::uint8_t> beacon_input(EpochId epoch) const;

  /// Produces this member's contribution (the member holds `key`).
  [[nodiscard]] RandomnessContribution contribute(NodeId node, const crypto::KeyPair& key,
                                                  EpochId epoch) const;

  /// Verifies and records a contribution for the *next* epoch.  Returns
  /// false on unknown node, wrong epoch proof, or duplicate.
  bool accept(const RandomnessContribution& contribution, EpochId epoch);

  /// Number of contributions accepted so far for the next epoch (not the
  /// committee size: absent members leave their slot empty).
  [[nodiscard]] std::size_t contributions() const {
    std::size_t n = 0;
    for (const auto& beta : accepted_)
      if (beta) ++n;
    return n;
  }

  /// True if `node`'s contribution for the next epoch is already recorded.
  /// Lets a gossip receiver drop the (many) duplicate copies of a
  /// contribution without paying a VRF verification or counting a rejection.
  [[nodiscard]] bool has_contribution(NodeId node) const {
    return node.value < accepted_.size() && accepted_[node.value].has_value();
  }

  /// Finalizes the next epoch once at least `min_contributions` arrived:
  /// XOR-combines the betas, runs the VDF, verifies it, and advances the
  /// epoch.  Returns the new randomness, or nullopt if not enough
  /// contributions.
  std::optional<Hash256> advance_epoch(std::size_t min_contributions);

  /// Builds the lattice for the current epoch.
  [[nodiscard]] Lattice build_lattice(std::uint32_t num_shards, std::uint32_t nodes_per_shard,
                                      std::uint64_t key_seed) const;

 private:
  std::vector<crypto::Point> committee_;
  std::uint64_t vdf_iterations_;
  std::size_t vdf_checkpoints_;
  EpochId epoch_{0};
  Hash256 randomness_;  // genesis randomness for epoch 0
  std::vector<std::optional<Hash256>> accepted_;  // per member, next epoch
};

}  // namespace jenga::core
