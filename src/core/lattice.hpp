// The orthogonal lattice: node → (state shard, execution channel) assignment
// and subgroup lookup (paper §V-B "Determining the Execution Channel").
//
// Paper rule: each node XORs its public key with the epoch randomness to get
// r_i; r_i mod N gives a slot; slot / (N/S) is the state shard and
// slot mod S the execution channel.  Applied literally to hashes, slots can
// collide and group sizes drift; the paper's own claims ("the number of
// nodes inside each state shard is the same as ...") hold exactly when the
// slots form a permutation of 0..N-1.  We therefore *rank* nodes by r_i —
// ties broken by node id — which realizes exactly the intended permutation:
// every shard has k = N/S nodes, every channel k nodes, and every
// (shard, channel) subgroup exactly k/S nodes.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace jenga::core {

struct Assignment {
  ShardId shard;
  ChannelId channel;
};

class Lattice {
 public:
  /// Builds the epoch lattice.  `node_draws[i]` is node i's randomness draw
  /// (public key XOR epoch randomness, reduced to 64 bits).  Requires
  /// nodes_per_shard % num_shards == 0 and node_draws.size() == S * k.
  Lattice(std::uint32_t num_shards, std::uint32_t nodes_per_shard,
          const std::vector<std::uint64_t>& node_draws);

  [[nodiscard]] std::uint32_t num_shards() const { return num_shards_; }
  [[nodiscard]] std::uint32_t nodes_per_shard() const { return nodes_per_shard_; }
  [[nodiscard]] std::uint32_t subgroup_size() const { return nodes_per_shard_ / num_shards_; }
  [[nodiscard]] std::uint32_t total_nodes() const { return num_shards_ * nodes_per_shard_; }

  [[nodiscard]] Assignment assignment(NodeId node) const { return assignments_[node.value]; }

  [[nodiscard]] const std::vector<NodeId>& shard_members(ShardId s) const {
    return shard_members_[s.value];
  }
  [[nodiscard]] const std::vector<NodeId>& channel_members(ChannelId c) const {
    return channel_members_[c.value];
  }
  /// Nodes belonging to both shard s and channel c — the relay subgroup.
  [[nodiscard]] const std::vector<NodeId>& subgroup(ShardId s, ChannelId c) const {
    return subgroups_[s.value * num_shards_ + c.value];
  }

  /// The paper's literal formula for one node (used to cross-check the rank
  /// construction in tests): slot = r mod N, shard = slot/(N/S), channel =
  /// slot mod S.
  [[nodiscard]] static Assignment literal_rule(std::uint64_t r, std::uint32_t num_shards,
                                               std::uint32_t nodes_per_shard);

 private:
  std::uint32_t num_shards_;
  std::uint32_t nodes_per_shard_;
  std::vector<Assignment> assignments_;
  std::vector<std::vector<NodeId>> shard_members_;
  std::vector<std::vector<NodeId>> channel_members_;
  std::vector<std::vector<NodeId>> subgroups_;
};

/// Convenience: derive per-node draws from a seed (simulation keygen) and an
/// epoch randomness hash, then build the lattice.
[[nodiscard]] Lattice make_epoch_lattice(std::uint32_t num_shards, std::uint32_t nodes_per_shard,
                                         std::uint64_t key_seed, const Hash256& epoch_randomness);

}  // namespace jenga::core
