// Stuck-2PC recovery ladder (DESIGN.md §14).
//
// The watchdog in JengaSystem flags a 2PC round whose ack never came back
// (gray link, slow relayer, lost leg).  Flagging alone only records the
// violation; this module turns the flag into a repair.  Each wedged round
// walks a per-round ladder the coordinator drives from its watchdog scan:
//
//   rung 1..max_rerequests  — kProbe: re-offer the prepare to the destination
//                             shard.  If the prepare was lost the destination
//                             adopts it now; if the credit already happened
//                             the destination re-sends the lost ack.  Probes
//                             are idempotent (attempt-scoped dedup keys).
//   rung max_rerequests+1.. — kAbortQuery: settle the round NOW.  The
//                             destination answers kCredited (credit applied,
//                             treat as the ack) or kNeverCredited (credit
//                             tombstoned so it can never land later; the
//                             coordinator refunds the debit and retries the
//                             transfer as a fresh attempt).
//
// The ladder is pure policy — it decides WHAT to do next and when; the
// system performs the sends and state changes.  Keeping it a standalone
// value type makes the escalation schedule unit-testable without a network.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace jenga::core {

struct RecoveryConfig {
  /// Master switch: false restores the observe-only watchdog (flag + flight
  /// dump, no repair traffic).
  bool enabled = true;
  /// Probe rungs before the ladder escalates to a force-abort query.
  std::uint32_t max_rerequests = 2;
  /// Full retry cycles (refund + fresh attempt) before the transfer is
  /// terminally aborted.  Attempt 0 is the original round.
  std::uint32_t max_attempts = 3;
  /// Delay between consecutive ladder actions on one round.
  SimTime backoff = 10 * kSecond;
};

struct RecoveryStats {
  std::uint64_t probes_sent = 0;        // kProbe re-requests
  std::uint64_t abort_queries = 0;      // kAbortQuery escalations
  std::uint64_t acks_recovered = 0;     // rounds settled by kCredited / probe re-ack
  std::uint64_t refunds = 0;            // never-credited debits returned
  std::uint64_t retries = 0;            // fresh attempts re-ingested after a refund
  std::uint64_t terminal_aborts = 0;    // retry budget exhausted
  std::uint64_t hedged_sends = 0;       // duplicate legs to a backup contact
  std::uint64_t resolved = 0;           // flagged-stuck rounds that finalized
  SimTime last_resolved_at = 0;
};

/// Per-round ladder position, embedded in the coordinator's inflight entry.
struct LadderState {
  std::uint32_t rung = 0;     // actions taken so far on this attempt
  SimTime next_action = 0;    // earliest time the next action may fire
};

enum class LadderAction : std::uint8_t {
  kWait = 0,        // backoff not elapsed, do nothing this scan
  kProbe = 1,       // re-request the round
  kAbortQuery = 2,  // force the round to settle
};

/// Advances `st` and returns the action due at `now` (kWait if the backoff
/// has not elapsed).  The first action on a freshly flagged round fires
/// immediately; subsequent ones respect cfg.backoff.
[[nodiscard]] LadderAction ladder_next(const RecoveryConfig& cfg, LadderState& st,
                                       SimTime now);

}  // namespace jenga::core
