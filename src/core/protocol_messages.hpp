// Payloads of Jenga's cross-shard consensus protocol (paper §V-C) and the
// batch items that shard/channel consensus instances agree on.
#pragma once

#include <memory>
#include <vector>

#include "common/types.hpp"
#include "consensus/bft.hpp"
#include "ledger/portable_state.hpp"
#include "ledger/transaction.hpp"
#include "simnet/message.hpp"

namespace jenga::core {

using TxPtr = std::shared_ptr<const ledger::Transaction>;

/// CPU cost model (paper §VII-B: "each node can verify up to 4096
/// transactions in a consensus round").  Light items are signature/lock
/// checks over a 512-byte tx; exec items run contract code on the VM.
inline constexpr SimTime kLightItemCpu = 200;                 // 200 µs
inline constexpr SimTime kExecItemCpu = 2 * kMillisecond;     // full/partial VM run

/// Phase 1 output for one transaction from one state shard.
struct StateGrant {
  Hash256 tx_hash;
  ShardId source;
  bool available = true;          // false -> AbortRequest (state locked/missing)
  ledger::PortableState states;   // the locked states this shard owns

  [[nodiscard]] std::uint32_t wire_size() const { return 80 + states.wire_size(); }
};

/// Phase 2 output for one transaction: per-shard state updates or an abort.
struct ExecResult {
  Hash256 tx_hash;
  bool ok = true;
  /// Updates split by owning shard; only that shard's slice is applied there.
  std::vector<std::pair<ShardId, ledger::PortableState>> per_shard_updates;

  [[nodiscard]] std::uint32_t wire_size() const {
    std::uint32_t n = 80;
    for (const auto& [s, st] : per_shard_updates) n += 8 + st.wire_size();
    return n;
  }
};

/// A batch of grants from one shard-consensus decision, destined to one
/// execution channel; forwarded by the (shard, channel) subgroup members.
struct GrantBatchPayload : sim::Payload {
  ShardId source;
  std::uint64_t shard_height = 0;  // dedup key together with `source`
  /// Epoch the granting shard decided in.  A batch still in flight when the
  /// lattice reshuffles is stale — its transactions were force-aborted and
  /// requeued at the boundary — and must not seed a new-epoch gather.
  std::uint64_t epoch = 0;
  std::vector<StateGrant> grants;
  /// kNoGlobalLogic: the batch ultimately lands on this shard; channel nodes
  /// in subgroup(relay_target, channel) rebroadcast when hops > 0.
  ShardId relay_target{UINT32_MAX};
  std::uint8_t hops = 0;
  /// Commit certificate of the shard-consensus decision that produced this
  /// batch.  Receivers verify the aggregate signature against the source
  /// group's keys before ingesting (pooled into one batched pass when the
  /// batch arrives inside a gossip frame).
  consensus::QuorumCert cert;

  [[nodiscard]] std::uint32_t wire_size() const {
    std::uint32_t n = 32 + cert.wire_size();  // header + quorum cert
    for (const auto& g : grants) n += g.wire_size();
    return n;
  }
};

/// A batch of execution results from one channel decision, destined to one
/// state shard; forwarded by the subgroup members.
struct ResultBatchPayload : sim::Payload {
  ChannelId source;                 // source group id (channel, or shard id reused)
  std::uint64_t channel_height = 0;
  /// Epoch the executing group decided in (same staleness rule as grants:
  /// results that straddle a reshuffle would commit an execution of a tx the
  /// boundary already aborted and requeued).
  std::uint64_t epoch = 0;
  ShardId target;
  std::vector<ExecResult> results;
  std::uint8_t hops = 0;  // >0: relayed via a channel, subgroup rebroadcasts
  /// Commit certificate of the deciding group (channel in kFull, shard
  /// otherwise).  Synthetic late-abort answers carry an empty signer bitmap:
  /// they certify nothing and are counted, not verified.
  consensus::QuorumCert cert;

  [[nodiscard]] std::uint32_t wire_size() const {
    std::uint32_t n = 32 + cert.wire_size();
    for (const auto& r : results) n += r.wire_size();
    return n;
  }
};

/// Client transaction envelope.
struct TxPayload : sim::Payload {
  TxPtr tx;
};

/// Transfer-transaction 2PC messages (the "traditional scheme" of §V-D).
/// Deliberately NOT epoch-tagged: a prepared transfer has already debited the
/// sender, so its commit leg must land even if it crosses a reshuffle (the
/// epoch cutover waits for in-flight 2PC rounds to finish for this reason).
///
/// Recovery extension (DESIGN.md §14): a wedged round — prepare or ack lost
/// to a gray link — is repaired by the coordinator's recovery ladder via the
/// `op` field.  `attempt` scopes every dedup key/tombstone, so a force-aborted
/// attempt can be retried from scratch without fighting its own ghosts.
struct TwoPcPayload : sim::Payload {
  TxPtr tx;
  bool commit = false;  // false: prepare leg, true: commit/ack leg
  /// Recovery ladder opcode; kLeg is the plain 2PC protocol.
  enum class Op : std::uint8_t {
    kLeg = 0,         // normal prepare / commit-ack
    kProbe = 1,       // coordinator re-requests the round (rung 1)
    kAbortQuery = 2,  // coordinator asks to settle the round NOW (rung 2)
    kNeverCredited = 3,  // participant: credit never applied (tombstoned)
    kCredited = 4,       // participant: credit applied, here is your ack
  };
  Op op = Op::kLeg;
  /// Retry attempt the message belongs to (0 = the original round).
  std::uint32_t attempt = 0;
};

}  // namespace jenga::core
