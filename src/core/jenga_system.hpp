// The Jenga system: S state shards × S execution channels over N nodes,
// network-wide logic storage, and the three-phase cross-shard consensus
// protocol (paper §V).
//
// Simulation architecture
// -----------------------
// Consensus is fully per-node: every node runs a BFT replica for its state
// shard and (in the full pipeline) one for its execution channel, and all
// protocol messages travel through the simulated network with real timing.
// The *application state* behind each group (state store, locks, chain,
// mempool) is kept as one logical copy per group: honest replicas are
// deterministic and decide identical values, so replicating the bytes per
// node would multiply memory without changing any observable metric.  The
// first replica to decide a height performs the shared state transition;
// every replica then performs its own node-local forwarding duty (subgroup
// relaying), which is where Jenga's communication pattern lives.
//
// Pipelines (the Fig. 5b/6b ablations):
//   kFull            — grants/results travel shard<->channel through
//                      overlapped subgroups (intra-group broadcasts only).
//   kNoLattice       — "Jenga w/o Orthogonal Lattice Structure": logic is
//                      still everywhere, but execution happens on a state
//                      shard chosen by tx hash, and states/results move with
//                      ordinary cross-shard messages (client-relayed).
//   kNoGlobalLogic   — "Jenga w/o Network-Wide Logic Storage": the lattice
//                      stands, but logic lives only on its home shard, so a
//                      transaction executes step-by-step across the home
//                      shards of its contracts (multi-round), with
//                      intermediate results relayed through subgroups.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/stats.hpp"
#include "consensus/bft.hpp"
#include "core/lattice.hpp"
#include "core/protocol_messages.hpp"
#include "ledger/block.hpp"
#include "ledger/locks.hpp"
#include "ledger/state_store.hpp"
#include "simnet/network.hpp"

namespace jenga::exec {
class Engine;
}

namespace jenga::core {

/// Shared state-gathering unit (defined in jenga_system.cpp).
struct GatherUnit;

enum class Pipeline : std::uint8_t { kFull = 0, kNoLattice, kNoGlobalLogic };

struct JengaConfig {
  std::uint32_t num_shards = 4;
  std::uint32_t nodes_per_shard = 16;  // must be a multiple of num_shards
  std::uint64_t seed = 1;
  std::uint32_t max_block_items = 4096;   // paper: 4096 txs per consensus round
  SimTime view_timeout = 120 * kSecond;
  SimTime pending_timeout = 90 * kSecond;  // channel-side state-gathering timeout
  /// Lock conflicts re-enqueue the transaction for this many later blocks
  /// before Phase 1 gives up and emits an AbortRequest (mempool retry, as in
  /// real implementations).
  std::uint32_t max_lock_retries = 24;
  Pipeline pipeline = Pipeline::kFull;
  /// Worker threads for batch transaction execution (src/exec/).  Results are
  /// bit-identical for every value; 1 = serial, no threads spawned.
  std::uint32_t exec_workers = 1;
};

struct Genesis {
  std::uint64_t num_accounts = 0;
  std::uint64_t initial_balance = 0;
  std::vector<std::shared_ptr<const vm::ContractLogic>> contracts;
  std::vector<ledger::ContractState> initial_states;  // parallel to contracts
};

class JengaSystem {
 public:
  JengaSystem(sim::Simulator& sim, sim::Network& net, JengaConfig config, Genesis genesis);
  ~JengaSystem();

  JengaSystem(const JengaSystem&) = delete;
  JengaSystem& operator=(const JengaSystem&) = delete;

  /// Starts all replicas; call once before submitting.
  void start();

  /// Client submits a transaction at the current simulation time.
  void submit(TxPtr tx);

  [[nodiscard]] const TxStats& stats() const { return stats_; }
  [[nodiscard]] const Lattice& lattice() const { return *lattice_; }
  [[nodiscard]] const JengaConfig& config() const { return config_; }

  /// Average per-node storage at the current moment (Fig. 7a's metric).
  [[nodiscard]] StorageReport storage_report() const;

  /// Introspection for tests.
  [[nodiscard]] const ledger::Chain& shard_chain(ShardId s) const;
  [[nodiscard]] const ledger::StateStore& shard_store(ShardId s) const;
  [[nodiscard]] std::uint64_t total_account_balance() const;
  [[nodiscard]] std::size_t held_locks() const;
  /// Transactions submitted but neither committed nor aborted yet.
  [[nodiscard]] std::size_t in_flight() const { return tracker_.size(); }
  /// Safety violations observed: two replicas of one group deciding different
  /// digests at the same height.  Must stay 0 under every fault schedule.
  [[nodiscard]] std::uint64_t divergent_decides() const { return divergent_decides_; }

  /// Canonical digest over every shard's chain tip and state store — the
  /// ledger root the determinism tests compare across exec worker counts.
  [[nodiscard]] Hash256 ledger_digest() const;

  /// Marks a node Byzantine-silent (consensus-level fault injection).
  void set_node_silent(NodeId node);
  /// Generalized consensus-level fault injection: the mode applies to both of
  /// the node's replicas (state shard and execution channel).
  void set_node_byzantine(NodeId node, consensus::ByzantineMode mode);
  /// Call after bringing a crashed node back up: both of its replicas request
  /// state sync so they catch up instead of silently resuming at a stale
  /// height.
  void on_node_recovered(NodeId node);

  /// Attaches a telemetry context (nullptr detaches): per-tx phase tracing in
  /// this layer, BFT sub-spans in every replica.  Call before start().
  /// Recording is passive — an instrumented run is bit-identical to a bare one.
  void set_telemetry(telemetry::Telemetry* t);

  /// Replica introspection for fault injection and tests.
  [[nodiscard]] const consensus::Replica& shard_replica(NodeId node) const {
    return *shard_replicas_[node.value];
  }
  [[nodiscard]] const consensus::Replica* channel_replica(NodeId node) const {
    return channel_replicas_[node.value].get();
  }
  /// The node currently leading shard `s`'s consensus (as seen by the first
  /// member's replica) — the target for leader-assassination faults.
  [[nodiscard]] NodeId shard_leader(ShardId s) const;

 private:
  struct ShardEngine;
  struct ChannelEngine;
  struct ShardApp;
  struct ChannelApp;

  [[nodiscard]] std::vector<ShardId> involved_shards(const ledger::Transaction& tx) const;
  [[nodiscard]] NodeId shard_contact(ShardId s) const;
  [[nodiscard]] NodeId channel_contact(ChannelId c) const;
  void on_node_message(NodeId node, const sim::Message& msg);
  void handle_client_tx(NodeId node, const sim::Message& msg);
  void handle_grant_batch(NodeId node, const sim::Message& msg);
  void handle_result_batch(NodeId node, const sim::Message& msg);
  void handle_two_pc(NodeId node, const sim::Message& msg);
  void tx_shard_finished(const Hash256& tx_hash, bool ok);
  void note_decide(std::uint64_t group_tag, std::uint64_t height, const Hash256& digest);
  /// Forwarding-duty gossip of a certified outcome (grants into a channel,
  /// results into a shard).  On a lossless network this is one gossip; when a
  /// link-fault profile is active the relay re-gossips twice more (receivers
  /// dedup by batch key), because a fully lost outcome relay has no other
  /// retransmission path and would wedge its transactions' locks forever.
  void relay_gossip(NodeId node, const std::vector<NodeId>& group, const sim::Message& msg);

  // Consensus app plumbing (payload types are internal to the .cpp).
  [[nodiscard]] std::optional<consensus::ConsensusValue> shard_propose(ShardEngine& eng,
                                                                       std::uint64_t height);
  void shard_decide(ShardEngine& eng, NodeId node, std::uint64_t height,
                    const consensus::ConsensusValue& value);
  [[nodiscard]] std::optional<consensus::ConsensusValue> channel_propose(ChannelEngine& eng,
                                                                         std::uint64_t height);
  void channel_decide(ChannelEngine& eng, NodeId node, std::uint64_t height,
                      const consensus::ConsensusValue& value);

  /// Executes the gathered-and-ready transactions of one gather unit (up to
  /// `limit`) as a single parallel batch (Phase 2, src/exec/), returning the
  /// (tx, result) entries in canonical ready order.  Phase-1 locks guarantee
  /// the bundles are disjoint, so the batch is bit-identical to serial replay
  /// for every worker count.
  [[nodiscard]] std::vector<std::pair<TxPtr, ExecResult>> run_gathered_batch(
      GatherUnit& gather, std::size_t limit);
  [[nodiscard]] std::vector<std::pair<ShardId, ledger::PortableState>> split_per_shard(
      ledger::PortableState updated) const;

  sim::Simulator& sim_;
  sim::Network& net_;
  JengaConfig config_;
  std::unique_ptr<Lattice> lattice_;

  std::vector<std::unique_ptr<ShardEngine>> shards_;
  std::vector<std::unique_ptr<ChannelEngine>> channels_;
  // Replicas are per node: [node] -> shard replica, and channel replica when
  // the full pipeline runs channels as consensus groups.
  std::vector<std::unique_ptr<consensus::Replica>> shard_replicas_;
  std::vector<std::unique_ptr<consensus::Replica>> channel_replicas_;
  std::vector<std::unique_ptr<ShardApp>> shard_apps_;
  std::vector<std::unique_ptr<ChannelApp>> channel_apps_;

  // All contract logic (network-wide in kFull/kNoLattice).
  ledger::LogicStore all_logic_;

  // Batch execution engine shared by every execution site (Phase 2).
  std::unique_ptr<exec::Engine> exec_engine_;

  // Per-tx completion tracking.
  struct TrackEntry {
    SimTime submitted = 0;
    std::uint32_t shards_left = 0;
    bool aborted = false;
  };
  std::unordered_map<Hash256, TrackEntry> tracker_;
  /// Transactions by hash, so result batches can be matched back to their tx
  /// without shipping the tx in every message.
  std::unordered_map<Hash256, TxPtr> tx_for_result_;
  TxStats stats_;

  // First digest decided per (group tag, height), for divergence detection
  // across the replicas of each group.
  std::map<std::pair<std::uint64_t, std::uint64_t>, Hash256> decide_ledger_;
  std::uint64_t divergent_decides_ = 0;

  std::uint64_t contact_rr_ = 0;  // round-robin over members for client entry

  telemetry::Telemetry* telemetry_ = nullptr;
};

}  // namespace jenga::core
