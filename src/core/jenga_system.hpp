// The Jenga system: S state shards × S execution channels over N nodes,
// network-wide logic storage, and the three-phase cross-shard consensus
// protocol (paper §V).
//
// Simulation architecture
// -----------------------
// Consensus is fully per-node: every node runs a BFT replica for its state
// shard and (in the full pipeline) one for its execution channel, and all
// protocol messages travel through the simulated network with real timing.
// The *application state* behind each group (state store, locks, chain,
// mempool) is kept as one logical copy per group: honest replicas are
// deterministic and decide identical values, so replicating the bytes per
// node would multiply memory without changing any observable metric.  The
// first replica to decide a height performs the shared state transition;
// every replica then performs its own node-local forwarding duty (subgroup
// relaying), which is where Jenga's communication pattern lives.
//
// Pipelines (the Fig. 5b/6b ablations):
//   kFull            — grants/results travel shard<->channel through
//                      overlapped subgroups (intra-group broadcasts only).
//   kNoLattice       — "Jenga w/o Orthogonal Lattice Structure": logic is
//                      still everywhere, but execution happens on a state
//                      shard chosen by tx hash, and states/results move with
//                      ordinary cross-shard messages (client-relayed).
//   kNoGlobalLogic   — "Jenga w/o Network-Wide Logic Storage": the lattice
//                      stands, but logic lives only on its home shard, so a
//                      transaction executes step-by-step across the home
//                      shards of its contracts (multi-round), with
//                      intermediate results relayed through subgroups.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/stats.hpp"
#include "consensus/bft.hpp"
#include "core/epoch.hpp"
#include "core/lattice.hpp"
#include "core/protocol_messages.hpp"
#include "core/recovery.hpp"
#include "ledger/block.hpp"
#include "ledger/locks.hpp"
#include "ledger/state_store.hpp"
#include "ledger/storage_env.hpp"
#include "simnet/network.hpp"

namespace jenga::exec {
class Engine;
}

namespace jenga::security {
class FailureDetector;
}

namespace jenga::gossip {
class RumorMesh;
class Batcher;
struct RumorStats;
struct BatchStats;
}  // namespace jenga::gossip

namespace jenga::core {

/// Shared state-gathering unit (defined in jenga_system.cpp).
struct GatherUnit;

enum class Pipeline : std::uint8_t { kFull = 0, kNoLattice, kNoGlobalLogic };

/// What sits under each shard's StateStore (DESIGN.md §9).
enum class StorageBackendKind : std::uint8_t {
  kNone = 0,   // trie-authenticated only, nothing persisted (pre-PR behaviour)
  kInMemory,   // InMemoryBackend: the bit-identity oracle
  kDurable,    // DurableBackend over a per-shard MemStorageEnv (WAL + snapshots)
};

struct JengaConfig {
  std::uint32_t num_shards = 4;
  std::uint32_t nodes_per_shard = 16;  // must be a multiple of num_shards
  std::uint64_t seed = 1;
  std::uint32_t max_block_items = 4096;   // paper: 4096 txs per consensus round
  SimTime view_timeout = 120 * kSecond;
  SimTime pending_timeout = 90 * kSecond;  // channel-side state-gathering timeout
  /// Lock conflicts re-enqueue the transaction for this many later blocks
  /// before Phase 1 gives up and emits an AbortRequest (mempool retry, as in
  /// real implementations).
  std::uint32_t max_lock_retries = 24;
  /// 2PC inflight watchdog: a cross-shard transfer whose debit applied but
  /// whose round has not finalized within this window is flagged as stuck
  /// (`twopc.stuck` counter, audited by security::check_invariants).  Beyond
  /// flagging, the watchdog drives the recovery ladder below: a flagged
  /// round is re-requested and, failing that, force-settled — so a gray
  /// fault degrades latency, never liveness.  0 disables both.
  SimTime twopc_stuck_timeout = 60 * kSecond;
  /// Stuck-2PC recovery ladder (probe -> force-abort -> refund + retry); see
  /// core/recovery.hpp and DESIGN.md §14.  `recovery.enabled = false`
  /// restores the observe-only watchdog.
  RecoveryConfig recovery;
  Pipeline pipeline = Pipeline::kFull;
  /// Worker threads for batch transaction execution (src/exec/).  Results are
  /// bit-identical for every value; 1 = serial, no threads spawned.
  std::uint32_t exec_workers = 1;

  // --- Live epoch reconfiguration (paper §V-D) -----------------------------
  /// > 0: reshuffle the lattice every `epoch_interval` of simulated time.
  /// 0 (default) disables reconfiguration entirely — the lattice is built
  /// once and every run is bit-identical to the pre-epoch behaviour.
  SimTime epoch_interval = 0;
  /// Bounded drain window before each cutover: shards stop admitting new
  /// Phase-1 work while in-flight transactions finish.
  SimTime epoch_drain_window = 10 * kSecond;
  /// How long before the cutover the beacon round starts (VRF contributions
  /// gossiped as real messages; the quorum must land within this lead).
  SimTime epoch_beacon_lead = 20 * kSecond;
  /// Contributions required to finalize the beacon; 0 = 2N/3 + 1.
  std::size_t epoch_min_contributions = 0;
  /// VDF difficulty for the beacon finalize (small values keep tests fast;
  /// the paper's deployment would use hours' worth of sequential squarings).
  std::uint64_t epoch_vdf_iterations = 256;
  std::size_t epoch_vdf_checkpoints = 8;

  // --- Durable authenticated state (DESIGN.md §9) --------------------------
  StorageBackendKind storage_backend = StorageBackendKind::kNone;
  /// Durable backend: full snapshot every N commits (0 = WAL-only).
  std::uint32_t storage_snapshot_interval = 64;
  /// Model proof-verified state sync when a node recovers from a crash or is
  /// rehomed to a different shard at an epoch cutover: reopen its durable
  /// image, then fetch divergent state from a peer as snapshot + per-key
  /// Merkle proofs (Byzantine peers serve tampered entries, which must be
  /// rejected), falling back to an unverified full copy if every proof-
  /// serving peer lied.
  bool model_state_sync = false;
};

/// Counters for relay-certificate verification (mirrored into telemetry as
/// `relay.*`).  Every grant/result batch carries the commit certificate of
/// the consensus decision that produced it; receivers check it before
/// ingesting.  Batches arriving inside a gossip frame are pooled into one
/// aggregate-verified pass (`batch_passes`) covering `batch_certs`
/// certificates — the ISSUE's ≥4× signature-check reduction.
struct CertVerifyStats {
  std::uint64_t individual_checks = 0;  // certs verified one at a time
  std::uint64_t batch_passes = 0;       // pooled batch verifications run
  std::uint64_t batch_certs = 0;        // certs covered by those passes
  std::uint64_t batch_fallbacks = 0;    // pooled pass failed -> per-cert retry
  std::uint64_t invalid_certs = 0;      // batches rejected (bad cert)
  std::uint64_t unsigned_batches = 0;   // synthetic late-abort answers (no cert)
};

/// Counters for recovery-time state sync (mirrored into telemetry as
/// `state_sync.*` / `storage.*`; audited by security::check_invariants).
struct StateSyncStats {
  std::uint64_t syncs = 0;             // recovery/rehome syncs modeled
  std::uint64_t already_current = 0;   // durable image matched the group root
  std::uint64_t keys_verified = 0;     // entries accepted with a valid proof
  std::uint64_t proof_rejections = 0;  // tampered/invalid proofs rejected
  std::uint64_t full_syncs = 0;        // fallbacks to unverified full copy
  std::uint64_t bytes_synced = 0;      // wire bytes of verified entries
  std::uint64_t recovery_refusals = 0; // corrupt durable images refused
  /// Syncs that ended with a root still != the group root.  Must stay 0: an
  /// honest peer always exists in the tested configurations.
  std::uint64_t root_mismatches = 0;
};

/// Counters for the reconfiguration subsystem (mirrored into telemetry as
/// `epoch.*`; audited by security::check_invariants).
struct EpochStats {
  std::uint64_t transitions = 0;           // completed cutovers
  std::uint64_t txs_requeued = 0;          // force-aborted at a boundary and re-ingested
  std::uint64_t contributions_accepted = 0;
  std::uint64_t contributions_rejected = 0;  // bad proof / wrong epoch / unknown node
  std::uint64_t postponements = 0;         // cutover retries (quorum or drain not ready)
  /// Boundary audit failures — both must stay 0 under every fault schedule.
  std::uint64_t boundary_lock_leaks = 0;       // locks alive after the force-abort sweep
  std::uint64_t boundary_balance_mismatches = 0;  // conservation broken at a boundary
};

struct Genesis {
  std::uint64_t num_accounts = 0;
  std::uint64_t initial_balance = 0;
  std::vector<std::shared_ptr<const vm::ContractLogic>> contracts;
  std::vector<ledger::ContractState> initial_states;  // parallel to contracts
};

class JengaSystem {
 public:
  JengaSystem(sim::Simulator& sim, sim::Network& net, JengaConfig config, Genesis genesis);
  ~JengaSystem();

  JengaSystem(const JengaSystem&) = delete;
  JengaSystem& operator=(const JengaSystem&) = delete;

  /// Starts all replicas; call once before submitting.
  void start();

  /// Client submits a transaction at the current simulation time.
  void submit(TxPtr tx);

  [[nodiscard]] const TxStats& stats() const { return stats_; }
  [[nodiscard]] const Lattice& lattice() const { return *lattice_; }
  [[nodiscard]] const JengaConfig& config() const { return config_; }

  /// Average per-node storage at the current moment (Fig. 7a's metric).
  [[nodiscard]] StorageReport storage_report() const;

  /// Introspection for tests.
  [[nodiscard]] const ledger::Chain& shard_chain(ShardId s) const;
  [[nodiscard]] const ledger::StateStore& shard_store(ShardId s) const;
  [[nodiscard]] std::uint64_t total_account_balance() const;
  [[nodiscard]] std::size_t held_locks() const;
  /// Transactions submitted but neither committed nor aborted yet.
  [[nodiscard]] std::size_t in_flight() const { return tracker_.size(); }
  /// 2PC rounds with an applied debit awaiting finalization right now.
  [[nodiscard]] std::size_t twopc_inflight() const { return twopc_inflight_.size(); }
  /// Inflight 2PC entries currently older than `twopc_stuck_timeout`
  /// (snapshot view, for the invariant audit).
  [[nodiscard]] std::size_t twopc_stuck_now() const;
  /// Total entries ever flagged stuck by the watchdog (monotonic).
  [[nodiscard]] std::uint64_t twopc_stuck_total() const { return twopc_stuck_total_; }
  /// Safety violations observed: two replicas of one group deciding different
  /// digests at the same height.  Must stay 0 under every fault schedule.
  [[nodiscard]] std::uint64_t divergent_decides() const { return divergent_decides_; }

  /// Current epoch index (0 until the first live reshuffle completes).
  [[nodiscard]] std::uint64_t current_epoch() const { return epoch_; }
  [[nodiscard]] const EpochStats& epoch_stats() const { return epoch_stats_; }
  /// True while a reshuffle's drain window is open (shards hold new Phase-1
  /// work; in-flight transactions are finishing).
  [[nodiscard]] bool draining() const { return draining_; }

  /// Registers a hook invoked inside each epoch cutover, after the old
  /// lattice stopped and before the new one starts: the moment boundary churn
  /// (crashing departing nodes / reviving joiners) belongs to.  The hook gets
  /// the new epoch index and may toggle node up/down state on the network.
  void set_epoch_boundary_hook(std::function<void(std::uint64_t)> hook) {
    boundary_hook_ = std::move(hook);
  }

  /// Canonical digest over every shard's chain tip and state store — the
  /// ledger root the determinism tests compare across exec worker counts.
  [[nodiscard]] Hash256 ledger_digest() const;

  /// Order-independent digest over every shard's final state store plus the
  /// committed/aborted totals.  Unlike ledger_digest() this excludes chain
  /// tips (whose block boundaries depend on message timing), so it is
  /// comparable ACROSS transport modes: with a conflict-free workload the
  /// final state is transport-invariant even though block schedules differ.
  [[nodiscard]] Hash256 state_digest() const;

  [[nodiscard]] const CertVerifyStats& cert_stats() const { return cert_stats_; }
  /// The rumor mesh this system created (nullptr when no message class uses
  /// Transport::kRumor).
  [[nodiscard]] gossip::RumorMesh* rumor_mesh() const { return mesh_.get(); }
  /// The per-(relay source, group) batcher (nullptr unless relays ride the
  /// rumor transport with a non-zero batch window).
  [[nodiscard]] gossip::Batcher* batcher() const { return batcher_.get(); }

  /// Attaches the phi-accrual failure detector (nullptr detaches).  Wires
  /// its suspicion signal into this layer's repair machinery: adaptive BFT
  /// view timeouts on every replica, hotter rumor pull-repair cadence while
  /// degraded, and hedged 2PC legs toward suspected contacts.  The detector
  /// itself is passive until armed (see security/detector.hpp); attaching it
  /// to a clean run changes nothing.
  void set_failure_detector(security::FailureDetector* detector);
  [[nodiscard]] security::FailureDetector* failure_detector() const { return detector_; }
  /// Recovery-ladder activity (probes, force-aborts, refunds, hedges, ...).
  [[nodiscard]] const RecoveryStats& recovery_stats() const { return recovery_stats_; }

  /// Marks a node Byzantine-silent (consensus-level fault injection).
  void set_node_silent(NodeId node);
  /// Generalized consensus-level fault injection: the mode applies to both of
  /// the node's replicas (state shard and execution channel).
  void set_node_byzantine(NodeId node, consensus::ByzantineMode mode);
  /// Call after bringing a crashed node back up: both of its replicas request
  /// state sync so they catch up instead of silently resuming at a stale
  /// height.  With `model_state_sync` on, additionally models the node's
  /// application-state recovery: reopen the durable image, proof-verified
  /// delta sync from a peer, full-copy fallback (see StateSyncStats).
  void on_node_recovered(NodeId node);

  // --- Storage fault injection (durable backend; no-ops otherwise) ---------
  /// The next WAL append on shard `s` persists only `keep_bytes` of its
  /// buffer — a torn write at a sector boundary.
  void storage_torn_write(ShardId s, std::uint64_t keep_bytes);
  /// While on, fsyncs on shard `s` complete but durabilize nothing.
  void storage_drop_fsyncs(ShardId s, bool drop);
  /// Flips one bit of shard `s`'s durable WAL image (latent corruption,
  /// discovered only at recovery).
  void storage_flip_bit(ShardId s, std::uint64_t bit_offset);

  [[nodiscard]] const StateSyncStats& state_sync_stats() const { return sync_stats_; }
  /// The shard's simulated disk (nullptr unless storage_backend == kDurable).
  [[nodiscard]] ledger::MemStorageEnv* storage_env(ShardId s) const {
    return s.value < storage_envs_.size() ? storage_envs_[s.value].get() : nullptr;
  }

  /// Attaches a telemetry context (nullptr detaches): per-tx phase tracing in
  /// this layer, BFT sub-spans in every replica.  Call before start().
  /// Recording is passive — an instrumented run is bit-identical to a bare one.
  void set_telemetry(telemetry::Telemetry* t);

  /// Replica introspection for fault injection and tests.
  [[nodiscard]] const consensus::Replica& shard_replica(NodeId node) const {
    return *shard_replicas_[node.value];
  }
  [[nodiscard]] const consensus::Replica* channel_replica(NodeId node) const {
    return channel_replicas_[node.value].get();
  }
  /// The node currently leading shard `s`'s consensus (as seen by the first
  /// member's replica) — the target for leader-assassination faults.
  [[nodiscard]] NodeId shard_leader(ShardId s) const;

 private:
  struct ShardEngine;
  struct ChannelEngine;
  struct ShardApp;
  struct ChannelApp;

  [[nodiscard]] std::vector<ShardId> involved_shards(const ledger::Transaction& tx) const;
  [[nodiscard]] NodeId shard_contact(ShardId s) const;
  [[nodiscard]] NodeId channel_contact(ChannelId c) const;
  /// Epoch-salted consensus group tags: heights restart at 0 after each
  /// reshuffle, so the (tag, height) space must be disjoint across epochs.
  [[nodiscard]] std::uint64_t shard_tag(ShardId s) const;
  [[nodiscard]] std::uint64_t channel_tag(ChannelId c) const;

  // --- Epoch reconfiguration ------------------------------------------------
  /// (Re)creates every node's shard/channel replica + app from the current
  /// lattice and epoch (shared per-group configs, epoch-salted tags/seeds),
  /// reapplying Byzantine roles and telemetry.  Does not start them.
  void build_replicas();
  /// Schedules the next beacon round, drain start, and cutover attempt,
  /// `epoch_interval` from now.
  void schedule_epoch_cycle();
  /// Every live, non-silent node evaluates its VRF over the beacon input and
  /// gossips the contribution to the whole network.
  void start_beacon_round(std::uint64_t target_epoch);
  void handle_epoch_contribution(const sim::Message& msg);
  /// Opens the drain window: parks queued Phase-1 work (new state
  /// determinations, new 2PC rounds) so only in-flight work runs down.
  void begin_drain(std::uint64_t target_epoch);
  /// Cutover preconditions: beacon quorum reached, no transaction with a
  /// partially-applied outcome, no 2PC round mid-flight.  Retries on a short
  /// timer until they hold, then performs the cutover.
  void try_cutover(std::uint64_t target_epoch);
  void perform_cutover(std::uint64_t target_epoch);
  /// Beacon quorum size: config override, or 2N/3 + 1.
  [[nodiscard]] std::size_t min_contributions() const;
  /// Answers a grant that arrived after its transaction's gather entry already
  /// expired (the grants-then-no-tx case): sends a single abort result back to
  /// the granting shard so its Phase-1 locks release.
  void answer_dead_grant(GatherUnit& gather, std::uint32_t responder_group, NodeId node,
                         const StateGrant& grant);
  /// Re-ingests a force-aborted transaction into the (new-epoch) mempools and
  /// gathers, preserving its tracker entry and submit timestamp.
  void reingest(const TxPtr& tx);
  /// Models one node's application-state recovery (crash recovery or rehome)
  /// against its shard's canonical store; updates sync_stats_ / telemetry.
  /// `use_durable_image` is false for rehomed nodes — their disk holds their
  /// OLD shard's state, useless for the new one, so they sync from empty.
  void model_recovery_sync(NodeId node, bool use_durable_image);
  void on_node_message(NodeId node, const sim::Message& msg);
  void handle_client_tx(NodeId node, const sim::Message& msg);
  void handle_grant_batch(NodeId node, const sim::Message& msg);
  void handle_result_batch(NodeId node, const sim::Message& msg);
  void handle_two_pc(NodeId node, const sim::Message& msg);
  /// Unpacks a batched relay frame: pools the contained batches' commit
  /// certificates into ONE aggregate-verified pass, then dispatches each
  /// inner message as if it had arrived individually.
  void handle_batch_frame(NodeId node, const sim::Message& msg);
  /// True when the engine owning `inner` at this receiver has already
  /// ingested it (or would drop it unread): its cert needs no pooling, so
  /// duplicate frames from co-relayers cost zero crypto — mirroring the
  /// dedup-before-verify order of the unbatched handlers.
  [[nodiscard]] bool frame_item_seen(NodeId node, const sim::Message& inner) const;
  /// Batched mode: instead of verifying a relay batch's cert on arrival, the
  /// receiving engine parks it until the next window boundary and verifies
  /// every cert that arrived in the window — from ALL source groups (at S
  /// shards a channel hears up to S granting shards concurrently) — in ONE
  /// aggregated pass.  Returns true when the batch was parked (or is a
  /// duplicate of a parked one) and the handler should stop.
  bool try_park_for_pooled_verify(NodeId node, const sim::Message& msg,
                                  std::uint64_t pool_tag, std::uint64_t dedup_key,
                                  const consensus::QuorumCert& cert);
  void flush_verify_pool(std::uint64_t pool_tag);
  /// Verifies a relay batch's commit certificate against the source group's
  /// vote keys.  Skipped (and counted) for unsigned synthetic batches, and
  /// for certs already covered by a frame's pooled batch verification.
  [[nodiscard]] bool verify_relay_cert(const consensus::QuorumCert& cert, bool channel_group,
                                       std::uint32_t gid);
  /// Cached vote-key ids of a group under the CURRENT epoch's key schedule.
  [[nodiscard]] const std::vector<std::uint64_t>& source_public_ids(bool channel_group,
                                                                    std::uint32_t gid);
  void tx_shard_finished(const Hash256& tx_hash, bool ok);
  void note_decide(std::uint64_t group_tag, std::uint64_t height, const Hash256& digest);
  /// Forwarding-duty dissemination of a certified outcome (grants into a
  /// channel, results into a shard) or a beacon contribution.  Routed per the
  /// network's transport mode for `kind` (DESIGN.md §12): under kRumor the
  /// message enters the push-pull mesh (whose pull repair IS the
  /// retransmission path, so no blind re-sends are needed); under kNaive /
  /// kTree it is a legacy gossip, re-sent twice more when a link-fault
  /// profile is active, because a fully lost outcome relay would otherwise
  /// wedge its transactions' locks forever (receivers dedup by batch key).
  void relay_gossip(NodeId node, const std::vector<NodeId>& group, const sim::Message& msg,
                    sim::BroadcastKind kind = sim::BroadcastKind::kRelay);

  /// Handles recovery-ladder opcodes (TwoPcPayload::op != kLeg): probes and
  /// force-abort queries at the destination shard, their replies at the
  /// coordinator's shard.
  void handle_two_pc_recovery(NodeId node, const sim::Message& msg);
  /// Unicast a 2PC leg to the destination shard's contact; when the failure
  /// detector suspects that contact from `from`'s vantage, the same message
  /// is duplicated to the deterministically-next group member (hedged send —
  /// attempt-scoped dedup makes the duplicate harmless).
  void send_two_pc(NodeId from, ShardId dest, const sim::Message& msg);
  /// Attempt-scoped 2PC dedup key ("2pc-p"/"2pc-c" + tx hash + attempt).
  /// Attempt 0 hashes exactly the pre-recovery key, so clean runs keep
  /// bit-identical dedup state.
  [[nodiscard]] static Hash256 twopc_key(const char* tag, const Hash256& h,
                                         std::uint32_t attempt);

  // Consensus app plumbing (payload types are internal to the .cpp).
  /// Flags inflight 2PC entries older than `twopc_stuck_timeout` (once each)
  /// into `twopc_stuck_total_` and the `twopc.stuck` counter, then walks the
  /// recovery ladder for every flagged round (when config_.recovery.enabled).
  void twopc_watchdog_scan();

  [[nodiscard]] std::optional<consensus::ConsensusValue> shard_propose(ShardEngine& eng,
                                                                       std::uint64_t height);
  void shard_decide(ShardEngine& eng, NodeId node, std::uint64_t height,
                    const consensus::ConsensusValue& value, const consensus::QuorumCert& cert);
  [[nodiscard]] std::optional<consensus::ConsensusValue> channel_propose(ChannelEngine& eng,
                                                                         std::uint64_t height);
  void channel_decide(ChannelEngine& eng, NodeId node, std::uint64_t height,
                      const consensus::ConsensusValue& value, const consensus::QuorumCert& cert);

  /// Executes the gathered-and-ready transactions of one gather unit (up to
  /// `limit`) as a single parallel batch (Phase 2, src/exec/), returning the
  /// (tx, result) entries in canonical ready order.  Phase-1 locks guarantee
  /// the bundles are disjoint, so the batch is bit-identical to serial replay
  /// for every worker count.
  [[nodiscard]] std::vector<std::pair<TxPtr, ExecResult>> run_gathered_batch(
      GatherUnit& gather, std::size_t limit);
  [[nodiscard]] std::vector<std::pair<ShardId, ledger::PortableState>> split_per_shard(
      ledger::PortableState updated) const;

  sim::Simulator& sim_;
  sim::Network& net_;
  JengaConfig config_;
  std::unique_ptr<Lattice> lattice_;

  // --- Dissemination subsystem (src/gossip/, DESIGN.md §12) ----------------
  /// Created iff any message class runs Transport::kRumor; registered with
  /// the network so rumor-transport frames route here.
  std::unique_ptr<gossip::RumorMesh> mesh_;
  /// Coalesces forwarding-duty relays per (relayer, group) within a
  /// batch-window cadence into single framed messages (rumor mode only).
  std::unique_ptr<gossip::Batcher> batcher_;
  CertVerifyStats cert_stats_;
  /// True while dispatching relay batches whose certs the pooled batch
  /// verification already covered — per-batch checks become no-ops.
  bool certs_preverified_ = false;
  /// True while re-dispatching a pool whose aggregated pass failed: handlers
  /// verify individually (isolating the forged cert) instead of re-parking.
  bool pool_bypass_ = false;
  /// Receiver-side pooled verification (batched mode), keyed by the receiving
  /// engine's group tag.
  struct VerifyPool {
    std::vector<std::pair<NodeId, sim::Message>> parked;
    std::unordered_set<std::uint64_t> keys;  // parked dedup keys (dup-drop)
    bool flush_scheduled = false;
  };
  std::unordered_map<std::uint64_t, VerifyPool> verify_pools_;
  /// Vote-key id cache: epoch-salted group tag -> public ids.
  std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> group_pubids_;

  std::vector<std::unique_ptr<ShardEngine>> shards_;
  std::vector<std::unique_ptr<ChannelEngine>> channels_;
  /// Per-shard simulated disks (storage_backend == kDurable only).
  std::vector<std::unique_ptr<ledger::MemStorageEnv>> storage_envs_;
  StateSyncStats sync_stats_;
  // Replicas are per node: [node] -> shard replica, and channel replica when
  // the full pipeline runs channels as consensus groups.
  std::vector<std::unique_ptr<consensus::Replica>> shard_replicas_;
  std::vector<std::unique_ptr<consensus::Replica>> channel_replicas_;
  std::vector<std::unique_ptr<ShardApp>> shard_apps_;
  std::vector<std::unique_ptr<ChannelApp>> channel_apps_;

  // All contract logic (network-wide in kFull/kNoLattice).
  ledger::LogicStore all_logic_;

  // Batch execution engine shared by every execution site (Phase 2).
  std::unique_ptr<exec::Engine> exec_engine_;

  // Per-tx completion tracking.
  struct TrackEntry {
    SimTime submitted = 0;
    std::uint32_t shards_left = 0;
    bool aborted = false;
  };
  std::unordered_map<Hash256, TrackEntry> tracker_;
  /// Transactions by hash, so result batches can be matched back to their tx
  /// without shipping the tx in every message.
  std::unordered_map<Hash256, TxPtr> tx_for_result_;
  TxStats stats_;

  // First digest decided per (group tag, height), for divergence detection
  // across the replicas of each group.
  std::map<std::pair<std::uint64_t, std::uint64_t>, Hash256> decide_ledger_;
  std::uint64_t divergent_decides_ = 0;

  std::uint64_t contact_rr_ = 0;  // round-robin over members for client entry

  // --- Epoch reconfiguration state -----------------------------------------
  std::uint64_t epoch_ = 0;
  std::unique_ptr<EpochManager> epoch_mgr_;
  std::vector<crypto::KeyPair> beacon_keys_;  // per-node VRF keys
  std::vector<NodeId> all_nodes_;             // beacon gossip group
  EpochStats epoch_stats_;
  bool draining_ = false;
  SimTime drain_started_at_ = 0;
  /// Sum of genesis balances; the boundary conservation audit's baseline.
  std::uint64_t initial_balance_ = 0;
  /// Cross-shard transfers whose debit applied but whose 2PC round has not
  /// finalized; the cutover waits for this to empty (a force-abort here would
  /// either lose or double the debit).  Each entry remembers when its debit
  /// applied and whether the watchdog already flagged it stuck.
  struct TwoPcEntry {
    SimTime since = 0;
    bool flagged = false;
    /// Retry attempt this entry belongs to (0 = original round).  Replies
    /// carrying a different attempt are stale and ignored.
    std::uint32_t attempt = 0;
    /// Node whose decide opened the round; ladder traffic originates here.
    NodeId coordinator{};
    /// Recovery-ladder position (see core/recovery.hpp).
    LadderState ladder;
    /// The transfer itself, so the ladder can rebuild probe/query payloads.
    TxPtr tx;
  };
  std::unordered_map<Hash256, TwoPcEntry> twopc_inflight_;
  std::uint64_t twopc_stuck_total_ = 0;
  /// Failure detector feeding adaptive timeouts + hedging (not owned; the
  /// harness wires it so all system variants share one construction path).
  security::FailureDetector* detector_ = nullptr;
  RecoveryStats recovery_stats_;
  /// Client-tx hashes already re-routed once after landing on a node whose
  /// new-epoch assignment no longer matches the submit-time contact.
  std::unordered_set<Hash256> rerouted_;
  /// Byzantine roles survive reshuffles (the adversary corrupts nodes, not
  /// seats); reapplied to freshly built replicas.
  std::unordered_map<std::uint32_t, consensus::ByzantineMode> byz_modes_;
  /// Stopped pre-reshuffle replicas/apps.  Scheduled lambdas capture replica
  /// pointers, so these stay allocated until the system is destroyed.
  std::vector<std::unique_ptr<consensus::Replica>> retired_replicas_;
  std::vector<std::unique_ptr<ShardApp>> retired_shard_apps_;
  std::vector<std::unique_ptr<ChannelApp>> retired_channel_apps_;
  std::function<void(std::uint64_t)> boundary_hook_;

  telemetry::Telemetry* telemetry_ = nullptr;
};

}  // namespace jenga::core
