// Tiny text assembler for VM bytecode.
//
// Lets examples and tests write contracts readably:
//
//   ; double the stored counter
//   PUSH 0        ; key
//   PUSH 0
//   SLOAD
//   PUSH 2
//   MUL
//   SSTORE
//   RETURN
//
// Supports labels ("loop:") referenced by JUMP/JZ, and "CALL slot fn".
#pragma once

#include <string>
#include <string_view>

#include "common/result.hpp"
#include "vm/bytecode.hpp"

namespace jenga::vm {

/// Assembles one function body.  Returns an error string with a line number
/// on malformed input.
[[nodiscard]] Result<std::vector<Instruction>, std::string> assemble(std::string_view source);

/// Disassembles for debugging/golden tests.
[[nodiscard]] std::string disassemble(const std::vector<Instruction>& code);

}  // namespace jenga::vm
