// Abstract state access used by the VM interpreter.
//
// The ledger provides the concrete store; the protocol layers wrap it in
// views that enforce the transaction's *declared* read/write set (paper
// §V-C: clients pre-declare contracts, accounts and states; misdeclaration
// is detected during execution and aborts the transaction).
#pragma once

#include <cstdint>
#include <optional>

#include "common/types.hpp"

namespace jenga::vm {

class StateView {
 public:
  virtual ~StateView() = default;

  /// Contract storage; absent keys read as 0 (EVM convention).
  [[nodiscard]] virtual std::optional<std::uint64_t> sload(ContractId contract,
                                                           std::uint64_t key) = 0;
  /// Returns false if the access is not permitted (undeclared state).
  virtual bool sstore(ContractId contract, std::uint64_t key, std::uint64_t value) = 0;

  [[nodiscard]] virtual std::optional<std::uint64_t> balance(AccountId account) = 0;
  virtual bool credit(AccountId account, std::uint64_t amount) = 0;
  /// Returns false on undeclared account OR insufficient funds.
  virtual bool debit(AccountId account, std::uint64_t amount) = 0;
};

}  // namespace jenga::vm
