// VM interpreter: executes a call chain of contract functions against a
// StateView, with gas metering and cross-contract calls.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "vm/bytecode.hpp"
#include "vm/state_view.hpp"

namespace jenga::vm {

enum class ExecStatus : std::uint8_t {
  kSuccess = 0,
  kOutOfGas,
  kStackUnderflow,
  kStackOverflow,
  kDivisionByZero,
  kBadJump,
  kBadCall,
  kUndeclaredAccess,  // touched state/account outside the declared set
  kInsufficientFunds,
  kExplicitAbort,
  kCallDepthExceeded,
  kStepLimitExceeded,
};

[[nodiscard]] const char* exec_status_name(ExecStatus s);

struct ExecResult {
  ExecStatus status = ExecStatus::kSuccess;
  std::uint64_t gas_used = 0;
  std::uint64_t instructions_executed = 0;
  std::uint64_t contract_calls = 0;  // cross-contract call count (incl. entry)
  std::string detail;

  [[nodiscard]] bool ok() const { return status == ExecStatus::kSuccess; }
};

struct ExecLimits {
  std::uint64_t gas_limit = 1'000'000;
  std::size_t max_stack = 1024;
  std::size_t max_call_depth = 64;
  std::uint64_t max_instructions = 1 << 20;
};

/// One entry in a transaction's call chain: run `function` of the contract in
/// declared slot `contract_slot` with `args`.
struct CallStep {
  std::uint16_t contract_slot = 0;
  std::uint16_t function = 0;
  std::vector<std::uint64_t> args;
};

/// Reusable interpreter scratch storage (the operand stack).  Thread-confined:
/// an execution worker owns one and passes it to every Interpreter it builds,
/// so hot batch loops reuse one allocation instead of growing a fresh stack
/// per transaction.  run() clears it before use, so contents never leak
/// between transactions.
struct ExecScratch {
  std::vector<std::uint64_t> stack;
};

class Interpreter {
 public:
  /// `contracts[i]` is the logic for the transaction's declared slot i.  A
  /// null pointer in a slot means the logic is unavailable (cannot happen in
  /// Jenga where all logic is everywhere; can in baselines).  `scratch`, when
  /// non-null, supplies the operand-stack storage (must outlive the
  /// interpreter and be used by one thread at a time).
  Interpreter(std::span<const ContractLogic* const> contracts, StateView& state,
              ExecLimits limits = {}, ExecScratch* scratch = nullptr);

  /// Executes the steps in order; any failure aborts the whole chain.
  /// The caller is responsible for state rollback (views are transactional).
  [[nodiscard]] ExecResult run(AccountId sender, std::span<const CallStep> steps);

 private:
  ExecStatus exec_function(std::uint16_t slot, std::uint16_t function,
                           std::span<const std::uint64_t> args, std::size_t depth);

  std::span<const ContractLogic* const> contracts_;
  StateView& state_;
  ExecLimits limits_;

  AccountId sender_{};
  ExecScratch own_scratch_;            // backing store when none was injected
  std::vector<std::uint64_t>& stack_;  // either own_scratch_.stack or external
  std::uint64_t gas_used_ = 0;
  std::uint64_t instructions_ = 0;
  std::uint64_t calls_ = 0;
};

}  // namespace jenga::vm
