#include "vm/assembler.hpp"

#include <charconv>
#include <optional>
#include <map>
#include <sstream>
#include <vector>

namespace jenga::vm {
namespace {

struct PendingJump {
  std::size_t instruction_index;
  std::string label;
  std::size_t line_no;
};

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r'))
    s.remove_suffix(1);
  return s;
}

std::optional<Op> parse_op(std::string_view m) {
  static const std::map<std::string, Op, std::less<>> kOps = {
      {"PUSH", Op::kPush},   {"POP", Op::kPop},       {"DUP", Op::kDup},
      {"SWAP", Op::kSwap},   {"ADD", Op::kAdd},       {"SUB", Op::kSub},
      {"MUL", Op::kMul},     {"DIV", Op::kDiv},       {"MOD", Op::kMod},
      {"LT", Op::kLt},       {"EQ", Op::kEq},         {"NOT", Op::kNot},
      {"JUMP", Op::kJump},   {"JZ", Op::kJumpIfZero}, {"SLOAD", Op::kSload},
      {"SSTORE", Op::kSstore}, {"BALANCE", Op::kBalance}, {"CREDIT", Op::kCredit},
      {"DEBIT", Op::kDebit}, {"CALLER", Op::kCaller}, {"ARG", Op::kArg},
      {"HASH", Op::kHash},   {"CALL", Op::kCall},     {"RETURN", Op::kReturn},
      {"ABORT", Op::kAbort},
  };
  auto it = kOps.find(m);
  if (it == kOps.end()) return std::nullopt;
  return it->second;
}

bool needs_imm(Op op) {
  return op == Op::kPush || op == Op::kJump || op == Op::kJumpIfZero || op == Op::kCall;
}

}  // namespace

Result<std::vector<Instruction>, std::string> assemble(std::string_view source) {
  std::vector<Instruction> code;
  std::map<std::string, std::size_t, std::less<>> labels;
  std::vector<PendingJump> pending;

  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= source.size()) {
    const std::size_t nl = source.find('\n', pos);
    std::string_view line =
        source.substr(pos, nl == std::string_view::npos ? std::string_view::npos : nl - pos);
    pos = nl == std::string_view::npos ? source.size() + 1 : nl + 1;
    ++line_no;

    if (const auto comment = line.find(';'); comment != std::string_view::npos)
      line = line.substr(0, comment);
    line = trim(line);
    if (line.empty()) continue;

    if (line.back() == ':') {
      const std::string label(trim(line.substr(0, line.size() - 1)));
      if (label.empty() || labels.contains(label))
        return Err("line " + std::to_string(line_no) + ": bad or duplicate label");
      labels[label] = code.size();
      continue;
    }

    std::istringstream words{std::string(line)};
    std::string mnemonic;
    words >> mnemonic;
    const auto op = parse_op(mnemonic);
    if (!op) return Err("line " + std::to_string(line_no) + ": unknown op '" + mnemonic + "'");

    Instruction ins{*op, 0};
    if (*op == Op::kCall) {
      std::uint64_t slot = 0, fn = 0;
      if (!(words >> slot >> fn))
        return Err("line " + std::to_string(line_no) + ": CALL needs slot and function");
      ins.imm = pack_call(static_cast<std::uint16_t>(slot), static_cast<std::uint16_t>(fn));
    } else if (*op == Op::kJump || *op == Op::kJumpIfZero) {
      std::string target;
      if (!(words >> target))
        return Err("line " + std::to_string(line_no) + ": jump needs a target");
      // Numeric targets allowed; otherwise resolve as a label later.
      std::uint64_t value = 0;
      auto [p, ec] = std::from_chars(target.data(), target.data() + target.size(), value);
      if (ec == std::errc() && p == target.data() + target.size()) {
        ins.imm = value;
      } else {
        pending.push_back({code.size(), target, line_no});
      }
    } else if (needs_imm(*op)) {
      std::uint64_t value = 0;
      if (!(words >> value))
        return Err("line " + std::to_string(line_no) + ": " + mnemonic + " needs an immediate");
      ins.imm = value;
    }
    std::string extra;
    if (words >> extra)
      return Err("line " + std::to_string(line_no) + ": trailing token '" + extra + "'");
    code.push_back(ins);
  }

  for (const auto& jump : pending) {
    const auto it = labels.find(jump.label);
    if (it == labels.end())
      return Err("line " + std::to_string(jump.line_no) + ": unknown label '" + jump.label + "'");
    code[jump.instruction_index].imm = it->second;
  }
  return code;
}

std::string disassemble(const std::vector<Instruction>& code) {
  std::ostringstream out;
  for (std::size_t i = 0; i < code.size(); ++i) {
    out << i << ": " << op_name(code[i].op);
    if (code[i].op == Op::kCall) {
      out << ' ' << call_slot(code[i].imm) << ' ' << call_function(code[i].imm);
    } else if (needs_imm(code[i].op)) {
      out << ' ' << code[i].imm;
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace jenga::vm
