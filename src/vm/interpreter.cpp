#include "vm/interpreter.hpp"

#include "common/rng.hpp"

namespace jenga::vm {

std::uint64_t gas_cost(Op op) {
  switch (op) {
    case Op::kSload: return 200;
    case Op::kSstore: return 500;
    case Op::kBalance: return 100;
    case Op::kCredit:
    case Op::kDebit: return 300;
    case Op::kCall: return 700;
    case Op::kHash: return 30;
    case Op::kJump:
    case Op::kJumpIfZero: return 8;
    default: return 3;
  }
}

const char* op_name(Op op) {
  switch (op) {
    case Op::kPush: return "PUSH";
    case Op::kPop: return "POP";
    case Op::kDup: return "DUP";
    case Op::kSwap: return "SWAP";
    case Op::kAdd: return "ADD";
    case Op::kSub: return "SUB";
    case Op::kMul: return "MUL";
    case Op::kDiv: return "DIV";
    case Op::kMod: return "MOD";
    case Op::kLt: return "LT";
    case Op::kEq: return "EQ";
    case Op::kNot: return "NOT";
    case Op::kJump: return "JUMP";
    case Op::kJumpIfZero: return "JZ";
    case Op::kSload: return "SLOAD";
    case Op::kSstore: return "SSTORE";
    case Op::kBalance: return "BALANCE";
    case Op::kCredit: return "CREDIT";
    case Op::kDebit: return "DEBIT";
    case Op::kCaller: return "CALLER";
    case Op::kArg: return "ARG";
    case Op::kHash: return "HASH";
    case Op::kCall: return "CALL";
    case Op::kReturn: return "RETURN";
    case Op::kAbort: return "ABORT";
  }
  return "?";
}

const char* exec_status_name(ExecStatus s) {
  switch (s) {
    case ExecStatus::kSuccess: return "success";
    case ExecStatus::kOutOfGas: return "out-of-gas";
    case ExecStatus::kStackUnderflow: return "stack-underflow";
    case ExecStatus::kStackOverflow: return "stack-overflow";
    case ExecStatus::kDivisionByZero: return "division-by-zero";
    case ExecStatus::kBadJump: return "bad-jump";
    case ExecStatus::kBadCall: return "bad-call";
    case ExecStatus::kUndeclaredAccess: return "undeclared-access";
    case ExecStatus::kInsufficientFunds: return "insufficient-funds";
    case ExecStatus::kExplicitAbort: return "explicit-abort";
    case ExecStatus::kCallDepthExceeded: return "call-depth-exceeded";
    case ExecStatus::kStepLimitExceeded: return "step-limit-exceeded";
  }
  return "?";
}

Interpreter::Interpreter(std::span<const ContractLogic* const> contracts, StateView& state,
                         ExecLimits limits, ExecScratch* scratch)
    : contracts_(contracts),
      state_(state),
      limits_(limits),
      stack_(scratch != nullptr ? scratch->stack : own_scratch_.stack) {}

ExecResult Interpreter::run(AccountId sender, std::span<const CallStep> steps) {
  sender_ = sender;
  stack_.clear();
  gas_used_ = 0;
  instructions_ = 0;
  calls_ = 0;

  ExecResult result;
  for (const CallStep& step : steps) {
    const ExecStatus st = exec_function(step.contract_slot, step.function, step.args, 0);
    if (st != ExecStatus::kSuccess) {
      result.status = st;
      break;
    }
    stack_.clear();  // steps are independent invocations, like sub-calls of a tx
  }
  result.gas_used = gas_used_;
  result.instructions_executed = instructions_;
  result.contract_calls = calls_;
  return result;
}

ExecStatus Interpreter::exec_function(std::uint16_t slot, std::uint16_t function,
                                      std::span<const std::uint64_t> args, std::size_t depth) {
  if (depth >= limits_.max_call_depth) return ExecStatus::kCallDepthExceeded;
  if (slot >= contracts_.size() || contracts_[slot] == nullptr)
    return ExecStatus::kBadCall;
  const ContractLogic& logic = *contracts_[slot];
  if (function >= logic.functions.size()) return ExecStatus::kBadCall;
  const auto& code = logic.functions[function].code;
  ++calls_;

  auto pop = [this](std::uint64_t& out) {
    if (stack_.empty()) return false;
    out = stack_.back();
    stack_.pop_back();
    return true;
  };
  auto push = [this](std::uint64_t v) {
    if (stack_.size() >= limits_.max_stack) return false;
    stack_.push_back(v);
    return true;
  };

  for (std::size_t pc = 0; pc < code.size(); ++pc) {
    const Instruction& ins = code[pc];
    gas_used_ += gas_cost(ins.op);
    if (gas_used_ > limits_.gas_limit) return ExecStatus::kOutOfGas;
    if (++instructions_ > limits_.max_instructions) return ExecStatus::kStepLimitExceeded;

    std::uint64_t a = 0, b = 0;
    switch (ins.op) {
      case Op::kPush:
        if (!push(ins.imm)) return ExecStatus::kStackOverflow;
        break;
      case Op::kPop:
        if (!pop(a)) return ExecStatus::kStackUnderflow;
        break;
      case Op::kDup:
        if (stack_.empty()) return ExecStatus::kStackUnderflow;
        if (!push(stack_.back())) return ExecStatus::kStackOverflow;
        break;
      case Op::kSwap:
        if (stack_.size() < 2) return ExecStatus::kStackUnderflow;
        std::swap(stack_[stack_.size() - 1], stack_[stack_.size() - 2]);
        break;
      case Op::kAdd:
      case Op::kSub:
      case Op::kMul:
      case Op::kDiv:
      case Op::kMod:
      case Op::kLt:
      case Op::kEq: {
        if (!pop(b) || !pop(a)) return ExecStatus::kStackUnderflow;
        std::uint64_t r = 0;
        switch (ins.op) {
          case Op::kAdd: r = a + b; break;
          case Op::kSub: r = a - b; break;
          case Op::kMul: r = a * b; break;
          case Op::kDiv:
            if (b == 0) return ExecStatus::kDivisionByZero;
            r = a / b;
            break;
          case Op::kMod:
            if (b == 0) return ExecStatus::kDivisionByZero;
            r = a % b;
            break;
          case Op::kLt: r = a < b ? 1 : 0; break;
          case Op::kEq: r = a == b ? 1 : 0; break;
          default: break;
        }
        if (!push(r)) return ExecStatus::kStackOverflow;
        break;
      }
      case Op::kNot:
        if (!pop(a)) return ExecStatus::kStackUnderflow;
        if (!push(a == 0 ? 1 : 0)) return ExecStatus::kStackOverflow;
        break;
      case Op::kJump:
        if (ins.imm >= code.size()) return ExecStatus::kBadJump;
        pc = ins.imm - 1;  // -1: loop increment
        break;
      case Op::kJumpIfZero:
        if (!pop(a)) return ExecStatus::kStackUnderflow;
        if (a == 0) {
          if (ins.imm >= code.size()) return ExecStatus::kBadJump;
          pc = ins.imm - 1;
        }
        break;
      case Op::kSload: {
        if (!pop(a)) return ExecStatus::kStackUnderflow;
        auto v = state_.sload(logic.id, a);
        if (!v.has_value()) return ExecStatus::kUndeclaredAccess;
        if (!push(*v)) return ExecStatus::kStackOverflow;
        break;
      }
      case Op::kSstore:
        if (!pop(b) || !pop(a)) return ExecStatus::kStackUnderflow;
        if (!state_.sstore(logic.id, a, b)) return ExecStatus::kUndeclaredAccess;
        break;
      case Op::kBalance: {
        if (!pop(a)) return ExecStatus::kStackUnderflow;
        auto v = state_.balance(AccountId{a});
        if (!v.has_value()) return ExecStatus::kUndeclaredAccess;
        if (!push(*v)) return ExecStatus::kStackOverflow;
        break;
      }
      case Op::kCredit:
        if (!pop(b) || !pop(a)) return ExecStatus::kStackUnderflow;
        if (!state_.credit(AccountId{a}, b)) return ExecStatus::kUndeclaredAccess;
        break;
      case Op::kDebit: {
        if (!pop(b) || !pop(a)) return ExecStatus::kStackUnderflow;
        auto bal = state_.balance(AccountId{a});
        if (!bal.has_value()) return ExecStatus::kUndeclaredAccess;
        if (*bal < b) return ExecStatus::kInsufficientFunds;
        if (!state_.debit(AccountId{a}, b)) return ExecStatus::kUndeclaredAccess;
        break;
      }
      case Op::kCaller:
        if (!push(sender_.value)) return ExecStatus::kStackOverflow;
        break;
      case Op::kArg:
        if (!pop(a)) return ExecStatus::kStackUnderflow;
        if (!push(a < args.size() ? args[a] : 0)) return ExecStatus::kStackOverflow;
        break;
      case Op::kHash: {
        if (!pop(a)) return ExecStatus::kStackUnderflow;
        std::uint64_t s = a;
        if (!push(splitmix64(s))) return ExecStatus::kStackOverflow;
        break;
      }
      case Op::kCall: {
        const std::uint16_t callee = call_slot(ins.imm);
        const std::uint16_t fn = call_function(ins.imm);
        // Callee arguments: current stack contents (moved, not copied).
        std::vector<std::uint64_t> call_args(stack_.begin(), stack_.end());
        stack_.clear();
        const ExecStatus st = exec_function(callee, fn, call_args, depth + 1);
        if (st != ExecStatus::kSuccess) return st;
        break;
      }
      case Op::kReturn:
        return ExecStatus::kSuccess;
      case Op::kAbort:
        return ExecStatus::kExplicitAbort;
    }
  }
  return ExecStatus::kSuccess;
}

}  // namespace jenga::vm
