// Bytecode for the Jenga contract VM.
//
// A deliberately small stack machine (DESIGN.md §2: EVM substitution).  What
// the evaluation needs from "smart contracts" is that a transaction invokes
// several contracts, each running some logic over persistent per-contract
// state and account balances, with gas metering and cross-contract calls.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace jenga::vm {

enum class Op : std::uint8_t {
  kPush = 0,    // push imm
  kPop,         // discard top
  kDup,         // duplicate top
  kSwap,        // swap top two
  kAdd,         // a b -- (a+b)  (wrapping)
  kSub,         // a b -- (a-b)  (wrapping)
  kMul,         // a b -- (a*b)  (wrapping)
  kDiv,         // a b -- (a/b); b==0 aborts
  kMod,         // a b -- (a%b); b==0 aborts
  kLt,          // a b -- (a<b)
  kEq,          // a b -- (a==b)
  kNot,         // a -- (a==0)
  kJump,        // unconditional jump to imm (instruction index)
  kJumpIfZero,  // a -- ; jump to imm when a == 0
  kSload,       // key -- value        (this contract's state; 0 if absent)
  kSstore,      // key value --        (write this contract's state)
  kBalance,     // account -- balance
  kCredit,      // account amount --   (add to account balance)
  kDebit,       // account amount --   (subtract; insufficient funds aborts)
  kCaller,      // -- sender account id
  kArg,         // i -- args[i]        (transaction-supplied arguments)
  kHash,        // a -- h(a)           (cheap 64-bit mix, deterministic)
  kCall,        // imm = packed(contract_index, function); args stay on stack
  kReturn,      // end current frame (top frame: end execution, success)
  kAbort,       // abort the whole transaction
};

struct Instruction {
  Op op{};
  std::uint64_t imm = 0;
};

/// imm encoding for kCall: (callee_slot << 16) | function_index.  The callee
/// slot indexes the transaction's declared contract list, so bytecode never
/// hard-codes global contract ids and the declared-access check is structural.
constexpr std::uint64_t pack_call(std::uint16_t callee_slot, std::uint16_t function) {
  return (static_cast<std::uint64_t>(callee_slot) << 16) | function;
}
constexpr std::uint16_t call_slot(std::uint64_t imm) {
  return static_cast<std::uint16_t>(imm >> 16);
}
constexpr std::uint16_t call_function(std::uint64_t imm) {
  return static_cast<std::uint16_t>(imm & 0xFFFF);
}

struct Function {
  std::string name;
  std::vector<Instruction> code;
};

/// A deployed contract's logic (the part Jenga replicates to every shard).
struct ContractLogic {
  ContractId id{};
  std::vector<Function> functions;

  /// Wire/storage footprint of the code: what "logic storage" costs a node.
  [[nodiscard]] std::uint64_t code_size_bytes() const {
    std::uint64_t n = 0;
    for (const auto& f : functions) n += 16 + f.name.size() + 9 * f.code.size();
    return n;
  }
};

/// Per-op base gas costs; storage I/O is deliberately the expensive part.
[[nodiscard]] std::uint64_t gas_cost(Op op);

[[nodiscard]] const char* op_name(Op op);

}  // namespace jenga::vm
