#include "mempool/ingress.hpp"

#include <algorithm>
#include <string>

namespace jenga::mempool {

const char* backpressure_name(Backpressure b) {
  switch (b) {
    case Backpressure::kNone: return "none";
    case Backpressure::kSoft: return "soft";
    case Backpressure::kShed: return "shed";
  }
  return "?";
}

IngressSet::IngressSet(IngressConfig config) : config_(config) {
  pools_.reserve(config_.num_shards);
  for (std::uint32_t s = 0; s < config_.num_shards; ++s) pools_.emplace_back(config_.pool);
}

OfferOutcome IngressSet::offer(core::TxPtr tx, SimTime now, std::uint8_t fee_tier,
                               std::optional<SimTime> ttl_override) {
  const ShardId shard = shard_for(tx);
  const Hash256 h = tx->hash;
  OfferOutcome out = pools_[shard.value].offer(std::move(tx), now, fee_tier, ttl_override);
  fold_event(admit_result_name(out.result), h, now);
  if (out.evicted) fold_event("evicted", out.evicted->hash, now);
  if (causal_ != nullptr) {
    if (out.result == AdmitResult::kAdmitted)
      causal_->tx_anchor(h, telemetry::AnchorKind::kNote,
                         static_cast<std::uint32_t>(IngressNote::kAdmit), now);
    if (out.evicted)
      causal_->tx_anchor(out.evicted->hash, telemetry::AnchorKind::kNote,
                         static_cast<std::uint32_t>(IngressNote::kEvicted), now);
  }
  if (registry_ != nullptr) {
    registry_->counter(std::string("mempool.") + admit_result_name(out.result)).inc();
    if (out.evicted) registry_->counter("mempool.evicted").inc();
    record_depth();
  }
  return out;
}

std::size_t IngressSet::expire(SimTime now) {
  std::size_t shed = 0;
  for (auto& pool : pools_) {
    for (const auto& tx : pool.expire(now)) {
      fold_event("expired", tx->hash, now);
      if (causal_ != nullptr)
        causal_->tx_anchor(tx->hash, telemetry::AnchorKind::kNote,
                           static_cast<std::uint32_t>(IngressNote::kExpired), now);
      if (expiry_observer_) expiry_observer_(tx);
      ++shed;
    }
  }
  if (shed > 0 && registry_ != nullptr) {
    registry_->counter("mempool.expired").inc(shed);
    record_depth();
  }
  return shed;
}

std::size_t IngressSet::dispatch(SimTime now, std::size_t credits,
                                 const std::function<void(core::TxPtr)>& submit) {
  expire(now);  // never hand out stale work
  std::size_t sent = 0;
  std::uint32_t empty_streak = 0;
  while (sent < credits && empty_streak < config_.num_shards) {
    Mempool& pool = pools_[dispatch_cursor_];
    dispatch_cursor_ = (dispatch_cursor_ + 1) % config_.num_shards;
    auto d = pool.pop_best(now);
    if (!d) {
      ++empty_streak;
      continue;
    }
    empty_streak = 0;
    fold_event("dispatched", d->tx->hash, now);
    if (causal_ != nullptr)
      causal_->tx_anchor(d->tx->hash, telemetry::AnchorKind::kNote,
                         static_cast<std::uint32_t>(IngressNote::kDispatched), now);
    if (registry_ != nullptr) {
      registry_->counter("mempool.dispatched").inc();
      registry_
          ->histogram("mempool.wait_us.tier" + std::to_string(static_cast<int>(d->fee_tier)))
          .record(d->wait);
    }
    submit(d->tx);
    ++sent;
  }
  if (registry_ != nullptr && sent > 0) record_depth();
  return sent;
}

Backpressure IngressSet::backpressure(ShardId shard) const {
  const double fill = pools_[shard.value].fill();
  if (fill >= config_.hard_watermark) return Backpressure::kShed;
  if (fill >= config_.soft_watermark) return Backpressure::kSoft;
  return Backpressure::kNone;
}

Backpressure IngressSet::worst_backpressure() const {
  Backpressure worst = Backpressure::kNone;
  for (std::uint32_t s = 0; s < config_.num_shards; ++s)
    worst = std::max(worst, backpressure(ShardId{s}));
  return worst;
}

std::size_t IngressSet::resident() const {
  std::size_t n = 0;
  for (const auto& pool : pools_) n += pool.depth();
  return n;
}

IngressStats IngressSet::stats() const {
  IngressStats agg;
  for (const auto& pool : pools_) {
    const MempoolStats& s = pool.stats();
    agg.totals.admitted += s.admitted;
    agg.totals.rejected_full += s.rejected_full;
    agg.totals.rejected_duplicate += s.rejected_duplicate;
    agg.totals.rejected_expired += s.rejected_expired;
    agg.totals.evicted += s.evicted;
    agg.totals.expired += s.expired;
    agg.totals.dispatched += s.dispatched;
    agg.totals.peak_depth = std::max(agg.totals.peak_depth, s.peak_depth);
  }
  agg.resident = resident();
  agg.peak_resident = peak_resident_;
  return agg;
}

Hash256 IngressSet::admission_digest() const { return digest_state_; }

void IngressSet::fold_event(std::string_view kind, const Hash256& h, SimTime now) {
  // Chain: state' = H(state || kind || tx_hash || time).  Any reordering,
  // omission or duplication of events changes every subsequent state.
  crypto::Sha256 hasher;
  hasher.update(digest_state_);
  hasher.update(kind);
  hasher.update(h);
  hasher.update_u64(static_cast<std::uint64_t>(now));
  digest_state_ = hasher.finish();
  peak_resident_ = std::max(peak_resident_, resident());
}

void IngressSet::record_depth() {
  registry_->gauge("mempool.depth").set(static_cast<std::int64_t>(resident()));
}

}  // namespace jenga::mempool
