#include "mempool/mempool.hpp"

#include <algorithm>

namespace jenga::mempool {

const char* admit_result_name(AdmitResult r) {
  switch (r) {
    case AdmitResult::kAdmitted: return "admitted";
    case AdmitResult::kRejectedFull: return "rejected_full";
    case AdmitResult::kRejectedDuplicate: return "rejected_duplicate";
    case AdmitResult::kRejectedExpired: return "rejected_expired";
  }
  return "?";
}

OfferOutcome Mempool::offer(TxPtr tx, SimTime now, std::uint8_t fee_tier,
                            std::optional<SimTime> ttl_override) {
  OfferOutcome out;
  const SimTime ttl = ttl_override.value_or(config_.ttl);
  const SimTime deadline = now + ttl;
  if (deadline <= now) {
    // TTL 0 (or negative override): dead on arrival, never enters the pool.
    ++stats_.rejected_expired;
    out.result = AdmitResult::kRejectedExpired;
    return out;
  }
  if (by_hash_.contains(tx->hash)) {
    ++stats_.rejected_duplicate;
    out.result = AdmitResult::kRejectedDuplicate;
    return out;
  }

  const std::int64_t key = priority_key(tx->fee, now, config_.aging_fee_per_second);
  if (by_hash_.size() >= config_.capacity) {
    // Full: displace the lowest-priority resident only if the newcomer
    // strictly outranks it.  On an exact tie the resident wins (it is older
    // by definition — a newcomer with the same key arrived later).
    if (by_priority_.empty()) {  // capacity == 0
      ++stats_.rejected_full;
      out.result = AdmitResult::kRejectedFull;
      return out;
    }
    auto worst = std::prev(by_priority_.end());
    const Rank worst_rank = worst->first;
    const bool newcomer_wins =
        key > worst_rank.key;  // same key → newcomer has higher seq → loses
    if (!newcomer_wins) {
      ++stats_.rejected_full;
      out.result = AdmitResult::kRejectedFull;
      return out;
    }
    out.evicted = by_hash_.at(worst->second).tx;
    erase_entry(worst->second);
    ++stats_.evicted;
  }

  Entry e;
  e.tx = std::move(tx);
  e.enqueued = now;
  e.deadline = deadline;
  e.seq = next_seq_++;
  e.key = key;
  e.fee_tier = fee_tier;
  const Hash256 h = e.tx->hash;
  by_priority_.emplace(Rank{e.key, e.seq}, h);
  by_deadline_.emplace(e.deadline, e.seq);
  seq_to_hash_.emplace(e.seq, h);
  by_hash_.emplace(h, std::move(e));
  ++stats_.admitted;
  stats_.peak_depth = std::max(stats_.peak_depth, by_hash_.size());
  out.result = AdmitResult::kAdmitted;
  return out;
}

std::vector<TxPtr> Mempool::expire(SimTime now) {
  std::vector<TxPtr> shed;
  while (!by_deadline_.empty()) {
    const auto it = by_deadline_.begin();
    if (it->first > now) break;
    const Hash256 h = seq_to_hash_.at(it->second);
    shed.push_back(by_hash_.at(h).tx);
    erase_entry(h);
    ++stats_.expired;
  }
  return shed;
}

std::optional<Dispatched> Mempool::pop_best(SimTime now) {
  if (by_priority_.empty()) return std::nullopt;
  const auto it = by_priority_.begin();
  const Entry& e = by_hash_.at(it->second);
  Dispatched d;
  d.tx = e.tx;
  d.enqueued = e.enqueued;
  d.wait = now - e.enqueued;
  d.fee_tier = e.fee_tier;
  erase_entry(e.tx->hash);
  ++stats_.dispatched;
  return d;
}

void Mempool::erase_entry(const Hash256& h) {
  const auto it = by_hash_.find(h);
  if (it == by_hash_.end()) return;
  const Entry& e = it->second;
  by_priority_.erase(Rank{e.key, e.seq});
  by_deadline_.erase({e.deadline, e.seq});
  seq_to_hash_.erase(e.seq);
  by_hash_.erase(it);
}

}  // namespace jenga::mempool
