// Per-shard ingress: the admission layer between the open-loop client and the
// consensus pipeline (DESIGN.md §10).
//
// An IngressSet holds one bounded fee-priority Mempool per ingress shard
// (transactions route by the hash of their sender account, the same rule that
// places the sender's balance).  It owns three cross-cutting concerns:
//
//   Backpressure — each pool's fill ratio maps to a level (kNone below the
//                  soft watermark, kSoft between the watermarks, kShed at or
//                  above the hard one).  The client reads the level of the
//                  target shard before generating: kSoft halves its offered
//                  rate for that shard's traffic, kShed skips generation
//                  entirely (counted, never silent).
//   Dispatch     — pops highest-priority entries across all pools (round-
//                  robining shards in index order for fairness) and submits
//                  them, bounded by the credit count the caller derives from
//                  the system's in-flight window.  Stale entries are shed
//                  first, so a dispatched tx is never already expired.
//   Audit trail  — every admission event (admit/reject/evict/expire/dispatch)
//                  folds into a chained SHA-256 "admission digest" — the
//                  determinism witness: two runs with the same seed and
//                  config must produce bit-identical digests regardless of
//                  exec worker count.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "crypto/sha256.hpp"
#include "ledger/placement.hpp"
#include "mempool/mempool.hpp"
#include "telemetry/causal.hpp"
#include "telemetry/metrics.hpp"

namespace jenga::mempool {

/// Backpressure level for one ingress shard, derived from pool occupancy.
enum class Backpressure : std::uint8_t {
  kNone = 0,  // fill < soft watermark: accept freely
  kSoft,      // soft ≤ fill < hard: ask the source to slow down
  kShed,      // fill ≥ hard: source should not even generate
};

[[nodiscard]] const char* backpressure_name(Backpressure b);

struct IngressConfig {
  std::uint32_t num_shards = 1;
  MempoolConfig pool;
  /// Watermarks on pool fill ratio; soft < hard ≤ 1.
  double soft_watermark = 0.70;
  double hard_watermark = 0.95;
};

/// Aggregate view over all pools (per-pool stats remain accessible).
struct IngressStats {
  MempoolStats totals;
  std::size_t resident = 0;    // current entries across all pools
  std::size_t peak_resident = 0;
};

class IngressSet {
 public:
  explicit IngressSet(IngressConfig config);

  /// Routing rule: ingress shard = shard of the sender's account.
  [[nodiscard]] ShardId shard_for(const core::TxPtr& tx) const {
    return ledger::shard_of_account(tx->sender, config_.num_shards);
  }

  /// Admission attempt; routes to the sender's shard pool, records telemetry
  /// and the audit digest.  An eviction surfaces in the outcome so the caller
  /// can hand the displaced tx back to its client (retry path).
  OfferOutcome offer(core::TxPtr tx, SimTime now, std::uint8_t fee_tier,
                     std::optional<SimTime> ttl_override = std::nullopt);

  /// Sheds TTL-expired entries from every pool; returns how many were shed.
  /// The expiry observer (if set) sees each shed tx — the client uses it to
  /// retire per-tx retry state and count terminal expiries.
  std::size_t expire(SimTime now);

  void set_expiry_observer(std::function<void(const core::TxPtr&)> observer) {
    expiry_observer_ = std::move(observer);
  }

  /// Dispatches up to `credits` transactions via `submit`, highest priority
  /// first within each shard, shards visited round-robin from where the last
  /// dispatch stopped.  Expired entries are shed (never submitted).  Returns
  /// the number actually submitted.
  std::size_t dispatch(SimTime now, std::size_t credits,
                       const std::function<void(core::TxPtr)>& submit);

  [[nodiscard]] Backpressure backpressure(ShardId shard) const;
  /// Worst level across all shards (the arrival process's global throttle).
  [[nodiscard]] Backpressure worst_backpressure() const;

  [[nodiscard]] std::size_t resident() const;
  [[nodiscard]] IngressStats stats() const;
  [[nodiscard]] const Mempool& pool(ShardId shard) const {
    return pools_[shard.value];
  }
  [[nodiscard]] const IngressConfig& config() const { return config_; }

  /// Chained hash over the full admission event sequence (see file comment).
  [[nodiscard]] Hash256 admission_digest() const;

  /// Optional passive telemetry (mempool.* counters, depth gauge, per-tier
  /// wait histograms).  Recording never changes behaviour.
  void set_telemetry(telemetry::MetricsRegistry* registry) { registry_ = registry; }

  /// Optional causal tracer: admission and dispatch fold into each tx's
  /// lineage as anchors, so a flight-recorder dump shows the mempool leg of
  /// a stuck transaction's history.  Passive like the registry.
  void set_causal(telemetry::CausalTracer* causal) { causal_ = causal; }

 private:
  void fold_event(std::string_view kind, const Hash256& h, SimTime now);
  void record_depth();

  IngressConfig config_;
  std::vector<Mempool> pools_;
  std::uint32_t dispatch_cursor_ = 0;  // round-robin resume point
  std::size_t peak_resident_ = 0;
  Hash256 digest_state_{};  // running chain value
  std::function<void(const core::TxPtr&)> expiry_observer_;
  telemetry::MetricsRegistry* registry_ = nullptr;
  telemetry::CausalTracer* causal_ = nullptr;
};

/// Anchor `aux` codes used by IngressSet admission anchors (AnchorKind::kNote).
enum class IngressNote : std::uint32_t {
  kAdmit = 1,
  kEvicted = 2,
  kExpired = 3,
  kDispatched = 4,
};

}  // namespace jenga::mempool
