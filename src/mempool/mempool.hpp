// Bounded fee-priority mempool (DESIGN.md §10).
//
// One pool buffers the transactions of one ingress shard between the client
// and the consensus pipeline.  Three rules govern it:
//
//   Admission   — capacity is a hard bound.  A full pool either evicts its
//                 lowest-priority resident (when the newcomer outranks it) or
//                 rejects the newcomer; every rejection carries a reason code,
//                 nothing is ever dropped silently.
//   Priority    — effective priority at time t is fee + aging_fee_per_second ×
//                 wait.  Because the aging boost grows identically for every
//                 resident, the ordering between two entries is decided by the
//                 time-independent key (fee − aging × enqueue_time): a static
//                 key per entry, so the pool can keep one sorted index and
//                 still promote old low-fee transactions past newer high-fee
//                 ones — bounded wait for every admitted tx (anti-starvation).
//   Expiry      — each entry carries a deadline (enqueue + TTL).  Stale work
//                 is shed from the pool before dispatch, so an expired tx has
//                 never touched a Phase-1 lock or a 2PC round.
//
// Everything is a pure function of the call sequence: same (seed, arrival
// trace) → same admit/evict/expire/dispatch order, regardless of exec worker
// count (the pool never sees a thread).  Ties break on arrival sequence.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "core/protocol_messages.hpp"  // TxPtr
#include "ledger/transaction.hpp"

namespace jenga::mempool {

using core::TxPtr;

/// Outcome of one admission attempt.  Every non-admit is a reason code the
/// client sees (and can act on: back off, re-fee, give up).
enum class AdmitResult : std::uint8_t {
  kAdmitted = 0,        // entered the pool
  kRejectedFull,        // pool at capacity and the newcomer ranks lowest
  kRejectedDuplicate,   // same tx hash already resident
  kRejectedExpired,     // dead on arrival: deadline not after `now`
};

[[nodiscard]] const char* admit_result_name(AdmitResult r);

/// Number of fee tiers the wait-fairness accounting distinguishes.
inline constexpr std::uint8_t kFeeTiers = 3;

struct MempoolConfig {
  std::size_t capacity = 4096;
  /// Entry deadline = enqueue time + ttl.  0 is legal and means "already
  /// stale": the entry expires on the first shed sweep at or after enqueue.
  SimTime ttl = 120 * kSecond;
  /// Anti-starvation aging: effective priority = fee + this × seconds waited.
  /// 0 disables aging (pure fee priority, low-fee txs can starve).
  std::uint64_t aging_fee_per_second = 2;
};

/// Per-pool event counters (aggregated across shards by IngressSet).
struct MempoolStats {
  std::uint64_t admitted = 0;
  std::uint64_t rejected_full = 0;
  std::uint64_t rejected_duplicate = 0;
  std::uint64_t rejected_expired = 0;
  std::uint64_t evicted = 0;    // displaced by a higher-priority newcomer
  std::uint64_t expired = 0;    // shed by TTL before dispatch
  std::uint64_t dispatched = 0;
  std::size_t peak_depth = 0;

  [[nodiscard]] std::uint64_t rejected_total() const {
    return rejected_full + rejected_duplicate + rejected_expired;
  }
};

/// What offer() did, including the collateral eviction if one happened.
struct OfferOutcome {
  AdmitResult result = AdmitResult::kAdmitted;
  /// Set when admission displaced the lowest-priority resident: that tx is
  /// back in the client's hands (counted, reason-coded kRejectedFull there).
  TxPtr evicted;
};

/// A transaction handed back by dispatch, with its queue telemetry.
struct Dispatched {
  TxPtr tx;
  SimTime enqueued = 0;
  SimTime wait = 0;
  std::uint8_t fee_tier = 0;
};

class Mempool {
 public:
  explicit Mempool(MempoolConfig config) : config_(config) {}

  /// Admission control.  `fee_tier` only labels the wait histograms; priority
  /// comes from tx->fee.  `ttl_override` replaces config().ttl for this entry.
  OfferOutcome offer(TxPtr tx, SimTime now, std::uint8_t fee_tier,
                     std::optional<SimTime> ttl_override = std::nullopt);

  /// Sheds every entry whose deadline is ≤ now, in deadline order (sequence
  /// tie-break).  Returns the shed transactions, oldest deadline first.
  std::vector<TxPtr> expire(SimTime now);

  /// Pops the highest-effective-priority entry, or nullopt when empty.
  /// Callers shed stale entries first (expire()) so dispatch never hands out
  /// work that is already past its deadline.
  std::optional<Dispatched> pop_best(SimTime now);

  [[nodiscard]] std::size_t depth() const { return by_hash_.size(); }
  [[nodiscard]] std::size_t capacity() const { return config_.capacity; }
  [[nodiscard]] bool contains(const Hash256& h) const { return by_hash_.contains(h); }
  [[nodiscard]] const MempoolConfig& config() const { return config_; }
  [[nodiscard]] const MempoolStats& stats() const { return stats_; }

  /// Occupancy in [0,1] — the backpressure signal's raw input.
  [[nodiscard]] double fill() const {
    return config_.capacity == 0
               ? 1.0
               : static_cast<double>(depth()) / static_cast<double>(config_.capacity);
  }

  /// The time-independent priority key (see file comment).  Exposed for the
  /// property tests that check ordering is a pure function of (fee, enqueue).
  [[nodiscard]] static std::int64_t priority_key(std::uint64_t fee, SimTime enqueued,
                                                 std::uint64_t aging_fee_per_second) {
    // fee in whole-second units minus the aging debit for enqueueing late:
    // comparing two keys is exactly comparing fee + aging × wait at any t.
    return static_cast<std::int64_t>(fee) * kSecond -
           static_cast<std::int64_t>(aging_fee_per_second) * enqueued;
  }

 private:
  struct Entry {
    TxPtr tx;
    SimTime enqueued = 0;
    SimTime deadline = 0;
    std::uint64_t seq = 0;  // admission order; FIFO tie-break
    std::int64_t key = 0;   // static priority key
    std::uint8_t fee_tier = 0;
  };

  /// Highest key first; among equals the OLDER entry (lower seq) ranks higher.
  struct Rank {
    std::int64_t key;
    std::uint64_t seq;
    bool operator<(const Rank& o) const {
      if (key != o.key) return key > o.key;
      return seq < o.seq;
    }
  };

  void erase_entry(const Hash256& h);

  MempoolConfig config_;
  MempoolStats stats_;
  std::uint64_t next_seq_ = 0;
  std::unordered_map<Hash256, Entry> by_hash_;
  std::map<Rank, Hash256> by_priority_;                       // dispatch / evict order
  std::set<std::pair<SimTime, std::uint64_t>> by_deadline_;   // (deadline, seq) → expiry order
  std::unordered_map<std::uint64_t, Hash256> seq_to_hash_;
};

}  // namespace jenga::mempool
