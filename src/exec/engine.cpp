#include "exec/engine.hpp"

#include <algorithm>

#include "telemetry/metrics.hpp"

namespace jenga::exec {

namespace {

/// Overwrites the entries of `into` that `from` also carries.  Entries only
/// `from` has are NOT copied in: a predecessor's bundle may cover resources
/// the successor never declared, and leaking them into its output would hand
/// the caller effects the successor had no right to produce.
void merge_overlap(ledger::PortableState& into, const ledger::PortableState& from) {
  for (auto& [c, st] : into.contracts) {
    const auto it = from.contracts.find(c);
    if (it != from.contracts.end()) st = it->second;
  }
  for (auto& [a, bal] : into.balances) {
    const auto it = from.balances.find(a);
    if (it != from.balances.end()) bal = it->second;
  }
}

}  // namespace

Engine::Engine(EngineOptions opts)
    : workers_(std::max<std::uint32_t>(1, opts.workers)),
      chain_conflicts_(opts.chain_conflicts) {
  // The calling thread works too, so the pool holds workers-1 threads and
  // workers == 1 stays purely single-threaded.
  pool_.reserve(workers_ - 1);
  for (std::uint32_t i = 0; i + 1 < workers_; ++i)
    pool_.emplace_back([this] { worker_loop(); });
}

Engine::~Engine() {
  {
    std::lock_guard lk(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : pool_) t.join();
}

void Engine::run_claimed(std::uint32_t t, vm::ExecScratch& scratch) {
  Task& task = (*tasks_)[t];
  TaskResult& out = (*results_)[t];
  if (chain_conflicts_) {
    // Direct predecessors live on strictly earlier levels: complete, and
    // their writes are visible through the level barrier's mutex.
    for (const std::uint32_t p : schedule_->preds[t])
      if ((*results_)[p].vm.ok()) merge_overlap(task.input, (*results_)[p].output);
  }
  ledger::PortableStateView view(std::move(task.input));
  vm::Interpreter interp(task.logic, view, task.limits, &scratch);
  out.vm = interp.run(task.sender, task.steps());
  out.output = view.take();
}

void Engine::worker_loop() {
  vm::ExecScratch scratch;
  std::unique_lock lk(mu_);
  for (;;) {
    work_cv_.wait(lk, [&] { return shutdown_ || next_ < level_size_; });
    if (shutdown_) return;
    const std::uint32_t t = (*level_)[next_++];
    lk.unlock();
    run_claimed(t, scratch);
    lk.lock();
    if (--remaining_ == 0) done_cv_.notify_all();
  }
}

std::vector<TaskResult> Engine::run_batch(std::vector<Task> tasks) {
  std::vector<TaskResult> results(tasks.size());
  if (tasks.empty()) return results;

  std::vector<AccessSet> access;
  access.reserve(tasks.size());
  for (const Task& t : tasks) access.push_back(t.access);
  const Schedule sched = build_schedule(access);

  vm::ExecScratch scratch;  // the calling thread's own scratch
  for (const auto& level : sched.levels) {
    std::unique_lock lk(mu_);
    tasks_ = &tasks;
    results_ = &results;
    schedule_ = &sched;
    level_ = &level;
    next_ = 0;
    level_size_ = level.size();
    remaining_ = level.size();
    if (workers_ > 1 && level.size() > 1) work_cv_.notify_all();
    while (next_ < level_size_) {
      const std::uint32_t t = level[next_++];
      lk.unlock();
      run_claimed(t, scratch);
      lk.lock();
      --remaining_;
    }
    done_cv_.wait(lk, [&] { return remaining_ == 0; });
    level_size_ = 0;  // nothing left to claim until the next level opens
    next_ = 0;
  }

  last_ = BatchStats{static_cast<std::uint32_t>(tasks.size()), sched.depth(),
                     sched.max_width, sched.dep_edges};
  if (metrics_ != nullptr) {
    auto& reg = *metrics_;
    reg.counter("exec.batches").inc();
    reg.counter("exec.tasks").inc(tasks.size());
    reg.histogram("exec.batch.tasks").record(static_cast<std::int64_t>(tasks.size()));
    reg.histogram("exec.batch.levels").record(sched.depth());
    reg.histogram("exec.batch.max_width").record(sched.max_width);
    reg.histogram("exec.batch.dep_edges").record(static_cast<std::int64_t>(sched.dep_edges));
    // Schedule occupancy: share of level-slots filled — the utilization upper
    // bound achievable by any pool at least max_width wide.  Derived from the
    // schedule alone so snapshots stay bit-identical across worker counts.
    const std::uint64_t slots =
        static_cast<std::uint64_t>(sched.depth()) * std::max<std::uint32_t>(1, sched.max_width);
    reg.histogram("exec.batch.util_bound_pct")
        .record(static_cast<std::int64_t>(tasks.size() * 100 / std::max<std::uint64_t>(1, slots)));
  }
  return results;
}

}  // namespace jenga::exec
