// Deterministic parallel transaction execution engine (DESIGN.md §7).
//
// A batch of tasks — each a full VM invocation against a private
// PortableState bundle — is scheduled onto canonical conflict levels
// (exec/conflict.hpp) and dispatched level by level onto a fixed worker pool.
// Effects come back in input order; the schedule, the results, and every
// metric the engine records depend only on the batch contents, so a run with
// 8 workers is bit-identical to a serial one.  The calling thread
// participates in each level, so `workers == 1` spawns no threads at all and
// is exactly the historical serial path.
//
// Threading contract: run_batch() blocks until the whole batch finished; all
// shared state is exchanged under one mutex (claims are cheap next to a VM
// run), each task/result slot is touched by exactly one worker per batch, and
// telemetry is recorded on the calling thread after the join — the
// MetricsRegistry itself is never shared.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "exec/conflict.hpp"
#include "ledger/portable_state.hpp"
#include "vm/interpreter.hpp"

namespace jenga::telemetry {
class MetricsRegistry;
}

namespace jenga::exec {

/// One unit of execution: a call chain over a private state bundle.
struct Task {
  Hash256 id;                                   // tx hash (labels, diagnostics)
  AccountId sender;
  std::vector<const vm::ContractLogic*> logic;  // per declared slot
  /// Steps either borrowed from caller-owned memory (the transaction) or
  /// owned by the task (non-contiguous subsequences); `own_steps` wins when
  /// non-empty.
  std::span<const vm::CallStep> steps_view;
  std::vector<vm::CallStep> own_steps;
  vm::ExecLimits limits;
  ledger::PortableState input;
  AccessSet access;

  [[nodiscard]] std::span<const vm::CallStep> steps() const {
    return own_steps.empty() ? steps_view : std::span<const vm::CallStep>(own_steps);
  }
};

struct TaskResult {
  vm::ExecResult vm;
  ledger::PortableState output;  // meaningful only when vm.ok()
};

/// Schedule shape of the last batch (worker-count independent).
struct BatchStats {
  std::uint32_t tasks = 0;
  std::uint32_t levels = 0;
  std::uint32_t max_width = 0;
  std::uint64_t dep_edges = 0;
};

struct EngineOptions {
  std::uint32_t workers = 1;
  /// When set, a task's input bundle absorbs the outputs of its direct
  /// conflict predecessors (overlapping entries only, canonical order) before
  /// it runs, making the batch serially equivalent over shared state.  Off by
  /// default: Jenga and the baselines feed disjoint per-task snapshots, whose
  /// semantics must stay exactly the historical serial ones.
  bool chain_conflicts = false;
};

class Engine {
 public:
  explicit Engine(EngineOptions opts = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Executes the batch and returns results in input order.  Deterministic in
  /// the batch alone — identical for every worker count.
  [[nodiscard]] std::vector<TaskResult> run_batch(std::vector<Task> tasks);

  /// Attaches a metrics registry (nullptr detaches).  Recording happens on
  /// the run_batch() caller's thread after the batch joined; every recorded
  /// value derives from the schedule, never from timing or worker count.
  void set_metrics(telemetry::MetricsRegistry* m) { metrics_ = m; }

  [[nodiscard]] std::uint32_t workers() const { return workers_; }
  [[nodiscard]] const BatchStats& last_batch() const { return last_; }

 private:
  void worker_loop();
  void run_claimed(std::uint32_t t, vm::ExecScratch& scratch);

  std::uint32_t workers_;
  bool chain_conflicts_;
  telemetry::MetricsRegistry* metrics_ = nullptr;
  BatchStats last_{};

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers: a level opened / shutdown
  std::condition_variable done_cv_;  // run_batch: current level drained
  bool shutdown_ = false;

  // Current level (guarded by mu_; task/result slots are claimed exclusively).
  std::vector<Task>* tasks_ = nullptr;
  std::vector<TaskResult>* results_ = nullptr;
  const Schedule* schedule_ = nullptr;
  const std::vector<std::uint32_t>* level_ = nullptr;
  std::size_t next_ = 0;
  std::size_t level_size_ = 0;
  std::size_t remaining_ = 0;

  std::vector<std::thread> pool_;
};

}  // namespace jenga::exec
