// Conflict analysis over declared read/write sets (DESIGN.md §7).
//
// Transactions declare their state footprint up front (`Transaction.contracts`
// / `.accounts`, enforced by PortableStateView's kUndeclaredAccess abort), so
// whether two transactions of a batch may interleave is statically known:
// write-write and read-write overlaps conflict, read-read does not.  The
// scheduler turns a batch's pairwise conflicts into *canonical greedy levels*:
// task i lands on the smallest level strictly above every earlier-in-batch
// task it conflicts with.  The assignment depends only on the batch contents
// and order — never on worker count or timing — which is what makes parallel
// execution bit-identical to serial replay.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "ledger/transaction.hpp"

namespace jenga::exec {

/// A resource a task reads or writes, folded into one flat id space.  The top
/// two bits tag the category so contract, account and transaction keys can
/// never collide across categories.
using ResourceKey = std::uint64_t;

[[nodiscard]] constexpr ResourceKey contract_key(ContractId c) {
  return (1ULL << 63) | c.value;
}
[[nodiscard]] constexpr ResourceKey account_key(AccountId a) {
  return (1ULL << 62) | a.value;
}
/// Serializes work items belonging to the same transaction (the baselines can
/// carry one tx through several items of a single block, each reading the
/// previous item's buffered output).  Prefix collisions between distinct
/// hashes only over-serialize — never miss a real conflict.
[[nodiscard]] inline ResourceKey tx_key(const Hash256& h) {
  return (3ULL << 62) | (h.prefix_u64() >> 2);
}

/// Declared footprint of one task, split into read and write keys.
struct AccessSet {
  std::vector<ResourceKey> reads;
  std::vector<ResourceKey> writes;

  /// Sorts, dedups, and drops reads shadowed by writes of the same key.
  void normalize();
};

/// Write-write or read-write overlap on any key (both sets must be
/// normalized).  Read-read sharing is not a conflict.
[[nodiscard]] bool conflicts(const AccessSet& a, const AccessSet& b);

/// The conservative footprint of a whole transaction: the VM may write any
/// declared resource (the view enforces nothing finer than the declaration),
/// so everything lands in the write set.
[[nodiscard]] AccessSet declared_access(const ledger::Transaction& tx);

/// Canonical level schedule of one batch.
struct Schedule {
  /// Per-task level (0-based).
  std::vector<std::uint32_t> level;
  /// levels[l] lists the task indices of level l, ascending — the canonical
  /// order effects are committed in.
  std::vector<std::vector<std::uint32_t>> levels;
  /// Direct predecessors per task (ascending, deduped): the most recent
  /// earlier writer/readers of each of the task's keys.  A spanning subset of
  /// the full conflict graph — enough to chain effects serially.
  std::vector<std::vector<std::uint32_t>> preds;
  std::uint64_t dep_edges = 0;   // sum of preds sizes
  std::uint32_t max_width = 0;   // widest level

  [[nodiscard]] std::uint32_t depth() const {
    return static_cast<std::uint32_t>(levels.size());
  }
};

/// Builds the canonical greedy level schedule for a batch of (normalized)
/// access sets.  Deterministic in the batch contents alone: O(Σ keys) with a
/// per-key last-writer / last-reader table.
[[nodiscard]] Schedule build_schedule(std::span<const AccessSet> tasks);

}  // namespace jenga::exec
