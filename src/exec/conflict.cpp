#include "exec/conflict.hpp"

#include <algorithm>
#include <unordered_map>

namespace jenga::exec {

void AccessSet::normalize() {
  auto sort_unique = [](std::vector<ResourceKey>& v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  };
  sort_unique(writes);
  sort_unique(reads);
  // A key both read and written behaves as a write.
  std::vector<ResourceKey> pure;
  pure.reserve(reads.size());
  std::set_difference(reads.begin(), reads.end(), writes.begin(), writes.end(),
                      std::back_inserter(pure));
  reads = std::move(pure);
}

namespace {

bool sorted_intersect(const std::vector<ResourceKey>& a, const std::vector<ResourceKey>& b) {
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      return true;
    }
  }
  return false;
}

}  // namespace

bool conflicts(const AccessSet& a, const AccessSet& b) {
  return sorted_intersect(a.writes, b.writes) || sorted_intersect(a.writes, b.reads) ||
         sorted_intersect(a.reads, b.writes);
}

AccessSet declared_access(const ledger::Transaction& tx) {
  AccessSet s;
  s.writes.reserve(tx.contracts.size() + tx.accounts.size() + 1);
  for (auto c : tx.contracts) s.writes.push_back(contract_key(c));
  for (auto a : tx.accounts) s.writes.push_back(account_key(a));
  s.writes.push_back(account_key(tx.sender));  // fee debit
  s.normalize();
  return s;
}

Schedule build_schedule(std::span<const AccessSet> tasks) {
  Schedule out;
  out.level.resize(tasks.size(), 0);
  out.preds.resize(tasks.size());

  // Per-key occupancy: the latest writer (task + level) and the latest reader
  // since that write, plus the highest level any such reader sits on (readers
  // of one key can spread across levels; a new writer must clear them all).
  struct KeyState {
    std::int64_t writer = -1;
    std::uint32_t writer_level = 0;
    std::int64_t reader = -1;
    std::uint32_t max_reader_level = 0;
  };
  std::unordered_map<ResourceKey, KeyState> keys;
  keys.reserve(tasks.size() * 4);

  std::uint32_t depth = 0;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const AccessSet& a = tasks[i];
    std::uint32_t lvl = 0;
    auto& preds = out.preds[i];
    for (ResourceKey k : a.writes) {
      const auto it = keys.find(k);
      if (it == keys.end()) continue;
      const KeyState& ks = it->second;
      if (ks.writer >= 0) {
        lvl = std::max(lvl, ks.writer_level + 1);
        preds.push_back(static_cast<std::uint32_t>(ks.writer));
      }
      if (ks.reader >= 0) {
        lvl = std::max(lvl, ks.max_reader_level + 1);
        preds.push_back(static_cast<std::uint32_t>(ks.reader));
      }
    }
    for (ResourceKey k : a.reads) {
      const auto it = keys.find(k);
      if (it == keys.end()) continue;
      const KeyState& ks = it->second;
      if (ks.writer >= 0) {
        lvl = std::max(lvl, ks.writer_level + 1);
        preds.push_back(static_cast<std::uint32_t>(ks.writer));
      }
    }
    std::sort(preds.begin(), preds.end());
    preds.erase(std::unique(preds.begin(), preds.end()), preds.end());
    out.dep_edges += preds.size();
    out.level[i] = lvl;
    depth = std::max(depth, lvl + 1);

    for (ResourceKey k : a.writes) {
      KeyState& ks = keys[k];
      ks.writer = static_cast<std::int64_t>(i);
      ks.writer_level = lvl;
      ks.reader = -1;  // readers before this write are now shielded by it
      ks.max_reader_level = 0;
    }
    for (ResourceKey k : a.reads) {
      KeyState& ks = keys[k];
      ks.reader = static_cast<std::int64_t>(i);
      ks.max_reader_level = std::max(ks.max_reader_level, lvl);
    }
  }

  out.levels.resize(depth);
  for (std::size_t i = 0; i < tasks.size(); ++i)
    out.levels[out.level[i]].push_back(static_cast<std::uint32_t>(i));
  for (const auto& l : out.levels)
    out.max_width = std::max(out.max_width, static_cast<std::uint32_t>(l.size()));
  return out;
}

}  // namespace jenga::exec
