// Proof-verified state sync: how a recovered or rehomed replica gets a
// shard's state from a peer it does not trust byte-for-byte.
//
// The serving peer builds a SyncSnapshot — the entry set plus a Merkle
// inclusion proof per entry, all under one advertised root.  The receiver
// verifies every proof BEFORE applying the entry, so a Byzantine server can
// withhold service but cannot smuggle a tampered balance: any altered value,
// key or sibling hash breaks its proof chain and the entry (and server) is
// rejected.  After applying, the receiver's own rebuilt root must equal the
// advertised root — the end-to-end check that also catches a server lying
// by omission.
//
// The old path (PR 5) copied full state unconditionally; it survives here as
// full_copy_sync(), the fallback when every proof-serving peer was rejected.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "ledger/state_store.hpp"
#include "ledger/trie.hpp"

namespace jenga::ledger {

struct SyncEntry {
  std::vector<std::uint8_t> key;    // state key bytes (keyspace tag + id)
  std::vector<std::uint8_t> value;  // encoded value bytes
  TrieProof proof;                  // inclusion under SyncSnapshot::root
};

struct SyncSnapshot {
  Hash256 root{};
  std::vector<SyncEntry> entries;

  /// Wire size for the bandwidth model: entries plus their proof frames.
  [[nodiscard]] std::uint64_t wire_size() const;
};

struct SyncOutcome {
  bool ok = false;  // every proof verified AND the final root matched
  std::uint64_t keys_verified = 0;
  std::uint64_t proof_rejections = 0;
  std::uint64_t bytes = 0;  // wire bytes consumed (verified entries only)
};

/// Builds the proof-carrying snapshot a serving peer ships (entries in
/// canonical key order).
[[nodiscard]] SyncSnapshot build_sync_snapshot(const StateStore& src);

/// Verifies and applies a snapshot onto `dst`.  Entries whose proof fails are
/// rejected and abort the sync (outcome.ok = false); on success the receiver
/// additionally checks its rebuilt digest against the advertised root.
SyncOutcome apply_sync_snapshot(const SyncSnapshot& snapshot, StateStore& dst);

/// Unverified full copy of `src` into `dst` — the fallback path.  Returns the
/// wire bytes charged; the caller compares digests afterwards.
std::uint64_t full_copy_sync(const StateStore& src, StateStore& dst);

/// Deterministic Byzantine tamper for tests and fault modeling: corrupts the
/// value bytes of entry `index % entries` while keeping its (now stale)
/// proof.  Verification must reject the entry.
void tamper_sync_snapshot(SyncSnapshot& snapshot, std::uint64_t index);

}  // namespace jenga::ledger
