// PortableState: the bundle of contract states and account balances that
// travels between state shards and the execution site.
//
// In Jenga's Phase 1, each state shard ships the locked states it owns into
// the execution channel; the channel executes against the union of those
// bundles and ships the updated bundle back in Phase 2.  The same type backs
// the baselines' state movement (Single Shard's state transfer, CX Func's
// intermediate results).
//
// PortableStateView adapts a bundle to the VM's StateView and doubles as the
// declared-access enforcer: only states present in the bundle are visible,
// so a client that mis-declared its access set triggers kUndeclaredAccess
// during execution — the paper's abort-and-charge-fee path.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "common/result.hpp"
#include "common/types.hpp"
#include "ledger/state_store.hpp"
#include "vm/state_view.hpp"

namespace jenga::ledger {

struct PortableState {
  std::map<ContractId, ContractState> contracts;
  std::map<AccountId, std::uint64_t> balances;

  /// Merges another bundle in (used by the execution site as grants arrive).
  void merge(const PortableState& other);

  [[nodiscard]] bool empty() const { return contracts.empty() && balances.empty(); }

  /// Wire size for the bandwidth model.
  [[nodiscard]] std::uint32_t wire_size() const;

  [[nodiscard]] std::uint64_t total_balance() const;

  /// Canonical wire encoding: magic, length-checked payload, trailing
  /// CRC-32C.  decode() round-trips encode() exactly and rejects truncated
  /// or bit-flipped payloads with an error — never a crash, never a
  /// half-decoded bundle.
  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static Result<PortableState> decode(std::span<const std::uint8_t> data);
};

inline constexpr std::uint32_t kPortableStateMagic = 0x3153504A;  // "JPS1"

class PortableStateView final : public vm::StateView {
 public:
  explicit PortableStateView(PortableState initial) : state_(std::move(initial)) {}

  [[nodiscard]] std::optional<std::uint64_t> sload(ContractId contract,
                                                   std::uint64_t key) override;
  bool sstore(ContractId contract, std::uint64_t key, std::uint64_t value) override;
  [[nodiscard]] std::optional<std::uint64_t> balance(AccountId account) override;
  bool credit(AccountId account, std::uint64_t amount) override;
  bool debit(AccountId account, std::uint64_t amount) override;

  /// The (possibly modified) bundle; callers take it on success, drop it on
  /// abort — the rollback is simply never applying the copy.
  [[nodiscard]] const PortableState& state() const { return state_; }
  [[nodiscard]] PortableState take() { return std::move(state_); }

 private:
  PortableState state_;
};

}  // namespace jenga::ledger
