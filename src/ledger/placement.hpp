// Deterministic placement rules shared by Jenga and all baselines.
//
// Contract/account states live on the shard selected by their id hash
// (paper §V-A: "the states of a certain contract is randomly (e.g., based on
// hash) stored to a shard").  In Jenga the *execution* site is instead
// chosen by the transaction hash (§V-B), balancing channel load regardless
// of which contracts are hot.
#pragma once

#include "common/rng.hpp"
#include "common/types.hpp"

namespace jenga::ledger {

[[nodiscard]] inline ShardId shard_of_contract(ContractId c, std::uint32_t num_shards) {
  std::uint64_t s = c.value ^ 0xC0117AC7ULL;
  return ShardId{static_cast<std::uint32_t>(splitmix64(s) % num_shards)};
}

[[nodiscard]] inline ShardId shard_of_account(AccountId a, std::uint32_t num_shards) {
  std::uint64_t s = a.value ^ 0xACC0117ULL;
  return ShardId{static_cast<std::uint32_t>(splitmix64(s) % num_shards)};
}

/// Jenga: the execution channel for ALL contracts in a transaction.
[[nodiscard]] inline ChannelId channel_of_tx(const Hash256& tx_hash, std::uint32_t num_shards) {
  return ChannelId{static_cast<std::uint32_t>(tx_hash.prefix_u64() % num_shards)};
}

}  // namespace jenga::ledger
