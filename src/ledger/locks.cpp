#include "ledger/locks.hpp"

namespace jenga::ledger {

bool LockManager::lock_contract(ContractId id, const Hash256& owner) {
  const auto [it, inserted] = contract_locks_.try_emplace(id, owner);
  return inserted || it->second == owner;
}

bool LockManager::lock_account(AccountId id, const Hash256& owner) {
  const auto [it, inserted] = account_locks_.try_emplace(id, owner);
  return inserted || it->second == owner;
}

bool LockManager::unlock_contract(ContractId id, const Hash256& owner) {
  const auto it = contract_locks_.find(id);
  if (it == contract_locks_.end() || !(it->second == owner)) return false;
  contract_locks_.erase(it);
  return true;
}

bool LockManager::unlock_account(AccountId id, const Hash256& owner) {
  const auto it = account_locks_.find(id);
  if (it == account_locks_.end() || !(it->second == owner)) return false;
  account_locks_.erase(it);
  return true;
}

std::size_t LockManager::release_all(const Hash256& owner) {
  std::size_t released = 0;
  released += std::erase_if(contract_locks_,
                            [&](const auto& kv) { return kv.second == owner; });
  released += std::erase_if(account_locks_,
                            [&](const auto& kv) { return kv.second == owner; });
  return released;
}

bool LockManager::contract_locked(ContractId id) const { return contract_locks_.contains(id); }
bool LockManager::account_locked(AccountId id) const { return account_locks_.contains(id); }

const Hash256* LockManager::contract_owner(ContractId id) const {
  const auto it = contract_locks_.find(id);
  return it == contract_locks_.end() ? nullptr : &it->second;
}

}  // namespace jenga::ledger
