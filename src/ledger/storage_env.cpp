#include "ledger/storage_env.hpp"

#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

namespace jenga::ledger {

// ---------------------------------------------------------------------------
// MemStorageEnv
// ---------------------------------------------------------------------------

class MemStorageEnv::MemFile final : public StorageFile {
 public:
  MemFile(MemStorageEnv* env, std::string name) : env_(env), name_(std::move(name)) {}

  [[nodiscard]] std::uint64_t size() const override {
    const FileState* st = find_state();
    return st == nullptr ? 0 : st->current.size();
  }

  [[nodiscard]] bool read(std::uint64_t offset, std::span<std::uint8_t> out) const override {
    const FileState* st = find_state();
    if (st == nullptr || offset + out.size() > st->current.size()) return false;
    std::memcpy(out.data(), st->current.data() + offset, out.size());
    return true;
  }

  void append(std::span<const std::uint8_t> data) override {
    std::span<const std::uint8_t> effective = data;
    if (const auto it = env_->torn_next_write_.find(name_);
        it != env_->torn_next_write_.end()) {
      effective = data.subspan(0, std::min<std::uint64_t>(it->second, data.size()));
      env_->torn_next_write_.erase(it);
      ++env_->stats_.torn_writes;
    }
    auto& buf = state().current;
    buf.insert(buf.end(), effective.begin(), effective.end());
    env_->stats_.bytes_written += effective.size();
  }

  void sync() override {
    ++env_->stats_.syncs;
    if (env_->drop_fsyncs_) {
      ++env_->stats_.dropped_fsyncs;
      return;
    }
    auto& st = state();
    st.durable = st.current;
    st.durable_exists = true;
  }

  void truncate(std::uint64_t new_size) override {
    auto& buf = state().current;
    if (new_size < buf.size()) buf.resize(new_size);
  }

 private:
  FileState& state() { return env_->files_[name_]; }
  [[nodiscard]] const FileState* find_state() const {
    const auto it = env_->files_.find(name_);
    return it == env_->files_.end() ? nullptr : &it->second;
  }

  MemStorageEnv* env_;
  std::string name_;
};

MemStorageEnv::MemStorageEnv() = default;
MemStorageEnv::~MemStorageEnv() = default;

StorageFile* MemStorageEnv::open(std::string_view name) {
  const std::string key(name);
  files_.try_emplace(key);  // ensure backing state exists
  auto it = handles_.find(key);
  if (it == handles_.end())
    it = handles_.emplace(key, std::make_unique<MemFile>(this, key)).first;
  return it->second.get();
}

bool MemStorageEnv::exists(std::string_view name) const {
  const auto it = files_.find(name);
  return it != files_.end();
}

void MemStorageEnv::remove(std::string_view name) {
  files_.erase(std::string(name));
  handles_.erase(std::string(name));
  torn_next_write_.erase(std::string(name));
}

void MemStorageEnv::rename(std::string_view from, std::string_view to) {
  const auto it = files_.find(from);
  if (it == files_.end()) return;
  FileState moved = std::move(it->second);
  // The swap is atomic for the running process.  Durability of the rename
  // itself rides on the destination's next sync: until then a power cut
  // resurrects whatever `to` durably held before (moved.durable stays as the
  // source's last-synced content, which IS the correct crash semantics for
  // the write-tmp-then-rename snapshot pattern, because the source was synced
  // before the rename).
  files_.erase(it);
  handles_.erase(std::string(from));
  handles_.erase(std::string(to));
  files_[std::string(to)] = std::move(moved);
}

void MemStorageEnv::arm_torn_write(std::string_view name, std::uint64_t keep_bytes) {
  torn_next_write_[std::string(name)] = keep_bytes;
}

void MemStorageEnv::flip_bit(std::string_view name, std::uint64_t bit_offset) {
  const auto it = files_.find(name);
  if (it == files_.end() || it->second.durable.empty()) return;
  auto& buf = it->second.durable;
  const std::uint64_t bit = bit_offset % (buf.size() * 8);
  buf[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  ++stats_.bit_flips;
}

void MemStorageEnv::power_cut() {
  ++stats_.power_cuts;
  for (auto it = files_.begin(); it != files_.end();) {
    if (!it->second.durable_exists) {
      handles_.erase(it->first);
      it = files_.erase(it);
      continue;
    }
    it->second.current = it->second.durable;
    ++it;
  }
  torn_next_write_.clear();
}

std::unique_ptr<MemStorageEnv> MemStorageEnv::durable_view() const {
  auto view = std::make_unique<MemStorageEnv>();
  for (const auto& [name, st] : files_) {
    if (!st.durable_exists) continue;
    FileState copy;
    copy.current = st.durable;
    copy.durable = st.durable;
    copy.durable_exists = true;
    view->files_[name] = std::move(copy);
  }
  return view;
}

// ---------------------------------------------------------------------------
// PosixStorageEnv
// ---------------------------------------------------------------------------

class PosixStorageEnv::PosixFile final : public StorageFile {
 public:
  explicit PosixFile(const std::string& path) {
    f_ = std::fopen(path.c_str(), "a+b");
    if (f_ != nullptr) {
      std::fseek(f_, 0, SEEK_END);
      size_ = static_cast<std::uint64_t>(std::ftell(f_));
    }
  }
  ~PosixFile() override {
    if (f_ != nullptr) std::fclose(f_);
  }

  [[nodiscard]] std::uint64_t size() const override { return size_; }

  [[nodiscard]] bool read(std::uint64_t offset, std::span<std::uint8_t> out) const override {
    if (f_ == nullptr || offset + out.size() > size_) return false;
    std::fflush(f_);
    if (std::fseek(f_, static_cast<long>(offset), SEEK_SET) != 0) return false;
    return std::fread(out.data(), 1, out.size(), f_) == out.size();
  }

  void append(std::span<const std::uint8_t> data) override {
    if (f_ == nullptr) return;
    std::fseek(f_, 0, SEEK_END);
    size_ += std::fwrite(data.data(), 1, data.size(), f_);
  }

  void sync() override {
    if (f_ == nullptr) return;
    std::fflush(f_);
    ::fsync(fileno(f_));
  }

  void truncate(std::uint64_t new_size) override {
    if (f_ == nullptr || new_size >= size_) return;
    std::fflush(f_);
    if (::ftruncate(fileno(f_), static_cast<off_t>(new_size)) == 0) size_ = new_size;
  }

 private:
  std::FILE* f_ = nullptr;
  std::uint64_t size_ = 0;
};

PosixStorageEnv::PosixStorageEnv(std::string dir) : dir_(std::move(dir)) {
  ::mkdir(dir_.c_str(), 0755);  // best effort; open() surfaces real failures
}

PosixStorageEnv::~PosixStorageEnv() = default;

std::string PosixStorageEnv::path_of(std::string_view name) const {
  std::string p = dir_;
  p += '/';
  p += name;
  return p;
}

StorageFile* PosixStorageEnv::open(std::string_view name) {
  const std::string key(name);
  auto it = handles_.find(key);
  if (it == handles_.end())
    it = handles_.emplace(key, std::make_unique<PosixFile>(path_of(name))).first;
  return it->second.get();
}

bool PosixStorageEnv::exists(std::string_view name) const {
  struct stat st {};
  return ::stat(path_of(name).c_str(), &st) == 0;
}

void PosixStorageEnv::remove(std::string_view name) {
  handles_.erase(std::string(name));
  ::unlink(path_of(name).c_str());
}

void PosixStorageEnv::rename(std::string_view from, std::string_view to) {
  handles_.erase(std::string(from));
  handles_.erase(std::string(to));
  ::rename(path_of(from).c_str(), path_of(to).c_str());
}

}  // namespace jenga::ledger
