#include "ledger/portable_state.hpp"

#include "common/codec.hpp"
#include "ledger/wal.hpp"

namespace jenga::ledger {

void PortableState::merge(const PortableState& other) {
  for (const auto& [id, st] : other.contracts) contracts[id] = st;
  for (const auto& [id, bal] : other.balances) balances[id] = bal;
}

std::uint32_t PortableState::wire_size() const {
  std::uint64_t n = 16;
  for (const auto& [id, st] : contracts) n += 16 + 16 * st.size();
  n += 16 * balances.size();
  return static_cast<std::uint32_t>(n);
}

std::uint64_t PortableState::total_balance() const {
  std::uint64_t sum = 0;
  for (const auto& [id, bal] : balances) sum += bal;
  return sum;
}

std::vector<std::uint8_t> PortableState::encode() const {
  Writer payload;
  payload.u64(contracts.size());
  for (const auto& [id, st] : contracts) {
    payload.u64(id.value);
    payload.u64(st.size());
    for (const auto& [k, v] : st) {
      payload.u64(k);
      payload.u64(v);
    }
  }
  payload.u64(balances.size());
  for (const auto& [id, bal] : balances) {
    payload.u64(id.value);
    payload.u64(bal);
  }
  Writer out;
  out.u32(kPortableStateMagic);
  out.u32(static_cast<std::uint32_t>(payload.size()));
  out.u32(crc32c(payload.data()));
  out.bytes(payload.data());
  return out.take();
}

Result<PortableState> PortableState::decode(std::span<const std::uint8_t> data) {
  Reader header(data);
  const std::uint32_t magic = header.u32();
  const std::uint32_t len = header.u32();
  const std::uint32_t crc = header.u32();
  if (header.failed()) return Err(std::string("portable-state: truncated header"));
  if (magic != kPortableStateMagic) return Err(std::string("portable-state: bad magic"));
  if (len != header.remaining()) return Err(std::string("portable-state: length mismatch"));
  const auto payload = data.subspan(data.size() - len);
  if (crc32c(payload) != crc)
    return Err(std::string("portable-state: checksum mismatch (corruption)"));

  Reader r(payload);
  PortableState out;
  const std::uint64_t contract_count = r.u64();
  for (std::uint64_t i = 0; i < contract_count && !r.failed(); ++i) {
    const ContractId id{r.u64()};
    const std::uint64_t entries = r.u64();
    ContractState st;
    for (std::uint64_t j = 0; j < entries && !r.failed(); ++j) {
      const std::uint64_t k = r.u64();
      const std::uint64_t v = r.u64();
      st[k] = v;
    }
    out.contracts[id] = std::move(st);
  }
  const std::uint64_t balance_count = r.u64();
  for (std::uint64_t i = 0; i < balance_count && !r.failed(); ++i) {
    const AccountId id{r.u64()};
    out.balances[id] = r.u64();
  }
  if (r.failed() || !r.exhausted())
    return Err(std::string("portable-state: undecodable payload"));
  return out;
}

std::optional<std::uint64_t> PortableStateView::sload(ContractId contract, std::uint64_t key) {
  const auto it = state_.contracts.find(contract);
  if (it == state_.contracts.end()) return std::nullopt;  // undeclared contract
  const auto kv = it->second.find(key);
  return kv == it->second.end() ? 0 : kv->second;  // absent key reads as 0
}

bool PortableStateView::sstore(ContractId contract, std::uint64_t key, std::uint64_t value) {
  const auto it = state_.contracts.find(contract);
  if (it == state_.contracts.end()) return false;
  it->second[key] = value;
  return true;
}

std::optional<std::uint64_t> PortableStateView::balance(AccountId account) {
  const auto it = state_.balances.find(account);
  if (it == state_.balances.end()) return std::nullopt;
  return it->second;
}

bool PortableStateView::credit(AccountId account, std::uint64_t amount) {
  const auto it = state_.balances.find(account);
  if (it == state_.balances.end()) return false;
  it->second += amount;
  return true;
}

bool PortableStateView::debit(AccountId account, std::uint64_t amount) {
  const auto it = state_.balances.find(account);
  if (it == state_.balances.end() || it->second < amount) return false;
  it->second -= amount;
  return true;
}

}  // namespace jenga::ledger
