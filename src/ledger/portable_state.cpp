#include "ledger/portable_state.hpp"

namespace jenga::ledger {

void PortableState::merge(const PortableState& other) {
  for (const auto& [id, st] : other.contracts) contracts[id] = st;
  for (const auto& [id, bal] : other.balances) balances[id] = bal;
}

std::uint32_t PortableState::wire_size() const {
  std::uint64_t n = 16;
  for (const auto& [id, st] : contracts) n += 16 + 16 * st.size();
  n += 16 * balances.size();
  return static_cast<std::uint32_t>(n);
}

std::uint64_t PortableState::total_balance() const {
  std::uint64_t sum = 0;
  for (const auto& [id, bal] : balances) sum += bal;
  return sum;
}

std::optional<std::uint64_t> PortableStateView::sload(ContractId contract, std::uint64_t key) {
  const auto it = state_.contracts.find(contract);
  if (it == state_.contracts.end()) return std::nullopt;  // undeclared contract
  const auto kv = it->second.find(key);
  return kv == it->second.end() ? 0 : kv->second;  // absent key reads as 0
}

bool PortableStateView::sstore(ContractId contract, std::uint64_t key, std::uint64_t value) {
  const auto it = state_.contracts.find(contract);
  if (it == state_.contracts.end()) return false;
  it->second[key] = value;
  return true;
}

std::optional<std::uint64_t> PortableStateView::balance(AccountId account) {
  const auto it = state_.balances.find(account);
  if (it == state_.balances.end()) return std::nullopt;
  return it->second;
}

bool PortableStateView::credit(AccountId account, std::uint64_t amount) {
  const auto it = state_.balances.find(account);
  if (it == state_.balances.end()) return false;
  it->second += amount;
  return true;
}

bool PortableStateView::debit(AccountId account, std::uint64_t amount) {
  const auto it = state_.balances.find(account);
  if (it == state_.balances.end() || it->second < amount) return false;
  it->second -= amount;
  return true;
}

}  // namespace jenga::ledger
