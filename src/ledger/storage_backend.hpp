// Pluggable persistence under StateStore.
//
// The store keeps its working set in memory (flat maps + Merkle trie) and
// write-throughs every mutation here.  Two implementations:
//
//   InMemoryBackend — a plain ordered map.  Durability is trivial (process
//     lifetime), which makes it the bit-identity oracle: for any mutation
//     sequence, a store on this backend and a store on the durable backend
//     must report the same authenticated root, and a durable store recovered
//     after a crash must land on a root the oracle passed through.
//
//   DurableBackend — write-ahead log + periodic snapshots over a StorageEnv.
//     Every put/erase appends a CRC-framed WAL record; commit(root) appends a
//     kCommit record carrying the authenticated root and issues the fsync.
//     Every `snapshot_interval` commits the full key/value set is written to
//     a fresh checksummed snapshot file (write-tmp, fsync, rename), after
//     which the WAL restarts empty.  load() = newest valid snapshot + WAL
//     replay UP TO THE LAST COMMIT RECORD: a trailing batch that never
//     reached its commit barrier is discarded (it was never durable), and the
//     recovered root is checked against the root stored in that commit
//     record — so recovery either reproduces an exact committed state or
//     refuses with an error.
//
// Key/value bytes are opaque here; StateStore owns the encoding.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/types.hpp"
#include "ledger/storage_env.hpp"
#include "ledger/wal.hpp"

namespace jenga::ledger {

/// Durability traffic counters (folded into telemetry / the storage bench).
struct BackendStats {
  std::uint64_t puts = 0;
  std::uint64_t erases = 0;
  std::uint64_t commits = 0;
  std::uint64_t wal_records = 0;
  std::uint64_t wal_bytes = 0;
  std::uint64_t snapshots_written = 0;
  std::uint64_t snapshot_bytes = 0;
  /// Recovery-side observations (populated by load()).
  std::uint64_t replayed_records = 0;
  std::uint64_t torn_tail_bytes = 0;
  std::uint64_t uncommitted_dropped = 0;
};

/// Everything load() recovered: the key/value set as of the last durable
/// commit, plus the root that commit promised.
struct RecoveredState {
  std::vector<std::pair<std::vector<std::uint8_t>, std::vector<std::uint8_t>>> entries;
  Hash256 committed_root{};
  bool has_commit = false;  // false: empty/fresh backend (genesis boot)
};

class StorageBackend {
 public:
  virtual ~StorageBackend() = default;

  [[nodiscard]] virtual const char* name() const = 0;
  virtual void put(std::span<const std::uint8_t> key, std::span<const std::uint8_t> value) = 0;
  virtual void erase(std::span<const std::uint8_t> key) = 0;
  /// Durability barrier at a decided block; `root` is the authenticated state
  /// root after the batch.
  virtual void commit(const Hash256& root) = 0;
  /// Recovers the durable image (see class comment).  Errors mean the medium
  /// is corrupt and the caller must refuse the state (full re-sync instead).
  [[nodiscard]] virtual Result<RecoveredState> load() = 0;

  [[nodiscard]] const BackendStats& stats() const { return stats_; }

 protected:
  BackendStats stats_;
};

class InMemoryBackend final : public StorageBackend {
 public:
  [[nodiscard]] const char* name() const override { return "in-memory"; }
  void put(std::span<const std::uint8_t> key, std::span<const std::uint8_t> value) override;
  void erase(std::span<const std::uint8_t> key) override;
  void commit(const Hash256& root) override;
  [[nodiscard]] Result<RecoveredState> load() override;

 private:
  std::map<std::vector<std::uint8_t>, std::vector<std::uint8_t>> kv_;
  Hash256 last_root_{};
  bool committed_ = false;
};

struct DurableOptions {
  /// File-name prefix inside the env (one backend per prefix).
  std::string prefix = "state";
  /// Full snapshot every N commits; 0 = WAL-only, never snapshot.
  std::uint32_t snapshot_interval = 64;
};

class DurableBackend final : public StorageBackend {
 public:
  /// The env must outlive the backend.
  DurableBackend(StorageEnv* env, DurableOptions options);

  [[nodiscard]] const char* name() const override { return "durable"; }
  void put(std::span<const std::uint8_t> key, std::span<const std::uint8_t> value) override;
  void erase(std::span<const std::uint8_t> key) override;
  void commit(const Hash256& root) override;
  [[nodiscard]] Result<RecoveredState> load() override;

 private:
  [[nodiscard]] std::string wal_name() const { return options_.prefix + ".wal"; }
  [[nodiscard]] std::string snap_name() const { return options_.prefix + ".snap"; }
  [[nodiscard]] std::string snap_tmp_name() const { return options_.prefix + ".snap.tmp"; }
  void write_snapshot(const Hash256& root);
  void open_wal_fresh();
  void append(WalOp op, std::span<const std::uint8_t> key, std::span<const std::uint8_t> value,
              const Hash256& root);

  StorageEnv* env_;
  DurableOptions options_;
  /// Mirror of the durable key/value set, maintained so snapshots can be
  /// written without asking the store (and so load() can replay onto the
  /// snapshot image).  Ordered, so snapshot bytes are canonical.
  std::map<std::vector<std::uint8_t>, std::vector<std::uint8_t>> kv_;
  StorageFile* wal_file_ = nullptr;
  std::unique_ptr<WalWriter> wal_;
  /// WAL generation: every snapshot closes one generation and the replacement
  /// log opens the next.  A log whose generation does not follow the newest
  /// snapshot's is stale (crash between rename and log reset) and is ignored.
  std::uint64_t wal_gen_ = 1;
  std::uint64_t next_seq_ = 1;
  std::uint32_t commits_since_snapshot_ = 0;
  bool opened_ = false;  // load() must run before any mutation
};

/// Snapshot file framing (same header shape as the WAL):
///   [u32 magic 'JSN1'] [u32 payload_len] [u32 crc32c(payload)] [payload]
///   payload: u32 version, u64 generation, root hash, u64 count, count× (key
///   blob, value blob) in key order.
inline constexpr std::uint32_t kSnapMagic = 0x314E534A;  // "JSN1"
inline constexpr std::uint32_t kSnapVersion = 1;

}  // namespace jenga::ledger
