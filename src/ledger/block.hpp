// Blocks and per-shard chains.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace jenga::ledger {

struct BlockHeader {
  ShardId shard{};
  BlockHeight height = 0;
  Hash256 previous;
  Hash256 tx_root;     // Merkle root over the committed tx hashes
  SimTime timestamp = 0;
  std::uint32_t tx_count = 0;

  [[nodiscard]] Hash256 id() const;
};

struct Block {
  BlockHeader header;
  std::vector<Hash256> tx_hashes;
  std::uint64_t body_bytes = 0;  // Σ tx wire sizes

  [[nodiscard]] std::uint64_t total_bytes() const { return kHeaderBytes + body_bytes; }

  static constexpr std::uint64_t kHeaderBytes = 128;
};

/// Builds a block over the given transactions and links it to `previous`.
[[nodiscard]] Block build_block(ShardId shard, BlockHeight height, const Hash256& previous,
                                std::vector<Hash256> tx_hashes, std::uint64_t body_bytes,
                                SimTime timestamp);

/// Append-only chain for one shard with linkage verification.
class Chain {
 public:
  explicit Chain(ShardId shard) : shard_(shard) {}

  /// Appends if the block correctly extends the tip; returns false otherwise.
  bool append(Block block);

  [[nodiscard]] BlockHeight height() const { return blocks_.size(); }
  [[nodiscard]] const Block* tip() const { return blocks_.empty() ? nullptr : &blocks_.back(); }
  [[nodiscard]] Hash256 tip_hash() const;
  [[nodiscard]] const Block& at(BlockHeight h) const { return blocks_.at(h); }
  [[nodiscard]] std::uint64_t total_bytes() const { return total_bytes_; }
  [[nodiscard]] std::uint64_t total_txs() const { return total_txs_; }
  [[nodiscard]] ShardId shard() const { return shard_; }

  /// Re-validates the whole chain's hash linkage (test/audit helper).
  [[nodiscard]] bool verify() const;

 private:
  ShardId shard_;
  std::vector<Block> blocks_;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t total_txs_ = 0;
};

}  // namespace jenga::ledger
