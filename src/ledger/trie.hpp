// Authenticated map: radix-16 Merkle trie over hashed keys (SHAMap-style).
//
// Keys are 256-bit path hashes (the caller hashes its logical key — see
// StateStore's key scheme), walked nibble by nibble from the top.  A leaf
// lives at the shallowest depth where its path is unique, inner nodes exist
// exactly on shared prefixes, and deletion collapses one-leaf inner chains —
// so the structure (and therefore the root) is a pure function of the
// key→value mapping, independent of insertion order.  That is the property
// the exec-determinism tests lean on: any worker count, any arrival order,
// same root.
//
// Hashing is incremental and lazy: mutations dirty the path, root() rehashes
// only dirty subtrees.  A mutation therefore costs O(depth) pointer work and
// root() costs O(dirty paths × depth × 16) hashing — at 10^6 keys depth is
// ~5-6, against the old whole-store rehash that walked every entry on every
// digest() call.
//
// Domain separation: leaf hashes, inner hashes and the empty root use
// distinct SHA-256 tags, so a leaf can never be replayed as an inner node.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hpp"

namespace jenga::ledger {

/// One inner node of a proof path: the full 16-child hash frame, root first.
/// The verifier recomputes each frame's hash and checks the child slot the
/// key's nibble selects, so any tampering — value, sibling, or path — breaks
/// the chain.
struct TrieProofNode {
  std::array<Hash256, 16> children;
};

struct TrieProof {
  std::vector<TrieProofNode> nodes;  // root frame first, leaf's parent last

  [[nodiscard]] std::size_t depth() const { return nodes.size(); }
  /// Wire size for the bandwidth model: 16 hashes per frame.
  [[nodiscard]] std::uint64_t wire_size() const { return nodes.size() * 16 * 32 + 8; }
};

class MerkleTrie {
 public:
  MerkleTrie();
  ~MerkleTrie();
  MerkleTrie(MerkleTrie&&) noexcept;
  MerkleTrie& operator=(MerkleTrie&&) noexcept;
  MerkleTrie(const MerkleTrie&) = delete;
  MerkleTrie& operator=(const MerkleTrie&) = delete;

  /// Inserts or updates `path` with the given value hash.
  void put(const Hash256& path, const Hash256& value_hash);
  /// Removes `path`; returns false if absent.
  bool erase(const Hash256& path);
  /// The stored value hash, or nullptr.
  [[nodiscard]] const Hash256* get(const Hash256& path) const;
  [[nodiscard]] std::size_t size() const { return size_; }

  /// Authenticated root.  Cached: only subtrees dirtied since the last call
  /// are rehashed.
  [[nodiscard]] Hash256 root() const;
  /// Root recomputed from scratch, ignoring every cached hash — the oracle
  /// the incremental path is asserted against in debug builds.
  [[nodiscard]] Hash256 recompute_root() const;

  /// Inclusion proof for `path` (which must be present; returns an empty
  /// proof with ok=false otherwise via the bool).
  [[nodiscard]] bool prove(const Hash256& path, TrieProof& out) const;

  /// Verifies that (path → value_hash) is included under `root`.
  [[nodiscard]] static bool verify(const Hash256& root, const Hash256& path,
                                   const Hash256& value_hash, const TrieProof& proof);

  [[nodiscard]] static Hash256 empty_root();
  [[nodiscard]] static Hash256 leaf_hash(const Hash256& path, const Hash256& value_hash);

  /// Implementation node; public so the out-of-line helpers can name it.
  struct Node;

 private:
  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

}  // namespace jenga::ledger
