#include "ledger/block.hpp"

#include "common/codec.hpp"
#include "crypto/merkle.hpp"
#include "crypto/sha256.hpp"

namespace jenga::ledger {

Hash256 BlockHeader::id() const {
  Writer w;
  w.id(shard);
  w.u64(height);
  w.hash(previous);
  w.hash(tx_root);
  w.i64(timestamp);
  w.u32(tx_count);
  return crypto::sha256_tagged("jenga/block", w.data());
}

Block build_block(ShardId shard, BlockHeight height, const Hash256& previous,
                  std::vector<Hash256> tx_hashes, std::uint64_t body_bytes, SimTime timestamp) {
  Block b;
  b.header.shard = shard;
  b.header.height = height;
  b.header.previous = previous;
  b.header.tx_root = crypto::merkle_root(tx_hashes);
  b.header.timestamp = timestamp;
  b.header.tx_count = static_cast<std::uint32_t>(tx_hashes.size());
  b.tx_hashes = std::move(tx_hashes);
  b.body_bytes = body_bytes;
  return b;
}

bool Chain::append(Block block) {
  if (block.header.shard != shard_) return false;
  if (block.header.height != blocks_.size()) return false;
  if (!(block.header.previous == tip_hash())) return false;
  if (block.header.tx_count != block.tx_hashes.size()) return false;
  if (!(block.header.tx_root == crypto::merkle_root(block.tx_hashes))) return false;
  total_bytes_ += block.total_bytes();
  total_txs_ += block.tx_hashes.size();
  blocks_.push_back(std::move(block));
  return true;
}

Hash256 Chain::tip_hash() const {
  if (blocks_.empty()) return crypto::sha256("jenga/genesis");
  return blocks_.back().header.id();
}

bool Chain::verify() const {
  Hash256 prev = crypto::sha256("jenga/genesis");
  for (BlockHeight h = 0; h < blocks_.size(); ++h) {
    const Block& b = blocks_[h];
    if (b.header.height != h) return false;
    if (!(b.header.previous == prev)) return false;
    if (!(b.header.tx_root == crypto::merkle_root(b.tx_hashes))) return false;
    prev = b.header.id();
  }
  return true;
}

}  // namespace jenga::ledger
