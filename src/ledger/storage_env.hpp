// Storage environment: the "disk" under the durable state backend.
//
// The WAL and snapshot machinery (wal.hpp, storage_backend.hpp) is written
// against this abstraction so the same code runs over two media:
//
//   MemStorageEnv   — deterministic in-memory disk with an explicit fsync
//                     boundary.  Every file keeps two images: `current`
//                     (what the process wrote) and `durable` (what survived
//                     the last fsync).  power_cut() discards everything past
//                     the durable image — the crash model for recovery tests.
//                     Storage faults are scripted, seedable and replayable:
//                     torn writes (a future write is truncated mid-buffer),
//                     dropped-fsync windows (sync() silently does nothing),
//                     and bit flips in the durable image (latent media
//                     corruption, discovered only at recovery).
//
//   PosixStorageEnv — real files under a directory, real fsync.  Used by the
//                     storage bench so the Fig. 7 numbers at 10^6 accounts
//                     reflect actual I/O, not a vector push_back.
//
// Nothing here knows about tries or records; it is bytes, offsets and sync
// barriers only.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"

namespace jenga::ledger {

/// One open file: append-oriented writes plus random reads.  Offsets are
/// absolute; append() writes at the current end.
class StorageFile {
 public:
  virtual ~StorageFile() = default;

  [[nodiscard]] virtual std::uint64_t size() const = 0;
  /// Reads [offset, offset+out.size()); short reads fail.
  [[nodiscard]] virtual bool read(std::uint64_t offset, std::span<std::uint8_t> out) const = 0;
  /// Appends at end-of-file.  A torn-write fault may persist only a prefix.
  virtual void append(std::span<const std::uint8_t> data) = 0;
  /// Durability barrier (fsync).  A dropped-fsync fault makes this a no-op.
  virtual void sync() = 0;
  virtual void truncate(std::uint64_t new_size) = 0;
};

class StorageEnv {
 public:
  virtual ~StorageEnv() = default;

  /// Opens (creating if absent) a named file.  The pointer stays valid until
  /// the env is destroyed or the name is passed to remove()/rename() — both
  /// invalidate outstanding handles for the affected names; re-open after.
  virtual StorageFile* open(std::string_view name) = 0;
  [[nodiscard]] virtual bool exists(std::string_view name) const = 0;
  virtual void remove(std::string_view name) = 0;
  /// Atomic replace: `to` takes `from`'s contents; `from` disappears.
  /// Like POSIX rename(2), the swap itself is atomic but only durable after
  /// the next sync on the destination.
  virtual void rename(std::string_view from, std::string_view to) = 0;
};

/// Counters for injected faults and durability traffic (test assertions and
/// the storage bench report).
struct StorageFaultStats {
  std::uint64_t syncs = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t torn_writes = 0;
  std::uint64_t dropped_fsyncs = 0;
  std::uint64_t bit_flips = 0;
  std::uint64_t power_cuts = 0;
};

/// Deterministic in-memory disk with an explicit crash/corruption model.
class MemStorageEnv final : public StorageEnv {
 public:
  MemStorageEnv();
  ~MemStorageEnv() override;  // out-of-line: MemFile is incomplete here

  StorageFile* open(std::string_view name) override;
  [[nodiscard]] bool exists(std::string_view name) const override;
  void remove(std::string_view name) override;
  void rename(std::string_view from, std::string_view to) override;

  // --- fault injection -----------------------------------------------------
  /// The next append to `name` persists only the first `keep_bytes` bytes of
  /// its buffer (a torn write at a sector boundary mid-record).
  void arm_torn_write(std::string_view name, std::uint64_t keep_bytes);
  /// While enabled, sync() calls complete but durabilize nothing — the model
  /// of a drive that acks fsync from its volatile cache.
  void set_drop_fsyncs(bool drop) { drop_fsyncs_ = drop; }
  /// Flips one bit of `name`'s DURABLE image (latent media corruption: the
  /// running process never sees it; recovery does).  Out-of-range offsets
  /// wrap, so callers can feed raw entropy.  No-op on an empty file.
  void flip_bit(std::string_view name, std::uint64_t bit_offset);
  /// Crash: every file falls back to its durable image; un-synced writes and
  /// un-synced renames are lost.
  void power_cut();

  /// A fresh env holding only the durable images — what a recovering node
  /// would read off its disk, without disturbing the live one.
  [[nodiscard]] std::unique_ptr<MemStorageEnv> durable_view() const;

  [[nodiscard]] const StorageFaultStats& fault_stats() const { return stats_; }

 private:
  class MemFile;
  struct FileState {
    std::vector<std::uint8_t> current;
    std::vector<std::uint8_t> durable;
    /// Durable name mapping: rename is atomic in `current` space immediately
    /// but only survives a crash once synced (see rename()).
    bool durable_exists = false;
  };

  std::map<std::string, FileState, std::less<>> files_;
  std::map<std::string, std::unique_ptr<MemFile>, std::less<>> handles_;
  std::map<std::string, std::uint64_t, std::less<>> torn_next_write_;
  bool drop_fsyncs_ = false;
  StorageFaultStats stats_;

  friend class MemFile;
};

/// Real files under `dir` (created if needed); sync() is fsync(2).
class PosixStorageEnv final : public StorageEnv {
 public:
  explicit PosixStorageEnv(std::string dir);
  ~PosixStorageEnv() override;

  StorageFile* open(std::string_view name) override;
  [[nodiscard]] bool exists(std::string_view name) const override;
  void remove(std::string_view name) override;
  void rename(std::string_view from, std::string_view to) override;

  [[nodiscard]] const std::string& dir() const { return dir_; }

 private:
  class PosixFile;
  [[nodiscard]] std::string path_of(std::string_view name) const;

  std::string dir_;
  std::map<std::string, std::unique_ptr<PosixFile>, std::less<>> handles_;
};

}  // namespace jenga::ledger
