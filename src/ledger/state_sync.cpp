#include "ledger/state_sync.hpp"

#include <algorithm>

#include "common/codec.hpp"

namespace jenga::ledger {

namespace {

std::uint64_t entry_wire_size(const SyncEntry& e) {
  return 8 + e.key.size() + e.value.size() + e.proof.wire_size();
}

/// Decodes one (key, value) state entry into `dst` through its normal
/// mutation path, so the receiver's trie and backend stay authoritative.
bool apply_entry(StateStore& dst, const std::vector<std::uint8_t>& key,
                 const std::vector<std::uint8_t>& value) {
  Reader kr(key);
  const std::uint8_t keyspace = kr.u8();
  const std::uint64_t id = kr.u64();
  if (kr.failed() || !kr.exhausted()) return false;
  Reader vr(value);
  if (keyspace == kKeyspaceAccount) {
    const std::uint64_t bal = vr.u64();
    if (vr.failed() || !vr.exhausted()) return false;
    dst.create_account(AccountId{id}, bal);
    return true;
  }
  if (keyspace == kKeyspaceContract) {
    const std::uint64_t count = vr.u64();
    ContractState st;
    for (std::uint64_t i = 0; i < count && !vr.failed(); ++i) {
      const std::uint64_t k = vr.u64();
      const std::uint64_t v = vr.u64();
      st[k] = v;
    }
    if (vr.failed() || !vr.exhausted()) return false;
    dst.create_contract_state(ContractId{id}, std::move(st));
    return true;
  }
  return false;
}

}  // namespace

std::uint64_t SyncSnapshot::wire_size() const {
  std::uint64_t n = 32 + 8;
  for (const SyncEntry& e : entries) n += entry_wire_size(e);
  return n;
}

SyncSnapshot build_sync_snapshot(const StateStore& src) {
  SyncSnapshot snap;
  snap.root = src.digest();

  std::vector<AccountId> accounts;
  accounts.reserve(src.balances().size());
  for (const auto& [id, bal] : src.balances()) accounts.push_back(id);
  std::sort(accounts.begin(), accounts.end());
  std::vector<ContractId> contracts;
  contracts.reserve(src.contracts().size());
  for (const auto& [id, st] : src.contracts()) contracts.push_back(id);
  std::sort(contracts.begin(), contracts.end());

  snap.entries.reserve(accounts.size() + contracts.size());
  for (AccountId id : accounts) {
    SyncEntry e;
    e.key = state_key_account(id);
    e.value = encode_account_value(*src.balance(id));
    const bool proved = src.prove(e.key, e.proof);
    (void)proved;  // every enumerated key is present by construction
    snap.entries.push_back(std::move(e));
  }
  for (ContractId id : contracts) {
    SyncEntry e;
    e.key = state_key_contract(id);
    e.value = encode_contract_value(*src.contract_state(id));
    const bool proved = src.prove(e.key, e.proof);
    (void)proved;
    snap.entries.push_back(std::move(e));
  }
  return snap;
}

SyncOutcome apply_sync_snapshot(const SyncSnapshot& snapshot, StateStore& dst) {
  SyncOutcome out;
  for (const SyncEntry& e : snapshot.entries) {
    const bool proof_ok = MerkleTrie::verify(snapshot.root, state_path(e.key),
                                             state_value_hash(e.value), e.proof);
    if (!proof_ok || !apply_entry(dst, e.key, e.value)) {
      ++out.proof_rejections;
      return out;  // the serving peer lied; abort, caller tries elsewhere
    }
    ++out.keys_verified;
    out.bytes += entry_wire_size(e);
  }
  out.ok = dst.digest() == snapshot.root;
  return out;
}

std::uint64_t full_copy_sync(const StateStore& src, StateStore& dst) {
  std::uint64_t bytes = 0;
  for (const auto& [id, bal] : src.balances()) {
    dst.create_account(id, bal);
    bytes += kAccountStateBytes;
  }
  for (const auto& [id, st] : src.contracts()) {
    dst.create_contract_state(id, st);
    bytes += contract_state_bytes(st);
  }
  return bytes;
}

void tamper_sync_snapshot(SyncSnapshot& snapshot, std::uint64_t index) {
  if (snapshot.entries.empty()) return;
  SyncEntry& e = snapshot.entries[index % snapshot.entries.size()];
  if (e.value.empty()) e.value.push_back(0);
  e.value[0] ^= 0x01;  // a single flipped bit is enough to break the proof
}

}  // namespace jenga::ledger
