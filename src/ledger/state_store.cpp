#include "ledger/state_store.hpp"

#include <algorithm>

#include "crypto/sha256.hpp"

namespace jenga::ledger {

void StateStore::create_account(AccountId id, std::uint64_t balance) {
  balances_[id] = balance;
}

bool StateStore::has_account(AccountId id) const { return balances_.contains(id); }

std::optional<std::uint64_t> StateStore::balance(AccountId id) const {
  const auto it = balances_.find(id);
  if (it == balances_.end()) return std::nullopt;
  return it->second;
}

bool StateStore::set_balance(AccountId id, std::uint64_t balance) {
  const auto it = balances_.find(id);
  if (it == balances_.end()) return false;
  it->second = balance;
  return true;
}

std::uint64_t StateStore::total_balance() const {
  std::uint64_t sum = 0;
  for (const auto& [id, bal] : balances_) sum += bal;
  return sum;
}

void StateStore::create_contract_state(ContractId id, ContractState initial) {
  contract_states_[id] = std::move(initial);
}

bool StateStore::has_contract_state(ContractId id) const {
  return contract_states_.contains(id);
}

const ContractState* StateStore::contract_state(ContractId id) const {
  const auto it = contract_states_.find(id);
  return it == contract_states_.end() ? nullptr : &it->second;
}

bool StateStore::set_contract_state(ContractId id, ContractState state) {
  const auto it = contract_states_.find(id);
  if (it == contract_states_.end()) return false;
  it->second = std::move(state);
  return true;
}

Hash256 StateStore::digest() const {
  crypto::Sha256 h;
  h.update("jenga/state-root");
  std::vector<AccountId> accounts;
  accounts.reserve(balances_.size());
  for (const auto& [id, bal] : balances_) accounts.push_back(id);
  std::sort(accounts.begin(), accounts.end());
  h.update_u64(accounts.size());
  for (AccountId id : accounts) {
    h.update_u64(id.value);
    h.update_u64(balances_.at(id));
  }
  std::vector<ContractId> contracts;
  contracts.reserve(contract_states_.size());
  for (const auto& [id, st] : contract_states_) contracts.push_back(id);
  std::sort(contracts.begin(), contracts.end());
  h.update_u64(contracts.size());
  for (ContractId id : contracts) {
    h.update_u64(id.value);
    const ContractState& st = contract_states_.at(id);
    h.update_u64(st.size());
    for (const auto& [k, v] : st) {
      h.update_u64(k);
      h.update_u64(v);
    }
  }
  return h.finish();
}

std::uint64_t StateStore::state_storage_bytes() const {
  std::uint64_t n = kAccountStateBytes * balances_.size();
  for (const auto& [id, st] : contract_states_) n += contract_state_bytes(st);
  return n;
}

void LogicStore::add(std::shared_ptr<const vm::ContractLogic> logic) {
  if (!logic) return;
  const auto [it, inserted] = logics_.try_emplace(logic->id, logic);
  if (inserted) logic_bytes_ += logic->code_size_bytes();
}

const vm::ContractLogic* LogicStore::get(ContractId id) const {
  const auto it = logics_.find(id);
  return it == logics_.end() ? nullptr : it->second.get();
}

}  // namespace jenga::ledger
