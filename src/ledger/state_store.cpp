#include "ledger/state_store.hpp"

#include <cassert>

#include "common/codec.hpp"
#include "crypto/sha256.hpp"

namespace jenga::ledger {

namespace {

std::vector<std::uint8_t> make_key(std::uint8_t keyspace, std::uint64_t id) {
  Writer w;
  w.u8(keyspace);
  w.u64(id);
  return w.take();
}

}  // namespace

std::vector<std::uint8_t> state_key_account(AccountId id) {
  return make_key(kKeyspaceAccount, id.value);
}

std::vector<std::uint8_t> state_key_contract(ContractId id) {
  return make_key(kKeyspaceContract, id.value);
}

Hash256 state_path(std::span<const std::uint8_t> key_bytes) {
  return crypto::sha256_tagged("jenga/state-key", key_bytes);
}

Hash256 state_value_hash(std::span<const std::uint8_t> value_bytes) {
  return crypto::sha256_tagged("jenga/state-val", value_bytes);
}

std::vector<std::uint8_t> encode_account_value(std::uint64_t balance) {
  Writer w;
  w.u64(balance);
  return w.take();
}

std::vector<std::uint8_t> encode_contract_value(const ContractState& st) {
  Writer w;
  w.u64(st.size());
  for (const auto& [k, v] : st) {  // std::map: key order, canonical
    w.u64(k);
    w.u64(v);
  }
  return w.take();
}

Result<StateStore> StateStore::open(std::unique_ptr<StorageBackend> backend) {
  auto recovered = backend->load();
  if (!recovered.ok()) return Err(std::string("state: ") + recovered.error());
  const RecoveredState& rec = recovered.value();

  StateStore store;
  for (const auto& [key, value] : rec.entries) {
    Reader kr(key);
    const std::uint8_t keyspace = kr.u8();
    const std::uint64_t id = kr.u64();
    if (kr.failed() || !kr.exhausted())
      return Err(std::string("state: undecodable recovered key"));
    Reader vr(value);
    if (keyspace == kKeyspaceAccount) {
      const std::uint64_t bal = vr.u64();
      if (vr.failed() || !vr.exhausted())
        return Err(std::string("state: undecodable account value"));
      store.balances_[AccountId{id}] = bal;
    } else if (keyspace == kKeyspaceContract) {
      const std::uint64_t count = vr.u64();
      ContractState st;
      for (std::uint64_t i = 0; i < count; ++i) {
        const std::uint64_t k = vr.u64();
        const std::uint64_t v = vr.u64();
        if (vr.failed()) break;
        st[k] = v;
      }
      if (vr.failed() || !vr.exhausted())
        return Err(std::string("state: undecodable contract value"));
      store.contract_states_[ContractId{id}] = std::move(st);
    } else {
      return Err(std::string("state: unknown keyspace ") + std::to_string(keyspace));
    }
    store.trie_.put(state_path(key), state_value_hash(value));
  }

  // The rebuilt root must be the root the last durable commit promised —
  // otherwise the backend handed back state that was never decided (e.g. a
  // replayed log that diverged) and the only safe answer is refusal.
  if (rec.has_commit && !(store.trie_.root() == rec.committed_root))
    return Err(std::string("state: recovered root does not match committed root"));

  store.backend_ = std::move(backend);
  return store;
}

void StateStore::write_through(std::span<const std::uint8_t> key_bytes,
                               std::span<const std::uint8_t> value_bytes) {
  trie_.put(state_path(key_bytes), state_value_hash(value_bytes));
  if (backend_) backend_->put(key_bytes, value_bytes);
}

void StateStore::create_account(AccountId id, std::uint64_t balance) {
  balances_[id] = balance;
  write_through(state_key_account(id), encode_account_value(balance));
}

bool StateStore::has_account(AccountId id) const { return balances_.contains(id); }

std::optional<std::uint64_t> StateStore::balance(AccountId id) const {
  const auto it = balances_.find(id);
  if (it == balances_.end()) return std::nullopt;
  return it->second;
}

bool StateStore::set_balance(AccountId id, std::uint64_t balance) {
  const auto it = balances_.find(id);
  if (it == balances_.end()) return false;
  it->second = balance;
  write_through(state_key_account(id), encode_account_value(balance));
  return true;
}

std::uint64_t StateStore::total_balance() const {
  std::uint64_t sum = 0;
  for (const auto& [id, bal] : balances_) sum += bal;
  return sum;
}

void StateStore::create_contract_state(ContractId id, ContractState initial) {
  write_through(state_key_contract(id), encode_contract_value(initial));
  contract_states_[id] = std::move(initial);
}

bool StateStore::has_contract_state(ContractId id) const {
  return contract_states_.contains(id);
}

const ContractState* StateStore::contract_state(ContractId id) const {
  const auto it = contract_states_.find(id);
  return it == contract_states_.end() ? nullptr : &it->second;
}

bool StateStore::set_contract_state(ContractId id, ContractState state) {
  const auto it = contract_states_.find(id);
  if (it == contract_states_.end()) return false;
  write_through(state_key_contract(id), encode_contract_value(state));
  it->second = std::move(state);
  return true;
}

Hash256 StateStore::digest() const {
  const Hash256 root = trie_.root();
#ifndef NDEBUG
  assert(root == trie_.recompute_root() &&
         "incremental trie root diverged from full recompute");
#endif
  return root;
}

void StateStore::commit() {
  if (backend_) backend_->commit(digest());
}

bool StateStore::prove(std::span<const std::uint8_t> key_bytes, TrieProof& out) const {
  return trie_.prove(state_path(key_bytes), out);
}

std::uint64_t StateStore::state_storage_bytes() const {
  std::uint64_t n = kAccountStateBytes * balances_.size();
  for (const auto& [id, st] : contract_states_) n += contract_state_bytes(st);
  return n;
}

void LogicStore::add(std::shared_ptr<const vm::ContractLogic> logic) {
  if (!logic) return;
  const auto [it, inserted] = logics_.try_emplace(logic->id, logic);
  if (inserted) logic_bytes_ += logic->code_size_bytes();
}

const vm::ContractLogic* LogicStore::get(ContractId id) const {
  const auto it = logics_.find(id);
  return it == logics_.end() ? nullptr : it->second.get();
}

}  // namespace jenga::ledger
