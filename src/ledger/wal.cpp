#include "ledger/wal.hpp"

#include <array>

#include "common/codec.hpp"

namespace jenga::ledger {

namespace {

std::array<std::uint32_t, 256> make_crc32c_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit)
      crc = (crc >> 1) ^ ((crc & 1u) != 0 ? 0x82F63B78u : 0u);
    table[i] = crc;
  }
  return table;
}

const std::array<std::uint32_t, 256>& crc32c_table() {
  static const auto table = make_crc32c_table();
  return table;
}

std::vector<std::uint8_t> encode_record(const WalRecord& record) {
  Writer payload;
  payload.u64(record.seq);
  payload.u8(static_cast<std::uint8_t>(record.op));
  switch (record.op) {
    case WalOp::kPut:
      payload.blob(record.key);
      payload.blob(record.value);
      break;
    case WalOp::kErase:
    case WalOp::kGeneration:
      payload.blob(record.key);
      break;
    case WalOp::kCommit:
      payload.hash(record.root);
      break;
  }
  Writer framed;
  framed.u32(kWalMagic);
  framed.u32(static_cast<std::uint32_t>(payload.size()));
  framed.u32(crc32c(payload.data()));
  framed.bytes(payload.data());
  return framed.take();
}

/// Parses one CRC-valid payload.  Failure here means the writer emitted
/// garbage, which replay reports as corruption.
bool decode_payload(std::span<const std::uint8_t> payload, WalRecord& out) {
  Reader r(payload);
  out.seq = r.u64();
  const std::uint8_t op = r.u8();
  if (r.failed()) return false;
  switch (static_cast<WalOp>(op)) {
    case WalOp::kPut:
      out.op = WalOp::kPut;
      out.key = r.blob();
      out.value = r.blob();
      break;
    case WalOp::kErase:
      out.op = WalOp::kErase;
      out.key = r.blob();
      break;
    case WalOp::kGeneration:
      out.op = WalOp::kGeneration;
      out.key = r.blob();
      break;
    case WalOp::kCommit:
      out.op = WalOp::kCommit;
      out.root = r.hash();
      break;
    default:
      return false;
  }
  return !r.failed() && r.exhausted();
}

std::uint32_t read_u32_le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

/// Attempts to frame-decode one record at `pos`; returns the record span
/// length on success (header + payload), 0 if the bytes at `pos` do not form
/// an intact record.
std::size_t intact_record_at(std::span<const std::uint8_t> data, std::size_t pos) {
  if (pos + kWalHeaderBytes > data.size()) return 0;
  if (read_u32_le(data.data() + pos) != kWalMagic) return 0;
  const std::uint32_t len = read_u32_le(data.data() + pos + 4);
  const std::uint32_t crc = read_u32_le(data.data() + pos + 8);
  if (len > data.size() - pos - kWalHeaderBytes) return 0;
  const auto payload = data.subspan(pos + kWalHeaderBytes, len);
  if (crc32c(payload) != crc) return 0;
  return kWalHeaderBytes + len;
}

}  // namespace

std::uint32_t crc32c(std::span<const std::uint8_t> data) {
  const auto& table = crc32c_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const std::uint8_t byte : data) crc = (crc >> 8) ^ table[(crc ^ byte) & 0xFFu];
  return crc ^ 0xFFFFFFFFu;
}

void WalWriter::append(const WalRecord& record) {
  const auto framed = encode_record(record);
  file_->append(framed);
  bytes_appended_ += framed.size();
  ++records_appended_;
}

Result<WalReplay> wal_replay(const StorageFile* file) {
  std::vector<std::uint8_t> data(file->size());
  if (!data.empty() && !file->read(0, data)) return Err(std::string("wal: read failed"));

  WalReplay replay;
  std::size_t pos = 0;
  std::uint64_t expect_seq = 1;
  while (pos < data.size()) {
    const std::size_t span_len = intact_record_at(data, pos);
    if (span_len == 0) break;
    WalRecord record;
    if (!decode_payload(std::span(data).subspan(pos + kWalHeaderBytes,
                                                span_len - kWalHeaderBytes),
                        record))
      return Err(std::string("wal: undecodable record (corruption) at offset ") +
                 std::to_string(pos));
    if (record.seq != expect_seq)
      return Err(std::string("wal: sequence break (corruption) at offset ") +
                 std::to_string(pos));
    ++expect_seq;
    replay.records.push_back(std::move(record));
    pos += span_len;
    replay.record_ends.push_back(pos);
  }
  replay.valid_end = pos;

  if (pos < data.size()) {
    // Broken bytes from `pos` on.  If ANY intact record lies beyond them the
    // damage is interior — a flipped bit, not a torn tail — and the log is
    // untrustworthy as a whole.
    for (std::size_t probe = pos + 1; probe + kWalHeaderBytes <= data.size(); ++probe) {
      if (intact_record_at(data, probe) != 0)
        return Err(std::string("wal: interior corruption at offset ") + std::to_string(pos) +
                   " (intact record found at " + std::to_string(probe) + ")");
    }
    replay.torn_tail_bytes = data.size() - pos;
  }
  return replay;
}

}  // namespace jenga::ledger
