// Write-ahead log: checksummed, length-prefixed records over a StorageFile.
//
// Record framing (all integers little-endian):
//
//   [u32 magic 'JWL1'] [u32 payload_len] [u32 crc32c(payload)] [payload]
//
// The payload starts with a u64 monotone sequence number, then an opcode and
// its operands (see WalRecord).  The framing is what recovery leans on:
//
//   * torn / truncated tail — the final record was cut mid-write (crash
//     between append and fsync).  Replay stops cleanly at the last intact
//     record; the dropped bytes are reported, not fatal.
//   * bit flip — a CRC mismatch (or broken magic) FOLLOWED by another intact
//     record proves the damage is inside the log, not at its tail.  That is
//     corruption, not a crash artifact, and replay refuses the log.
//
// The distinction matters: a torn tail is the expected shape of every crash
// and must recover; interior damage means the medium lied and the only safe
// answer is an error the caller can turn into a full state re-sync.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/types.hpp"
#include "ledger/storage_env.hpp"

namespace jenga::ledger {

/// Software CRC-32C (Castagnoli).  Exposed for the snapshot format and tests.
[[nodiscard]] std::uint32_t crc32c(std::span<const std::uint8_t> data);

inline constexpr std::uint32_t kWalMagic = 0x314C574A;  // "JWL1"
inline constexpr std::size_t kWalHeaderBytes = 12;

enum class WalOp : std::uint8_t {
  kPut = 1,        // key blob + value blob
  kErase = 2,      // key blob
  kCommit = 3,     // authenticated state root after the batch
  kGeneration = 4, // first record of every log: key = u64 LE snapshot generation
};

struct WalRecord {
  std::uint64_t seq = 0;
  WalOp op = WalOp::kPut;
  std::vector<std::uint8_t> key;
  std::vector<std::uint8_t> value;  // kPut only
  Hash256 root{};                   // kCommit only
};

/// Appends records; the caller controls sync() placement (the commit path
/// appends a kCommit record then syncs — one durability barrier per block).
class WalWriter {
 public:
  explicit WalWriter(StorageFile* file) : file_(file) {}

  void append(const WalRecord& record);
  void sync() { file_->sync(); }

  [[nodiscard]] std::uint64_t bytes_appended() const { return bytes_appended_; }
  [[nodiscard]] std::uint64_t records_appended() const { return records_appended_; }

 private:
  StorageFile* file_;
  std::uint64_t bytes_appended_ = 0;
  std::uint64_t records_appended_ = 0;
};

/// Outcome of a full-log replay.
struct WalReplay {
  std::vector<WalRecord> records;
  /// Offset just past each record, parallel to `records` (so recovery can
  /// truncate the log exactly after the last commit it keeps).
  std::vector<std::uint64_t> record_ends;
  /// Bytes dropped off a torn/truncated tail (0 on a clean log).
  std::uint64_t torn_tail_bytes = 0;
  /// Offset just past the last intact record (where appends may resume).
  std::uint64_t valid_end = 0;
};

/// Reads every intact record from the start of `file`.  Returns an error iff
/// interior corruption is detected (a broken record with intact records after
/// it) — the bit-flip case.  A broken suffix with nothing valid behind it is
/// treated as a torn tail and reported in `torn_tail_bytes`.
[[nodiscard]] Result<WalReplay> wal_replay(const StorageFile* file);

}  // namespace jenga::ledger
