// Transactions: fund transfers, contract deployments, and contract calls.
//
// A contract-call transaction carries its *declared* access set (ordered
// contract slots, touched accounts) and the call chain over those slots —
// the paper's client-side "dynamic program analysis" output (§V-C).  The
// per-contract state a transaction needs is locked and shipped at the
// granularity of whole contract states, as in the paper's Phase 1.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "vm/bytecode.hpp"
#include "vm/interpreter.hpp"

namespace jenga::ledger {

enum class TxKind : std::uint8_t { kTransfer = 0, kDeploy = 1, kContractCall = 2 };

struct Transaction {
  TxKind kind = TxKind::kTransfer;
  Hash256 hash;  // filled by finalize()
  AccountId sender{};
  std::uint64_t fee = 0;
  std::uint64_t gas_limit = 1'000'000;
  SimTime created_at = 0;

  // kTransfer
  AccountId to{};
  std::uint64_t amount = 0;

  // kDeploy: logic replicated network-wide in Jenga; state placed on a shard.
  std::shared_ptr<const vm::ContractLogic> logic;
  std::uint64_t initial_state_entries = 0;

  // kContractCall: declared access set + call chain.
  std::vector<ContractId> contracts;   // slot i ↦ contracts[i]
  std::vector<AccountId> accounts;     // accounts whose balances may be touched
  std::vector<vm::CallStep> steps;     // executed in order; each step is one
                                       // "intermediate step" in the paper's sense

  /// Serialized wire size (every tx is charged at least the paper's 512 B).
  [[nodiscard]] std::uint32_t wire_size() const;

  /// Computes and stores the canonical hash; must be called after all fields
  /// are set.  The hash decides the execution channel (Jenga) and is the
  /// system-wide identity of the transaction.
  void finalize();

  /// Number of distinct contracts the call chain touches.
  [[nodiscard]] std::size_t distinct_contracts() const { return contracts.size(); }
  /// Number of intermediate steps (Fig. 3c's metric).
  [[nodiscard]] std::size_t step_count() const { return steps.size(); }
};

/// Builders keep test/bench code terse and always-finalized.
[[nodiscard]] Transaction make_transfer(AccountId from, AccountId to, std::uint64_t amount,
                                        std::uint64_t fee, SimTime at);
[[nodiscard]] Transaction make_deploy(AccountId sender,
                                      std::shared_ptr<const vm::ContractLogic> logic,
                                      std::uint64_t initial_state_entries, std::uint64_t fee,
                                      SimTime at);

/// Paper's evaluation setting: each transaction is charged as 512 bytes.
inline constexpr std::uint32_t kTxWireBytes = 512;

}  // namespace jenga::ledger
