#include "ledger/storage_backend.hpp"

#include <cassert>

#include "common/codec.hpp"

namespace jenga::ledger {

// --- InMemoryBackend ---------------------------------------------------------

void InMemoryBackend::put(std::span<const std::uint8_t> key,
                          std::span<const std::uint8_t> value) {
  kv_[std::vector<std::uint8_t>(key.begin(), key.end())] =
      std::vector<std::uint8_t>(value.begin(), value.end());
  ++stats_.puts;
}

void InMemoryBackend::erase(std::span<const std::uint8_t> key) {
  kv_.erase(std::vector<std::uint8_t>(key.begin(), key.end()));
  ++stats_.erases;
}

void InMemoryBackend::commit(const Hash256& root) {
  last_root_ = root;
  committed_ = true;
  ++stats_.commits;
}

Result<RecoveredState> InMemoryBackend::load() {
  RecoveredState out;
  out.entries.reserve(kv_.size());
  for (const auto& [k, v] : kv_) out.entries.emplace_back(k, v);
  out.committed_root = last_root_;
  out.has_commit = committed_;
  return out;
}

// --- DurableBackend ----------------------------------------------------------

namespace {

std::vector<std::uint8_t> encode_u64_le(std::uint64_t v) {
  std::vector<std::uint8_t> out(8);
  for (int i = 0; i < 8; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
  return out;
}

bool decode_u64_le(std::span<const std::uint8_t> in, std::uint64_t& out) {
  if (in.size() != 8) return false;
  out = 0;
  for (int i = 0; i < 8; ++i) out |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  return true;
}

}  // namespace

DurableBackend::DurableBackend(StorageEnv* env, DurableOptions options)
    : env_(env), options_(std::move(options)) {}

void DurableBackend::open_wal_fresh() {
  // Truncate rather than unlink: truncation only touches the in-process image
  // until the next fsync, so a crash here leaves the OLD records durable —
  // exactly what an un-synced unlink would do on a real disk.  The generation
  // marker makes such a stale log harmless at recovery.
  wal_file_ = env_->open(wal_name());
  wal_file_->truncate(0);
  wal_ = std::make_unique<WalWriter>(wal_file_);
  next_seq_ = 1;
  append(WalOp::kGeneration, encode_u64_le(wal_gen_), {}, Hash256{});
}

void DurableBackend::append(WalOp op, std::span<const std::uint8_t> key,
                            std::span<const std::uint8_t> value, const Hash256& root) {
  WalRecord record;
  record.seq = next_seq_++;
  record.op = op;
  record.key.assign(key.begin(), key.end());
  record.value.assign(value.begin(), value.end());
  record.root = root;
  wal_->append(record);
  ++stats_.wal_records;
  stats_.wal_bytes = wal_->bytes_appended();
}

void DurableBackend::put(std::span<const std::uint8_t> key,
                         std::span<const std::uint8_t> value) {
  assert(opened_ && "DurableBackend: load() must run before mutations");
  append(WalOp::kPut, key, value, Hash256{});
  kv_[std::vector<std::uint8_t>(key.begin(), key.end())] =
      std::vector<std::uint8_t>(value.begin(), value.end());
  ++stats_.puts;
}

void DurableBackend::erase(std::span<const std::uint8_t> key) {
  assert(opened_ && "DurableBackend: load() must run before mutations");
  append(WalOp::kErase, key, {}, Hash256{});
  kv_.erase(std::vector<std::uint8_t>(key.begin(), key.end()));
  ++stats_.erases;
}

void DurableBackend::commit(const Hash256& root) {
  assert(opened_ && "DurableBackend: load() must run before mutations");
  append(WalOp::kCommit, {}, {}, root);
  wal_->sync();  // the one durability barrier per decided block
  ++stats_.commits;
  if (options_.snapshot_interval != 0 &&
      ++commits_since_snapshot_ >= options_.snapshot_interval)
    write_snapshot(root);
}

void DurableBackend::write_snapshot(const Hash256& root) {
  Writer payload;
  payload.u32(kSnapVersion);
  payload.u64(wal_gen_);  // the generation this snapshot supersedes
  payload.hash(root);
  payload.u64(kv_.size());
  for (const auto& [k, v] : kv_) {
    payload.blob(k);
    payload.blob(v);
  }
  Writer framed;
  framed.u32(kSnapMagic);
  framed.u32(static_cast<std::uint32_t>(payload.size()));
  framed.u32(crc32c(payload.data()));
  framed.bytes(payload.data());

  // Write-tmp, fsync, rename: a crash at any point leaves either the old
  // snapshot (tmp ignored at load) or the new one — never a half-written file
  // under the live name.
  env_->remove(snap_tmp_name());
  StorageFile* tmp = env_->open(snap_tmp_name());
  tmp->append(framed.data());
  tmp->sync();
  env_->rename(snap_tmp_name(), snap_name());
  env_->open(snap_name())->sync();  // durabilize the rename itself
  ++stats_.snapshots_written;
  stats_.snapshot_bytes += framed.size();

  // The old log is fully covered by the snapshot; the replacement opens the
  // next generation.  A crash in between leaves snapshot(gen G) + log(gen G),
  // which load() recognises as stale and discards.
  ++wal_gen_;
  open_wal_fresh();
  commits_since_snapshot_ = 0;
}

Result<RecoveredState> DurableBackend::load() {
  kv_.clear();
  std::uint64_t snap_gen = 0;
  Hash256 snap_root{};
  bool have_snapshot = false;

  if (env_->exists(snap_name())) {
    const StorageFile* snap = env_->open(snap_name());
    std::vector<std::uint8_t> data(snap->size());
    if (!data.empty() && !snap->read(0, data)) return Err(std::string("snapshot: read failed"));
    if (data.size() < kWalHeaderBytes) return Err(std::string("snapshot: truncated header"));
    Reader header{std::span<const std::uint8_t>(data).subspan(0, kWalHeaderBytes)};
    const std::uint32_t magic = header.u32();
    const std::uint32_t len = header.u32();
    const std::uint32_t crc = header.u32();
    if (magic != kSnapMagic) return Err(std::string("snapshot: bad magic"));
    if (len != data.size() - kWalHeaderBytes) return Err(std::string("snapshot: bad length"));
    const auto payload = std::span(data).subspan(kWalHeaderBytes);
    if (crc32c(payload) != crc)
      return Err(std::string("snapshot: checksum mismatch (corruption)"));
    Reader r(payload);
    const std::uint32_t version = r.u32();
    snap_gen = r.u64();
    snap_root = r.hash();
    const std::uint64_t count = r.u64();
    if (r.failed() || version != kSnapVersion)
      return Err(std::string("snapshot: undecodable payload"));
    for (std::uint64_t i = 0; i < count; ++i) {
      auto key = r.blob();
      auto value = r.blob();
      if (r.failed()) return Err(std::string("snapshot: undecodable entry"));
      kv_[std::move(key)] = std::move(value);
    }
    if (!r.exhausted()) return Err(std::string("snapshot: trailing bytes"));
    have_snapshot = true;
  }
  // A leftover tmp is an interrupted snapshot attempt; the live snapshot (or
  // its absence) is still authoritative.
  if (env_->exists(snap_tmp_name())) env_->remove(snap_tmp_name());

  RecoveredState out;
  out.committed_root = snap_root;
  out.has_commit = have_snapshot;

  bool wal_live = false;  // log continues the snapshot (vs stale/absent)
  WalReplay replay;
  if (env_->exists(wal_name())) {
    auto replayed = wal_replay(env_->open(wal_name()));
    if (!replayed.ok()) return Err(std::string("wal: ") + replayed.error());
    replay = std::move(replayed.value());
    if (!replay.records.empty()) {
      const WalRecord& head = replay.records.front();
      std::uint64_t log_gen = 0;
      if (head.op != WalOp::kGeneration || !decode_u64_le(head.key, log_gen))
        return Err(std::string("wal: missing generation header"));
      if (log_gen > snap_gen + 1)
        return Err(std::string("wal: generation ahead of snapshot (snapshot lost)"));
      wal_live = log_gen == snap_gen + 1;
    }
  }

  std::size_t last_commit = 0;  // index past the last kCommit record
  if (wal_live) {
    for (std::size_t i = 0; i < replay.records.size(); ++i)
      if (replay.records[i].op == WalOp::kCommit) last_commit = i + 1;
    for (std::size_t i = 0; i < last_commit; ++i) {
      const WalRecord& rec = replay.records[i];
      switch (rec.op) {
        case WalOp::kPut:
          kv_[rec.key] = rec.value;
          break;
        case WalOp::kErase:
          kv_.erase(rec.key);
          break;
        case WalOp::kCommit:
          out.committed_root = rec.root;
          out.has_commit = true;
          break;
        case WalOp::kGeneration:
          break;
      }
    }
    stats_.replayed_records = last_commit;
    stats_.uncommitted_dropped = replay.records.size() - last_commit;
  }
  stats_.torn_tail_bytes = replay.torn_tail_bytes;

  // Re-arm the writer.  A live log is truncated just past the last commit so
  // future appends never interleave with a discarded tail; a stale or absent
  // log restarts fresh at the generation after the snapshot.
  wal_gen_ = snap_gen + 1;
  if (wal_live && last_commit > 0) {
    wal_file_ = env_->open(wal_name());
    wal_file_->truncate(replay.record_ends[last_commit - 1]);
    wal_file_->sync();
    wal_ = std::make_unique<WalWriter>(wal_file_);
    next_seq_ = replay.records[last_commit - 1].seq + 1;
  } else {
    open_wal_fresh();
  }
  commits_since_snapshot_ = 0;
  opened_ = true;

  out.entries.reserve(kv_.size());
  for (const auto& [k, v] : kv_) out.entries.emplace_back(k, v);
  return out;
}

}  // namespace jenga::ledger
