#include "ledger/trie.hpp"

#include "crypto/sha256.hpp"

namespace jenga::ledger {

namespace {

/// Nibble `depth` of the path, most-significant first (64 per 256-bit path).
std::uint8_t nibble(const Hash256& path, std::size_t depth) {
  const std::uint8_t byte = path.bytes[depth / 2];
  return (depth % 2 == 0) ? (byte >> 4) : (byte & 0x0F);
}

Hash256 hash_inner_frame(const std::array<Hash256, 16>& children) {
  crypto::Sha256 h;
  h.update("jenga/trie-inner");
  for (const Hash256& child : children) h.update(child);
  return h.finish();
}

}  // namespace

struct MerkleTrie::Node {
  bool leaf = false;
  mutable bool dirty = true;
  mutable Hash256 hash{};
  // leaf payload
  Hash256 path{};
  Hash256 value_hash{};
  // inner payload
  std::array<std::unique_ptr<Node>, 16> children;

  static std::unique_ptr<Node> make_leaf(const Hash256& path, const Hash256& value_hash) {
    auto n = std::make_unique<Node>();
    n->leaf = true;
    n->path = path;
    n->value_hash = value_hash;
    return n;
  }
  static std::unique_ptr<Node> make_inner() { return std::make_unique<Node>(); }
};

MerkleTrie::MerkleTrie() = default;
MerkleTrie::~MerkleTrie() = default;
MerkleTrie::MerkleTrie(MerkleTrie&&) noexcept = default;
MerkleTrie& MerkleTrie::operator=(MerkleTrie&&) noexcept = default;

Hash256 MerkleTrie::empty_root() {
  static const Hash256 h = crypto::sha256("jenga/trie-empty");
  return h;
}

Hash256 MerkleTrie::leaf_hash(const Hash256& path, const Hash256& value_hash) {
  crypto::Sha256 h;
  h.update("jenga/trie-leaf");
  h.update(path);
  h.update(value_hash);
  return h.finish();
}

namespace {

/// Inserts (path → value_hash) under `slot` at `depth`; returns true when a
/// new leaf was created (vs an in-place update).
bool insert_at(std::unique_ptr<MerkleTrie::Node>& slot, std::size_t depth,
               const Hash256& path, const Hash256& value_hash) {
  using N = MerkleTrie::Node;
  if (!slot) {
    slot = N::make_leaf(path, value_hash);
    return true;
  }
  N& n = *slot;
  n.dirty = true;
  if (n.leaf) {
    if (n.path == path) {
      n.value_hash = value_hash;
      return false;
    }
    // Split: push the resident leaf down an inner chain to the first nibble
    // where the two paths diverge, then hang both leaves there.
    std::unique_ptr<N> old = std::move(slot);
    slot = N::make_inner();
    N* cur = slot.get();
    std::size_t d = depth;
    while (nibble(old->path, d) == nibble(path, d)) {
      auto& child = cur->children[nibble(path, d)];
      child = N::make_inner();
      cur = child.get();
      ++d;
    }
    cur->children[nibble(old->path, d)] = std::move(old);
    cur->children[nibble(path, d)] = N::make_leaf(path, value_hash);
    return true;
  }
  return insert_at(n.children[nibble(path, depth)], depth + 1, path, value_hash);
}

bool erase_at(std::unique_ptr<MerkleTrie::Node>& slot, std::size_t depth,
              const Hash256& path) {
  using N = MerkleTrie::Node;
  if (!slot) return false;
  N& n = *slot;
  if (n.leaf) {
    if (!(n.path == path)) return false;
    slot.reset();
    return true;
  }
  if (!erase_at(n.children[nibble(path, depth)], depth + 1, path)) return false;
  n.dirty = true;
  // Canonical collapse: an inner node left holding a single leaf hoists it,
  // so the structure stays a pure function of the surviving key set.
  std::unique_ptr<N>* only = nullptr;
  int live = 0;
  for (auto& child : n.children) {
    if (child) {
      ++live;
      only = &child;
    }
  }
  if (live == 0) {
    slot.reset();  // defensive: canonical structure never leaves empty inners
  } else if (live == 1 && (*only)->leaf) {
    slot = std::move(*only);
  }
  return true;
}

Hash256 cached_hash(const MerkleTrie::Node* n) {
  if (!n->dirty) return n->hash;
  if (n->leaf) {
    n->hash = MerkleTrie::leaf_hash(n->path, n->value_hash);
  } else {
    crypto::Sha256 h;
    h.update("jenga/trie-inner");
    for (const auto& child : n->children)
      h.update(child ? cached_hash(child.get()) : Hash256{});
    n->hash = h.finish();
  }
  n->dirty = false;
  return n->hash;
}

Hash256 full_hash(const MerkleTrie::Node* n) {
  if (n->leaf) return MerkleTrie::leaf_hash(n->path, n->value_hash);
  crypto::Sha256 h;
  h.update("jenga/trie-inner");
  for (const auto& child : n->children) h.update(child ? full_hash(child.get()) : Hash256{});
  return h.finish();
}

}  // namespace

void MerkleTrie::put(const Hash256& path, const Hash256& value_hash) {
  if (insert_at(root_, 0, path, value_hash)) ++size_;
}

bool MerkleTrie::erase(const Hash256& path) {
  if (!erase_at(root_, 0, path)) return false;
  --size_;
  return true;
}

const Hash256* MerkleTrie::get(const Hash256& path) const {
  const Node* n = root_.get();
  std::size_t depth = 0;
  while (n != nullptr) {
    if (n->leaf) return n->path == path ? &n->value_hash : nullptr;
    n = n->children[nibble(path, depth)].get();
    ++depth;
  }
  return nullptr;
}

Hash256 MerkleTrie::root() const {
  return root_ ? cached_hash(root_.get()) : empty_root();
}

Hash256 MerkleTrie::recompute_root() const {
  return root_ ? full_hash(root_.get()) : empty_root();
}

bool MerkleTrie::prove(const Hash256& path, TrieProof& out) const {
  out.nodes.clear();
  const Node* n = root_.get();
  std::size_t depth = 0;
  while (n != nullptr) {
    if (n->leaf) return n->path == path;
    TrieProofNode frame;
    for (std::size_t i = 0; i < 16; ++i)
      frame.children[i] = n->children[i] ? cached_hash(n->children[i].get()) : Hash256{};
    out.nodes.push_back(frame);
    n = n->children[nibble(path, depth)].get();
    ++depth;
  }
  return false;
}

bool MerkleTrie::verify(const Hash256& root, const Hash256& path, const Hash256& value_hash,
                        const TrieProof& proof) {
  Hash256 expected = leaf_hash(path, value_hash);
  for (std::size_t i = proof.nodes.size(); i-- > 0;) {
    const TrieProofNode& frame = proof.nodes[i];
    if (!(frame.children[nibble(path, i)] == expected)) return false;
    expected = hash_inner_frame(frame.children);
  }
  return expected == root;
}

}  // namespace jenga::ledger
