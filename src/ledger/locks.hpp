// State locking for cross-shard transactions.
//
// Phase 1 of Jenga's cross-shard consensus marks every state a transaction
// needs as unavailable ("locked") until Phase 3 commits or aborts it.  Locks
// are owned by a transaction hash; a second transaction touching the same
// contract/account must wait (or abort), which is exactly the contention the
// 2PC-style protocol needs to stay atomic.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/types.hpp"

namespace jenga::ledger {

class LockManager {
 public:
  /// Acquires the lock for `owner` (idempotent re-acquire by the same owner).
  /// Returns false if a different transaction holds it.
  bool lock_contract(ContractId id, const Hash256& owner);
  bool lock_account(AccountId id, const Hash256& owner);

  /// Releases only if `owner` holds the lock; returns whether released.
  bool unlock_contract(ContractId id, const Hash256& owner);
  bool unlock_account(AccountId id, const Hash256& owner);

  /// Releases every lock held by `owner` (both kinds); returns how many were
  /// released.  The one safe way to clean up on abort: enumerating the
  /// transaction's footprint at the call site risks missing locks acquired
  /// before a partial failure.
  std::size_t release_all(const Hash256& owner);

  [[nodiscard]] bool contract_locked(ContractId id) const;
  [[nodiscard]] bool account_locked(AccountId id) const;
  [[nodiscard]] const Hash256* contract_owner(ContractId id) const;

  [[nodiscard]] std::size_t held_locks() const {
    return contract_locks_.size() + account_locks_.size();
  }

 private:
  std::unordered_map<ContractId, Hash256> contract_locks_;
  std::unordered_map<AccountId, Hash256> account_locks_;
};

}  // namespace jenga::ledger
