#include "ledger/transaction.hpp"

#include <algorithm>

#include "common/codec.hpp"
#include "crypto/sha256.hpp"

namespace jenga::ledger {

std::uint32_t Transaction::wire_size() const {
  // Canonical encoding size, floored at the paper's 512-byte setting so the
  // bandwidth model matches the evaluation setup.
  std::uint64_t n = 64;  // envelope: kind, sender, fee, gas, sig
  if (kind == TxKind::kDeploy && logic) n += logic->code_size_bytes();
  if (kind == TxKind::kContractCall) {
    n += 8 * contracts.size() + 8 * accounts.size();
    for (const auto& s : steps) n += 8 + 8 * s.args.size();
  }
  return static_cast<std::uint32_t>(std::max<std::uint64_t>(n, kTxWireBytes));
}

void Transaction::finalize() {
  Writer w;
  w.u8(static_cast<std::uint8_t>(kind));
  w.id(sender);
  w.u64(fee);
  w.u64(gas_limit);
  w.i64(created_at);
  switch (kind) {
    case TxKind::kTransfer:
      w.id(to);
      w.u64(amount);
      break;
    case TxKind::kDeploy:
      w.u64(logic ? logic->id.value : 0);
      w.u64(initial_state_entries);
      break;
    case TxKind::kContractCall:
      w.u32(static_cast<std::uint32_t>(contracts.size()));
      for (auto c : contracts) w.id(c);
      w.u32(static_cast<std::uint32_t>(accounts.size()));
      for (auto a : accounts) w.id(a);
      w.u32(static_cast<std::uint32_t>(steps.size()));
      for (const auto& s : steps) {
        w.u16(s.contract_slot);
        w.u16(s.function);
        w.u32(static_cast<std::uint32_t>(s.args.size()));
        for (auto arg : s.args) w.u64(arg);
      }
      break;
  }
  hash = crypto::sha256_tagged("jenga/tx", w.data());
}

Transaction make_transfer(AccountId from, AccountId to, std::uint64_t amount, std::uint64_t fee,
                          SimTime at) {
  Transaction tx;
  tx.kind = TxKind::kTransfer;
  tx.sender = from;
  tx.to = to;
  tx.amount = amount;
  tx.fee = fee;
  tx.created_at = at;
  tx.finalize();
  return tx;
}

Transaction make_deploy(AccountId sender, std::shared_ptr<const vm::ContractLogic> logic,
                        std::uint64_t initial_state_entries, std::uint64_t fee, SimTime at) {
  Transaction tx;
  tx.kind = TxKind::kDeploy;
  tx.sender = sender;
  tx.logic = std::move(logic);
  tx.initial_state_entries = initial_state_entries;
  tx.fee = fee;
  tx.created_at = at;
  tx.finalize();
  return tx;
}

}  // namespace jenga::ledger
