// Per-shard state storage: account balances and contract key-value states,
// plus the logic store (which, in Jenga, every node replicates).
//
// The flat maps are the read path; every mutation also feeds an authenticated
// Merkle trie (trie.hpp) keyed by hashed state keys, so digest() is the
// trie's incrementally-maintained root instead of a whole-store rehash.  An
// optional StorageBackend receives the raw key/value bytes write-through —
// in-memory for the bit-identity oracle, WAL+snapshot for crash durability —
// and StateStore::open() rebuilds a store from whatever a backend recovered,
// refusing state whose rebuilt root does not match the committed root.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/result.hpp"
#include "common/types.hpp"
#include "ledger/storage_backend.hpp"
#include "ledger/trie.hpp"
#include "vm/bytecode.hpp"

namespace jenga::ledger {

/// One contract's full state: the unit that Phase 1 locks and ships.
using ContractState = std::map<std::uint64_t, std::uint64_t>;

/// Storage model constants (DESIGN.md §5).
inline constexpr std::uint64_t kAccountStateBytes = 128;
inline constexpr std::uint64_t kStateEntryBytes = 64;
inline constexpr std::uint64_t kContractStateOverheadBytes = 256;

[[nodiscard]] inline std::uint64_t contract_state_bytes(const ContractState& st) {
  return kContractStateOverheadBytes + kStateEntryBytes * st.size();
}

// --- state key/value encoding ------------------------------------------------
// StateStore owns the byte encoding shared by the trie, the storage backends
// and proof-verified state sync.  Keys are a one-byte keyspace tag plus the
// u64 id (little-endian); trie paths are the tagged SHA-256 of the key bytes.

inline constexpr std::uint8_t kKeyspaceAccount = 0;
inline constexpr std::uint8_t kKeyspaceContract = 1;

[[nodiscard]] std::vector<std::uint8_t> state_key_account(AccountId id);
[[nodiscard]] std::vector<std::uint8_t> state_key_contract(ContractId id);
[[nodiscard]] Hash256 state_path(std::span<const std::uint8_t> key_bytes);
[[nodiscard]] Hash256 state_value_hash(std::span<const std::uint8_t> value_bytes);
[[nodiscard]] std::vector<std::uint8_t> encode_account_value(std::uint64_t balance);
[[nodiscard]] std::vector<std::uint8_t> encode_contract_value(const ContractState& st);

class StateStore {
 public:
  /// Backend-less store: trie-authenticated, nothing persisted.
  StateStore() = default;

  StateStore(StateStore&&) noexcept = default;
  StateStore& operator=(StateStore&&) noexcept = default;
  StateStore(const StateStore&) = delete;
  StateStore& operator=(const StateStore&) = delete;

  /// Recovers a store from `backend->load()`: applies every recovered entry,
  /// then checks the rebuilt trie root against the root the backend's last
  /// commit promised.  A mismatch (or a backend-load error — torn snapshot,
  /// corrupt WAL) returns the error instead of a store: corrupted durable
  /// state is refused, never silently half-loaded.  A fresh backend recovers
  /// to an empty store ready for genesis writes.
  [[nodiscard]] static Result<StateStore> open(std::unique_ptr<StorageBackend> backend);

  // --- accounts ---
  void create_account(AccountId id, std::uint64_t balance);
  [[nodiscard]] bool has_account(AccountId id) const;
  [[nodiscard]] std::optional<std::uint64_t> balance(AccountId id) const;
  bool set_balance(AccountId id, std::uint64_t balance);
  [[nodiscard]] std::size_t account_count() const { return balances_.size(); }
  /// Sum of all balances (conservation checks in tests).
  [[nodiscard]] std::uint64_t total_balance() const;

  // --- contract state ---
  void create_contract_state(ContractId id, ContractState initial);
  [[nodiscard]] bool has_contract_state(ContractId id) const;
  [[nodiscard]] const ContractState* contract_state(ContractId id) const;
  bool set_contract_state(ContractId id, ContractState state);
  [[nodiscard]] std::size_t contract_count() const { return contract_states_.size(); }

  // --- storage accounting ---
  [[nodiscard]] std::uint64_t state_storage_bytes() const;

  /// Authenticated state root: the Merkle trie's cached incremental root.
  /// Structure is insertion-order independent, so any execution worker count
  /// and any arrival order land on the same digest.  Debug builds assert the
  /// incremental root against a from-scratch recompute.
  [[nodiscard]] Hash256 digest() const;

  /// Durability barrier: tells the backend the current root is decided (the
  /// WAL commit record + fsync on the durable backend).  No-op without one.
  void commit();

  /// Merkle inclusion proof for one state entry under digest().  Returns
  /// false if the key is absent.
  [[nodiscard]] bool prove(std::span<const std::uint8_t> key_bytes, TrieProof& out) const;

  /// Read views for state sync and tests.
  [[nodiscard]] const std::unordered_map<AccountId, std::uint64_t>& balances() const {
    return balances_;
  }
  [[nodiscard]] const std::unordered_map<ContractId, ContractState>& contracts() const {
    return contract_states_;
  }

  [[nodiscard]] const StorageBackend* backend() const { return backend_.get(); }
  [[nodiscard]] const MerkleTrie& trie() const { return trie_; }

 private:
  void write_through(std::span<const std::uint8_t> key_bytes,
                     std::span<const std::uint8_t> value_bytes);

  std::unordered_map<AccountId, std::uint64_t> balances_;
  std::unordered_map<ContractId, ContractState> contract_states_;
  MerkleTrie trie_;
  std::unique_ptr<StorageBackend> backend_;
};

/// Contract logic store.  In Jenga every node holds all logic; in CX Func a
/// node only holds its shard's share; in Pyramid the merged span.
class LogicStore {
 public:
  void add(std::shared_ptr<const vm::ContractLogic> logic);
  [[nodiscard]] const vm::ContractLogic* get(ContractId id) const;
  [[nodiscard]] bool has(ContractId id) const { return get(id) != nullptr; }
  [[nodiscard]] std::size_t size() const { return logics_.size(); }
  [[nodiscard]] std::uint64_t logic_storage_bytes() const { return logic_bytes_; }

 private:
  std::unordered_map<ContractId, std::shared_ptr<const vm::ContractLogic>> logics_;
  std::uint64_t logic_bytes_ = 0;
};

}  // namespace jenga::ledger
