// Per-shard state storage: account balances and contract key-value states,
// plus the logic store (which, in Jenga, every node replicates).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "vm/bytecode.hpp"

namespace jenga::ledger {

/// One contract's full state: the unit that Phase 1 locks and ships.
using ContractState = std::map<std::uint64_t, std::uint64_t>;

/// Storage model constants (DESIGN.md §5).
inline constexpr std::uint64_t kAccountStateBytes = 128;
inline constexpr std::uint64_t kStateEntryBytes = 64;
inline constexpr std::uint64_t kContractStateOverheadBytes = 256;

[[nodiscard]] inline std::uint64_t contract_state_bytes(const ContractState& st) {
  return kContractStateOverheadBytes + kStateEntryBytes * st.size();
}

class StateStore {
 public:
  // --- accounts ---
  void create_account(AccountId id, std::uint64_t balance);
  [[nodiscard]] bool has_account(AccountId id) const;
  [[nodiscard]] std::optional<std::uint64_t> balance(AccountId id) const;
  bool set_balance(AccountId id, std::uint64_t balance);
  [[nodiscard]] std::size_t account_count() const { return balances_.size(); }
  /// Sum of all balances (conservation checks in tests).
  [[nodiscard]] std::uint64_t total_balance() const;

  // --- contract state ---
  void create_contract_state(ContractId id, ContractState initial);
  [[nodiscard]] bool has_contract_state(ContractId id) const;
  [[nodiscard]] const ContractState* contract_state(ContractId id) const;
  bool set_contract_state(ContractId id, ContractState state);
  [[nodiscard]] std::size_t contract_count() const { return contract_states_.size(); }

  // --- storage accounting ---
  [[nodiscard]] std::uint64_t state_storage_bytes() const;

  /// Canonical digest over the full contents (balances and contract states,
  /// key-sorted): the state root the determinism tests compare across runs
  /// and across execution worker counts.
  [[nodiscard]] Hash256 digest() const;

 private:
  std::unordered_map<AccountId, std::uint64_t> balances_;
  std::unordered_map<ContractId, ContractState> contract_states_;
};

/// Contract logic store.  In Jenga every node holds all logic; in CX Func a
/// node only holds its shard's share; in Pyramid the merged span.
class LogicStore {
 public:
  void add(std::shared_ptr<const vm::ContractLogic> logic);
  [[nodiscard]] const vm::ContractLogic* get(ContractId id) const;
  [[nodiscard]] bool has(ContractId id) const { return get(id) != nullptr; }
  [[nodiscard]] std::size_t size() const { return logics_.size(); }
  [[nodiscard]] std::uint64_t logic_storage_bytes() const { return logic_bytes_; }

 private:
  std::unordered_map<ContractId, std::shared_ptr<const vm::ContractLogic>> logics_;
  std::uint64_t logic_bytes_ = 0;
};

}  // namespace jenga::ledger
