#include "crypto/merkle.hpp"

#include <cassert>

#include "crypto/sha256.hpp"

namespace jenga::crypto {
namespace {

Hash256 node_hash(const Hash256& left, const Hash256& right) {
  Sha256 h;
  h.update("jenga/merkle-node");
  h.update(left);
  h.update(right);
  return h.finish();
}

std::vector<Hash256> leaf_level(const std::vector<Hash256>& leaves) {
  std::vector<Hash256> level;
  level.reserve(leaves.size());
  for (const auto& leaf : leaves) level.push_back(merkle_leaf_hash(leaf));
  return level;
}

}  // namespace

Hash256 merkle_leaf_hash(const Hash256& data) {
  return sha256_tagged("jenga/merkle-leaf", std::span(data.bytes));
}

Hash256 merkle_root(const std::vector<Hash256>& leaves) {
  if (leaves.empty()) return sha256("jenga/merkle-empty");
  std::vector<Hash256> level = leaf_level(leaves);
  while (level.size() > 1) {
    if (level.size() % 2 != 0) level.push_back(level.back());
    std::vector<Hash256> next;
    next.reserve(level.size() / 2);
    for (std::size_t i = 0; i < level.size(); i += 2)
      next.push_back(node_hash(level[i], level[i + 1]));
    level = std::move(next);
  }
  return level[0];
}

MerkleProof merkle_prove(const std::vector<Hash256>& leaves, std::size_t index) {
  assert(index < leaves.size());
  MerkleProof proof;
  std::vector<Hash256> level = leaf_level(leaves);
  std::size_t pos = index;
  while (level.size() > 1) {
    if (level.size() % 2 != 0) level.push_back(level.back());
    const std::size_t sibling = pos ^ 1;
    proof.push_back({level[sibling], sibling < pos});
    std::vector<Hash256> next;
    next.reserve(level.size() / 2);
    for (std::size_t i = 0; i < level.size(); i += 2)
      next.push_back(node_hash(level[i], level[i + 1]));
    level = std::move(next);
    pos /= 2;
  }
  return proof;
}

bool merkle_verify(const Hash256& root, const Hash256& leaf, const MerkleProof& proof) {
  Hash256 cur = merkle_leaf_hash(leaf);
  for (const auto& st : proof)
    cur = st.sibling_on_left ? node_hash(st.sibling, cur) : node_hash(cur, st.sibling);
  return cur == root;
}

}  // namespace jenga::crypto
