// secp256k1 elliptic-curve group: y^2 = x^3 + 7 over F_p.
//
// Provides field arithmetic with the curve-specific fast reduction, Jacobian
// point arithmetic, scalar multiplication, and 33-byte point compression.
// Used by the Schnorr signature scheme and the VRF.  Not constant-time.
#pragma once

#include <array>
#include <optional>

#include "crypto/uint256.hpp"

namespace jenga::crypto {

/// Field prime p = 2^256 - 2^32 - 977.
extern const U256 kFieldP;
/// Group order n.
extern const U256 kOrderN;

/// Field element arithmetic mod p with fast reduction.
U256 fp_add(const U256& a, const U256& b);
U256 fp_sub(const U256& a, const U256& b);
U256 fp_mul(const U256& a, const U256& b);
U256 fp_sqr(const U256& a);
U256 fp_inv(const U256& a);
/// Square root mod p (p ≡ 3 mod 4): a^((p+1)/4).  Returns nullopt if a is a
/// non-residue.
std::optional<U256> fp_sqrt(const U256& a);

/// Affine point; infinity encoded by the dedicated flag.
struct Point {
  U256 x;
  U256 y;
  bool infinity = true;

  bool operator==(const Point&) const = default;
};

/// The group generator G.
const Point& generator();

[[nodiscard]] bool is_on_curve(const Point& p);
[[nodiscard]] Point point_add(const Point& a, const Point& b);
[[nodiscard]] Point point_double(const Point& a);
[[nodiscard]] Point point_neg(const Point& a);
/// k * P via double-and-add (k taken mod n).
[[nodiscard]] Point point_mul(const U256& k, const Point& p);
/// k * G.
[[nodiscard]] Point point_mul_g(const U256& k);

/// SEC1 compressed encoding: 0x02/0x03 || x (33 bytes); infinity = 33 zeros.
using CompressedPoint = std::array<std::uint8_t, 33>;
[[nodiscard]] CompressedPoint compress(const Point& p);
[[nodiscard]] std::optional<Point> decompress(const CompressedPoint& c);

}  // namespace jenga::crypto
