// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Every content hash in the system (transaction ids, block ids, contract
// placement, Merkle trees, Schnorr challenges) goes through this module.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace jenga::crypto {

/// Incremental SHA-256 hasher.
class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  Sha256& update(std::span<const std::uint8_t> data);
  Sha256& update(std::string_view s) {
    return update(std::span(reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
  }
  Sha256& update(const Hash256& h) { return update(std::span(h.bytes)); }
  Sha256& update_u64(std::uint64_t v);

  /// Finalizes and returns the digest.  The hasher must be reset before reuse.
  [[nodiscard]] Hash256 finish();

 private:
  void process_block(const std::uint8_t* block);

  std::uint32_t state_[8]{};
  std::uint64_t bit_count_ = 0;
  std::uint8_t buffer_[64]{};
  std::size_t buffer_len_ = 0;
};

/// One-shot convenience hash.
[[nodiscard]] Hash256 sha256(std::span<const std::uint8_t> data);
[[nodiscard]] Hash256 sha256(std::string_view s);

/// Domain-separated hash: H(tag || data).  Protocol objects use distinct tags
/// so that hashes from different contexts can never collide by construction.
[[nodiscard]] Hash256 sha256_tagged(std::string_view tag, std::span<const std::uint8_t> data);

}  // namespace jenga::crypto
