// FastCrypto: cheap keyed-hash "signatures" for large-scale simulation.
//
// Running 2880 nodes through real Schnorr aggregation would turn a
// discrete-event simulation into a crypto benchmark.  FastCrypto swaps the
// math for keyed 64-bit hashes while keeping the exact same *interface
// semantics* (sign/verify/aggregate with a signer bitmap) and — crucially —
// the same *wire sizes*: message size accounting in simnet always charges
// for full-size Schnorr/BLS-equivalent signatures, so the network model is
// unaffected by which provider is active.  Tests cover the equivalence of
// the two providers' observable behaviour.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace jenga::crypto {

/// Wire size charged for an (aggregated) signature regardless of provider.
inline constexpr std::uint32_t kSignatureWireBytes = 64;
/// Wire size of a compressed public key.
inline constexpr std::uint32_t kPublicKeyWireBytes = 33;

struct FastKey {
  std::uint64_t secret = 0;
  std::uint64_t public_id = 0;  // splitmix(secret): stands in for the public key
};

[[nodiscard]] FastKey fast_keypair(std::uint64_t seed);

/// 64-bit tag binding (message, signer secret).
[[nodiscard]] std::uint64_t fast_sign(const FastKey& key, const Hash256& msg);
[[nodiscard]] bool fast_verify(std::uint64_t public_id, const Hash256& msg, std::uint64_t sig);

/// Aggregate: XOR of member tags + bitmap; verification recomputes each
/// member tag from its public id (the verifier knows the group's key list —
/// mirroring BLS verification against known public keys).
struct FastMultiSig {
  std::uint64_t aggregate = 0;
  std::vector<bool> signers;

  [[nodiscard]] std::size_t signer_count() const {
    std::size_t n = 0;
    for (bool b : signers) n += b;
    return n;
  }
};

[[nodiscard]] FastMultiSig fast_aggregate(std::span<const FastKey> group,
                                          const std::vector<bool>& participating,
                                          const Hash256& msg);
[[nodiscard]] bool fast_verify_multisig(std::span<const std::uint64_t> group_public_ids,
                                        const Hash256& msg, const FastMultiSig& sig);

/// One certificate inside a batched verification (gossip batch frames carry
/// many quorum certs from different groups over different messages).
struct FastBatchEntry {
  std::span<const std::uint64_t> group_public_ids;
  Hash256 msg;
  const FastMultiSig* sig = nullptr;
};

/// Verifies every entry in one aggregated pass: per-entry residuals are
/// combined under seed-derived random weights and checked against zero —
/// the small-group analogue of BLS/Schnorr random-linear-combination batch
/// verification.  Accepts iff (w.h.p.) every entry verifies individually;
/// on failure the caller falls back to per-entry checks to find the culprit.
[[nodiscard]] bool fast_verify_multisig_batch(std::span<const FastBatchEntry> entries,
                                              std::uint64_t seed);

}  // namespace jenga::crypto
