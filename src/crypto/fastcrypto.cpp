#include "crypto/fastcrypto.hpp"

#include "common/rng.hpp"

namespace jenga::crypto {
namespace {

std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = a ^ (b + 0x9E3779B97F4A7C15ULL + (a << 6) + (a >> 2));
  return splitmix64(s);
}

std::uint64_t msg_word(const Hash256& msg) {
  std::uint64_t w = 0;
  for (int i = 0; i < 8; ++i) w = (w << 8) | msg.bytes[static_cast<std::size_t>(i)];
  return w;
}

// The verifier only knows public ids; the "signature" must be derivable from
// the public id so verification works, yet we keep a secret/public split so
// the API shape matches real crypto.  Binding: tag = mix(public_id, msg).
std::uint64_t tag_for(std::uint64_t public_id, const Hash256& msg) {
  return mix(public_id, msg_word(msg));
}

}  // namespace

FastKey fast_keypair(std::uint64_t seed) {
  FastKey k;
  std::uint64_t s = seed;
  k.secret = splitmix64(s);
  std::uint64_t s2 = k.secret;
  k.public_id = splitmix64(s2);
  return k;
}

std::uint64_t fast_sign(const FastKey& key, const Hash256& msg) {
  return tag_for(key.public_id, msg);
}

bool fast_verify(std::uint64_t public_id, const Hash256& msg, std::uint64_t sig) {
  return sig == tag_for(public_id, msg);
}

FastMultiSig fast_aggregate(std::span<const FastKey> group, const std::vector<bool>& participating,
                            const Hash256& msg) {
  FastMultiSig out;
  out.signers.assign(group.size(), false);
  for (std::size_t i = 0; i < group.size(); ++i) {
    if (i < participating.size() && participating[i]) {
      out.aggregate ^= fast_sign(group[i], msg);
      out.signers[i] = true;
    }
  }
  return out;
}

bool fast_verify_multisig(std::span<const std::uint64_t> group_public_ids, const Hash256& msg,
                          const FastMultiSig& sig) {
  if (sig.signers.size() != group_public_ids.size() || sig.signer_count() == 0) return false;
  std::uint64_t expect = 0;
  for (std::size_t i = 0; i < group_public_ids.size(); ++i) {
    if (sig.signers[i]) expect ^= tag_for(group_public_ids[i], msg);
  }
  return expect == sig.aggregate;
}

bool fast_verify_multisig_batch(std::span<const FastBatchEntry> entries, std::uint64_t seed) {
  std::uint64_t z_state = seed ^ 0x5851F42D4C957F2DULL;
  std::uint64_t acc = 0;
  for (const auto& e : entries) {
    if (e.sig == nullptr) return false;
    if (e.sig->signers.size() != e.group_public_ids.size() || e.sig->signer_count() == 0)
      return false;
    std::uint64_t expect = 0;
    for (std::size_t i = 0; i < e.group_public_ids.size(); ++i) {
      if (e.sig->signers[i]) expect ^= tag_for(e.group_public_ids[i], e.msg);
    }
    // Random weight per entry: a forged cert cannot cancel another entry's
    // residual without predicting z (mirrors RLC batch verification).
    const std::uint64_t z = splitmix64(z_state) | 1;
    acc += z * (expect ^ e.sig->aggregate);
  }
  return acc == 0;
}

}  // namespace jenga::crypto
