#include "crypto/vrf.hpp"

#include "crypto/sha256.hpp"

namespace jenga::crypto {
namespace {

U256 scalar_from(const Hash256& h) {
  U256 v = U256::from_be_bytes(h);
  if (v >= kOrderN) v = mod(U512{v, U256{}}, kOrderN);
  if (v.is_zero()) v = U256(1);
  return v;
}

U256 dleq_challenge(const Point& g, const Point& h, const Point& p, const Point& gamma,
                    const Point& a, const Point& b) {
  Sha256 hasher;
  hasher.update("jenga/vrf-dleq");
  for (const Point* pt : {&g, &h, &p, &gamma, &a, &b}) {
    const auto c = compress(*pt);
    hasher.update(std::span<const std::uint8_t>(c.data(), c.size()));
  }
  return scalar_from(hasher.finish());
}

}  // namespace

Point hash_to_curve(std::span<const std::uint8_t> msg) {
  for (std::uint64_t ctr = 0;; ++ctr) {
    Sha256 h;
    h.update("jenga/hash-to-curve");
    h.update(msg);
    h.update_u64(ctr);
    U256 x = U256::from_be_bytes(h.finish());
    if (x >= kFieldP) continue;
    const U256 rhs = fp_add(fp_mul(fp_sqr(x), x), U256(7));
    if (auto y = fp_sqrt(rhs)) {
      // Canonicalize to the even-y root so the map is deterministic.
      U256 yv = *y;
      if (yv.is_odd()) yv = fp_sub(U256{}, yv);
      Point p{x, yv, false};
      if (is_on_curve(p) && !p.infinity) return p;
    }
  }
}

VrfOutput vrf_evaluate(const KeyPair& key, std::span<const std::uint8_t> msg) {
  const Point h = hash_to_curve(msg);
  VrfOutput out;
  out.proof.gamma = point_mul(key.secret, h);

  // Deterministic DLEQ nonce.
  Sha256 nh;
  nh.update("jenga/vrf-nonce");
  nh.update(key.secret.to_be_bytes());
  nh.update(msg);
  const U256 k = scalar_from(nh.finish());

  const Point a = point_mul_g(k);
  const Point b = point_mul(k, h);
  out.proof.c = dleq_challenge(generator(), h, key.public_key, out.proof.gamma, a, b);
  // s = k - c·x mod n
  out.proof.s = submod(k, mulmod(out.proof.c, key.secret, kOrderN), kOrderN);

  const auto gc = compress(out.proof.gamma);
  out.beta = sha256_tagged("jenga/vrf-beta", std::span<const std::uint8_t>(gc.data(), gc.size()));
  return out;
}

std::optional<Hash256> vrf_verify(const Point& public_key, std::span<const std::uint8_t> msg,
                                  const VrfProof& proof) {
  if (proof.gamma.infinity || !is_on_curve(proof.gamma)) return std::nullopt;
  if (public_key.infinity || !is_on_curve(public_key)) return std::nullopt;
  const Point h = hash_to_curve(msg);
  // Reconstruct commitments: A = sG + cP, B = sH + c·gamma.
  const Point a = point_add(point_mul_g(proof.s), point_mul(proof.c, public_key));
  const Point b = point_add(point_mul(proof.s, h), point_mul(proof.c, proof.gamma));
  const U256 c = dleq_challenge(generator(), h, public_key, proof.gamma, a, b);
  if (!(c == proof.c)) return std::nullopt;
  const auto gc = compress(proof.gamma);
  return sha256_tagged("jenga/vrf-beta", std::span<const std::uint8_t>(gc.data(), gc.size()));
}

}  // namespace jenga::crypto
