#include "crypto/secp256k1.hpp"

#include <cassert>

namespace jenga::crypto {

const U256 kFieldP = U256::from_hex(
    "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f");
const U256 kOrderN = U256::from_hex(
    "fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141");

namespace {

// p = 2^256 - kC, kC = 2^32 + 977.
constexpr std::uint64_t kC = 0x1000003D1ULL;

// Reduces a 512-bit product mod p using 2^256 ≡ kC (mod p).
U256 reduce512(const U512& v) {
  // t = lo + hi * kC.  hi * kC fits in 256 + 33 bits.
  std::uint64_t acc[5]{};
  __uint128_t carry = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    __uint128_t cur = static_cast<__uint128_t>(v.hi.limb[i]) * kC + carry;
    acc[i] = static_cast<std::uint64_t>(cur);
    carry = cur >> 64;
  }
  acc[4] = static_cast<std::uint64_t>(carry);

  U256 t;
  carry = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    __uint128_t cur = static_cast<__uint128_t>(v.lo.limb[i]) + acc[i] + carry;
    t.limb[i] = static_cast<std::uint64_t>(cur);
    carry = cur >> 64;
  }
  // overflow = acc[4] + carry  (< 2^34): fold again via overflow * kC.
  std::uint64_t overflow = acc[4] + static_cast<std::uint64_t>(carry);
  while (overflow != 0) {
    __uint128_t fold = static_cast<__uint128_t>(overflow) * kC;
    carry = 0;
    U256 t2;
    for (std::size_t i = 0; i < 4; ++i) {
      __uint128_t cur = static_cast<__uint128_t>(t.limb[i]) + carry +
                        (i == 0 ? static_cast<std::uint64_t>(fold) : 0ULL) +
                        (i == 1 ? static_cast<std::uint64_t>(fold >> 64) : 0ULL);
      t2.limb[i] = static_cast<std::uint64_t>(cur);
      carry = cur >> 64;
    }
    t = t2;
    overflow = static_cast<std::uint64_t>(carry);
  }
  while (t >= kFieldP) {
    std::uint64_t borrow;
    t = sub(t, kFieldP, borrow);
  }
  return t;
}

}  // namespace

U256 fp_add(const U256& a, const U256& b) { return addmod(a, b, kFieldP); }
U256 fp_sub(const U256& a, const U256& b) { return submod(a, b, kFieldP); }
U256 fp_mul(const U256& a, const U256& b) { return reduce512(mul_full(a, b)); }
U256 fp_sqr(const U256& a) { return fp_mul(a, a); }

U256 fp_inv(const U256& a) {
  assert(!a.is_zero());
  // Fermat: a^(p-2).  Uses the fast field multiply rather than generic mulmod.
  std::uint64_t borrow;
  const U256 exp = sub(kFieldP, U256(2), borrow);
  U256 result(1);
  U256 acc = a;
  const int top = exp.highest_bit();
  for (int i = 0; i <= top; ++i) {
    if (exp.bit(i)) result = fp_mul(result, acc);
    acc = fp_sqr(acc);
  }
  return result;
}

std::optional<U256> fp_sqrt(const U256& a) {
  // p ≡ 3 (mod 4) ⇒ candidate root is a^((p+1)/4).
  std::uint64_t carry;
  U256 e = add(kFieldP, U256(1), carry);
  (void)carry;  // p+1 < 2^256 here because p ends in ...fc2f
  e = shr(e, 2);
  U256 root(1);
  U256 acc = a;
  const int top = e.highest_bit();
  for (int i = 0; i <= top; ++i) {
    if (e.bit(i)) root = fp_mul(root, acc);
    acc = fp_sqr(acc);
  }
  if (fp_sqr(root) == mod(U512{a, U256{}}, kFieldP)) return root;
  return std::nullopt;
}

const Point& generator() {
  static const Point g = [] {
    Point p;
    p.x = U256::from_hex("79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798");
    p.y = U256::from_hex("483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8");
    p.infinity = false;
    return p;
  }();
  return g;
}

bool is_on_curve(const Point& p) {
  if (p.infinity) return true;
  const U256 lhs = fp_sqr(p.y);
  const U256 rhs = fp_add(fp_mul(fp_sqr(p.x), p.x), U256(7));
  return lhs == rhs;
}

Point point_neg(const Point& a) {
  if (a.infinity) return a;
  Point r = a;
  r.y = fp_sub(U256{}, a.y);
  return r;
}

Point point_double(const Point& a) {
  if (a.infinity || a.y.is_zero()) return Point{};  // 2*P with y=0 is infinity
  // Affine doubling: s = 3x^2 / 2y; x' = s^2 - 2x; y' = s(x - x') - y.
  const U256 three_x2 = fp_mul(U256(3), fp_sqr(a.x));
  const U256 s = fp_mul(three_x2, fp_inv(fp_add(a.y, a.y)));
  U256 x3 = fp_sub(fp_sqr(s), fp_add(a.x, a.x));
  U256 y3 = fp_sub(fp_mul(s, fp_sub(a.x, x3)), a.y);
  return Point{x3, y3, false};
}

Point point_add(const Point& a, const Point& b) {
  if (a.infinity) return b;
  if (b.infinity) return a;
  if (a.x == b.x) {
    if (a.y == b.y) return point_double(a);
    return Point{};  // a + (-a) = infinity
  }
  const U256 s = fp_mul(fp_sub(b.y, a.y), fp_inv(fp_sub(b.x, a.x)));
  U256 x3 = fp_sub(fp_sub(fp_sqr(s), a.x), b.x);
  U256 y3 = fp_sub(fp_mul(s, fp_sub(a.x, x3)), a.y);
  return Point{x3, y3, false};
}

Point point_mul(const U256& k, const Point& p) {
  const U256 scalar = k >= kOrderN ? mod(U512{k, U256{}}, kOrderN) : k;
  Point result;  // infinity
  Point acc = p;
  const int top = scalar.highest_bit();
  for (int i = 0; i <= top; ++i) {
    if (scalar.bit(i)) result = point_add(result, acc);
    acc = point_double(acc);
  }
  return result;
}

Point point_mul_g(const U256& k) { return point_mul(k, generator()); }

CompressedPoint compress(const Point& p) {
  CompressedPoint out{};
  if (p.infinity) return out;
  out[0] = p.y.is_odd() ? 0x03 : 0x02;
  const Hash256 xb = p.x.to_be_bytes();
  for (int i = 0; i < 32; ++i) out[static_cast<std::size_t>(i + 1)] = xb.bytes[static_cast<std::size_t>(i)];
  return out;
}

std::optional<Point> decompress(const CompressedPoint& c) {
  if (c[0] == 0) {
    for (auto b : c)
      if (b != 0) return std::nullopt;
    return Point{};  // infinity
  }
  if (c[0] != 0x02 && c[0] != 0x03) return std::nullopt;
  Hash256 xb;
  for (int i = 0; i < 32; ++i) xb.bytes[static_cast<std::size_t>(i)] = c[static_cast<std::size_t>(i + 1)];
  const U256 x = U256::from_be_bytes(xb);
  if (x >= kFieldP) return std::nullopt;
  const U256 rhs = fp_add(fp_mul(fp_sqr(x), x), U256(7));
  auto y = fp_sqrt(rhs);
  if (!y) return std::nullopt;
  U256 yv = *y;
  if (yv.is_odd() != (c[0] == 0x03)) yv = fp_sub(U256{}, yv);
  Point p{x, yv, false};
  if (!is_on_curve(p)) return std::nullopt;
  return p;
}

}  // namespace jenga::crypto
