// Schnorr signatures over secp256k1, with MuSig-style aggregation.
//
// Jenga's paper uses BLS aggregated signatures so that a quorum certificate
// is a single constant-size signature verifiable against the signer set.
// This module is our substitution (see DESIGN.md §2): CoSi/MuSig aggregation
// of Schnorr signatures gives the same interface — one 64-byte aggregate plus
// a signer bitmap — without needing a pairing curve.  Key-aggregation
// coefficients a_i = H(L || P_i) defend against rogue-key attacks.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "crypto/secp256k1.hpp"

namespace jenga::crypto {

struct KeyPair {
  U256 secret;
  Point public_key;
};

/// Deterministically derives a keypair from a seed (test/simulation use).
[[nodiscard]] KeyPair keypair_from_seed(std::uint64_t seed);

struct Signature {
  Point r;   // commitment R = kG
  U256 s;    // response s = k + e·x (mod n)
};

/// Plain single-signer Schnorr.
[[nodiscard]] Signature sign(const KeyPair& key, std::span<const std::uint8_t> msg);
[[nodiscard]] bool verify(const Point& public_key, std::span<const std::uint8_t> msg,
                          const Signature& sig);

/// Aggregated multi-signature over one message: constant-size (R, s) plus the
/// bitmap of participating signers.  Mirrors a BLS certificate.
struct MultiSignature {
  Point r;
  U256 s;
  std::vector<bool> signers;  // indexed by position in the group key list

  [[nodiscard]] std::size_t signer_count() const {
    std::size_t n = 0;
    for (bool b : signers) n += b;
    return n;
  }
};

/// Key-aggregation coefficient a_i = H("jenga/musig-coef" || L || P_i) mod n,
/// where L is the hash of the full ordered key list.
[[nodiscard]] U256 key_agg_coefficient(const Hash256& key_list_hash, const Point& key);

/// Hash of the ordered group key list (the "L" in MuSig).
[[nodiscard]] Hash256 hash_key_list(std::span<const Point> keys);

/// Interactive aggregation session, run by the certificate collector (the BFT
/// leader).  Protocol: collector gathers commitments R_i from each signer,
/// derives the shared challenge, gathers responses, and aggregates.
class MultisigSession {
 public:
  /// `group` is the ordered key list of the whole group (all replicas).
  MultisigSession(std::vector<Point> group, std::vector<std::uint8_t> message);

  /// Per-signer commitment: signer i picks nonce k_i, returns R_i = k_i·G.
  /// (In the simulator the nonce is derived deterministically per signer.)
  struct Commitment {
    std::size_t index;
    Point r;
    U256 nonce;  // kept by the signer; exposed here because both halves run in-process
  };
  [[nodiscard]] Commitment make_commitment(std::size_t signer_index, const KeyPair& key,
                                           std::uint64_t nonce_seed) const;

  /// Collector adds a commitment.  Returns false on duplicate/invalid index.
  bool add_commitment(const Commitment& c);

  /// Shared challenge e = H(R_agg || L || msg) once all commitments are in.
  [[nodiscard]] U256 challenge() const;

  /// Signer response s_i = k_i + e·a_i·x_i (mod n).
  [[nodiscard]] U256 make_response(const Commitment& c, const KeyPair& key) const;

  /// Collector adds a response; verified against the signer's public key so a
  /// Byzantine replica cannot poison the aggregate.
  bool add_response(std::size_t signer_index, const U256& response);

  /// Final aggregate once every committed signer responded.
  [[nodiscard]] std::optional<MultiSignature> aggregate() const;

 private:
  std::vector<Point> group_;
  Hash256 key_list_hash_;
  std::vector<std::uint8_t> message_;
  std::vector<std::optional<Point>> commitments_;
  std::vector<std::optional<U256>> responses_;
  Point r_agg_;  // running sum of commitments
  bool responses_locked_ = false;  // set once the first response arrives
};

/// Verifies an aggregated signature against the group key list and bitmap:
///   s·G == R + e·Σ a_i·P_i
[[nodiscard]] bool verify_multisig(std::span<const Point> group,
                                   std::span<const std::uint8_t> msg,
                                   const MultiSignature& sig);

/// One certificate inside a batched verification.
struct MultisigBatchEntry {
  std::span<const Point> group;
  std::span<const std::uint8_t> msg;
  const MultiSignature* sig = nullptr;
};

/// Random-linear-combination batch verification of many aggregated
/// certificates (possibly from different groups over different messages):
///   (Σ z_i·s_i)·G  ==  Σ z_i·R_i + Σ z_i·e_i·K_i,   K_i = Σ a_j·P_j
/// with per-entry random weights z_i derived from `seed` and the entry
/// contents.  One base-point multiplication and one comparison replace the
/// per-certificate checks; accepts iff (w.h.p.) every entry verifies
/// individually.  On failure callers fall back to verify_multisig per entry.
[[nodiscard]] bool verify_multisig_batch(std::span<const MultisigBatchEntry> entries,
                                         std::uint64_t seed);

}  // namespace jenga::crypto
