#include "crypto/schnorr.hpp"

#include <cassert>

#include "crypto/sha256.hpp"

namespace jenga::crypto {
namespace {

U256 scalar_from_hash(const Hash256& h) {
  U256 v = U256::from_be_bytes(h);
  if (v >= kOrderN) v = mod(U512{v, U256{}}, kOrderN);
  if (v.is_zero()) v = U256(1);  // zero scalars are degenerate; nudge deterministically
  return v;
}

U256 challenge_hash(const Point& r, const Hash256& key_context,
                    std::span<const std::uint8_t> msg) {
  Sha256 h;
  h.update("jenga/schnorr-challenge");
  const auto rc = compress(r);
  h.update(std::span<const std::uint8_t>(rc.data(), rc.size()));
  h.update(key_context);
  h.update(msg);
  return scalar_from_hash(h.finish());
}

}  // namespace

KeyPair keypair_from_seed(std::uint64_t seed) {
  Sha256 h;
  h.update("jenga/keygen");
  h.update_u64(seed);
  KeyPair kp;
  kp.secret = scalar_from_hash(h.finish());
  kp.public_key = point_mul_g(kp.secret);
  return kp;
}

Signature sign(const KeyPair& key, std::span<const std::uint8_t> msg) {
  // Derandomized nonce (RFC6979-flavoured): k = H(secret || msg).
  Sha256 nh;
  nh.update("jenga/schnorr-nonce");
  nh.update(key.secret.to_be_bytes());
  nh.update(msg);
  const U256 k = scalar_from_hash(nh.finish());

  Signature sig;
  sig.r = point_mul_g(k);
  const auto pk = compress(key.public_key);
  const Hash256 key_ctx = sha256(std::span<const std::uint8_t>(pk.data(), pk.size()));
  const U256 e = challenge_hash(sig.r, key_ctx, msg);
  sig.s = addmod(k, mulmod(e, key.secret, kOrderN), kOrderN);
  return sig;
}

bool verify(const Point& public_key, std::span<const std::uint8_t> msg, const Signature& sig) {
  if (sig.r.infinity || sig.s.is_zero() || sig.s >= kOrderN) return false;
  if (!is_on_curve(public_key) || public_key.infinity) return false;
  const auto pk = compress(public_key);
  const Hash256 key_ctx = sha256(std::span<const std::uint8_t>(pk.data(), pk.size()));
  const U256 e = challenge_hash(sig.r, key_ctx, msg);
  // s·G == R + e·P
  const Point lhs = point_mul_g(sig.s);
  const Point rhs = point_add(sig.r, point_mul(e, public_key));
  return lhs == rhs;
}

Hash256 hash_key_list(std::span<const Point> keys) {
  Sha256 h;
  h.update("jenga/musig-keylist");
  for (const auto& k : keys) {
    const auto c = compress(k);
    h.update(std::span<const std::uint8_t>(c.data(), c.size()));
  }
  return h.finish();
}

U256 key_agg_coefficient(const Hash256& key_list_hash, const Point& key) {
  Sha256 h;
  h.update("jenga/musig-coef");
  h.update(key_list_hash);
  const auto c = compress(key);
  h.update(std::span<const std::uint8_t>(c.data(), c.size()));
  return scalar_from_hash(h.finish());
}

MultisigSession::MultisigSession(std::vector<Point> group, std::vector<std::uint8_t> message)
    : group_(std::move(group)),
      key_list_hash_(hash_key_list(group_)),
      message_(std::move(message)),
      commitments_(group_.size()),
      responses_(group_.size()) {}

MultisigSession::Commitment MultisigSession::make_commitment(std::size_t signer_index,
                                                             const KeyPair& key,
                                                             std::uint64_t nonce_seed) const {
  Sha256 h;
  h.update("jenga/musig-nonce");
  h.update(key.secret.to_be_bytes());
  h.update_u64(nonce_seed);
  h.update(key_list_hash_);
  h.update(message_);
  Commitment c;
  c.index = signer_index;
  c.nonce = [&] {
    U256 v = U256::from_be_bytes(h.finish());
    if (v >= kOrderN) v = mod(U512{v, U256{}}, kOrderN);
    if (v.is_zero()) v = U256(1);
    return v;
  }();
  c.r = point_mul_g(c.nonce);
  return c;
}

bool MultisigSession::add_commitment(const Commitment& c) {
  // The shared challenge binds the aggregate commitment, so accepting a new
  // commitment after any response exists would silently invalidate that
  // response.  Lock the commitment phase once the first response arrives.
  if (responses_locked_) return false;
  if (c.index >= group_.size() || commitments_[c.index].has_value()) return false;
  if (c.r.infinity || !is_on_curve(c.r)) return false;
  commitments_[c.index] = c.r;
  r_agg_ = point_add(r_agg_, c.r);
  return true;
}

U256 MultisigSession::challenge() const {
  return challenge_hash(r_agg_, key_list_hash_, message_);
}

U256 MultisigSession::make_response(const Commitment& c, const KeyPair& key) const {
  const U256 e = challenge();
  const U256 a = key_agg_coefficient(key_list_hash_, key.public_key);
  return addmod(c.nonce, mulmod(e, mulmod(a, key.secret, kOrderN), kOrderN), kOrderN);
}

bool MultisigSession::add_response(std::size_t signer_index, const U256& response) {
  if (signer_index >= group_.size() || !commitments_[signer_index].has_value()) return false;
  responses_locked_ = true;
  if (responses_[signer_index].has_value()) return false;
  // Per-signer check: s_i·G == R_i + e·a_i·P_i, so one bad response cannot
  // silently corrupt the aggregate.
  const U256 e = challenge();
  const U256 a = key_agg_coefficient(key_list_hash_, group_[signer_index]);
  const Point lhs = point_mul_g(response);
  const Point rhs = point_add(*commitments_[signer_index],
                              point_mul(mulmod(e, a, kOrderN), group_[signer_index]));
  if (!(lhs == rhs)) return false;
  responses_[signer_index] = response;
  return true;
}

std::optional<MultiSignature> MultisigSession::aggregate() const {
  MultiSignature out;
  out.r = r_agg_;
  out.s = U256{};
  out.signers.assign(group_.size(), false);
  for (std::size_t i = 0; i < group_.size(); ++i) {
    if (!commitments_[i].has_value()) continue;
    if (!responses_[i].has_value()) return std::nullopt;  // committed but no response yet
    out.s = addmod(out.s, *responses_[i], kOrderN);
    out.signers[i] = true;
  }
  if (out.signer_count() == 0) return std::nullopt;
  return out;
}

bool verify_multisig(std::span<const Point> group, std::span<const std::uint8_t> msg,
                     const MultiSignature& sig) {
  if (sig.signers.size() != group.size() || sig.signer_count() == 0) return false;
  const Hash256 list_hash = hash_key_list(group);
  const U256 e = challenge_hash(sig.r, list_hash, msg);
  Point key_sum;  // Σ a_i·P_i over participating signers
  for (std::size_t i = 0; i < group.size(); ++i) {
    if (!sig.signers[i]) continue;
    const U256 a = key_agg_coefficient(list_hash, group[i]);
    key_sum = point_add(key_sum, point_mul(a, group[i]));
  }
  const Point lhs = point_mul_g(sig.s);
  const Point rhs = point_add(sig.r, point_mul(e, key_sum));
  return lhs == rhs;
}

bool verify_multisig_batch(std::span<const MultisigBatchEntry> entries, std::uint64_t seed) {
  if (entries.empty()) return true;
  U256 s_acc;       // Σ z_i·s_i (mod n)
  Point rhs_acc;    // Σ z_i·R_i + Σ z_i·e_i·K_i
  for (std::size_t idx = 0; idx < entries.size(); ++idx) {
    const auto& entry = entries[idx];
    const MultiSignature* sig = entry.sig;
    if (sig == nullptr || sig->signers.size() != entry.group.size() ||
        sig->signer_count() == 0)
      return false;
    if (sig->r.infinity || !is_on_curve(sig->r) || sig->s >= kOrderN) return false;

    const Hash256 list_hash = hash_key_list(entry.group);
    const U256 e = challenge_hash(sig->r, list_hash, entry.msg);
    Point key_sum;
    for (std::size_t i = 0; i < entry.group.size(); ++i) {
      if (!sig->signers[i]) continue;
      const U256 a = key_agg_coefficient(list_hash, entry.group[i]);
      key_sum = point_add(key_sum, point_mul(a, entry.group[i]));
    }

    // z_i = H(seed || i || R_i || s_i || L || msg): unpredictable before the
    // certificates are fixed, so residuals cannot be crafted to cancel.
    Sha256 zh;
    zh.update("jenga/batch-weight");
    zh.update_u64(seed);
    zh.update_u64(idx);
    const auto rc = compress(sig->r);
    zh.update(std::span<const std::uint8_t>(rc.data(), rc.size()));
    zh.update(sig->s.to_be_bytes());
    zh.update(list_hash);
    zh.update(entry.msg);
    const U256 z = scalar_from_hash(zh.finish());

    s_acc = addmod(s_acc, mulmod(z, sig->s, kOrderN), kOrderN);
    rhs_acc = point_add(rhs_acc, point_mul(z, sig->r));
    rhs_acc = point_add(rhs_acc, point_mul(mulmod(z, e, kOrderN), key_sum));
  }
  return point_mul_g(s_acc) == rhs_acc;
}

}  // namespace jenga::crypto
