#include "crypto/uint256.hpp"

#include <cassert>
#include <cstring>

#include "common/hex.hpp"

namespace jenga::crypto {

U256 U256::from_be_bytes(const Hash256& h) {
  U256 v;
  for (int i = 0; i < 4; ++i) {
    std::uint64_t limb = 0;
    for (int j = 0; j < 8; ++j)
      limb = (limb << 8) | h.bytes[static_cast<std::size_t>(i * 8 + j)];
    v.limb[static_cast<std::size_t>(3 - i)] = limb;
  }
  return v;
}

Hash256 U256::to_be_bytes() const {
  Hash256 h;
  for (int i = 0; i < 4; ++i) {
    const std::uint64_t l = limb[static_cast<std::size_t>(3 - i)];
    for (int j = 0; j < 8; ++j)
      h.bytes[static_cast<std::size_t>(i * 8 + j)] = static_cast<std::uint8_t>(l >> (56 - 8 * j));
  }
  return h;
}

U256 U256::from_hex(std::string_view hex) {
  std::string padded(hex.starts_with("0x") ? hex.substr(2) : hex);
  assert(padded.size() <= 64);
  padded.insert(0, 64 - padded.size(), '0');
  auto bytes = jenga::from_hex(padded);
  assert(bytes && bytes->size() == 32);
  Hash256 h;
  std::copy(bytes->begin(), bytes->end(), h.bytes.begin());
  return from_be_bytes(h);
}

std::string U256::to_hex() const { return jenga::to_hex(to_be_bytes()); }

int U256::highest_bit() const {
  for (int i = 3; i >= 0; --i) {
    if (limb[static_cast<std::size_t>(i)] != 0)
      return i * 64 + 63 - __builtin_clzll(limb[static_cast<std::size_t>(i)]);
  }
  return -1;
}

U256 add(const U256& a, const U256& b, std::uint64_t& carry_out) {
  U256 r;
  __uint128_t carry = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    __uint128_t s = static_cast<__uint128_t>(a.limb[i]) + b.limb[i] + carry;
    r.limb[i] = static_cast<std::uint64_t>(s);
    carry = s >> 64;
  }
  carry_out = static_cast<std::uint64_t>(carry);
  return r;
}

U256 sub(const U256& a, const U256& b, std::uint64_t& borrow_out) {
  U256 r;
  std::uint64_t borrow = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    const std::uint64_t bi = b.limb[i];
    const std::uint64_t t = a.limb[i] - bi;
    const std::uint64_t borrow1 = a.limb[i] < bi;
    r.limb[i] = t - borrow;
    const std::uint64_t borrow2 = t < borrow;
    borrow = borrow1 | borrow2;
  }
  borrow_out = borrow;
  return r;
}

U512 mul_full(const U256& a, const U256& b) {
  std::uint64_t acc[8]{};
  for (std::size_t i = 0; i < 4; ++i) {
    __uint128_t carry = 0;
    for (std::size_t j = 0; j < 4; ++j) {
      __uint128_t cur =
          static_cast<__uint128_t>(a.limb[i]) * b.limb[j] + acc[i + j] + carry;
      acc[i + j] = static_cast<std::uint64_t>(cur);
      carry = cur >> 64;
    }
    acc[i + 4] += static_cast<std::uint64_t>(carry);
  }
  U512 r;
  for (std::size_t i = 0; i < 4; ++i) {
    r.lo.limb[i] = acc[i];
    r.hi.limb[i] = acc[i + 4];
  }
  return r;
}

U256 shl(const U256& a, unsigned n) {
  if (n >= 256) return U256{};
  U256 r;
  const unsigned limb_shift = n / 64;
  const unsigned bit_shift = n % 64;
  for (int i = 3; i >= 0; --i) {
    auto idx = static_cast<std::size_t>(i);
    std::uint64_t v = 0;
    if (idx >= limb_shift) {
      v = a.limb[idx - limb_shift] << bit_shift;
      if (bit_shift != 0 && idx >= limb_shift + 1)
        v |= a.limb[idx - limb_shift - 1] >> (64 - bit_shift);
    }
    r.limb[idx] = v;
  }
  return r;
}

U256 shr(const U256& a, unsigned n) {
  if (n >= 256) return U256{};
  U256 r;
  const unsigned limb_shift = n / 64;
  const unsigned bit_shift = n % 64;
  for (std::size_t i = 0; i < 4; ++i) {
    std::uint64_t v = 0;
    if (i + limb_shift < 4) {
      v = a.limb[i + limb_shift] >> bit_shift;
      if (bit_shift != 0 && i + limb_shift + 1 < 4)
        v |= a.limb[i + limb_shift + 1] << (64 - bit_shift);
    }
    r.limb[i] = v;
  }
  return r;
}

namespace {

// 512-bit value as 8 little-endian limbs, for the generic reduction.
struct Wide {
  std::uint64_t limb[8]{};

  [[nodiscard]] int highest_bit() const {
    for (int i = 7; i >= 0; --i)
      if (limb[i] != 0) return i * 64 + 63 - __builtin_clzll(limb[i]);
    return -1;
  }
  [[nodiscard]] bool bit(int i) const { return (limb[i / 64] >> (i % 64)) & 1; }
};

}  // namespace

U256 mod(const U512& a, const U256& m) {
  assert(!m.is_zero());
  Wide w;
  for (std::size_t i = 0; i < 4; ++i) {
    w.limb[i] = a.lo.limb[i];
    w.limb[i + 4] = a.hi.limb[i];
  }
  // Binary long division: scan from the top bit, shifting the remainder left
  // and conditionally subtracting the modulus.
  U256 rem;
  const int top = w.highest_bit();
  for (int i = top; i >= 0; --i) {
    // rem = rem * 2 + bit.  If rem's top bit was set, the shift conceptually
    // overflows into a 257th bit; since m < 2^256 the overflowed value is
    // certainly >= m, and a single wrap-around subtraction restores rem < m.
    const bool overflow = rem.bit(255);
    rem = shl(rem, 1);
    if (w.bit(i)) rem.limb[0] |= 1;
    if (overflow || rem >= m) {
      std::uint64_t borrow;
      rem = sub(rem, m, borrow);
    }
  }
  return rem;
}

U256 addmod(const U256& a, const U256& b, const U256& m) {
  std::uint64_t carry;
  U256 s = add(a, b, carry);
  if (carry != 0 || s >= m) {
    std::uint64_t borrow;
    s = sub(s, m, borrow);
  }
  return s;
}

U256 submod(const U256& a, const U256& b, const U256& m) {
  std::uint64_t borrow;
  U256 d = sub(a, b, borrow);
  if (borrow != 0) {
    std::uint64_t carry;
    d = add(d, m, carry);
  }
  return d;
}

U256 mulmod(const U256& a, const U256& b, const U256& m) { return mod(mul_full(a, b), m); }

U256 powmod(const U256& base, const U256& exp, const U256& m) {
  U256 result(1);
  U256 acc = base;
  const int top = exp.highest_bit();
  for (int i = 0; i <= top; ++i) {
    if (exp.bit(i)) result = mulmod(result, acc, m);
    acc = mulmod(acc, acc, m);
  }
  return result;
}

U256 invmod_prime(const U256& a, const U256& m) {
  std::uint64_t borrow;
  const U256 exp = sub(m, U256(2), borrow);
  assert(borrow == 0);
  return powmod(a, exp, m);
}

}  // namespace jenga::crypto
