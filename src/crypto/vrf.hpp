// Verifiable Random Function (ECVRF-style) over secp256k1.
//
// Used by the epoch manager as the source of unbiased distributed randomness
// that decides every node's (state shard, execution channel) assignment.
// Construction: gamma = x·H2C(m); DLEQ proof that log_G(P) = log_H(gamma);
// output beta = H(gamma).
#pragma once

#include <optional>
#include <span>

#include "common/types.hpp"
#include "crypto/schnorr.hpp"
#include "crypto/secp256k1.hpp"

namespace jenga::crypto {

/// Hash-to-curve via try-and-increment (x = H(m || ctr) until on curve).
[[nodiscard]] Point hash_to_curve(std::span<const std::uint8_t> msg);

struct VrfProof {
  Point gamma;  // x · H2C(m)
  U256 c;       // DLEQ challenge
  U256 s;       // DLEQ response
};

struct VrfOutput {
  Hash256 beta;
  VrfProof proof;
};

[[nodiscard]] VrfOutput vrf_evaluate(const KeyPair& key, std::span<const std::uint8_t> msg);

/// Verifies the proof and, on success, returns beta.
[[nodiscard]] std::optional<Hash256> vrf_verify(const Point& public_key,
                                                std::span<const std::uint8_t> msg,
                                                const VrfProof& proof);

}  // namespace jenga::crypto
