// 256-bit unsigned integer arithmetic.
//
// Backbone of the secp256k1 field/scalar implementation.  Limbs are stored
// little-endian (limb[0] is least significant).  Not constant-time: this is
// research/simulation code, not a hardened production signer.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace jenga::crypto {

struct U256 {
  std::array<std::uint64_t, 4> limb{};

  constexpr U256() = default;
  constexpr explicit U256(std::uint64_t v) : limb{v, 0, 0, 0} {}
  constexpr U256(std::uint64_t l3, std::uint64_t l2, std::uint64_t l1, std::uint64_t l0)
      : limb{l0, l1, l2, l3} {}  // most-significant-first constructor, matches hex literals

  [[nodiscard]] static U256 from_be_bytes(const Hash256& h);
  [[nodiscard]] Hash256 to_be_bytes() const;
  [[nodiscard]] static U256 from_hex(std::string_view hex);
  [[nodiscard]] std::string to_hex() const;

  [[nodiscard]] bool is_zero() const {
    return (limb[0] | limb[1] | limb[2] | limb[3]) == 0;
  }
  [[nodiscard]] bool bit(int i) const {
    return (limb[static_cast<std::size_t>(i / 64)] >> (i % 64)) & 1;
  }
  /// Index of the highest set bit, or -1 for zero.
  [[nodiscard]] int highest_bit() const;
  [[nodiscard]] bool is_odd() const { return limb[0] & 1; }

  std::strong_ordering operator<=>(const U256& o) const {
    for (int i = 3; i >= 0; --i) {
      auto idx = static_cast<std::size_t>(i);
      if (limb[idx] != o.limb[idx]) return limb[idx] <=> o.limb[idx];
    }
    return std::strong_ordering::equal;
  }
  bool operator==(const U256&) const = default;
};

/// a + b; carry_out receives the final carry (0/1).
U256 add(const U256& a, const U256& b, std::uint64_t& carry_out);
/// a - b; borrow_out receives the final borrow (0/1).
U256 sub(const U256& a, const U256& b, std::uint64_t& borrow_out);
/// Full 512-bit product, returned as (lo, hi).
struct U512 {
  U256 lo;
  U256 hi;
};
U512 mul_full(const U256& a, const U256& b);
/// Logical shifts.
U256 shl(const U256& a, unsigned n);
U256 shr(const U256& a, unsigned n);

/// Arbitrary-modulus arithmetic (schoolbook; used for scalar field mod n).
U256 mod(const U512& a, const U256& m);
U256 addmod(const U256& a, const U256& b, const U256& m);
U256 submod(const U256& a, const U256& b, const U256& m);
U256 mulmod(const U256& a, const U256& b, const U256& m);
U256 powmod(const U256& base, const U256& exp, const U256& m);
/// Modular inverse via Fermat (m must be prime, a != 0 mod m).
U256 invmod_prime(const U256& a, const U256& m);

}  // namespace jenga::crypto
