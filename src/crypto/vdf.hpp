// Verifiable Delay Function — iterated-hash substitution.
//
// The paper combines a VRF with a VDF to delay randomness revelation past the
// adversary's bias window.  A production VDF needs a sequential-but-fast-to-
// verify primitive (Wesolowski/Pietrzak over class groups).  Our substitution
// (DESIGN.md §2) is an iterated SHA-256 chain with evenly spaced checkpoints:
// evaluation is inherently sequential; verification re-computes either all
// segments or a caller-chosen random sample of them.  This preserves the
// property the protocol needs — the output cannot be known before ~T
// sequential steps — while keeping verification cheap in the simulator.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace jenga::crypto {

struct VdfProof {
  Hash256 input;
  Hash256 output;
  std::uint64_t iterations = 0;
  /// Intermediate digests every `iterations / checkpoints.size()` steps
  /// (excluding input, including output as the last entry).
  std::vector<Hash256> checkpoints;
};

/// Evaluates the delay chain: output = H^T(input); records `num_checkpoints`
/// evenly spaced intermediates.  num_checkpoints must divide iterations.
[[nodiscard]] VdfProof vdf_evaluate(const Hash256& input, std::uint64_t iterations,
                                    std::size_t num_checkpoints);

/// Fully re-computes every segment.  O(T) but embarrassingly parallel across
/// segments (the verification speedup a real VDF gets from algebra, we get
/// from segment parallelism).
[[nodiscard]] bool vdf_verify_full(const VdfProof& proof);

/// Spot-check verification: re-computes `samples` randomly chosen segments.
/// A proof with any corrupted segment is caught with probability
/// 1 - (1 - 1/segments)^samples.
[[nodiscard]] bool vdf_verify_sampled(const VdfProof& proof, std::size_t samples, Rng& rng);

}  // namespace jenga::crypto
