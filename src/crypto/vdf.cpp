#include "crypto/vdf.hpp"

#include "crypto/sha256.hpp"

namespace jenga::crypto {
namespace {

Hash256 step(const Hash256& h) { return sha256_tagged("jenga/vdf-step", std::span(h.bytes)); }

Hash256 run_segment(Hash256 start, std::uint64_t steps) {
  for (std::uint64_t i = 0; i < steps; ++i) start = step(start);
  return start;
}

}  // namespace

VdfProof vdf_evaluate(const Hash256& input, std::uint64_t iterations,
                      std::size_t num_checkpoints) {
  VdfProof proof;
  proof.input = input;
  proof.iterations = iterations;
  if (num_checkpoints == 0 || iterations % num_checkpoints != 0) {
    num_checkpoints = 1;
  }
  const std::uint64_t seg = iterations / num_checkpoints;
  Hash256 cur = input;
  for (std::size_t i = 0; i < num_checkpoints; ++i) {
    cur = run_segment(cur, seg);
    proof.checkpoints.push_back(cur);
  }
  proof.output = cur;
  return proof;
}

bool vdf_verify_full(const VdfProof& proof) {
  if (proof.checkpoints.empty()) return false;
  if (proof.iterations % proof.checkpoints.size() != 0) return false;
  const std::uint64_t seg = proof.iterations / proof.checkpoints.size();
  Hash256 cur = proof.input;
  for (const auto& cp : proof.checkpoints) {
    cur = run_segment(cur, seg);
    if (!(cur == cp)) return false;
  }
  return cur == proof.output;
}

bool vdf_verify_sampled(const VdfProof& proof, std::size_t samples, Rng& rng) {
  if (proof.checkpoints.empty()) return false;
  if (proof.iterations % proof.checkpoints.size() != 0) return false;
  if (!(proof.checkpoints.back() == proof.output)) return false;
  const std::uint64_t seg = proof.iterations / proof.checkpoints.size();
  const std::size_t n = proof.checkpoints.size();
  for (std::size_t i = 0; i < samples; ++i) {
    const auto idx = static_cast<std::size_t>(rng.uniform(n));
    const Hash256& start = idx == 0 ? proof.input : proof.checkpoints[idx - 1];
    if (!(run_segment(start, seg) == proof.checkpoints[idx])) return false;
  }
  return true;
}

}  // namespace jenga::crypto
