// Binary SHA-256 Merkle tree: roots, inclusion proofs, verification.
//
// Block headers commit to their transaction list through a Merkle root;
// light-client style state grants could carry inclusion proofs.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace jenga::crypto {

/// Merkle root of a list of leaf digests.  Empty list hashes to a fixed
/// domain-separated sentinel; odd levels duplicate the last node (Bitcoin
/// style).  Leaves and interior nodes use distinct domain tags, preventing
/// second-preimage tricks that splice a leaf as an interior node.
[[nodiscard]] Hash256 merkle_root(const std::vector<Hash256>& leaves);

struct MerkleStep {
  Hash256 sibling;
  bool sibling_on_left = false;
};

using MerkleProof = std::vector<MerkleStep>;

/// Inclusion proof for leaf `index`.  Index must be < leaves.size().
[[nodiscard]] MerkleProof merkle_prove(const std::vector<Hash256>& leaves, std::size_t index);

[[nodiscard]] bool merkle_verify(const Hash256& root, const Hash256& leaf,
                                 const MerkleProof& proof);

/// The leaf-level hash applied to raw leaf data before tree construction.
[[nodiscard]] Hash256 merkle_leaf_hash(const Hash256& data);

}  // namespace jenga::crypto
