// Tiny leveled logger.  Simulation code logs with the simulated timestamp.
//
// The format string is checked at compile time (printf attribute), and the
// sink is redirectable: tests capture log output by installing a sink with
// set_log_sink(), benches can route it into a file, and an empty sink
// restores the default (stderr).
#pragma once

#include <functional>
#include <string>

#if defined(__GNUC__) || defined(__clang__)
#define JENGA_PRINTF_ATTR(fmt_idx, first_arg) \
  __attribute__((format(printf, fmt_idx, first_arg)))
#else
#define JENGA_PRINTF_ATTR(fmt_idx, first_arg)
#endif

namespace jenga {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; defaults to kWarn so tests/benches stay quiet.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Installs a log sink; all formatted lines go through it instead of stderr.
/// Pass an empty function to restore the default stderr sink.
using LogSink = std::function<void(LogLevel, const std::string&)>;
void set_log_sink(LogSink sink);

/// Formats and emits one line if `level` passes the threshold.  The format
/// string is validated against the arguments at compile time.
void log_at(LogLevel level, const char* fmt, ...) JENGA_PRINTF_ATTR(2, 3);

#define JENGA_LOG_DEBUG(...) ::jenga::log_at(::jenga::LogLevel::kDebug, __VA_ARGS__)
#define JENGA_LOG_INFO(...) ::jenga::log_at(::jenga::LogLevel::kInfo, __VA_ARGS__)
#define JENGA_LOG_WARN(...) ::jenga::log_at(::jenga::LogLevel::kWarn, __VA_ARGS__)
#define JENGA_LOG_ERROR(...) ::jenga::log_at(::jenga::LogLevel::kError, __VA_ARGS__)

}  // namespace jenga
