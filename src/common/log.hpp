// Tiny leveled logger.  Simulation code logs with the simulated timestamp.
#pragma once

#include <cstdio>
#include <string>

namespace jenga {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; defaults to kWarn so tests/benches stay quiet.
LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void log_line(LogLevel level, const std::string& msg);
}

template <typename... Args>
void log_at(LogLevel level, const char* fmt, Args... args) {
  if (level < log_level()) return;
  char buf[1024];
  std::snprintf(buf, sizeof(buf), fmt, args...);
  detail::log_line(level, buf);
}

#define JENGA_LOG_DEBUG(...) ::jenga::log_at(::jenga::LogLevel::kDebug, __VA_ARGS__)
#define JENGA_LOG_INFO(...) ::jenga::log_at(::jenga::LogLevel::kInfo, __VA_ARGS__)
#define JENGA_LOG_WARN(...) ::jenga::log_at(::jenga::LogLevel::kWarn, __VA_ARGS__)
#define JENGA_LOG_ERROR(...) ::jenga::log_at(::jenga::LogLevel::kError, __VA_ARGS__)

}  // namespace jenga
