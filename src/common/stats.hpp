// Cross-system experiment statistics (shared by Jenga and the baselines).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace jenga {

/// Transaction-level outcomes and latency accounting.
struct TxStats {
  std::uint64_t submitted = 0;
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
  /// Admission-layer outcomes (0 on legacy closed-loop runs, which submit
  /// straight into the system).  Rejected/expired transactions never entered
  /// the pipeline: they carry no commit latency and are excluded from the
  /// quantiles below, which sample committed transactions only.
  std::uint64_t rejected = 0;  // terminally refused (reason-coded at the client)
  std::uint64_t expired = 0;   // TTL lapsed in the pool or on arrival
  SimTime total_commit_latency = 0;  // Σ (commit_time - submit_time)
  SimTime first_submit_time = 0;
  SimTime last_commit_time = 0;
  std::uint64_t fees_charged = 0;
  /// Per-transaction commit latencies (same samples that sum to
  /// total_commit_latency); kept so chaos/resilience runs can report tail
  /// percentiles, which averages hide.
  std::vector<SimTime> commit_latencies;

  [[nodiscard]] double tps() const {
    const SimTime span = last_commit_time - first_submit_time;
    if (span <= 0) return 0.0;
    return static_cast<double>(committed) /
           (static_cast<double>(span) / static_cast<double>(kSecond));
  }

  [[nodiscard]] double avg_latency_seconds() const {
    if (committed == 0) return 0.0;
    return static_cast<double>(total_commit_latency) /
           (static_cast<double>(committed) * static_cast<double>(kSecond));
  }

  /// q in [0,1]; e.g. 0.5 for the median, 0.99 for p99.  Single-quantile
  /// selection via nth_element — no full sort, no repeated re-sorting.
  [[nodiscard]] double latency_quantile_seconds(double q) const {
    if (commit_latencies.empty()) return 0.0;
    std::vector<SimTime> samples = commit_latencies;
    const double pos = q * static_cast<double>(samples.size() - 1);
    const std::size_t idx = static_cast<std::size_t>(pos);
    std::nth_element(samples.begin(), samples.begin() + static_cast<std::ptrdiff_t>(idx),
                     samples.end());
    const SimTime lo = samples[idx];
    const double frac = pos - static_cast<double>(idx);
    if (frac <= 0.0 || idx + 1 >= samples.size())
      return static_cast<double>(lo) / static_cast<double>(kSecond);
    // The next order statistic is the minimum of the partition above idx.
    const SimTime hi = *std::min_element(samples.begin() + static_cast<std::ptrdiff_t>(idx) + 1,
                                         samples.end());
    return (static_cast<double>(lo) * (1.0 - frac) + static_cast<double>(hi) * frac) /
           static_cast<double>(kSecond);
  }

  /// Batch variant: sorts the samples once and reads every requested quantile
  /// from the same order — use this when reporting p50/p99 side by side.
  [[nodiscard]] std::vector<double> latency_quantiles_seconds(
      const std::vector<double>& qs) const {
    std::vector<double> out(qs.size(), 0.0);
    if (commit_latencies.empty()) return out;
    std::vector<SimTime> sorted = commit_latencies;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < qs.size(); ++i) {
      const double pos = std::clamp(qs[i], 0.0, 1.0) * static_cast<double>(sorted.size() - 1);
      const std::size_t idx = static_cast<std::size_t>(pos);
      const SimTime lo = sorted[idx];
      const SimTime hi = sorted[std::min(idx + 1, sorted.size() - 1)];
      const double frac = pos - static_cast<double>(idx);
      out[i] = (static_cast<double>(lo) * (1.0 - frac) + static_cast<double>(hi) * frac) /
               static_cast<double>(kSecond);
    }
    return out;
  }
};

/// Per-node storage accounting at the end of a run.
struct StorageReport {
  std::uint64_t chain_bytes_per_node = 0;   // this node's shard chain
  std::uint64_t state_bytes_per_node = 0;   // this node's state partition
  std::uint64_t logic_bytes_per_node = 0;   // contract logic the node holds
  std::uint64_t extra_bytes_per_node = 0;   // merged-shard overhead (Pyramid)

  [[nodiscard]] std::uint64_t total() const {
    return chain_bytes_per_node + state_bytes_per_node + logic_bytes_per_node +
           extra_bytes_per_node;
  }
};

}  // namespace jenga
