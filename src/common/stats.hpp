// Cross-system experiment statistics (shared by Jenga and the baselines).
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace jenga {

/// Transaction-level outcomes and latency accounting.
struct TxStats {
  std::uint64_t submitted = 0;
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
  SimTime total_commit_latency = 0;  // Σ (commit_time - submit_time)
  SimTime first_submit_time = 0;
  SimTime last_commit_time = 0;
  std::uint64_t fees_charged = 0;

  [[nodiscard]] double tps() const {
    const SimTime span = last_commit_time - first_submit_time;
    if (span <= 0) return 0.0;
    return static_cast<double>(committed) /
           (static_cast<double>(span) / static_cast<double>(kSecond));
  }

  [[nodiscard]] double avg_latency_seconds() const {
    if (committed == 0) return 0.0;
    return static_cast<double>(total_commit_latency) /
           (static_cast<double>(committed) * static_cast<double>(kSecond));
  }
};

/// Per-node storage accounting at the end of a run.
struct StorageReport {
  std::uint64_t chain_bytes_per_node = 0;   // this node's shard chain
  std::uint64_t state_bytes_per_node = 0;   // this node's state partition
  std::uint64_t logic_bytes_per_node = 0;   // contract logic the node holds
  std::uint64_t extra_bytes_per_node = 0;   // merged-shard overhead (Pyramid)

  [[nodiscard]] std::uint64_t total() const {
    return chain_bytes_per_node + state_bytes_per_node + logic_bytes_per_node +
           extra_bytes_per_node;
  }
};

}  // namespace jenga
