// Deterministic random number generation for the whole system.
//
// Every source of randomness in a simulation run (node keys, epoch
// randomness, workload draws, network jitter) derives from a single master
// seed via named sub-streams, so any experiment replays bit-identically.
#pragma once

#include <cstdint>
#include <string_view>

namespace jenga {

/// SplitMix64: used for seeding and cheap hashing of seeds.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality PRNG.  Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0xC0FFEE) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    for (auto& word : s_) word = splitmix64(seed);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound).  bound must be > 0.
  std::uint64_t uniform(std::uint64_t bound) {
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(uniform(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform01() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return uniform01() < p; }

  /// Geometric-ish positive integer with given mean (>= 1).
  std::uint64_t geometric_mean(double mean);

  /// Truncated normal sample, clamped to [lo, hi].
  double normal(double mean, double stddev);

  /// Derive an independent child stream named by a label (order-insensitive).
  [[nodiscard]] Rng fork(std::string_view label) const;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
};

}  // namespace jenga
