// Minimal Result<T, E>: value-or-error return type used by fallible APIs.
//
// C++20 has no std::expected; this is a small, assert-checked subset of it.
// Programmer errors (accessing the wrong alternative) abort in all builds.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <variant>

namespace jenga {

template <typename E>
class Err {
 public:
  explicit Err(E e) : error_(std::move(e)) {}
  E& get() { return error_; }
  const E& get() const { return error_; }

 private:
  E error_;
};

template <typename E>
Err(E) -> Err<E>;

template <typename T, typename E = std::string>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): intentional, mirrors expected.
  Result(T value) : storage_(std::in_place_index<0>, std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Err<E> err) : storage_(std::in_place_index<1>, std::move(err.get())) {}

  [[nodiscard]] bool ok() const { return storage_.index() == 0; }
  explicit operator bool() const { return ok(); }

  T& value() & {
    check(ok(), "Result::value() on error");
    return std::get<0>(storage_);
  }
  const T& value() const& {
    check(ok(), "Result::value() on error");
    return std::get<0>(storage_);
  }
  T&& value() && {
    check(ok(), "Result::value() on error");
    return std::get<0>(std::move(storage_));
  }

  E& error() & {
    check(!ok(), "Result::error() on value");
    return std::get<1>(storage_);
  }
  const E& error() const& {
    check(!ok(), "Result::error() on value");
    return std::get<1>(storage_);
  }

  T value_or(T fallback) const& { return ok() ? std::get<0>(storage_) : std::move(fallback); }

 private:
  static void check(bool cond, const char* msg) {
    if (!cond) {
      std::fprintf(stderr, "fatal: %s\n", msg);
      std::abort();
    }
  }

  std::variant<T, E> storage_;
};

/// Result specialization-alike for operations with no value on success.
template <typename E = std::string>
class Status {
 public:
  Status() = default;
  // NOLINTNEXTLINE(google-explicit-constructor)
  Status(Err<E> err) : error_(std::move(err.get())), has_error_(true) {}

  [[nodiscard]] bool ok() const { return !has_error_; }
  explicit operator bool() const { return ok(); }

  const E& error() const {
    if (!has_error_) {
      std::fprintf(stderr, "fatal: Status::error() on ok\n");
      std::abort();
    }
    return error_;
  }

 private:
  E error_{};
  bool has_error_ = false;
};

}  // namespace jenga
