#include "common/rng.hpp"

#include <cmath>

namespace jenga {

std::uint64_t Rng::geometric_mean(double mean) {
  if (mean <= 1.0) return 1;
  const double p = 1.0 / mean;
  // Inverse-CDF sampling of Geometric(p) supported on {1, 2, ...}.
  double u = uniform01();
  if (u >= 1.0) u = std::nextafter(1.0, 0.0);
  auto k = static_cast<std::uint64_t>(std::ceil(std::log1p(-u) / std::log1p(-p)));
  return k == 0 ? 1 : k;
}

double Rng::normal(double mean, double stddev) {
  // Box–Muller; one sample per call keeps the stream position predictable.
  double u1 = uniform01();
  double u2 = uniform01();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(2.0 * M_PI * u2);
}

Rng Rng::fork(std::string_view label) const {
  // Hash the current state together with the label into a fresh seed.
  std::uint64_t h = 0x6a09e667f3bcc908ULL;
  for (auto word : s_) {
    std::uint64_t x = word;
    h ^= splitmix64(x);
    h = (h << 13) | (h >> 51);
  }
  for (char c : label) {
    std::uint64_t x = h ^ static_cast<std::uint8_t>(c);
    h = splitmix64(x) + 0x9E3779B97F4A7C15ULL * static_cast<std::uint8_t>(c);
  }
  return Rng(h);
}

}  // namespace jenga
