// Hex encoding/decoding for byte spans and Hash256.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace jenga {

/// Lower-case hex encoding of an arbitrary byte span.
[[nodiscard]] std::string to_hex(std::span<const std::uint8_t> data);

/// Hex encoding of a digest.
[[nodiscard]] std::string to_hex(const Hash256& h);

/// Decodes a hex string (with or without "0x" prefix).  Returns nullopt on
/// odd length or non-hex characters.
[[nodiscard]] std::optional<std::vector<std::uint8_t>> from_hex(std::string_view hex);

/// Decodes exactly 32 bytes of hex into a digest.
[[nodiscard]] std::optional<Hash256> hash_from_hex(std::string_view hex);

}  // namespace jenga
