// Byte-oriented serialization codec.
//
// Fixed-width little-endian integers plus length-prefixed containers.  Used
// for hashing protocol objects canonically and for charging realistic wire
// sizes in the network simulator.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/types.hpp"

namespace jenga {

class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { put_le(v); }
  void u32(std::uint32_t v) { put_le(v); }
  void u64(std::uint64_t v) { put_le(v); }
  void i64(std::int64_t v) { put_le(static_cast<std::uint64_t>(v)); }

  void bytes(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  /// Length-prefixed (u32) blob.
  void blob(std::span<const std::uint8_t> data) {
    u32(static_cast<std::uint32_t>(data.size()));
    bytes(data);
  }

  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  void hash(const Hash256& h) { bytes(std::span(h.bytes)); }

  template <typename Tag, typename Rep>
  void id(StrongId<Tag, Rep> v) {
    if constexpr (sizeof(Rep) == 4)
      u32(static_cast<std::uint32_t>(v.value));
    else
      u64(static_cast<std::uint64_t>(v.value));
  }

  [[nodiscard]] const std::vector<std::uint8_t>& data() const { return buf_; }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  template <typename T>
  void put_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i)
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  std::vector<std::uint8_t> buf_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] bool failed() const { return failed_; }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool exhausted() const { return remaining() == 0; }

  std::uint8_t u8() { return take_le<std::uint8_t>(); }
  std::uint16_t u16() { return take_le<std::uint16_t>(); }
  std::uint32_t u32() { return take_le<std::uint32_t>(); }
  std::uint64_t u64() { return take_le<std::uint64_t>(); }
  std::int64_t i64() { return static_cast<std::int64_t>(take_le<std::uint64_t>()); }

  std::vector<std::uint8_t> blob() {
    auto n = u32();
    std::vector<std::uint8_t> out;
    if (failed_ || remaining() < n) {
      failed_ = true;
      return out;
    }
    out.assign(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
               data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }

  std::string str() {
    auto b = blob();
    return {b.begin(), b.end()};
  }

  Hash256 hash() {
    Hash256 h;
    if (remaining() < 32) {
      failed_ = true;
      return h;
    }
    std::memcpy(h.bytes.data(), data_.data() + pos_, 32);
    pos_ += 32;
    return h;
  }

  template <typename Id>
  Id id() {
    using Rep = decltype(Id{}.value);
    if constexpr (sizeof(Rep) == 4)
      return Id{static_cast<Rep>(u32())};
    else
      return Id{static_cast<Rep>(u64())};
  }

 private:
  template <typename T>
  T take_le() {
    if (remaining() < sizeof(T)) {
      failed_ = true;
      return T{};
    }
    T v{};
    for (std::size_t i = 0; i < sizeof(T); ++i)
      v = static_cast<T>(v | (static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i)));
    pos_ += sizeof(T);
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace jenga
