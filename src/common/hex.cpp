#include "common/hex.hpp"

namespace jenga {
namespace {

constexpr char kDigits[] = "0123456789abcdef";

int nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string to_hex(std::span<const std::uint8_t> data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (auto b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xF]);
  }
  return out;
}

std::string to_hex(const Hash256& h) { return to_hex(std::span(h.bytes)); }

std::optional<std::vector<std::uint8_t>> from_hex(std::string_view hex) {
  if (hex.starts_with("0x") || hex.starts_with("0X")) hex.remove_prefix(2);
  if (hex.size() % 2 != 0) return std::nullopt;
  std::vector<std::uint8_t> out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    int hi = nibble(hex[i]);
    int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

std::optional<Hash256> hash_from_hex(std::string_view hex) {
  auto bytes = from_hex(hex);
  if (!bytes || bytes->size() != 32) return std::nullopt;
  Hash256 h;
  std::copy(bytes->begin(), bytes->end(), h.bytes.begin());
  return h;
}

}  // namespace jenga
