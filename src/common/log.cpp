#include "common/log.hpp"

#include <atomic>
#include <cstdarg>
#include <cstdio>

namespace jenga {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
LogSink g_sink;  // empty -> stderr

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }
void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

void set_log_sink(LogSink sink) { g_sink = std::move(sink); }

void log_at(LogLevel level, const char* fmt, ...) {
  if (level < log_level()) return;
  char buf[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (g_sink) {
    g_sink(level, buf);
  } else {
    std::fprintf(stderr, "[%s] %s\n", level_name(level), buf);
  }
}

}  // namespace jenga
