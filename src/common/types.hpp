// Core strong types shared by every Jenga module.
//
// The simulator, ledger and protocol layers all speak in terms of these
// identifiers.  They are deliberately thin wrappers over integers so that the
// compiler rejects category errors (passing a ShardId where a ChannelId is
// expected) without any runtime cost.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <cstring>
#include <functional>
#include <string>

namespace jenga {

/// Simulated time in microseconds since simulation start.
using SimTime = std::int64_t;

inline constexpr SimTime kMicrosecond = 1;
inline constexpr SimTime kMillisecond = 1000 * kMicrosecond;
inline constexpr SimTime kSecond = 1000 * kMillisecond;

/// A 256-bit digest (SHA-256 output, transaction / block / contract ids).
struct Hash256 {
  std::array<std::uint8_t, 32> bytes{};

  constexpr auto operator<=>(const Hash256&) const = default;

  /// First 8 bytes interpreted as a big-endian integer; used for cheap
  /// modular placement decisions (shard-of-contract, channel-of-tx).
  [[nodiscard]] std::uint64_t prefix_u64() const {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | bytes[static_cast<std::size_t>(i)];
    return v;
  }

  [[nodiscard]] bool is_zero() const {
    for (auto b : bytes)
      if (b != 0) return false;
    return true;
  }
};

/// Strongly-typed integer id.  `Tag` distinguishes unrelated id spaces.
template <typename Tag, typename Rep = std::uint32_t>
struct StrongId {
  Rep value{};

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep v) : value(v) {}

  constexpr auto operator<=>(const StrongId&) const = default;
};

struct NodeTag {};
struct ShardTag {};
struct ChannelTag {};
struct AccountTag {};
struct ContractTag {};
struct EpochTag {};

/// Global node index in [0, N).
using NodeId = StrongId<NodeTag>;
/// State shard index in [0, S).
using ShardId = StrongId<ShardTag>;
/// Execution channel index in [0, S).
using ChannelId = StrongId<ChannelTag>;
/// Client account id.
using AccountId = StrongId<AccountTag, std::uint64_t>;
/// Smart contract id (derived from deploy-tx hash in the real system; a dense
/// index in the simulator for O(1) lookup).
using ContractId = StrongId<ContractTag, std::uint64_t>;
/// Reshuffle epoch counter.
using EpochId = StrongId<EpochTag, std::uint64_t>;

/// Block height within one shard's chain.
using BlockHeight = std::uint64_t;

}  // namespace jenga

namespace std {

template <>
struct hash<jenga::Hash256> {
  size_t operator()(const jenga::Hash256& h) const noexcept {
    size_t v = 0;
    std::memcpy(&v, h.bytes.data(), sizeof(v));
    return v;
  }
};

template <typename Tag, typename Rep>
struct hash<jenga::StrongId<Tag, Rep>> {
  size_t operator()(const jenga::StrongId<Tag, Rep>& id) const noexcept {
    return std::hash<Rep>{}(id.value);
  }
};

}  // namespace std
