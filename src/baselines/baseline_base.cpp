#include "baselines/baseline_base.hpp"

#include <algorithm>

#include "consensus/messages.hpp"
#include "crypto/sha256.hpp"
#include "ledger/placement.hpp"

namespace jenga::baselines {
namespace {

using core::TwoPcPayload;
using core::TxPayload;
using ledger::Transaction;
using ledger::TxKind;

constexpr std::uint64_t kBaselineGroupTag = 0xBA5E0000ULL;

/// Work item carrier between shards.
struct ItemPayload : sim::Payload {
  WorkItem item;
};

/// What a shard's consensus decides on.
struct BlockPayload : sim::Payload {
  ShardId shard;
  std::vector<WorkItem> items;
};

}  // namespace

Hash256 WorkItem::dedup_key() const {
  crypto::Sha256 h;
  h.update("jenga/baseline-item");
  h.update(tx ? tx->hash : Hash256{});
  h.update_u64(static_cast<std::uint64_t>(kind));
  h.update_u64(stage);
  h.update_u64(aux);
  h.update_u64(retry);
  h.update_u64(ok ? 1 : 0);
  return h.finish();
}

struct BaselineSystem::App final : consensus::BftApp {
  BaselineSystem* sys = nullptr;
  Shard* shard = nullptr;
  NodeId node;

  std::optional<consensus::ConsensusValue> propose(std::uint64_t height) override {
    return sys->propose(*shard, height);
  }
  bool validate(std::uint64_t, const consensus::ConsensusValue&) override { return true; }
  void on_decide(std::uint64_t height, const consensus::ConsensusValue& value,
                 const consensus::QuorumCert&) override {
    sys->decide(*shard, node, height, value);
  }
};

BaselineSystem::BaselineSystem(sim::Simulator& sim, sim::Network& net, BaselineConfig config,
                               Genesis genesis)
    : sim_(sim), net_(net), config_(config), genesis_(std::move(genesis)) {
  exec::EngineOptions eo;
  eo.workers = config_.exec_workers;
  exec_engine_ = std::make_unique<exec::Engine>(eo);

  for (std::uint32_t s = 0; s < config_.num_shards; ++s)
    shards_.push_back(std::make_unique<Shard>(ShardId{s}));

  for (std::uint64_t a = 0; a < genesis_.num_accounts; ++a) {
    const ShardId s = ledger::shard_of_account(AccountId{a}, config_.num_shards);
    shards_[s.value]->store.create_account(AccountId{a}, genesis_.initial_balance);
  }
  // Contract state/logic placement is system-specific: concrete systems call
  // place_contracts() from their constructors after home_of_contract() is
  // meaningful for them.

  const std::uint32_t n = config_.num_shards * config_.nodes_per_shard;
  replicas_.resize(n);
  apps_.resize(n);
  std::vector<std::shared_ptr<consensus::BftConfig>> cfg(config_.num_shards);
  for (std::uint32_t g = 0; g < config_.num_shards; ++g) {
    auto bc = std::make_shared<consensus::BftConfig>();
    for (std::uint32_t i = 0; i < config_.nodes_per_shard; ++i)
      bc->members.push_back(NodeId{g * config_.nodes_per_shard + i});
    bc->group_tag = kBaselineGroupTag | g;
    bc->crypto_seed = config_.seed ^ (0xBA5E0000ULL + g);
    bc->view_timeout = config_.view_timeout;
    cfg[g] = std::move(bc);
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    const NodeId node{i};
    const ShardId s = shard_of_node(node);
    auto app = std::make_unique<App>();
    app->sys = this;
    app->shard = shards_[s.value].get();
    app->node = node;
    replicas_[i] = std::make_unique<consensus::Replica>(net_, node, cfg[s.value], *app);
    apps_[i] = std::move(app);
    net_.register_node(node, [this, node](const sim::Message& m) { on_node_message(node, m); });
  }
}

BaselineSystem::~BaselineSystem() = default;

void BaselineSystem::place_contracts() {
  for (std::size_t c = 0; c < genesis_.contracts.size(); ++c) {
    const ContractId id = genesis_.contracts[c]->id;
    const ShardId s = home_of_contract(id);
    shards_[s.value]->store.create_contract_state(
        id, c < genesis_.initial_states.size() ? genesis_.initial_states[c]
                                               : ledger::ContractState{});
    shards_[s.value]->logic.add(genesis_.contracts[c]);
  }
}

void BaselineSystem::start() {
  for (auto& r : replicas_) r->start();
}

std::vector<ShardId> BaselineSystem::involved_shards(const Transaction& tx) const {
  std::vector<ShardId> out;
  auto add = [&out](ShardId s) {
    if (std::find(out.begin(), out.end(), s) == out.end()) out.push_back(s);
  };
  if (tx.kind == TxKind::kTransfer) {
    add(home_of_account(tx.sender));
    add(home_of_account(tx.to));
    return out;
  }
  for (auto c : tx.contracts) add(home_of_contract(c));
  for (auto a : tx.accounts) add(home_of_account(a));
  return out;
}

ShardId BaselineSystem::home_of_contract(ContractId c) const {
  return ledger::shard_of_contract(c, config_.num_shards);
}
ShardId BaselineSystem::home_of_account(AccountId a) const {
  return ledger::shard_of_account(a, config_.num_shards);
}

NodeId BaselineSystem::contact(ShardId s) const {
  return NodeId{s.value * config_.nodes_per_shard +
                static_cast<std::uint32_t>(contact_rr_ % config_.nodes_per_shard)};
}

void BaselineSystem::set_telemetry(telemetry::Telemetry* t) {
  telemetry_ = t;
  exec_engine_->set_metrics(t == nullptr ? nullptr : &t->registry);
  for (auto& r : replicas_)
    if (r) r->set_telemetry(t);
}

void BaselineSystem::submit(TxPtr tx) {
  const SimTime now = sim_.now();
  ++stats_.submitted;
  if (stats_.first_submit_time == 0 && stats_.submitted == 1) stats_.first_submit_time = now;
  const auto involved = involved_shards(*tx);
  tracker_[tx->hash] = TrackEntry{now, static_cast<std::uint32_t>(involved.size()), false};
  if (telemetry_ != nullptr) telemetry_->tracer.on_submit(tx->hash, now);
  ++contact_rr_;

  WorkItem item;
  item.tx = tx;
  ShardId target;
  if (tx->kind == TxKind::kTransfer) {
    item.kind = WorkItem::Kind::kTransfer;
    item.stage = 0;
    target = home_of_account(tx->sender);
  } else {
    std::tie(target, item) = classify_tx(tx);
  }

  auto payload = std::make_shared<ItemPayload>();
  payload->item = std::move(item);
  sim::Message msg;
  msg.type = sim::MsgType::kClientTx;
  msg.size_bytes = tx->wire_size();
  msg.payload = std::move(payload);
  net_.client_send(contact(target), msg);
}

void BaselineSystem::enqueue(Shard& shard, WorkItem item) {
  const Hash256 key = item.dedup_key();
  if (shard.seen.contains(key)) return;
  shard.seen.insert(key);
  shard.queue.push_back(std::move(item));
}

void BaselineSystem::send_cross(NodeId from, ShardId source, ShardId target, WorkItem item) {
  if (source == target) {
    enqueue(*shards_[target.value], std::move(item));
    return;
  }
  auto payload = std::make_shared<ItemPayload>();
  const std::uint32_t size = item.wire_size();
  payload->item = std::move(item);
  sim::Message msg;
  msg.type = sim::MsgType::kSubTxResult;
  msg.from = from;
  msg.size_bytes = size;
  msg.payload = std::move(payload);

  if (config_.cross_mode == CrossShardMode::kClientRelay) {
    net_.send_via_relay(from, contact(target), msg, sim::TrafficClass::kCrossShard);
    return;
  }
  // Quorum broadcast: f+1 source members each multicast to every target
  // member, so at least one honest sender reaches everyone.
  const std::uint32_t f = (config_.nodes_per_shard - 1) / 3;
  std::vector<NodeId> targets;
  for (std::uint32_t i = 0; i < config_.nodes_per_shard; ++i)
    targets.push_back(NodeId{target.value * config_.nodes_per_shard + i});
  for (std::uint32_t s = 0; s <= f; ++s) {
    const NodeId sender{source.value * config_.nodes_per_shard + s};
    sim::Message copy = msg;
    copy.from = sender;
    net_.multicast(sender, targets, copy, sim::TrafficClass::kCrossShard);
  }
}

void BaselineSystem::on_node_message(NodeId node, const sim::Message& msg) {
  switch (msg.type) {
    case sim::MsgType::kClientTx:
    case sim::MsgType::kSubTxResult: {
      const auto& p = sim::payload_as<ItemPayload>(msg);
      enqueue(*shards_[shard_of_node(node).value], p.item);
      return;
    }
    default:
      break;
  }
  replicas_[node.value]->on_message(msg);
}

std::optional<consensus::ConsensusValue> BaselineSystem::propose(Shard& shard,
                                                                 std::uint64_t height) {
  if (shard.queue.empty()) return std::nullopt;
  auto payload = std::make_shared<BlockPayload>();
  payload->shard = shard.id;
  std::uint32_t size = 128;
  crypto::Sha256 digest;
  digest.update("jenga/baseline-block");
  digest.update_u64(kBaselineGroupTag | shard.id.value);
  digest.update_u64(height);
  for (std::size_t i = 0; i < shard.queue.size() && i < config_.max_block_items; ++i) {
    payload->items.push_back(shard.queue[i]);
    size += shard.queue[i].wire_size();
    digest.update(shard.queue[i].dedup_key());
  }
  consensus::ConsensusValue v;
  v.digest = digest.finish();
  v.size_bytes = size;
  for (const WorkItem& item : payload->items) {
    const bool executes =
        item.kind == WorkItem::Kind::kStepExec || item.kind == WorkItem::Kind::kExec;
    v.exec_delay += executes ? core::kExecItemCpu : core::kLightItemCpu;
  }
  v.data = std::move(payload);
  return v;
}

void BaselineSystem::decide(Shard& shard, NodeId node, std::uint64_t height,
                            const consensus::ConsensusValue& value) {
  const auto* payload = dynamic_cast<const BlockPayload*>(value.data.get());
  if (payload == nullptr) return;
  if (height < shard.next_process_height) return;  // engine processed already
  shard.next_process_height = height + 1;

  BlockCtx ctx;

  // Exec-kind items are gathered into conflict-free segments and executed as
  // one engine batch.  The serial prologue (prepare) and the effect side
  // (finish) both run in canonical block order on this thread; a segment is
  // flushed before any non-exec item and before any item whose declared
  // footprint (or tx identity) overlaps one already in flight, so the block's
  // observable effects are exactly those of item-by-item processing.
  struct SegEntry {
    const WorkItem* item;
    PreparedExec prep;
    exec::AccessSet access;
  };
  std::vector<SegEntry> segment;
  auto flush_segment = [&]() {
    if (segment.empty()) return;
    std::vector<exec::Task> tasks;
    std::vector<std::size_t> slot;
    for (std::size_t i = 0; i < segment.size(); ++i) {
      if (segment[i].prep.action != PreparedExec::Action::kRun) continue;
      tasks.push_back(std::move(segment[i].prep.task));
      slot.push_back(i);
    }
    std::vector<exec::TaskResult> results = exec_engine_->run_batch(std::move(tasks));
    std::vector<exec::TaskResult*> res_for(segment.size(), nullptr);
    for (std::size_t k = 0; k < results.size(); ++k) res_for[slot[k]] = &results[k];
    for (std::size_t i = 0; i < segment.size(); ++i)
      finish_exec(shard, node, *segment[i].item, segment[i].prep, res_for[i], ctx);
    segment.clear();
  };

  for (const WorkItem& item : payload->items) {
    if (telemetry_ != nullptr && item.tx) {
      // Classify the decided item onto the shared phase partition so the
      // latency-breakdown benches compare baselines against Jenga like for
      // like: state movement/locking, execution, commit application.
      telemetry::Phase ph;
      switch (item.kind) {
        case WorkItem::Kind::kMoveOut: ph = telemetry::Phase::kStateLock; break;
        case WorkItem::Kind::kStepExec:
        case WorkItem::Kind::kExec: ph = telemetry::Phase::kExecute; break;
        case WorkItem::Kind::kCommit: ph = telemetry::Phase::kCommitApply; break;
        case WorkItem::Kind::kTransfer:
          ph = item.stage == 0   ? telemetry::Phase::kStateLock
               : item.stage == 1 ? telemetry::Phase::kExecute
                                 : telemetry::Phase::kCommitApply;
          break;
        default: ph = telemetry::Phase::kExecute; break;
      }
      telemetry_->tracer.phase_event(item.tx->hash, ph, shard.id.value, sim_.now());
    }
    if (item.tx && is_exec_item(item)) {
      exec::AccessSet access = exec::declared_access(*item.tx);
      access.writes.push_back(exec::tx_key(item.tx->hash));
      access.normalize();
      const bool clashes =
          std::any_of(segment.begin(), segment.end(),
                      [&](const SegEntry& e) { return exec::conflicts(access, e.access); });
      if (clashes) flush_segment();
      SegEntry entry;
      entry.item = &item;
      entry.prep = prepare_exec(shard, item);
      entry.access = std::move(access);
      segment.push_back(std::move(entry));
      continue;
    }
    flush_segment();
    if (item.kind == WorkItem::Kind::kTransfer) {
      process_transfer(shard, node, item, ctx);
    } else {
      process_item(shard, node, item, ctx);
    }
  }
  flush_segment();
  for (std::size_t i = 0; i < payload->items.size(); ++i) shard.queue.pop_front();

  if (!ctx.committed.empty()) {
    shard.chain.append(ledger::build_block(shard.id, shard.chain.height(),
                                           shard.chain.tip_hash(), std::move(ctx.committed),
                                           ctx.body_bytes, sim_.now()));
  }
}

void BaselineSystem::apply_commit(Shard& shard, const WorkItem& item, BlockCtx& ctx) {
  const Transaction& tx = *item.tx;
  for (auto c : tx.contracts)
    if (home_of_contract(c) == shard.id) shard.locks.unlock_contract(c, tx.hash);
  for (auto a : tx.accounts)
    if (home_of_account(a) == shard.id) shard.locks.unlock_account(a, tx.hash);

  const auto buffered = shard.buffered.find(tx.hash);
  if (item.ok) {
    if (buffered != shard.buffered.end()) {
      for (const auto& [c, st] : buffered->second.contracts)
        shard.store.set_contract_state(c, st);
      for (const auto& [a, bal] : buffered->second.balances) shard.store.set_balance(a, bal);
    }
    // Updates carried in the item itself (Single Shard's move-back).
    for (const auto& [c, st] : item.state.contracts) shard.store.set_contract_state(c, st);
    for (const auto& [a, bal] : item.state.balances) shard.store.set_balance(a, bal);
    ctx.committed.push_back(tx.hash);
    ctx.body_bytes += tx.wire_size();
  }
  if (buffered != shard.buffered.end()) shard.buffered.erase(buffered);

  // Fee charged by the sender's shard on both outcomes (paper §V-C).
  if (home_of_account(tx.sender) == shard.id) {
    const std::uint64_t bal = shard.store.balance(tx.sender).value_or(0);
    const std::uint64_t charge = std::min(bal, tx.fee);
    shard.store.set_balance(tx.sender, bal - charge);
    stats_.fees_charged += charge;
  }
  tx_shard_finished(tx.hash, item.ok);
}

void BaselineSystem::broadcast_commit(Shard& from_shard, NodeId decider, const TxPtr& tx,
                                      bool ok) {
  for (ShardId target : involved_shards(*tx)) {
    WorkItem commit;
    commit.kind = WorkItem::Kind::kCommit;
    commit.tx = tx;
    commit.ok = ok;
    if (target == from_shard.id) {
      enqueue(from_shard, std::move(commit));
    } else {
      send_cross(decider, from_shard.id, target, std::move(commit));
    }
  }
}

void BaselineSystem::process_transfer(Shard& shard, NodeId decider, const WorkItem& item,
                                      BlockCtx& ctx) {
  const Transaction& tx = *item.tx;
  const ShardId dest = home_of_account(tx.to);
  switch (item.stage) {
    case 0: {
      const auto bal = shard.store.balance(tx.sender);
      if (!bal || *bal < tx.amount) {
        tx_shard_finished(tx.hash, false);
        if (dest != shard.id) tx_shard_finished(tx.hash, false);
        break;
      }
      shard.store.set_balance(tx.sender, *bal - tx.amount);
      if (dest == shard.id) {
        shard.store.set_balance(tx.to, shard.store.balance(tx.to).value_or(0) + tx.amount);
        ctx.committed.push_back(tx.hash);
        ctx.body_bytes += tx.wire_size();
        tx_shard_finished(tx.hash, true);
      } else {
        WorkItem next = item;
        next.stage = 1;
        send_cross(decider, shard.id, dest, std::move(next));
      }
      break;
    }
    case 1: {
      shard.store.set_balance(tx.to, shard.store.balance(tx.to).value_or(0) + tx.amount);
      ctx.committed.push_back(tx.hash);
      ctx.body_bytes += tx.wire_size();
      tx_shard_finished(tx.hash, true);
      WorkItem ack = item;
      ack.stage = 2;
      send_cross(decider, shard.id, home_of_account(tx.sender), std::move(ack));
      break;
    }
    case 2: {
      ctx.committed.push_back(tx.hash);
      ctx.body_bytes += tx.wire_size();
      tx_shard_finished(tx.hash, true);
      break;
    }
    default:
      break;
  }
}

bool BaselineSystem::retry_or_abort(Shard& shard, NodeId decider, const WorkItem& item) {
  if (item.retry < config_.max_lock_retries) {
    WorkItem again = item;
    again.retry += 1;
    enqueue(shard, std::move(again));
    return true;
  }
  broadcast_commit(shard, decider, item.tx, /*ok=*/false);
  return false;
}

void BaselineSystem::tx_shard_finished(const Hash256& tx_hash, bool ok) {
  const auto it = tracker_.find(tx_hash);
  if (it == tracker_.end()) return;
  TrackEntry& e = it->second;
  e.aborted = e.aborted || !ok;
  if (e.shards_left == 0 || --e.shards_left > 0) return;
  if (e.aborted) {
    ++stats_.aborted;
  } else {
    ++stats_.committed;
    stats_.total_commit_latency += sim_.now() - e.submitted;
    stats_.commit_latencies.push_back(sim_.now() - e.submitted);
    stats_.last_commit_time = std::max(stats_.last_commit_time, sim_.now());
  }
  if (telemetry_ != nullptr) {
    telemetry_->tracer.on_finish(tx_hash, !e.aborted, sim_.now());
    telemetry_->registry.counter(e.aborted ? "tx.aborted" : "tx.committed").inc();
    if (!e.aborted)
      telemetry_->registry.histogram("tx.commit_latency_us").record(sim_.now() - e.submitted);
  }
  tracker_.erase(it);
}

StorageReport BaselineSystem::storage_report() const {
  StorageReport r;
  std::uint64_t chain = 0, state = 0, logic = 0;
  for (const auto& s : shards_) {
    chain += s->chain.total_bytes();
    state += s->store.state_storage_bytes();
    logic += s->logic.logic_storage_bytes();
  }
  r.chain_bytes_per_node = chain / config_.num_shards;
  r.state_bytes_per_node = state / config_.num_shards;
  r.logic_bytes_per_node = logic / config_.num_shards;
  return r;
}

const ledger::Chain& BaselineSystem::shard_chain(ShardId s) const {
  return shards_[s.value]->chain;
}
const ledger::StateStore& BaselineSystem::shard_store(ShardId s) const {
  return shards_[s.value]->store;
}

std::uint64_t BaselineSystem::total_account_balance() const {
  std::uint64_t sum = 0;
  for (const auto& s : shards_) sum += s->store.total_balance();
  return sum;
}

std::size_t BaselineSystem::held_locks() const {
  std::size_t n = 0;
  for (const auto& s : shards_) n += s->locks.held_locks();
  return n;
}

Hash256 BaselineSystem::ledger_digest() const {
  crypto::Sha256 h;
  h.update("jenga/ledger-digest");
  for (const auto& s : shards_) {
    h.update_u64(s->id.value);
    h.update_u64(s->chain.height());
    h.update(s->chain.tip_hash());
    h.update(s->store.digest());
  }
  return h.finish();
}

}  // namespace jenga::baselines
