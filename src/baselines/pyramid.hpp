// Pyramid — layered sharding with merged "b-shards" (paper §II-C, [13]).
//
// Every i-shard `b` anchors a merged committee (b-shard) spanning the
// `merge_span` consecutive shards [b, b+span) (mod S): its nodes
// additionally store every spanned shard's state, logic and chain.  A
// contract transaction is routed to the b-shard covering the most of its
// declared contracts: the in-span part executes in ONE consensus round on
// the merged committee (it has all the needed state/logic), the out-of-span
// remainder falls back to CX Func-style sequential step groups, and one
// final cross-shard commit round applies buffered updates everywhere — the
// paper's observation that "merged shards cannot cover all transactions"
// made concrete.  The price is per-node storage that grows with the span
// (Fig. 7a's rising curve): every node carries `merge_span` shard-shares.
#pragma once

#include "baselines/baseline_base.hpp"

namespace jenga::baselines {

class PyramidSystem final : public BaselineSystem {
 public:
  PyramidSystem(sim::Simulator& sim, sim::Network& net, BaselineConfig config, Genesis genesis)
      : BaselineSystem(sim, net, config, std::move(genesis)) {
    place_contracts();
  }

  /// Per-node storage including the merged-committee replication overhead.
  [[nodiscard]] StorageReport storage_report() const override;

  /// The shard whose committee acts for b-shard `b` (its anchor).
  [[nodiscard]] ShardId bshard_committee(std::uint32_t b) const { return ShardId{b}; }
  /// b-shard `b` spans shards [b, b+span) modulo S.
  [[nodiscard]] bool in_span(std::uint32_t b, ShardId s) const {
    const std::uint32_t offset = (s.value + config_.num_shards - b) % config_.num_shards;
    return offset < std::min(config_.merge_span, config_.num_shards);
  }

 protected:
  std::pair<ShardId, WorkItem> classify_tx(const TxPtr& tx) override;
  void process_item(Shard& shard, NodeId decider, const WorkItem& item,
                    BlockCtx& ctx) override;

  /// Both VM-carrying kinds go through the batch engine: kExec (the merged
  /// committee's in-span round) and kStepExec (out-of-span step groups).
  [[nodiscard]] bool is_exec_item(const WorkItem& item) const override {
    return item.kind == WorkItem::Kind::kExec || item.kind == WorkItem::Kind::kStepExec;
  }
  PreparedExec prepare_exec(Shard& shard, const WorkItem& item) override;
  void finish_exec(Shard& shard, NodeId decider, const WorkItem& item, PreparedExec& prep,
                   exec::TaskResult* result, BlockCtx& ctx) override;

 private:
  /// Index of the first step at or after `from` whose home lies outside
  /// b-shard `b`'s span; tx.steps.size() if none.
  [[nodiscard]] std::uint32_t next_out_of_span_step(const ledger::Transaction& tx,
                                                    std::uint32_t b, std::uint32_t from) const;
  void continue_out_of_span(Shard& shard, NodeId decider, const WorkItem& item,
                            std::uint32_t from);
};

}  // namespace jenga::baselines
