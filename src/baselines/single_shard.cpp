#include "baselines/single_shard.hpp"

#include "ledger/portable_state.hpp"
#include "vm/interpreter.hpp"

namespace jenga::baselines {

using ledger::PortableState;
using ledger::Transaction;

std::pair<ShardId, WorkItem> SingleShardSystem::classify_tx(const TxPtr& tx) {
  WorkItem item;
  item.tx = tx;
  const ShardId sender_shard = home_of_account(tx->sender);
  if (sender_shard == ShardId{0}) {
    // Sender already lives on the contract shard: execute directly.
    item.kind = WorkItem::Kind::kExec;
    return {ShardId{0}, std::move(item)};
  }
  item.kind = WorkItem::Kind::kMoveOut;
  return {sender_shard, std::move(item)};
}

void SingleShardSystem::process_item(Shard& shard, NodeId decider, const WorkItem& item,
                                     BlockCtx& ctx) {
  const Transaction& tx = *item.tx;
  switch (item.kind) {
    case WorkItem::Kind::kMoveOut: {
      // Lock and ship the sender's balance to the contract shard.
      if (!shard.locks.lock_account(tx.sender, tx.hash)) {
        // Busy moving for another tx: retry from the mempool, then abort.
        retry_or_abort(shard, decider, item);
        break;
      }
      WorkItem exec;
      exec.kind = WorkItem::Kind::kExec;
      exec.tx = item.tx;
      exec.state.balances[tx.sender] = shard.store.balance(tx.sender).value_or(0);
      send_cross(decider, shard.id, ShardId{0}, std::move(exec));
      break;
    }
    case WorkItem::Kind::kCommit:
      // Account shards must also release the MoveOut lock on the sender.
      if (home_of_account(tx.sender) == shard.id)
        shard.locks.unlock_account(tx.sender, tx.hash);
      apply_commit(shard, item, ctx);
      break;
    default:
      break;
  }
}

PreparedExec SingleShardSystem::prepare_exec(Shard& shard, const WorkItem& item) {
  PreparedExec p;
  const Transaction& tx = *item.tx;
  // shard.id == 0: all contract logic and state are local.
  bool lock_failed = false;
  for (auto c : tx.contracts) {
    if (!shard.locks.lock_contract(c, tx.hash)) {
      lock_failed = true;
      break;
    }
  }
  // A sender local to the contract shard skipped MoveOut: lock it here
  // so concurrent transactions cannot interleave balance writes.
  if (!lock_failed && home_of_account(tx.sender) == shard.id &&
      !shard.locks.lock_account(tx.sender, tx.hash)) {
    lock_failed = true;
  }
  if (lock_failed) {
    p.action = PreparedExec::Action::kLockBusy;
    return p;
  }
  PortableState bundle = item.state;  // shipped-in balances
  for (auto a : tx.accounts) {
    if (home_of_account(a) == shard.id)
      bundle.balances[a] = shard.store.balance(a).value_or(0);
  }
  for (auto c : tx.contracts) {
    const auto* st = shard.store.contract_state(c);
    bundle.contracts[c] = st ? *st : ledger::ContractState{};
  }
  p.action = PreparedExec::Action::kRun;
  p.task.id = tx.hash;
  p.task.sender = tx.sender;
  p.task.logic.reserve(tx.contracts.size());
  for (auto c : tx.contracts) p.task.logic.push_back(shard.logic.get(c));
  p.task.steps_view = tx.steps;
  p.task.limits.gas_limit = tx.gas_limit;
  p.task.input = std::move(bundle);
  p.task.access = exec::declared_access(tx);
  return p;
}

void SingleShardSystem::finish_exec(Shard& shard, NodeId decider, const WorkItem& item,
                                    PreparedExec& prep, exec::TaskResult* result, BlockCtx&) {
  if (prep.action == PreparedExec::Action::kLockBusy) {
    retry_or_abort(shard, decider, item);
    return;
  }
  const Transaction& tx = *item.tx;
  const bool ok = result != nullptr && result->vm.ok();
  PortableState bundle;
  if (ok) bundle = std::move(result->output);
  if (ok) {
    // Buffer the contract-side updates locally for the commit round
    // (locally-homed balances included: the sender is locked above).
    PortableState local;
    local.contracts = bundle.contracts;
    for (const auto& [a, bal] : bundle.balances)
      if (home_of_account(a) == shard.id) local.balances[a] = bal;
    shard.buffered[tx.hash] = std::move(local);
  }
  // Commit fan-out, shipping each foreign account shard its balance back.
  for (ShardId target : involved_shards(tx)) {
    WorkItem commit;
    commit.kind = WorkItem::Kind::kCommit;
    commit.tx = item.tx;
    commit.ok = ok;
    if (ok) {
      for (const auto& [a, bal] : bundle.balances)
        if (home_of_account(a) == target && !(target == shard.id))
          commit.state.balances[a] = bal;
    }
    if (target == shard.id) {
      enqueue(shard, std::move(commit));
    } else {
      send_cross(decider, shard.id, target, std::move(commit));
    }
  }
}

}  // namespace jenga::baselines
