#include "baselines/pyramid.hpp"

#include <algorithm>

#include "ledger/portable_state.hpp"
#include "vm/interpreter.hpp"

namespace jenga::baselines {

using ledger::PortableState;
using ledger::Transaction;

namespace {

/// aux packing for kStepExec: (b-shard << 16) | next step index.
constexpr std::uint32_t pack_aux(std::uint32_t b, std::uint32_t step) {
  return (b << 16) | step;
}
constexpr std::uint32_t aux_bshard(std::uint32_t aux) { return aux >> 16; }
constexpr std::uint32_t aux_step(std::uint32_t aux) { return aux & 0xFFFF; }

}  // namespace

std::pair<ShardId, WorkItem> PyramidSystem::classify_tx(const TxPtr& tx) {
  // Route to the b-shard covering the most declared contracts (one b-shard
  // is anchored at every shard).
  const std::uint32_t num_b = config_.num_shards;
  std::uint32_t best = 0, best_cover = 0;
  for (std::uint32_t b = 0; b < num_b; ++b) {
    std::uint32_t cover = 0;
    for (auto c : tx->contracts)
      if (in_span(b, home_of_contract(c))) ++cover;
    if (cover > best_cover) {
      best_cover = cover;
      best = b;
    }
  }
  WorkItem item;
  item.kind = WorkItem::Kind::kExec;
  item.tx = tx;
  item.aux = best;
  return {bshard_committee(best), std::move(item)};
}

std::uint32_t PyramidSystem::next_out_of_span_step(const Transaction& tx, std::uint32_t b,
                                                   std::uint32_t from) const {
  for (std::uint32_t i = from; i < tx.steps.size(); ++i) {
    if (!in_span(b, home_of_contract(tx.contracts[tx.steps[i].contract_slot]))) return i;
  }
  return static_cast<std::uint32_t>(tx.steps.size());
}

void PyramidSystem::continue_out_of_span(Shard& shard, NodeId decider, const WorkItem& item,
                                         std::uint32_t from) {
  const Transaction& tx = *item.tx;
  const std::uint32_t b = aux_bshard(item.aux);
  const std::uint32_t next = next_out_of_span_step(tx, b, from);
  if (next >= tx.steps.size()) {
    broadcast_commit(shard, decider, item.tx, /*ok=*/true);
    return;
  }
  WorkItem hand_off;
  hand_off.kind = WorkItem::Kind::kStepExec;
  hand_off.tx = item.tx;
  hand_off.aux = pack_aux(b, next);
  send_cross(decider, shard.id,
             home_of_contract(tx.contracts[tx.steps[next].contract_slot]),
             std::move(hand_off));
}

PreparedExec PyramidSystem::prepare_exec(Shard& shard, const WorkItem& item) {
  PreparedExec p;
  const Transaction& tx = *item.tx;

  if (item.kind == WorkItem::Kind::kExec) {
    // Merged-committee round: lock + slice every in-span resource at once.
    const std::uint32_t b = item.aux;
    for (auto c : tx.contracts) {
      const ShardId home = home_of_contract(c);
      if (!in_span(b, home)) continue;
      if (!shards_[home.value]->locks.lock_contract(c, tx.hash)) {
        p.action = PreparedExec::Action::kLockBusy;
        return p;
      }
    }
    PortableState bundle;
    for (auto c : tx.contracts) {
      const ShardId home = home_of_contract(c);
      if (in_span(b, home)) {
        const auto* st = shards_[home.value]->store.contract_state(c);
        bundle.contracts[c] = st ? *st : ledger::ContractState{};
        p.task.logic.push_back(shards_[home.value]->logic.get(c));
      } else {
        p.task.logic.push_back(nullptr);  // out-of-span: executed later elsewhere
      }
    }
    for (auto a : tx.accounts) {
      const ShardId home = home_of_account(a);
      if (in_span(b, home))
        bundle.balances[a] = shards_[home.value]->store.balance(a).value_or(0);
    }
    // The in-span subsequence, order preserved (non-contiguous: task-owned).
    for (const auto& s : tx.steps)
      if (in_span(b, home_of_contract(tx.contracts[s.contract_slot])))
        p.task.own_steps.push_back(s);
    p.balance_snapshot = bundle.balances;
    p.task.input = std::move(bundle);
  } else {  // kStepExec
    const std::uint32_t b = aux_bshard(item.aux);
    const std::uint32_t from = aux_step(item.aux);
    // Lock the declared contracts homed here.
    for (auto c : tx.contracts) {
      if (home_of_contract(c) == shard.id && !shard.locks.lock_contract(c, tx.hash)) {
        p.action = PreparedExec::Action::kLockBusy;
        return p;
      }
    }
    // The maximal run of out-of-span steps homed here (skipping in-span
    // steps, which the merged committee already ran).
    std::uint32_t next = from;
    while (next < tx.steps.size()) {
      const ShardId home = home_of_contract(tx.contracts[tx.steps[next].contract_slot]);
      if (in_span(b, home)) {
        ++next;
        continue;
      }
      if (home != shard.id) break;
      p.task.own_steps.push_back(tx.steps[next]);
      ++next;
    }
    p.next = next;
    PortableState slice;
    for (auto c : tx.contracts) {
      if (home_of_contract(c) == shard.id) {
        const auto* st = shard.store.contract_state(c);
        slice.contracts[c] = st ? *st : ledger::ContractState{};
        p.task.logic.push_back(shard.logic.get(c));
      } else {
        p.task.logic.push_back(nullptr);
      }
    }
    for (auto a : tx.accounts)
      if (home_of_account(a) == shard.id)
        slice.balances[a] = shard.store.balance(a).value_or(0);
    if (const auto buffered = shard.buffered.find(tx.hash); buffered != shard.buffered.end())
      slice.merge(buffered->second);
    p.balance_snapshot = slice.balances;
    p.task.input = std::move(slice);
  }

  p.action = PreparedExec::Action::kRun;
  p.task.id = tx.hash;
  p.task.sender = tx.sender;
  p.task.limits.gas_limit = tx.gas_limit;
  p.task.access = exec::declared_access(tx);
  return p;
}

void PyramidSystem::finish_exec(Shard& shard, NodeId decider, const WorkItem& item,
                                PreparedExec& prep, exec::TaskResult* result, BlockCtx&) {
  if (prep.action == PreparedExec::Action::kLockBusy) {
    retry_or_abort(shard, decider, item);
    return;
  }
  const Transaction& tx = *item.tx;
  const bool ok = result != nullptr && result->vm.ok();
  if (!ok) {
    broadcast_commit(shard, decider, item.tx, /*ok=*/false);
    return;
  }

  if (item.kind == WorkItem::Kind::kExec) {
    const std::uint32_t b = item.aux;
    // Buffer updates on each owning member shard for the commit round.
    // Unchanged balances are dropped: accounts are not locked, and a stale
    // write-back would clobber concurrent fee deductions.
    PortableState updated = std::move(result->output);
    for (auto& [c, st] : updated.contracts)
      shards_[home_of_contract(c).value]->buffered[tx.hash].contracts[c] = std::move(st);
    for (auto& [a, bal] : updated.balances) {
      const auto snap = prep.balance_snapshot.find(a);
      if (snap != prep.balance_snapshot.end() && snap->second == bal) continue;
      shards_[home_of_account(a).value]->buffered[tx.hash].balances[a] = bal;
    }
    WorkItem continuation = item;
    continuation.aux = pack_aux(b, 0);
    continue_out_of_span(shard, decider, continuation, 0);
  } else {  // kStepExec
    PortableState updated = std::move(result->output);
    for (const auto& [a, bal] : prep.balance_snapshot) {
      const auto it = updated.balances.find(a);
      if (it != updated.balances.end() && it->second == bal) updated.balances.erase(it);
    }
    shard.buffered[tx.hash] = std::move(updated);
    continue_out_of_span(shard, decider, item, prep.next);
  }
}

void PyramidSystem::process_item(Shard& shard, NodeId, const WorkItem& item, BlockCtx& ctx) {
  switch (item.kind) {
    case WorkItem::Kind::kCommit:
      apply_commit(shard, item, ctx);
      break;
    default:
      break;
  }
}

StorageReport PyramidSystem::storage_report() const {
  StorageReport r = BaselineSystem::storage_report();
  // Every node additionally replicates the other `span-1` shards of its
  // b-shard: state, logic and chain; averaged over all N nodes.
  std::uint64_t extra = 0;
  const std::uint32_t span = std::min(config_.merge_span, config_.num_shards);
  for (std::uint32_t b = 0; b < config_.num_shards; ++b) {
    for (std::uint32_t off = 1; off < span; ++off) {
      const std::uint32_t s = (b + off) % config_.num_shards;
      extra += shards_[s]->store.state_storage_bytes() +
               shards_[s]->logic.logic_storage_bytes() + shards_[s]->chain.total_bytes();
    }
  }
  r.extra_bytes_per_node = extra / config_.num_shards;
  return r;
}

}  // namespace jenga::baselines
