// Common machinery for the three baseline systems the paper compares
// against (Single Shard, CX Func, Pyramid).
//
// All baselines share: hash-placed per-shard state, one BFT committee per
// shard (same consensus engine as Jenga, per the paper's fairness note in
// §VII-A), a work-item queue agreed upon in blocks, client submission,
// 2PC transfers, fee charging, and completion tracking.  What differs is the
// contract-transaction flow, expressed through `classify_tx` (where a fresh
// tx starts) and `process_item` (what a decided item does).
//
// Cross-shard transport is configurable (paper §VII-E):
//   kClientRelay     — one message relayed via the client (2 latency legs);
//                      the paper's own baseline implementation.
//   kQuorumBroadcast — f+1 source members each broadcast to every member of
//                      the destination shard (the "more secure" scheme).
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/stats.hpp"
#include "consensus/bft.hpp"
#include "core/jenga_system.hpp"  // Genesis, TxPtr, protocol payload types
#include "exec/engine.hpp"
#include "ledger/block.hpp"
#include "ledger/locks.hpp"
#include "ledger/state_store.hpp"
#include "simnet/network.hpp"

namespace jenga::baselines {

using core::Genesis;
using core::TxPtr;

enum class CrossShardMode : std::uint8_t { kClientRelay = 0, kQuorumBroadcast };

struct BaselineConfig {
  std::uint32_t num_shards = 4;
  std::uint32_t nodes_per_shard = 16;
  std::uint64_t seed = 1;
  std::uint32_t max_block_items = 4096;
  SimTime view_timeout = 120 * kSecond;
  SimTime pending_timeout = 90 * kSecond;
  CrossShardMode cross_mode = CrossShardMode::kClientRelay;
  /// Lock conflicts re-enqueue the item this many times before aborting.
  std::uint32_t max_lock_retries = 24;
  /// Pyramid only: how many consecutive shards one merged committee spans.
  std::uint32_t merge_span = 2;
  /// Worker threads for batch transaction execution (src/exec/).  Results are
  /// bit-identical for every value; 1 = serial, no threads spawned.
  std::uint32_t exec_workers = 1;
};

/// A unit of work a shard's consensus agrees on.  The `kind` is interpreted
/// by the concrete system; stage/aux carry step indices or 2PC stages; the
/// state bundle carries moved account/contract state where the flow needs it.
struct WorkItem {
  enum class Kind : std::uint8_t {
    kStepExec = 0,   // CX Func / Pyramid: execute a step group locally
    kCommit,         // final cross-shard commit/abort of a contract tx
    kTransfer,       // 2PC fund transfer (stage 0/1/2)
    kMoveOut,        // Single Shard: ship account state to the contract shard
    kExec,           // Single Shard / Pyramid: execute whole tx at one site
  };

  Kind kind = Kind::kStepExec;
  TxPtr tx;
  std::uint8_t stage = 0;
  bool ok = true;
  std::uint32_t aux = 0;                 // step index / coverage info
  std::uint32_t retry = 0;               // lock-conflict retry counter
  ledger::PortableState state;           // carried bundle (may be empty)

  [[nodiscard]] std::uint32_t wire_size() const {
    return ledger::kTxWireBytes + state.wire_size();
  }
  [[nodiscard]] Hash256 dedup_key() const;
};

/// Split of an exec-kind work item around the batch engine (src/exec/):
/// prepare_exec() runs the serial prologue (locks, state slicing, task
/// assembly), the engine executes the VM part, finish_exec() consumes the
/// result in canonical block order.
struct PreparedExec {
  enum class Action : std::uint8_t {
    kLockBusy = 0,  // lock conflict: finish retries or aborts
    kRun,           // task handed to the engine
  };
  Action action = Action::kLockBusy;
  exec::Task task;
  /// Balances present in the slice before execution; finish drops unchanged
  /// entries so stale write-backs cannot clobber concurrent fee deductions.
  std::map<AccountId, std::uint64_t> balance_snapshot;
  std::uint32_t next = 0;  // step cursor after this group (step-group flows)
};

class BaselineSystem {
 public:
  BaselineSystem(sim::Simulator& sim, sim::Network& net, BaselineConfig config,
                 Genesis genesis);
  virtual ~BaselineSystem();

  BaselineSystem(const BaselineSystem&) = delete;
  BaselineSystem& operator=(const BaselineSystem&) = delete;

  void start();
  void submit(TxPtr tx);

  /// Attaches a telemetry context (nullptr detaches): per-tx phase tracing
  /// plus BFT sub-spans in every replica.  Call before start().  The baseline
  /// flows map onto the same phase partition as Jenga (work-item kinds are
  /// classified in decide()), so breakdown benches compare like with like.
  void set_telemetry(telemetry::Telemetry* t);

  [[nodiscard]] const TxStats& stats() const { return stats_; }
  /// Transactions submitted but neither committed nor aborted yet (the
  /// open-loop dispatcher's credit window reads this).
  [[nodiscard]] std::size_t in_flight() const { return tracker_.size(); }
  [[nodiscard]] const BaselineConfig& config() const { return config_; }
  [[nodiscard]] virtual StorageReport storage_report() const;
  [[nodiscard]] const ledger::Chain& shard_chain(ShardId s) const;
  [[nodiscard]] const ledger::StateStore& shard_store(ShardId s) const;
  [[nodiscard]] std::uint64_t total_account_balance() const;
  [[nodiscard]] std::size_t held_locks() const;
  /// Canonical digest over every shard's chain tip and state store — the
  /// ledger root the determinism tests compare across exec worker counts.
  [[nodiscard]] Hash256 ledger_digest() const;

 protected:
  struct Shard {
    ShardId id;
    ledger::StateStore store;
    ledger::LockManager locks;
    ledger::Chain chain;
    ledger::LogicStore logic;  // this shard's logic share
    std::deque<WorkItem> queue;
    std::unordered_set<Hash256> seen;  // client + cross-shard item dedup
    /// Buffered tentative updates awaiting the final commit round.
    std::unordered_map<Hash256, ledger::PortableState> buffered;
    std::uint64_t next_process_height = 0;

    explicit Shard(ShardId s) : id(s), chain(s) {}
  };

  /// Mutable context for one decided block (chain append accumulator).
  struct BlockCtx {
    std::vector<Hash256> committed;
    std::uint64_t body_bytes = 0;
  };

  /// Which shard receives a freshly submitted contract tx, and as what item.
  virtual std::pair<ShardId, WorkItem> classify_tx(const TxPtr& tx) = 0;
  /// Executes one decided work item on its shard.
  virtual void process_item(Shard& shard, NodeId decider, const WorkItem& item,
                            BlockCtx& ctx) = 0;

  /// Batch-execution hooks.  Items for which is_exec_item() returns true are
  /// routed through prepare_exec() → exec::Engine → finish_exec() instead of
  /// process_item(); decide() keeps canonical block order on both sides and
  /// flushes the running batch whenever footprints conflict, so the flow is
  /// serially equivalent and bit-identical for every worker count.
  [[nodiscard]] virtual bool is_exec_item(const WorkItem&) const { return false; }
  virtual PreparedExec prepare_exec(Shard&, const WorkItem&) { return {}; }
  virtual void finish_exec(Shard&, NodeId, const WorkItem&, PreparedExec&, exec::TaskResult*,
                           BlockCtx&) {}

  /// All shards a tx's completion involves (contracts + declared accounts).
  [[nodiscard]] std::vector<ShardId> involved_shards(const ledger::Transaction& tx) const;
  /// Where a contract's state/logic lives; Single Shard overrides to pin
  /// everything on shard 0.
  [[nodiscard]] virtual ShardId home_of_contract(ContractId c) const;
  [[nodiscard]] ShardId home_of_account(AccountId a) const;
  [[nodiscard]] NodeId contact(ShardId s) const;
  /// Places contract state + logic using home_of_contract(); concrete
  /// constructors call this once.
  void place_contracts();

  /// Cross-shard hand-off honoring the configured transport mode.
  void send_cross(NodeId from, ShardId source, ShardId target, WorkItem item);
  /// Queues an item locally (with dedup), as if it had just arrived.
  void enqueue(Shard& shard, WorkItem item);

  /// Standard final-commit processing shared by the systems: unlock, apply
  /// or discard buffered updates, charge fees, track completion.
  void apply_commit(Shard& shard, const WorkItem& item, BlockCtx& ctx);
  /// 2PC transfer stage machine (identical to Jenga's "traditional scheme").
  void process_transfer(Shard& shard, NodeId decider, const WorkItem& item, BlockCtx& ctx);
  /// Re-enqueues `item` with a bumped retry counter if budget remains;
  /// otherwise fans out an abort.  Returns true if a retry was scheduled.
  bool retry_or_abort(Shard& shard, NodeId decider, const WorkItem& item);

  void tx_shard_finished(const Hash256& tx_hash, bool ok);
  /// Broadcasts kCommit items to every involved shard (cross for others,
  /// local enqueue for this one).
  void broadcast_commit(Shard& from_shard, NodeId decider, const TxPtr& tx, bool ok);

  sim::Simulator& sim_;
  sim::Network& net_;
  BaselineConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  Genesis genesis_;
  /// Batch execution engine shared by every shard's decide path.
  std::unique_ptr<exec::Engine> exec_engine_;

  struct TrackEntry {
    SimTime submitted = 0;
    std::uint32_t shards_left = 0;
    bool aborted = false;
  };
  std::unordered_map<Hash256, TrackEntry> tracker_;
  TxStats stats_;
  std::uint64_t contact_rr_ = 0;
  telemetry::Telemetry* telemetry_ = nullptr;

 private:
  struct App;
  [[nodiscard]] std::optional<consensus::ConsensusValue> propose(Shard& shard,
                                                                 std::uint64_t height);
  void decide(Shard& shard, NodeId node, std::uint64_t height,
              const consensus::ConsensusValue& value);
  void on_node_message(NodeId node, const sim::Message& msg);

  [[nodiscard]] ShardId shard_of_node(NodeId n) const {
    return ShardId{n.value / config_.nodes_per_shard};
  }

  std::vector<std::unique_ptr<consensus::Replica>> replicas_;
  std::vector<std::unique_ptr<App>> apps_;
};

}  // namespace jenga::baselines
