// CX Func — Ethereum's Cross-Shard Function Call (paper §II-C, [23]).
//
// Contracts are hash-placed on shards; state, logic and execution of a
// contract are confined to its home shard.  A k-step transaction becomes a
// chain of sub-transactions: each home shard in step order locks its
// contracts, executes its consecutive step group via intra-shard consensus,
// buffers the tentative updates, and hands control to the next shard with a
// cross-shard message.  After the last group, a commit decision fans out to
// every involved shard, which applies (or discards) its buffered updates.
#pragma once

#include "baselines/baseline_base.hpp"

namespace jenga::baselines {

class CxFuncSystem final : public BaselineSystem {
 public:
  CxFuncSystem(sim::Simulator& sim, sim::Network& net, BaselineConfig config, Genesis genesis)
      : BaselineSystem(sim, net, config, std::move(genesis)) {
    place_contracts();
  }

 protected:
  std::pair<ShardId, WorkItem> classify_tx(const TxPtr& tx) override;
  void process_item(Shard& shard, NodeId decider, const WorkItem& item,
                    BlockCtx& ctx) override;

  /// kStepExec — the consecutive run of steps starting at item.aux that are
  /// homed on this shard — goes through the batch engine.
  [[nodiscard]] bool is_exec_item(const WorkItem& item) const override {
    return item.kind == WorkItem::Kind::kStepExec;
  }
  PreparedExec prepare_exec(Shard& shard, const WorkItem& item) override;
  void finish_exec(Shard& shard, NodeId decider, const WorkItem& item, PreparedExec& prep,
                   exec::TaskResult* result, BlockCtx& ctx) override;
};

}  // namespace jenga::baselines
