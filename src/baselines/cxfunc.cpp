#include "baselines/cxfunc.hpp"

#include "ledger/portable_state.hpp"
#include "vm/interpreter.hpp"

namespace jenga::baselines {

using ledger::PortableState;
using ledger::Transaction;

std::pair<ShardId, WorkItem> CxFuncSystem::classify_tx(const TxPtr& tx) {
  WorkItem item;
  item.kind = WorkItem::Kind::kStepExec;
  item.tx = tx;
  item.aux = 0;
  const ShardId first = home_of_contract(tx->contracts[tx->steps.front().contract_slot]);
  return {first, std::move(item)};
}

CxFuncSystem::GroupResult CxFuncSystem::exec_step_group(Shard& shard, const Transaction& tx,
                                                        std::uint32_t from) {
  // Lock every declared contract homed here (idempotent re-lock by owner).
  for (auto c : tx.contracts) {
    if (home_of_contract(c) == shard.id && !shard.locks.lock_contract(c, tx.hash))
      return {GroupResult::Status::kLocked, from};
  }

  // View over this shard's slice: store values overlaid with updates
  // buffered by earlier visits of the same transaction.
  PortableState slice;
  for (auto c : tx.contracts) {
    if (home_of_contract(c) != shard.id) continue;
    const auto* st = shard.store.contract_state(c);
    slice.contracts[c] = st ? *st : ledger::ContractState{};
  }
  for (auto a : tx.accounts) {
    if (home_of_account(a) == shard.id)
      slice.balances[a] = shard.store.balance(a).value_or(0);
  }
  if (const auto buffered = shard.buffered.find(tx.hash); buffered != shard.buffered.end())
    slice.merge(buffered->second);

  std::uint32_t end = from;
  while (end < tx.steps.size() &&
         home_of_contract(tx.contracts[tx.steps[end].contract_slot]) == shard.id)
    ++end;

  std::vector<const vm::ContractLogic*> logic;
  for (auto c : tx.contracts) logic.push_back(shard.logic.get(c));

  ledger::PortableStateView view(std::move(slice));
  vm::ExecLimits limits;
  limits.gas_limit = tx.gas_limit;
  vm::Interpreter interp(logic, view, limits);
  // Snapshot balances so untouched ones are NOT written back at commit:
  // accounts are not locked here, and restoring a stale balance would undo a
  // concurrent transaction's fee/debit.
  const auto balance_snapshot = view.state().balances;
  const auto r = interp.run(tx.sender, std::span(tx.steps.data() + from, end - from));
  if (!r.ok()) return {GroupResult::Status::kFailed, from};
  auto updated = view.take();
  for (const auto& [a, bal] : balance_snapshot) {
    const auto it = updated.balances.find(a);
    if (it != updated.balances.end() && it->second == bal) updated.balances.erase(it);
  }
  shard.buffered[tx.hash] = std::move(updated);
  return {GroupResult::Status::kOk, end};
}

void CxFuncSystem::process_item(Shard& shard, NodeId decider, const WorkItem& item,
                                BlockCtx& ctx) {
  switch (item.kind) {
    case WorkItem::Kind::kStepExec: {
      const Transaction& tx = *item.tx;
      const auto r = exec_step_group(shard, tx, item.aux);
      if (r.status == GroupResult::Status::kLocked) {
        retry_or_abort(shard, decider, item);
        break;
      }
      if (r.status == GroupResult::Status::kFailed) {
        broadcast_commit(shard, decider, item.tx, /*ok=*/false);
        break;
      }
      if (r.next >= tx.steps.size()) {
        broadcast_commit(shard, decider, item.tx, /*ok=*/true);
        break;
      }
      WorkItem hand_off;
      hand_off.kind = WorkItem::Kind::kStepExec;
      hand_off.tx = item.tx;
      hand_off.aux = r.next;
      send_cross(decider, shard.id,
                 home_of_contract(tx.contracts[tx.steps[r.next].contract_slot]),
                 std::move(hand_off));
      break;
    }
    case WorkItem::Kind::kCommit:
      apply_commit(shard, item, ctx);
      break;
    default:
      break;
  }
}

}  // namespace jenga::baselines
