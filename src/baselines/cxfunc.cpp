#include "baselines/cxfunc.hpp"

#include "ledger/portable_state.hpp"
#include "vm/interpreter.hpp"

namespace jenga::baselines {

using ledger::PortableState;
using ledger::Transaction;

std::pair<ShardId, WorkItem> CxFuncSystem::classify_tx(const TxPtr& tx) {
  WorkItem item;
  item.kind = WorkItem::Kind::kStepExec;
  item.tx = tx;
  item.aux = 0;
  const ShardId first = home_of_contract(tx->contracts[tx->steps.front().contract_slot]);
  return {first, std::move(item)};
}

PreparedExec CxFuncSystem::prepare_exec(Shard& shard, const WorkItem& item) {
  PreparedExec p;
  const Transaction& tx = *item.tx;
  const std::uint32_t from = item.aux;

  // Lock every declared contract homed here (idempotent re-lock by owner).
  for (auto c : tx.contracts) {
    if (home_of_contract(c) == shard.id && !shard.locks.lock_contract(c, tx.hash)) {
      p.action = PreparedExec::Action::kLockBusy;
      return p;
    }
  }

  // View over this shard's slice: store values overlaid with updates
  // buffered by earlier visits of the same transaction.
  PortableState slice;
  for (auto c : tx.contracts) {
    if (home_of_contract(c) != shard.id) continue;
    const auto* st = shard.store.contract_state(c);
    slice.contracts[c] = st ? *st : ledger::ContractState{};
  }
  for (auto a : tx.accounts) {
    if (home_of_account(a) == shard.id)
      slice.balances[a] = shard.store.balance(a).value_or(0);
  }
  if (const auto buffered = shard.buffered.find(tx.hash); buffered != shard.buffered.end())
    slice.merge(buffered->second);

  std::uint32_t end = from;
  while (end < tx.steps.size() &&
         home_of_contract(tx.contracts[tx.steps[end].contract_slot]) == shard.id)
    ++end;

  p.action = PreparedExec::Action::kRun;
  p.next = end;
  p.task.id = tx.hash;
  p.task.sender = tx.sender;
  p.task.logic.reserve(tx.contracts.size());
  for (auto c : tx.contracts) p.task.logic.push_back(shard.logic.get(c));
  p.task.steps_view = std::span(tx.steps.data() + from, end - from);
  p.task.limits.gas_limit = tx.gas_limit;
  // Snapshot balances so untouched ones are NOT written back at commit:
  // accounts are not locked here, and restoring a stale balance would undo a
  // concurrent transaction's fee/debit.
  p.balance_snapshot = slice.balances;
  p.task.input = std::move(slice);
  p.task.access = exec::declared_access(tx);
  return p;
}

void CxFuncSystem::finish_exec(Shard& shard, NodeId decider, const WorkItem& item,
                               PreparedExec& prep, exec::TaskResult* result, BlockCtx&) {
  if (prep.action == PreparedExec::Action::kLockBusy) {
    retry_or_abort(shard, decider, item);
    return;
  }
  const Transaction& tx = *item.tx;
  if (result == nullptr || !result->vm.ok()) {
    broadcast_commit(shard, decider, item.tx, /*ok=*/false);
    return;
  }
  PortableState updated = std::move(result->output);
  for (const auto& [a, bal] : prep.balance_snapshot) {
    const auto it = updated.balances.find(a);
    if (it != updated.balances.end() && it->second == bal) updated.balances.erase(it);
  }
  shard.buffered[tx.hash] = std::move(updated);
  if (prep.next >= tx.steps.size()) {
    broadcast_commit(shard, decider, item.tx, /*ok=*/true);
    return;
  }
  WorkItem hand_off;
  hand_off.kind = WorkItem::Kind::kStepExec;
  hand_off.tx = item.tx;
  hand_off.aux = prep.next;
  send_cross(decider, shard.id,
             home_of_contract(tx.contracts[tx.steps[prep.next].contract_slot]),
             std::move(hand_off));
}

void CxFuncSystem::process_item(Shard& shard, NodeId, const WorkItem& item, BlockCtx& ctx) {
  switch (item.kind) {
    case WorkItem::Kind::kCommit:
      apply_commit(shard, item, ctx);
      break;
    default:
      break;
  }
}

}  // namespace jenga::baselines
