// Single Shard — systems where one designated shard processes every smart
// contract (paper §II-C, [4][9][25]).
//
// All contract state and logic live on shard 0.  Before a contract tx runs,
// the sender's account shard locks the balance and ships it to shard 0
// (MoveOut round + cross-shard message); shard 0 executes everything in one
// consensus round; the commit round fans out, carrying the updated balance
// back to the account shard.  Contract-processing capacity therefore never
// scales with the shard count.
#pragma once

#include "baselines/baseline_base.hpp"

namespace jenga::baselines {

class SingleShardSystem final : public BaselineSystem {
 public:
  SingleShardSystem(sim::Simulator& sim, sim::Network& net, BaselineConfig config,
                    Genesis genesis)
      : BaselineSystem(sim, net, config, std::move(genesis)) {
    place_contracts();
  }

 protected:
  [[nodiscard]] ShardId home_of_contract(ContractId) const override { return ShardId{0}; }
  std::pair<ShardId, WorkItem> classify_tx(const TxPtr& tx) override;
  void process_item(Shard& shard, NodeId decider, const WorkItem& item,
                    BlockCtx& ctx) override;

  /// kExec — the whole-tx run on shard 0 — goes through the batch engine.
  /// kMoveOut stays inline: it only locks and ships a balance, no VM work.
  [[nodiscard]] bool is_exec_item(const WorkItem& item) const override {
    return item.kind == WorkItem::Kind::kExec;
  }
  PreparedExec prepare_exec(Shard& shard, const WorkItem& item) override;
  void finish_exec(Shard& shard, NodeId decider, const WorkItem& item, PreparedExec& prep,
                   exec::TaskResult* result, BlockCtx& ctx) override;
};

}  // namespace jenga::baselines
