#include "security/detector.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace jenga::security {

void FailureDetector::on_arrival(NodeId from, NodeId to, SimTime now) {
  PairState& p = pairs_[pair_key(to, from)];
  if (p.intervals.empty()) p.intervals.resize(std::max<std::size_t>(1, config_.window), 0);
  if (p.last_arrival >= 0) {
    const SimTime raw = now - p.last_arrival;
    const double interval =
        static_cast<double>(std::max(raw, config_.min_interval));
    if (p.count == p.intervals.size()) {
      const double old = static_cast<double>(p.intervals[p.next]);
      p.sum -= old;
      p.sum_sq -= old * old;
    } else {
      ++p.count;
    }
    p.intervals[p.next] = static_cast<SimTime>(interval);
    p.next = (p.next + 1) % p.intervals.size();
    p.sum += interval;
    p.sum_sq += interval * interval;
    ++stats_.samples;

    // Global degradation signal: one shared fast EWMA across every pair.  The
    // baseline is the healthiest (minimum) level it reached after warmup, so
    // a network-wide latency/serialization inflation shows up as the EWMA
    // floating a factor above it.
    ewma_ = ewma_ == 0 ? interval
                       : config_.ewma_alpha * interval + (1 - config_.ewma_alpha) * ewma_;
    if (stats_.samples >= config_.warmup_samples)
      baseline_ = baseline_ == 0 ? ewma_ : std::min(baseline_, ewma_);
  }
  p.last_arrival = now;
  if (p.suspected) {
    // An arrival from a suspected peer clears the suspicion immediately.
    p.suspected = false;
    --suspect_count_;
    ++stats_.recoveries;
  }
}

double FailureDetector::phi_of(const PairState& p, SimTime now) const {
  if (p.count < config_.min_samples || p.last_arrival < 0) return 0;
  const double n = static_cast<double>(p.count);
  const double mean = p.sum / n;
  const double var = std::max(0.0, p.sum_sq / n - mean * mean);
  // Sigma floor keeps phi finite for pathologically regular streams.
  const double sigma =
      std::max({std::sqrt(var), mean / 8.0, static_cast<double>(config_.min_interval)});
  const double elapsed = static_cast<double>(now - p.last_arrival);
  if (elapsed <= mean) return 0;
  // P(interval >= elapsed) under N(mean, sigma^2); phi = -log10 of it.
  const double z = (elapsed - mean) / (sigma * std::numbers::sqrt2);
  const double tail = 0.5 * std::erfc(z);
  if (tail <= 0) return 40.0;  // erfc underflow: effectively certain death
  return -std::log10(tail);
}

double FailureDetector::phi(NodeId observer, NodeId peer) const {
  const auto it = pairs_.find(pair_key(observer, peer));
  if (it == pairs_.end()) return 0;
  return phi_of(it->second, sim_.now());
}

bool FailureDetector::suspect(NodeId observer, NodeId peer) {
  if (!armed_) return false;
  const auto it = pairs_.find(pair_key(observer, peer));
  if (it == pairs_.end()) return false;
  PairState& p = it->second;
  const bool over = phi_of(p, sim_.now()) >= config_.phi_suspect;
  if (over && !p.suspected) {
    p.suspected = true;
    ++suspect_count_;
    ++stats_.suspicions;
    if (stats_.first_suspicion_at == 0) stats_.first_suspicion_at = sim_.now();
  }
  // Clearing happens on the next arrival (phi is monotone between arrivals).
  return p.suspected;
}

bool FailureDetector::degraded() const {
  if (!armed_ || baseline_ <= 0) return false;
  return ewma_ > baseline_ * config_.degrade_factor;
}

SimTime FailureDetector::view_timeout(NodeId observer, NodeId leader, SimTime base) {
  if (!armed_) return base;
  if (suspect(observer, leader)) {
    const auto shrunk =
        static_cast<SimTime>(static_cast<double>(base) * config_.timeout_shrink);
    return std::max(config_.view_floor, shrunk);
  }
  if (degraded()) {
    const auto grown =
        static_cast<SimTime>(static_cast<double>(base) * config_.timeout_grow);
    return std::min(config_.view_ceiling, grown);
  }
  return base;
}

std::uint32_t FailureDetector::pull_cadence(std::uint32_t base) const {
  if (!degraded()) return base;
  return std::max<std::uint32_t>(1, base / 2);
}

}  // namespace jenga::security
