// Phi-accrual failure detection over simulated message inter-arrival times
// (DESIGN.md §14).
//
// The detector is a passive sim::ArrivalObserver: every node-to-node delivery
// feeds one inter-arrival sample for the directed (peer -> observer) pair, and
// suspicion is computed lazily at query time — no timers, no rng, no scheduled
// events, so attaching the detector leaves a run's event stream bit-identical.
//
// phi(pair) = -log10 P(interval >= elapsed) under a normal fit of the pair's
// recent inter-arrival window (Hayashibara et al., "The phi accrual failure
// detector").  phi grows continuously as silence stretches: small phi means
// "probably just late", large phi means "statistically dead".  Consumers pick
// their own thresholds/actions: consensus shortens the view timeout for a
// suspected leader, the 2PC coordinator hedges its unicast legs, and the rumor
// mesh tightens its pull-repair cadence when the whole network looks degraded.
//
// Actuation is gated on `armed()`: sampling always runs, but the advisory
// outputs (view_timeout / pull_cadence / suspect transitions) only deviate
// from their static defaults once a chaos plan arms the detector.  This is the
// simulation-determinism compromise: inter-arrival statistics over bursty
// protocol traffic inevitably cross any finite threshold during legitimate
// quiet periods, and a spurious deviation in a clean run would break the
// bit-identity contract every subsystem here is held to.  Faulted runs are
// exactly the runs that arm a plan, so the detect -> react loop is live
// precisely when there is something to react to.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "simnet/network.hpp"
#include "simnet/simulator.hpp"

namespace jenga::security {

struct DetectorConfig {
  /// Inter-arrival samples kept per directed pair (ring buffer).
  std::size_t window = 32;
  /// No suspicion below this many samples: a pair we have barely heard from
  /// has no statistics worth acting on.
  std::size_t min_samples = 8;
  /// Suspicion threshold: phi >= 8 is P(still alive) <= 1e-8 under the fit.
  double phi_suspect = 8.0;
  /// Floor on a recorded interval; sub-millisecond bursts would otherwise
  /// collapse the variance and make phi explode on the next normal gap.
  SimTime min_interval = kMillisecond;
  /// Adaptive view-timeout bounds: suspected-dead leader shrinks the timeout
  /// toward the floor, a degraded (gray-slow) network grows it toward the
  /// ceiling so laggards stop triggering spurious view changes.
  double timeout_shrink = 0.4;
  double timeout_grow = 2.0;
  SimTime view_floor = 2 * kSecond;
  SimTime view_ceiling = 240 * kSecond;
  /// Degraded-network signal: fast EWMA of the global inter-arrival stream
  /// exceeding `degrade_factor` x its post-warmup minimum.
  double ewma_alpha = 0.05;
  double degrade_factor = 3.0;
  std::size_t warmup_samples = 64;
};

struct DetectorStats {
  std::uint64_t samples = 0;
  std::uint64_t suspicions = 0;   // pair transitions into suspected
  std::uint64_t recoveries = 0;   // suspected pairs cleared by an arrival
  SimTime first_suspicion_at = 0; // time-to-detect anchor for the gray bench
};

class FailureDetector final : public sim::ArrivalObserver {
 public:
  FailureDetector(sim::Simulator& sim, DetectorConfig config = {})
      : sim_(sim), config_(config) {}

  /// Arms actuation (see header comment).  Sampling is unaffected.
  void arm(bool on) { armed_ = on; }
  [[nodiscard]] bool armed() const { return armed_; }

  // sim::ArrivalObserver
  void on_arrival(NodeId from, NodeId to, SimTime now) override;

  /// Suspicion level of `peer` as seen by `observer` at the current sim time.
  /// 0 while below min_samples.
  [[nodiscard]] double phi(NodeId observer, NodeId peer) const;

  /// True when phi crosses the suspicion threshold (armed only).  Records the
  /// suspected -> cleared transitions for any_suspected()/stats.
  bool suspect(NodeId observer, NodeId peer);

  [[nodiscard]] bool any_suspected() const { return suspect_count_ > 0; }

  /// True when the global inter-arrival EWMA says the network as a whole is
  /// running well above its healthy baseline (armed only).
  [[nodiscard]] bool degraded() const;

  /// Adaptive BFT view timeout: exactly `base` when unarmed or healthy,
  /// shrunk (floored) for a suspected leader, grown (ceilinged) when the
  /// network is degraded but the leader is not individually suspect.
  SimTime view_timeout(NodeId observer, NodeId leader, SimTime base);

  /// Adaptive anti-entropy cadence for the rumor mesh: halves the tick
  /// divisor (floor 1 — every tick) while the network is degraded, so pull
  /// repair runs hotter exactly when losses/latency make it matter.
  [[nodiscard]] std::uint32_t pull_cadence(std::uint32_t base) const;

  [[nodiscard]] const DetectorStats& stats() const { return stats_; }
  [[nodiscard]] const DetectorConfig& config() const { return config_; }

 private:
  struct PairState {
    std::vector<SimTime> intervals;  // ring buffer of size config.window
    std::size_t next = 0;            // ring write cursor
    std::size_t count = 0;
    double sum = 0;
    double sum_sq = 0;
    SimTime last_arrival = -1;
    bool suspected = false;
  };

  [[nodiscard]] static std::uint64_t pair_key(NodeId observer, NodeId peer) {
    return (static_cast<std::uint64_t>(observer.value) << 32) | peer.value;
  }
  [[nodiscard]] double phi_of(const PairState& p, SimTime now) const;

  sim::Simulator& sim_;
  DetectorConfig config_;
  bool armed_ = false;
  std::unordered_map<std::uint64_t, PairState> pairs_;
  std::size_t suspect_count_ = 0;
  DetectorStats stats_;
  // Degradation signal: fast EWMA of all inter-arrival samples vs the best
  // (minimum) EWMA level seen after warmup.
  double ewma_ = 0;
  double baseline_ = 0;
};

}  // namespace jenga::security
