// Epoch failure-probability analysis (paper §VI, Eq. 1–3) and the shard-size
// chooser behind Table I.
//
// Randomly assigning N nodes (fN Byzantine) into shards of size k is
// sampling without replacement, so the number of Byzantine nodes per shard
// is hypergeometric.  A shard fails when ≥ ⌊k/3⌋ of its members are
// Byzantine (BFT resilience); a subgroup of size j fails only when *all* j
// members are Byzantine, because one honest member suffices to relay
// certified results between a state shard and an execution channel.
#pragma once

#include <cstdint>

namespace jenga::security {

/// log C(n, k); -inf when k > n or k < 0.
[[nodiscard]] double log_choose(std::uint64_t n, std::uint64_t k);

/// P[X >= x_min] where X ~ Hypergeometric(N, K, n): n draws from a population
/// of N containing K marked items.
[[nodiscard]] double hypergeometric_tail(std::uint64_t population, std::uint64_t marked,
                                         std::uint64_t draws, std::uint64_t x_min);

/// Eq. 1: probability a shard of size k drawn from N nodes (fraction f
/// Byzantine) has at least ⌊k/3⌋ Byzantine members.
[[nodiscard]] double shard_failure_probability(std::uint64_t total_nodes, double byzantine_fraction,
                                               std::uint64_t shard_size);

/// Eq. 2: probability a subgroup of size j drawn from a shard of size k
/// (worst case: ⌊k/3⌋ Byzantine members) is entirely Byzantine.
[[nodiscard]] double subgroup_failure_probability(std::uint64_t shard_size,
                                                  std::uint64_t subgroup_size);

/// Eq. 3: p_system = 2S·p_shard + S²·p_subgroup, with k = N/S and j = k/S.
[[nodiscard]] double system_failure_probability(std::uint64_t total_nodes, std::uint32_t num_shards,
                                                double byzantine_fraction);

/// Paper's acceptance threshold: 2^-17 ≈ 7.6e-6 (one failure in ~359 years of
/// daily reshuffles).
inline constexpr double kFailureTarget = 7.62939453125e-06;

/// Smallest shard size k (multiple of S, so subgroups are integral) whose
/// system failure probability is below `target`.  Returns 0 if none ≤ max_k.
[[nodiscard]] std::uint64_t choose_shard_size(std::uint32_t num_shards, double byzantine_fraction,
                                              double target = kFailureTarget,
                                              std::uint64_t max_k = 4096);

}  // namespace jenga::security
