#include "security/fault_injector.hpp"

#include <sstream>

namespace jenga::security {

void FaultInjector::arm(FaultPlan plan) {
  plan_ = std::move(plan);

  for (const auto& assignment : plan_.byzantine) {
    sys_.set_node_byzantine(assignment.node, assignment.mode);
    ++events_armed_;
  }

  for (const auto& ramp : plan_.ramps) {
    sim_.schedule_at(ramp.at, [this, faults = ramp.faults] { net_.set_fault_profile(faults); });
    ++events_armed_;
  }

  for (const auto& window : plan_.partitions) {
    sim_.schedule_at(window.start, [this, nodes = window.isolated, group = window.group] {
      net_.partition(nodes, group);
    });
    sim_.schedule_at(window.end, [this, nodes = window.isolated] {
      // Restore only this window's nodes: heal_partitions() would tear down
      // any other window still open.
      for (NodeId n : nodes) net_.set_partition_group(n, 0);
    });
    ++events_armed_;
  }

  for (const auto& crash : plan_.crashes) {
    sim_.schedule_at(crash.crash_at,
                     [this, node = crash.node] { net_.set_node_down(node, true); });
    if (crash.recover_at > crash.crash_at) {
      sim_.schedule_at(crash.recover_at, [this, node = crash.node] {
        net_.set_node_down(node, false);
        sys_.on_node_recovered(node);
      });
    }
    ++events_armed_;
  }

  if (!plan_.epoch_churn.empty()) {
    // One hook dispatches every scheduled churn entry; it fires inside the
    // cutover, after the old lattice's replicas stopped and before the new
    // ones start, so departures/arrivals are atomic with the reshuffle.
    sys_.set_epoch_boundary_hook([this](std::uint64_t epoch) {
      for (const auto& churn : plan_.epoch_churn) {
        if (churn.epoch != epoch) continue;
        for (NodeId n : churn.crash) net_.set_node_down(n, true);
        // Revived nodes need no explicit catch-up here: the hook fires before
        // the new lattice's replicas are built, and every new replica starts
        // the epoch's consensus from height zero anyway.
        for (NodeId n : churn.revive) net_.set_node_down(n, false);
      }
    });
    events_armed_ += plan_.epoch_churn.size();
  }

  for (const auto& fault : plan_.storage) {
    sim_.schedule_at(fault.at, [this, fault] {
      switch (fault.kind) {
        case StorageFaultKind::kTornWrite:
          sys_.storage_torn_write(fault.shard, fault.param);
          break;
        case StorageFaultKind::kDroppedFsync:
          sys_.storage_drop_fsyncs(fault.shard, true);
          sim_.schedule_after(fault.window, [this, shard = fault.shard] {
            sys_.storage_drop_fsyncs(shard, false);
          });
          break;
        case StorageFaultKind::kBitFlip:
          sys_.storage_flip_bit(fault.shard, fault.param);
          break;
      }
    });
    ++events_armed_;
  }

  for (const auto& burst : plan_.overload) {
    sim_.schedule_at(burst.at, [this, mult = burst.rate_multiplier] {
      if (overload_hook_) overload_hook_(mult);
    });
    sim_.schedule_at(burst.at + burst.duration, [this] {
      if (overload_hook_) overload_hook_(1.0);
    });
    ++events_armed_;
  }

  for (const auto& g : plan_.gray) {
    switch (g.kind) {
      case GrayFaultKind::kLinkDegrade:
        sim_.schedule_at(g.at, [this, g] {
          net_.set_link_delay(g.node, g.peer, g.extra_delay);
          net_.set_link_delay(g.peer, g.node, g.extra_delay);
        });
        sim_.schedule_at(g.at + g.duration, [this, g] {
          net_.set_link_delay(g.node, g.peer, 0);
          net_.set_link_delay(g.peer, g.node, 0);
        });
        break;
      case GrayFaultKind::kLossyNic:
        sim_.schedule_at(g.at, [this, g] {
          sim::NodeGray prof = net_.node_gray(g.node);
          prof.ingress_drop_rate = g.drop_rate;
          net_.set_node_gray(g.node, prof);
        });
        sim_.schedule_at(g.at + g.duration, [this, node = g.node] {
          sim::NodeGray prof = net_.node_gray(node);
          prof.ingress_drop_rate = 0.0;
          net_.set_node_gray(node, prof);
        });
        break;
      case GrayFaultKind::kSlowNode:
        sim_.schedule_at(g.at, [this, g] {
          sim::NodeGray prof = net_.node_gray(g.node);
          prof.serialize_factor = g.serialize_factor;
          prof.proc_delay = g.proc_delay;
          net_.set_node_gray(g.node, prof);
        });
        sim_.schedule_at(g.at + g.duration, [this, node = g.node] {
          sim::NodeGray prof = net_.node_gray(node);
          prof.serialize_factor = 1.0;
          prof.proc_delay = 0;
          net_.set_node_gray(node, prof);
        });
        break;
    }
    ++events_armed_;
  }

  for (const auto& hit : plan_.assassinations) {
    sim_.schedule_at(hit.at, [this, shard = hit.shard, at = hit.at,
                              recover_at = hit.recover_at] {
      // Resolve the victim at fire time: view changes may have rotated the
      // leadership since the plan was written.
      const NodeId victim = sys_.shard_leader(shard);
      net_.set_node_down(victim, true);
      if (recover_at > at) {
        sim_.schedule_at(recover_at, [this, victim] {
          net_.set_node_down(victim, false);
          sys_.on_node_recovered(victim);
        });
      }
    });
    ++events_armed_;
  }
}

std::string InvariantReport::describe() const {
  std::ostringstream out;
  out << "leaked_locks=" << leaked_locks << (leaked_locks == 0 ? " (ok)" : " (VIOLATION)")
      << "\n";
  out << "balance expected=" << expected_balance << " actual=" << actual_balance
      << (balance_conserved() ? " (ok)" : " (VIOLATION)") << "\n";
  out << "divergent_decides=" << divergent_decides
      << (divergent_decides == 0 ? " (ok)" : " (VIOLATION)") << "\n";
  out << "limbo_txs=" << limbo_txs << (limbo_txs == 0 ? " (ok)" : " (VIOLATION)") << "\n";
  out << "boundary_lock_leaks=" << boundary_lock_leaks
      << (boundary_lock_leaks == 0 ? " (ok)" : " (VIOLATION)") << "\n";
  out << "boundary_balance_mismatches=" << boundary_balance_mismatches
      << (boundary_balance_mismatches == 0 ? " (ok)" : " (VIOLATION)") << "\n";
  out << "state_sync_root_mismatches=" << state_sync_root_mismatches
      << (state_sync_root_mismatches == 0 ? " (ok)" : " (VIOLATION)") << "\n";
  out << "epoch_transitions=" << epoch_transitions << " txs_requeued=" << txs_requeued
      << " (info)\n";
  out << "state_sync: proof_rejections=" << state_sync_proof_rejections
      << " full_syncs=" << state_sync_full_syncs
      << " recovery_refusals=" << storage_recovery_refusals << " (info)\n";
  out << "twopc_stuck=" << twopc_stuck << (twopc_stuck == 0 ? " (ok)" : " (VIOLATION)")
      << " total_flagged=" << twopc_stuck_total << " (info)\n";
  if (mempool_capacity == 0) {
    out << "mempool: not audited (info)";
  } else {
    out << "mempool: resident=" << mempool_resident << " peak=" << mempool_peak_resident
        << " capacity=" << mempool_capacity
        << (mempool_bounded() ? " (ok)" : " (VIOLATION)")
        << " unaccounted=" << mempool_unaccounted
        << (mempool_unaccounted == 0 ? " (ok)" : " (VIOLATION)");
  }
  return out.str();
}

InvariantReport check_invariants(const core::JengaSystem& sys, std::uint64_t initial_balance,
                                 const mempool::IngressSet* ingress) {
  InvariantReport report;
  report.twopc_stuck = sys.twopc_stuck_now();
  report.twopc_stuck_total = sys.twopc_stuck_total();
  if (ingress != nullptr) {
    const mempool::IngressStats ms = ingress->stats();
    report.mempool_resident = ms.resident;
    report.mempool_peak_resident = ms.peak_resident;
    report.mempool_capacity =
        ingress->config().pool.capacity * ingress->config().num_shards;
    const std::uint64_t leavers =
        ms.totals.dispatched + ms.totals.evicted + ms.totals.expired + ms.resident;
    report.mempool_unaccounted = ms.totals.admitted >= leavers
                                     ? ms.totals.admitted - leavers
                                     : leavers - ms.totals.admitted;
  }
  report.leaked_locks = sys.held_locks();
  report.expected_balance = initial_balance - sys.stats().fees_charged;
  report.actual_balance = sys.total_account_balance();
  report.divergent_decides = sys.divergent_decides();
  report.limbo_txs = sys.in_flight();
  const auto& epoch = sys.epoch_stats();
  report.boundary_lock_leaks = epoch.boundary_lock_leaks;
  report.boundary_balance_mismatches = epoch.boundary_balance_mismatches;
  report.epoch_transitions = epoch.transitions;
  report.txs_requeued = epoch.txs_requeued;
  const auto& sync = sys.state_sync_stats();
  report.state_sync_root_mismatches = sync.root_mismatches;
  report.state_sync_proof_rejections = sync.proof_rejections;
  report.state_sync_full_syncs = sync.full_syncs;
  report.storage_recovery_refusals = sync.recovery_refusals;
  return report;
}

}  // namespace jenga::security
