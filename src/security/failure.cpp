#include "security/failure.hpp"

#include <cmath>
#include <limits>

namespace jenga::security {

double log_choose(std::uint64_t n, std::uint64_t k) {
  if (k > n) return -std::numeric_limits<double>::infinity();
  return std::lgamma(static_cast<double>(n) + 1) - std::lgamma(static_cast<double>(k) + 1) -
         std::lgamma(static_cast<double>(n - k) + 1);
}

double hypergeometric_tail(std::uint64_t population, std::uint64_t marked, std::uint64_t draws,
                           std::uint64_t x_min) {
  if (draws > population || marked > population) return 0.0;
  const std::uint64_t x_max = std::min(draws, marked);
  if (x_min > x_max) return 0.0;
  // Smallest feasible count: draws can't all avoid the marked set if
  // draws > population - marked.
  const std::uint64_t unmarked = population - marked;
  const std::uint64_t x_floor = draws > unmarked ? draws - unmarked : 0;

  const double log_denominator = log_choose(population, draws);
  double tail = 0.0;
  for (std::uint64_t x = std::max(x_min, x_floor); x <= x_max; ++x) {
    const double log_p =
        log_choose(marked, x) + log_choose(unmarked, draws - x) - log_denominator;
    tail += std::exp(log_p);
  }
  return std::min(tail, 1.0);
}

double shard_failure_probability(std::uint64_t total_nodes, double byzantine_fraction,
                                 std::uint64_t shard_size) {
  const auto byzantine =
      static_cast<std::uint64_t>(byzantine_fraction * static_cast<double>(total_nodes));
  // BFT holds while at most ⌊k/3⌋ members are Byzantine; the shard fails when
  // X > ⌊k/3⌋.  This threshold reproduces the paper's Table I probabilities
  // exactly ({1.6, 6.1, 5.1, 5.3, 2.8}·10⁻⁶ for their S/k choices at f=0.2).
  const std::uint64_t threshold = shard_size / 3 + 1;
  return hypergeometric_tail(total_nodes, byzantine, shard_size, threshold);
}

double subgroup_failure_probability(std::uint64_t shard_size, std::uint64_t subgroup_size) {
  if (subgroup_size == 0) return 1.0;
  const std::uint64_t byzantine_in_shard = shard_size / 3;  // worst case allowed
  // Fails only when every member is Byzantine.
  return hypergeometric_tail(shard_size, byzantine_in_shard, subgroup_size, subgroup_size);
}

double system_failure_probability(std::uint64_t total_nodes, std::uint32_t num_shards,
                                  double byzantine_fraction) {
  if (num_shards == 0) return 1.0;
  const std::uint64_t k = total_nodes / num_shards;
  const std::uint64_t j = k / num_shards;
  const double p_shard = shard_failure_probability(total_nodes, byzantine_fraction, k);
  const double p_subgroup = subgroup_failure_probability(k, j);
  const double s = static_cast<double>(num_shards);
  return std::min(1.0, 2.0 * s * p_shard + s * s * p_subgroup);
}

std::uint64_t choose_shard_size(std::uint32_t num_shards, double byzantine_fraction,
                                double target, std::uint64_t max_k) {
  for (std::uint64_t k = num_shards; k <= max_k; k += num_shards) {
    const std::uint64_t total = k * num_shards;
    if (system_failure_probability(total, num_shards, byzantine_fraction) < target) return k;
  }
  return 0;
}

}  // namespace jenga::security
