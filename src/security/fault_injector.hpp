// Scripted fault injection + invariant checking for chaos experiments.
//
// A FaultPlan is a declarative schedule of adversarial events over simulation
// time: link-fault profile ramps (drop/duplicate/delay), bidirectional
// partition windows, crash/recover churn, static Byzantine role assignments,
// leader assassination (crash whichever node leads a shard at a chosen
// moment), and epoch-boundary churn (nodes departing/rejoining exactly at a
// reconfiguration cutover).  FaultInjector::arm() translates the plan into
// simulator events once; the same plan + the same seed replays bit-identically.
//
// After the run drains, check_invariants() audits the safety properties that
// must hold under ANY fault schedule the protocol claims to tolerate:
//   - no leaked locks (every Phase-1 lock released by Phase-3 commit/abort),
//   - conservation of total balance (minus explicitly charged fees),
//   - no two replicas of one group deciding different values at a height,
//   - no transaction left in limbo (neither committed nor aborted).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "consensus/bft.hpp"
#include "core/jenga_system.hpp"
#include "mempool/ingress.hpp"
#include "simnet/network.hpp"
#include "simnet/simulator.hpp"

namespace jenga::security {

/// At time `at`, replace the network's global link-fault profile.  A sequence
/// of ramps sweeps drop rates up and down over a run.
struct FaultRamp {
  SimTime at = 0;
  sim::LinkFaults faults;
};

/// Between [start, end) the `isolated` nodes sit in their own partition
/// group: no traffic crosses between them and the rest of the network.
struct PartitionWindow {
  SimTime start = 0;
  SimTime end = 0;
  std::vector<NodeId> isolated;
  std::uint8_t group = 1;  // distinct groups allow overlapping windows
};

/// Crash `node` at crash_at; bring it back at recover_at (0 = stays down).
/// Recovery triggers the BFT state-sync path rather than a silent resume.
struct CrashWindow {
  NodeId node;
  SimTime crash_at = 0;
  SimTime recover_at = 0;
};

/// Assign a consensus-level Byzantine role to a node for the whole run.
struct ByzantineAssignment {
  NodeId node;
  consensus::ByzantineMode mode = consensus::ByzantineMode::kSilent;
};

/// At time `at`, crash whichever node currently leads shard `shard`'s
/// consensus (resolved at fire time, not at arm time); revive it at
/// recover_at (0 = stays down).
struct LeaderAssassination {
  ShardId shard;
  SimTime at = 0;
  SimTime recover_at = 0;
};

/// Node churn executed atomically inside epoch `epoch`'s cutover, between the
/// old lattice stopping and the new one starting: `crash` nodes depart,
/// `revive` nodes rejoin (and immediately state-sync into whatever group the
/// new lattice assigns them to).
struct EpochBoundaryChurn {
  std::uint64_t epoch = 0;
  std::vector<NodeId> crash;
  std::vector<NodeId> revive;
};

/// Storage-layer fault operations (durable backend; see MemStorageEnv).
enum class StorageFaultKind : std::uint8_t {
  kTornWrite = 0,   // next WAL append persists only `param` bytes
  kDroppedFsync,    // fsyncs durabilize nothing for `window` of sim time
  kBitFlip,         // flip durable WAL bit `param` (latent media corruption)
};

/// At time `at`, hit shard `shard`'s simulated disk with one storage fault.
struct StorageFault {
  ShardId shard;
  SimTime at = 0;
  StorageFaultKind kind = StorageFaultKind::kTornWrite;
  /// kTornWrite: bytes of the next append that survive.  kBitFlip: bit offset
  /// into the durable WAL image (wraps, so raw entropy is fine).
  std::uint64_t param = 0;
  /// kDroppedFsync: how long the drive keeps lying about fsync.
  SimTime window = 0;
};

/// Between [at, at+duration) the workload's offered rate is scaled by
/// `rate_multiplier` (a flash crowd scripted like any other fault).  Applied
/// through the injector's overload hook — the arrival process is not a
/// network entity, so the plan reaches it by callback rather than by NodeId.
/// Windows are restored to ×1.0 at their end; overlapping windows are not
/// composed (the latest event wins), so keep them disjoint in plans.
struct OverloadBurst {
  SimTime at = 0;
  SimTime duration = 0;
  double rate_multiplier = 1.0;
};

/// Gray (partial) failures: the victim stays up and keeps participating in
/// consensus, it is just degraded — the failure mode crash detectors miss
/// and the phi-accrual detector (security/detector.hpp) exists for.
enum class GrayFaultKind : std::uint8_t {
  kLinkDegrade = 0,  // extra latency on the node<->peer link, both directions
  kLossyNic,         // node silently loses a fraction of inbound deliveries
  kSlowNode,         // node serializes egress slower + stalls inbound processing
};

/// Between [at, at+duration) apply one gray degradation; the window restores
/// the clean profile at its end.  Windows on one victim should be disjoint
/// (the latest event wins, like OverloadBurst).
struct GrayFault {
  GrayFaultKind kind = GrayFaultKind::kSlowNode;
  SimTime at = 0;
  SimTime duration = 0;
  NodeId node;                    // the victim (kLinkDegrade: endpoint A)
  NodeId peer;                    // kLinkDegrade only: endpoint B
  SimTime extra_delay = 0;        // kLinkDegrade: added one-way latency
  double drop_rate = 0.0;         // kLossyNic: inbound delivery loss fraction
  double serialize_factor = 1.0;  // kSlowNode: egress serialization multiplier
  SimTime proc_delay = 0;         // kSlowNode: fixed extra inbound delay
};

struct FaultPlan {
  std::vector<FaultRamp> ramps;
  std::vector<PartitionWindow> partitions;
  std::vector<CrashWindow> crashes;
  std::vector<ByzantineAssignment> byzantine;
  std::vector<LeaderAssassination> assassinations;
  std::vector<EpochBoundaryChurn> epoch_churn;
  std::vector<StorageFault> storage;
  std::vector<OverloadBurst> overload;
  std::vector<GrayFault> gray;

  [[nodiscard]] std::size_t event_count() const {
    return ramps.size() + partitions.size() + crashes.size() + byzantine.size() +
           assassinations.size() + epoch_churn.size() + storage.size() + overload.size() +
           gray.size();
  }
};

class FaultInjector {
 public:
  FaultInjector(sim::Simulator& sim, sim::Network& net, core::JengaSystem& sys)
      : sim_(sim), net_(net), sys_(sys) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Schedules every event of `plan` (copied) on the simulator.  Call once,
  /// before running the simulation; Byzantine assignments apply immediately.
  void arm(FaultPlan plan);

  /// Receiver for OverloadBurst events (the open-loop client's
  /// set_rate_multiplier, typically).  Set before arm() if the plan scripts
  /// overload; bursts armed without a hook are dropped with a count.
  void set_overload_hook(std::function<void(double)> hook) {
    overload_hook_ = std::move(hook);
  }

  [[nodiscard]] std::size_t events_armed() const { return events_armed_; }

 private:
  sim::Simulator& sim_;
  sim::Network& net_;
  core::JengaSystem& sys_;
  FaultPlan plan_;
  std::function<void(double)> overload_hook_;
  std::size_t events_armed_ = 0;
};

/// Outcome of the post-run safety audit.  `ok()` is the chaos-test verdict.
struct InvariantReport {
  std::size_t leaked_locks = 0;
  std::uint64_t expected_balance = 0;
  std::uint64_t actual_balance = 0;
  std::uint64_t divergent_decides = 0;
  std::size_t limbo_txs = 0;
  /// Epoch-boundary audits (performed by the system at every cutover, after
  /// the force-abort sweep and before the new lattice starts).
  std::uint64_t boundary_lock_leaks = 0;
  std::uint64_t boundary_balance_mismatches = 0;
  /// Informational: how many reconfigurations the run survived, and how many
  /// in-flight transactions were carried across a boundary.
  std::uint64_t epoch_transitions = 0;
  std::uint64_t txs_requeued = 0;
  /// A recovery/rehome sync that ended on the wrong root is a safety
  /// violation (an honest peer always exists in tolerated configurations).
  std::uint64_t state_sync_root_mismatches = 0;
  /// Informational storage/sync traffic: tampered proofs rejected, fallbacks
  /// taken, corrupt durable images refused.
  std::uint64_t state_sync_proof_rejections = 0;
  std::uint64_t state_sync_full_syncs = 0;
  std::uint64_t storage_recovery_refusals = 0;
  /// 2PC rounds still past the stuck timeout when the run drained — a wedged
  /// cross-shard transfer the protocol never finalized (liveness violation).
  std::size_t twopc_stuck = 0;
  /// Total watchdog flags over the whole run (informational: transient stalls
  /// that later resolved, e.g. a partition window that healed).
  std::uint64_t twopc_stuck_total = 0;
  /// Ingress mempool audits (populated when an IngressSet is passed in).
  /// Bounded-queue check: residents and lifetime peak must fit capacity.
  std::size_t mempool_resident = 0;
  std::size_t mempool_peak_resident = 0;
  std::size_t mempool_capacity = 0;  // sum over shards; 0 = no ingress audited
  /// Conservation: every admitted tx must be accounted as dispatched,
  /// evicted, expired, or still resident.  A mismatch means a tx vanished
  /// (or was double-counted) inside the admission layer.
  std::uint64_t mempool_unaccounted = 0;

  [[nodiscard]] bool mempool_bounded() const {
    return mempool_capacity == 0 || (mempool_resident <= mempool_capacity &&
                                     mempool_peak_resident <= mempool_capacity);
  }
  [[nodiscard]] bool balance_conserved() const { return expected_balance == actual_balance; }
  [[nodiscard]] bool ok() const {
    return leaked_locks == 0 && balance_conserved() && divergent_decides == 0 &&
           limbo_txs == 0 && boundary_lock_leaks == 0 && boundary_balance_mismatches == 0 &&
           state_sync_root_mismatches == 0 && twopc_stuck == 0 && mempool_bounded() &&
           mempool_unaccounted == 0;
  }
  /// Human-readable one-per-line summary (for test failure output and the
  /// resilience benchmark report).
  [[nodiscard]] std::string describe() const;
};

/// Audits `sys` after the simulation drained.  `initial_balance` is the sum
/// of all genesis account balances; fees charged during the run are the only
/// legitimate sink.  Pass the run's IngressSet to additionally audit the
/// admission layer (bounded depth, entry conservation) — overload runs must.
[[nodiscard]] InvariantReport check_invariants(const core::JengaSystem& sys,
                                               std::uint64_t initial_balance,
                                               const mempool::IngressSet* ingress = nullptr);

}  // namespace jenga::security
