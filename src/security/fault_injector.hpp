// Scripted fault injection + invariant checking for chaos experiments.
//
// A FaultPlan is a declarative schedule of adversarial events over simulation
// time: link-fault profile ramps (drop/duplicate/delay), bidirectional
// partition windows, crash/recover churn, static Byzantine role assignments,
// leader assassination (crash whichever node leads a shard at a chosen
// moment), and epoch-boundary churn (nodes departing/rejoining exactly at a
// reconfiguration cutover).  FaultInjector::arm() translates the plan into
// simulator events once; the same plan + the same seed replays bit-identically.
//
// After the run drains, check_invariants() audits the safety properties that
// must hold under ANY fault schedule the protocol claims to tolerate:
//   - no leaked locks (every Phase-1 lock released by Phase-3 commit/abort),
//   - conservation of total balance (minus explicitly charged fees),
//   - no two replicas of one group deciding different values at a height,
//   - no transaction left in limbo (neither committed nor aborted).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "consensus/bft.hpp"
#include "core/jenga_system.hpp"
#include "simnet/network.hpp"
#include "simnet/simulator.hpp"

namespace jenga::security {

/// At time `at`, replace the network's global link-fault profile.  A sequence
/// of ramps sweeps drop rates up and down over a run.
struct FaultRamp {
  SimTime at = 0;
  sim::LinkFaults faults;
};

/// Between [start, end) the `isolated` nodes sit in their own partition
/// group: no traffic crosses between them and the rest of the network.
struct PartitionWindow {
  SimTime start = 0;
  SimTime end = 0;
  std::vector<NodeId> isolated;
  std::uint8_t group = 1;  // distinct groups allow overlapping windows
};

/// Crash `node` at crash_at; bring it back at recover_at (0 = stays down).
/// Recovery triggers the BFT state-sync path rather than a silent resume.
struct CrashWindow {
  NodeId node;
  SimTime crash_at = 0;
  SimTime recover_at = 0;
};

/// Assign a consensus-level Byzantine role to a node for the whole run.
struct ByzantineAssignment {
  NodeId node;
  consensus::ByzantineMode mode = consensus::ByzantineMode::kSilent;
};

/// At time `at`, crash whichever node currently leads shard `shard`'s
/// consensus (resolved at fire time, not at arm time); revive it at
/// recover_at (0 = stays down).
struct LeaderAssassination {
  ShardId shard;
  SimTime at = 0;
  SimTime recover_at = 0;
};

/// Node churn executed atomically inside epoch `epoch`'s cutover, between the
/// old lattice stopping and the new one starting: `crash` nodes depart,
/// `revive` nodes rejoin (and immediately state-sync into whatever group the
/// new lattice assigns them to).
struct EpochBoundaryChurn {
  std::uint64_t epoch = 0;
  std::vector<NodeId> crash;
  std::vector<NodeId> revive;
};

/// Storage-layer fault operations (durable backend; see MemStorageEnv).
enum class StorageFaultKind : std::uint8_t {
  kTornWrite = 0,   // next WAL append persists only `param` bytes
  kDroppedFsync,    // fsyncs durabilize nothing for `window` of sim time
  kBitFlip,         // flip durable WAL bit `param` (latent media corruption)
};

/// At time `at`, hit shard `shard`'s simulated disk with one storage fault.
struct StorageFault {
  ShardId shard;
  SimTime at = 0;
  StorageFaultKind kind = StorageFaultKind::kTornWrite;
  /// kTornWrite: bytes of the next append that survive.  kBitFlip: bit offset
  /// into the durable WAL image (wraps, so raw entropy is fine).
  std::uint64_t param = 0;
  /// kDroppedFsync: how long the drive keeps lying about fsync.
  SimTime window = 0;
};

struct FaultPlan {
  std::vector<FaultRamp> ramps;
  std::vector<PartitionWindow> partitions;
  std::vector<CrashWindow> crashes;
  std::vector<ByzantineAssignment> byzantine;
  std::vector<LeaderAssassination> assassinations;
  std::vector<EpochBoundaryChurn> epoch_churn;
  std::vector<StorageFault> storage;

  [[nodiscard]] std::size_t event_count() const {
    return ramps.size() + partitions.size() + crashes.size() + byzantine.size() +
           assassinations.size() + epoch_churn.size() + storage.size();
  }
};

class FaultInjector {
 public:
  FaultInjector(sim::Simulator& sim, sim::Network& net, core::JengaSystem& sys)
      : sim_(sim), net_(net), sys_(sys) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Schedules every event of `plan` (copied) on the simulator.  Call once,
  /// before running the simulation; Byzantine assignments apply immediately.
  void arm(FaultPlan plan);

  [[nodiscard]] std::size_t events_armed() const { return events_armed_; }

 private:
  sim::Simulator& sim_;
  sim::Network& net_;
  core::JengaSystem& sys_;
  FaultPlan plan_;
  std::size_t events_armed_ = 0;
};

/// Outcome of the post-run safety audit.  `ok()` is the chaos-test verdict.
struct InvariantReport {
  std::size_t leaked_locks = 0;
  std::uint64_t expected_balance = 0;
  std::uint64_t actual_balance = 0;
  std::uint64_t divergent_decides = 0;
  std::size_t limbo_txs = 0;
  /// Epoch-boundary audits (performed by the system at every cutover, after
  /// the force-abort sweep and before the new lattice starts).
  std::uint64_t boundary_lock_leaks = 0;
  std::uint64_t boundary_balance_mismatches = 0;
  /// Informational: how many reconfigurations the run survived, and how many
  /// in-flight transactions were carried across a boundary.
  std::uint64_t epoch_transitions = 0;
  std::uint64_t txs_requeued = 0;
  /// A recovery/rehome sync that ended on the wrong root is a safety
  /// violation (an honest peer always exists in tolerated configurations).
  std::uint64_t state_sync_root_mismatches = 0;
  /// Informational storage/sync traffic: tampered proofs rejected, fallbacks
  /// taken, corrupt durable images refused.
  std::uint64_t state_sync_proof_rejections = 0;
  std::uint64_t state_sync_full_syncs = 0;
  std::uint64_t storage_recovery_refusals = 0;

  [[nodiscard]] bool balance_conserved() const { return expected_balance == actual_balance; }
  [[nodiscard]] bool ok() const {
    return leaked_locks == 0 && balance_conserved() && divergent_decides == 0 &&
           limbo_txs == 0 && boundary_lock_leaks == 0 && boundary_balance_mismatches == 0 &&
           state_sync_root_mismatches == 0;
  }
  /// Human-readable one-per-line summary (for test failure output and the
  /// resilience benchmark report).
  [[nodiscard]] std::string describe() const;
};

/// Audits `sys` after the simulation drained.  `initial_balance` is the sum
/// of all genesis account balances; fees charged during the run are the only
/// legitimate sink.
[[nodiscard]] InvariantReport check_invariants(const core::JengaSystem& sys,
                                               std::uint64_t initial_balance);

}  // namespace jenga::security
