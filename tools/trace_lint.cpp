// Trace linter: validates a `--trace-out` JSONL file (or a flight-recorder
// dump) against the telemetry schema (see telemetry/telemetry.hpp):
//   - the per-tx invariant that the four phase intervals sum to the
//     end-to-end latency;
//   - causal span ordering (ids strictly ascending, parent before child —
//     the DAG acyclicity witness) and per-span send ≤ depart ≤ arrive;
//   - per-tx DAG/interval reconciliation: dag_queue + dag_link + dag_service
//     matches dag_total, and dag_total matches finish - submit within 1%;
//   - flight-dump lines in causal (time) order.
// CI runs it on a fresh bench trace so a schema drift fails the build
// instead of silently breaking downstream analysis.
//
// Usage: trace_lint <trace.jsonl>   (exit 0 = valid, 1 = invalid / unreadable)
#include <cstdio>
#include <fstream>
#include <string>

#include "telemetry/telemetry.hpp"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <trace.jsonl>\n", argv[0]);
    return 1;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "trace_lint: cannot open %s\n", argv[1]);
    return 1;
  }
  std::string error;
  jenga::telemetry::TraceLintSummary summary;
  if (!jenga::telemetry::validate_trace_stream(in, &error, &summary)) {
    std::fprintf(stderr, "trace_lint: %s: INVALID: %s\n", argv[1], error.c_str());
    return 1;
  }
  std::printf(
      "trace_lint: %s: OK (%zu lines: %zu tx (%zu with DAG), %zu metric, "
      "%zu phase_hist, %zu span, %zu cspan, %zu flight, %zu lineage)\n",
      argv[1], summary.lines, summary.tx_lines, summary.dag_tx_lines,
      summary.metric_lines, summary.phase_hist_lines, summary.span_lines,
      summary.cspan_lines, summary.flight_lines, summary.lineage_lines);
  return 0;
}
