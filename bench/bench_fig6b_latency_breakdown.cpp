// Fig. 6b: latency breakdown of Jenga's design points.  Paper at 12 shards:
// Network-Wide Logic Storage cuts confirmation latency by ~51.5% (no more
// multi-round cross-shard execution); the Orthogonal Lattice Structure cuts
// another ~15.8% (no cross-shard state fetch/return).
#include <cstdio>
#include <map>

#include "bench_config.hpp"
#include "report.hpp"

int main() {
  using namespace jenga;
  using namespace jenga::bench;
  using namespace jenga::harness;

  header("Fig. 6b — latency breakdown (ablations of the two designs)", "paper Fig. 6b");

  const SystemKind systems[] = {SystemKind::kJengaNoGlobalLogic, SystemKind::kJengaNoLattice,
                                SystemKind::kJenga};
  std::map<std::pair<int, std::uint32_t>, double> lat;
  std::printf("%-16s", "latency (s)");
  for (std::uint32_t s : kShardCounts) std::printf("  S=%-8u", s);
  std::printf("\n");
  for (int i = 0; i < 3; ++i) {
    std::printf("%-16s", system_name(systems[i]));
    for (std::uint32_t s : kShardCounts) {
      RunConfig cfg = perf_config(systems[i], s);
      cfg.contract_txs /= 4;       // ratios need less volume than absolutes
      cfg.closed_loop_window /= 4;
      const auto r = run_experiment(cfg);
      lat[{i, s}] = r.latency_s;
      std::printf("  %-10.2f", r.latency_s);
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  const double no_nwls12 = lat[{0, 12}], no_ols12 = lat[{1, 12}], full12 = lat[{2, 12}];
  std::printf("\nat 12 shards: NWLS saves %.1f%% (paper: 51.5%%), OLS saves %.1f%% (paper: 15.8%%)\n\n",
              100 * (1 - full12 / no_nwls12), 100 * (1 - full12 / no_ols12));

  shape_check(full12 < no_nwls12, "Fig.6b: NWLS reduces confirmation latency");
  shape_check(full12 < no_ols12, "Fig.6b: OLS reduces confirmation latency");
  shape_check((1 - full12 / no_nwls12) > (1 - full12 / no_ols12),
              "Fig.6b: NWLS saves more latency than OLS (paper: 51.5% vs 15.8%)");
  return finish("bench_fig6b_latency_breakdown");
}
