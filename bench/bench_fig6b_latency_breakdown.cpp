// Fig. 6b: latency breakdown of Jenga's design points.  Paper at 12 shards:
// Network-Wide Logic Storage cuts confirmation latency by ~51.5% (no more
// multi-round cross-shard execution); the Orthogonal Lattice Structure cuts
// another ~15.8% (no cross-shard state fetch/return).
//
// The per-phase table comes from the phase tracer: every committed tx's
// latency is partitioned exactly into state_lock / grant_relay / execute /
// commit intervals, so the per-phase sums reconcile with the end-to-end
// commit latency by construction (checked below to within 1%).
//
// The S=12 runs additionally enable the causal tracer (DESIGN.md §11), so
// the coarse four-interval blame is refined into exact hop-level blame: for
// each committed tx the critical path through the message DAG decomposes its
// latency into per-hop queue-wait / link-latency / service time, aggregated
// per message type below.  The DAG totals must reconcile with the phase
// intervals within 1% (they partition the same [submit, finish] span).
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>

#include "bench_config.hpp"
#include "report.hpp"

int main(int argc, char** argv) {
  using namespace jenga;
  using namespace jenga::bench;
  using namespace jenga::harness;

  header("Fig. 6b — latency breakdown (ablations of the two designs)", "paper Fig. 6b");
  const std::string trace_out = trace_out_from_args(argc, argv);
  ShapeReporter rep;

  const SystemKind systems[] = {SystemKind::kJengaNoGlobalLogic, SystemKind::kJengaNoLattice,
                                SystemKind::kJenga};
  std::map<std::pair<int, std::uint32_t>, double> lat;
  std::map<int, telemetry::PhaseBreakdown> bd12;  // per-system breakdown at S=12
  std::map<int, double> e2e12;                    // tracker-side mean latency at S=12
  std::map<int, std::shared_ptr<telemetry::Telemetry>> tel12;  // causal DAG at S=12
  std::printf("%-16s", "latency (s)");
  for (std::uint32_t s : kShardCounts) std::printf("  S=%-8u", s);
  std::printf("\n");
  for (int i = 0; i < 3; ++i) {
    std::printf("%-16s", system_name(systems[i]));
    for (std::uint32_t s : kShardCounts) {
      RunConfig cfg = perf_config(systems[i], s);
      cfg.contract_txs /= 4;       // ratios need less volume than absolutes
      cfg.closed_loop_window /= 4;
      if (s == 12) cfg.causal_trace = true;  // hop-level blame at the headline point
      if (s == 12 && systems[i] == SystemKind::kJenga) cfg.trace_out = trace_out;
      const auto r = run_experiment(cfg);
      lat[{i, s}] = r.latency_s;
      if (s == 12) {
        bd12[i] = r.breakdown;
        e2e12[i] = r.latency_s;
        tel12[i] = r.telemetry;
      }
      std::printf("  %-10.2f", r.latency_s);
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  // Tracer-derived breakdown at 12 shards: where each design point spends
  // its time, and which phase dominates the critical path.
  std::printf("\nper-phase mean latency at S=12 (s, from the phase tracer)\n");
  std::printf("%-16s", "system");
  for (std::size_t p = 0; p < telemetry::kIntervalCount; ++p)
    std::printf("  %-11s", telemetry::interval_name(p));
  std::printf("  %-9s  %-9s  %-9s  %s\n", "total", "p50", "p99", "dominant");
  for (int i = 0; i < 3; ++i) {
    const auto& b = bd12[i];
    std::printf("%-16s", system_name(systems[i]));
    for (std::size_t p = 0; p < telemetry::kIntervalCount; ++p)
      std::printf("  %-11.3f", b.mean_interval_seconds(p));
    std::printf("  %-9.3f  %-9.3f  %-9.3f  %s\n", b.mean_total_seconds(),
                b.total_hist.quantile(0.5) / static_cast<double>(kSecond),
                b.total_hist.quantile(0.99) / static_cast<double>(kSecond),
                telemetry::interval_name(b.dominant_interval()));
  }
  std::printf("\ncritical-path attribution at S=12 (share of txs whose longest phase is ...)\n");
  std::printf("%-16s", "system");
  for (std::size_t p = 0; p < telemetry::kIntervalCount; ++p)
    std::printf("  %-11s", telemetry::interval_name(p));
  std::printf("\n");
  for (int i = 0; i < 3; ++i) {
    const auto& b = bd12[i];
    const double n = b.committed > 0 ? static_cast<double>(b.committed) : 1.0;
    std::printf("%-16s", system_name(systems[i]));
    for (std::size_t p = 0; p < telemetry::kIntervalCount; ++p)
      std::printf("  %-11.1f", 100.0 * static_cast<double>(b.critical[p]) / n);
    std::printf("\n");
  }

  // Exact hop-level blame at S=12 from the causal DAG: per message type on
  // the critical path, how much commit latency each hop class contributes,
  // split into egress queue-wait vs link latency vs the service gap that
  // preceded the hop.  This replaces interval-level guessing with per-hop
  // attribution ("which message class should we optimize").
  struct DagAgg {
    std::uint64_t txs = 0;
    std::uint64_t reconciled = 0;  // DAG total vs phase intervals within 1%
    double total = 0, queue = 0, link = 0, service = 0, ingress = 0, tail = 0;
    struct PerType {
      std::uint64_t hops = 0;
      double queue = 0, link = 0, service = 0;
    };
    std::map<std::uint16_t, PerType> by_type;
  };
  std::map<int, DagAgg> dag12;
  for (int i = 0; i < 3; ++i) {
    const auto& tel = *tel12[i];
    DagAgg& agg = dag12[i];
    for (const auto& [hash, trace] : tel.tracer.traces()) {
      if (!trace.done || !trace.committed) continue;
      const auto cp = tel.causal.critical_path(hash, trace.submit, trace.finish);
      if (!cp.valid) continue;
      agg.txs += 1;
      SimTime interval_sum = 0;
      for (const SimTime v : trace.intervals()) interval_sum += v;
      const SimTime slop = std::max<SimTime>(2, interval_sum / 100);
      if (std::llabs(cp.total - interval_sum) <= slop) agg.reconciled += 1;
      agg.total += static_cast<double>(cp.total);
      agg.queue += static_cast<double>(cp.queue);
      agg.link += static_cast<double>(cp.link);
      agg.service += static_cast<double>(cp.service);
      agg.ingress += static_cast<double>(cp.ingress_wait);
      agg.tail += static_cast<double>(cp.tail);
      for (const auto& hop : cp.hops) {
        auto& t = agg.by_type[hop.span->msg_type];
        t.hops += 1;
        t.queue += static_cast<double>(hop.span->queue_us());
        t.link += static_cast<double>(hop.span->link_us());
        t.service += static_cast<double>(hop.service_before);
      }
    }
  }

  std::printf("\nDAG hop-level blame at S=12 (critical-path aggregate, causal tracer)\n");
  for (int i = 0; i < 3; ++i) {
    const DagAgg& agg = dag12[i];
    const double n = agg.txs > 0 ? static_cast<double>(agg.txs) : 1.0;
    std::printf("%s: %" PRIu64 " committed txs, mean critical path %.3f s "
                "(queue %.1f%%, link %.1f%%, service %.1f%%; ingress-wait %.3f s, tail %.3f s)\n",
                system_name(systems[i]), agg.txs, agg.total / n / kSecond,
                agg.total > 0 ? 100.0 * agg.queue / agg.total : 0.0,
                agg.total > 0 ? 100.0 * agg.link / agg.total : 0.0,
                agg.total > 0 ? 100.0 * agg.service / agg.total : 0.0,
                agg.ingress / n / kSecond, agg.tail / n / kSecond);
    std::printf("  %-18s  %-10s  %-12s  %-12s  %-12s  %s\n", "hop (msg type)",
                "hops/tx", "queue ms/tx", "link ms/tx", "service ms/tx", "share%");
    for (const auto& [type, t] : agg.by_type) {
      const char* name = type < telemetry::MessageTelemetry::kMaxTypes
                             ? tel12[i]->net.type_name[type]
                             : nullptr;
      const double contrib = t.queue + t.link + t.service;
      std::printf("  %-18s  %-10.2f  %-12.3f  %-12.3f  %-12.3f  %.1f\n",
                  name != nullptr ? name : "?", static_cast<double>(t.hops) / n,
                  t.queue / n / kMillisecond, t.link / n / kMillisecond,
                  t.service / n / kMillisecond,
                  agg.total > 0 ? 100.0 * contrib / agg.total : 0.0);
    }
  }

  const double no_nwls12 = lat[{0, 12}], no_ols12 = lat[{1, 12}], full12 = lat[{2, 12}];
  std::printf("\nat 12 shards: NWLS saves %.1f%% (paper: 51.5%%), OLS saves %.1f%% (paper: 15.8%%)\n\n",
              100 * (1 - full12 / no_nwls12), 100 * (1 - full12 / no_ols12));

  rep.check(full12 < no_nwls12, "Fig.6b: NWLS reduces confirmation latency");
  rep.check(full12 < no_ols12, "Fig.6b: OLS reduces confirmation latency");
  rep.check((1 - full12 / no_nwls12) > (1 - full12 / no_ols12),
            "Fig.6b: NWLS saves more latency than OLS (paper: 51.5% vs 15.8%)");

  // Reconciliation: Σ per-phase sums vs (a) the tracer's total and (b) the
  // independent end-to-end latency tracked by the system's stats.
  for (int i = 0; i < 3; ++i) {
    const auto& b = bd12[i];
    std::int64_t phase_sum = 0;
    for (std::size_t p = 0; p < telemetry::kIntervalCount; ++p) phase_sum += b.interval_sum[p];
    const double tracer_total = static_cast<double>(b.total_sum);
    const bool traced_ok =
        b.committed > 0 &&
        std::abs(static_cast<double>(phase_sum) - tracer_total) <= 0.01 * tracer_total;
    rep.check(traced_ok, std::string("Fig.6b: phase sums reconcile with traced total (") +
                             system_name(systems[i]) + ")");
    const double mean_gap = std::abs(b.mean_total_seconds() - e2e12[i]);
    rep.check(b.committed > 0 && mean_gap <= 0.01 * e2e12[i],
              std::string("Fig.6b: traced total matches end-to-end latency within 1% (") +
                  system_name(systems[i]) + ")");
    // DAG-level reconciliation: every committed tx's critical path must
    // partition the same latency the four intervals partition, within 1%.
    const DagAgg& agg = dag12[i];
    rep.check(agg.txs > 0 && agg.reconciled == agg.txs,
              std::string("Fig.6b: DAG critical path reconciles with phase intervals (") +
                  system_name(systems[i]) + ")");
    rep.check(agg.txs > 0 && !agg.by_type.empty(),
              std::string("Fig.6b: hop-level blame table is populated (") +
                  system_name(systems[i]) + ")");
  }
  return rep.finish("bench_fig6b_latency_breakdown");
}
