// Fig. 6b: latency breakdown of Jenga's design points.  Paper at 12 shards:
// Network-Wide Logic Storage cuts confirmation latency by ~51.5% (no more
// multi-round cross-shard execution); the Orthogonal Lattice Structure cuts
// another ~15.8% (no cross-shard state fetch/return).
//
// The per-phase table comes from the phase tracer: every committed tx's
// latency is partitioned exactly into state_lock / grant_relay / execute /
// commit intervals, so the per-phase sums reconcile with the end-to-end
// commit latency by construction (checked below to within 1%).
#include <cmath>
#include <cstdio>
#include <map>

#include "bench_config.hpp"
#include "report.hpp"

int main(int argc, char** argv) {
  using namespace jenga;
  using namespace jenga::bench;
  using namespace jenga::harness;

  header("Fig. 6b — latency breakdown (ablations of the two designs)", "paper Fig. 6b");
  const std::string trace_out = trace_out_from_args(argc, argv);
  ShapeReporter rep;

  const SystemKind systems[] = {SystemKind::kJengaNoGlobalLogic, SystemKind::kJengaNoLattice,
                                SystemKind::kJenga};
  std::map<std::pair<int, std::uint32_t>, double> lat;
  std::map<int, telemetry::PhaseBreakdown> bd12;  // per-system breakdown at S=12
  std::map<int, double> e2e12;                    // tracker-side mean latency at S=12
  std::printf("%-16s", "latency (s)");
  for (std::uint32_t s : kShardCounts) std::printf("  S=%-8u", s);
  std::printf("\n");
  for (int i = 0; i < 3; ++i) {
    std::printf("%-16s", system_name(systems[i]));
    for (std::uint32_t s : kShardCounts) {
      RunConfig cfg = perf_config(systems[i], s);
      cfg.contract_txs /= 4;       // ratios need less volume than absolutes
      cfg.closed_loop_window /= 4;
      if (s == 12 && systems[i] == SystemKind::kJenga) cfg.trace_out = trace_out;
      const auto r = run_experiment(cfg);
      lat[{i, s}] = r.latency_s;
      if (s == 12) {
        bd12[i] = r.breakdown;
        e2e12[i] = r.latency_s;
      }
      std::printf("  %-10.2f", r.latency_s);
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  // Tracer-derived breakdown at 12 shards: where each design point spends
  // its time, and which phase dominates the critical path.
  std::printf("\nper-phase mean latency at S=12 (s, from the phase tracer)\n");
  std::printf("%-16s", "system");
  for (std::size_t p = 0; p < telemetry::kIntervalCount; ++p)
    std::printf("  %-11s", telemetry::interval_name(p));
  std::printf("  %-9s  %-9s  %-9s  %s\n", "total", "p50", "p99", "dominant");
  for (int i = 0; i < 3; ++i) {
    const auto& b = bd12[i];
    std::printf("%-16s", system_name(systems[i]));
    for (std::size_t p = 0; p < telemetry::kIntervalCount; ++p)
      std::printf("  %-11.3f", b.mean_interval_seconds(p));
    std::printf("  %-9.3f  %-9.3f  %-9.3f  %s\n", b.mean_total_seconds(),
                b.total_hist.quantile(0.5) / static_cast<double>(kSecond),
                b.total_hist.quantile(0.99) / static_cast<double>(kSecond),
                telemetry::interval_name(b.dominant_interval()));
  }
  std::printf("\ncritical-path attribution at S=12 (share of txs whose longest phase is ...)\n");
  std::printf("%-16s", "system");
  for (std::size_t p = 0; p < telemetry::kIntervalCount; ++p)
    std::printf("  %-11s", telemetry::interval_name(p));
  std::printf("\n");
  for (int i = 0; i < 3; ++i) {
    const auto& b = bd12[i];
    const double n = b.committed > 0 ? static_cast<double>(b.committed) : 1.0;
    std::printf("%-16s", system_name(systems[i]));
    for (std::size_t p = 0; p < telemetry::kIntervalCount; ++p)
      std::printf("  %-11.1f", 100.0 * static_cast<double>(b.critical[p]) / n);
    std::printf("\n");
  }

  const double no_nwls12 = lat[{0, 12}], no_ols12 = lat[{1, 12}], full12 = lat[{2, 12}];
  std::printf("\nat 12 shards: NWLS saves %.1f%% (paper: 51.5%%), OLS saves %.1f%% (paper: 15.8%%)\n\n",
              100 * (1 - full12 / no_nwls12), 100 * (1 - full12 / no_ols12));

  rep.check(full12 < no_nwls12, "Fig.6b: NWLS reduces confirmation latency");
  rep.check(full12 < no_ols12, "Fig.6b: OLS reduces confirmation latency");
  rep.check((1 - full12 / no_nwls12) > (1 - full12 / no_ols12),
            "Fig.6b: NWLS saves more latency than OLS (paper: 51.5% vs 15.8%)");

  // Reconciliation: Σ per-phase sums vs (a) the tracer's total and (b) the
  // independent end-to-end latency tracked by the system's stats.
  for (int i = 0; i < 3; ++i) {
    const auto& b = bd12[i];
    std::int64_t phase_sum = 0;
    for (std::size_t p = 0; p < telemetry::kIntervalCount; ++p) phase_sum += b.interval_sum[p];
    const double tracer_total = static_cast<double>(b.total_sum);
    const bool traced_ok =
        b.committed > 0 &&
        std::abs(static_cast<double>(phase_sum) - tracer_total) <= 0.01 * tracer_total;
    rep.check(traced_ok, std::string("Fig.6b: phase sums reconcile with traced total (") +
                             system_name(systems[i]) + ")");
    const double mean_gap = std::abs(b.mean_total_seconds() - e2e12[i]);
    rep.check(b.committed > 0 && mean_gap <= 0.01 * e2e12[i],
              std::string("Fig.6b: traced total matches end-to-end latency within 1% (") +
                  system_name(systems[i]) + ")");
  }
  return rep.finish("bench_fig6b_latency_breakdown");
}
