// Dissemination ablation (DESIGN.md §12): naive unicast-to-all vs gossip
// fanout tree vs push-pull rumor mongering, swept over group sizes
// N ∈ {250, 500, 1000, 2000}.  Two claims under test:
//
//  1. Scalability of the transport itself: the worst per-node egress under
//     rumor spreading stays nearly flat as the group grows (constant fanout
//     per round, log-bounded rounds), while naive unicast concentrates an
//     O(N) uplink on the origin.  Criterion: rumor per-node bytes at N=2000
//     within 3x of N=250; naive grows ~linearly.
//
//  2. Batched aggregate verification: on a full S=12 system, a receiving
//     engine parks the certs of relay batches arriving within one window —
//     from up to S concurrent source groups — and verifies them in ONE
//     aggregated pass, doing several-fold fewer signature verifications than
//     the verify-on-arrival path on the tree transport.  Criterion: >= 4x
//     fewer at S=12 (the factor is structural in S).
//
// Emits BENCH_dissemination.json.  JENGA_DISSEM_QUICK=1 shrinks the sweep
// (N ∈ {250, 1000}, smaller system) for CI smoke runs.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "gossip/rumor.hpp"
#include "harness/runner.hpp"
#include "report.hpp"
#include "telemetry/metrics.hpp"

namespace {

using namespace jenga;

bool quick_mode() {
  const char* env = std::getenv("JENGA_DISSEM_QUICK");
  return env != nullptr && std::strcmp(env, "1") == 0;
}

struct TagPayload : sim::Payload {
  explicit TagPayload(int v) : value(v) {}
  int value;
};

struct SweepCell {
  const char* mode = "";
  std::uint32_t n = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t total_msgs = 0;
  double node_msgs_mean = 0.0;
  std::uint64_t node_msgs_max = 0;
  double node_bytes_mean = 0.0;
  std::uint64_t node_bytes_max = 0;
  double delivery_p50_s = 0.0;  // broadcast start -> handler delivery
  double delivery_p99_s = 0.0;
  std::uint64_t rumor_pushes = 0;
  std::uint64_t rumor_pulls = 0;
  std::uint64_t rumor_dups_dropped = 0;
  double coverage_rounds_p99 = 0.0;
};

constexpr std::uint32_t kPayloadBytes = 2048;  // one certified relay batch

SweepCell run_sweep_cell(sim::Transport transport, std::uint32_t n, int rumors) {
  sim::Simulator sim;
  sim::NetConfig cfg;
  cfg.set_all_transports(transport);
  sim::Network net(sim, cfg, Rng(9));
  std::unique_ptr<gossip::RumorMesh> mesh;
  if (transport == sim::Transport::kRumor) {
    mesh = std::make_unique<gossip::RumorMesh>(net, gossip::RumorConfig{},
                                               Rng(9 ^ 0x52554D52ULL));
    net.set_rumor_mesh(mesh.get());
  }

  std::vector<NodeId> group;
  std::vector<SimTime> start_at(static_cast<std::size_t>(rumors), 0);
  telemetry::Histogram latency;
  std::uint64_t deliveries = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    group.push_back(NodeId{i});
    net.register_node(NodeId{i}, [&](const sim::Message& m) {
      const int tag = sim::payload_as<TagPayload>(m).value;
      latency.record(sim.now() - start_at[static_cast<std::size_t>(tag)]);
      ++deliveries;
    });
  }

  // `rumors` certified batches from origins spread around the group, one new
  // spread every 200 ms (decide cadence of co-located groups).
  for (int r = 0; r < rumors; ++r) {
    const SimTime at = static_cast<SimTime>(r) * 200 * kMillisecond;
    start_at[static_cast<std::size_t>(r)] = at;
    sim.schedule_at(at, [&net, &group, r, n] {
      const NodeId origin{static_cast<std::uint32_t>(r * 37) % n};
      const sim::Message msg = sim::make_message<TagPayload>(
          sim::MsgType::kStateGrant, origin, kPayloadBytes, r);
      net.broadcast(sim::BroadcastKind::kRelay, origin, group,
                    sim::rumor_id_mix(0xD1, static_cast<std::uint64_t>(r)), msg,
                    sim::TrafficClass::kIntraShard);
    });
  }
  sim.run_until_idle();

  SweepCell c;
  c.mode = sim::transport_name(transport);
  c.n = n;
  c.deliveries = deliveries;
  c.total_msgs = net.stats().total_messages();
  std::uint64_t msum = 0, bsum = 0;
  for (const std::uint64_t v : net.node_sent_msgs()) {
    msum += v;
    c.node_msgs_max = std::max(c.node_msgs_max, v);
  }
  for (const std::uint64_t v : net.node_sent_bytes()) {
    bsum += v;
    c.node_bytes_max = std::max(c.node_bytes_max, v);
  }
  c.node_msgs_mean = static_cast<double>(msum) / n;
  c.node_bytes_mean = static_cast<double>(bsum) / n;
  c.delivery_p50_s = latency.quantile(0.5) / static_cast<double>(kSecond);
  c.delivery_p99_s = latency.quantile(0.99) / static_cast<double>(kSecond);
  if (mesh) {
    const auto& rs = mesh->stats();
    c.rumor_pushes = rs.pushes_sent;
    c.rumor_pulls = rs.pull_requests;
    c.rumor_dups_dropped = rs.dups_dropped;
    telemetry::Histogram rounds;
    for (const std::uint32_t v : rs.coverage_rounds) rounds.record(v);
    c.coverage_rounds_p99 = rounds.quantile(0.99);
  }
  return c;
}

struct SigCell {
  const char* mode = "";
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
  std::uint64_t individual_checks = 0;
  std::uint64_t batch_passes = 0;
  std::uint64_t batch_certs = 0;
  std::uint64_t frames = 0;

  [[nodiscard]] std::uint64_t verify_ops() const {
    return individual_checks + batch_passes;
  }
};

SigCell run_sig_cell(sim::Transport transport, std::uint32_t num_shards,
                     std::size_t txs) {
  harness::RunConfig cfg;
  cfg.kind = harness::SystemKind::kJenga;
  cfg.num_shards = num_shards;
  // Subgroup(shard, channel) has nodes_per_shard / num_shards members; keep
  // it non-empty so the relay duty exists at every (shard, channel) pair.
  cfg.nodes_per_shard = std::max(8u, num_shards);
  cfg.contract_txs = txs;
  cfg.inject_window = 30 * kSecond;
  cfg.max_sim_time = 1200 * kSecond;
  cfg.trace.num_contracts = 4000;
  cfg.trace.num_accounts = 8000;
  cfg.trace.max_steps = 8;
  cfg.trace.max_contracts_per_tx = 4;
  cfg.net.set_all_transports(transport);
  // Amortization needs load: with every shard backlogged, decides come a few
  // per second, and a window spanning several decide cadences coalesces the
  // consecutive heights' batches to one destination group into one frame
  // (one pooled pass); the price is up to one window of relay latency.
  cfg.net.batch_window = 500 * kMillisecond;
  const harness::RunResult r = harness::run_experiment(cfg);

  SigCell c;
  c.mode = sim::transport_name(transport);
  c.committed = r.stats.committed;
  c.aborted = r.stats.aborted;
  c.individual_checks = r.cert_checks.individual_checks;
  c.batch_passes = r.cert_checks.batch_passes;
  c.batch_certs = r.cert_checks.batch_certs;
  c.frames = r.relay_batches.frames_sent;
  return c;
}

std::string to_json(const std::vector<SweepCell>& sweep, const SigCell& tree,
                    const SigCell& rumor, double sig_ratio) {
  std::ostringstream out;
  out << "{\"bench\":\"dissemination\",\"sweep\":[";
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const SweepCell& c = sweep[i];
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "{\"mode\":\"%s\",\"n\":%u,\"deliveries\":%llu,\"total_msgs\":%llu,"
                  "\"node_msgs_mean\":%.1f,\"node_msgs_max\":%llu,"
                  "\"node_bytes_mean\":%.0f,\"node_bytes_max\":%llu,"
                  "\"delivery_p50_s\":%.3f,\"delivery_p99_s\":%.3f,"
                  "\"rumor_pushes\":%llu,\"rumor_pulls\":%llu,"
                  "\"rumor_dups_dropped\":%llu,\"coverage_rounds_p99\":%.1f}",
                  c.mode, c.n, static_cast<unsigned long long>(c.deliveries),
                  static_cast<unsigned long long>(c.total_msgs), c.node_msgs_mean,
                  static_cast<unsigned long long>(c.node_msgs_max), c.node_bytes_mean,
                  static_cast<unsigned long long>(c.node_bytes_max), c.delivery_p50_s,
                  c.delivery_p99_s, static_cast<unsigned long long>(c.rumor_pushes),
                  static_cast<unsigned long long>(c.rumor_pulls),
                  static_cast<unsigned long long>(c.rumor_dups_dropped),
                  c.coverage_rounds_p99);
    out << (i ? "," : "") << buf;
  }
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "],\"sig_checks\":{\"tree_committed\":%llu,\"tree_aborted\":%llu,"
                "\"rumor_committed\":%llu,\"rumor_aborted\":%llu,"
                "\"tree_individual\":%llu,\"rumor_individual\":%llu,"
                "\"rumor_batch_passes\":%llu,\"rumor_batch_certs\":%llu,"
                "\"rumor_frames\":%llu,\"ratio\":%.2f}}",
                static_cast<unsigned long long>(tree.committed),
                static_cast<unsigned long long>(tree.aborted),
                static_cast<unsigned long long>(rumor.committed),
                static_cast<unsigned long long>(rumor.aborted),
                static_cast<unsigned long long>(tree.individual_checks),
                static_cast<unsigned long long>(rumor.individual_checks),
                static_cast<unsigned long long>(rumor.batch_passes),
                static_cast<unsigned long long>(rumor.batch_certs),
                static_cast<unsigned long long>(rumor.frames), sig_ratio);
  out << buf;
  return out.str();
}

}  // namespace

int main() {
  using namespace jenga::bench;
  ShapeReporter rep;
  const bool quick = quick_mode();

  header("Ablation — dissemination transport sweep + batched aggregate verification",
         "DESIGN.md SS12 design-choice ablation (not a paper figure)");
  if (quick) std::printf("(JENGA_DISSEM_QUICK=1: reduced sweep)\n");

  // --- Transport sweep over group sizes -----------------------------------
  std::vector<std::uint32_t> sizes = quick ? std::vector<std::uint32_t>{250, 1000}
                                           : std::vector<std::uint32_t>{250, 500, 1000, 2000};
  const int rumors = quick ? 8 : 20;
  constexpr sim::Transport kModes[] = {sim::Transport::kNaive, sim::Transport::kTree,
                                       sim::Transport::kRumor};

  std::printf("\n%-8s %-6s %-12s %-11s %-11s %-13s %-13s %-9s %-9s\n", "mode", "N",
              "deliveries", "msgs/node", "max msgs", "bytes/node", "max bytes", "p50(s)",
              "p99(s)");
  std::vector<SweepCell> sweep;
  for (const sim::Transport t : kModes) {
    for (const std::uint32_t n : sizes) {
      const SweepCell c = run_sweep_cell(t, n, rumors);
      std::printf("%-8s %-6u %-12llu %-11.1f %-11llu %-13.0f %-13llu %-9.3f %-9.3f\n",
                  c.mode, c.n, static_cast<unsigned long long>(c.deliveries),
                  c.node_msgs_mean, static_cast<unsigned long long>(c.node_msgs_max),
                  c.node_bytes_mean, static_cast<unsigned long long>(c.node_bytes_max),
                  c.delivery_p50_s, c.delivery_p99_s);
      std::fflush(stdout);
      sweep.push_back(c);
    }
  }
  std::printf("\n");

  const auto cell = [&](const char* mode, std::uint32_t n) -> const SweepCell* {
    for (const SweepCell& c : sweep)
      if (std::strcmp(c.mode, mode) == 0 && c.n == n) return &c;
    return nullptr;
  };
  const std::uint32_t n_lo = sizes.front();
  const std::uint32_t n_hi = sizes.back();
  const double growth = static_cast<double>(n_hi) / n_lo;

  bool full_coverage = true;
  for (const SweepCell& c : sweep) {
    full_coverage = full_coverage &&
                    c.deliveries == static_cast<std::uint64_t>(rumors) * (c.n - 1);
  }
  rep.check(full_coverage, "every transport delivers each batch to every member exactly once");

  const SweepCell* rum_lo = cell("rumor", n_lo);
  const SweepCell* rum_hi = cell("rumor", n_hi);
  const SweepCell* nai_lo = cell("naive", n_lo);
  const SweepCell* nai_hi = cell("naive", n_hi);
  if (rum_lo && rum_hi && nai_lo && nai_hi) {
    rep.check(static_cast<double>(rum_hi->node_bytes_max) <=
                  3.0 * static_cast<double>(rum_lo->node_bytes_max),
              "rumor worst per-node egress at N=" + std::to_string(n_hi) +
                  " within 3x of N=" + std::to_string(n_lo) + " (near-flat scaling)");
    rep.check(static_cast<double>(nai_hi->node_bytes_max) >=
                  0.5 * growth * static_cast<double>(nai_lo->node_bytes_max),
              "naive worst per-node egress grows ~linearly with the group");
    rep.check(static_cast<double>(rum_hi->node_bytes_max) <
                  static_cast<double>(nai_hi->node_bytes_max),
              "rumor beats naive on worst per-node egress at the largest group");
  } else {
    rep.check(false, "sweep produced all reference cells");
  }

  // --- Batched aggregate verification on a full system --------------------
  const std::uint32_t sig_shards = quick ? 6 : 12;
  const std::size_t sig_txs = quick ? 600 : 2400;
  std::printf("signature-verification ablation at S=%u (%zu txs):\n", sig_shards, sig_txs);
  const SigCell tree = run_sig_cell(sim::Transport::kTree, sig_shards, sig_txs);
  const SigCell rumor = run_sig_cell(sim::Transport::kRumor, sig_shards, sig_txs);
  const double sig_ratio = rumor.verify_ops() == 0
                               ? 0.0
                               : static_cast<double>(tree.verify_ops()) /
                                     static_cast<double>(rumor.verify_ops());
  std::printf("  tree : committed=%llu aborted=%llu individual sig checks=%llu\n",
              static_cast<unsigned long long>(tree.committed),
              static_cast<unsigned long long>(tree.aborted),
              static_cast<unsigned long long>(tree.individual_checks));
  std::printf("  rumor: committed=%llu aborted=%llu verify ops=%llu (batch passes=%llu covering %llu "
              "certs in %llu frames, individual=%llu)\n",
              static_cast<unsigned long long>(rumor.committed),
              static_cast<unsigned long long>(rumor.aborted),
              static_cast<unsigned long long>(rumor.verify_ops()),
              static_cast<unsigned long long>(rumor.batch_passes),
              static_cast<unsigned long long>(rumor.batch_certs),
              static_cast<unsigned long long>(rumor.frames),
              static_cast<unsigned long long>(rumor.individual_checks));
  std::printf("  ratio: %.2fx fewer verification operations on the batched path\n\n",
              sig_ratio);
  rep.check(tree.committed > 0 && rumor.committed > 0,
            "both transports complete the S-shard workload");
  // The aggregation factor is structural in S (a channel pools certs from up
  // to S granting shards per window), so the quick S=6 smoke gets a
  // proportionally lower bar than the full S=12 criterion.
  const double sig_bar = sig_shards >= 12 ? 4.0 : 2.0;
  char sig_claim[96];
  std::snprintf(sig_claim, sizeof(sig_claim),
                "batched aggregate verification does >=%.0fx fewer sig checks at S=%u",
                sig_bar, sig_shards);
  rep.check(sig_ratio >= sig_bar, sig_claim);

  const std::string json = to_json(sweep, tree, rumor, sig_ratio);
  std::printf("JSON: %s\n", json.c_str());
  std::ofstream("BENCH_dissemination.json") << json << "\n";
  std::printf("wrote BENCH_dissemination.json\n");
  return rep.finish("bench_ablation_dissemination");
}
