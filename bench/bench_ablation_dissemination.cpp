// Ablation of a simulator/protocol design choice (DESIGN.md §3): block and
// batch dissemination via gossip fanout trees vs naive unicast-to-all.
// Subgroup members relay state-carrying batches into whole groups; with
// unicast each relay serializes k copies through its own 20 Mbps uplink,
// with gossip the serialization load spreads across the tree.  This is why
// the Jenga implementation gossips (and why real sharded chains do too).
#include <cstdio>
#include <vector>

#include "report.hpp"
#include "simnet/network.hpp"

int main() {
  using namespace jenga;
  using namespace jenga::bench;
  ShapeReporter rep;

  header("Ablation — gossip tree vs unicast-to-all dissemination latency",
         "DESIGN.md design-choice ablation (not a paper figure)");

  struct Payload : sim::Payload {};

  std::printf("%-12s %-14s %-18s %-18s %-8s\n", "group size", "payload", "unicast last (s)",
              "gossip last (s)", "speedup");
  bool gossip_wins_large = true;
  for (std::uint32_t k : {16u, 64u, 240u}) {
    for (std::uint32_t bytes : {4u * 1024u, 256u * 1024u, 2u * 1024u * 1024u}) {
      SimTime last[2] = {0, 0};
      for (int mode = 0; mode < 2; ++mode) {
        sim::Simulator sim;
        sim::Network net(sim, sim::NetConfig{}, Rng(9));
        std::vector<NodeId> group;
        for (std::uint32_t i = 0; i < k; ++i) {
          group.push_back(NodeId{i});
          net.register_node(NodeId{i}, [&sim, &last, mode](const sim::Message&) {
            last[mode] = std::max(last[mode], sim.now());
          });
        }
        sim::Message msg;
        msg.type = sim::MsgType::kStateGrant;
        msg.from = NodeId{0};
        msg.size_bytes = bytes;
        msg.payload = std::make_shared<Payload>();
        if (mode == 0) {
          net.multicast(NodeId{0}, group, msg, sim::TrafficClass::kIntraShard);
        } else {
          net.gossip(NodeId{0}, group, msg, sim::TrafficClass::kIntraShard);
        }
        sim.run_until_idle();
      }
      const double unicast_s = static_cast<double>(last[0]) / kSecond;
      const double gossip_s = static_cast<double>(last[1]) / kSecond;
      std::printf("%-12u %-14u %-18.3f %-18.3f %.1fx\n", k, bytes, unicast_s, gossip_s,
                  gossip_s > 0 ? unicast_s / gossip_s : 0.0);
      if (k >= 64 && bytes >= 256 * 1024) gossip_wins_large = gossip_wins_large && gossip_s < unicast_s;
    }
  }
  std::printf("\n");
  rep.check(gossip_wins_large,
              "gossip dissemination beats unicast-to-all for large payloads/groups");
  return rep.finish("bench_ablation_dissemination");
}
