// Fig. 3e: share of cross-shard communication when processing smart-contract
// transactions, vs the number of shards.  The paper reports a large and
// rising cross-shard ratio (>90% at 12 shards with secure cross-shard
// broadcast).  We measure the CX Func prototype under the quorum-broadcast
// transport (f+1 senders x all receivers, the "more secure scheme" of
// §VII-E); the client-relay transport is shown for comparison.
#include <cstdio>

#include "bench_config.hpp"
#include "report.hpp"

int main() {
  using namespace jenga;
  using namespace jenga::bench;
  ShapeReporter rep;
  using namespace jenga::harness;

  header("Fig. 3e — cross-shard communication ratio vs number of shards",
         "paper Fig. 3e");

  std::printf("%-8s %-26s %-26s\n", "Shards", "cross ratio (quorum bcast)",
              "cross ratio (client relay)");
  std::vector<double> quorum_ratio;
  for (std::uint32_t s : kShardCounts) {
    RunConfig q = perf_config(SystemKind::kCxFunc, s);
    q.contract_txs /= 2;  // traffic accounting needs volume, not duration
    q.closed_loop_window /= 2;
    q.cross_mode = baselines::CrossShardMode::kQuorumBroadcast;
    RunConfig relay = q;
    relay.cross_mode = baselines::CrossShardMode::kClientRelay;
    const auto rq = run_experiment(q);
    const auto rr = run_experiment(relay);
    quorum_ratio.push_back(rq.cross_ratio);
    std::printf("%-8u %-26.3f %-26.3f\n", s, rq.cross_ratio, rr.cross_ratio);
  }
  std::printf("\n");
  rep.check(quorum_ratio.back() > quorum_ratio.front(),
              "Fig.3e: cross-shard ratio rises with the number of shards");
  rep.check(quorum_ratio.back() > 0.5,
              "Fig.3e: cross-shard traffic dominates at 12 shards (paper: >90%)");
  return rep.finish("bench_fig3e_cross_shard_ratio");
}
