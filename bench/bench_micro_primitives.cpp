// Micro-benchmarks (google-benchmark) for the hot primitives underneath the
// experiment harness: hashing, curve arithmetic, signatures, the VM, the
// Merkle tree, and a full simulated consensus round.
#include <benchmark/benchmark.h>

#include "consensus/bft.hpp"
#include "consensus/messages.hpp"
#include "crypto/fastcrypto.hpp"
#include "crypto/merkle.hpp"
#include "crypto/schnorr.hpp"
#include "crypto/sha256.hpp"
#include "ledger/portable_state.hpp"
#include "vm/assembler.hpp"
#include "vm/interpreter.hpp"
#include "workload/trace.hpp"

namespace {

using namespace jenga;

void BM_Sha256_1KiB(benchmark::State& state) {
  std::vector<std::uint8_t> data(1024, 0xAB);
  for (auto _ : state) benchmark::DoNotOptimize(crypto::sha256(data));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Sha256_1KiB);

void BM_Secp256k1_ScalarMulG(benchmark::State& state) {
  const crypto::U256 k = crypto::U256::from_hex("deadbeefcafebabe1234567890");
  for (auto _ : state) benchmark::DoNotOptimize(crypto::point_mul_g(k));
}
BENCHMARK(BM_Secp256k1_ScalarMulG);

void BM_Schnorr_Sign(benchmark::State& state) {
  const auto kp = crypto::keypair_from_seed(1);
  const std::vector<std::uint8_t> msg{1, 2, 3, 4};
  for (auto _ : state) benchmark::DoNotOptimize(crypto::sign(kp, msg));
}
BENCHMARK(BM_Schnorr_Sign);

void BM_Schnorr_Verify(benchmark::State& state) {
  const auto kp = crypto::keypair_from_seed(1);
  const std::vector<std::uint8_t> msg{1, 2, 3, 4};
  const auto sig = crypto::sign(kp, msg);
  for (auto _ : state) benchmark::DoNotOptimize(crypto::verify(kp.public_key, msg, sig));
}
BENCHMARK(BM_Schnorr_Verify);

void BM_FastCrypto_AggregateVerify64(benchmark::State& state) {
  std::vector<crypto::FastKey> keys;
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 64; ++i) {
    keys.push_back(crypto::fast_keypair(i));
    ids.push_back(keys.back().public_id);
  }
  const Hash256 msg = crypto::sha256("m");
  std::vector<bool> part(64, true);
  const auto agg = crypto::fast_aggregate(keys, part, msg);
  for (auto _ : state)
    benchmark::DoNotOptimize(crypto::fast_verify_multisig(ids, msg, agg));
}
BENCHMARK(BM_FastCrypto_AggregateVerify64);

void BM_Merkle_Root4096(benchmark::State& state) {
  std::vector<Hash256> leaves;
  for (int i = 0; i < 4096; ++i) leaves.push_back(crypto::sha256("leaf" + std::to_string(i)));
  for (auto _ : state) benchmark::DoNotOptimize(crypto::merkle_root(leaves));
}
BENCHMARK(BM_Merkle_Root4096);

void BM_Vm_GeneratedContractTx(benchmark::State& state) {
  workload::TraceConfig cfg;
  cfg.num_contracts = 64;
  workload::TraceGenerator gen(cfg, Rng(3));
  const auto tx = gen.contract_tx(1'000'000, 0);
  for (auto _ : state) {
    ledger::PortableState st;
    for (std::size_t s = 0; s < tx.contracts.size(); ++s)
      st.contracts[tx.contracts[s]] = gen.initial_state(tx.contracts[s].value);
    st.balances[tx.sender] = 1'000'000;
    ledger::PortableStateView view(std::move(st));
    std::vector<const vm::ContractLogic*> logic;
    for (auto c : tx.contracts) logic.push_back(gen.contracts()[c.value].get());
    vm::ExecLimits limits;
    limits.gas_limit = 100'000'000;
    vm::Interpreter interp(logic, view, limits);
    benchmark::DoNotOptimize(interp.run(tx.sender, tx.steps));
  }
}
BENCHMARK(BM_Vm_GeneratedContractTx);

/// One full simulated BFT height over a 32-node group (the building block of
/// every experiment): measures simulator + consensus machinery overhead.
void BM_Simulated_ConsensusRound(benchmark::State& state) {
  using namespace jenga::consensus;
  struct App : BftApp {
    std::uint64_t decided = 0;
    std::optional<ConsensusValue> propose(std::uint64_t height) override {
      if (height > 0) return std::nullopt;
      ConsensusValue v;
      v.digest = crypto::sha256("v");
      v.size_bytes = 4096;
      return v;
    }
    bool validate(std::uint64_t, const ConsensusValue&) override { return true; }
    void on_decide(std::uint64_t, const ConsensusValue&, const QuorumCert&) override {
      ++decided;
    }
  };
  for (auto _ : state) {
    sim::Simulator sim;
    sim::Network net(sim, sim::NetConfig{}, Rng(1));
    auto cfg = std::make_shared<BftConfig>();
    for (std::uint32_t i = 0; i < 32; ++i) cfg->members.push_back(NodeId{i});
    std::vector<std::unique_ptr<App>> apps;
    std::vector<std::unique_ptr<Replica>> replicas;
    for (std::uint32_t i = 0; i < 32; ++i) {
      apps.push_back(std::make_unique<App>());
      replicas.push_back(std::make_unique<Replica>(net, NodeId{i}, cfg, *apps.back()));
    }
    for (std::uint32_t i = 0; i < 32; ++i) {
      Replica* r = replicas[i].get();
      net.register_node(NodeId{i}, [r](const sim::Message& m) { r->on_message(m); });
    }
    for (auto& r : replicas) r->start();
    sim.run_until(5 * kSecond);
    benchmark::DoNotOptimize(apps[0]->decided);
  }
}
BENCHMARK(BM_Simulated_ConsensusRound)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
