// Fig. 5b: throughput breakdown of Jenga's two design points.  The paper
// attributes up to ~2.1x of the gain to Network-Wide Logic Storage (removing
// multi-round cross-shard execution) and ~1.2x to the Orthogonal Lattice
// Structure (removing cross-shard state movement).
#include <cstdio>
#include <map>

#include "bench_config.hpp"
#include "report.hpp"

int main() {
  using namespace jenga;
  using namespace jenga::bench;
  using namespace jenga::harness;

  header("Fig. 5b — throughput breakdown (ablations of the two designs)",
         "paper Fig. 5b");

  const SystemKind systems[] = {SystemKind::kJengaNoGlobalLogic, SystemKind::kJengaNoLattice,
                                SystemKind::kJenga};
  std::map<std::pair<int, std::uint32_t>, double> tps;
  std::printf("%-16s", "TPS");
  for (std::uint32_t s : kShardCounts) std::printf("  S=%-8u", s);
  std::printf("\n");
  for (int i = 0; i < 3; ++i) {
    std::printf("%-16s", system_name(systems[i]));
    for (std::uint32_t s : kShardCounts) {
      RunConfig cfg = perf_config(systems[i], s);
      cfg.contract_txs /= 4;       // ratios need less volume than absolutes
      cfg.closed_loop_window /= 4;
      const auto r = run_experiment(cfg);
      tps[{i, s}] = r.tps;
      std::printf("  %-10.1f", r.tps);
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  const double full12 = tps[{2, 12}];
  const double no_nwls12 = tps[{0, 12}];
  const double no_ols12 = tps[{1, 12}];
  std::printf("\nat 12 shards: NWLS gain %.2fx (full vs w/o NWLS), OLS gain %.2fx (full vs w/o OLS)\n\n",
              full12 / no_nwls12, full12 / no_ols12);

  shape_check(full12 > no_nwls12,
              "Fig.5b: Network-Wide Logic Storage contributes throughput gain");
  shape_check(full12 > no_ols12,
              "Fig.5b: Orthogonal Lattice Structure contributes throughput gain");
  shape_check(full12 / no_nwls12 > full12 / no_ols12,
              "Fig.5b: NWLS contributes MORE than OLS (paper: 2.1x vs 1.2x)");
  return finish("bench_fig5b_throughput_breakdown");
}
