// Fig. 5b: throughput breakdown of Jenga's two design points.  The paper
// attributes up to ~2.1x of the gain to Network-Wide Logic Storage (removing
// multi-round cross-shard execution) and ~1.2x to the Orthogonal Lattice
// Structure (removing cross-shard state movement).
//
// The phase-share table (tracer-derived) explains the gains: the ablations
// spend a larger share of every transaction's lifetime outside execution
// (state movement / multi-round coordination), which is exactly the
// capacity the two designs reclaim.
#include <cstdio>
#include <map>

#include "bench_config.hpp"
#include "report.hpp"

int main(int argc, char** argv) {
  using namespace jenga;
  using namespace jenga::bench;
  using namespace jenga::harness;

  header("Fig. 5b — throughput breakdown (ablations of the two designs)",
         "paper Fig. 5b");
  const std::string trace_out = trace_out_from_args(argc, argv);
  ShapeReporter rep;

  const SystemKind systems[] = {SystemKind::kJengaNoGlobalLogic, SystemKind::kJengaNoLattice,
                                SystemKind::kJenga};
  std::map<std::pair<int, std::uint32_t>, double> tps;
  std::map<int, telemetry::PhaseBreakdown> bd12;
  std::printf("%-16s", "TPS");
  for (std::uint32_t s : kShardCounts) std::printf("  S=%-8u", s);
  std::printf("\n");
  for (int i = 0; i < 3; ++i) {
    std::printf("%-16s", system_name(systems[i]));
    for (std::uint32_t s : kShardCounts) {
      RunConfig cfg = perf_config(systems[i], s);
      cfg.contract_txs /= 4;       // ratios need less volume than absolutes
      cfg.closed_loop_window /= 4;
      if (s == 12 && systems[i] == SystemKind::kJenga) cfg.trace_out = trace_out;
      const auto r = run_experiment(cfg);
      tps[{i, s}] = r.tps;
      if (s == 12) bd12[i] = r.breakdown;
      std::printf("  %-10.1f", r.tps);
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  // Phase shares at 12 shards: fraction of the mean commit latency spent in
  // each tracer interval.  The ablations' lost throughput shows up as time
  // outside the execute phase.
  std::printf("\nphase share of commit latency at S=12 (%%, from the phase tracer)\n");
  std::printf("%-16s", "system");
  for (std::size_t p = 0; p < telemetry::kIntervalCount; ++p)
    std::printf("  %-11s", telemetry::interval_name(p));
  std::printf("\n");
  std::map<int, double> exec_share;
  for (int i = 0; i < 3; ++i) {
    const auto& b = bd12[i];
    const double total = b.mean_total_seconds() > 0 ? b.mean_total_seconds() : 1.0;
    std::printf("%-16s", system_name(systems[i]));
    for (std::size_t p = 0; p < telemetry::kIntervalCount; ++p) {
      const double share = 100.0 * b.mean_interval_seconds(p) / total;
      if (p == 2) exec_share[i] = share;  // "execute"
      std::printf("  %-11.1f", share);
    }
    std::printf("\n");
  }

  const double full12 = tps[{2, 12}];
  const double no_nwls12 = tps[{0, 12}];
  const double no_ols12 = tps[{1, 12}];
  std::printf("\nat 12 shards: NWLS gain %.2fx (full vs w/o NWLS), OLS gain %.2fx (full vs w/o OLS)\n\n",
              full12 / no_nwls12, full12 / no_ols12);

  rep.check(full12 > no_nwls12,
            "Fig.5b: Network-Wide Logic Storage contributes throughput gain");
  rep.check(full12 > no_ols12,
            "Fig.5b: Orthogonal Lattice Structure contributes throughput gain");
  rep.check(full12 / no_nwls12 > full12 / no_ols12,
            "Fig.5b: NWLS contributes MORE than OLS (paper: 2.1x vs 1.2x)");
  rep.check(bd12[2].committed > 0 && bd12[0].committed > 0 && bd12[1].committed > 0,
            "Fig.5b: tracer produced a phase breakdown for every design point");
  return rep.finish("bench_fig5b_throughput_breakdown");
}
