// Resilience sweep: commit rate and latency of the full Jenga pipeline under
// a grid of message-drop rates x Byzantine nodes per shard, with the
// post-run invariant audit (no leaked locks, conserved balance, no divergent
// decides, no limbo transactions) as the safety verdict for every cell.
// Emits a machine-readable JSON report (stdout + bench_resilience.json) next
// to the usual table + shape checks.
//
// Every cell is traced: the phase tracer's breakdown shows *which* pipeline
// phase the faults inflate (checked against the clean cell below), and
// `--trace-out <file>.jsonl` exports the reference faulted cell's full
// telemetry (metrics, per-tx phase intervals, BFT spans, causal span DAG)
// for offline analysis / the CI trace linter.  A failed invariant audit
// additionally dumps the flight recorder's last-events window to
// flight_d<drop>_b<byz>-N.jsonl (DESIGN.md §11).  JENGA_RESILIENCE_QUICK=1
// shrinks the sweep to {clean, 10% drop} for smoke runs.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/jenga_system.hpp"
#include "harness/genesis.hpp"
#include "report.hpp"
#include "security/detector.hpp"
#include "security/fault_injector.hpp"
#include "telemetry/telemetry.hpp"
#include "workload/trace.hpp"

namespace {

using namespace jenga;

struct CellResult {
  double drop = 0.0;
  int byz_per_shard = 0;
  std::uint64_t submitted = 0;
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
  double commit_rate = 0.0;
  double p50_s = 0.0;
  double p99_s = 0.0;
  double avg_s = 0.0;
  bool invariants_ok = false;
  telemetry::PhaseBreakdown breakdown;
  std::shared_ptr<telemetry::Telemetry> telemetry;
};

bool quick_mode() {
  const char* env = std::getenv("JENGA_RESILIENCE_QUICK");
  return env != nullptr && std::strcmp(env, "1") == 0;
}

bool gray_quick_mode() {
  const char* env = std::getenv("JENGA_GRAY_QUICK");
  return env != nullptr && std::strcmp(env, "1") == 0;
}

SimTime horizon() {
  // Drain horizon per cell.  The 20%-drop column is glacial (worst observed
  // commit lands around t=2800s) but not wedged; the horizon must cover it
  // or the "every transaction resolves" check reports false limbo.  Quick
  // mode only runs up to 10% drop, which settles far earlier.
  const char* env = std::getenv("JENGA_RESILIENCE_HORIZON_S");
  const long long secs = env != nullptr ? std::atoll(env) : 0;
  if (secs > 0) return secs * jenga::kSecond;  // garbage/unset -> default
  return (quick_mode() ? 1500 : 3000) * jenga::kSecond;
}

CellResult run_cell(double drop, int byz_per_shard) {
  constexpr std::uint32_t kShards = 2;
  const int kTxs = quick_mode() ? 24 : 40;

  core::JengaConfig cfg;
  cfg.num_shards = kShards;
  cfg.nodes_per_shard = 8;  // 16 nodes, quorum 5 of 8, f = 2 per group
  cfg.view_timeout = 15 * kSecond;
  cfg.pending_timeout = 300 * kSecond;

  workload::TraceConfig tc;
  tc.num_contracts = 150;
  tc.num_accounts = 200;
  tc.max_contracts_per_tx = 4;
  tc.max_steps = 8;
  workload::TraceGenerator gen(tc, Rng(7));

  sim::Simulator sim;
  sim::Network net(sim, sim::NetConfig{}, Rng(cfg.seed));
  core::JengaSystem system(sim, net, cfg, harness::make_genesis(gen));
  security::FaultInjector injector(sim, net, system);
  auto telemetry = std::make_shared<telemetry::Telemetry>();
  // Chaos cells run with the full observability layer on (it is passive):
  // the --trace-out export carries the causal span DAG, and any audit
  // failure dumps a flight-recorder window for post-mortem debugging.
  telemetry->causal.enable(true);
  telemetry->flight.configure(kShards * 8, 64);
  char dump_prefix[64];
  std::snprintf(dump_prefix, sizeof(dump_prefix), "flight_d%02d_b%d",
                static_cast<int>(drop * 100), byz_per_shard);
  telemetry->flight.set_dump_path(dump_prefix);
  net.set_telemetry(telemetry.get());
  system.set_telemetry(telemetry.get());
  const std::uint64_t initial_balance = system.total_account_balance();
  system.start();

  security::FaultPlan plan;
  if (drop > 0) {
    sim::LinkFaults faults;
    faults.drop_rate = drop;
    plan.ramps.push_back({0, faults});
  }
  // Spread the Byzantine nodes across channels via the lattice subgroups so
  // no group exceeds its f = floor((k-1)/3) tolerance: `byz_per_shard` nodes
  // per shard also means at most that many per channel.
  const auto& lat = system.lattice();
  for (std::uint32_t s = 0; s < kShards; ++s) {
    for (int c = 0; c < byz_per_shard; ++c) {
      const NodeId node = lat.subgroup(ShardId{s}, ChannelId{(s + c) % kShards})[0];
      const auto mode = (s + c) % 2 == 0 ? consensus::ByzantineMode::kEquivocator
                                         : consensus::ByzantineMode::kSilent;
      plan.byzantine.push_back({node, mode});
    }
  }
  injector.arm(plan);

  for (int i = 0; i < kTxs; ++i) {
    sim.run_until(sim.now() + kSecond);
    auto tx = std::make_shared<ledger::Transaction>(gen.contract_tx(1'000'000, sim.now()));
    system.submit(tx);
  }
  sim.run_until(horizon());

  const TxStats& st = system.stats();
  const auto report = security::check_invariants(system, initial_balance);
  CellResult r;
  r.drop = drop;
  r.byz_per_shard = byz_per_shard;
  r.submitted = st.submitted;
  r.committed = st.committed;
  r.aborted = st.aborted;
  r.commit_rate = static_cast<double>(st.committed) / static_cast<double>(st.submitted);
  const auto q = st.latency_quantiles_seconds({0.5, 0.99});
  r.p50_s = q[0];
  r.p99_s = q[1];
  r.avg_s = st.avg_latency_seconds();
  r.invariants_ok = report.ok();
  r.breakdown = telemetry->tracer.breakdown();
  // Fold the network fault counters in so the exported trace is
  // self-describing about what the cell endured.
  auto& reg = telemetry->registry;
  reg.counter("net.faults.dropped").set(net.fault_stats().dropped);
  reg.counter("net.faults.duplicated").set(net.fault_stats().duplicated);
  reg.counter("tx.submitted").set(st.submitted);
  r.telemetry = telemetry;
  if (!report.ok()) {
    std::printf("%s\n", report.describe().c_str());
    // Capture the post-mortem window (also written to <dump_prefix>-N.jsonl).
    telemetry->flight.trigger("invariant.violation");
  }
  // Detach before net/system go out of scope (the telemetry outlives them
  // through the shared_ptr in the result).
  net.set_telemetry(nullptr);
  system.set_telemetry(nullptr);
  return r;
}

// ---------------------------------------------------------------------------
// Gray-failure sweep (DESIGN.md §14): degraded-but-alive victims under the
// self-healing stack — phi-accrual detection, adaptive timeouts, hedged 2PC
// legs, and the stuck-2PC recovery ladder.  Each cell runs a transfer burst
// THROUGH the fault window (feeding the watchdog wedged rounds to settle),
// then a measured batch after the window heals; the post-heal p99 against the
// clean cell's is the "did it actually recover" verdict.

struct GrayCellResult {
  std::string name;
  std::uint64_t submitted = 0;
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
  bool invariants_ok = false;
  std::uint64_t stuck_flagged = 0;   // watchdog flags over the run
  std::uint64_t stuck_at_end = 0;    // wedged rounds left (must be 0)
  std::uint64_t gray_dropped = 0;
  security::DetectorStats detector;
  core::RecoveryStats recovery;
  double detect_s = 0.0;   // window start -> first suspicion (0 = none raised)
  double recover_s = 0.0;  // window start -> last ladder resolution (0 = none)
  double postheal_p99_s = 0.0;
};

GrayCellResult run_gray_cell(const std::string& name,
                             const std::vector<security::GrayFault>& gray) {
  constexpr std::uint32_t kShards = 2;
  constexpr SimTime kWindowStart = 5 * kSecond;
  constexpr SimTime kWindowLen = 30 * kSecond;

  core::JengaConfig cfg;
  cfg.num_shards = kShards;
  cfg.nodes_per_shard = 8;
  cfg.view_timeout = 15 * kSecond;
  cfg.pending_timeout = 600 * kSecond;
  cfg.twopc_stuck_timeout = 10 * kSecond;
  cfg.recovery.backoff = 8 * kSecond;

  workload::TraceConfig tc;
  tc.num_contracts = 150;
  tc.num_accounts = 200;
  workload::TraceGenerator gen(tc, Rng(7));

  sim::Simulator sim;
  sim::Network net(sim, sim::NetConfig{}, Rng(cfg.seed));
  core::JengaSystem system(sim, net, cfg, harness::make_genesis(gen));
  security::FaultInjector injector(sim, net, system);
  security::FailureDetector detector(sim);
  net.set_arrival_observer(&detector);
  system.set_failure_detector(&detector);
  auto telemetry = std::make_shared<telemetry::Telemetry>();
  telemetry->flight.configure(kShards * 8, 64);
  telemetry->flight.set_dump_path(("flight_gray_" + name).c_str());
  net.set_telemetry(telemetry.get());
  system.set_telemetry(telemetry.get());
  const std::uint64_t initial_balance = system.total_account_balance();
  system.start();

  security::FaultPlan plan;
  for (security::GrayFault g : gray) {
    g.at = kWindowStart;
    g.duration = kWindowLen;
    plan.gray.push_back(g);
  }
  injector.arm(plan);
  if (plan.event_count() > 0) detector.arm(true);

  // Burst phase: transfers submitted into the fault window, so 2PC legs die
  // on the degraded paths and the watchdog has rounds to settle.
  for (int i = 0; i < 24; ++i) {
    sim.run_until(sim.now() + 750 * kMillisecond);
    auto tx = std::make_shared<ledger::Transaction>(gen.transfer_tx(sim.now()));
    system.submit(tx);
  }
  // Heal + settle: the window closes at 35 s; the ladder finishes its work.
  sim.run_until(70 * kSecond);
  const std::size_t preheal_samples = system.stats().commit_latencies.size();

  // Measured phase: the post-heal batch whose tail the gate compares.
  for (int i = 0; i < 30; ++i) {
    sim.run_until(sim.now() + kSecond);
    auto tx = std::make_shared<ledger::Transaction>(gen.transfer_tx(sim.now()));
    system.submit(tx);
  }
  sim.run_until(300 * kSecond);

  const TxStats& st = system.stats();
  const auto report = security::check_invariants(system, initial_balance);
  GrayCellResult r;
  r.name = name;
  r.submitted = st.submitted;
  r.committed = st.committed;
  r.aborted = st.aborted;
  r.invariants_ok = report.ok();
  r.stuck_flagged = system.twopc_stuck_total();
  r.stuck_at_end = system.twopc_stuck_now();
  r.gray_dropped = net.fault_stats().gray_dropped;
  r.detector = detector.stats();
  r.recovery = system.recovery_stats();
  if (r.detector.first_suspicion_at > 0)
    r.detect_s = static_cast<double>(r.detector.first_suspicion_at - kWindowStart) /
                 static_cast<double>(kSecond);
  if (r.recovery.last_resolved_at > 0)
    r.recover_s = static_cast<double>(r.recovery.last_resolved_at - kWindowStart) /
                  static_cast<double>(kSecond);
  std::vector<SimTime> tail(st.commit_latencies.begin() +
                                static_cast<std::ptrdiff_t>(
                                    std::min(preheal_samples, st.commit_latencies.size())),
                            st.commit_latencies.end());
  if (!tail.empty()) {
    std::sort(tail.begin(), tail.end());
    const std::size_t idx =
        static_cast<std::size_t>(0.99 * static_cast<double>(tail.size() - 1));
    r.postheal_p99_s = static_cast<double>(tail[idx]) / static_cast<double>(kSecond);
  }
  if (!report.ok()) {
    std::printf("%s\n", report.describe().c_str());
    telemetry->flight.trigger("invariant.violation");
  }
  net.set_telemetry(nullptr);
  system.set_telemetry(nullptr);
  net.set_arrival_observer(nullptr);
  system.set_failure_detector(nullptr);
  return r;
}

std::string gray_to_json(const std::vector<GrayCellResult>& cells) {
  std::ostringstream out;
  out << "{\"bench\":\"gray\",\"cells\":[";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const GrayCellResult& c = cells[i];
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "{\"cell\":\"%s\",\"submitted\":%llu,\"committed\":%llu,\"aborted\":%llu,"
        "\"invariants_ok\":%s,\"stuck_flagged\":%llu,\"stuck_at_end\":%llu,"
        "\"gray_dropped\":%llu,\"detector_samples\":%llu,\"suspicions\":%llu,"
        "\"time_to_detect_s\":%.2f,\"probes\":%llu,\"abort_queries\":%llu,"
        "\"refunds\":%llu,\"retries\":%llu,\"resolved\":%llu,\"hedged\":%llu,"
        "\"time_to_recover_s\":%.2f,\"postheal_p99_s\":%.3f}",
        c.name.c_str(), static_cast<unsigned long long>(c.submitted),
        static_cast<unsigned long long>(c.committed),
        static_cast<unsigned long long>(c.aborted), c.invariants_ok ? "true" : "false",
        static_cast<unsigned long long>(c.stuck_flagged),
        static_cast<unsigned long long>(c.stuck_at_end),
        static_cast<unsigned long long>(c.gray_dropped),
        static_cast<unsigned long long>(c.detector.samples),
        static_cast<unsigned long long>(c.detector.suspicions), c.detect_s,
        static_cast<unsigned long long>(c.recovery.probes_sent),
        static_cast<unsigned long long>(c.recovery.abort_queries),
        static_cast<unsigned long long>(c.recovery.refunds),
        static_cast<unsigned long long>(c.recovery.retries),
        static_cast<unsigned long long>(c.recovery.resolved),
        static_cast<unsigned long long>(c.recovery.hedged_sends), c.recover_s,
        c.postheal_p99_s);
    out << (i ? "," : "") << buf;
  }
  out << "]}";
  return out.str();
}

void run_gray_sweep(jenga::bench::ShapeReporter& rep) {
  using security::GrayFault;
  using security::GrayFaultKind;
  std::printf("\nGray-failure sweep — self-healing under degraded-but-alive victims\n");

  // Victims by initial lattice position: shard 0 holds nodes 0..7, shard 1
  // holds 8..15 (epoch 0 assignment is identity at this scale).
  GrayFault slow_a;  // one slow node per shard
  slow_a.kind = GrayFaultKind::kSlowNode;
  slow_a.node = NodeId{1};
  slow_a.serialize_factor = 12.0;
  slow_a.proc_delay = 3 * kMillisecond;
  GrayFault slow_b = slow_a;
  slow_b.node = NodeId{9};
  GrayFault link;  // a degraded cross-shard link pair
  link.kind = GrayFaultKind::kLinkDegrade;
  link.node = NodeId{2};
  link.peer = NodeId{10};
  link.extra_delay = 80 * kMillisecond;
  GrayFault link2 = link;
  link2.node = NodeId{3};
  link2.peer = NodeId{11};
  // Severely lossy NICs on a minority of shard 1: 2PC legs landing on these
  // contacts mostly vanish — the wedge generator for the recovery ladder.
  GrayFault lossy_a;
  lossy_a.kind = GrayFaultKind::kLossyNic;
  lossy_a.node = NodeId{8};
  lossy_a.drop_rate = 0.95;
  GrayFault lossy_b = lossy_a;
  lossy_b.node = NodeId{10};
  GrayFault lossy_c = lossy_a;
  lossy_c.node = NodeId{12};

  struct CellSpec {
    const char* name;
    std::vector<GrayFault> gray;
  };
  std::vector<CellSpec> specs = {
      {"clean", {}},
      {"latency_inflation", {link, link2}},
      {"slow_node", {slow_a, slow_b}},
      {"lossy_nic", {lossy_a, lossy_b, lossy_c}},
      {"combined", {slow_a, link, lossy_a, lossy_b, lossy_c}},
  };
  if (gray_quick_mode()) {
    std::printf("(JENGA_GRAY_QUICK=1: clean + lossy_nic only)\n");
    specs = {{"clean", {}}, {"lossy_nic", {lossy_a, lossy_b, lossy_c}}};
  }

  std::vector<GrayCellResult> cells;
  std::printf("%-18s %-10s %-8s %-8s %-8s %-9s %-9s %-12s %-10s\n", "cell", "committed",
              "stuck", "probes", "aborts", "detect(s)", "recov(s)", "postp99(s)",
              "invariants");
  for (const CellSpec& spec : specs) {
    GrayCellResult r = run_gray_cell(spec.name, spec.gray);
    std::printf("%-18s %-10llu %-8llu %-8llu %-8llu %-9.2f %-9.2f %-12.3f %-10s\n",
                r.name.c_str(), static_cast<unsigned long long>(r.committed),
                static_cast<unsigned long long>(r.stuck_flagged),
                static_cast<unsigned long long>(r.recovery.probes_sent),
                static_cast<unsigned long long>(r.recovery.abort_queries), r.detect_s,
                r.recover_s, r.postheal_p99_s, r.invariants_ok ? "ok" : "VIOLATION");
    std::fflush(stdout);
    cells.push_back(std::move(r));
  }

  const GrayCellResult* clean = nullptr;
  for (const GrayCellResult& c : cells)
    if (c.name == "clean") clean = &c;
  bool all_ok = true;
  bool all_resolved = true;
  bool all_settled = true;
  std::uint64_t total_flagged = 0;
  for (const GrayCellResult& c : cells) {
    all_ok = all_ok && c.invariants_ok;
    all_resolved = all_resolved && (c.committed + c.aborted == c.submitted);
    all_settled = all_settled && c.stuck_at_end == 0;
    total_flagged += c.stuck_flagged;
  }
  rep.check(all_ok, "gray sweep: safety invariants hold in every cell");
  rep.check(all_resolved, "gray sweep: every transaction resolves (no limbo)");
  rep.check(total_flagged > 0, "gray sweep: the wedge generator flagged stuck rounds");
  rep.check(all_settled, "gray sweep: every flagged stuck round settled by the ladder");
  if (clean != nullptr && clean->postheal_p99_s > 0) {
    bool p99_ok = true;
    for (const GrayCellResult& c : cells) {
      if (c.postheal_p99_s > 1.5 * clean->postheal_p99_s) {
        std::printf("post-heal p99 regression: %s %.3fs vs clean %.3fs\n", c.name.c_str(),
                    c.postheal_p99_s, clean->postheal_p99_s);
        p99_ok = false;
      }
    }
    rep.check(p99_ok, "gray sweep: post-heal commit p99 within 1.5x of the clean cell");
  }

  const std::string json = gray_to_json(cells);
  std::printf("\nJSON: %s\n", json.c_str());
  std::ofstream("BENCH_gray.json") << json << "\n";
  std::printf("wrote BENCH_gray.json\n");
}

std::string to_json(const std::vector<CellResult>& cells) {
  std::ostringstream out;
  out << "{\"bench\":\"resilience\",\"cells\":[";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& c = cells[i];
    char buf[384];
    std::snprintf(buf, sizeof(buf),
                  "{\"drop\":%.2f,\"byz_per_shard\":%d,\"submitted\":%llu,"
                  "\"committed\":%llu,\"aborted\":%llu,\"commit_rate\":%.4f,"
                  "\"p50_s\":%.3f,\"p99_s\":%.3f,\"avg_s\":%.3f,"
                  "\"dominant_phase\":\"%s\",\"invariants_ok\":%s}",
                  c.drop, c.byz_per_shard,
                  static_cast<unsigned long long>(c.submitted),
                  static_cast<unsigned long long>(c.committed),
                  static_cast<unsigned long long>(c.aborted), c.commit_rate,
                  c.p50_s, c.p99_s, c.avg_s,
                  telemetry::interval_name(c.breakdown.dominant_interval()),
                  c.invariants_ok ? "true" : "false");
    out << (i ? "," : "") << buf;
  }
  out << "]}";
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace jenga::bench;

  header("Resilience — commit rate under drop rate x Byzantine fraction",
         "fault-tolerance claims, paper SSIV/SSVI");
  const std::string trace_out = trace_out_from_args(argc, argv);
  ShapeReporter rep;

  std::vector<double> drops = {0.0, 0.05, 0.10, 0.20};
  std::vector<int> byz_counts = {0, 1, 2};
  if (quick_mode()) {
    std::printf("(JENGA_RESILIENCE_QUICK=1: clean + 10%% drop only)\n");
    drops = {0.0, 0.10};
    byz_counts = {0};
  }

  std::vector<CellResult> cells;
  std::printf("%-8s %-6s %-10s %-8s %-8s %-8s %-8s %-8s %-10s\n", "drop", "byz",
              "committed", "aborted", "rate", "p50(s)", "p99(s)", "avg(s)", "invariants");
  for (int byz : byz_counts) {
    for (double drop : drops) {
      const CellResult r = run_cell(drop, byz);
      std::printf("%-8.2f %-6d %-10llu %-8llu %-8.3f %-8.2f %-8.2f %-8.2f %-10s\n", r.drop,
                  r.byz_per_shard, static_cast<unsigned long long>(r.committed),
                  static_cast<unsigned long long>(r.aborted), r.commit_rate, r.p50_s,
                  r.p99_s, r.avg_s, r.invariants_ok ? "ok" : "VIOLATION");
      std::fflush(stdout);
      cells.push_back(r);
    }
  }
  std::printf("\n");

  bool all_invariants = true;
  bool all_resolved = true;
  const CellResult* clean = nullptr;
  const CellResult* faulted = nullptr;  // reference faulted cell: 10% drop, 0 byz
  for (const CellResult& c : cells) {
    all_invariants = all_invariants && c.invariants_ok;
    all_resolved = all_resolved && (c.committed + c.aborted == c.submitted);
    if (c.drop == 0.0 && c.byz_per_shard == 0) clean = &c;
    if (c.drop == 0.10 && c.byz_per_shard == 0) faulted = &c;
  }

  // Clean-vs-faulted phase attribution: the tracer localises the fault's
  // latency cost to a specific phase instead of smearing it over the mean.
  if (clean != nullptr && faulted != nullptr && clean->breakdown.committed > 0 &&
      faulted->breakdown.committed > 0) {
    std::printf("phase means, clean vs 10%% drop (s): fault-inflated phase from the tracer\n");
    std::size_t worst = 0;
    double worst_ratio = 0.0;
    for (std::size_t p = 0; p < telemetry::kIntervalCount; ++p) {
      const double base = clean->breakdown.mean_interval_seconds(p);
      const double hit = faulted->breakdown.mean_interval_seconds(p);
      const double ratio = base > 0 ? hit / base : (hit > 0 ? 1e9 : 1.0);
      std::printf("  %-12s %8.3f -> %8.3f  (x%.2f)\n", telemetry::interval_name(p), base, hit,
                  ratio);
      if (ratio > worst_ratio) {
        worst_ratio = ratio;
        worst = p;
      }
    }
    std::printf("  fault-inflated phase: %s (x%.2f)\n\n", telemetry::interval_name(worst),
                worst_ratio);
    rep.check(worst_ratio >= 1.3,
              "tracer identifies the fault-inflated phase (>= 1.3x vs clean run)");
  }

  rep.check(all_invariants, "safety invariants hold in every cell of the sweep");
  rep.check(all_resolved, "every transaction resolves (no limbo) in every cell");
  rep.check(clean != nullptr && clean->commit_rate == 1.0, "fault-free cell commits 100%");
  bool faulted_ok = true;
  for (const CellResult& c : cells)
    if (c.drop <= 0.10 && c.byz_per_shard <= 1) faulted_ok = faulted_ok && c.commit_rate >= 0.9;
  rep.check(faulted_ok, "commit rate stays >= 90% up to 10% drop + 1 Byzantine/shard");

  if (!trace_out.empty() && faulted != nullptr && faulted->telemetry) {
    std::ofstream out(trace_out);
    if (out) {
      faulted->telemetry->export_jsonl(out);
      std::printf("wrote %s (telemetry of the 10%% drop cell)\n", trace_out.c_str());
    }
  }

  const std::string json = to_json(cells);
  std::printf("\nJSON: %s\n", json.c_str());
  std::ofstream("bench_resilience.json") << json << "\n";
  std::printf("wrote bench_resilience.json\n");

  run_gray_sweep(rep);
  return rep.finish("bench_resilience");
}
