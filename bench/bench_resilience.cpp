// Resilience sweep: commit rate and latency of the full Jenga pipeline under
// a grid of message-drop rates x Byzantine nodes per shard, with the
// post-run invariant audit (no leaked locks, conserved balance, no divergent
// decides, no limbo transactions) as the safety verdict for every cell.
// Emits a machine-readable JSON report (stdout + bench_resilience.json) next
// to the usual table + shape checks.
//
// Every cell is traced: the phase tracer's breakdown shows *which* pipeline
// phase the faults inflate (checked against the clean cell below), and
// `--trace-out <file>.jsonl` exports the reference faulted cell's full
// telemetry (metrics, per-tx phase intervals, BFT spans, causal span DAG)
// for offline analysis / the CI trace linter.  A failed invariant audit
// additionally dumps the flight recorder's last-events window to
// flight_d<drop>_b<byz>-N.jsonl (DESIGN.md §11).  JENGA_RESILIENCE_QUICK=1
// shrinks the sweep to {clean, 10% drop} for smoke runs.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/jenga_system.hpp"
#include "harness/genesis.hpp"
#include "report.hpp"
#include "security/fault_injector.hpp"
#include "telemetry/telemetry.hpp"
#include "workload/trace.hpp"

namespace {

using namespace jenga;

struct CellResult {
  double drop = 0.0;
  int byz_per_shard = 0;
  std::uint64_t submitted = 0;
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
  double commit_rate = 0.0;
  double p50_s = 0.0;
  double p99_s = 0.0;
  double avg_s = 0.0;
  bool invariants_ok = false;
  telemetry::PhaseBreakdown breakdown;
  std::shared_ptr<telemetry::Telemetry> telemetry;
};

bool quick_mode() {
  const char* env = std::getenv("JENGA_RESILIENCE_QUICK");
  return env != nullptr && std::strcmp(env, "1") == 0;
}

SimTime horizon() {
  // Drain horizon per cell.  The 20%-drop column is glacial (worst observed
  // commit lands around t=2800s) but not wedged; the horizon must cover it
  // or the "every transaction resolves" check reports false limbo.  Quick
  // mode only runs up to 10% drop, which settles far earlier.
  const char* env = std::getenv("JENGA_RESILIENCE_HORIZON_S");
  const long long secs = env != nullptr ? std::atoll(env) : 0;
  if (secs > 0) return secs * jenga::kSecond;  // garbage/unset -> default
  return (quick_mode() ? 1500 : 3000) * jenga::kSecond;
}

CellResult run_cell(double drop, int byz_per_shard) {
  constexpr std::uint32_t kShards = 2;
  const int kTxs = quick_mode() ? 24 : 40;

  core::JengaConfig cfg;
  cfg.num_shards = kShards;
  cfg.nodes_per_shard = 8;  // 16 nodes, quorum 5 of 8, f = 2 per group
  cfg.view_timeout = 15 * kSecond;
  cfg.pending_timeout = 300 * kSecond;

  workload::TraceConfig tc;
  tc.num_contracts = 150;
  tc.num_accounts = 200;
  tc.max_contracts_per_tx = 4;
  tc.max_steps = 8;
  workload::TraceGenerator gen(tc, Rng(7));

  sim::Simulator sim;
  sim::Network net(sim, sim::NetConfig{}, Rng(cfg.seed));
  core::JengaSystem system(sim, net, cfg, harness::make_genesis(gen));
  security::FaultInjector injector(sim, net, system);
  auto telemetry = std::make_shared<telemetry::Telemetry>();
  // Chaos cells run with the full observability layer on (it is passive):
  // the --trace-out export carries the causal span DAG, and any audit
  // failure dumps a flight-recorder window for post-mortem debugging.
  telemetry->causal.enable(true);
  telemetry->flight.configure(kShards * 8, 64);
  char dump_prefix[64];
  std::snprintf(dump_prefix, sizeof(dump_prefix), "flight_d%02d_b%d",
                static_cast<int>(drop * 100), byz_per_shard);
  telemetry->flight.set_dump_path(dump_prefix);
  net.set_telemetry(telemetry.get());
  system.set_telemetry(telemetry.get());
  const std::uint64_t initial_balance = system.total_account_balance();
  system.start();

  security::FaultPlan plan;
  if (drop > 0) {
    sim::LinkFaults faults;
    faults.drop_rate = drop;
    plan.ramps.push_back({0, faults});
  }
  // Spread the Byzantine nodes across channels via the lattice subgroups so
  // no group exceeds its f = floor((k-1)/3) tolerance: `byz_per_shard` nodes
  // per shard also means at most that many per channel.
  const auto& lat = system.lattice();
  for (std::uint32_t s = 0; s < kShards; ++s) {
    for (int c = 0; c < byz_per_shard; ++c) {
      const NodeId node = lat.subgroup(ShardId{s}, ChannelId{(s + c) % kShards})[0];
      const auto mode = (s + c) % 2 == 0 ? consensus::ByzantineMode::kEquivocator
                                         : consensus::ByzantineMode::kSilent;
      plan.byzantine.push_back({node, mode});
    }
  }
  injector.arm(plan);

  for (int i = 0; i < kTxs; ++i) {
    sim.run_until(sim.now() + kSecond);
    auto tx = std::make_shared<ledger::Transaction>(gen.contract_tx(1'000'000, sim.now()));
    system.submit(tx);
  }
  sim.run_until(horizon());

  const TxStats& st = system.stats();
  const auto report = security::check_invariants(system, initial_balance);
  CellResult r;
  r.drop = drop;
  r.byz_per_shard = byz_per_shard;
  r.submitted = st.submitted;
  r.committed = st.committed;
  r.aborted = st.aborted;
  r.commit_rate = static_cast<double>(st.committed) / static_cast<double>(st.submitted);
  const auto q = st.latency_quantiles_seconds({0.5, 0.99});
  r.p50_s = q[0];
  r.p99_s = q[1];
  r.avg_s = st.avg_latency_seconds();
  r.invariants_ok = report.ok();
  r.breakdown = telemetry->tracer.breakdown();
  // Fold the network fault counters in so the exported trace is
  // self-describing about what the cell endured.
  auto& reg = telemetry->registry;
  reg.counter("net.faults.dropped").set(net.fault_stats().dropped);
  reg.counter("net.faults.duplicated").set(net.fault_stats().duplicated);
  reg.counter("tx.submitted").set(st.submitted);
  r.telemetry = telemetry;
  if (!report.ok()) {
    std::printf("%s\n", report.describe().c_str());
    // Capture the post-mortem window (also written to <dump_prefix>-N.jsonl).
    telemetry->flight.trigger("invariant.violation");
  }
  // Detach before net/system go out of scope (the telemetry outlives them
  // through the shared_ptr in the result).
  net.set_telemetry(nullptr);
  system.set_telemetry(nullptr);
  return r;
}

std::string to_json(const std::vector<CellResult>& cells) {
  std::ostringstream out;
  out << "{\"bench\":\"resilience\",\"cells\":[";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& c = cells[i];
    char buf[384];
    std::snprintf(buf, sizeof(buf),
                  "{\"drop\":%.2f,\"byz_per_shard\":%d,\"submitted\":%llu,"
                  "\"committed\":%llu,\"aborted\":%llu,\"commit_rate\":%.4f,"
                  "\"p50_s\":%.3f,\"p99_s\":%.3f,\"avg_s\":%.3f,"
                  "\"dominant_phase\":\"%s\",\"invariants_ok\":%s}",
                  c.drop, c.byz_per_shard,
                  static_cast<unsigned long long>(c.submitted),
                  static_cast<unsigned long long>(c.committed),
                  static_cast<unsigned long long>(c.aborted), c.commit_rate,
                  c.p50_s, c.p99_s, c.avg_s,
                  telemetry::interval_name(c.breakdown.dominant_interval()),
                  c.invariants_ok ? "true" : "false");
    out << (i ? "," : "") << buf;
  }
  out << "]}";
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace jenga::bench;

  header("Resilience — commit rate under drop rate x Byzantine fraction",
         "fault-tolerance claims, paper SSIV/SSVI");
  const std::string trace_out = trace_out_from_args(argc, argv);
  ShapeReporter rep;

  std::vector<double> drops = {0.0, 0.05, 0.10, 0.20};
  std::vector<int> byz_counts = {0, 1, 2};
  if (quick_mode()) {
    std::printf("(JENGA_RESILIENCE_QUICK=1: clean + 10%% drop only)\n");
    drops = {0.0, 0.10};
    byz_counts = {0};
  }

  std::vector<CellResult> cells;
  std::printf("%-8s %-6s %-10s %-8s %-8s %-8s %-8s %-8s %-10s\n", "drop", "byz",
              "committed", "aborted", "rate", "p50(s)", "p99(s)", "avg(s)", "invariants");
  for (int byz : byz_counts) {
    for (double drop : drops) {
      const CellResult r = run_cell(drop, byz);
      std::printf("%-8.2f %-6d %-10llu %-8llu %-8.3f %-8.2f %-8.2f %-8.2f %-10s\n", r.drop,
                  r.byz_per_shard, static_cast<unsigned long long>(r.committed),
                  static_cast<unsigned long long>(r.aborted), r.commit_rate, r.p50_s,
                  r.p99_s, r.avg_s, r.invariants_ok ? "ok" : "VIOLATION");
      std::fflush(stdout);
      cells.push_back(r);
    }
  }
  std::printf("\n");

  bool all_invariants = true;
  bool all_resolved = true;
  const CellResult* clean = nullptr;
  const CellResult* faulted = nullptr;  // reference faulted cell: 10% drop, 0 byz
  for (const CellResult& c : cells) {
    all_invariants = all_invariants && c.invariants_ok;
    all_resolved = all_resolved && (c.committed + c.aborted == c.submitted);
    if (c.drop == 0.0 && c.byz_per_shard == 0) clean = &c;
    if (c.drop == 0.10 && c.byz_per_shard == 0) faulted = &c;
  }

  // Clean-vs-faulted phase attribution: the tracer localises the fault's
  // latency cost to a specific phase instead of smearing it over the mean.
  if (clean != nullptr && faulted != nullptr && clean->breakdown.committed > 0 &&
      faulted->breakdown.committed > 0) {
    std::printf("phase means, clean vs 10%% drop (s): fault-inflated phase from the tracer\n");
    std::size_t worst = 0;
    double worst_ratio = 0.0;
    for (std::size_t p = 0; p < telemetry::kIntervalCount; ++p) {
      const double base = clean->breakdown.mean_interval_seconds(p);
      const double hit = faulted->breakdown.mean_interval_seconds(p);
      const double ratio = base > 0 ? hit / base : (hit > 0 ? 1e9 : 1.0);
      std::printf("  %-12s %8.3f -> %8.3f  (x%.2f)\n", telemetry::interval_name(p), base, hit,
                  ratio);
      if (ratio > worst_ratio) {
        worst_ratio = ratio;
        worst = p;
      }
    }
    std::printf("  fault-inflated phase: %s (x%.2f)\n\n", telemetry::interval_name(worst),
                worst_ratio);
    rep.check(worst_ratio >= 1.3,
              "tracer identifies the fault-inflated phase (>= 1.3x vs clean run)");
  }

  rep.check(all_invariants, "safety invariants hold in every cell of the sweep");
  rep.check(all_resolved, "every transaction resolves (no limbo) in every cell");
  rep.check(clean != nullptr && clean->commit_rate == 1.0, "fault-free cell commits 100%");
  bool faulted_ok = true;
  for (const CellResult& c : cells)
    if (c.drop <= 0.10 && c.byz_per_shard <= 1) faulted_ok = faulted_ok && c.commit_rate >= 0.9;
  rep.check(faulted_ok, "commit rate stays >= 90% up to 10% drop + 1 Byzantine/shard");

  if (!trace_out.empty() && faulted != nullptr && faulted->telemetry) {
    std::ofstream out(trace_out);
    if (out) {
      faulted->telemetry->export_jsonl(out);
      std::printf("wrote %s (telemetry of the 10%% drop cell)\n", trace_out.c_str());
    }
  }

  const std::string json = to_json(cells);
  std::printf("\nJSON: %s\n", json.c_str());
  std::ofstream("bench_resilience.json") << json << "\n";
  std::printf("wrote bench_resilience.json\n");
  return rep.finish("bench_resilience");
}
