// Resilience sweep: commit rate and latency of the full Jenga pipeline under
// a grid of message-drop rates x Byzantine nodes per shard, with the
// post-run invariant audit (no leaked locks, conserved balance, no divergent
// decides, no limbo transactions) as the safety verdict for every cell.
// Emits a machine-readable JSON report (stdout + bench_resilience.json) next
// to the usual table + shape checks.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/jenga_system.hpp"
#include "harness/genesis.hpp"
#include "report.hpp"
#include "security/fault_injector.hpp"
#include "workload/trace.hpp"

namespace {

using namespace jenga;

struct CellResult {
  double drop = 0.0;
  int byz_per_shard = 0;
  std::uint64_t submitted = 0;
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
  double commit_rate = 0.0;
  double p50_s = 0.0;
  double avg_s = 0.0;
  bool invariants_ok = false;
};

SimTime horizon() {
  // Drain horizon per cell.  The 20%-drop column is glacial (worst observed
  // commit lands around t=2800s) but not wedged; the horizon must cover it
  // or the "every transaction resolves" check reports false limbo.
  const char* env = std::getenv("JENGA_RESILIENCE_HORIZON_S");
  const long long secs = env != nullptr ? std::atoll(env) : 0;
  return (secs > 0 ? secs : 3000) * jenga::kSecond;  // garbage/unset -> default
}

CellResult run_cell(double drop, int byz_per_shard) {
  constexpr std::uint32_t kShards = 2;
  constexpr int kTxs = 40;

  core::JengaConfig cfg;
  cfg.num_shards = kShards;
  cfg.nodes_per_shard = 8;  // 16 nodes, quorum 5 of 8, f = 2 per group
  cfg.view_timeout = 15 * kSecond;
  cfg.pending_timeout = 300 * kSecond;

  workload::TraceConfig tc;
  tc.num_contracts = 150;
  tc.num_accounts = 200;
  tc.max_contracts_per_tx = 4;
  tc.max_steps = 8;
  workload::TraceGenerator gen(tc, Rng(7));

  sim::Simulator sim;
  sim::Network net(sim, sim::NetConfig{}, Rng(cfg.seed));
  core::JengaSystem system(sim, net, cfg, harness::make_genesis(gen));
  security::FaultInjector injector(sim, net, system);
  const std::uint64_t initial_balance = system.total_account_balance();
  system.start();

  security::FaultPlan plan;
  if (drop > 0) {
    sim::LinkFaults faults;
    faults.drop_rate = drop;
    plan.ramps.push_back({0, faults});
  }
  // Spread the Byzantine nodes across channels via the lattice subgroups so
  // no group exceeds its f = floor((k-1)/3) tolerance: `byz_per_shard` nodes
  // per shard also means at most that many per channel.
  const auto& lat = system.lattice();
  for (std::uint32_t s = 0; s < kShards; ++s) {
    for (int c = 0; c < byz_per_shard; ++c) {
      const NodeId node = lat.subgroup(ShardId{s}, ChannelId{(s + c) % kShards})[0];
      const auto mode = (s + c) % 2 == 0 ? consensus::ByzantineMode::kEquivocator
                                         : consensus::ByzantineMode::kSilent;
      plan.byzantine.push_back({node, mode});
    }
  }
  injector.arm(plan);

  for (int i = 0; i < kTxs; ++i) {
    sim.run_until(sim.now() + kSecond);
    auto tx = std::make_shared<ledger::Transaction>(gen.contract_tx(1'000'000, sim.now()));
    system.submit(tx);
  }
  sim.run_until(horizon());

  const TxStats& st = system.stats();
  const auto report = security::check_invariants(system, initial_balance);
  CellResult r;
  r.drop = drop;
  r.byz_per_shard = byz_per_shard;
  r.submitted = st.submitted;
  r.committed = st.committed;
  r.aborted = st.aborted;
  r.commit_rate = static_cast<double>(st.committed) / static_cast<double>(st.submitted);
  r.p50_s = st.latency_quantile_seconds(0.5);
  r.avg_s = st.avg_latency_seconds();
  r.invariants_ok = report.ok();
  if (!report.ok()) std::printf("%s\n", report.describe().c_str());
  return r;
}

std::string to_json(const std::vector<CellResult>& cells) {
  std::ostringstream out;
  out << "{\"bench\":\"resilience\",\"cells\":[";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& c = cells[i];
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"drop\":%.2f,\"byz_per_shard\":%d,\"submitted\":%llu,"
                  "\"committed\":%llu,\"aborted\":%llu,\"commit_rate\":%.4f,"
                  "\"p50_s\":%.3f,\"avg_s\":%.3f,\"invariants_ok\":%s}",
                  c.drop, c.byz_per_shard,
                  static_cast<unsigned long long>(c.submitted),
                  static_cast<unsigned long long>(c.committed),
                  static_cast<unsigned long long>(c.aborted), c.commit_rate,
                  c.p50_s, c.avg_s, c.invariants_ok ? "true" : "false");
    out << (i ? "," : "") << buf;
  }
  out << "]}";
  return out.str();
}

}  // namespace

int main() {
  using namespace jenga::bench;

  header("Resilience — commit rate under drop rate x Byzantine fraction",
         "fault-tolerance claims, paper SSIV/SSVI");

  const double drops[] = {0.0, 0.05, 0.10, 0.20};
  const int byz_counts[] = {0, 1, 2};

  std::vector<CellResult> cells;
  std::printf("%-8s %-6s %-10s %-8s %-8s %-8s %-8s %-10s\n", "drop", "byz",
              "committed", "aborted", "rate", "p50(s)", "avg(s)", "invariants");
  for (int byz : byz_counts) {
    for (double drop : drops) {
      const CellResult r = run_cell(drop, byz);
      std::printf("%-8.2f %-6d %-10llu %-8llu %-8.3f %-8.2f %-8.2f %-10s\n", r.drop,
                  r.byz_per_shard, static_cast<unsigned long long>(r.committed),
                  static_cast<unsigned long long>(r.aborted), r.commit_rate, r.p50_s,
                  r.avg_s, r.invariants_ok ? "ok" : "VIOLATION");
      std::fflush(stdout);
      cells.push_back(r);
    }
  }
  std::printf("\n");

  bool all_invariants = true;
  bool all_resolved = true;
  for (const CellResult& c : cells) {
    all_invariants = all_invariants && c.invariants_ok;
    all_resolved = all_resolved && (c.committed + c.aborted == c.submitted);
  }
  const CellResult& clean = cells.front();

  shape_check(all_invariants, "safety invariants hold in every cell of the sweep");
  shape_check(all_resolved, "every transaction resolves (no limbo) in every cell");
  shape_check(clean.commit_rate == 1.0, "fault-free cell commits 100%");
  bool faulted_ok = true;
  for (const CellResult& c : cells)
    if (c.drop <= 0.10 && c.byz_per_shard <= 1) faulted_ok = faulted_ok && c.commit_rate >= 0.9;
  shape_check(faulted_ok, "commit rate stays >= 90% up to 10% drop + 1 Byzantine/shard");

  const std::string json = to_json(cells);
  std::printf("\nJSON: %s\n", json.c_str());
  std::ofstream("bench_resilience.json") << json << "\n";
  std::printf("wrote bench_resilience.json\n");
  return finish("bench_resilience");
}
