// Fig. 7a: average per-node storage vs number of shards.  Paper: Jenga and
// CX Func decrease with shard count (storage scalability); Pyramid grows
// (merged committees replicate more shards); Jenga pays only a small logic
// premium over CX Func (<200 MB) and saves up to 65.2% vs Pyramid at 12
// shards.
#include <cstdio>
#include <map>

#include "bench_config.hpp"
#include "report.hpp"

int main() {
  using namespace jenga;
  using namespace jenga::bench;
  ShapeReporter rep;
  using namespace jenga::harness;

  header("Fig. 7a — average per-node storage (MB) vs number of shards", "paper Fig. 7a");

  const SystemKind systems[] = {SystemKind::kCxFunc, SystemKind::kPyramid, SystemKind::kJenga};
  std::map<std::pair<int, std::uint32_t>, StorageReport> store;
  std::printf("%-14s", "storage (MB)");
  for (std::uint32_t s : kShardCounts) std::printf("  S=%-8u", s);
  std::printf("\n");
  for (int i = 0; i < 3; ++i) {
    std::printf("%-14s", system_name(systems[i]));
    for (std::uint32_t s : kShardCounts) {
      const auto r = run_experiment(storage_config(systems[i], s));
      store[{i, s}] = r.storage;
      std::printf("  %-10.1f", mb(r.storage.total()));
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  const double cxf12 = mb(store[{0, 12}].total());
  const double pyr12 = mb(store[{1, 12}].total());
  const double jenga12 = mb(store[{2, 12}].total());
  const double jenga_logic = mb(store[{2, 12}].logic_bytes_per_node);
  std::printf("\nat 12 shards: Jenga=%.1f MB (logic premium %.1f MB), CX Func=%.1f MB, Pyramid=%.1f MB\n",
              jenga12, jenga_logic, cxf12, pyr12);
  std::printf("Jenga saves %.1f%% vs Pyramid (paper: 65.2%%)\n\n", 100 * (1 - jenga12 / pyr12));

  rep.check(mb(store[{2, 12}].total()) < mb(store[{2, 4}].total()),
              "Fig.7a: Jenga per-node storage decreases with more shards");
  rep.check(mb(store[{0, 12}].total()) < mb(store[{0, 4}].total()),
              "Fig.7a: CX Func per-node storage decreases with more shards");
  rep.check(mb(store[{1, 12}].total()) > mb(store[{1, 4}].total()) * 0.95,
              "Fig.7a: Pyramid per-node storage does NOT shrink (paper: it grows)");
  rep.check(jenga12 < pyr12 * 0.6,
              "Fig.7a: Jenga stores far less per node than Pyramid at 12 shards (paper: -65.2%)");
  rep.check(jenga12 > cxf12 && jenga12 - cxf12 < 200,
              "Fig.7a: Jenga pays only a small logic premium over CX Func (paper: <200 MB)");
  return rep.finish("bench_fig7a_storage");
}
