// Exec-engine scaling: wall-clock throughput of src/exec/ batch execution at
// 1/2/4/8 workers under three contention regimes (uniform, moderate Zipf,
// hot-key Zipf).  The schedule — and therefore every output bundle — is
// asserted identical across worker counts; only wall-clock may change.  The
// headline check (low-skew speedup at 8 workers >= 2x serial) needs real
// cores, so it is enforced only when hardware_concurrency() >= 4 and printed
// informationally otherwise (CI runners enforce it; 1-core dev boxes don't).
#include <chrono>
#include <cstdio>
#include <map>
#include <thread>
#include <vector>

#include "exec/engine.hpp"
#include "harness/runner.hpp"
#include "report.hpp"
#include "workload/trace.hpp"

namespace {

using namespace jenga;

struct BatchSource {
  workload::TraceConfig tc;
  std::vector<std::shared_ptr<const vm::ContractLogic>> contracts;
  std::vector<ledger::Transaction> txs;
};

BatchSource make_source(double skew, std::size_t batch) {
  BatchSource src;
  src.tc.num_contracts = 1024;  // large universe: skew 0 stays genuinely wide
  src.tc.num_accounts = 10'000;
  src.tc.zipf_skew = skew;
  // Chunky bodies: each task should cost far more than a schedule claim.
  src.tc.function_length_min = 600;
  src.tc.function_length_max = 1200;
  src.tc.max_steps = 12;
  workload::TraceGenerator gen(src.tc, Rng(0xE5CA1E));
  src.contracts = gen.contracts();
  src.txs.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i)
    src.txs.push_back(gen.contract_tx(1'000'000, 0));
  return src;
}

/// Fresh tasks each run: run_batch consumes its input bundles.
std::vector<exec::Task> make_tasks(const BatchSource& src) {
  std::vector<exec::Task> tasks;
  tasks.reserve(src.txs.size());
  for (const auto& tx : src.txs) {
    exec::Task t;
    t.id = tx.hash;
    t.sender = tx.sender;
    for (const ContractId c : tx.contracts) {
      t.logic.push_back(src.contracts[c.value].get());
      t.input.contracts[c];  // empty state: the bodies seed their own keys
    }
    t.steps_view = tx.steps;
    t.input.balances[tx.sender] = 1'000'000;
    for (const AccountId a : tx.accounts) t.input.balances[a] = 1'000'000;
    t.access = exec::declared_access(tx);
    tasks.push_back(std::move(t));
  }
  return tasks;
}

/// Order-sensitive digest over every result bundle (determinism witness).
std::uint64_t digest(const std::vector<exec::TaskResult>& results) {
  std::uint64_t d = 0xcbf29ce484222325ULL;
  auto mix = [&d](std::uint64_t v) { d = (d ^ v) * 0x100000001b3ULL; };
  for (const auto& r : results) {
    mix(static_cast<std::uint64_t>(r.vm.status));
    mix(r.vm.gas_used);
    for (const auto& [id, st] : r.output.contracts) {
      mix(id.value);
      for (const auto& [k, v] : st) {
        mix(k);
        mix(v);
      }
    }
  }
  return d;
}

struct Sample {
  double tasks_per_sec = 0;
  std::uint64_t digest = 0;
  exec::BatchStats stats;
};

Sample run_once(const BatchSource& src, std::uint32_t workers, int reps) {
  exec::EngineOptions eo;
  eo.workers = workers;
  eo.chain_conflicts = true;  // conflicting tasks serialize through levels
  exec::Engine engine(eo);
  Sample s;
  double best = 0;
  for (int r = 0; r < reps; ++r) {
    auto tasks = make_tasks(src);
    const auto t0 = std::chrono::steady_clock::now();
    const auto results = engine.run_batch(std::move(tasks));
    const auto t1 = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    best = std::max(best, static_cast<double>(results.size()) / secs);
    s.digest = digest(results);
    s.stats = engine.last_batch();
  }
  s.tasks_per_sec = best;
  return s;
}

}  // namespace

int main() {
  using jenga::bench::ShapeReporter;
  ShapeReporter rep;
  jenga::bench::header("Exec engine scaling — batch throughput vs worker count",
                       "DESIGN.md §7 acceptance: low-skew speedup >= 2x at 8 workers");

  const unsigned cores = std::thread::hardware_concurrency();
  const std::size_t batch = jenga::harness::bench_txs_from_env(192);
  const int reps = 3;
  const std::uint32_t worker_counts[] = {1, 2, 4, 8};
  const double skews[] = {0.0, 0.9, 1.5};

  std::printf("cores=%u  batch=%zu  reps=%d (best-of)\n\n", cores, batch, reps);
  std::printf("%-10s %-8s %-12s %-8s %-10s %s\n", "skew", "workers", "tasks/s",
              "levels", "max_width", "speedup_vs_1w");

  std::map<std::pair<double, std::uint32_t>, Sample> grid;
  for (const double skew : skews) {
    const BatchSource src = make_source(skew, batch);
    for (const std::uint32_t w : worker_counts) {
      const Sample s = run_once(src, w, reps);
      grid[{skew, w}] = s;
      std::printf("%-10.1f %-8u %-12.0f %-8u %-10u %.2fx\n", skew, w, s.tasks_per_sec,
                  s.stats.levels, s.stats.max_width,
                  s.tasks_per_sec / grid[{skew, 1}].tasks_per_sec);
      std::fflush(stdout);
    }
  }
  std::printf("\n");

  // Machine-readable summary (one JSON object per configuration).
  for (const auto& [key, s] : grid)
    std::printf("JSON {\"bench\":\"exec_scaling\",\"skew\":%.1f,\"workers\":%u,"
                "\"tasks_per_sec\":%.0f,\"levels\":%u,\"max_width\":%u,\"speedup\":%.3f}\n",
                key.first, key.second, s.tasks_per_sec, s.stats.levels, s.stats.max_width,
                s.tasks_per_sec / grid.at({key.first, 1}).tasks_per_sec);
  std::printf("\n");

  // Determinism: identical result digests at every worker count.
  bool deterministic = true;
  for (const double skew : skews)
    for (const std::uint32_t w : worker_counts)
      deterministic &= grid[{skew, w}].digest == grid[{skew, 1}].digest;
  rep.check(deterministic, "exec: result digests bit-identical across 1/2/4/8 workers");

  // Contention shows up in the schedule: hot keys -> deeper, narrower levels.
  rep.check(grid[{1.5, 1}].stats.levels > grid[{0.0, 1}].stats.levels,
            "exec: hot-key skew deepens the conflict schedule");
  rep.check(grid[{0.0, 1}].stats.max_width > grid[{1.5, 1}].stats.max_width,
            "exec: uniform batches schedule wider than hot-key batches");

  const double speedup8 = grid[{0.0, 8}].tasks_per_sec / grid[{0.0, 1}].tasks_per_sec;
  std::printf("low-skew speedup at 8 workers: %.2fx (cores=%u)\n", speedup8, cores);
  if (cores >= 4) {
    rep.check(speedup8 >= 2.0, "exec: low-skew 8-worker speedup >= 2x serial");
  } else {
    std::printf("  (informational only: fewer than 4 hardware threads)\n");
  }
  return rep.finish("bench_exec_scaling");
}
