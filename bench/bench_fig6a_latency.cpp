// Fig. 6a: transaction confirmation latency of CX Func, Pyramid and Jenga
// vs shard count.  Paper: Jenga cuts latency by up to 55.6% vs CX Func and
// 33.8% vs Pyramid at 12 shards; latency grows with the shard count.
// Alongside the paper's means we report p50/p99 (one sorted pass per run):
// tails tell saturation stories averages hide.
#include <cstdio>
#include <map>

#include "bench_config.hpp"
#include "report.hpp"

int main() {
  using namespace jenga;
  using namespace jenga::bench;
  using namespace jenga::harness;

  header("Fig. 6a — confirmation latency (s) vs number of shards", "paper Fig. 6a");
  ShapeReporter rep;

  const SystemKind systems[] = {SystemKind::kCxFunc, SystemKind::kPyramid, SystemKind::kJenga};
  std::map<std::pair<int, std::uint32_t>, double> lat;
  std::printf("%-14s", "mean/p50/p99");
  for (std::uint32_t s : kShardCounts) std::printf("  S=%-18u", s);
  std::printf("\n");
  for (int i = 0; i < 3; ++i) {
    std::printf("%-14s", system_name(systems[i]));
    for (std::uint32_t s : kShardCounts) {
      const auto r = run_experiment(perf_config(systems[i], s));
      lat[{i, s}] = r.latency_s;
      const auto q = r.stats.latency_quantiles_seconds({0.5, 0.99});
      std::printf("  %5.2f/%5.2f/%6.2f", r.latency_s, q[0], q[1]);
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  const double cxf12 = lat[{0, 12}], pyr12 = lat[{1, 12}], jen12 = lat[{2, 12}];
  std::printf("\nat 12 shards: Jenga saves %.1f%% vs CX Func (paper: 55.6%%), %.1f%% vs Pyramid (paper: 33.8%%)\n\n",
              100 * (1 - jen12 / cxf12), 100 * (1 - jen12 / pyr12));

  rep.check(jen12 < pyr12 && pyr12 < cxf12,
            "Fig.6a: Jenga < Pyramid < CX Func latency at 12 shards");
  rep.check(1 - jen12 / cxf12 > 0.25,
            "Fig.6a: Jenga saves a large latency fraction vs CX Func (paper: 55.6%)");
  rep.check(lat[{2, 12}] > lat[{2, 4}],
            "Fig.6a: latency increases with the number of shards");
  return rep.finish("bench_fig6a_latency");
}
