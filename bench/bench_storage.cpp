// Storage sweep: the durable authenticated state layer at 10^4..10^6
// accounts.  For each scale the bench measures trie build throughput,
// incremental vs from-scratch root maintenance, WAL + snapshot volume,
// crash-recovery time (durable view -> verified reopen), and Merkle proof
// size/verification rate — over the deterministic in-memory disk and, for
// the I/O-bound rows, a real directory with real fsyncs (PosixStorageEnv).
//
// Correctness shapes double as the acceptance bar for the durability issue:
// recovery lands on the exact pre-crash digest, the durable and in-memory
// backends stay bit-identical, and every sampled proof verifies.
// JENGA_STORAGE_QUICK=1 shrinks the sweep for CI smoke runs.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "ledger/state_store.hpp"
#include "ledger/storage_backend.hpp"
#include "ledger/storage_env.hpp"
#include "ledger/trie.hpp"
#include "report.hpp"

namespace {

using namespace jenga;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

bool quick_mode() {
  const char* env = std::getenv("JENGA_STORAGE_QUICK");
  return env != nullptr && std::strcmp(env, "1") == 0;
}

struct Row {
  std::uint64_t accounts = 0;
  double build_ms = 0;        // create accounts + periodic commits, durable env
  double build_per_s = 0;     // accounts/s through trie + WAL
  double root_incr_ms = 0;    // root() after a small update batch (cached)
  double root_full_ms = 0;    // recompute_root() from scratch
  std::uint64_t wal_bytes = 0;
  std::uint64_t snapshot_bytes = 0;
  std::uint64_t snapshots = 0;
  double recovery_ms = 0;     // durable view -> DurableBackend::load -> verified open
  std::uint64_t replayed_records = 0;
  bool recovered_exact = false;  // recovered digest == live digest
  bool oracle_match = false;     // durable digest == in-memory-backend digest
  double proof_depth_avg = 0;
  double proof_bytes_avg = 0;
  double verify_per_s = 0;
  bool proofs_ok = false;
  double posix_build_ms = -1;    // real files + real fsync (-1 = not run)
  double posix_recovery_ms = -1;
};

constexpr std::uint32_t kSnapshotInterval = 8;

/// Accounts per commit batch: ~100 commits per row, so every row crosses the
/// snapshot interval several times and recovery mixes snapshot + WAL replay.
std::uint64_t commit_stride(std::uint64_t accounts) {
  return std::max<std::uint64_t>(1'000, accounts / 100);
}

void build_accounts(ledger::StateStore& store, std::uint64_t n) {
  const std::uint64_t stride = commit_stride(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    store.create_account(AccountId{i}, 1'000 + i);
    if ((i + 1) % stride == 0) store.commit();
  }
  store.commit();
}

Row run_scale(std::uint64_t accounts, bool with_posix) {
  Row row;
  row.accounts = accounts;

  ledger::MemStorageEnv env;
  auto opened = ledger::StateStore::open(std::make_unique<ledger::DurableBackend>(
      &env, ledger::DurableOptions{.snapshot_interval = kSnapshotInterval}));
  if (!opened.ok()) {
    std::fprintf(stderr, "open failed: %s\n", opened.error().c_str());
    std::exit(1);
  }
  ledger::StateStore store = std::move(opened.value());

  auto t0 = Clock::now();
  build_accounts(store, accounts);
  row.build_ms = ms_since(t0);
  row.build_per_s = accounts / (row.build_ms / 1000.0);
  row.wal_bytes = store.backend()->stats().wal_bytes;
  row.snapshot_bytes = store.backend()->stats().snapshot_bytes;
  row.snapshots = store.backend()->stats().snapshots_written;
  const Hash256 live_digest = store.digest();

  // Bit-identity oracle at this scale: same writes through the trivial
  // backend must land on the same root.
  {
    auto mem = ledger::StateStore::open(std::make_unique<ledger::InMemoryBackend>());
    build_accounts(mem.value(), accounts);
    row.oracle_match = mem.value().digest() == live_digest;
  }

  // Incremental root maintenance: touch a scattered 1% (cap 1000) of the
  // keys, then time the cached root against a from-scratch recompute.
  {
    const std::uint64_t updates = std::min<std::uint64_t>(1000, accounts / 100 + 1);
    Rng rng(42);
    for (std::uint64_t u = 0; u < updates; ++u)
      store.set_balance(AccountId{rng.uniform(accounts)}, rng.uniform(1'000'000));
    t0 = Clock::now();
    const Hash256 incr = store.digest();
    row.root_incr_ms = ms_since(t0);
    t0 = Clock::now();
    const Hash256 full = store.trie().recompute_root();
    row.root_full_ms = ms_since(t0);
    if (!(incr == full)) {
      std::fprintf(stderr, "incremental root diverged from recompute\n");
      std::exit(1);
    }
    store.commit();
  }
  const Hash256 final_digest = store.digest();

  // Crash recovery: reopen from the durable images alone, WAL replay + root
  // verification included.
  {
    auto view = env.durable_view();
    t0 = Clock::now();
    auto backend = std::make_unique<ledger::DurableBackend>(
        view.get(), ledger::DurableOptions{.snapshot_interval = kSnapshotInterval});
    auto recovered = ledger::StateStore::open(std::move(backend));
    row.recovery_ms = ms_since(t0);
    if (recovered.ok()) {
      row.replayed_records = recovered.value().backend()->stats().replayed_records;
      row.recovered_exact = recovered.value().digest() == final_digest;
    }
  }

  // Proofs: sample 1000 keys, measure depth/size and verification rate.
  {
    const std::uint64_t samples = std::min<std::uint64_t>(1000, accounts);
    Rng rng(7);
    std::vector<std::pair<Hash256, Hash256>> targets;  // (path, value hash)
    std::vector<ledger::TrieProof> proofs;
    targets.reserve(samples);
    proofs.reserve(samples);
    double depth_sum = 0;
    double bytes_sum = 0;
    for (std::uint64_t s = 0; s < samples; ++s) {
      const AccountId id{rng.uniform(accounts)};
      const auto key = ledger::state_key_account(id);
      ledger::TrieProof proof;
      if (!store.prove(key, proof)) continue;
      depth_sum += static_cast<double>(proof.depth());
      bytes_sum += static_cast<double>(proof.wire_size());
      targets.emplace_back(ledger::state_path(key),
                           ledger::state_value_hash(
                               ledger::encode_account_value(*store.balance(id))));
      proofs.push_back(std::move(proof));
    }
    row.proof_depth_avg = depth_sum / static_cast<double>(proofs.size());
    row.proof_bytes_avg = bytes_sum / static_cast<double>(proofs.size());
    t0 = Clock::now();
    bool all_ok = true;
    for (std::size_t i = 0; i < proofs.size(); ++i)
      all_ok = all_ok && ledger::MerkleTrie::verify(final_digest, targets[i].first,
                                                    targets[i].second, proofs[i]);
    const double verify_ms = ms_since(t0);
    row.proofs_ok = all_ok && proofs.size() == samples;
    row.verify_per_s = static_cast<double>(proofs.size()) / (verify_ms / 1000.0);
  }

  // Real I/O row: same build over actual files with actual fsyncs, so the
  // numbers reflect a disk, not a vector push_back.  The directory lives
  // under the working directory and is removed afterwards.
  if (with_posix) {
    const std::string dir = "bench_storage_posix.tmp";
    std::filesystem::remove_all(dir);
    {
      ledger::PosixStorageEnv posix(dir);
      auto pstore = ledger::StateStore::open(std::make_unique<ledger::DurableBackend>(
          &posix, ledger::DurableOptions{.snapshot_interval = kSnapshotInterval}));
      t0 = Clock::now();
      build_accounts(pstore.value(), accounts);
      row.posix_build_ms = ms_since(t0);
    }
    {
      ledger::PosixStorageEnv posix(dir);
      t0 = Clock::now();
      auto recovered = ledger::StateStore::open(std::make_unique<ledger::DurableBackend>(
          &posix, ledger::DurableOptions{.snapshot_interval = kSnapshotInterval}));
      row.posix_recovery_ms = ms_since(t0);
      if (!recovered.ok() || !(recovered.value().digest() == live_digest))
        row.recovered_exact = false;  // posix recovery must agree too
    }
    std::filesystem::remove_all(dir);
  }
  return row;
}

std::string to_json(const std::vector<Row>& rows) {
  std::ostringstream out;
  out << "{\"bench\":\"storage\",\"snapshot_interval\":" << kSnapshotInterval << ",\"rows\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    char buf[640];
    std::snprintf(buf, sizeof(buf),
                  "{\"accounts\":%llu,\"build_ms\":%.1f,\"build_per_s\":%.0f,"
                  "\"root_incremental_ms\":%.3f,\"root_full_ms\":%.1f,"
                  "\"wal_bytes\":%llu,\"snapshot_bytes\":%llu,\"snapshots\":%llu,"
                  "\"recovery_ms\":%.1f,\"replayed_records\":%llu,"
                  "\"recovered_exact\":%s,\"oracle_match\":%s,"
                  "\"proof_depth_avg\":%.2f,\"proof_bytes_avg\":%.0f,"
                  "\"verify_per_s\":%.0f,\"proofs_ok\":%s,"
                  "\"posix_build_ms\":%.1f,\"posix_recovery_ms\":%.1f}",
                  static_cast<unsigned long long>(r.accounts), r.build_ms, r.build_per_s,
                  r.root_incr_ms, r.root_full_ms,
                  static_cast<unsigned long long>(r.wal_bytes),
                  static_cast<unsigned long long>(r.snapshot_bytes),
                  static_cast<unsigned long long>(r.snapshots), r.recovery_ms,
                  static_cast<unsigned long long>(r.replayed_records),
                  r.recovered_exact ? "true" : "false", r.oracle_match ? "true" : "false",
                  r.proof_depth_avg, r.proof_bytes_avg, r.verify_per_s,
                  r.proofs_ok ? "true" : "false", r.posix_build_ms, r.posix_recovery_ms);
    out << (i ? "," : "") << buf;
  }
  out << "]}";
  return out.str();
}

}  // namespace

int main() {
  using namespace jenga::bench;

  header("Durable authenticated state — trie, WAL, snapshots, proofs",
         "storage robustness issue; scaling context for paper Fig. 7");
  ShapeReporter rep;

  std::vector<std::uint64_t> scales = {10'000, 100'000, 1'000'000};
  if (quick_mode()) {
    std::printf("(JENGA_STORAGE_QUICK=1: 10^4 and 10^5 rows only)\n");
    scales = {10'000, 100'000};
  }

  std::vector<Row> rows;
  std::printf("%-10s %-10s %-11s %-10s %-10s %-10s %-10s %-9s %-8s %-10s\n", "accounts",
              "build/s", "incr(ms)", "full(ms)", "wal(MB)", "snap(MB)", "recov(ms)",
              "depth", "proofB", "verify/s");
  for (std::uint64_t n : scales) {
    const Row r = run_scale(n, /*with_posix=*/n <= 100'000);
    std::printf("%-10llu %-10.0f %-11.3f %-10.1f %-10.2f %-10.2f %-10.1f %-9.2f %-8.0f %-10.0f\n",
                static_cast<unsigned long long>(r.accounts), r.build_per_s, r.root_incr_ms,
                r.root_full_ms, r.wal_bytes / 1e6, r.snapshot_bytes / 1e6, r.recovery_ms,
                r.proof_depth_avg, r.proof_bytes_avg, r.verify_per_s);
    std::fflush(stdout);
    rows.push_back(r);
  }
  std::printf("\n");

  bool recovered_exact = true;
  bool oracle_match = true;
  bool proofs_ok = true;
  bool incr_wins = true;
  for (const Row& r : rows) {
    recovered_exact = recovered_exact && r.recovered_exact;
    oracle_match = oracle_match && r.oracle_match;
    proofs_ok = proofs_ok && r.proofs_ok;
    // After a 1%-of-keys update batch the cached root must beat a full
    // recompute comfortably; 2x is a deliberately loose floor for CI noise.
    incr_wins = incr_wins && r.root_incr_ms * 2 < r.root_full_ms;
  }
  const Row& small = rows.front();
  const Row& large = rows.back();

  rep.check(recovered_exact, "recovery reproduces the exact pre-crash digest at every scale");
  rep.check(oracle_match, "durable and in-memory backends are bit-identical at every scale");
  rep.check(proofs_ok, "every sampled Merkle proof verifies under the final root");
#ifdef NDEBUG
  rep.check(incr_wins, "incremental root beats full recompute by >= 2x after a 1% update batch");
#else
  // Debug digest() asserts the cached root against a full recompute on every
  // call, so the incremental timing is meaningless here.
  (void)incr_wins;
  std::printf("  shape SKIP | incremental-vs-full timing (debug build asserts inside digest)\n");
#endif
  rep.check(large.proof_depth_avg < small.proof_depth_avg + 4,
            "proof depth grows logarithmically across a 10-100x account sweep");
  rep.check(large.recovery_ms < large.build_ms,
            "recovery is cheaper than rebuilding from scratch");

  const std::string json = to_json(rows);
  std::printf("\nJSON: %s\n", json.c_str());
  std::ofstream("BENCH_storage.json") << json << "\n";
  std::printf("wrote BENCH_storage.json\n");
  return rep.finish("bench_storage");
}
