// Reconfiguration sweep: throughput, latency, and safety of the full Jenga
// pipeline while the lattice is live-reshuffled, over a grid of epoch
// interval x message-drop rate x boundary-churn size.  Every cell runs the
// beacon over the simulated network, drains, cuts over, and re-homes every
// node's replicas; the post-run invariant audit (no leaked locks, conserved
// balance, no divergent decides, no limbo transactions, clean boundary
// audits) is the safety verdict per cell.
//
// The headline shape check compares the clean cell (no reconfiguration)
// against the fault-free reconfiguring cell: reshuffling mid-run must cost
// bounded throughput, not wedge the pipeline.  JENGA_RECONFIG_QUICK=1
// shrinks the sweep for CI smoke runs.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/jenga_system.hpp"
#include "harness/genesis.hpp"
#include "report.hpp"
#include "security/fault_injector.hpp"
#include "workload/trace.hpp"

namespace {

using namespace jenga;

struct CellResult {
  SimTime interval = 0;  // 0 = reconfiguration off (the clean baseline)
  double drop = 0.0;
  int churn = 0;  // nodes departing at the first boundary, rejoining at the second
  std::uint64_t submitted = 0;
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
  std::uint64_t transitions = 0;
  std::uint64_t requeued = 0;
  double tps = 0.0;
  double p50_s = 0.0;
  double p99_s = 0.0;
  bool invariants_ok = false;
};

bool quick_mode() {
  const char* env = std::getenv("JENGA_RECONFIG_QUICK");
  return env != nullptr && std::strcmp(env, "1") == 0;
}

SimTime horizon() { return (quick_mode() ? 400 : 600) * jenga::kSecond; }

CellResult run_cell(SimTime interval, double drop, int churn) {
  const int kTxs = quick_mode() ? 24 : 40;

  core::JengaConfig cfg;
  cfg.num_shards = 2;
  cfg.nodes_per_shard = 8;  // 16 nodes; beacon quorum 11
  cfg.view_timeout = 15 * kSecond;
  cfg.pending_timeout = 60 * kSecond;
  cfg.epoch_interval = interval;
  cfg.epoch_drain_window = 10 * kSecond;
  cfg.epoch_beacon_lead = 20 * kSecond;

  workload::TraceConfig tc;
  tc.num_contracts = 150;
  tc.num_accounts = 200;
  tc.max_contracts_per_tx = 4;
  tc.max_steps = 8;
  workload::TraceGenerator gen(tc, Rng(7));

  sim::Simulator sim;
  sim::Network net(sim, sim::NetConfig{}, Rng(cfg.seed));
  core::JengaSystem system(sim, net, cfg, harness::make_genesis(gen));
  security::FaultInjector injector(sim, net, system);
  const std::uint64_t initial_balance = system.total_account_balance();
  system.start();

  security::FaultPlan plan;
  if (drop > 0) {
    sim::LinkFaults faults;
    faults.drop_rate = drop;
    plan.ramps.push_back({0, faults});
  }
  if (churn > 0 && interval > 0) {
    // `churn` nodes (spread across both shards of the epoch-0 lattice) depart
    // exactly at the first cutover and rejoin at the second.
    security::EpochBoundaryChurn out{1, {}, {}};
    security::EpochBoundaryChurn back{2, {}, {}};
    const auto& lat = system.lattice();
    for (int i = 0; i < churn; ++i) {
      const NodeId n = lat.shard_members(ShardId{static_cast<std::uint32_t>(i % 2)})[4 + i / 2];
      out.crash.push_back(n);
      back.revive.push_back(n);
    }
    plan.epoch_churn.push_back(out);
    plan.epoch_churn.push_back(back);
  }
  injector.arm(plan);

  // Spread injection past the first drain window (50s..60s for a 60s
  // interval) so transactions genuinely cross a reshuffle boundary.
  const SimTime spacing = quick_mode() ? 3 * kSecond : 2 * kSecond;
  for (int i = 0; i < kTxs; ++i) {
    sim.run_until(sim.now() + spacing);
    auto tx = std::make_shared<ledger::Transaction>(gen.contract_tx(1'000'000, sim.now()));
    system.submit(tx);
  }
  sim.run_until(horizon());

  const TxStats& st = system.stats();
  const auto report = security::check_invariants(system, initial_balance);
  CellResult r;
  r.interval = interval;
  r.drop = drop;
  r.churn = churn;
  r.submitted = st.submitted;
  r.committed = st.committed;
  r.aborted = st.aborted;
  r.transitions = system.epoch_stats().transitions;
  r.requeued = system.epoch_stats().txs_requeued;
  r.tps = st.tps();
  const auto q = st.latency_quantiles_seconds({0.5, 0.99});
  r.p50_s = q[0];
  r.p99_s = q[1];
  r.invariants_ok = report.ok();
  if (!report.ok()) std::printf("%s\n", report.describe().c_str());
  return r;
}

std::string to_json(const std::vector<CellResult>& cells) {
  std::ostringstream out;
  out << "{\"bench\":\"reconfig\",\"cells\":[";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& c = cells[i];
    char buf[384];
    std::snprintf(buf, sizeof(buf),
                  "{\"epoch_interval_s\":%lld,\"drop\":%.2f,\"churn\":%d,"
                  "\"submitted\":%llu,\"committed\":%llu,\"aborted\":%llu,"
                  "\"transitions\":%llu,\"requeued\":%llu,\"tps\":%.3f,"
                  "\"p50_s\":%.3f,\"p99_s\":%.3f,\"invariants_ok\":%s}",
                  static_cast<long long>(c.interval / jenga::kSecond), c.drop, c.churn,
                  static_cast<unsigned long long>(c.submitted),
                  static_cast<unsigned long long>(c.committed),
                  static_cast<unsigned long long>(c.aborted),
                  static_cast<unsigned long long>(c.transitions),
                  static_cast<unsigned long long>(c.requeued), c.tps, c.p50_s, c.p99_s,
                  c.invariants_ok ? "true" : "false");
    out << (i ? "," : "") << buf;
  }
  out << "]}";
  return out.str();
}

}  // namespace

int main() {
  using namespace jenga::bench;

  header("Reconfiguration — live lattice reshuffles under traffic",
         "epoch interval x drop rate x boundary churn, paper SSV-D");
  ShapeReporter rep;

  std::vector<SimTime> intervals = {0, 60 * jenga::kSecond, 120 * jenga::kSecond};
  std::vector<double> drops = {0.0, 0.05};
  std::vector<int> churns = {0, 2};
  if (quick_mode()) {
    std::printf("(JENGA_RECONFIG_QUICK=1: clean + one reconfiguring column only)\n");
    intervals = {0, 60 * jenga::kSecond};
    drops = {0.0};
    churns = {0, 1};
  }

  std::vector<CellResult> cells;
  std::printf("%-10s %-6s %-6s %-10s %-8s %-7s %-9s %-8s %-8s %-8s %-10s\n", "interval",
              "drop", "churn", "committed", "aborted", "epochs", "requeued", "tps",
              "p50(s)", "p99(s)", "invariants");
  for (SimTime interval : intervals) {
    for (double drop : drops) {
      for (int churn : churns) {
        if (interval == 0 && churn > 0) continue;  // churn is boundary-only
        const CellResult r = run_cell(interval, drop, churn);
        std::printf("%-10lld %-6.2f %-6d %-10llu %-8llu %-7llu %-9llu %-8.2f %-8.2f %-8.2f %-10s\n",
                    static_cast<long long>(r.interval / jenga::kSecond), r.drop, r.churn,
                    static_cast<unsigned long long>(r.committed),
                    static_cast<unsigned long long>(r.aborted),
                    static_cast<unsigned long long>(r.transitions),
                    static_cast<unsigned long long>(r.requeued), r.tps, r.p50_s, r.p99_s,
                    r.invariants_ok ? "ok" : "VIOLATION");
        std::fflush(stdout);
        cells.push_back(r);
      }
    }
  }
  std::printf("\n");

  bool all_invariants = true;
  bool all_resolved = true;
  bool reconfig_ran = true;
  const CellResult* clean = nullptr;
  const CellResult* reconfig = nullptr;  // fault-free reconfiguring reference
  for (const CellResult& c : cells) {
    all_invariants = all_invariants && c.invariants_ok;
    all_resolved = all_resolved && (c.committed + c.aborted == c.submitted);
    if (c.interval > 0) reconfig_ran = reconfig_ran && c.transitions >= 2;
    if (c.interval == 0 && c.drop == 0.0) clean = &c;
    if (c.interval == 60 * jenga::kSecond && c.drop == 0.0 && c.churn == 0) reconfig = &c;
  }

  rep.check(all_invariants, "safety invariants hold in every cell (boundary audits included)");
  rep.check(all_resolved, "every transaction resolves across reconfigurations (no limbo)");
  rep.check(reconfig_ran, "every reconfiguring cell completed >= 2 epoch transitions");
  if (clean != nullptr && reconfig != nullptr) {
    // Reconfiguration costs bounded throughput: the drain window parks work
    // briefly, so a dip is expected, but the pipeline must not wedge.
    const double dip = clean->tps > 0 ? reconfig->tps / clean->tps : 0.0;
    std::printf("throughput dip, clean -> reconfiguring: %.2f tps -> %.2f tps (x%.2f)\n\n",
                clean->tps, reconfig->tps, dip);
    rep.check(dip >= 0.5, "reconfiguring throughput stays >= 0.5x the clean baseline");
    rep.check(reconfig->committed == reconfig->submitted || reconfig->aborted > 0,
              "reconfiguring cell resolves every submission");
  }

  const std::string json = to_json(cells);
  std::printf("\nJSON: %s\n", json.c_str());
  std::ofstream("bench_reconfig.json") << json << "\n";
  std::printf("wrote bench_reconfig.json\n");
  return rep.finish("bench_reconfig");
}
