// Table I: choice of the number of nodes per shard and the corresponding
// epoch failure probability (Eq. 1–3, f = 20%, target 2^-17).
#include <cstdio>

#include "report.hpp"
#include "security/failure.hpp"

int main() {
  using namespace jenga;
  using namespace jenga::bench;
  ShapeReporter rep;
  using namespace jenga::security;

  header("Table I — choice of number of nodes per shard and failure probability",
         "paper Table I");

  std::printf("%-8s %-18s %-24s %-22s %-10s\n", "Shards", "paper nodes/shard",
              "paper p_system (x1e-6)", "our p_system (x1e-6)", "our chooser");
  const std::pair<std::uint32_t, std::uint64_t> paper_rows[] = {
      {4, 180}, {6, 200}, {8, 210}, {10, 230}, {12, 240}};
  const double paper_probs[] = {1.6, 6.1, 5.1, 5.3, 2.8};

  bool all_match = true;
  bool all_safe = true;
  int i = 0;
  for (const auto& [s, k] : paper_rows) {
    const double ours = system_failure_probability(k * s, s, 0.20) * 1e6;
    const std::uint64_t chosen = choose_shard_size(s, 0.20);
    std::printf("%-8u %-18llu %-24.1f %-22.2f %llu\n", s,
                static_cast<unsigned long long>(k), paper_probs[i], ours,
                static_cast<unsigned long long>(chosen));
    all_match = all_match && std::abs(ours - paper_probs[i]) < 0.15;
    all_safe = all_safe && ours * 1e-6 < kFailureTarget;
    ++i;
  }
  std::printf("\n");
  rep.check(all_match, "our Eq.1-3 reproduce the paper's Table I probabilities exactly");
  rep.check(all_safe, "every paper (S, k) choice is below the 7.6e-6 target");
  rep.check(choose_shard_size(8, 0.25) > choose_shard_size(8, 0.15),
              "more Byzantine nodes require bigger shards");
  return rep.finish("bench_table1_shard_size");
}
