// Fig. 3b: TPS of the Cross-Shard Function Call prototype when processing
// plain transfer transactions vs smart-contract transactions, across shard
// counts.  The paper measures contract throughput at roughly 1/3 of transfer
// throughput.
#include <cstdio>

#include "bench_config.hpp"
#include "report.hpp"

int main() {
  using namespace jenga;
  using namespace jenga::bench;
  ShapeReporter rep;
  using namespace jenga::harness;

  header("Fig. 3b — CX Func TPS: transfer vs smart-contract transactions",
         "paper Fig. 3b");

  std::printf("%-8s %-12s %-16s %-16s %-8s\n", "Shards", "nodes/shard", "transfer TPS",
              "contract TPS", "ratio");
  double ratios_sum = 0;
  bool transfer_wins_everywhere = true;
  int rows = 0;
  for (std::uint32_t s : kShardCounts) {
    RunConfig transfers = perf_config(SystemKind::kCxFunc, s);
    transfers.transfer_txs = transfers.contract_txs;
    transfers.contract_txs = 0;
    RunConfig contracts = perf_config(SystemKind::kCxFunc, s);
    const auto rt = run_experiment(transfers);
    const auto rc = run_experiment(contracts);
    const double ratio = rc.tps > 0 ? rt.tps / rc.tps : 0;
    std::printf("%-8u %-12u %-16.1f %-16.1f %.2fx\n", s, rt.nodes_per_shard, rt.tps, rc.tps,
                ratio);
    ratios_sum += ratio;
    transfer_wins_everywhere = transfer_wins_everywhere && rt.tps > rc.tps;
    ++rows;
  }
  const double avg_ratio = ratios_sum / rows;
  std::printf("\naverage transfer/contract TPS ratio: %.2fx\n\n", avg_ratio);
  rep.check(transfer_wins_everywhere,
              "Fig.3b: transfer TPS exceeds contract TPS at every shard count");
  rep.check(avg_ratio > 1.8,
              "Fig.3b: contract processing costs a large factor (paper: ~3x)");
  return rep.finish("bench_fig3b_transfer_vs_contract");
}
