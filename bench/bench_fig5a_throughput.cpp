// Fig. 5a: system throughput (TPS) of Single Shard, CX Func, Pyramid and
// Jenga across shard counts.  Paper headline numbers at 12 shards: Jenga is
// ~14.3x Single Shard, ~2.3x CX Func and ~1.5x Pyramid; doubling the shard
// count scales Jenga's throughput by up to ~1.8x.
#include <cstdio>
#include <map>

#include "bench_config.hpp"
#include "report.hpp"

int main() {
  using namespace jenga;
  using namespace jenga::bench;
  ShapeReporter rep;
  using namespace jenga::harness;

  header("Fig. 5a — system throughput (TPS) vs number of shards", "paper Fig. 5a");

  const SystemKind systems[] = {SystemKind::kSingleShard, SystemKind::kCxFunc,
                                SystemKind::kPyramid, SystemKind::kJenga};
  std::map<std::pair<int, std::uint32_t>, double> tps;

  std::printf("%-14s", "TPS");
  for (std::uint32_t s : kShardCounts) std::printf("  S=%-8u", s);
  std::printf("\n");
  for (int i = 0; i < 4; ++i) {
    std::printf("%-14s", system_name(systems[i]));
    for (std::uint32_t s : kShardCounts) {
      const auto r = run_experiment(perf_config(systems[i], s));
      tps[{i, s}] = r.tps;
      std::printf("  %-10.1f", r.tps);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("\n");

  const double jenga12 = tps[{3, 12}];
  const double pyramid12 = tps[{2, 12}];
  const double cxf12 = tps[{1, 12}];
  const double ss12 = tps[{0, 12}];
  std::printf("at 12 shards: Jenga/SingleShard=%.2fx  Jenga/CXFunc=%.2fx  Jenga/Pyramid=%.2fx\n",
              jenga12 / ss12, jenga12 / cxf12, jenga12 / pyramid12);
  std::printf("Jenga scaling 6->12 shards: %.2fx\n\n", tps[{3, 12}] / tps[{3, 6}]);

  rep.check(jenga12 > pyramid12 && pyramid12 > cxf12,
              "Fig.5a: Jenga > Pyramid > CX Func at 12 shards");
  rep.check(jenga12 > ss12 * 1.8,
              "Fig.5a: Jenga decisively beats Single Shard at 12 shards (paper: 14.3x)");
  rep.check(jenga12 / cxf12 > 1.5,
              "Fig.5a: Jenga vs CX Func gap is a large factor (paper: up to 2.3x)");
  rep.check(jenga12 / pyramid12 > 1.15,
              "Fig.5a: Jenga vs Pyramid gap (paper: 1.5x)");
  rep.check(tps[{3, 12}] > tps[{3, 6}] * 1.15,
              "Fig.5a: Jenga throughput scales when doubling shards (paper: up to 1.8x)");
  rep.check(tps[{0, 12}] < tps[{0, 4}] * 1.3,
              "Fig.5a: Single Shard throughput does not scale with shards");
  return rep.finish("bench_fig5a_throughput");
}
