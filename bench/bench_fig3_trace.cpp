// Fig. 3a / 3c / 3d: workload measurement study — share of contract
// transactions, average steps per contract tx, and average contracts per
// contract tx, over sampled block windows (synthetic trace calibrated to the
// paper's Ethereum measurements; DESIGN.md §2).
#include <cstdio>
#include <vector>

#include "report.hpp"
#include "workload/trace.hpp"

int main() {
  using namespace jenga;
  using namespace jenga::bench;
  ShapeReporter rep;

  header("Fig. 3a/3c/3d — contract-tx share, steps/tx, contracts/tx over block windows",
         "paper Fig. 3a, 3c, 3d");

  workload::TraceConfig cfg;
  cfg.num_contracts = 2000;
  cfg.num_accounts = 20'000;
  workload::TraceGenerator gen(cfg, Rng(42));

  std::printf("%-16s %-20s %-14s %-18s\n", "block (x1e5)", "contract-tx share", "avg steps",
              "avg contracts");
  std::vector<workload::WindowStats> rows;
  for (std::uint64_t w = 0; w <= 10; ++w) {
    const std::uint64_t height = w * 100'000;
    const auto st = sample_window(gen, height, 4000);
    rows.push_back(st);
    std::printf("%-16llu %-20.3f %-14.2f %-18.2f\n", static_cast<unsigned long long>(w),
                st.contract_tx_ratio, st.avg_steps, st.avg_contracts);
  }
  std::printf("\n");

  const auto& first = rows.front();
  const auto& last = rows.back();
  rep.check(last.contract_tx_ratio > 0.66 && last.contract_tx_ratio < 0.78,
              "Fig.3a: recent blocks reach ~70% contract transactions");
  rep.check(first.contract_tx_ratio < last.contract_tx_ratio,
              "Fig.3a: contract-tx share trends upward");
  rep.check(last.avg_steps > 8.5 && last.avg_steps < 11.5,
              "Fig.3c: average steps per contract tx reaches ~10");
  rep.check(first.avg_steps < last.avg_steps, "Fig.3c: steps per tx trend upward");
  rep.check(last.avg_contracts > 4.0 && last.avg_contracts < 5.4,
              "Fig.3d: average contracts per tx reaches ~4.7");
  rep.check(first.avg_contracts < last.avg_contracts,
              "Fig.3d: contracts per tx trend upward");
  return rep.finish("bench_fig3_trace");
}
