// Fig. 7b: logic storage vs total storage over the block history in the
// unsharded case.  Paper: logic is a small share of total storage, and the
// share shrinks over time, because contracts are invoked (state + chain
// growth) far more often than deployed (logic growth).
#include <cstdio>
#include <vector>

#include "crypto/sha256.hpp"
#include "ledger/block.hpp"
#include "ledger/state_store.hpp"
#include "report.hpp"
#include "workload/trace.hpp"

int main() {
  using namespace jenga;
  using namespace jenga::bench;
  ShapeReporter rep;

  header("Fig. 7b — logic vs total storage over block history (unsharded)",
         "paper Fig. 7b");

  workload::TraceConfig cfg;
  cfg.num_contracts = 4000;
  cfg.num_accounts = 50'000;
  workload::TraceGenerator gen(cfg, Rng(7));

  ledger::StateStore store;
  ledger::LogicStore logic;
  ledger::Chain chain(ShardId{0});
  for (std::uint64_t a = 0; a < cfg.num_accounts; ++a)
    store.create_account(AccountId{a}, 1'000'000);

  // Replay a block history: deployments are front-loaded and become rare
  // (the paper's observation), while invocations keep writing states and
  // growing the chain.
  const std::uint64_t kBlocks = 1000;
  const std::uint64_t kTxPerBlock = 200;
  std::size_t deployed = 0;

  std::printf("%-12s %-16s %-16s %-12s\n", "block", "logic (MB)", "total (MB)", "logic %");
  std::vector<double> logic_share;
  for (std::uint64_t b = 1; b <= kBlocks; ++b) {
    // Deployment rate decays: most contracts exist early on.
    const std::size_t target_deployed =
        std::min<std::size_t>(cfg.num_contracts,
                              static_cast<std::size_t>(cfg.num_contracts *
                                                       (1.0 - 1.0 / (1.0 + 0.02 * b))));
    std::vector<Hash256> txs;
    std::uint64_t body = 0;
    while (deployed < target_deployed) {
      const auto tx = gen.deploy_tx(deployed, 0);
      logic.add(tx.logic);
      store.create_contract_state(ContractId{deployed}, gen.initial_state(deployed));
      txs.push_back(tx.hash);
      body += tx.wire_size();
      ++deployed;
    }
    const std::uint64_t height = b * 1000;  // map into the trend horizon
    for (std::uint64_t t = 0; t < kTxPerBlock; ++t) {
      const auto tx = gen.contract_tx(height, 0);
      // Apply a synthetic state mutation for each declared contract (the
      // invocation's state writes).
      for (auto c : tx.contracts) {
        if (c.value >= deployed) continue;
        if (const auto* st = store.contract_state(c)) {
          auto updated = *st;
          updated[t % 16] = b * 1000 + t;
          store.set_contract_state(c, updated);
        }
      }
      txs.push_back(tx.hash);
      body += tx.wire_size();
    }
    chain.append(ledger::build_block(ShardId{0}, chain.height(), chain.tip_hash(),
                                     std::move(txs), body, static_cast<SimTime>(b)));

    if (b % 100 == 0) {
      const double logic_mb = static_cast<double>(logic.logic_storage_bytes()) / 1e6;
      const double total_mb =
          static_cast<double>(logic.logic_storage_bytes() + store.state_storage_bytes() +
                              chain.total_bytes()) /
          1e6;
      logic_share.push_back(logic_mb / total_mb);
      std::printf("%-12llu %-16.2f %-16.2f %-12.2f\n", static_cast<unsigned long long>(b),
                  logic_mb, total_mb, 100.0 * logic_mb / total_mb);
    }
  }
  std::printf("\n");
  rep.check(logic_share.back() < 0.25,
              "Fig.7b: logic is a small share of total storage");
  rep.check(logic_share.back() < logic_share.front(),
              "Fig.7b: the logic share shrinks as the chain grows");
  rep.check(chain.verify(), "the replayed chain verifies end-to-end");
  return rep.finish("bench_fig7b_storage_breakdown");
}
