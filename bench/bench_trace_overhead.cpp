// Tracing-overhead smoke: the causal tracer + flight recorder must be cheap
// enough to leave on for any diagnostic run.  Runs the quick Fig. 5a
// configuration traced and untraced (interleaved, min-of-3 wall clock each,
// one warm-up discarded), gates the overhead at 5% (plus a small absolute
// slack — quick runs are short enough for scheduler noise to matter), and
// re-asserts passivity on the way: ledger digest and metrics snapshot must
// be bit-identical between the two modes.  Emits BENCH_trace_overhead.json
// so CI keeps a perf trajectory data point per commit.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>

#include "bench_config.hpp"
#include "report.hpp"

int main() {
  using namespace jenga;
  using namespace jenga::bench;
  using namespace jenga::harness;
  using Clock = std::chrono::steady_clock;

  header("Tracing overhead — quick Fig. 5a traced vs untraced", "DESIGN.md §11 passivity");
  ShapeReporter rep;

  const auto make_config = [](bool traced) {
    RunConfig cfg = perf_config(SystemKind::kJenga, 4);
    cfg.contract_txs /= 4;  // quick: overhead ratio needs no volume
    cfg.closed_loop_window /= 4;
    if (traced) {
      cfg.causal_trace = true;
      cfg.flight_events_per_node = 64;
    }
    return cfg;
  };

  const auto timed_run = [&](bool traced, RunResult* out) {
    const auto t0 = Clock::now();
    RunResult r = run_experiment(make_config(traced));
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    if (out != nullptr) *out = std::move(r);
    return ms;
  };

  timed_run(false, nullptr);  // warm-up (allocator, page cache) — discarded

  RunResult plain, traced;
  double plain_ms = 1e300, traced_ms = 1e300;
  for (int i = 0; i < 3; ++i) {
    plain_ms = std::min(plain_ms, timed_run(false, &plain));
    traced_ms = std::min(traced_ms, timed_run(true, &traced));
  }

  const double overhead_pct = 100.0 * (traced_ms - plain_ms) / plain_ms;
  std::printf("\nuntraced: %.0f ms   traced: %.0f ms   overhead: %+.1f%%   "
              "spans: %zu   flight events: %llu\n",
              plain_ms, traced_ms, overhead_pct, traced.telemetry->causal.span_count(),
              static_cast<unsigned long long>(traced.telemetry->flight.events_recorded()));

  // Passivity first — a fast tracer that perturbs the run is worthless.
  rep.check(traced.ledger_digest == plain.ledger_digest,
            "trace_overhead: ledger digest identical traced vs untraced");
  rep.check(traced.telemetry->registry.to_json() == plain.telemetry->registry.to_json(),
            "trace_overhead: metrics snapshot identical traced vs untraced");
  rep.check(traced.telemetry->causal.span_count() > 0,
            "trace_overhead: traced run recorded causal spans");
  // 5% relative, with 50 ms absolute slack for sub-second quick runs.
  rep.check(traced_ms <= plain_ms * 1.05 + 50.0,
            "trace_overhead: traced wall clock within 5% of untraced");

  char json[512];
  std::snprintf(json, sizeof(json),
                "{\"bench\":\"trace_overhead\",\"untraced_ms\":%.1f,\"traced_ms\":%.1f,"
                "\"overhead_pct\":%.2f,\"spans\":%zu,\"flight_events\":%llu,"
                "\"committed\":%llu}",
                plain_ms, traced_ms, overhead_pct, traced.telemetry->causal.span_count(),
                static_cast<unsigned long long>(traced.telemetry->flight.events_recorded()),
                static_cast<unsigned long long>(traced.stats.committed));
  std::ofstream("BENCH_trace_overhead.json") << json << "\n";
  std::printf("wrote BENCH_trace_overhead.json\n");

  return rep.finish("bench_trace_overhead");
}
