// Shared experiment configuration for the figure benches.
//
// Scale model: committee sizes default to 1/4 of the paper's Table I (the
// simulator runs on one core; the protocol flows and therefore the *shapes*
// are scale-invariant).  Override with JENGA_BENCH_SCALE=1.0 for paper-size
// committees and JENGA_BENCH_TXS to change the per-shard transaction count.
#pragma once

#include "harness/runner.hpp"

namespace jenga::bench {

inline constexpr std::uint32_t kShardCounts[] = {4, 6, 8, 10, 12};

/// Standard throughput/latency experiment (Figs. 5 and 6).
inline harness::RunConfig perf_config(harness::SystemKind kind, std::uint32_t num_shards) {
  harness::RunConfig cfg;
  cfg.kind = kind;
  cfg.num_shards = num_shards;
  cfg.scale = harness::bench_scale_from_env(0.25);
  cfg.contract_txs = harness::bench_txs_from_env(600) * num_shards;
  cfg.closed_loop_window = 250 * num_shards;  // bounded backlog (saturating)
  cfg.max_block_items = 256;                  // scaled with the committees
  cfg.max_sim_time = 1800 * kSecond;
  cfg.trace.num_contracts = 100'000;
  cfg.trace.num_accounts = 100'000;
  return cfg;
}

/// Storage experiment (Fig. 7a): state-heavy contracts with compact code, so
/// the storage mix matches a mature chain (states/chain >> logic).
inline harness::RunConfig storage_config(harness::SystemKind kind, std::uint32_t num_shards) {
  harness::RunConfig cfg;
  cfg.kind = kind;
  cfg.num_shards = num_shards;
  cfg.scale = harness::bench_scale_from_env(0.25);
  cfg.contract_txs = harness::bench_txs_from_env(200) * num_shards;
  cfg.closed_loop_window = 100 * num_shards;
  cfg.max_block_items = 256;
  cfg.max_sim_time = 1800 * kSecond;
  cfg.trace.num_contracts = 5000;
  cfg.trace.num_accounts = 50'000;
  cfg.trace.initial_state_entries_min = 256;
  cfg.trace.initial_state_entries_max = 768;
  cfg.trace.function_length_min = 24;
  cfg.trace.function_length_max = 80;
  // Pyramid's merging degree scales with the system (its layered design):
  // every node carries half the shards' data, which is exactly the paper's
  // "storage grows / does not scale" curve.
  cfg.merge_span = std::max(2u, num_shards / 2);
  return cfg;
}

inline double mb(std::uint64_t bytes) { return static_cast<double>(bytes) / 1e6; }

}  // namespace jenga::bench
