// Shared reporting helpers for the experiment benches: aligned tables plus
// "paper-shape checks" — qualitative assertions (who wins, rough factors,
// crossovers) matching the claims of the paper's evaluation section.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace jenga::bench {

inline int g_shape_failures = 0;
inline int g_shape_passes = 0;

inline void shape_check(bool ok, const std::string& claim) {
  std::printf("  shape %-4s | %s\n", ok ? "PASS" : "FAIL", claim.c_str());
  if (ok) {
    ++g_shape_passes;
  } else {
    ++g_shape_failures;
  }
}

/// Prints the summary; returns 0 so a failed shape check is visible but does
/// not abort a bench sweep.
inline int finish(const char* name) {
  std::printf("\n%s: %d shape checks passed, %d failed\n", name, g_shape_passes,
              g_shape_failures);
  return 0;
}

inline void header(const char* title, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("(reproduces %s)\n", paper_ref);
  std::printf("==============================================================\n");
}

}  // namespace jenga::bench
