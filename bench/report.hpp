// Shared reporting helpers for the experiment benches: aligned tables plus
// "paper-shape checks" — qualitative assertions (who wins, rough factors,
// crossovers) matching the claims of the paper's evaluation section.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace jenga::bench {

/// Pass/fail accumulator for one bench binary (replaces the old mutable
/// inline globals, which silently shared state across translation units).
/// Each main() owns one reporter; finish() is the process exit code.
struct ShapeReporter {
  int passes = 0;
  int failures = 0;

  void check(bool ok, const std::string& claim) {
    std::printf("  shape %-4s | %s\n", ok ? "PASS" : "FAIL", claim.c_str());
    if (ok) {
      ++passes;
    } else {
      ++failures;
    }
  }

  /// Prints the summary.  Returns 0 normally (a failed shape check is
  /// visible but does not abort a bench sweep); under JENGA_STRICT_SHAPES=1
  /// failures turn into a nonzero exit code so CI can gate on them.
  [[nodiscard]] int finish(const char* name) const {
    std::printf("\n%s: %d shape checks passed, %d failed\n", name, passes, failures);
    const char* strict = std::getenv("JENGA_STRICT_SHAPES");
    if (failures > 0 && strict != nullptr && std::strcmp(strict, "1") == 0) return 1;
    return 0;
  }
};

inline void header(const char* title, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("(reproduces %s)\n", paper_ref);
  std::printf("==============================================================\n");
}

/// Parses `--trace-out <file>` / `--trace-out=<file>` from argv (the harness
/// runner writes the telemetry JSONL there).  Empty string when absent.
inline std::string trace_out_from_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) return argv[i + 1];
    if (std::strncmp(argv[i], "--trace-out=", 12) == 0) return argv[i] + 12;
  }
  return {};
}

}  // namespace jenga::bench
