// Overload sweep: open-loop arrivals at 0.5x-5x the measured saturation
// throughput, Poisson and bursty, through the bounded fee-priority admission
// layer (DESIGN.md §10).  The claim under test is graceful degradation: as
// offered load passes saturation, goodput holds near the service rate while
// the admission layer sheds the excess with reason codes — bounded pool
// depth, bounded p99 for what it admits, no invariant violations, and
// nothing dropped silently (generated = submitted + rejected + expired,
// exactly).
//
// Saturation is self-calibrated per build/scale: a closed-loop run (bounded
// backlog, no admission layer) measures the pipeline's service rate, and the
// sweep multiplies that.  Emits BENCH_overload.json.  JENGA_OVERLOAD_QUICK=1
// shrinks the sweep to bursty {1x, 3x} for CI smoke runs.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/runner.hpp"
#include "report.hpp"
#include "telemetry/metrics.hpp"

namespace {

using namespace jenga;
using harness::RunConfig;
using harness::RunResult;
using harness::SystemKind;

bool quick_mode() {
  const char* env = std::getenv("JENGA_OVERLOAD_QUICK");
  return env != nullptr && std::strcmp(env, "1") == 0;
}

struct CellResult {
  const char* mode = "";
  double mult = 0.0;
  double rate_tps = 0.0;
  std::uint64_t generated = 0;
  std::uint64_t submitted = 0;
  std::uint64_t committed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t expired = 0;
  /// Generation skips under kShed backpressure and full-pool retry attempts:
  /// load the admission layer deferred rather than terminally refused (a
  /// finite open-loop workload with working backpressure eventually admits).
  std::uint64_t shed = 0;
  std::uint64_t retries = 0;
  std::uint64_t evicted = 0;
  double goodput_tps = 0.0;
  double p99_commit_s = 0.0;
  double p99_wait_s = 0.0;
  /// p99 commit + p99 pool wait: an upper-bound proxy for the end-to-end p99
  /// of admitted transactions (the two distributions are not joined per tx).
  double p99_admitted_s = 0.0;
  double rejection_rate = 0.0;
  /// Mean pool wait of the lowest fee tier over the highest — aging keeps
  /// this bounded instead of letting low-fee traffic starve.
  double fairness_ratio = 0.0;
  std::size_t peak_resident = 0;
  std::size_t capacity = 0;
  bool invariants_ok = false;
};

RunConfig base_config(std::size_t total_txs) {
  RunConfig cfg;
  cfg.kind = SystemKind::kJenga;
  cfg.num_shards = 4;
  cfg.nodes_per_shard = 8;
  cfg.contract_txs = total_txs * 3 / 4;
  cfg.transfer_txs = total_txs - cfg.contract_txs;
  cfg.max_sim_time = 3600 * kSecond;
  cfg.trace.num_contracts = 600;
  cfg.trace.num_accounts = 2000;
  cfg.trace.max_steps = 10;
  cfg.trace.max_contracts_per_tx = 5;
  return cfg;
}

CellResult run_cell(workload::ArrivalMode mode, double mult, double sat_tps,
                    std::size_t total_txs) {
  RunConfig cfg = base_config(total_txs);
  cfg.arrival.mode = mode;
  cfg.arrival.rate_tps = mult * sat_tps;
  if (mode == workload::ArrivalMode::kBursty) {
    cfg.arrival.burst_period = 20 * kSecond;
    cfg.arrival.burst_duration = 4 * kSecond;
    cfg.arrival.burst_multiplier = 3.0;
  }
  cfg.mempool.capacity = 8;  // per ingress shard; small enough to bite at 2x+
  cfg.mempool.ttl = 30 * kSecond;
  cfg.max_inflight = 64;
  const RunResult r = harness::run_experiment(cfg);

  CellResult c;
  c.mode = workload::arrival_mode_name(mode);
  c.mult = mult;
  c.rate_tps = cfg.arrival.rate_tps;
  c.generated = r.ingress.client.generated;
  c.submitted = r.stats.submitted;
  c.committed = r.stats.committed;
  c.rejected = r.stats.rejected;
  c.expired = r.stats.expired;
  c.shed = r.ingress.client.shed;
  c.retries = r.ingress.client.retries;
  c.evicted = r.ingress.pools.totals.evicted;
  c.goodput_tps = r.tps;
  c.p99_commit_s = r.stats.latency_quantile_seconds(0.99);
  // Pool wait, merged across fee tiers (recorded in microseconds).
  telemetry::Histogram waits;
  telemetry::Histogram tier_means[mempool::kFeeTiers];
  if (r.telemetry) {
    for (std::uint8_t t = 0; t < mempool::kFeeTiers; ++t) {
      const auto* h = r.telemetry->registry.find_histogram("mempool.wait_us.tier" +
                                                           std::to_string(t));
      if (h == nullptr) continue;
      waits.merge(*h);
      tier_means[t] = *h;
    }
  }
  c.p99_wait_s = waits.quantile(0.99) / static_cast<double>(kSecond);
  c.p99_admitted_s = c.p99_commit_s + c.p99_wait_s;
  c.rejection_rate = c.generated == 0 ? 0.0
                                      : static_cast<double>(c.rejected + c.expired) /
                                            static_cast<double>(c.generated);
  const double low = tier_means[0].mean();
  const double high = tier_means[mempool::kFeeTiers - 1].mean();
  c.fairness_ratio = high > 0.0 ? low / high : (low > 0.0 ? 1e9 : 1.0);
  c.peak_resident = r.ingress.pools.peak_resident;
  c.capacity = cfg.mempool.capacity * cfg.num_shards;
  c.invariants_ok = r.ingress.invariants_audited && r.ingress.invariants.ok();
  if (!c.invariants_ok && r.ingress.invariants_audited)
    std::printf("%s\n", r.ingress.invariants.describe().c_str());
  return c;
}

std::string to_json(double sat_tps, const std::vector<CellResult>& cells) {
  std::ostringstream out;
  out << "{\"bench\":\"overload\",\"saturation_tps\":" << sat_tps << ",\"cells\":[";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& c = cells[i];
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "{\"mode\":\"%s\",\"mult\":%.1f,\"rate_tps\":%.2f,"
                  "\"generated\":%llu,\"submitted\":%llu,\"committed\":%llu,"
                  "\"rejected\":%llu,\"expired\":%llu,\"shed\":%llu,\"retries\":%llu,"
                  "\"evicted\":%llu,\"goodput_tps\":%.3f,"
                  "\"p99_commit_s\":%.3f,\"p99_wait_s\":%.3f,\"p99_admitted_s\":%.3f,"
                  "\"rejection_rate\":%.4f,\"fairness_ratio\":%.3f,"
                  "\"peak_resident\":%zu,\"capacity\":%zu,\"invariants_ok\":%s}",
                  c.mode, c.mult, c.rate_tps, static_cast<unsigned long long>(c.generated),
                  static_cast<unsigned long long>(c.submitted),
                  static_cast<unsigned long long>(c.committed),
                  static_cast<unsigned long long>(c.rejected),
                  static_cast<unsigned long long>(c.expired),
                  static_cast<unsigned long long>(c.shed),
                  static_cast<unsigned long long>(c.retries),
                  static_cast<unsigned long long>(c.evicted), c.goodput_tps, c.p99_commit_s,
                  c.p99_wait_s, c.p99_admitted_s, c.rejection_rate, c.fairness_ratio,
                  c.peak_resident, c.capacity, c.invariants_ok ? "true" : "false");
    out << (i ? "," : "") << buf;
  }
  out << "]}";
  return out.str();
}

}  // namespace

int main() {
  using namespace jenga::bench;

  header("Overload — goodput and tail latency at 0.5x-5x saturation",
         "graceful degradation under open-loop load, DESIGN.md SS10");
  ShapeReporter rep;

  const std::size_t total_txs = jenga::harness::bench_txs_from_env(quick_mode() ? 120 : 240);

  // Saturation reference: closed-loop (bounded backlog keeps the pipeline
  // busy without an unbounded queue), no admission layer in the path.
  RunConfig closed = base_config(total_txs);
  closed.closed_loop_window = 64;
  const RunResult sat = jenga::harness::run_experiment(closed);
  const double sat_tps = sat.tps;
  std::printf("saturation (closed-loop, window 64): %.2f tps, p99 %.2fs\n\n", sat_tps,
              sat.stats.latency_quantile_seconds(0.99));
  rep.check(sat_tps > 0, "closed-loop saturation measurement produced a positive rate");

  std::vector<double> mults = {0.5, 1.0, 2.0, 3.0, 5.0};
  std::vector<jenga::workload::ArrivalMode> modes = {jenga::workload::ArrivalMode::kPoisson,
                                                     jenga::workload::ArrivalMode::kBursty};
  if (quick_mode()) {
    std::printf("(JENGA_OVERLOAD_QUICK=1: bursty {1x, 3x} only)\n");
    mults = {1.0, 3.0};
    modes = {jenga::workload::ArrivalMode::kBursty};
  }

  std::vector<CellResult> cells;
  std::printf("%-9s %-5s %-9s %-9s %-9s %-8s %-9s %-9s %-8s %-7s %-10s\n", "mode", "mult",
              "rate", "committed", "rejected", "expired", "goodput", "p99adm(s)", "rej%",
              "peak", "invariants");
  for (const auto mode : modes) {
    for (const double mult : mults) {
      const CellResult c = run_cell(mode, mult, sat_tps, total_txs);
      std::printf("%-9s %-5.1f %-9.2f %-9llu %-9llu %-8llu %-9.2f %-9.2f %-8.2f %-7zu %-10s\n",
                  c.mode, c.mult, c.rate_tps, static_cast<unsigned long long>(c.committed),
                  static_cast<unsigned long long>(c.rejected),
                  static_cast<unsigned long long>(c.expired), c.goodput_tps, c.p99_admitted_s,
                  100.0 * c.rejection_rate, c.peak_resident,
                  c.invariants_ok ? "ok" : "VIOLATION");
      std::fflush(stdout);
      cells.push_back(c);
    }
  }
  std::printf("\n");

  bool all_invariants = true;
  bool all_accounted = true;
  bool all_bounded = true;
  const CellResult* ref_1x = nullptr;   // unit-load reference for the p99 bound
  const CellResult* peak_cell = nullptr;  // most-overloaded bursty cell
  for (const CellResult& c : cells) {
    all_invariants = all_invariants && c.invariants_ok;
    // Nothing silent: every generated tx is submitted or reason-coded.
    all_accounted = all_accounted && (c.generated == c.submitted + c.rejected + c.expired);
    all_bounded = all_bounded && (c.peak_resident <= c.capacity);
    if (c.mult == 1.0 && (ref_1x == nullptr || std::strcmp(c.mode, "poisson") == 0))
      ref_1x = &c;
    if (std::strcmp(c.mode, "bursty") == 0 && (peak_cell == nullptr || c.mult > peak_cell->mult))
      peak_cell = &c;
  }

  rep.check(all_invariants, "safety + admission invariants hold in every cell");
  rep.check(all_accounted,
            "every generated tx is accounted: submitted, rejected, or expired (no silent drops)");
  rep.check(all_bounded, "pool residency never exceeds configured capacity in any cell");

  bool overload_bites = false;
  for (const CellResult& c : cells)
    if (c.mult >= 3.0)
      overload_bites =
          overload_bites || (c.rejected + c.expired + c.shed + c.retries + c.evicted > 0);
  if (quick_mode() || ref_1x == nullptr || peak_cell == nullptr) {
    rep.check(peak_cell != nullptr, "sweep produced an overloaded bursty cell");
  }
  if (ref_1x != nullptr && peak_cell != nullptr) {
    rep.check(overload_bites,
              ">=3x cells push back (reject/expire/shed/retry/evict) through admission control");
    rep.check(peak_cell->goodput_tps >= 0.8 * sat_tps,
              "goodput at peak bursty overload stays >= 80% of saturation");
    rep.check(peak_cell->p99_admitted_s <= 3.0 * ref_1x->p99_admitted_s,
              "p99 of admitted txs at peak overload within 3x of the 1x-load p99");
  }

  const std::string json = to_json(sat_tps, cells);
  std::printf("\nJSON: %s\n", json.c_str());
  std::ofstream("BENCH_overload.json") << json << "\n";
  std::printf("wrote BENCH_overload.json\n");
  return rep.finish("bench_overload");
}
