// The train-and-hotel problem (paper §II-D): one transaction books a train
// ticket on one contract and a hotel room on another — atomically.  The two
// contracts live on different state shards; a single Jenga transaction
// executes both in one round on an execution channel.  When the hotel is
// sold out the whole trip aborts: the train booking rolls back too, and the
// client only loses the fee.
#include <cstdio>
#include <memory>

#include "core/jenga_system.hpp"
#include "ledger/placement.hpp"
#include "vm/assembler.hpp"

using namespace jenga;

namespace {

std::shared_ptr<vm::ContractLogic> make_booking_contract(ContractId id) {
  // State: key 0 = seats remaining, key 1 = bookings made.
  // book(): if seats == 0 -> ABORT; seats -= 1; bookings += 1.
  auto logic = std::make_shared<vm::ContractLogic>();
  logic->id = id;
  auto code = vm::assemble(R"(
    PUSH 0
    SLOAD         ; seats
    JZ soldout
    PUSH 0        ; key: seats
    PUSH 0
    SLOAD
    PUSH 1
    SUB
    SSTORE        ; seats -= 1
    PUSH 1        ; key: bookings
    PUSH 1
    SLOAD
    PUSH 1
    ADD
    SSTORE        ; bookings += 1
    RETURN
  soldout:
    ABORT
  )");
  if (!code.ok()) {
    std::fprintf(stderr, "assembler error: %s\n", code.error().c_str());
    std::exit(1);
  }
  logic->functions.push_back({"book", code.value()});
  return logic;
}

std::shared_ptr<ledger::Transaction> make_trip(AccountId traveller, SimTime now) {
  auto tx = std::make_shared<ledger::Transaction>();
  tx->kind = ledger::TxKind::kContractCall;
  tx->sender = traveller;
  tx->fee = 5;
  tx->created_at = now;
  tx->contracts = {ContractId{0}, ContractId{1}};  // train, hotel
  tx->accounts = {traveller};
  tx->steps = {{0, 0, {}}, {1, 0, {}}};  // book train, then hotel — atomically
  tx->finalize();
  return tx;
}

}  // namespace

int main() {
  auto train = make_booking_contract(ContractId{0});
  auto hotel = make_booking_contract(ContractId{1});

  core::Genesis genesis;
  genesis.num_accounts = 100;
  genesis.initial_balance = 10'000;
  genesis.contracts = {train, hotel};
  genesis.initial_states = {
      {{0, 10}, {1, 0}},  // train: 10 seats
      {{0, 2}, {1, 0}},   // hotel: only 2 rooms!
  };

  sim::Simulator sim;
  sim::Network net(sim, sim::NetConfig{}, Rng(11));
  core::JengaConfig config;
  config.num_shards = 2;
  config.nodes_per_shard = 4;
  core::JengaSystem jenga(sim, net, config, genesis);
  jenga.start();

  const ShardId train_shard = ledger::shard_of_contract(ContractId{0}, 2);
  const ShardId hotel_shard = ledger::shard_of_contract(ContractId{1}, 2);
  std::printf("train contract lives on shard %u, hotel contract on shard %u\n",
              train_shard.value, hotel_shard.value);

  // Three travellers want the trip; the hotel only has two rooms.  Each trip
  // is one atomic transaction across both contracts.
  for (std::uint64_t t = 0; t < 3; ++t) {
    jenga.submit(make_trip(AccountId{t}, sim.now()));
    sim.run_until(sim.now() + 30 * kSecond);  // let each trip settle
  }
  sim.run_until(sim.now() + 60 * kSecond);

  const auto& stats = jenga.stats();
  const auto& train_state = *jenga.shard_store(train_shard).contract_state(ContractId{0});
  const auto& hotel_state = *jenga.shard_store(hotel_shard).contract_state(ContractId{1});

  std::printf("\ntrips committed: %llu, trips aborted: %llu\n",
              static_cast<unsigned long long>(stats.committed),
              static_cast<unsigned long long>(stats.aborted));
  std::printf("train: %llu seats left, %llu bookings\n",
              static_cast<unsigned long long>(train_state.at(0)),
              static_cast<unsigned long long>(train_state.at(1)));
  std::printf("hotel: %llu rooms left, %llu bookings\n",
              static_cast<unsigned long long>(hotel_state.at(0)),
              static_cast<unsigned long long>(hotel_state.at(1)));

  // Atomicity: the third traveller's train seat must NOT have been consumed
  // even though the train booking step succeeded before the hotel aborted.
  const bool atomic = train_state.at(1) == hotel_state.at(1);
  std::printf("atomicity across shards: %s (train bookings == hotel bookings)\n",
              atomic ? "HELD" : "VIOLATED");
  std::printf("the aborted traveller still paid the fee (paper, Transaction Fee): "
              "fees charged = %llu\n",
              static_cast<unsigned long long>(stats.fees_charged));
  return (stats.committed == 2 && stats.aborted == 1 && atomic) ? 0 : 1;
}
