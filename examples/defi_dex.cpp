// A miniature DeFi scenario (the paper's §I motivation): a constant-product
// AMM pool contract plus two token contracts.  A swap transaction touches
// all three contracts — exactly the multi-contract, multi-step workload that
// cripples per-shard isolation and that Jenga executes in a single round.
#include <cstdio>
#include <memory>

#include "core/jenga_system.hpp"
#include "ledger/placement.hpp"
#include "vm/assembler.hpp"

using namespace jenga;

namespace {

constexpr std::uint64_t kTokenA = 0;
constexpr std::uint64_t kTokenB = 1;
constexpr std::uint64_t kPool = 2;

// Token contract: balances keyed by account id.
// transfer_in(args: account, amount): state[account] -= amount (to the pool)
std::shared_ptr<vm::ContractLogic> make_token(ContractId id) {
  auto logic = std::make_shared<vm::ContractLogic>();
  logic->id = id;
  auto debit = vm::assemble(R"(
    PUSH 0
    ARG           ; key = holder account
    PUSH 0
    ARG
    SLOAD         ; holder balance
    PUSH 1
    ARG           ; amount
    SUB
    SSTORE        ; balance' = balance - amount
    RETURN
  )");
  auto credit = vm::assemble(R"(
    PUSH 0
    ARG           ; account
    PUSH 0
    ARG
    SLOAD
    PUSH 1
    ARG
    ADD
    SSTORE
    RETURN
  )");
  if (!debit.ok() || !credit.ok()) std::exit(1);
  logic->functions.push_back({"debit", debit.value()});
  logic->functions.push_back({"credit", credit.value()});
  return logic;
}

// Pool contract state: key 0 = reserve A, key 1 = reserve B, key 2 = swaps.
// swap_a_for_b(args: amount_in): reserves update by a simplified constant-
// product rule computed in integer math: out = reserveB * in / (reserveA + in).
std::shared_ptr<vm::ContractLogic> make_pool() {
  auto logic = std::make_shared<vm::ContractLogic>();
  logic->id = ContractId{kPool};
  auto swap = vm::assemble(R"(
    ; out = rB * in / (rA + in)
    PUSH 1
    SLOAD         ; rB
    PUSH 0
    ARG           ; in
    MUL
    PUSH 0
    SLOAD         ; rA
    PUSH 0
    ARG
    ADD
    DIV           ; out
    ; rB' = rB - out   (out is on stack)
    PUSH 1
    SWAP          ; key under value? stack: out, 1 -> swap -> 1, out  (key then value needed)
    PUSH 1
    SLOAD
    SWAP
    SUB           ; rB - out
    SSTORE        ; state[1] = rB - out
    ; rA' = rA + in
    PUSH 0
    PUSH 0
    SLOAD
    PUSH 0
    ARG
    ADD
    SSTORE
    ; swaps += 1
    PUSH 2
    PUSH 2
    SLOAD
    PUSH 1
    ADD
    SSTORE
    RETURN
  )");
  if (!swap.ok()) {
    std::fprintf(stderr, "%s\n", swap.error().c_str());
    std::exit(1);
  }
  logic->functions.push_back({"swap_a_for_b", swap.value()});
  return logic;
}

}  // namespace

int main() {
  core::Genesis genesis;
  genesis.num_accounts = 64;
  genesis.initial_balance = 100'000;
  genesis.contracts = {make_token(ContractId{kTokenA}), make_token(ContractId{kTokenB}),
                       make_pool()};
  // Token ledgers: trader accounts 1..8 hold 1000 A each; pool reserves.
  ledger::ContractState token_a, token_b;
  for (std::uint64_t acct = 1; acct <= 8; ++acct) token_a[acct] = 1000;
  genesis.initial_states = {token_a, token_b, {{0, 50'000}, {1, 50'000}, {2, 0}}};

  sim::Simulator sim;
  sim::Network net(sim, sim::NetConfig{}, Rng(3));
  core::JengaConfig config;
  config.num_shards = 3;
  config.nodes_per_shard = 6;
  core::JengaSystem jenga(sim, net, config, genesis);
  jenga.start();

  std::printf("token A on shard %u, token B on shard %u, pool on shard %u\n",
              ledger::shard_of_contract(ContractId{kTokenA}, 3).value,
              ledger::shard_of_contract(ContractId{kTokenB}, 3).value,
              ledger::shard_of_contract(ContractId{kPool}, 3).value);

  // Each swap: debit trader's A, run the pool swap, credit trader's B —
  // three contracts, three steps, one atomic transaction.
  for (std::uint64_t trader = 1; trader <= 8; ++trader) {
    auto tx = std::make_shared<ledger::Transaction>();
    tx->kind = ledger::TxKind::kContractCall;
    tx->sender = AccountId{trader};
    tx->fee = 3;
    tx->created_at = sim.now();
    tx->contracts = {ContractId{kTokenA}, ContractId{kPool}, ContractId{kTokenB}};
    tx->accounts = {AccountId{trader}};
    const std::uint64_t amount = 100 * trader;
    tx->steps = {
        {0, 0, {trader, amount}},  // tokenA.debit(trader, amount)
        {1, 0, {amount}},          // pool.swap_a_for_b(amount)
        {2, 1, {trader, amount}},  // tokenB.credit(trader, ~out) [simplified]
    };
    tx->finalize();
    jenga.submit(tx);
    sim.run_until(sim.now() + 15 * kSecond);
  }
  sim.run_until(sim.now() + 60 * kSecond);

  const auto& stats = jenga.stats();
  const auto& pool =
      *jenga.shard_store(ledger::shard_of_contract(ContractId{kPool}, 3)).contract_state(
          ContractId{kPool});
  std::printf("\nswaps committed: %llu (aborted %llu)\n",
              static_cast<unsigned long long>(stats.committed),
              static_cast<unsigned long long>(stats.aborted));
  std::printf("pool reserves: A=%llu B=%llu, swap count=%llu\n",
              static_cast<unsigned long long>(pool.at(0)),
              static_cast<unsigned long long>(pool.at(1)),
              static_cast<unsigned long long>(pool.at(2)));
  const bool invariant = pool.at(0) > 50'000 && pool.at(1) < 50'000 && pool.at(2) == 8;
  std::printf("AMM direction invariant (A grew, B shrank, 8 swaps): %s\n",
              invariant ? "HELD" : "VIOLATED");
  return (stats.committed == 8 && invariant) ? 0 : 1;
}
