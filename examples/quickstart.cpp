// Quickstart: stand up a small Jenga lattice, deploy a counter contract,
// submit a contract transaction, and watch the three-phase cross-shard
// protocol commit it.
//
//   cmake --build build && ./build/examples/quickstart
#include <cstdio>
#include <memory>

#include "common/hex.hpp"
#include "core/jenga_system.hpp"
#include "ledger/placement.hpp"
#include "vm/assembler.hpp"

using namespace jenga;

int main() {
  // --- 1. A contract, written in the VM's assembly -------------------------
  // counter.increment(): state[0] += args[0]
  auto counter = std::make_shared<vm::ContractLogic>();
  counter->id = ContractId{0};
  {
    auto code = vm::assemble(R"(
      PUSH 0      ; key
      PUSH 0
      SLOAD       ; current value
      PUSH 0
      ARG         ; args[0]
      ADD
      SSTORE      ; state[0] += args[0]
      RETURN
    )");
    if (!code.ok()) {
      std::fprintf(stderr, "assembler error: %s\n", code.error().c_str());
      return 1;
    }
    counter->functions.push_back({"increment", code.value()});
  }

  // --- 2. Genesis: accounts + the deployed contract ------------------------
  core::Genesis genesis;
  genesis.num_accounts = 100;
  genesis.initial_balance = 1'000'000;
  genesis.contracts = {counter};
  genesis.initial_states = {{{0, 0}}};  // counter starts at 0

  // --- 3. A 2x2 lattice: 2 state shards x 2 execution channels, 8 nodes ----
  sim::Simulator sim;
  sim::Network net(sim, sim::NetConfig{}, Rng(7));
  core::JengaConfig config;
  config.num_shards = 2;
  config.nodes_per_shard = 4;
  core::JengaSystem jenga(sim, net, config, genesis);
  jenga.start();

  std::printf("lattice: %u state shards x %u channels, %u nodes, subgroups of %u\n",
              jenga.lattice().num_shards(), jenga.lattice().num_shards(),
              jenga.lattice().total_nodes(), jenga.lattice().subgroup_size());

  // --- 4. A contract transaction: increment by 42 --------------------------
  auto tx = std::make_shared<ledger::Transaction>();
  tx->kind = ledger::TxKind::kContractCall;
  tx->sender = AccountId{5};
  tx->fee = 10;
  tx->contracts = {ContractId{0}};  // declared access set
  tx->accounts = {AccountId{5}};
  tx->steps = {{0, 0, {42}}};       // slot 0, function 0, args {42}
  tx->finalize();

  const ChannelId channel = ledger::channel_of_tx(tx->hash, config.num_shards);
  const ShardId home = ledger::shard_of_contract(ContractId{0}, config.num_shards);
  std::printf("tx %.8s...: state on shard %u, executed by channel %u\n",
              to_hex(tx->hash).c_str(), home.value, channel.value);

  jenga.submit(tx);
  sim.run_until(60 * kSecond);

  // --- 5. Inspect the result ----------------------------------------------
  const auto& stats = jenga.stats();
  std::printf("committed=%llu aborted=%llu, avg latency %.2fs (simulated)\n",
              static_cast<unsigned long long>(stats.committed),
              static_cast<unsigned long long>(stats.aborted), stats.avg_latency_seconds());
  const auto* state = jenga.shard_store(home).contract_state(ContractId{0});
  std::printf("counter value on shard %u: %llu (expected 42)\n", home.value,
              static_cast<unsigned long long>(state ? state->at(0) : 0));
  std::printf("sender balance: %llu (fee of 10 deducted)\n",
              static_cast<unsigned long long>(
                  jenga.shard_store(ledger::shard_of_account(AccountId{5}, 2))
                      .balance(AccountId{5})
                      .value_or(0)));
  return stats.committed == 1 ? 0 : 1;
}
