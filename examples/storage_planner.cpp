// Deployment planner: for a Byzantine fraction and a range of shard counts,
// compute the minimal committee size whose epoch failure probability clears
// the paper's 2^-17 target (Eq. 1-3 / Table I), plus what each node will
// store under Jenga's placement.
//
//   ./storage_planner [byzantine_fraction=0.20]
#include <cstdio>
#include <cstdlib>

#include "security/failure.hpp"

using namespace jenga;

int main(int argc, char** argv) {
  const double f = argc > 1 ? std::atof(argv[1]) : 0.20;
  if (f <= 0.0 || f >= 1.0 / 3.0) {
    std::fprintf(stderr, "byzantine fraction must be in (0, 1/3); got %f\n", f);
    return 1;
  }

  std::printf("Jenga deployment planner — f = %.0f%% Byzantine, target p < 7.6e-6 (2^-17)\n\n",
              f * 100);
  std::printf("%-8s %-14s %-12s %-14s %-22s %-20s\n", "shards", "nodes/shard", "subgroup",
              "total nodes", "p_system", "p_subgroup (all bad)");
  for (std::uint32_t s = 4; s <= 16; s += 2) {
    const std::uint64_t k = security::choose_shard_size(s, f);
    if (k == 0) {
      std::printf("%-8u no feasible committee size below 4096 nodes/shard\n", s);
      continue;
    }
    const std::uint64_t n = k * s;
    const double p_sys = security::system_failure_probability(n, s, f);
    const double p_sub = security::subgroup_failure_probability(k, k / s);
    std::printf("%-8u %-14llu %-12llu %-14llu %-22.3e %-20.3e\n", s,
                static_cast<unsigned long long>(k), static_cast<unsigned long long>(k / s),
                static_cast<unsigned long long>(n), p_sys, p_sub);
  }
  std::printf(
      "\nreading the table: each node joins one state shard AND one execution channel;\n"
      "a (shard, channel) subgroup of k/S nodes relays certified results between them,\n"
      "and it only fails if EVERY member is Byzantine (Eq. 2).\n");
  return 0;
}
