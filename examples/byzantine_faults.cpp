// Fault injection: silence Byzantine nodes (including group leaders) and
// watch Jenga's intra-shard BFT ride through with view changes, exactly as
// the liveness theorem (paper Theorem 2) promises while each group keeps
// more than 2/3 honest members.
#include <cstdio>
#include <memory>

#include "core/jenga_system.hpp"
#include "workload/trace.hpp"

using namespace jenga;

int main() {
  workload::TraceConfig tc;
  tc.num_contracts = 500;
  tc.num_accounts = 500;
  tc.max_contracts_per_tx = 3;
  tc.max_steps = 6;
  workload::TraceGenerator gen(tc, Rng(21));

  core::Genesis genesis;
  genesis.num_accounts = tc.num_accounts;
  genesis.initial_balance = tc.account_initial_balance;
  genesis.contracts = gen.contracts();
  for (std::size_t i = 0; i < genesis.contracts.size(); ++i)
    genesis.initial_states.push_back(gen.initial_state(i));

  sim::Simulator sim;
  sim::Network net(sim, sim::NetConfig{}, Rng(5));
  core::JengaConfig config;
  config.num_shards = 2;
  config.nodes_per_shard = 8;  // quorum 6-of-8 per group: tolerates 2 silent
  config.view_timeout = 10 * kSecond;
  core::JengaSystem jenga(sim, net, config, genesis);
  jenga.start();

  // Silence 2 nodes of shard 0 — below the 1/3 threshold of every group they
  // belong to.  One of them leads shard 0's first height, forcing a view
  // change before anything can commit.
  const auto& shard0 = jenga.lattice().shard_members(ShardId{0});
  jenga.set_node_silent(shard0[0]);
  jenga.set_node_silent(shard0[1]);
  std::printf("silenced nodes %u and %u (shard 0's first two members)\n",
              shard0[0].value, shard0[1].value);

  const int kTxs = 10;
  for (int i = 0; i < kTxs; ++i) {
    auto tx = std::make_shared<ledger::Transaction>(gen.contract_tx(1'000'000, sim.now()));
    jenga.submit(tx);
    sim.run_until(sim.now() + 2 * kSecond);
  }
  sim.run_until(sim.now() + 300 * kSecond);

  const auto& stats = jenga.stats();
  std::printf("submitted=%llu committed=%llu aborted=%llu avg latency=%.2fs\n",
              static_cast<unsigned long long>(stats.submitted),
              static_cast<unsigned long long>(stats.committed),
              static_cast<unsigned long long>(stats.aborted), stats.avg_latency_seconds());
  std::printf("locks left dangling: %zu\n", jenga.held_locks());
  const bool live = stats.committed + stats.aborted == kTxs && jenga.held_locks() == 0;
  std::printf("liveness under f < 1/3 silent nodes: %s\n", live ? "HELD" : "VIOLATED");
  return live ? 0 : 1;
}
