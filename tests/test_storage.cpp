// Durable authenticated state: Merkle trie properties, WAL recovery
// semantics, the in-memory crash/corruption model, backend bit-identity,
// kill-point crash recovery against a never-crashed oracle, and
// proof-verified state sync.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "crypto/sha256.hpp"
#include "ledger/state_store.hpp"
#include "ledger/state_sync.hpp"
#include "ledger/storage_backend.hpp"
#include "ledger/storage_env.hpp"
#include "ledger/trie.hpp"
#include "ledger/wal.hpp"

namespace jenga::ledger {
namespace {

Hash256 path_of(std::uint64_t i) {
  std::uint8_t buf[8];
  for (int b = 0; b < 8; ++b) buf[b] = static_cast<std::uint8_t>(i >> (8 * b));
  return crypto::sha256(std::span<const std::uint8_t>(buf, 8));
}

Hash256 value_of(std::uint64_t i) { return crypto::sha256_tagged("test-val", path_of(i).bytes); }

std::vector<std::uint8_t> bytes_of(std::string_view s) {
  return {s.begin(), s.end()};
}

// --- deterministic mutation scripts ------------------------------------------
// A script is a flat op list derived from a seed; applying the same script to
// any store (any backend) must land on the same digest at every commit point.

struct ScriptOp {
  bool contract = false;
  std::uint64_t id = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

std::vector<ScriptOp> make_script(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  std::vector<ScriptOp> ops(n);
  for (auto& op : ops) {
    op.contract = rng.uniform(3) == 0;
    op.id = rng.uniform(40);
    op.a = rng.uniform(1'000'000);
    op.b = rng.uniform(1'000'000);
  }
  return ops;
}

void apply_op(StateStore& store, const ScriptOp& op) {
  if (!op.contract) {
    const AccountId id{op.id};
    if (store.has_account(id)) {
      store.set_balance(id, op.a);
    } else {
      store.create_account(id, op.a);
    }
  } else {
    const ContractId id{op.id};
    ContractState st;
    if (const ContractState* cur = store.contract_state(id)) st = *cur;
    st[op.a % 8] = op.b;
    if (store.has_contract_state(id)) {
      store.set_contract_state(id, std::move(st));
    } else {
      store.create_contract_state(id, std::move(st));
    }
  }
}

/// Applies ops [from, to) with a commit every `stride` ops (measured from the
/// start of the script), recording the digest at each commit.
void run_script(StateStore& store, const std::vector<ScriptOp>& ops, std::size_t from,
                std::size_t to, std::size_t stride, std::vector<Hash256>* digests = nullptr) {
  for (std::size_t i = from; i < to; ++i) {
    apply_op(store, ops[i]);
    if ((i + 1) % stride == 0) {
      store.commit();
      if (digests != nullptr) digests->push_back(store.digest());
    }
  }
}

// --- CRC ---------------------------------------------------------------------

TEST(Crc32c, KnownVector) {
  // The canonical CRC-32C check value.
  const auto data = bytes_of("123456789");
  EXPECT_EQ(crc32c(data), 0xE3069283u);
  EXPECT_EQ(crc32c(std::span<const std::uint8_t>{}), 0u);
}

// --- Merkle trie -------------------------------------------------------------

TEST(MerkleTrie, EmptyRootIsStable) {
  MerkleTrie trie;
  EXPECT_EQ(trie.root(), MerkleTrie::empty_root());
  EXPECT_EQ(trie.recompute_root(), MerkleTrie::empty_root());
  EXPECT_EQ(trie.size(), 0u);
}

TEST(MerkleTrie, RootIsInsertionOrderIndependent) {
  constexpr std::size_t kKeys = 300;
  std::vector<std::uint64_t> order(kKeys);
  std::iota(order.begin(), order.end(), 0);

  auto build = [&](const std::vector<std::uint64_t>& seq) {
    MerkleTrie trie;
    for (std::uint64_t i : seq) trie.put(path_of(i), value_of(i));
    return trie;
  };

  const Hash256 forward = build(order).root();
  std::reverse(order.begin(), order.end());
  EXPECT_EQ(build(order).root(), forward);
  Rng rng(99);
  std::shuffle(order.begin(), order.end(), rng);
  MerkleTrie shuffled = build(order);
  EXPECT_EQ(shuffled.root(), forward);
  EXPECT_EQ(shuffled.root(), shuffled.recompute_root());
  EXPECT_EQ(shuffled.size(), kKeys);
}

TEST(MerkleTrie, EraseCanonicalizesStructure) {
  // Insert 2N keys, erase the odd half in two different orders: both must
  // equal the trie built from the even half alone (single-leaf inner chains
  // collapse, so structure is a pure function of the surviving set).
  constexpr std::size_t kKeys = 200;
  MerkleTrie even_only;
  for (std::uint64_t i = 0; i < kKeys; i += 2) even_only.put(path_of(i), value_of(i));

  for (bool reverse_erase : {false, true}) {
    MerkleTrie trie;
    for (std::uint64_t i = 0; i < kKeys; ++i) trie.put(path_of(i), value_of(i));
    for (std::uint64_t j = 0; j < kKeys / 2; ++j) {
      const std::uint64_t i = reverse_erase ? kKeys - 1 - 2 * j : 2 * j + 1;
      EXPECT_TRUE(trie.erase(path_of(i)));
    }
    EXPECT_EQ(trie.root(), even_only.root());
    EXPECT_EQ(trie.size(), kKeys / 2);
    EXPECT_EQ(trie.root(), trie.recompute_root());
  }
}

TEST(MerkleTrie, IncrementalRootMatchesRecompute) {
  MerkleTrie trie;
  Rng rng(7);
  for (int round = 0; round < 40; ++round) {
    for (int j = 0; j < 25; ++j) {
      const std::uint64_t key = rng.uniform(500);
      if (rng.uniform(4) == 0) {
        trie.erase(path_of(key));
      } else {
        trie.put(path_of(key), value_of(key + rng.uniform(3)));
      }
    }
    ASSERT_EQ(trie.root(), trie.recompute_root()) << "round " << round;
  }
}

TEST(MerkleTrie, GetAndUpdate) {
  MerkleTrie trie;
  trie.put(path_of(1), value_of(1));
  const Hash256 one = trie.root();
  trie.put(path_of(2), value_of(2));
  EXPECT_NE(trie.root(), one);
  ASSERT_NE(trie.get(path_of(2)), nullptr);
  EXPECT_EQ(*trie.get(path_of(2)), value_of(2));
  EXPECT_EQ(trie.get(path_of(3)), nullptr);
  EXPECT_FALSE(trie.erase(path_of(3)));
  EXPECT_TRUE(trie.erase(path_of(2)));
  EXPECT_EQ(trie.root(), one);  // back to the single-key state
}

TEST(MerkleTrie, ProofsVerifyAndRejectTampering) {
  MerkleTrie trie;
  constexpr std::size_t kKeys = 120;
  for (std::uint64_t i = 0; i < kKeys; ++i) trie.put(path_of(i), value_of(i));
  const Hash256 root = trie.root();

  for (std::uint64_t i = 0; i < kKeys; ++i) {
    TrieProof proof;
    ASSERT_TRUE(trie.prove(path_of(i), proof));
    EXPECT_TRUE(MerkleTrie::verify(root, path_of(i), value_of(i), proof));

    // Tampered value: the leaf hash no longer matches the parent frame.
    EXPECT_FALSE(MerkleTrie::verify(root, path_of(i), value_of(i + 1), proof));
    // Wrong root: the top frame no longer hashes to it.
    EXPECT_FALSE(MerkleTrie::verify(value_of(0), path_of(i), value_of(i), proof));
  }

  // Tampered sibling inside a middle frame breaks the chain above it.
  TrieProof proof;
  ASSERT_TRUE(trie.prove(path_of(5), proof));
  ASSERT_GE(proof.depth(), 1u);
  TrieProof bent = proof;
  bent.nodes.back().children[0].bytes[0] ^= 0x01;
  EXPECT_FALSE(MerkleTrie::verify(root, path_of(5), value_of(5), bent));

  // Absent keys are not provable.
  TrieProof absent;
  EXPECT_FALSE(trie.prove(path_of(kKeys + 7), absent));
}

// --- WAL ---------------------------------------------------------------------

WalRecord put_record(std::uint64_t seq, std::string_view key, std::string_view value) {
  WalRecord r;
  r.seq = seq;
  r.op = WalOp::kPut;
  r.key = bytes_of(key);
  r.value = bytes_of(value);
  return r;
}

TEST(Wal, AppendReplayRoundTrip) {
  MemStorageEnv env;
  StorageFile* file = env.open("log");
  WalWriter writer(file);
  writer.append(put_record(1, "alpha", "1111"));
  WalRecord erase;
  erase.seq = 2;
  erase.op = WalOp::kErase;
  erase.key = bytes_of("alpha");
  writer.append(erase);
  WalRecord commit;
  commit.seq = 3;
  commit.op = WalOp::kCommit;
  commit.root = value_of(9);
  writer.append(commit);

  auto replay = wal_replay(file);
  ASSERT_TRUE(replay.ok()) << replay.error();
  const WalReplay& out = replay.value();
  ASSERT_EQ(out.records.size(), 3u);
  EXPECT_EQ(out.records[0].key, bytes_of("alpha"));
  EXPECT_EQ(out.records[0].value, bytes_of("1111"));
  EXPECT_EQ(out.records[1].op, WalOp::kErase);
  EXPECT_EQ(out.records[2].root, value_of(9));
  EXPECT_EQ(out.torn_tail_bytes, 0u);
  EXPECT_EQ(out.valid_end, file->size());
  ASSERT_EQ(out.record_ends.size(), 3u);
  EXPECT_EQ(out.record_ends.back(), file->size());
}

TEST(Wal, TornTailRecoversCleanly) {
  MemStorageEnv env;
  StorageFile* file = env.open("log");
  WalWriter writer(file);
  writer.append(put_record(1, "a", "1"));
  writer.append(put_record(2, "b", "2"));
  const std::uint64_t intact = file->size();
  writer.append(put_record(3, "c", "3"));
  file->truncate(intact + 5);  // the last record cut mid-header/payload

  auto replay = wal_replay(file);
  ASSERT_TRUE(replay.ok()) << replay.error();
  EXPECT_EQ(replay.value().records.size(), 2u);
  EXPECT_EQ(replay.value().torn_tail_bytes, 5u);
  EXPECT_EQ(replay.value().valid_end, intact);
}

TEST(Wal, InteriorBitFlipIsRefused) {
  MemStorageEnv env;
  StorageFile* file = env.open("log");
  WalWriter writer(file);
  writer.append(put_record(1, "aaaa", "11111111"));
  writer.append(put_record(2, "bbbb", "22222222"));
  writer.append(put_record(3, "cccc", "33333333"));
  file->sync();
  // Flip a payload bit of the FIRST record: a broken record with intact
  // records after it is interior corruption, not a torn tail.
  env.flip_bit("log", (kWalHeaderBytes + 3) * 8);
  env.power_cut();

  auto replay = wal_replay(env.open("log"));
  ASSERT_FALSE(replay.ok());
  EXPECT_NE(replay.error().find("corruption"), std::string::npos) << replay.error();
}

// --- MemStorageEnv crash model -----------------------------------------------

TEST(MemStorageEnv, PowerCutFallsBackToDurableImage) {
  MemStorageEnv env;
  StorageFile* f = env.open("f");
  f->append(bytes_of("synced"));
  f->sync();
  f->append(bytes_of("+lost"));
  EXPECT_EQ(f->size(), 11u);
  env.power_cut();
  EXPECT_EQ(env.open("f")->size(), 6u);
  EXPECT_EQ(env.fault_stats().power_cuts, 1u);

  // Never-synced files disappear entirely.
  env.open("ghost")->append(bytes_of("boo"));
  env.power_cut();
  EXPECT_FALSE(env.exists("ghost"));
}

TEST(MemStorageEnv, TornWritePersistsPrefixOnly) {
  MemStorageEnv env;
  env.arm_torn_write("f", 4);
  StorageFile* f = env.open("f");
  f->append(bytes_of("0123456789"));
  EXPECT_EQ(f->size(), 4u);  // torn mid-buffer
  f->append(bytes_of("xy"));
  EXPECT_EQ(f->size(), 6u);  // one-shot: the next append is whole
  EXPECT_EQ(env.fault_stats().torn_writes, 1u);
}

TEST(MemStorageEnv, DroppedFsyncLosesAckedWrites) {
  MemStorageEnv env;
  StorageFile* f = env.open("f");
  f->append(bytes_of("base"));
  f->sync();
  env.set_drop_fsyncs(true);
  f->append(bytes_of("+acked"));
  f->sync();  // the drive lies
  env.set_drop_fsyncs(false);
  env.power_cut();
  EXPECT_EQ(env.open("f")->size(), 4u);
  EXPECT_GE(env.fault_stats().dropped_fsyncs, 1u);
}

TEST(MemStorageEnv, DurableViewIsIsolatedSnapshot) {
  MemStorageEnv env;
  StorageFile* f = env.open("f");
  f->append(bytes_of("synced"));
  f->sync();
  f->append(bytes_of("+tail"));

  auto view = env.durable_view();
  EXPECT_EQ(view->open("f")->size(), 6u);  // only the durable bytes
  view->open("f")->append(bytes_of("!!!"));
  EXPECT_EQ(f->size(), 11u);  // the live env never noticed
}

TEST(MemStorageEnv, RenameIsAtomicReplace) {
  MemStorageEnv env;
  env.open("tmp")->append(bytes_of("new"));
  env.open("tmp")->sync();
  env.open("live")->append(bytes_of("old-old"));
  env.open("live")->sync();
  env.rename("tmp", "live");
  EXPECT_FALSE(env.exists("tmp"));
  StorageFile* live = env.open("live");
  ASSERT_EQ(live->size(), 3u);
  std::vector<std::uint8_t> buf(3);
  ASSERT_TRUE(live->read(0, buf));
  EXPECT_EQ(buf, bytes_of("new"));
}

// --- backend bit-identity ----------------------------------------------------

TEST(Backend, InMemoryAndDurableAreBitIdentical) {
  const auto ops = make_script(0xB17, 400);

  StateStore plain;  // backend-less reference
  auto mem = StateStore::open(std::make_unique<InMemoryBackend>());
  ASSERT_TRUE(mem.ok()) << mem.error();
  MemStorageEnv env;
  auto durable = StateStore::open(
      std::make_unique<DurableBackend>(&env, DurableOptions{.snapshot_interval = 8}));
  ASSERT_TRUE(durable.ok()) << durable.error();

  for (std::size_t i = 0; i < ops.size(); ++i) {
    apply_op(plain, ops[i]);
    apply_op(mem.value(), ops[i]);
    apply_op(durable.value(), ops[i]);
    if ((i + 1) % 16 == 0) {
      mem.value().commit();
      durable.value().commit();
      ASSERT_EQ(mem.value().digest(), plain.digest()) << "op " << i;
      ASSERT_EQ(durable.value().digest(), plain.digest()) << "op " << i;
    }
  }
  EXPECT_GT(durable.value().backend()->stats().snapshots_written, 0u);
  EXPECT_GT(durable.value().backend()->stats().wal_records, 0u);
}

TEST(Backend, CleanShutdownRecoversExactState) {
  MemStorageEnv env;
  const auto ops = make_script(0x5EED, 200);
  Hash256 live_digest;
  std::size_t live_accounts = 0;
  {
    auto store = StateStore::open(
        std::make_unique<DurableBackend>(&env, DurableOptions{.snapshot_interval = 16}));
    ASSERT_TRUE(store.ok()) << store.error();
    run_script(store.value(), ops, 0, ops.size(), 10);
    live_digest = store.value().digest();
    live_accounts = store.value().account_count();
  }

  auto view = env.durable_view();
  auto recovered = StateStore::open(
      std::make_unique<DurableBackend>(view.get(), DurableOptions{.snapshot_interval = 16}));
  ASSERT_TRUE(recovered.ok()) << recovered.error();
  EXPECT_EQ(recovered.value().digest(), live_digest);
  EXPECT_EQ(recovered.value().account_count(), live_accounts);
}

TEST(Backend, UncommittedTailIsDropped) {
  MemStorageEnv env;
  DurableBackend backend(&env, DurableOptions{.snapshot_interval = 0});
  ASSERT_TRUE(backend.load().ok());
  const auto key = state_key_account(AccountId{1});
  backend.put(key, encode_account_value(100));
  MerkleTrie trie;
  trie.put(state_path(key), state_value_hash(encode_account_value(100)));
  backend.commit(trie.root());
  // A batch that never reached its commit barrier — force it durable anyway
  // (worst case: the crash happened just before the commit record).
  backend.put(state_key_account(AccountId{2}), encode_account_value(200));
  env.open("state.wal")->sync();

  auto view = env.durable_view();
  DurableBackend reopened(view.get(), DurableOptions{.snapshot_interval = 0});
  auto recovered = reopened.load();
  ASSERT_TRUE(recovered.ok()) << recovered.error();
  ASSERT_EQ(recovered.value().entries.size(), 1u);
  EXPECT_EQ(recovered.value().entries[0].first, key);
  EXPECT_EQ(recovered.value().committed_root, trie.root());
  EXPECT_EQ(reopened.stats().uncommitted_dropped, 1u);
}

// --- kill-point crash recovery ----------------------------------------------
// The contract (ISSUE satellite): crash at a kill point, restart, and the
// ledger digest equals a run that never crashed — across ≥3 seeds, for kills
// both mid-WAL-append and mid-snapshot.

TEST(CrashRecovery, KilledMidWalAppendMatchesNeverCrashedRun) {
  constexpr std::size_t kOps = 120;
  constexpr std::size_t kStride = 10;
  for (const std::uint64_t seed : {0xAA1ull, 0xBB2ull, 0xCC3ull}) {
    const auto ops = make_script(seed, kOps);
    // The kill lands mid-batch: between two commit barriers.
    const std::size_t kill_after = 60 + seed % 7 + 1;  // ops applied pre-crash
    const std::size_t committed = (kill_after / kStride) * kStride;
    ASSERT_LT(committed, kill_after);

    MemStorageEnv env;
    {
      auto store = StateStore::open(
          std::make_unique<DurableBackend>(&env, DurableOptions{.snapshot_interval = 4}));
      ASSERT_TRUE(store.ok()) << store.error();
      run_script(store.value(), ops, 0, kill_after, kStride);
      // Crash DURING the next WAL append: the record tears mid-buffer, a
      // partial flush makes the torn prefix durable, then the power goes.
      env.arm_torn_write("state.wal", 7);
      apply_op(store.value(), ops[kill_after]);
      env.open("state.wal")->sync();
      env.power_cut();
    }

    // Never-crashed oracle at the last durable commit.
    StateStore oracle;
    run_script(oracle, ops, 0, committed, kStride);

    auto recovered = StateStore::open(
        std::make_unique<DurableBackend>(&env, DurableOptions{.snapshot_interval = 4}));
    ASSERT_TRUE(recovered.ok()) << "seed " << seed << ": " << recovered.error();
    EXPECT_EQ(recovered.value().digest(), oracle.digest()) << "seed " << seed;

    // Resuming from the recovered store and replaying the lost suffix lands
    // on the same digest as a run that never crashed at all.
    run_script(recovered.value(), ops, committed, kOps, kStride);
    StateStore full;
    run_script(full, ops, 0, kOps, kStride);
    EXPECT_EQ(recovered.value().digest(), full.digest()) << "seed " << seed;
  }
}

TEST(CrashRecovery, KilledMidSnapshotMatchesNeverCrashedRun) {
  constexpr std::size_t kStride = 5;
  for (const std::uint64_t seed : {0x11ull, 0x22ull, 0x33ull}) {
    const auto ops = make_script(seed, 60);
    MemStorageEnv env;
    {
      auto store = StateStore::open(
          std::make_unique<DurableBackend>(&env, DurableOptions{.snapshot_interval = 3}));
      ASSERT_TRUE(store.ok()) << store.error();
      // Two clean commits, then the drive stops persisting right as the
      // third commit triggers snapshot rotation: the snapshot file, the
      // rename and the fresh-generation WAL all fail to reach the platter.
      run_script(store.value(), ops, 0, 2 * kStride, kStride);
      env.set_drop_fsyncs(true);
      run_script(store.value(), ops, 2 * kStride, 3 * kStride, kStride);
      ASSERT_GT(store.value().backend()->stats().snapshots_written, 0u);
      env.power_cut();
      env.set_drop_fsyncs(false);  // the replacement drive is honest
    }

    // Durable truth: the old-generation WAL through commit 2.  The lost
    // snapshot must not strand recovery (the old log was truncated only in
    // volatile space, so its records are still on disk).
    StateStore oracle;
    run_script(oracle, ops, 0, 2 * kStride, kStride);

    auto recovered = StateStore::open(
        std::make_unique<DurableBackend>(&env, DurableOptions{.snapshot_interval = 3}));
    ASSERT_TRUE(recovered.ok()) << "seed " << seed << ": " << recovered.error();
    EXPECT_EQ(recovered.value().digest(), oracle.digest()) << "seed " << seed;

    run_script(recovered.value(), ops, 2 * kStride, ops.size(), kStride);
    StateStore full;
    run_script(full, ops, 0, ops.size(), kStride);
    EXPECT_EQ(recovered.value().digest(), full.digest()) << "seed " << seed;
  }
}

TEST(CrashRecovery, CompletedSnapshotAloneRecovers) {
  // Crash right after snapshot rotation, before anything lands in the new
  // generation's log: snapshot(gen G) + possibly-stale log must recover.
  MemStorageEnv env;
  const auto ops = make_script(0xD00D, 30);
  Hash256 at_snapshot;
  {
    auto store = StateStore::open(
        std::make_unique<DurableBackend>(&env, DurableOptions{.snapshot_interval = 2}));
    ASSERT_TRUE(store.ok()) << store.error();
    run_script(store.value(), ops, 0, 20, 10);  // 2 commits → one snapshot
    ASSERT_EQ(store.value().backend()->stats().snapshots_written, 1u);
    at_snapshot = store.value().digest();
    // More mutations, never committed (and never synced).
    run_script(store.value(), ops, 20, 29, 100);
    env.power_cut();
  }
  auto recovered = StateStore::open(
      std::make_unique<DurableBackend>(&env, DurableOptions{.snapshot_interval = 2}));
  ASSERT_TRUE(recovered.ok()) << recovered.error();
  EXPECT_EQ(recovered.value().digest(), at_snapshot);
}

// --- corruption refusal ------------------------------------------------------

TEST(Corruption, WalInteriorBitFlipRefusedAtRecovery) {
  MemStorageEnv env;
  const auto ops = make_script(0xF00, 60);
  {
    auto store = StateStore::open(
        std::make_unique<DurableBackend>(&env, DurableOptions{.snapshot_interval = 0}));
    ASSERT_TRUE(store.ok());
    run_script(store.value(), ops, 0, ops.size(), 10);
  }
  // Latent media corruption deep inside the durable log.
  const std::uint64_t wal_bytes = env.open("state.wal")->size();
  ASSERT_GT(wal_bytes, 200u);
  env.flip_bit("state.wal", (wal_bytes / 2) * 8 + 3);
  env.power_cut();

  auto recovered = StateStore::open(
      std::make_unique<DurableBackend>(&env, DurableOptions{.snapshot_interval = 0}));
  ASSERT_FALSE(recovered.ok());
  EXPECT_NE(recovered.error().find("wal"), std::string::npos) << recovered.error();
}

TEST(Corruption, SnapshotBitFlipRefusedAtRecovery) {
  MemStorageEnv env;
  const auto ops = make_script(0xF11, 40);
  {
    auto store = StateStore::open(
        std::make_unique<DurableBackend>(&env, DurableOptions{.snapshot_interval = 2}));
    ASSERT_TRUE(store.ok());
    run_script(store.value(), ops, 0, ops.size(), 10);
    ASSERT_GT(store.value().backend()->stats().snapshots_written, 0u);
  }
  env.flip_bit("state.snap", env.open("state.snap")->size() * 4);  // mid-file
  env.power_cut();

  auto recovered = StateStore::open(
      std::make_unique<DurableBackend>(&env, DurableOptions{.snapshot_interval = 2}));
  ASSERT_FALSE(recovered.ok());
  EXPECT_NE(recovered.error().find("snapshot"), std::string::npos) << recovered.error();
}

TEST(Corruption, CommitRootMismatchIsRefused) {
  // A structurally valid WAL whose commit record promises the wrong root:
  // every CRC passes, but StateStore::open must still refuse the state.
  MemStorageEnv env;
  StorageFile* file = env.open("state.wal");
  WalWriter writer(file);
  WalRecord gen;
  gen.seq = 1;
  gen.op = WalOp::kGeneration;
  gen.key.assign(8, 0);
  gen.key[0] = 1;  // generation 1, little-endian
  writer.append(gen);
  WalRecord put;
  put.seq = 2;
  put.op = WalOp::kPut;
  put.key = state_key_account(AccountId{1});
  put.value = encode_account_value(42);
  writer.append(put);
  WalRecord commit;
  commit.seq = 3;
  commit.op = WalOp::kCommit;
  commit.root = value_of(666);  // not the root of {account 1 → 42}
  writer.append(commit);
  file->sync();

  auto store = StateStore::open(
      std::make_unique<DurableBackend>(&env, DurableOptions{.snapshot_interval = 0}));
  ASSERT_FALSE(store.ok());
  EXPECT_NE(store.error().find("root"), std::string::npos) << store.error();
}

// --- proof-verified state sync -----------------------------------------------

StateStore populated_store(std::uint64_t seed, std::size_t n_ops = 150) {
  StateStore store;
  for (const auto& op : make_script(seed, n_ops)) apply_op(store, op);
  return store;
}

TEST(StateSync, SnapshotAppliesAndMatchesRoot) {
  StateStore src = populated_store(0xAB);
  const SyncSnapshot snapshot = build_sync_snapshot(src);
  EXPECT_EQ(snapshot.root, src.digest());
  EXPECT_EQ(snapshot.entries.size(), src.account_count() + src.contract_count());
  EXPECT_GT(snapshot.wire_size(), 0u);

  StateStore dst;
  const SyncOutcome outcome = apply_sync_snapshot(snapshot, dst);
  EXPECT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.keys_verified, snapshot.entries.size());
  EXPECT_EQ(outcome.proof_rejections, 0u);
  EXPECT_EQ(dst.digest(), src.digest());
  EXPECT_EQ(dst.total_balance(), src.total_balance());
}

TEST(StateSync, TamperedEntryIsRejected) {
  StateStore src = populated_store(0xCD);
  for (std::uint64_t index : {0ull, 3ull, 1000ull}) {
    SyncSnapshot snapshot = build_sync_snapshot(src);
    tamper_sync_snapshot(snapshot, index);
    StateStore dst;
    const SyncOutcome outcome = apply_sync_snapshot(snapshot, dst);
    EXPECT_FALSE(outcome.ok);
    EXPECT_EQ(outcome.proof_rejections, 1u);
    EXPECT_NE(dst.digest(), src.digest());
  }
}

TEST(StateSync, WrongAdvertisedRootIsRejected) {
  StateStore src = populated_store(0xEF);
  SyncSnapshot snapshot = build_sync_snapshot(src);
  snapshot.root.bytes[0] ^= 0x01;
  StateStore dst;
  const SyncOutcome outcome = apply_sync_snapshot(snapshot, dst);
  EXPECT_FALSE(outcome.ok);
  EXPECT_GE(outcome.proof_rejections, 1u);
}

TEST(StateSync, FullCopyFallbackReproducesState) {
  StateStore src = populated_store(0x77);
  StateStore dst;
  const std::uint64_t bytes = full_copy_sync(src, dst);
  EXPECT_GT(bytes, 0u);
  EXPECT_EQ(dst.digest(), src.digest());
}

TEST(StateSync, SyncOntoDurableStoreSurvivesRecovery) {
  // A rehomed replica syncs over proofs onto a durable backend; after a
  // crash its recovered state still matches the shard root it synced to.
  StateStore src = populated_store(0x99);
  MemStorageEnv env;
  Hash256 synced_digest;
  {
    auto dst = StateStore::open(
        std::make_unique<DurableBackend>(&env, DurableOptions{.snapshot_interval = 8}));
    ASSERT_TRUE(dst.ok());
    const SyncOutcome outcome = apply_sync_snapshot(build_sync_snapshot(src), dst.value());
    ASSERT_TRUE(outcome.ok);
    dst.value().commit();
    synced_digest = dst.value().digest();
    env.power_cut();
  }
  auto recovered = StateStore::open(
      std::make_unique<DurableBackend>(&env, DurableOptions{.snapshot_interval = 8}));
  ASSERT_TRUE(recovered.ok()) << recovered.error();
  EXPECT_EQ(recovered.value().digest(), synced_digest);
  EXPECT_EQ(recovered.value().digest(), src.digest());
}

}  // namespace
}  // namespace jenga::ledger
