// VRF (evaluate/verify, uniqueness, unforgeability) and VDF (chain +
// checkpoint verification) tests.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "crypto/sha256.hpp"
#include "crypto/vdf.hpp"
#include "crypto/vrf.hpp"

namespace jenga::crypto {
namespace {

std::vector<std::uint8_t> msg_bytes(std::string_view s) { return {s.begin(), s.end()}; }

TEST(Vrf, EvaluateVerifyRoundTrip) {
  const KeyPair kp = keypair_from_seed(10);
  const auto msg = msg_bytes("epoch-42-randomness");
  const VrfOutput out = vrf_evaluate(kp, msg);
  auto beta = vrf_verify(kp.public_key, msg, out.proof);
  ASSERT_TRUE(beta.has_value());
  EXPECT_EQ(*beta, out.beta);
}

TEST(Vrf, OutputDeterministic) {
  const KeyPair kp = keypair_from_seed(11);
  const auto msg = msg_bytes("m");
  EXPECT_EQ(vrf_evaluate(kp, msg).beta, vrf_evaluate(kp, msg).beta);
}

TEST(Vrf, DifferentMessagesDifferentOutputs) {
  const KeyPair kp = keypair_from_seed(12);
  EXPECT_NE(vrf_evaluate(kp, msg_bytes("a")).beta, vrf_evaluate(kp, msg_bytes("b")).beta);
}

TEST(Vrf, DifferentKeysDifferentOutputs) {
  const auto msg = msg_bytes("same message");
  EXPECT_NE(vrf_evaluate(keypair_from_seed(13), msg).beta,
            vrf_evaluate(keypair_from_seed(14), msg).beta);
}

TEST(Vrf, WrongKeyProofRejected) {
  const KeyPair kp1 = keypair_from_seed(15);
  const KeyPair kp2 = keypair_from_seed(16);
  const auto msg = msg_bytes("m");
  const VrfOutput out = vrf_evaluate(kp1, msg);
  EXPECT_FALSE(vrf_verify(kp2.public_key, msg, out.proof).has_value());
}

TEST(Vrf, TamperedGammaRejected) {
  const KeyPair kp = keypair_from_seed(17);
  const auto msg = msg_bytes("m");
  VrfOutput out = vrf_evaluate(kp, msg);
  out.proof.gamma = point_double(out.proof.gamma);
  EXPECT_FALSE(vrf_verify(kp.public_key, msg, out.proof).has_value());
}

TEST(Vrf, TamperedResponseRejected) {
  const KeyPair kp = keypair_from_seed(18);
  const auto msg = msg_bytes("m");
  VrfOutput out = vrf_evaluate(kp, msg);
  out.proof.s = addmod(out.proof.s, U256(1), kOrderN);
  EXPECT_FALSE(vrf_verify(kp.public_key, msg, out.proof).has_value());
}

TEST(Vrf, HashToCurveProducesCurvePoints) {
  for (int i = 0; i < 10; ++i) {
    const auto msg = msg_bytes("point-" + std::to_string(i));
    const Point p = hash_to_curve(msg);
    EXPECT_TRUE(is_on_curve(p));
    EXPECT_FALSE(p.infinity);
  }
}

TEST(Vrf, HashToCurveDeterministic) {
  const auto m = msg_bytes("det");
  EXPECT_EQ(hash_to_curve(m), hash_to_curve(m));
}

TEST(Vdf, EvaluateVerifyFull) {
  const Hash256 input = sha256("vdf-input");
  const VdfProof proof = vdf_evaluate(input, 1000, 10);
  EXPECT_EQ(proof.checkpoints.size(), 10u);
  EXPECT_TRUE(vdf_verify_full(proof));
}

TEST(Vdf, OutputIsLastCheckpoint) {
  const VdfProof proof = vdf_evaluate(sha256("x"), 100, 4);
  EXPECT_EQ(proof.output, proof.checkpoints.back());
}

TEST(Vdf, MoreIterationsDifferentOutput) {
  const Hash256 input = sha256("vdf-input");
  EXPECT_NE(vdf_evaluate(input, 100, 4).output, vdf_evaluate(input, 200, 4).output);
}

TEST(Vdf, TamperedCheckpointRejected) {
  VdfProof proof = vdf_evaluate(sha256("y"), 500, 5);
  proof.checkpoints[2].bytes[0] ^= 0xFF;
  EXPECT_FALSE(vdf_verify_full(proof));
}

TEST(Vdf, TamperedOutputRejected) {
  VdfProof proof = vdf_evaluate(sha256("z"), 500, 5);
  proof.output.bytes[0] ^= 0x01;
  EXPECT_FALSE(vdf_verify_full(proof));
  Rng rng(1);
  EXPECT_FALSE(vdf_verify_sampled(proof, 3, rng));
}

TEST(Vdf, SampledVerificationAcceptsValid) {
  const VdfProof proof = vdf_evaluate(sha256("w"), 1000, 20);
  Rng rng(2);
  EXPECT_TRUE(vdf_verify_sampled(proof, 5, rng));
}

TEST(Vdf, SampledVerificationCatchesCorruptionEventually) {
  VdfProof proof = vdf_evaluate(sha256("v"), 1000, 10);
  proof.checkpoints[4].bytes[7] ^= 0x80;
  // Re-patch the following checkpoint chainlessly: segment 4->5 now broken.
  Rng rng(3);
  bool caught = false;
  for (int trial = 0; trial < 20 && !caught; ++trial)
    caught = !vdf_verify_sampled(proof, 5, rng);
  EXPECT_TRUE(caught);
}

TEST(Vdf, EmptyProofRejected) {
  VdfProof proof;
  EXPECT_FALSE(vdf_verify_full(proof));
  Rng rng(4);
  EXPECT_FALSE(vdf_verify_sampled(proof, 1, rng));
}

}  // namespace
}  // namespace jenga::crypto
