// TxStats/StorageReport arithmetic and the client-relay cross-shard path.
#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "simnet/network.hpp"

namespace jenga {
namespace {

TEST(TxStats, TpsAndLatency) {
  TxStats st;
  st.committed = 100;
  st.first_submit_time = 10 * kSecond;
  st.last_commit_time = 30 * kSecond;
  st.total_commit_latency = 100 * 2 * kSecond;
  EXPECT_DOUBLE_EQ(st.tps(), 5.0);
  EXPECT_DOUBLE_EQ(st.avg_latency_seconds(), 2.0);
}

TEST(TxStats, EmptyRunIsZeroNotNan) {
  TxStats st;
  EXPECT_EQ(st.tps(), 0.0);
  EXPECT_EQ(st.avg_latency_seconds(), 0.0);
}

TEST(StorageReport, TotalSums) {
  StorageReport r;
  r.chain_bytes_per_node = 1;
  r.state_bytes_per_node = 2;
  r.logic_bytes_per_node = 3;
  r.extra_bytes_per_node = 4;
  EXPECT_EQ(r.total(), 10u);
}

struct NopPayload : sim::Payload {};

TEST(Relay, PaysTwoLegsAndTwoMessages) {
  sim::Simulator sim;
  sim::Network net(sim, sim::NetConfig{}, Rng(1));
  SimTime arrival = -1;
  net.register_node(NodeId{0}, [](const sim::Message&) {});
  net.register_node(NodeId{1}, [&](const sim::Message&) { arrival = sim.now(); });

  sim::Message msg;
  msg.type = sim::MsgType::kSubTxResult;
  msg.from = NodeId{0};
  msg.size_bytes = 25000;  // 10 ms serialization at 20 Mbps
  msg.payload = std::make_shared<NopPayload>();
  net.send_via_relay(NodeId{0}, NodeId{1}, msg, sim::TrafficClass::kCrossShard);
  sim.run_until_idle();

  // two latency legs (200 ms) + two serializations (20 ms).
  EXPECT_EQ(arrival, 220 * kMillisecond);
  EXPECT_EQ(net.stats().messages[1], 2u);  // accounted as two cross-shard sends
  EXPECT_EQ(net.stats().bytes[1], 2u * 25000u);
}

TEST(Relay, SlowerThanDirectSend) {
  sim::Simulator sim;
  sim::Network net(sim, sim::NetConfig{}, Rng(2));
  SimTime direct = -1, relayed = -1;
  net.register_node(NodeId{0}, [](const sim::Message&) {});
  net.register_node(NodeId{1}, [&](const sim::Message&) { direct = sim.now(); });
  net.register_node(NodeId{2}, [&](const sim::Message&) { relayed = sim.now(); });

  sim::Message msg;
  msg.type = sim::MsgType::kSubTxResult;
  msg.from = NodeId{0};
  msg.size_bytes = 100;
  msg.payload = std::make_shared<NopPayload>();
  net.send(NodeId{0}, NodeId{1}, msg, sim::TrafficClass::kCrossShard);
  net.send_via_relay(NodeId{0}, NodeId{2}, msg, sim::TrafficClass::kCrossShard);
  sim.run_until_idle();
  EXPECT_LT(direct, relayed);
}

TEST(Relay, DownSenderDropsSilently) {
  sim::Simulator sim;
  sim::Network net(sim, sim::NetConfig{}, Rng(3));
  int delivered = 0;
  net.register_node(NodeId{0}, [](const sim::Message&) {});
  net.register_node(NodeId{1}, [&](const sim::Message&) { ++delivered; });
  net.set_node_down(NodeId{0}, true);
  sim::Message msg;
  msg.type = sim::MsgType::kSubTxResult;
  msg.from = NodeId{0};
  msg.size_bytes = 100;
  msg.payload = std::make_shared<NopPayload>();
  net.send_via_relay(NodeId{0}, NodeId{1}, msg, sim::TrafficClass::kCrossShard);
  sim.run_until_idle();
  EXPECT_EQ(delivered, 0);
}

}  // namespace
}  // namespace jenga
