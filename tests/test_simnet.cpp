// Event queue and network timing model.
#include <gtest/gtest.h>

#include <vector>

#include "simnet/network.hpp"
#include "simnet/simulator.hpp"

namespace jenga::sim {
namespace {

struct IntPayload : Payload {
  explicit IntPayload(int v) : value(v) {}
  int value;
};

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> seen;
  sim.schedule_at(30, [&] { seen.push_back(3); });
  sim.schedule_at(10, [&] { seen.push_back(1); });
  sim.schedule_at(20, [&] { seen.push_back(2); });
  sim.run_until_idle();
  EXPECT_EQ(seen, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, SameTimeFifoOrder) {
  Simulator sim;
  std::vector<int> seen;
  for (int i = 0; i < 10; ++i) sim.schedule_at(5, [&, i] { seen.push_back(i); });
  sim.run_until_idle();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(seen[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, PastSchedulingClampsToNow) {
  Simulator sim;
  SimTime observed = -1;
  sim.schedule_at(100, [&] {
    sim.schedule_at(50, [&] { observed = sim.now(); });  // in the past
  });
  sim.run_until_idle();
  EXPECT_EQ(observed, 100);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(10, [&] { ++fired; });
  sim.schedule_at(1000, [&] { ++fired; });
  sim.run_until(500);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 500);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(Simulator, NestedSchedulingWorks) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule_after(10, recurse);
  };
  sim.schedule_at(0, recurse);
  sim.run_until_idle();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), 40);
}

TEST(Simulator, MaxEventsGuard) {
  Simulator sim;
  std::function<void()> forever = [&] { sim.schedule_after(1, forever); };
  sim.schedule_at(0, forever);
  EXPECT_EQ(sim.run_until_idle(100), 100u);
}

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : net_(sim_, NetConfig{}, Rng(7)) {
    for (std::uint32_t i = 0; i < 8; ++i) {
      net_.register_node(NodeId{i}, [this, i](const Message& m) {
        received_.push_back({NodeId{i}, m, sim_.now()});
      });
    }
  }

  Message make_msg(std::uint32_t size, int tag = 0) {
    return make_message<IntPayload>(MsgType::kClientTx, NodeId{0}, size, tag);
  }

  struct Delivery {
    NodeId to;
    Message msg;
    SimTime at;
  };

  Simulator sim_;
  Network net_;
  std::vector<Delivery> received_;
};

TEST_F(NetworkTest, UnicastPaysLatencyAndSerialization) {
  // 25000 bytes at 20 Mbps = 10 ms serialization; +100 ms latency.
  net_.send(NodeId{0}, NodeId{1}, make_msg(25000), TrafficClass::kIntraShard);
  sim_.run_until_idle();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].at, 110 * kMillisecond);
}

TEST_F(NetworkTest, EgressQueueSerializesBackToBack) {
  net_.send(NodeId{0}, NodeId{1}, make_msg(25000), TrafficClass::kIntraShard);
  net_.send(NodeId{0}, NodeId{2}, make_msg(25000), TrafficClass::kIntraShard);
  sim_.run_until_idle();
  ASSERT_EQ(received_.size(), 2u);
  EXPECT_EQ(received_[0].at, 110 * kMillisecond);
  EXPECT_EQ(received_[1].at, 120 * kMillisecond);  // queued behind the first
}

TEST_F(NetworkTest, ZeroBandwidthModelDisabled) {
  NetConfig cfg;
  cfg.model_bandwidth = false;
  Network fast(sim_, cfg, Rng(1));
  SimTime arrival = -1;
  fast.register_node(NodeId{0}, [](const Message&) {});
  fast.register_node(NodeId{1}, [&](const Message&) { arrival = sim_.now(); });
  fast.send(NodeId{0}, NodeId{1}, make_msg(1 << 20), TrafficClass::kIntraShard);
  sim_.run_until_idle();
  EXPECT_EQ(arrival, 100 * kMillisecond);
}

TEST_F(NetworkTest, MulticastSkipsSelf) {
  std::vector<NodeId> group{NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}};
  net_.multicast(NodeId{0}, group, make_msg(100), TrafficClass::kIntraShard);
  sim_.run_until_idle();
  EXPECT_EQ(received_.size(), 3u);
  for (const auto& d : received_) EXPECT_NE(d.to, NodeId{0});
}

TEST_F(NetworkTest, GossipReachesEveryMemberExactlyOnce) {
  std::vector<NodeId> group;
  for (std::uint32_t i = 0; i < 8; ++i) group.push_back(NodeId{i});
  NetConfig cfg;
  cfg.gossip_fanout = 2;
  Network net(sim_, cfg, Rng(3));
  std::vector<int> count(8, 0);
  for (std::uint32_t i = 0; i < 8; ++i)
    net.register_node(NodeId{i}, [&count, i](const Message&) { ++count[i]; });
  net.gossip(NodeId{0}, group, make_msg(100), TrafficClass::kIntraShard);
  sim_.run_until_idle();
  EXPECT_EQ(count[0], 0);  // sender does not self-deliver
  for (std::uint32_t i = 1; i < 8; ++i) EXPECT_EQ(count[i], 1) << "node " << i;
}

TEST_F(NetworkTest, GossipFasterThanLinearBroadcastForLargePayloads) {
  // 2 MB block to 63 peers: unicast from one sender serializes 63 copies;
  // gossip pays ~log_8(63) levels.
  constexpr std::uint32_t kBlock = 2 * 1024 * 1024;
  std::vector<NodeId> group;
  for (std::uint32_t i = 0; i < 64; ++i) group.push_back(NodeId{i});

  Simulator sim_a;
  Network a(sim_a, NetConfig{}, Rng(5));
  SimTime last_a = 0;
  for (std::uint32_t i = 0; i < 64; ++i)
    a.register_node(NodeId{i}, [&](const Message&) { last_a = sim_a.now(); });
  a.multicast(NodeId{0}, group, make_message<IntPayload>(MsgType::kClientTx, NodeId{0}, kBlock, 1),
              TrafficClass::kIntraShard);
  sim_a.run_until_idle();

  Simulator sim_b;
  Network b(sim_b, NetConfig{}, Rng(5));
  SimTime last_b = 0;
  for (std::uint32_t i = 0; i < 64; ++i)
    b.register_node(NodeId{i}, [&](const Message&) { last_b = sim_b.now(); });
  b.gossip(NodeId{0}, group, make_message<IntPayload>(MsgType::kClientTx, NodeId{0}, kBlock, 1),
           TrafficClass::kIntraShard);
  sim_b.run_until_idle();

  EXPECT_LT(last_b, last_a / 3);
}

TEST_F(NetworkTest, TrafficAccountingByClass) {
  net_.send(NodeId{0}, NodeId{1}, make_msg(100), TrafficClass::kIntraShard);
  net_.send(NodeId{0}, NodeId{2}, make_msg(200), TrafficClass::kCrossShard);
  net_.send(NodeId{0}, NodeId{3}, make_msg(200), TrafficClass::kCrossShard);
  net_.client_send(NodeId{1}, make_msg(50));
  sim_.run_until_idle();
  const auto& st = net_.stats();
  EXPECT_EQ(st.messages[0], 1u);
  EXPECT_EQ(st.messages[1], 2u);
  EXPECT_EQ(st.messages[2], 1u);
  EXPECT_EQ(st.bytes[1], 400u);
  EXPECT_NEAR(st.cross_shard_message_ratio(), 2.0 / 3.0, 1e-9);
}

TEST_F(NetworkTest, DownNodeDropsTraffic) {
  net_.set_node_down(NodeId{1}, true);
  net_.send(NodeId{0}, NodeId{1}, make_msg(10), TrafficClass::kIntraShard);
  net_.send(NodeId{1}, NodeId{2}, make_msg(10), TrafficClass::kIntraShard);
  sim_.run_until_idle();
  EXPECT_TRUE(received_.empty());
  net_.set_node_down(NodeId{1}, false);
  net_.send(NodeId{0}, NodeId{1}, make_msg(10), TrafficClass::kIntraShard);
  sim_.run_until_idle();
  EXPECT_EQ(received_.size(), 1u);
}

TEST_F(NetworkTest, PayloadSharedAcrossDeliveries) {
  const Message m = make_msg(10, 42);
  std::vector<NodeId> group{NodeId{0}, NodeId{1}, NodeId{2}};
  net_.multicast(NodeId{0}, group, m, TrafficClass::kIntraShard);
  sim_.run_until_idle();
  for (const auto& d : received_) {
    EXPECT_EQ(payload_as<IntPayload>(d.msg).value, 42);
    EXPECT_EQ(d.msg.payload.get(), m.payload.get());  // same allocation
  }
}

TEST_F(NetworkTest, CertainDropBlocksDelivery) {
  LinkFaults faults;
  faults.drop_rate = 1.0;
  net_.set_fault_profile(faults);
  net_.send(NodeId{0}, NodeId{1}, make_msg(10), TrafficClass::kIntraShard);
  net_.send(NodeId{2}, NodeId{3}, make_msg(10), TrafficClass::kIntraShard);
  sim_.run_until_idle();
  EXPECT_TRUE(received_.empty());
  EXPECT_EQ(net_.fault_stats().dropped, 2u);
  // Clearing the profile restores lossless delivery.
  net_.set_fault_profile(LinkFaults{});
  net_.send(NodeId{0}, NodeId{1}, make_msg(10), TrafficClass::kIntraShard);
  sim_.run_until_idle();
  EXPECT_EQ(received_.size(), 1u);
}

TEST_F(NetworkTest, CertainDuplicationDeliversTwice) {
  LinkFaults faults;
  faults.duplicate_rate = 1.0;
  net_.set_fault_profile(faults);
  net_.send(NodeId{0}, NodeId{1}, make_msg(10, 7), TrafficClass::kIntraShard);
  sim_.run_until_idle();
  ASSERT_EQ(received_.size(), 2u);
  for (const auto& d : received_) {
    EXPECT_EQ(d.to, NodeId{1});
    EXPECT_EQ(payload_as<IntPayload>(d.msg).value, 7);
  }
  EXPECT_GT(received_[1].at, received_[0].at);  // copy arrives strictly later
  EXPECT_EQ(net_.fault_stats().duplicated, 1u);
}

TEST_F(NetworkTest, PartitionBlocksBothDirectionsUntilHealed) {
  const NodeId island[] = {NodeId{1}, NodeId{2}};
  net_.partition(island, 1);
  EXPECT_TRUE(net_.partitioned(NodeId{0}, NodeId{1}));
  EXPECT_FALSE(net_.partitioned(NodeId{1}, NodeId{2}));  // same side
  net_.send(NodeId{0}, NodeId{1}, make_msg(10), TrafficClass::kIntraShard);
  net_.send(NodeId{1}, NodeId{0}, make_msg(10), TrafficClass::kIntraShard);
  net_.send(NodeId{1}, NodeId{2}, make_msg(10), TrafficClass::kIntraShard);
  sim_.run_until_idle();
  ASSERT_EQ(received_.size(), 1u);  // only the intra-island message
  EXPECT_EQ(received_[0].to, NodeId{2});
  EXPECT_EQ(net_.fault_stats().partition_blocked, 2u);

  net_.heal_partitions();
  net_.send(NodeId{0}, NodeId{1}, make_msg(10), TrafficClass::kIntraShard);
  sim_.run_until_idle();
  EXPECT_EQ(received_.size(), 2u);
}

TEST_F(NetworkTest, PerLinkExtraDelayIsDirectional) {
  net_.set_link_delay(NodeId{0}, NodeId{1}, 500 * kMillisecond);
  net_.send(NodeId{0}, NodeId{1}, make_msg(25000), TrafficClass::kIntraShard);
  net_.send(NodeId{1}, NodeId{0}, make_msg(25000), TrafficClass::kIntraShard);
  sim_.run_until_idle();
  ASSERT_EQ(received_.size(), 2u);
  // Reverse direction pays only serialization + base latency.
  EXPECT_EQ(received_[0].at, 110 * kMillisecond);
  EXPECT_EQ(received_[0].to, NodeId{0});
  EXPECT_EQ(received_[1].at, 610 * kMillisecond);
  EXPECT_EQ(received_[1].to, NodeId{1});

  net_.set_link_delay(NodeId{0}, NodeId{1}, 0);  // cleared
  received_.clear();
  const SimTime resend = sim_.now();
  net_.send(NodeId{0}, NodeId{1}, make_msg(25000), TrafficClass::kIntraShard);
  sim_.run_until_idle();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].at - resend, 110 * kMillisecond);
}

TEST(NetworkDeterminism, SameSeedSameFaultSchedule) {
  // Under a lossy+duplicating profile, the same seed must reproduce the exact
  // delivery schedule and fault counters.
  static std::vector<std::pair<std::uint32_t, SimTime>> first_run;
  static FaultStats first_faults;
  for (int round = 0; round < 2; ++round) {
    Simulator sim;
    NetConfig cfg;
    cfg.jitter_max = 5 * kMillisecond;
    Network net(sim, cfg, Rng(1234));
    LinkFaults faults;
    faults.drop_rate = 0.3;
    faults.duplicate_rate = 0.2;
    faults.extra_delay_max = 50 * kMillisecond;
    net.set_fault_profile(faults);
    std::vector<std::pair<std::uint32_t, SimTime>> arrivals;
    for (std::uint32_t i = 0; i < 12; ++i)
      net.register_node(NodeId{i}, [&arrivals, &sim, i](const Message&) {
        arrivals.emplace_back(i, sim.now());
      });
    std::vector<NodeId> group;
    for (std::uint32_t i = 0; i < 12; ++i) group.push_back(NodeId{i});
    for (int k = 0; k < 10; ++k) {
      net.gossip(NodeId{static_cast<std::uint32_t>(k % 12)}, group,
                 make_message<IntPayload>(MsgType::kClientTx, NodeId{0}, 2000, k),
                 TrafficClass::kIntraShard);
    }
    sim.run_until_idle();
    if (round == 0) {
      first_run = arrivals;
      first_faults = net.fault_stats();
      EXPECT_GT(first_faults.dropped, 0u);
    } else {
      EXPECT_EQ(arrivals, first_run);
      EXPECT_EQ(net.fault_stats().dropped, first_faults.dropped);
      EXPECT_EQ(net.fault_stats().duplicated, first_faults.duplicated);
    }
  }
}

TEST(NetworkDeterminism, SameSeedSameSchedule) {
  for (int round = 0; round < 2; ++round) {
    static std::vector<SimTime> first_run;
    Simulator sim;
    NetConfig cfg;
    cfg.jitter_max = 10 * kMillisecond;
    Network net(sim, cfg, Rng(99));
    std::vector<SimTime> arrivals;
    for (std::uint32_t i = 0; i < 16; ++i)
      net.register_node(NodeId{i}, [&](const Message&) { arrivals.push_back(sim.now()); });
    std::vector<NodeId> group;
    for (std::uint32_t i = 0; i < 16; ++i) group.push_back(NodeId{i});
    net.gossip(NodeId{0}, group,
               make_message<IntPayload>(MsgType::kClientTx, NodeId{0}, 5000, 0),
               TrafficClass::kIntraShard);
    sim.run_until_idle();
    if (round == 0)
      first_run = arrivals;
    else
      EXPECT_EQ(arrivals, first_run);
  }
}

TEST_F(NetworkTest, PerLinkFaultAttribution) {
  LinkFaults faults;
  faults.drop_rate = 1.0;
  net_.set_fault_profile(faults);
  net_.send(NodeId{0}, NodeId{1}, make_msg(10), TrafficClass::kIntraShard);
  net_.send(NodeId{0}, NodeId{1}, make_msg(10), TrafficClass::kIntraShard);
  net_.send(NodeId{2}, NodeId{3}, make_msg(10), TrafficClass::kIntraShard);
  sim_.run_until_idle();
  const auto& fs = net_.fault_stats();
  EXPECT_EQ(fs.dropped, 3u);
  const std::uint64_t link01 = (std::uint64_t{0} << 32) | 1;
  const std::uint64_t link23 = (std::uint64_t{2} << 32) | 3;
  ASSERT_TRUE(fs.per_link.count(link01));
  ASSERT_TRUE(fs.per_link.count(link23));
  EXPECT_EQ(fs.per_link.at(link01).dropped, 2u);
  EXPECT_EQ(fs.per_link.at(link23).dropped, 1u);

  net_.set_fault_profile(LinkFaults{});
  LinkFaults dup;
  dup.duplicate_rate = 1.0;
  net_.set_fault_profile(dup);
  net_.send(NodeId{4}, NodeId{5}, make_msg(10), TrafficClass::kIntraShard);
  sim_.run_until_idle();
  const std::uint64_t link45 = (std::uint64_t{4} << 32) | 5;
  ASSERT_TRUE(net_.fault_stats().per_link.count(link45));
  EXPECT_EQ(net_.fault_stats().per_link.at(link45).duplicated, 1u);
}

TEST_F(NetworkTest, MessageTelemetryCountsTypesAndHops) {
  telemetry::Telemetry tel;
  net_.set_telemetry(&tel);
  net_.send(NodeId{0}, NodeId{1}, make_msg(100), TrafficClass::kIntraShard);
  net_.send(NodeId{0}, NodeId{2}, make_msg(200), TrafficClass::kCrossShard);
  sim_.run_until_idle();
  net_.set_telemetry(nullptr);

  const auto idx = static_cast<std::size_t>(MsgType::kClientTx);
  EXPECT_EQ(tel.net.per_type[idx].count, 2u);
  EXPECT_EQ(tel.net.per_type[idx].bytes, 300u);
  EXPECT_STREQ(tel.net.type_name[idx], "client_tx");
  // Two scheduled hops, each paying at least the base latency.
  EXPECT_EQ(tel.net.hop_delay_us.count(), 2u);
  EXPECT_GE(tel.net.hop_delay_us.min(), 100 * kMillisecond);
}

TEST(NetworkTelemetry, AttachingTelemetryDoesNotPerturbSchedule) {
  // Telemetry is passive: same seed with and without it attached must give a
  // bit-identical delivery schedule under a lossy profile.
  std::vector<std::pair<std::uint32_t, SimTime>> runs[2];
  for (int round = 0; round < 2; ++round) {
    Simulator sim;
    NetConfig cfg;
    cfg.jitter_max = 10 * kMillisecond;
    Network net(sim, cfg, Rng(42));
    telemetry::Telemetry tel;
    if (round == 1) net.set_telemetry(&tel);
    LinkFaults faults;
    faults.drop_rate = 0.3;
    faults.duplicate_rate = 0.2;
    net.set_fault_profile(faults);
    for (std::uint32_t i = 0; i < 8; ++i)
      net.register_node(NodeId{i}, [&, i](const Message&) {
        runs[round].push_back({i, sim.now()});
      });
    for (int k = 0; k < 50; ++k)
      net.send(NodeId{static_cast<std::uint32_t>(k % 4)},
               NodeId{static_cast<std::uint32_t>(4 + k % 4)},
               make_message<IntPayload>(MsgType::kClientTx, NodeId{0}, 1000, k),
               TrafficClass::kCrossShard);
    sim.run_until_idle();
    if (round == 1) net.set_telemetry(nullptr);
  }
  EXPECT_EQ(runs[0], runs[1]);
}

}  // namespace
}  // namespace jenga::sim
